package slidingsample

// Integration tests: cross-module paths a unit test cannot cover — samplers
// validated against the exact full-window oracle on long shared streams,
// channel-fed pipelines, estimator + sampler + size-oracle stacks, and
// determinism of whole pipelines.

import (
	"math"
	"testing"

	"slidingsample/internal/apps"
	"slidingsample/internal/baseline"
	"slidingsample/internal/core"
	"slidingsample/internal/ehist"
	"slidingsample/internal/stats"
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// TestIntegrationSeqAgainstOracle drives all sequence-based samplers and
// the full-window oracle over one long stream, checking at many interleaved
// query points that every sampler only ever returns true window content.
func TestIntegrationSeqAgainstOracle(t *testing.T) {
	const n = 64
	r := xrand.New(1)
	wr := core.NewSeqWR[uint64](r.Split(), n, 4)
	wor := core.NewSeqWOR[uint64](r.Split(), n, 4)
	chain := baseline.NewChain[uint64](r.Split(), n, 4)
	oracle := baseline.NewFullWindowSeq[uint64](r.Split(), n)
	buf := window.NewSeqBuffer[uint64](n)

	for i := 0; i < 5000; i++ {
		v := uint64(i) * 3
		wr.Observe(v, int64(i))
		wor.Observe(v, int64(i))
		chain.Observe(v, int64(i))
		oracle.Observe(v, int64(i))
		buf.Observe(stream.Element[uint64]{Value: v, Index: uint64(i), TS: int64(i)})

		if i%37 != 0 {
			continue
		}
		inWindow := map[uint64]bool{}
		for _, e := range buf.Contents() {
			inWindow[e.Index] = true
		}
		check := func(name string, es []stream.Element[uint64], distinct bool) {
			seen := map[uint64]bool{}
			for _, e := range es {
				if !inWindow[e.Index] {
					t.Fatalf("step %d: %s returned non-window element %d", i, name, e.Index)
				}
				if e.Value != e.Index*3 {
					t.Fatalf("step %d: %s corrupted a value", i, name)
				}
				if distinct && seen[e.Index] {
					t.Fatalf("step %d: %s returned duplicates", i, name)
				}
				seen[e.Index] = true
			}
		}
		if es, ok := wr.Sample(); ok {
			check("SeqWR", es, false)
		} else {
			t.Fatalf("step %d: SeqWR empty", i)
		}
		if es, ok := wor.Sample(); ok {
			check("SeqWOR", es, true)
		} else {
			t.Fatalf("step %d: SeqWOR empty", i)
		}
		if es, ok := chain.Sample(); ok {
			check("Chain", es, false)
		}
		if es, ok := oracle.SampleWOR(0, 4); ok {
			check("FullWindow", es, true)
		}
	}
}

// TestIntegrationTSAgainstOracle does the same for the timestamp-based
// samplers over a shared bursty stream with interleaved queries.
func TestIntegrationTSAgainstOracle(t *testing.T) {
	const t0 = 32
	r := xrand.New(2)
	wr := core.NewTSWR[uint64](r.Split(), t0, 3)
	wor := core.NewTSWOR[uint64](r.Split(), t0, 3)
	prio := baseline.NewPriority[uint64](r.Split(), t0, 3)
	sky := baseline.NewSkyband[uint64](r.Split(), t0, 3)
	buf := window.NewTSBuffer[uint64](t0)

	gen := r.Split()
	ts := int64(0)
	for i := 0; i < 4000; i++ {
		if gen.Uint64n(4) == 0 {
			ts += int64(gen.Uint64n(9))
		}
		v := uint64(i)
		wr.Observe(v, ts)
		wor.Observe(v, ts)
		prio.Observe(v, ts)
		sky.Observe(v, ts)
		buf.Observe(stream.Element[uint64]{Value: v, Index: v, TS: ts})

		if i%29 != 0 {
			continue
		}
		inWindow := map[uint64]bool{}
		for _, e := range buf.Contents() {
			inWindow[e.Index] = true
		}
		check := func(name string, es []stream.Element[uint64], distinct bool) {
			seen := map[uint64]bool{}
			for _, e := range es {
				if !inWindow[e.Index] {
					t.Fatalf("step %d: %s returned expired/unknown element %d", i, name, e.Index)
				}
				if distinct && seen[e.Index] {
					t.Fatalf("step %d: %s returned duplicates", i, name)
				}
				seen[e.Index] = true
			}
		}
		if es, ok := wr.SampleAt(ts); ok {
			check("TSWR", es, false)
		} else {
			t.Fatalf("step %d: TSWR empty though an element just arrived", i)
		}
		if es, ok := wor.SampleAt(ts); ok {
			check("TSWOR", es, true)
		} else {
			t.Fatalf("step %d: TSWOR empty", i)
		}
		if es, ok := prio.SampleAt(ts); ok {
			check("Priority", es, false)
		}
		if es, ok := sky.SampleAt(ts); ok {
			check("Skyband", es, true)
		}
	}
}

// TestIntegrationChannelPipeline feeds the public API from a channel
// producer — the idiomatic streaming deployment shape.
func TestIntegrationChannelPipeline(t *testing.T) {
	src := stream.NewSource(stream.NewIndexValues(), stream.NewSteadyArrivals(4))
	s, err := NewTimestampWOR[uint64](16, 5, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	var last int64
	for e := range src.Channel(10_000) {
		if err := s.Observe(e.Value, e.TS); err != nil {
			t.Fatal(err)
		}
		last = e.TS
	}
	got, ok := s.SampleAt(last)
	if !ok || len(got) != 5 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	// Steady 4/tick with horizon 16: the window holds the last 64 arrivals
	// (indexes 9936..9999 at tick 2499... the last 16 ticks hold 64
	// elements). All sampled elements must be within the last 64.
	for _, e := range got {
		if e.Index < 10_000-64 {
			t.Fatalf("expired element %d in channel pipeline sample", e.Index)
		}
	}
}

// TestIntegrationEstimatorStack runs the full Section 5 stack — TSWR
// sampler + suffix counters + exponential-histogram size oracle — and
// compares windowed entropy and F2 against exact values at several query
// times along one stream.
func TestIntegrationEstimatorStack(t *testing.T) {
	const t0 = 128
	r := xrand.New(4)
	eh := ehist.NewEps(t0, 0.05)
	sampler := core.NewTSWR[uint64](r.Split(), t0, 80)
	ent := apps.NewEntropy(apps.TSWRSource(sampler, eh.SizeOracle()), 16, 5)
	buf := window.NewTSBuffer[uint64](t0)
	zipf := stream.NewZipfValues(r.Split(), 1.3, 32)
	arr := stream.NewBurstyArrivals(r.Split(), 6, 2)

	var worstErr float64
	checks := 0
	for i := 0; i < 12_000; i++ {
		v := zipf.Next()
		ts := arr.Next()
		ent.Observe(v, ts)
		eh.Observe(ts)
		buf.Observe(stream.Element[uint64]{Value: v, Index: uint64(i), TS: ts})
		if i > 2000 && i%1500 == 0 {
			var content []uint64
			for _, e := range buf.Contents() {
				content = append(content, e.Value)
			}
			exact := apps.ExactEntropy(content)
			got, ok := ent.EstimateAt(ts)
			if !ok {
				t.Fatalf("step %d: no estimate", i)
			}
			if e := math.Abs(got - exact); e > worstErr {
				worstErr = e
			}
			checks++
		}
	}
	if checks < 5 {
		t.Fatalf("only %d checkpoints exercised", checks)
	}
	if worstErr > 1.2 {
		t.Fatalf("worst entropy error %.3f bits too large for 80 copies", worstErr)
	}
}

// TestIntegrationPipelineDeterminism re-runs a full mixed pipeline twice
// with the same seeds and asserts identical outputs end to end.
func TestIntegrationPipelineDeterminism(t *testing.T) {
	run := func() []uint64 {
		r := xrand.New(99)
		wr := core.NewTSWR[uint64](r.Split(), 24, 2)
		wor := core.NewSeqWOR[uint64](r.Split(), 32, 3)
		gen := r.Split()
		ts := int64(0)
		var out []uint64
		for i := 0; i < 2000; i++ {
			if gen.Uint64n(3) == 0 {
				ts++
			}
			wr.Observe(uint64(i), ts)
			wor.Observe(uint64(i), ts)
			if i%17 == 0 {
				if es, ok := wr.SampleAt(ts); ok {
					for _, e := range es {
						out = append(out, e.Index)
					}
				}
				if es, ok := wor.Sample(); ok {
					for _, e := range es {
						out = append(out, e.Index)
					}
				}
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("pipeline determinism broken: lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pipeline determinism broken at %d", i)
		}
	}
}

// TestIntegrationUniformityThroughChiSquare is the E6 experiment in unit
// form: the internal stats package must accept the samplers' outputs as
// uniform at every configuration exercised.
func TestIntegrationUniformityThroughChiSquare(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const trials = 30000
	r := xrand.New(5)
	// Sequence WOR over a straddling window.
	const n, k, m = 6, 2, 15
	counts := map[[2]uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := core.NewSeqWOR[uint64](r, n, k)
		for i := 0; i < m; i++ {
			s.Observe(uint64(i), int64(i))
		}
		got, _ := s.Sample()
		a, b := got[0].Index, got[1].Index
		if a > b {
			a, b = b, a
		}
		counts[[2]uint64{a, b}]++
	}
	flat := make([]int, 0, len(counts))
	for _, c := range counts {
		flat = append(flat, c)
	}
	if len(flat) != 15 {
		t.Fatalf("saw %d subsets, want 15", len(flat))
	}
	_, p, err := stats.ChiSquareUniform(flat)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-5 {
		t.Fatalf("uniformity rejected with p=%v", p)
	}
}
