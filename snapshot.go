package slidingsample

import (
	"io"

	"slidingsample/internal/core"
	"slidingsample/internal/snap"
)

// Checkpoint/restore for the public core samplers (DESIGN.md §10). A
// snapshot captures the complete sampler state — window bookkeeping,
// retained elements, and the full RNG state — so a restored sampler
// resumes BIT-IDENTICALLY: under WithSeed, snapshot → restore → resume
// produces exactly the byte stream the uninterrupted sampler would have.
//
// The sequence samplers delegate to their core codec directly (the public
// adapter holds no state of its own); the timestamp samplers prepend the
// adapter's monotone-clock guard so ErrTimeBackwards behavior survives a
// restore too. The weighted and sharded PUBLIC wrappers carry opaque
// per-element weights in their payloads and are not snapshotable through
// this API — serve their stream through the serving layer (internal
// substrates over string values), which snapshots every substrate in the
// vocabulary, sharded dispatchers included.

// Public snapshot kind tags (timestamp adapters only; sequence snapshots
// reuse the core kind).
const (
	kindPublicTSWR  = "slidingsample.TimestampWR"
	kindPublicTSWOR = "slidingsample.TimestampWOR"
)

// Snapshot writes the sampler's full state to w.
func (s *SequenceWR[T]) Snapshot(w io.Writer) error {
	return s.inner.(*core.SeqWR[T]).Snapshot(w)
}

// RestoreSequenceWR reads a SequenceWR snapshot written by Snapshot. The
// restored sampler continues the snapshotted random stream: no seed is
// involved, the RNG state rides the snapshot.
func RestoreSequenceWR[T any](r io.Reader) (*SequenceWR[T], error) {
	inner, err := core.RestoreSeqWR[T](r)
	if err != nil {
		return nil, err
	}
	s := &SequenceWR[T]{n: inner.N()}
	s.inner = inner
	return s, nil
}

// Snapshot writes the sampler's full state to w.
func (s *SequenceWOR[T]) Snapshot(w io.Writer) error {
	return s.inner.(*core.SeqWOR[T]).Snapshot(w)
}

// RestoreSequenceWOR reads a SequenceWOR snapshot written by Snapshot.
func RestoreSequenceWOR[T any](r io.Reader) (*SequenceWOR[T], error) {
	inner, err := core.RestoreSeqWOR[T](r)
	if err != nil {
		return nil, err
	}
	s := &SequenceWOR[T]{n: inner.N()}
	s.inner = inner
	return s, nil
}

// Snapshot writes the sampler's full state to w, the public adapter's
// monotone clock included.
func (s *TimestampWR[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindPublicTSWR)
	sw.I64(s.last)
	sw.Bool(s.begun)
	if err := sw.Err(); err != nil {
		return err
	}
	return s.timed.(*core.TSWR[T]).Snapshot(w)
}

// RestoreTimestampWR reads a TimestampWR snapshot written by Snapshot.
func RestoreTimestampWR[T any](r io.Reader) (*TimestampWR[T], error) {
	sr, err := snap.NewReader(r, kindPublicTSWR)
	if err != nil {
		return nil, err
	}
	last := sr.I64()
	begun := sr.Bool()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	inner, err := core.RestoreTSWR[T](r)
	if err != nil {
		return nil, err
	}
	s := &TimestampWR[T]{t0: inner.Horizon()}
	s.timed = inner
	s.inner = inner
	s.last, s.begun = last, begun
	return s, nil
}

// Snapshot writes the sampler's full state to w, the public adapter's
// monotone clock included.
func (s *TimestampWOR[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindPublicTSWOR)
	sw.I64(s.last)
	sw.Bool(s.begun)
	if err := sw.Err(); err != nil {
		return err
	}
	return s.timed.(*core.TSWOR[T]).Snapshot(w)
}

// RestoreTimestampWOR reads a TimestampWOR snapshot written by Snapshot.
func RestoreTimestampWOR[T any](r io.Reader) (*TimestampWOR[T], error) {
	sr, err := snap.NewReader(r, kindPublicTSWOR)
	if err != nil {
		return nil, err
	}
	last := sr.I64()
	begun := sr.Bool()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	inner, err := core.RestoreTSWOR[T](r)
	if err != nil {
		return nil, err
	}
	s := &TimestampWOR[T]{t0: inner.Horizon()}
	s.timed = inner
	s.inner = inner
	s.last, s.begun = last, begun
	return s, nil
}
