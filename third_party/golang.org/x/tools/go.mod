// Local vendored subset of golang.org/x/tools, copied verbatim from the Go
// 1.24.0 toolchain's cmd/vendor tree (which pins the version recorded in the
// root module's require directive). Only the packages cmd/swlint needs are
// present: go/analysis, its unitchecker driver, and their internal support
// packages. See README.md "Dependency policy" before adding anything here.
module golang.org/x/tools

go 1.24
