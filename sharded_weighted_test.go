package slidingsample

import (
	"math"
	"testing"
)

// TestPublicShardedWeightedTimestampWOR drives the public sharded weighted
// sampler end to end: async ingest, auto-barrier queries, weighted-order
// WOR samples, read-only scale oracles, determinism under WithSeed, and
// queryability after Close.
func TestPublicShardedWeightedTimestampWOR(t *testing.T) {
	const (
		t0 = 64
		g  = 4
		k  = 5
		m  = 2000
	)
	mk := func() *ShardedWeightedTimestampWOR[int] {
		s, err := NewShardedWeightedTimestampWOR[int](t0, g, k, WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	if _, ok := a.Sample(); ok {
		t.Fatal("sample from empty sampler")
	}
	for i := 0; i < m; i++ {
		w := float64(i%13) + 1
		ts := int64(i / 5)
		if err := a.Observe(i, w, ts); err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(i, w, ts); err != nil {
			t.Fatal(err)
		}
	}
	now := int64((m - 1) / 5)
	// No explicit Barrier: the query flushes in-flight ingest itself.
	got, ok := a.SampleAt(now)
	if !ok || len(got) != k {
		t.Fatalf("ok=%v len=%d, want k=%d", ok, len(got), k)
	}
	seen := map[uint64]bool{}
	for _, e := range got {
		if seen[e.Index] {
			t.Fatalf("duplicate index %d in WOR sample", e.Index)
		}
		seen[e.Index] = true
		if now-e.Timestamp >= t0 {
			t.Fatalf("expired element: ts %d at now %d", e.Timestamp, now)
		}
		if want := float64(e.Value%13) + 1; e.Weight != want {
			t.Fatalf("weight round-trip broken: got %g want %g", e.Weight, want)
		}
	}
	// Determinism: an identically seeded twin returns the identical sample.
	got2, ok2 := b.SampleAt(now)
	if !ok2 || len(got2) != len(got) {
		t.Fatal("seeded twin diverged in shape")
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("seeded twin diverged at slot %d: %+v vs %+v", i, got[i], got2[i])
		}
	}
	// Scale oracles: exact ground truth from the last t0 ticks.
	wantW, wantN := 0.0, 0.0
	for i := 0; i < m; i++ {
		if now-int64(i/5) < t0 {
			wantW += float64(i%13) + 1
			wantN++
		}
	}
	if gotW := a.TotalWeightAt(now); math.Abs(gotW-wantW)/wantW > 0.05+1e-9 {
		t.Fatalf("TotalWeightAt=%g vs ground truth %g", gotW, wantW)
	}
	if gotN := float64(a.SizeAt(now)); math.Abs(gotN-wantN)/wantN > 0.05+1e-9 {
		t.Fatalf("SizeAt=%.0f vs ground truth %.0f", gotN, wantN)
	}
	if a.G() != g || a.K() != k || a.Count() != m {
		t.Fatalf("accessors broken: G=%d K=%d Count=%d", a.G(), a.K(), a.Count())
	}
	if a.Words() <= 0 || a.MaxWords() < a.Words() {
		t.Fatal("words accounting broken")
	}
	// Time regression is an error, not a panic, at the public layer.
	if err := a.Observe(1, 1, now-t0); err != ErrTimeBackwards {
		t.Fatalf("regression: got %v", err)
	}
	// Close stops the workers but keeps queries working.
	a.Close()
	if _, ok := a.SampleAt(now); !ok {
		t.Fatal("no sample after Close")
	}
}

// TestPublicShardedWeightedTimestampWR: the with-replacement public
// wrapper returns k draws with auto-barrier, batched ingest matches
// looped ingest under equal seeds, and bad weights are rejected.
func TestPublicShardedWeightedTimestampWR(t *testing.T) {
	const (
		t0 = 60
		g  = 3
		k  = 4
		m  = 900
	)
	loop, err := NewShardedWeightedTimestampWR[int](t0, g, k, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	batch, err := NewShardedWeightedTimestampWR[int](t0, g, k, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer batch.Close()

	if err := loop.Observe(0, 0, 0); err != ErrBadWeight {
		t.Fatalf("bad weight: got %v", err)
	}
	vals := make([]int, 0, 64)
	ws := make([]float64, 0, 64)
	tss := make([]int64, 0, 64)
	for i := 0; i < m; i++ {
		w := float64(i%7) + 1
		ts := int64(i / 4)
		if err := loop.Observe(i, w, ts); err != nil {
			t.Fatal(err)
		}
		vals = append(vals, i)
		ws = append(ws, w)
		tss = append(tss, ts)
		if len(vals) == 53 || i == m-1 {
			if err := batch.ObserveBatch(vals, ws, tss); err != nil {
				t.Fatal(err)
			}
			vals, ws, tss = vals[:0], ws[:0], tss[:0]
		}
	}
	now := int64((m - 1) / 4)
	la, lok := loop.SampleAt(now)
	ba, bok := batch.SampleAt(now)
	if !lok || !bok || len(la) != k || len(ba) != k {
		t.Fatalf("shape: %v/%v %d/%d", lok, bok, len(la), len(ba))
	}
	for i := range la {
		if la[i] != ba[i] {
			t.Fatalf("slot %d diverged between loop and batch: %+v vs %+v", i, la[i], ba[i])
		}
		if now-la[i].Timestamp >= t0 {
			t.Fatalf("expired element in WR sample: ts %d", la[i].Timestamp)
		}
	}
	if loop.Count() != batch.Count() || loop.Count() != m {
		t.Fatalf("Count: %d vs %d", loop.Count(), batch.Count())
	}
	if loop.TotalWeightAt(now) <= 0 {
		t.Fatal("TotalWeightAt not positive on a non-empty window")
	}
}

// TestPublicShardedWeightedSequenceWOR drives the public sequence-window
// sharded weighted WOR end to end: async ingest, auto-flush queries (no
// explicit Barrier anywhere), window confinement, weight round-trip,
// determinism under WithSeed, the TotalWeight oracle, parameter
// validation, and queryability after Close.
func TestPublicShardedWeightedSequenceWOR(t *testing.T) {
	const (
		n = 64
		g = 4
		k = 5
		m = 2000
	)
	mk := func() *ShardedWeightedSequenceWOR[int] {
		s, err := NewShardedWeightedSequenceWOR[int](n, g, k, WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	if _, ok := a.Sample(); ok {
		t.Fatal("sample from empty sampler")
	}
	for i := 0; i < m; i++ {
		w := float64(i%13) + 1
		if err := a.Observe(i, w); err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(i, w); err != nil {
			t.Fatal(err)
		}
	}
	// No explicit Barrier: the query flushes in-flight ingest itself.
	got, ok := a.Sample()
	if !ok || len(got) != k {
		t.Fatalf("ok=%v len=%d, want k=%d", ok, len(got), k)
	}
	seen := map[uint64]bool{}
	for _, e := range got {
		if seen[e.Index] {
			t.Fatalf("duplicate index %d in WOR sample", e.Index)
		}
		seen[e.Index] = true
		if e.Index < m-n {
			t.Fatalf("expired element: index %d with window [%d,%d)", e.Index, m-n, m)
		}
		if want := float64(e.Value%13) + 1; e.Weight != want {
			t.Fatalf("weight round-trip broken: got %g want %g", e.Weight, want)
		}
	}
	// Determinism: an identically seeded twin returns the identical sample.
	got2, ok2 := b.Sample()
	if !ok2 || len(got2) != len(got) {
		t.Fatal("seeded twin diverged in shape")
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("seeded twin diverged at slot %d: %+v vs %+v", i, got[i], got2[i])
		}
	}
	// The weight oracle tracks the last-n ground truth within (1±5%).
	wantW := 0.0
	for i := m - n; i < m; i++ {
		wantW += float64(i%13) + 1
	}
	if gotW := a.TotalWeight(); math.Abs(gotW-wantW)/wantW > 0.05+1e-9 {
		t.Fatalf("TotalWeight=%g vs ground truth %g", gotW, wantW)
	}
	if a.G() != g || a.K() != k || a.N() != n || a.Count() != m {
		t.Fatalf("accessors broken: G=%d K=%d N=%d Count=%d", a.G(), a.K(), a.N(), a.Count())
	}
	if a.Words() <= 0 || a.MaxWords() < a.Words() {
		t.Fatal("words accounting broken")
	}
	// Bad weights are errors, not panics, at the public layer.
	if err := a.Observe(1, 0); err != ErrBadWeight {
		t.Fatalf("bad weight: got %v", err)
	}
	// Close stops the workers but keeps queries working.
	a.Close()
	if _, ok := a.Sample(); !ok {
		t.Fatal("no sample after Close")
	}
}

// TestPublicShardedWeightedSequenceWR: the with-replacement sequence pair
// returns k auto-flushed draws, batched ingest matches looped ingest under
// equal seeds, and construction validates n % g == 0.
func TestPublicShardedWeightedSequenceWR(t *testing.T) {
	const (
		n = 60
		g = 3
		k = 4
		m = 900
	)
	loop, err := NewShardedWeightedSequenceWR[int](n, g, k, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	batch, err := NewShardedWeightedSequenceWR[int](n, g, k, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer batch.Close()

	vals := make([]int, 0, 64)
	ws := make([]float64, 0, 64)
	for i := 0; i < m; i++ {
		w := float64(i%7) + 1
		if err := loop.Observe(i, w); err != nil {
			t.Fatal(err)
		}
		vals = append(vals, i)
		ws = append(ws, w)
		if len(vals) == 53 || i == m-1 {
			if err := batch.ObserveBatch(vals, ws); err != nil {
				t.Fatal(err)
			}
			vals, ws = vals[:0], ws[:0]
		}
	}
	gl, okl := loop.Sample()
	gb, okb := batch.Sample()
	if !okl || !okb || len(gl) != k || len(gb) != k {
		t.Fatalf("ok=%v/%v len=%d/%d, want k=%d", okl, okb, len(gl), len(gb), k)
	}
	for i := range gl {
		if gl[i] != gb[i] {
			t.Fatalf("batched ingest diverged at slot %d: %+v vs %+v", i, gl[i], gb[i])
		}
		if gl[i].Index < m-n {
			t.Fatalf("expired element: index %d", gl[i].Index)
		}
	}
	if gotW := loop.TotalWeight(); !(gotW > 0) {
		t.Fatalf("TotalWeight=%g", gotW)
	}
	// Construction validates shape: n not divisible by g, bad g.
	if _, err := NewShardedWeightedSequenceWR[int](10, 4, 2); err == nil {
		t.Fatal("n % g != 0 accepted")
	}
	if _, err := NewShardedWeightedSequenceWOR[int](8, 0, 2); err == nil {
		t.Fatal("g = 0 accepted")
	}
}

// TestPublicShardedWordsDuringIngest: the footprint accessors are queries
// too — they must flush in-flight sharded ingest before walking per-shard
// sampler state (under -race this is the regression test for the
// un-barriered Words()/MaxWords() read racing the shard goroutines).
func TestPublicShardedWordsDuringIngest(t *testing.T) {
	tsw, err := NewShardedWeightedTimestampWOR[int](100, 4, 8, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer tsw.Close()
	sq, err := NewShardedWeightedSequenceWR[int](400, 4, 8, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer sq.Close()
	for i := 0; i < 5000; i++ {
		if err := tsw.Observe(i, float64(i%9)+1, int64(i/50)); err != nil {
			t.Fatal(err)
		}
		if err := sq.Observe(i, float64(i%9)+1); err != nil {
			t.Fatal(err)
		}
		if i%97 == 7 {
			if tsw.Words() <= 0 || sq.Words() <= 0 {
				t.Fatal("non-positive footprint mid-stream")
			}
			if tsw.MaxWords() < tsw.Words() || sq.MaxWords() < sq.Words() {
				t.Fatal("peak below current footprint")
			}
		}
	}
}

// TestPublicShardedIngestAfterClose: Close keeps samplers queryable but
// ingest returns ErrClosed (not a channel panic), on all four wrappers.
func TestPublicShardedIngestAfterClose(t *testing.T) {
	tsw, _ := NewShardedWeightedTimestampWOR[int](10, 2, 2, WithSeed(1))
	if err := tsw.Observe(1, 1, 0); err != nil {
		t.Fatal(err)
	}
	tsw.Close()
	if err := tsw.Observe(2, 1, 1); err != ErrClosed {
		t.Fatalf("Observe after Close: got %v, want ErrClosed", err)
	}
	if err := tsw.ObserveBatch([]int{3}, []float64{1}, []int64{1}); err != ErrClosed {
		t.Fatalf("ObserveBatch after Close: got %v, want ErrClosed", err)
	}
	if _, ok := tsw.Sample(); !ok {
		t.Fatal("closed sampler should stay queryable")
	}

	sq, _ := NewShardedWeightedSequenceWR[int](4, 2, 2, WithSeed(1))
	if err := sq.Observe(1, 1); err != nil {
		t.Fatal(err)
	}
	sq.Close()
	if err := sq.Observe(2, 1); err != ErrClosed {
		t.Fatalf("seq Observe after Close: got %v, want ErrClosed", err)
	}
	if err := sq.ObserveBatch([]int{3}, []float64{1}); err != ErrClosed {
		t.Fatalf("seq ObserveBatch after Close: got %v, want ErrClosed", err)
	}
	if _, ok := sq.Sample(); !ok {
		t.Fatal("closed seq sampler should stay queryable")
	}
}
