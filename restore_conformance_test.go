package slidingsample

// restore_conformance_test.go: the checkpoint/restore half of the shared
// battery (DESIGN.md §10). Every substrate row must satisfy the
// bit-identical-resume contract:
//
//   - snapshot → restore preserves Count, K and the retained sample state;
//   - a restored sampler and its uninterrupted twin produce byte-identical
//     transcripts under identical interleaved ingest and queries — samples,
//     ok flags, Count, Words and MaxWords all agree at every step;
//   - re-snapshotting both twins after the resume yields byte-identical
//     snapshots (the codec is deterministic over identical state).
//
// Words() on the sharded substrates counts lazily warmed per-shard caches,
// so each comparison round queries (which warms both twins identically)
// before comparing the footprint — the same ordering any client that cares
// about footprint parity across a restore would observe.

import (
	"bytes"
	"io"
	"testing"

	"slidingsample/internal/apps"
	"slidingsample/internal/baseline"
	"slidingsample/internal/core"
	"slidingsample/internal/parallel"
	"slidingsample/internal/stream"
	"slidingsample/internal/weighted"
	"slidingsample/internal/xrand"
)

// snapshotter is the checkpoint surface every substrate row implements.
type snapshotter interface {
	Snapshot(w io.Writer) error
}

type restoreRow struct {
	name    string
	mk      func(r *xrand.Rand) stream.Sampler[uint64]
	restore func(r io.Reader) (stream.Sampler[uint64], error)
	mayFail bool // the over-sampling baseline's documented failure mode
}

// restoreRows mirrors confSubstrates minus apps/StepBiased, which is not
// in the substrate vocabulary and has no snapshot codec.
func restoreRows() []restoreRow {
	return []restoreRow{
		{name: "core/SeqWR",
			mk:      func(r *xrand.Rand) stream.Sampler[uint64] { return core.NewSeqWR[uint64](r, confN, confK) },
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return core.RestoreSeqWR[uint64](r) }},
		{name: "core/SeqWOR",
			mk:      func(r *xrand.Rand) stream.Sampler[uint64] { return core.NewSeqWOR[uint64](r, confN, confK) },
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return core.RestoreSeqWOR[uint64](r) }},
		{name: "core/TSWR",
			mk:      func(r *xrand.Rand) stream.Sampler[uint64] { return core.NewTSWR[uint64](r, confT0, confK) },
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return core.RestoreTSWR[uint64](r) }},
		{name: "core/TSWOR",
			mk:      func(r *xrand.Rand) stream.Sampler[uint64] { return core.NewTSWOR[uint64](r, confT0, confK) },
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return core.RestoreTSWOR[uint64](r) }},
		{name: "baseline/Chain",
			mk:      func(r *xrand.Rand) stream.Sampler[uint64] { return baseline.NewChain[uint64](r, confN, confK) },
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return baseline.RestoreChain[uint64](r) }},
		{name: "baseline/Oversample", mayFail: true,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return baseline.NewOversample[uint64](r, confN, confK, 2)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return baseline.RestoreOversample[uint64](r) }},
		{name: "baseline/Priority",
			mk:      func(r *xrand.Rand) stream.Sampler[uint64] { return baseline.NewPriority[uint64](r, confT0, confK) },
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return baseline.RestorePriority[uint64](r) }},
		{name: "baseline/Skyband",
			mk:      func(r *xrand.Rand) stream.Sampler[uint64] { return baseline.NewSkyband[uint64](r, confT0, confK) },
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return baseline.RestoreSkyband[uint64](r) }},
		{name: "baseline/FullWindow(seq)",
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return baseline.NewFullWindowSeq[uint64](r, confN).Bind(confK, true)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return baseline.RestoreFullWindow[uint64](r) }},
		{name: "baseline/FullWindow(ts)",
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return baseline.NewFullWindowTS[uint64](r, confT0).Bind(confK, true)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return baseline.RestoreFullWindow[uint64](r) }},
		{name: "weighted/WOR",
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return weighted.NewWOR[uint64](r, confN, confK, confWeight)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return weighted.RestoreWOR[uint64](r, confWeight) }},
		{name: "weighted/WR",
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return weighted.NewWR[uint64](r, confN, confK, confWeight)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return weighted.RestoreWR[uint64](r, confWeight) }},
		{name: "weighted/TSWOR",
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return weighted.NewTSWOR[uint64](r, confT0, confK, 0.05, confWeight)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return weighted.RestoreTSWOR[uint64](r, confWeight) }},
		{name: "weighted/TSWR",
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return weighted.NewTSWR[uint64](r, confT0, confK, 0.05, confWeight)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return weighted.RestoreTSWR[uint64](r, confWeight) }},
		{name: "parallel/ShardedSeqWR",
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedSeqWR[uint64](r, confN, confG, confK)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return parallel.RestoreShardedSeqWR[uint64](r) }},
		{name: "parallel/ShardedTSWR",
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedTSWR[uint64](r, confT0, confG, confK, 0.05)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return parallel.RestoreShardedTSWR[uint64](r) }},
		{name: "parallel/ShardedTSWOR",
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedTSWOR[uint64](r, confT0, confG, confK, 0.05)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) { return parallel.RestoreShardedTSWOR[uint64](r) }},
		{name: "parallel/ShardedWeightedSeqWOR",
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedWeightedSeqWOR[uint64](r, confN, confG, confK, 0.05, confWeight)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) {
				return parallel.RestoreShardedWeightedSeqWOR[uint64](r, confWeight)
			}},
		{name: "parallel/ShardedWeightedSeqWR",
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedWeightedSeqWR[uint64](r, confN, confG, confK, 0.05, confWeight)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) {
				return parallel.RestoreShardedWeightedSeqWR[uint64](r, confWeight)
			}},
		{name: "parallel/ShardedWeightedTSWOR",
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedWeightedTSWOR[uint64](r, confT0, confG, confK, 0.05, confWeight)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) {
				return parallel.RestoreShardedWeightedTSWOR[uint64](r, confWeight)
			}},
		{name: "parallel/ShardedWeightedTSWR",
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedWeightedTSWR[uint64](r, confT0, confG, confK, 0.05, confWeight)
			},
			restore: func(r io.Reader) (stream.Sampler[uint64], error) {
				return parallel.RestoreShardedWeightedTSWR[uint64](r, confWeight)
			}},
	}
}

// snapshotOf snapshots any substrate into a fresh byte slice.
func snapshotOf(t *testing.T, s any) []byte {
	t.Helper()
	ss, ok := s.(snapshotter)
	if !ok {
		t.Fatalf("%T has no Snapshot method", s)
	}
	var buf bytes.Buffer
	if err := ss.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestRestoreResumeBattery ingests a prefix, snapshots mid-stream (after a
// query, so query-time RNG draws are captured too), restores, and then
// drives the original and the restored twin through identical interleaved
// ingest and queries — every observable must agree at every step.
func TestRestoreResumeBattery(t *testing.T) {
	const (
		m1     = 700 // pre-snapshot prefix
		rounds = 4
		chunk  = 150
	)
	for _, row := range restoreRows() {
		t.Run(row.name, func(t *testing.T) {
			orig := row.mk(xrand.New(20250808))
			defer confClose(orig)
			for i := 0; i < m1; i++ {
				orig.Observe(uint64(i), confTS(i))
			}
			// Query before the snapshot: queries draw randomness, and the
			// snapshot must capture the post-query RNG state.
			confSync(orig)
			_, _ = orig.Sample()

			blob := snapshotOf(t, orig)
			restored, err := row.restore(bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			defer confClose(restored)
			if restored.Count() != orig.Count() {
				t.Fatalf("restored Count %d, want %d", restored.Count(), orig.Count())
			}
			if restored.K() != orig.K() {
				t.Fatalf("restored K %d, want %d", restored.K(), orig.K())
			}

			i := m1
			for round := 0; round < rounds; round++ {
				for j := 0; j < chunk; j++ {
					orig.Observe(uint64(i), confTS(i))
					restored.Observe(uint64(i), confTS(i))
					i++
				}
				confSync(orig)
				confSync(restored)
				oe, ook := orig.Sample()
				re, rok := restored.Sample()
				if ook != rok || len(oe) != len(re) {
					t.Fatalf("round %d: sample shape diverged: ok %v/%v len %d/%d", round, ook, rok, len(oe), len(re))
				}
				if !ook && !row.mayFail {
					t.Fatalf("round %d: no sample from non-empty window", round)
				}
				for s := range oe {
					if oe[s] != re[s] {
						t.Fatalf("round %d slot %d: %+v vs %+v", round, s, oe[s], re[s])
					}
				}
				if orig.Count() != restored.Count() {
					t.Fatalf("round %d: Count diverged: %d vs %d", round, orig.Count(), restored.Count())
				}
				// Footprint parity AFTER the queries: both twins' lazily
				// warmed query caches are now in the same state.
				if orig.Words() != restored.Words() {
					t.Fatalf("round %d: Words diverged: %d vs %d", round, orig.Words(), restored.Words())
				}
				if orig.MaxWords() != restored.MaxWords() {
					t.Fatalf("round %d: MaxWords diverged: %d vs %d", round, orig.MaxWords(), restored.MaxWords())
				}
			}

			// Identical state must re-snapshot to identical bytes.
			if !bytes.Equal(snapshotOf(t, orig), snapshotOf(t, restored)) {
				t.Fatal("post-resume snapshots diverged")
			}
		})
	}
}

// TestRestoreResumeEstimators is the estimator half: the subset-sum shells
// restore with their sketches intact and estimate identically afterwards.
func TestRestoreResumeEstimators(t *testing.T) {
	const (
		m1     = 700
		rounds = 3
		chunk  = 120
	)
	type estRow struct {
		name    string
		mk      func(r *xrand.Rand) confEstimatorAPI
		restore func(r io.Reader) (confEstimatorAPI, error)
	}
	rows := []estRow{
		{name: "apps/SubsetSum",
			mk: func(r *xrand.Rand) confEstimatorAPI {
				return apps.NewSubsetSum[uint64](r, confN, confEstK, confWeight)
			},
			restore: func(r io.Reader) (confEstimatorAPI, error) { return apps.RestoreSubsetSum[uint64](r, confWeight) }},
		{name: "apps/SubsetSumTS",
			mk: func(r *xrand.Rand) confEstimatorAPI {
				return apps.NewSubsetSumTS[uint64](r, confT0, confEstK, 0.05, confWeight)
			},
			restore: func(r io.Reader) (confEstimatorAPI, error) { return apps.RestoreSubsetSumTS[uint64](r, confWeight) }},
		{name: "apps/ShardedSubsetSumTS",
			mk: func(r *xrand.Rand) confEstimatorAPI {
				return apps.NewShardedSubsetSumTS[uint64](r, confT0, confG, confEstK, 0.05, confWeight)
			},
			restore: func(r io.Reader) (confEstimatorAPI, error) {
				return apps.RestoreShardedSubsetSumTS[uint64](r, confWeight)
			}},
	}
	odd := func(v uint64) bool { return v%2 == 1 }
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			orig := row.mk(xrand.New(20250809))
			defer confEstClose(orig)
			for i := 0; i < m1; i++ {
				orig.Observe(uint64(i), confTS(i))
			}
			confEstSync(orig)
			_, _ = orig.Estimate(confEstAll)

			blob := snapshotOf(t, orig)
			restored, err := row.restore(bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			defer confEstClose(restored)
			if restored.Count() != orig.Count() || restored.K() != orig.K() {
				t.Fatalf("restored Count/K %d/%d, want %d/%d",
					restored.Count(), restored.K(), orig.Count(), orig.K())
			}

			i := m1
			for round := 0; round < rounds; round++ {
				for j := 0; j < chunk; j++ {
					orig.Observe(uint64(i), confTS(i))
					restored.Observe(uint64(i), confTS(i))
					i++
				}
				confEstSync(orig)
				confEstSync(restored)
				for _, pred := range []func(uint64) bool{confEstAll, odd} {
					ov, ook := orig.Estimate(pred)
					rv, rok := restored.Estimate(pred)
					if ook != rok || ov != rv {
						t.Fatalf("round %d: estimate diverged: %g/%v vs %g/%v", round, ov, ook, rv, rok)
					}
				}
				if orig.Words() != restored.Words() || orig.MaxWords() != restored.MaxWords() {
					t.Fatalf("round %d: footprint diverged: %d/%d vs %d/%d", round,
						orig.Words(), orig.MaxWords(), restored.Words(), restored.MaxWords())
				}
			}
			if !bytes.Equal(snapshotOf(t, orig), snapshotOf(t, restored)) {
				t.Fatal("post-resume snapshots diverged")
			}
		})
	}
}

// TestPublicSnapshotResume covers the four public adapters: restored
// samplers resume the exact stream, and the timestamp adapters' monotone
// clock guard survives the round trip.
func TestPublicSnapshotResume(t *testing.T) {
	t.Run("sequence", func(t *testing.T) {
		a, _ := NewSequenceWOR[int](100, 5, WithSeed(11))
		for i := 0; i < 250; i++ {
			a.Observe(i)
		}
		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		b, err := RestoreSequenceWOR[int](&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 250; i < 400; i++ {
			a.Observe(i)
			b.Observe(i)
		}
		av, aok := a.Sample()
		bv, bok := b.Sample()
		if aok != bok || len(av) != len(bv) {
			t.Fatal("shape diverged")
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("slot %d diverged", i)
			}
		}
	})
	t.Run("timestamp", func(t *testing.T) {
		a, _ := NewTimestampWR[int](60, 4, WithSeed(12))
		for i := 0; i < 300; i++ {
			if err := a.Observe(i, int64(i/5)); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		b, err := RestoreTimestampWR[int](&buf)
		if err != nil {
			t.Fatal(err)
		}
		// The monotone clock guard survives: a regression is refused.
		if err := b.Observe(999, 10); err != ErrTimeBackwards {
			t.Fatalf("restored clock guard: got %v", err)
		}
		for i := 300; i < 450; i++ {
			if err := a.Observe(i, int64(i/5)); err != nil {
				t.Fatal(err)
			}
			if err := b.Observe(i, int64(i/5)); err != nil {
				t.Fatal(err)
			}
		}
		av, aok := a.Sample()
		bv, bok := b.Sample()
		if aok != bok || len(av) != len(bv) {
			t.Fatal("shape diverged")
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("slot %d diverged", i)
			}
		}
	})
	t.Run("sequence-wr", func(t *testing.T) {
		a, _ := NewSequenceWR[string](80, 3, WithSeed(13))
		for i := 0; i < 200; i++ {
			a.Observe("v")
		}
		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		b, err := RestoreSequenceWR[string](&buf)
		if err != nil {
			t.Fatal(err)
		}
		av, _ := a.Sample()
		bv, _ := b.Sample()
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("slot %d diverged", i)
			}
		}
	})
	t.Run("timestamp-wor", func(t *testing.T) {
		a, _ := NewTimestampWOR[int](30, 4, WithSeed(14))
		for i := 0; i < 200; i++ {
			if err := a.Observe(i, int64(i/3)); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		b, err := RestoreTimestampWOR[int](&buf)
		if err != nil {
			t.Fatal(err)
		}
		av, aok := a.Sample()
		bv, bok := b.Sample()
		if aok != bok || len(av) != len(bv) {
			t.Fatal("shape diverged")
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("slot %d diverged", i)
			}
		}
	})
}
