module slidingsample

go 1.24

// The repository's first (and only) external dependency: the go/analysis
// framework behind cmd/swlint. The require pins the exact version the Go
// 1.24.0 toolchain itself vendors for cmd/vet; the replace points at the
// local third_party copy of that same tree, so builds never touch the
// network. See README.md "Dependency policy".
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e

replace golang.org/x/tools => ./third_party/golang.org/x/tools
