module slidingsample

go 1.24
