// Package slidingsample provides uniform random sampling from sliding
// windows over data streams with worst-case (deterministic) memory bounds —
// a Go implementation of Braverman, Ostrovsky and Zaniolo, "Optimal sampling
// from sliding windows" (PODS 2009; J. Comput. Syst. Sci. 78(1):260–272,
// 2012).
//
// # The problem
//
// A sliding window keeps only the most recent part of a stream active:
// either the last n elements (a sequence-based window) or the elements of
// the last t0 time units (a timestamp-based window). Sampling uniformly
// from such a window is harder than sampling from a whole stream because
// elements expire implicitly — by the time a sample expires, the data that
// should replace it has already passed by. Prior solutions (chain sampling,
// priority sampling, over-sampling) keep enough "backup" elements in
// expectation, but their memory use is a random variable. This package
// implements the paper's algorithms, whose memory bounds hold at every
// instant of every run:
//
//	NewSequenceWR   k samples with replacement,    last-n window,   Θ(k) words
//	NewSequenceWOR  k samples without replacement, last-n window,   Θ(k) words
//	NewTimestampWR  k samples with replacement,    last-t0 window,  Θ(k·log n) words
//	NewTimestampWOR k samples without replacement, last-t0 window,  Θ(k·log n) words
//	NewStepBiased   recency-biased sampling from nested windows     Θ(steps) words
//
// The timestamp bounds are optimal: they match the Ω(k log n) lower bound
// of Gemulla and Lehner.
//
// # Weighted sampling
//
// Weight-skewed workloads (netflow bytes, trade notional, edge
// multiplicity) waste a uniform sample's slots on light elements. The
// weighted samplers draw elements in proportion to caller-supplied positive
// weights, over both window models, under the Efraimidis–Spirakis law:
//
//	NewWeightedSequenceWOR   weighted k-sample without replacement, last-n window,  expected O(k·log n) words
//	NewWeightedSequenceWR    k independent weighted draws,          last-n window,  expected O(k·log n) words
//	NewWeightedTimestampWOR  weighted k-sample without replacement, last-t0 window, expected O(k·log n) words
//	NewWeightedTimestampWR   k independent weighted draws,          last-t0 window, expected O(k·log n) words
//
// Ingest takes the weight alongside the value — Observe(value, weight) and
// ObserveBatch(values, weights), plus a trailing timestamp for the
// timestamp-window samplers — and samples carry their weights back
// (SampledWeight). "Heaviest flows by bytes in the last minute" is three
// lines:
//
//	s, _ := slidingsample.NewWeightedTimestampWOR[Flow](60_000, 10) // last minute, k=10
//	s.Observe(flow, float64(flow.Bytes), flow.ArrivalMillis)
//	heavy, ok := s.SampleAt(nowMillis)
//
// Timestamp windows expire at query time too — SampleAt keeps draining the
// window after the last arrival — and the number of active elements n(t)
// is data-dependent and not exactly computable in small space (the paper's
// Section 3 negative result), so each timestamp-window sampler embeds an
// exponential-histogram counter: SizeAt(now) reports a (1±5%) estimate of
// n(t) without advancing the clock. Unlike the uniform samplers'
// deterministic bounds, the weighted substrates' footprint is a random
// variable (its expectation is what is bounded); the internal estimator
// layer builds Horvitz–Thompson windowed subset-sum sketches on top
// (internal/apps, experiments E17/E18).
//
// # Sharded weighted sampling
//
// For streams too fast for one core, the weighted samplers come in G-way
// parallel flavors over both window models:
//
//	NewShardedWeightedTimestampWOR  g-way ingest, exact weighted k-sample without replacement
//	NewShardedWeightedTimestampWR   g-way ingest, k weighted draws, (1±5%) cross-shard picks
//	NewShardedWeightedSequenceWOR   the same exact WOR law over the last n elements (n % g == 0)
//	NewShardedWeightedSequenceWR    k weighted draws over the last n elements, (1±5%) picks
//
// Elements are dealt round-robin to G shard goroutines. The
// without-replacement law stays EXACT — Efraimidis–Spirakis keys are
// globally comparable, so the merged per-shard top-k is the window's
// top-k — while with-replacement draws pick a shard by its estimated
// active weight, tracked per shard by an exponential histogram over
// weights; the same oracle backs TotalWeightAt (timestamp windows) and
// TotalWeight (sequence windows, clocked on the arrival index), a (1±5%)
// estimate of the window's total weight. Drive each sharded sampler —
// ingest and queries, oracles included — from one goroutine (the shard
// parallelism is internal); queries flush in-flight ingest automatically
// (every Sample/SampleAt holds a barrier, so the internal
// query-needs-Barrier panic is unreachable from the public API; Barrier
// stays exported to checkpoint once before a read-heavy query burst), and
// Close stops the shard goroutines:
//
//	s, _ := slidingsample.NewShardedWeightedTimestampWOR[Flow](60_000, 4, 10) // last minute, 4 shards
//	defer s.Close()
//	s.Observe(flow, float64(flow.Bytes), flow.ArrivalMillis)
//	heavy, ok := s.SampleAt(nowMillis)     // flushes, then samples
//	bytes := s.TotalWeightAt(nowMillis)    // (1±5%) active bytes, no flush needed
//
// # Serving over HTTP
//
// The repository also ships the serving-system shape these samplers were
// built for: cmd/swserve exposes a named-sampler registry over HTTP — any
// substrate above (plus the internal baselines and subset-sum estimator
// substrates) behind a batched JSON/NDJSON ingest endpoint and concurrent
// query endpoints (/sample, /size, /weight, /subsetsum). The hot path is
// pipelined: ingest handlers stage batches on a small admission mutex (a
// full staging queue answers 503 — bounded memory, explicit overload)
// while a per-instance applier feeds the substrate in admission order;
// read-only oracle queries ride a read lock, and sharded sample queries
// fan per-shard work across a bounded worker pool — all byte-for-byte
// seed-deterministic against the sequential path. Responses are
// deterministic per seed, timestamp monotonicity is enforced as 4xx
// statuses instead of the library's errors/panics, and shutdown drains
// every sampler's dispatcher barrier before stopping its shards. See
// DESIGN.md §7, BENCH_5.json (cmd/swload before/after rows) and
// `go doc ./cmd/swserve`.
//
// Because one sampler is only O(k·log n) words, the serving layer also
// scales the other axis: a multi-tenant FABRIC (swserve -fabric) keeps an
// independently seeded sampler per tenant — lazily created on first
// arrival through a striped keyed registry, state drawn from slab pools,
// hundreds of bytes per idle tenant — so a single process serves
// /tenant/{fabric}/{id}/... for hundreds of thousands to millions of live
// tenants with per-tenant byte-determinism. See DESIGN.md §9 and
// BENCH_6.json (naive-registry vs fabric rows).
//
// State survives restarts: every sampler carries a versioned binary
// Snapshot/Restore pair (the public wrappers expose Snapshot methods and
// RestoreSequenceWR/RestoreSequenceWOR/RestoreTimestampWR/
// RestoreTimestampWOR), and a restored sampler resumes bit-identically —
// same retained elements, same RNG position, same future draws. swserve
// layers durability on top (-state-dir): periodic snapshots plus an
// NDJSON ingest WAL appended before a batch is acknowledged, recovery on
// start, and POST /snapshot / /restore for shipping state between
// processes. See DESIGN.md §10.
//
// # One interface, many substrates
//
// All public samplers are thin generic adapters over the unified internal
// sampler interface (stream.Sampler / stream.TimedSampler): the same
// contract is satisfied by the four core algorithms, the bundled baseline
// implementations, the step-biased extension, and the sharded parallel
// ingest wrappers, so experiments, estimators and tools run against any
// substrate. Each sampler answers Sample/Values (and SampleAt/ValuesAt for
// timestamp windows), reports K, Count, and its memory footprint in the
// paper's word model via Words and MaxWords (DESIGN.md §6) — which is how
// the repository's experiments (DESIGN.md §4, regenerated by cmd/swbench)
// demonstrate the deterministic-versus-randomized contrast.
//
// # Usage
//
// Samplers are generic in the element type and are fed one element at a
// time; queries may interleave arbitrarily with arrivals:
//
//	s, _ := slidingsample.NewSequenceWOR[string](1000, 10)
//	for msg := range input {
//	    s.Observe(msg)
//	    if sample, ok := s.Sample(); ok { ... }
//	}
//
// Timestamp-based samplers take explicit non-decreasing timestamps (any
// integer clock — seconds, milliseconds, ticks) and answer queries "as of"
// a time:
//
//	s, _ := slidingsample.NewTimestampWR[Packet](60_000, 5) // last minute
//	s.Observe(pkt, pkt.ArrivalMillis)
//	sample, ok := s.SampleAt(nowMillis)
//
// # Batched ingest
//
// For high-throughput feeds, ObserveBatch pushes a run of elements through
// the sampler's batched hot path. The result is identical to calling
// Observe per element — under WithSeed the two paths make exactly the same
// random choices — but per-element bookkeeping (footprint scans, bucket
// boundary checks, expiry scans, allocator traffic) is amortized across
// the run, which is measurably faster per element (see BenchmarkBatch_* and
// BENCH_1.json):
//
//	s, _ := slidingsample.NewSequenceWOR[string](1000, 10)
//	s.ObserveBatch(lines)                       // sequence windows
//	t, _ := slidingsample.NewTimestampWR[string](60, 4)
//	err := t.ObserveBatch(values, timestamps)   // timestamp windows
//
// Samplers are not safe for concurrent use; feed each from a single
// goroutine (e.g. a channel consumer). For multi-core ingest see
// internal/parallel's sharded wrappers, reachable through cmd/swsample.
//
// The package's behavioral contracts — queries are rng-free reads, no
// ambient time or stray rng sources, the serving layer's lock ordering,
// named panics on the exported error surface — are machine-checked by
// cmd/swlint (run as `make lint`); see internal/lint and DESIGN.md §8.
package slidingsample
