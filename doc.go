// Package slidingsample provides uniform random sampling from sliding
// windows over data streams with worst-case (deterministic) memory bounds —
// a Go implementation of Braverman, Ostrovsky and Zaniolo, "Optimal sampling
// from sliding windows" (PODS 2009; J. Comput. Syst. Sci. 78(1):260–272,
// 2012).
//
// # The problem
//
// A sliding window keeps only the most recent part of a stream active:
// either the last n elements (a sequence-based window) or the elements of
// the last t0 time units (a timestamp-based window). Sampling uniformly
// from such a window is harder than sampling from a whole stream because
// elements expire implicitly — by the time a sample expires, the data that
// should replace it has already passed by. Prior solutions (chain sampling,
// priority sampling, over-sampling) keep enough "backup" elements in
// expectation, but their memory use is a random variable. This package
// implements the paper's algorithms, whose memory bounds hold at every
// instant of every run:
//
//	NewSequenceWR   k samples with replacement,    last-n window,   Θ(k) words
//	NewSequenceWOR  k samples without replacement, last-n window,   Θ(k) words
//	NewTimestampWR  k samples with replacement,    last-t0 window,  Θ(k·log n) words
//	NewTimestampWOR k samples without replacement, last-t0 window,  Θ(k·log n) words
//	NewStepBiased   recency-biased sampling from nested windows     Θ(steps) words
//
// The timestamp bounds are optimal: they match the Ω(k log n) lower bound
// of Gemulla and Lehner.
//
// # Usage
//
// Samplers are generic in the element type and are fed one element at a
// time; queries may interleave arbitrarily with arrivals:
//
//	s, _ := slidingsample.NewSequenceWOR[string](1000, 10)
//	for msg := range input {
//	    s.Observe(msg)
//	    if sample, ok := s.Sample(); ok { ... }
//	}
//
// Timestamp-based samplers take explicit non-decreasing timestamps (any
// integer clock — seconds, milliseconds, ticks) and answer queries "as of"
// a time:
//
//	s, _ := slidingsample.NewTimestampWR[Packet](60_000, 5) // last minute
//	s.Observe(pkt, pkt.ArrivalMillis)
//	sample, ok := s.SampleAt(nowMillis)
//
// Samplers are not safe for concurrent use; feed each from a single
// goroutine (e.g. a channel consumer).
//
// All samplers report their footprint in the paper's cost model via Words
// and MaxWords, which is how the repository's experiments (see EXPERIMENTS.md)
// demonstrate the deterministic-versus-randomized contrast against the
// bundled baseline implementations.
package slidingsample
