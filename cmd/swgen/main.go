// Command swgen emits synthetic data streams on stdout, one element per
// line as "timestamp value". It pairs with swsample for a self-contained
// live demo of the library:
//
//	go run ./cmd/swgen -n 100000 -arrivals bursty | \
//	    go run ./cmd/swsample -mode ts -t0 50 -k 5 -every 20000
//
// Value distributions: uniform (default), zipf, const, index.
// Arrival processes: steady (default), bursty, poisson, doubling
// (the Lemma 3.10 adversary — see DESIGN.md E4).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

func main() {
	var (
		n        = flag.Int("n", 100_000, "number of elements to emit")
		values   = flag.String("values", "uniform", "value distribution: uniform, zipf, const, index")
		arrivals = flag.String("arrivals", "steady", "arrival process: steady, bursty, poisson, doubling")
		m        = flag.Uint64("m", 1000, "value domain size (uniform/zipf)")
		zipfS    = flag.Float64("s", 1.2, "zipf exponent (values=zipf)")
		constV   = flag.Uint64("const", 0, "the constant (values=const)")
		perTick  = flag.Int("rate", 10, "elements per tick (arrivals=steady)")
		burst    = flag.Float64("burst", 16, "mean burst size (arrivals=bursty)")
		gap      = flag.Float64("gap", 4, "mean gap ticks (arrivals=bursty)")
		prate    = flag.Float64("prate", 5, "elements per tick (arrivals=poisson)")
		t0       = flag.Int("t0", 10, "adversary window parameter (arrivals=doubling)")
		seed     = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	r := xrand.New(*seed)
	var vg stream.ValueGen
	switch *values {
	case "uniform":
		vg = stream.NewUniformValues(r.Split(), *m)
	case "zipf":
		vg = stream.NewZipfValues(r.Split(), *zipfS, int(*m))
	case "const":
		vg = stream.NewConstValues(*constV)
	case "index":
		vg = stream.NewIndexValues()
	default:
		fmt.Fprintf(os.Stderr, "swgen: unknown values %q\n", *values)
		os.Exit(2)
	}

	var ag stream.Arrivals
	switch *arrivals {
	case "steady":
		ag = stream.NewSteadyArrivals(*perTick)
	case "bursty":
		ag = stream.NewBurstyArrivals(r.Split(), *burst, *gap)
	case "poisson":
		ag = stream.NewPoissonArrivals(r.Split(), *prate)
	case "doubling":
		ag = stream.NewDoublingArrivals(*t0, 1<<20)
	default:
		fmt.Fprintf(os.Stderr, "swgen: unknown arrivals %q\n", *arrivals)
		os.Exit(2)
	}

	src := stream.NewSource(vg, ag)
	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()
	for i := 0; i < *n; i++ {
		e := src.Next()
		fmt.Fprintf(w, "%d %d\n", e.TS, e.Value)
	}
}
