// Command swsample maintains a live uniform sample over a sliding window of
// lines read from stdin — a direct demonstration of the library on real
// input. Since every sampler in the repository satisfies the unified
// stream.Sampler interface, the tool can run ANY substrate — the paper's
// deterministic-memory algorithms, the randomized baselines, or the sharded
// parallel wrappers — over the same input.
//
// Usage:
//
//	tail -f app.log | swsample -mode seq -n 1000 -k 5 -every 100
//	cat events.tsv  | swsample -mode ts  -t0 60 -k 3 -field 1
//	cat app.log     | swsample -mode seq -sampler chain -batch 256
//
// Modes:
//
//	seq  sequence-based window: the last -n lines are active; each line is
//	     one element.
//	ts   timestamp-based window: each line starts with an integer timestamp
//	     (first whitespace-separated field by default, -field to choose);
//	     the last -t0 ticks are active.
//
// Samplers (-sampler; the same substrate vocabulary the swserve registry
// speaks — both resolve through internal/substrate, so the CLI and HTTP
// surfaces cannot drift):
//
//	seq mode:  wor (default, Theorem 2.2) | wr (Theorem 2.1) | chain |
//	           oversample | fullwindow | sharded-wr |
//	           weighted-wor | weighted-wr (Efraimidis–Spirakis, line weights) |
//	           sharded-weighted-wor | sharded-weighted-wr (G-way parallel
//	           weighted ingest; -n divisible by -g)
//	ts mode:   wor (default, Theorem 4.4) | wr (Theorem 3.9) | priority |
//	           skyband | fullwindow | sharded-wr | sharded-wor |
//	           weighted-ts-wor | weighted-ts-wr (Efraimidis–Spirakis over
//	           the last -t0 ticks, line weights) |
//	           sharded-weighted-ts-wor | sharded-weighted-ts-wr (G-way
//	           parallel weighted ingest; WOR merges per-shard log-keys
//	           exactly, WR picks shards by their (1±5%) weight totals)
//
// The registry also names the subset-sum estimator substrates — subsetsum
// (seq mode), subsetsum-ts and sharded-subsetsum-ts (ts mode). They answer
// Estimate, not Sample, so swsample refuses them with a pointer at
// swserve, whose /subsetsum endpoint is their query surface.
//
// The weighted samplers favor heavy lines: each line's weight is its byte
// length by default, or the float value of the 0-based field named by
// -wfield (lines whose field is missing or non-positive fall back to
// weight 1). "swsample -mode ts -sampler weighted-ts-wor -t0 60" over a
// log with epoch-second timestamps is "the heaviest lines of the last
// minute".
//
// -batch > 1 feeds the sampler through its batched ObserveBatch hot path in
// chunks of that many lines (identical samples, amortized bookkeeping).
//
// Every -every lines the current sample is printed to stderr together with
// the sampler's memory footprint in the paper's word model (DESIGN.md §6).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"slidingsample/internal/stream"
	"slidingsample/internal/substrate"
)

func main() {
	var (
		mode    = flag.String("mode", "seq", "window mode: seq or ts")
		sampler = flag.String("sampler", "wor", "substrate (see doc comment)")
		n       = flag.Uint64("n", 1000, "sequence window size (mode=seq)")
		t0      = flag.Int64("t0", 60, "timestamp horizon in ticks (mode=ts)")
		k       = flag.Int("k", 5, "sample size")
		g       = flag.Int("g", 4, "shard count (sharded-* samplers)")
		batch   = flag.Int("batch", 1, "feed in batches of this many lines (1: per element)")
		every   = flag.Int("every", 1000, "print the sample every this many lines")
		field   = flag.Int("field", 0, "0-based whitespace field holding the timestamp (mode=ts)")
		wfield  = flag.Int("wfield", -1, "0-based whitespace field holding the weight (weighted-* samplers; -1: line byte length)")
		seed    = flag.Uint64("seed", 0, "seed for reproducible sampling (0: random)")
	)
	flag.Parse()
	// Validate up front: the internal constructors treat bad parameters as
	// programmer error and panic, so the CLI turns them into clean errors.
	switch {
	case *batch < 1:
		fatal(fmt.Errorf("-batch must be at least 1"))
	case *k < 1:
		fatal(fmt.Errorf("-k must be at least 1"))
	case *g < 1:
		fatal(fmt.Errorf("-g must be at least 1"))
	case *n < 1:
		fatal(fmt.Errorf("-n must be at least 1"))
	case *t0 < 1:
		fatal(fmt.Errorf("-t0 must be at least 1"))
	case *every < 1:
		fatal(fmt.Errorf("-every must be at least 1"))
	case *field < 0:
		fatal(fmt.Errorf("-field must be non-negative"))
	}

	// The substrate vocabulary is shared with the swserve registry
	// (internal/substrate), so the CLI and HTTP surfaces cannot drift.
	built, _, err := substrate.New(substrate.Spec{
		Mode: *mode, Sampler: *sampler,
		N: *n, T0: *t0, K: *k, G: *g,
		Seed: *seed, Weight: substrate.WeightSelector(*wfield),
	})
	if err != nil {
		fatal(err)
	}
	s, ok := built.(stream.Sampler[string])
	if !ok {
		fatal(fmt.Errorf("substrate %q answers estimates, not samples — serve it with swserve instead", *sampler))
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	var lastTS int64
	pending := make([]stream.Element[string], 0, *batch)

	flush := func() {
		if len(pending) == 0 {
			return
		}
		s.ObserveBatch(pending)
		pending = pending[:0]
	}

	for sc.Scan() {
		line := sc.Text()
		var ts int64
		if *mode == "ts" {
			fields := strings.Fields(line)
			if *field >= len(fields) {
				fmt.Fprintf(os.Stderr, "swsample: line %d has no field %d, skipped\n", lines+1, *field)
				continue
			}
			v, err := strconv.ParseInt(fields[*field], 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "swsample: line %d: bad timestamp %q, skipped\n", lines+1, fields[*field])
				continue
			}
			if lines > 0 && v < lastTS {
				fmt.Fprintf(os.Stderr, "swsample: line %d: timestamp went backwards, skipped\n", lines+1)
				continue
			}
			ts = v
		}
		lastTS = ts
		lines++
		if *batch == 1 {
			s.Observe(line, ts)
		} else {
			pending = append(pending, stream.Element[string]{Value: line, TS: ts})
			if len(pending) >= *batch {
				flush()
			}
		}
		if lines%*every == 0 {
			flush()
			report(lines, s)
		}
	}
	flush()
	report(lines, s)
	if c, ok := s.(interface{ Close() }); ok {
		c.Close()
	}

	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func report(lines int, s stream.Sampler[string]) {
	// Sharded samplers need a flushed checkpoint before querying.
	if b, ok := s.(interface{ Barrier() }); ok {
		b.Barrier()
	}
	got, _ := s.Sample()
	fmt.Fprintf(os.Stderr, "--- after %d lines (memory %d words, peak %d)\n", lines, s.Words(), s.MaxWords())
	for _, e := range got {
		v := e.Value
		if len(v) > 120 {
			v = v[:117] + "..."
		}
		fmt.Fprintf(os.Stderr, "    %s\n", v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swsample:", err)
	os.Exit(1)
}
