// Command swsample maintains a live uniform sample over a sliding window of
// lines read from stdin — a direct demonstration of the library on real
// input.
//
// Usage:
//
//	tail -f app.log | swsample -mode seq -n 1000 -k 5 -every 100
//	cat events.tsv  | swsample -mode ts  -t0 60 -k 3 -field 1
//
// Modes:
//
//	seq  sequence-based window: the last -n lines are active; each line is
//	     one element.
//	ts   timestamp-based window: each line starts with an integer timestamp
//	     (first whitespace-separated field by default, -field to choose);
//	     the last -t0 ticks are active.
//
// Every -every lines the current sample (without replacement) is printed to
// stderr together with the sampler's memory footprint in the paper's word
// model.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"slidingsample"
)

func main() {
	var (
		mode  = flag.String("mode", "seq", "window mode: seq or ts")
		n     = flag.Uint64("n", 1000, "sequence window size (mode=seq)")
		t0    = flag.Int64("t0", 60, "timestamp horizon in ticks (mode=ts)")
		k     = flag.Int("k", 5, "sample size (without replacement)")
		every = flag.Int("every", 1000, "print the sample every this many lines")
		field = flag.Int("field", 0, "0-based whitespace field holding the timestamp (mode=ts)")
		seed  = flag.Uint64("seed", 0, "seed for reproducible sampling (0: random)")
	)
	flag.Parse()

	var opts []slidingsample.Option
	if *seed != 0 {
		opts = append(opts, slidingsample.WithSeed(*seed))
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0

	switch *mode {
	case "seq":
		s, err := slidingsample.NewSequenceWOR[string](*n, *k, opts...)
		if err != nil {
			fatal(err)
		}
		for sc.Scan() {
			s.Observe(sc.Text())
			lines++
			if lines%*every == 0 {
				report(lines, s.Words(), s.MaxWords(), sampleLines(s))
			}
		}
		report(lines, s.Words(), s.MaxWords(), sampleLines(s))
	case "ts":
		s, err := slidingsample.NewTimestampWOR[string](*t0, *k, opts...)
		if err != nil {
			fatal(err)
		}
		for sc.Scan() {
			line := sc.Text()
			fields := strings.Fields(line)
			if *field >= len(fields) {
				fmt.Fprintf(os.Stderr, "swsample: line %d has no field %d, skipped\n", lines+1, *field)
				continue
			}
			ts, err := strconv.ParseInt(fields[*field], 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "swsample: line %d: bad timestamp %q, skipped\n", lines+1, fields[*field])
				continue
			}
			if err := s.Observe(line, ts); err != nil {
				fmt.Fprintf(os.Stderr, "swsample: line %d: %v, skipped\n", lines+1, err)
				continue
			}
			lines++
			if lines%*every == 0 {
				got, _ := s.Sample()
				report(lines, s.Words(), s.MaxWords(), values(got))
			}
		}
		got, _ := s.Sample()
		report(lines, s.Words(), s.MaxWords(), values(got))
	default:
		fatal(fmt.Errorf("unknown mode %q (want seq or ts)", *mode))
	}

	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func sampleLines(s *slidingsample.SequenceWOR[string]) []string {
	got, _ := s.Sample()
	return values(got)
}

func values(got []slidingsample.Sampled[string]) []string {
	out := make([]string, len(got))
	for i, e := range got {
		out[i] = e.Value
	}
	return out
}

func report(lines, words, peak int, sample []string) {
	fmt.Fprintf(os.Stderr, "--- after %d lines (memory %d words, peak %d)\n", lines, words, peak)
	for _, s := range sample {
		if len(s) > 120 {
			s = s[:117] + "..."
		}
		fmt.Fprintf(os.Stderr, "    %s\n", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swsample:", err)
	os.Exit(1)
}
