package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	"slidingsample/internal/serve"
)

// runSmoke drives a fixed, fully seeded ingest/query scenario against an
// in-process listener and renders every exchange as
//
//	### METHOD /path
//	<status> <body>
//
// With a golden path the rendered transcript is compared against the file
// (the `make serve-smoke` CI gate); without one it is printed, which is
// how the golden is (re)generated:
//
//	go run ./cmd/swserve -smoke > cmd/swserve/testdata/smoke.golden
//
// Everything the scenario touches is deterministic — seeded samplers,
// fixed batches, struct-encoded JSON — so any drift is a real behavior
// change in the serving layer or the substrates beneath it.
func runSmoke(goldenPath string) error {
	registry := serve.NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: registry}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	var out strings.Builder
	call := func(method, path, contentType, body string) error {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		fmt.Fprintf(&out, "### %s %s\n%d %s\n", method, path, resp.StatusCode, strings.TrimSpace(string(b)))
		return nil
	}
	post := func(path, body string) error { return call(http.MethodPost, path, "application/json", body) }
	get := func(path string) error { return call(http.MethodGet, path, "", "") }

	// The scenario: a sharded weighted timestamp sampler and a sharded
	// subset-sum estimator, a JSON burst, an NDJSON burst, reads at and
	// past the last arrival, and the error surface (404/400/409).
	steps := []func() error{
		func() error { return get("/healthz") },
		func() error {
			return post("/samplers",
				`{"name":"flows","spec":{"mode":"ts","sampler":"sharded-weighted-ts-wor","t0":60,"k":5,"g":4,"seed":7}}`)
		},
		func() error {
			return post("/samplers",
				`{"name":"est","spec":{"mode":"ts","sampler":"sharded-subsetsum-ts","t0":60,"k":6,"g":2,"seed":11}}`)
		},
		func() error {
			var vals, tss, ws []string
			for i := 0; i < 120; i++ {
				vals = append(vals, fmt.Sprintf("%q", fmt.Sprintf("flow-%03d", i)))
				tss = append(tss, fmt.Sprintf("%d", i/4))
				ws = append(ws, fmt.Sprintf("%d", i%9+1))
			}
			return post("/ingest/flows", fmt.Sprintf(`{"values":[%s],"timestamps":[%s],"weights":[%s]}`,
				strings.Join(vals, ","), strings.Join(tss, ","), strings.Join(ws, ",")))
		},
		func() error {
			var b strings.Builder
			for i := 120; i < 160; i++ {
				fmt.Fprintf(&b, "{\"value\":\"flow-%03d\",\"ts\":%d,\"weight\":%d}\n", i, i/4, i%9+1)
			}
			return call(http.MethodPost, "/ingest/flows", "application/x-ndjson", b.String())
		},
		func() error {
			var vals, tss []string
			for i := 0; i < 200; i++ {
				kind := "get"
				if i%3 == 0 {
					kind = "put"
				}
				vals = append(vals, fmt.Sprintf("%q", fmt.Sprintf("%s-%03d", kind, i)))
				tss = append(tss, fmt.Sprintf("%d", i/5))
			}
			return post("/ingest/est", fmt.Sprintf(`{"values":[%s],"timestamps":[%s]}`,
				strings.Join(vals, ","), strings.Join(tss, ",")))
		},
		func() error { return get("/samplers") },
		func() error { return get("/sample/flows?at=39") },
		func() error { return get("/size/flows?at=39") },
		func() error { return get("/weight/flows?at=39") },
		// Past the last arrival: the window drains at query time.
		func() error { return get("/sample/flows?at=70") },
		func() error { return get("/size/flows?at=70") },
		func() error { return get("/subsetsum/est?at=39") },
		func() error { return get("/subsetsum/est?at=39&prefix=put") },
		func() error { return get("/subsetsum/est?at=39&prefix=get") },
		func() error { return get("/subsetsum/est?at=39&contains=9") },
		func() error { return get("/weight/est?at=39") },
		// The error surface.
		func() error { return get("/sample/missing") },
		func() error { return post("/ingest/flows", `{"values":["x"],"timestamps":[1,2]}`) },
		func() error { return post("/ingest/flows", `{"values":["x"],"timestamps":[10]}`) },
		func() error { return get("/sample/flows?at=50") },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}

	// Graceful shutdown: samplers drain and stay queryable; ingest refuses.
	registry.Close()
	if err := get("/sample/flows?at=70"); err != nil {
		return err
	}
	if err := post("/ingest/flows", `{"values":["late"],"timestamps":[99]}`); err != nil {
		return err
	}

	transcript := out.String()
	if goldenPath == "" {
		fmt.Print(transcript)
		return nil
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		return err
	}
	if transcript != string(want) {
		return fmt.Errorf("smoke output drifted from %s:\n%s", goldenPath, firstDiff(transcript, string(want)))
	}
	fmt.Println("serve smoke: OK")
	return nil
}

// firstDiff renders the first differing line pair for a readable failure.
func firstDiff(got, want string) string {
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g, w)
		}
	}
	return "(lengths differ only)"
}
