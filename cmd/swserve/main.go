// Command swserve serves sliding-window samplers over HTTP: the library's
// substrates behind internal/serve's named-sampler registry, a batched
// JSON/NDJSON ingest endpoint and concurrent query endpoints. It is the
// serving-system shape the ROADMAP's north star calls for — samplers are
// long-lived in-memory state; clients ingest and query over the network.
//
// Usage:
//
//	swserve -addr :8080 -mode ts -sampler sharded-weighted-ts-wor -t0 60 -g 4 -k 10
//
// registers one sampler (named by -name, default "default") built exactly
// like cmd/swsample's substrate selection; further samplers can be added at
// runtime with POST /samplers. Endpoints:
//
//	GET  /healthz            liveness
//	GET  /samplers           list registered samplers
//	POST /samplers           {"name":..., "spec":{mode,sampler,n,t0,k,g,seed,weight}}
//	POST /ingest/{name}      {"values":[...],"timestamps":[...],"weights":[...]}
//	                         or NDJSON {"value":...,"ts":...,"weight":...} lines
//	GET  /sample/{name}      current sample                [?at=<ts>]
//	GET  /size/{name}        (1±5%) window-size oracle     [?at=<ts>]
//	GET  /weight/{name}      (1±5%) active-weight oracle   [?at=<ts>]
//	GET  /subsetsum/{name}   subset-sum estimate           [?at=&prefix=&contains=]
//
// With -fabric the initial registration is a multi-tenant FABRIC instead of
// a single sampler: per-tenant samplers are stamped out lazily from the
// spec on first ingest (DESIGN.md §9), capped at -max-tenants, under
// /tenant/{fabric}/{tenant-id}/{ingest,sample,size,weight,subsetsum}; more
// fabrics can be added at runtime with POST /fabrics.
//
// With -state-dir the registry is DURABLE (DESIGN.md §10): each instance
// keeps a binary snapshot plus an NDJSON ingest WAL in the directory, the
// WAL is appended before a batch is acknowledged, snapshots are rewritten
// every -snapshot-interval and at shutdown, and a restart restores the
// snapshots and replays the uncovered WAL tails before serving — a
// recovered sampler resumes the exact random stream it was killed in.
// Snapshots can also be taken and shipped over the wire with
// POST /snapshot/{name} and POST /restore/{name}.
//
// -pprof exposes net/http/pprof under /debug/pprof/ (off by default —
// profiling endpoints are an information leak on an open port; never
// served in smoke mode). Tenant-scale memory profiles are then one
// `go tool pprof .../debug/pprof/heap` away.
//
// On SIGINT/SIGTERM the server shuts down gracefully: in-flight requests
// finish, then every sampler drains its dispatcher barrier before its
// shard goroutines stop.
//
// -smoke runs a fixed, seeded ingest/query scenario against an in-process
// listener and prints every response; with -golden FILE the output is
// compared against the file instead (exit 1 on drift). `make serve-smoke`
// wires this into CI with no external tooling.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"slidingsample/internal/serve"
	"slidingsample/internal/substrate"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		name    = flag.String("name", "default", "name of the initially registered sampler")
		mode    = flag.String("mode", "seq", "window mode of the initial sampler: seq or ts")
		sampler = flag.String("sampler", "wor", "substrate of the initial sampler (swsample vocabulary; see doc comment)")
		n       = flag.Uint64("n", 1000, "sequence window size (mode=seq)")
		t0      = flag.Int64("t0", 60, "timestamp horizon in ticks (mode=ts)")
		k       = flag.Int("k", 5, "sample size")
		g       = flag.Int("g", 4, "shard count (sharded-* samplers)")
		seed    = flag.Uint64("seed", 0, "seed for reproducible sampling (0: random)")
		wfield  = flag.Int("wfield", -1, "0-based whitespace field holding the weight (weighted-* samplers; -1: value byte length)")
		smoke   = flag.Bool("smoke", false, "run the fixed smoke scenario against an in-process server and exit")
		golden  = flag.String("golden", "", "with -smoke: compare output against this golden file instead of printing")

		stateDir     = flag.String("state-dir", "", "durability directory: snapshots + ingest WALs; instances found there are recovered on start")
		snapInterval = flag.Duration("snapshot-interval", 30*time.Second, "with -state-dir: periodic snapshot cadence (0: only on shutdown)")

		fabric     = flag.Bool("fabric", false, "register the initial spec as a multi-tenant fabric instead of a single sampler")
		maxTenants = flag.Int("max-tenants", 0, "with -fabric: tenant budget (0: serve.DefaultMaxTenants)")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (never in smoke mode)")

		defaults          = serve.DefaultHTTPTimeouts()
		readHeaderTimeout = flag.Duration("read-header-timeout", defaults.ReadHeaderTimeout, "bound on reading a request's headers (slowloris protection)")
		readTimeout       = flag.Duration("read-timeout", defaults.ReadTimeout, "bound on reading a whole request, body included")
		idleTimeout       = flag.Duration("idle-timeout", defaults.IdleTimeout, "bound on an idle keep-alive connection")
		maxHeaderBytes    = flag.Int("max-header-bytes", defaults.MaxHeaderBytes, "bound on a request's header size")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(*golden); err != nil {
			fmt.Fprintln(os.Stderr, "swserve:", err)
			os.Exit(1)
		}
		return
	}

	spec := serve.Spec{
		Mode: *mode, Sampler: *sampler,
		N: *n, T0: *t0, K: *k, G: *g,
		Seed: *seed, Weight: substrate.WeightSelector(*wfield),
	}
	registry := serve.NewServer()
	var sd *serve.StateDir
	if *stateDir != "" {
		var err error
		sd, err = serve.OpenStateDir(*stateDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swserve:", err)
			os.Exit(1)
		}
		recovered, err := sd.Recover(registry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swserve:", err)
			os.Exit(1)
		}
		if len(recovered) > 0 {
			fmt.Fprintf(os.Stderr, "swserve: recovered %d sampler(s) from %s: %v\n", len(recovered), *stateDir, recovered)
		}
		registry.SetStateDir(sd)
	}
	if _, already := registry.Get(*name); already && !*fabric {
		fmt.Fprintf(os.Stderr, "swserve: resuming recovered %q on %s\n", *name, *addr)
	} else if *fabric {
		f, err := registry.RegisterFabric(*name, spec, *maxTenants)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swserve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "swserve: serving fabric %q (%s/%s, base seed %d, max %d tenants) on %s\n",
			*name, spec.Mode, spec.Sampler, f.Spec().Seed, f.MaxTenants(), *addr)
	} else {
		inst, err := registry.Register(*name, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swserve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "swserve: serving %q (%s/%s, seed %d) on %s\n",
			*name, spec.Mode, spec.Sampler, inst.Spec().Seed, *addr)
	}

	httpSrv := serve.NewHTTPServer(*addr, buildHandler(registry, *pprofOn), serve.HTTPTimeouts{
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	})
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if sd != nil && *snapInterval > 0 {
		ticker := time.NewTicker(*snapInterval)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				if err := sd.SnapshotAll(); err != nil {
					fmt.Fprintln(os.Stderr, "swserve: snapshot:", err)
				}
			}
		}()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "swserve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Graceful shutdown: finish in-flight requests, THEN drain every
		// sampler (final dispatcher barrier) and stop the shard workers —
		// the order matters, a handler mid-flight must never observe a
		// closing dispatcher.
		fmt.Fprintln(os.Stderr, "swserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "swserve: shutdown:", err)
		}
		registry.Close()
		// A final snapshot after the drain: on a clean shutdown the WAL
		// tail is empty and restart resumes without replay.
		if sd != nil {
			if err := sd.SnapshotAll(); err != nil {
				fmt.Fprintln(os.Stderr, "swserve: snapshot:", err)
			}
		}
	}
}
