package main

import (
	"net/http"
	"net/http/pprof"
)

// buildHandler wraps the registry in the process-level routes. With pprofOn
// the net/http/pprof endpoints are mounted explicitly — NOT via the
// package's init side effect on http.DefaultServeMux, which would expose
// them unconditionally the moment anything served the default mux. Off is
// the default: profiling endpoints leak heap contents and symbol names, so
// they are opt-in per process (and the smoke scenario never passes them).
func buildHandler(registry http.Handler, pprofOn bool) http.Handler {
	if !pprofOn {
		return registry
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", registry)
	return mux
}
