package main

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"slidingsample/internal/serve"
)

// TestBuildHandlerPprofGating pins the -pprof contract: the profiling
// endpoints exist exactly when the flag is set, and the registry routes are
// served either way.
func TestBuildHandlerPprofGating(t *testing.T) {
	for _, on := range []bool{false, true} {
		registry := serve.NewServer()
		t.Cleanup(registry.Close)
		h := buildHandler(registry, on)

		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
		want := http.StatusNotFound
		if on {
			want = http.StatusOK
		}
		if rr.Code != want {
			t.Errorf("pprof=%v: GET /debug/pprof/cmdline = %d, want %d", on, rr.Code, want)
		}

		rr = httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
		if rr.Code != http.StatusOK {
			t.Errorf("pprof=%v: GET /healthz = %d, want 200", on, rr.Code)
		}
	}
}
