// Command swload is the end-to-end load harness for the serving layer: it
// drives concurrent ingest and query traffic through the real HTTP stack
// and reports ingest throughput and query latency percentiles as a JSON
// summary on stdout.
//
// By default the run is hermetic: swload starts an in-process server
// (internal/serve registry behind serve.NewHTTPServer on a loopback
// listener), registers one seq-mode sharded weighted sampler, and measures
// against it — no external process, no ports to coordinate, reproducible in
// CI. With -url it targets a running swserve instead, registering its
// sampler via POST /samplers.
//
// The workload has three phases:
//
//   - ingest: -clients goroutines each POST -batches batches of -batch-size
//     weighted values to /ingest/{name}; 503 (staging queue full) is retried.
//     Reported as events/sec plus request latency percentiles.
//   - query: the same client count issues -queries GET /sample/{name} each;
//     reported as query latency percentiles.
//   - mixed: producers run a second ingest wave while an equal number of
//     query clients alternate GET /sample and GET /weight until the wave
//     ends. This is the phase the lock split exists for — query latency
//     while ingest is hot measures how long reads stall behind writes.
//
// The sampler is seq-mode (sequence window) so concurrent producers cannot
// violate timestamp monotonicity against each other — arrival order IS the
// admission order, whatever interleaving the scheduler picks.
//
// -legacy measures the pre-pipeline baseline: whole-request ingest locking
// and sequential shard queries (serve.SetPipelinedIngest(false),
// parallel.SetQueryFanout(1)). BENCH_5.json pairs -legacy rows with default
// rows at equal workloads.
//
// -tenants N switches the workload to the multi-tenant fabric: one fabric
// is registered (any "sharded-" prefix on -sampler is dropped — fabrics
// reject substrates that own goroutines) and every request targets
// /tenant/{fabric}/{id}/... for an id drawn from a Zipf(-tenant-skew)
// distribution over N tenants. The pick sequence is precomputed
// sequentially from the run seed, so the tenant mix is reproducible across
// runs and servers. The mixed wave's readers stick to /sample in tenant
// mode (/weight depends on the template's oracle capability). BENCH_6.json
// pairs tenant-mode rows at increasing N.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"slidingsample/internal/parallel"
	"slidingsample/internal/serve"
	"slidingsample/internal/xrand"
)

type phaseSummary struct {
	Requests     int     `json:"requests"`
	Events       int     `json:"events,omitempty"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"eventsPerSec,omitempty"`
	ReqPerSec    float64 `json:"reqPerSec"`
	P50Ms        float64 `json:"p50Ms"`
	P99Ms        float64 `json:"p99Ms"`
	Retried      int     `json:"retried503,omitempty"`
}

type summary struct {
	Label      string  `json:"label,omitempty"`
	Pipelined  bool    `json:"pipelined"`
	Fanout     int     `json:"fanout"`
	Clients    int     `json:"clients"`
	Batches    int     `json:"batchesPerClient"`
	BatchSize  int     `json:"batchSize"`
	Queries    int     `json:"queriesPerClient"`
	Sampler    string  `json:"sampler"`
	Tenants    int     `json:"tenants,omitempty"`
	TenantSkew float64 `json:"tenantSkew,omitempty"`
	// LiveTenants is read back from GET /fabrics after the waves: how many
	// tenants the pick distribution actually instantiated.
	LiveTenants int          `json:"liveTenants,omitempty"`
	Ingest      phaseSummary `json:"ingest"`
	Query       phaseSummary `json:"query"`
	// Mixed reruns ingest with concurrent readers: MixedIngest is the wave's
	// ingest view, MixedSample/MixedWeight the readers' latency split by
	// endpoint (/sample takes the application lock, /weight rides the read
	// lock and only waits for the applier to catch up).
	MixedIngest phaseSummary `json:"mixedIngest"`
	MixedSample phaseSummary `json:"mixedSample"`
	MixedWeight phaseSummary `json:"mixedWeight"`
}

func main() {
	var (
		urlFlag    = flag.String("url", "", "base URL of a running swserve; empty: hermetic in-process server")
		name       = flag.String("name", "load", "sampler name to register and drive")
		sampler    = flag.String("sampler", "sharded-weighted-wor", "seq-mode substrate to load")
		clients    = flag.Int("clients", 4, "concurrent client goroutines")
		batches    = flag.Int("batches", 50, "ingest batches per client")
		batchSize  = flag.Int("batch-size", 100, "values per ingest batch")
		queries    = flag.Int("queries", 200, "sample queries per client")
		n          = flag.Uint64("n", 4096, "sequence window size")
		k          = flag.Int("k", 16, "sample size")
		g          = flag.Int("g", 4, "shard count")
		seed       = flag.Uint64("seed", 5, "sampler seed")
		legacy     = flag.Bool("legacy", false, "baseline: pre-pipeline ingest and sequential shard queries")
		fanout     = flag.Int("fanout", 0, "shard-query worker bound (0: min(GOMAXPROCS, 8); ignored with -legacy)")
		label      = flag.String("label", "", "free-form label copied into the JSON summary")
		tenants    = flag.Int("tenants", 0, "fabric mode: spread the workload over this many tenants (0: one named sampler)")
		tenantSkew = flag.Float64("tenant-skew", 1.1, "zipf exponent for the tenant pick distribution (<=0: uniform)")
	)
	flag.Parse()

	if *legacy {
		serve.SetPipelinedIngest(false)
		parallel.SetQueryFanout(1)
	} else if *fanout > 0 {
		parallel.SetQueryFanout(*fanout)
	}

	samplerName := *sampler
	if *tenants > 0 {
		// Fabrics parallelize across tenants, not within one sampler, and
		// reject goroutine-owning sharded substrates.
		samplerName = strings.TrimPrefix(samplerName, "sharded-")
	}
	spec := serve.Spec{Mode: "seq", Sampler: samplerName, N: *n, K: *k, G: *g, Seed: *seed}
	if *tenants > 0 {
		spec.G = 0
	}
	base := *urlFlag
	if base == "" {
		registry := serve.NewServer()
		if *tenants > 0 {
			if _, err := registry.RegisterFabric(*name, spec, *tenants); err != nil {
				fatal(err)
			}
		} else if _, err := registry.Register(*name, spec); err != nil {
			fatal(err)
		}
		defer registry.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		srv := serve.NewHTTPServer("", registry, serve.DefaultHTTPTimeouts())
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
	} else {
		base = strings.TrimRight(base, "/")
		if err := registerRemote(base, *name, spec, *tenants); err != nil {
			fatal(err)
		}
	}
	rt := newRoutes(base, *name, *tenants, *tenantSkew, *seed, *clients, *batches, *queries)

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}}

	out := summary{
		Label:      *label,
		Pipelined:  !*legacy,
		Fanout:     parallel.QueryFanout(),
		Clients:    *clients,
		Batches:    *batches,
		BatchSize:  *batchSize,
		Queries:    *queries,
		Sampler:    samplerName,
		Tenants:    *tenants,
		TenantSkew: *tenantSkew,
	}
	if *tenants == 0 {
		out.TenantSkew = 0
	}
	out.Ingest = runIngest(client, rt, *clients, *batches, *batchSize, 0)
	out.Query = runQueries(client, rt, *clients, *queries)
	out.MixedIngest, out.MixedSample, out.MixedWeight =
		runMixed(client, rt, *clients, *batches, *batchSize)
	if *tenants > 0 {
		out.LiveTenants = liveTenants(client, base, *name)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swload:", err)
	os.Exit(1)
}

// registerRemote creates the load sampler — or, with tenants > 0, the load
// fabric — on an external server, tolerating "already exists" so repeated
// runs can share one instance.
func registerRemote(base, name string, spec serve.Spec, tenants int) error {
	url := base + "/samplers"
	var payload any = struct {
		Name string     `json:"name"`
		Spec serve.Spec `json:"spec"`
	}{name, spec}
	if tenants > 0 {
		url = base + "/fabrics"
		payload = struct {
			Name       string     `json:"name"`
			Spec       serve.Spec `json:"spec"`
			MaxTenants int        `json:"maxTenants"`
		}{name, spec, tenants}
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK, http.StatusCreated, http.StatusConflict:
		return nil
	}
	return fmt.Errorf("register %q on %s: status %d", name, base, resp.StatusCode)
}

// routes maps workload slots (global request indices) to URLs. Classic mode
// always targets the one named sampler; tenant mode spreads requests over
// /tenant/{fabric}/{id}/... following a precomputed Zipf pick sequence, so
// the tenant mix is identical run to run. weight is nil when the mixed
// wave's readers should stick to /sample.
type routes struct {
	ingest func(slot int) string
	sample func(slot int) string
	weight func(slot int) string
}

func newRoutes(base, name string, tenants int, skew float64, seed uint64, clients, batches, queries int) routes {
	if tenants <= 0 {
		return routes{
			ingest: func(int) string { return base + "/ingest/" + name },
			sample: func(int) string { return base + "/sample/" + name },
			weight: func(int) string { return base + "/weight/" + name },
		}
	}
	// Precompute the pick table sequentially from the run seed: slots
	// consume it modulo its length, so every phase (and every rerun) sees
	// the same skewed tenant mix regardless of goroutine interleaving.
	total := clients * (2*batches + queries)
	if total < 1024 {
		total = 1024
	}
	picks := make([]int, total)
	r := xrand.New(seed)
	if skew > 0 {
		z := xrand.NewZipf(r, skew, tenants)
		for i := range picks {
			picks[i] = int(z.Next())
		}
	} else {
		for i := range picks {
			picks[i] = int(r.Uint64n(uint64(tenants)))
		}
	}
	tid := func(slot int) string {
		return fmt.Sprintf("%s/tenant/%s/t%06d", base, name, picks[slot%len(picks)])
	}
	return routes{
		ingest: func(slot int) string { return tid(slot) + "/ingest" },
		sample: func(slot int) string { return tid(slot) + "/sample" },
	}
}

// ingestBody builds one deterministic batch payload: weights cycle over a
// small set, values encode (client, batch, index) so every element is
// distinct.
func ingestBody(c, b, size int) string {
	var sb strings.Builder
	sb.WriteString(`{"values":[`)
	for i := 0; i < size; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `"c%d-b%d-i%d"`, c, b, i)
	}
	sb.WriteString(`],"weights":[`)
	for i := 0; i < size; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d.5", (c+b+i)%9+1)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// runIngest drives one concurrent ingest wave; batchOffset keeps a second
// wave's values distinct from the first. The slot passed to the route is
// (client, batch) flattened, so the tenant pick for a given batch does not
// depend on scheduling.
func runIngest(client *http.Client, rt routes, clients, batches, size, batchOffset int) phaseSummary {
	durs := make([][]time.Duration, clients)
	retries := make([]int, clients)
	var wg sync.WaitGroup
	start := time.Now() //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				body := ingestBody(c, b+batchOffset, size)
				for {
					t0 := time.Now() //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
					code, err := doPost(client, rt.ingest(c*batches+b), body)
					durs[c] = append(durs[c], time.Since(t0)) //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
					if err != nil {
						fatal(err)
					}
					if code == http.StatusServiceUnavailable {
						retries[c]++
						continue // staging queue full: back off by retrying
					}
					if code != http.StatusOK {
						fatal(fmt.Errorf("ingest status %d", code))
					}
					break
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start) //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds

	all := merge(durs)
	events := clients * batches * size
	retried := 0
	for _, r := range retries {
		retried += r
	}
	return phaseSummary{
		Requests:     len(all),
		Events:       events,
		Seconds:      elapsed.Seconds(),
		EventsPerSec: float64(events) / elapsed.Seconds(),
		ReqPerSec:    float64(len(all)) / elapsed.Seconds(),
		P50Ms:        percentileMs(all, 50),
		P99Ms:        percentileMs(all, 99),
		Retried:      retried,
	}
}

func runQueries(client *http.Client, rt routes, clients, queries int) phaseSummary {
	durs := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	start := time.Now() //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				t0 := time.Now() //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
				code, err := doGet(client, rt.sample(c*queries+q))
				durs[c] = append(durs[c], time.Since(t0)) //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
				if err != nil {
					fatal(err)
				}
				// Tenant-mode picks can land on a tenant with no arrivals yet;
				// 404 is that route's documented answer, not a failure.
				if code != http.StatusOK && code != http.StatusNotFound {
					fatal(fmt.Errorf("sample status %d", code))
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start) //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds

	all := merge(durs)
	return phaseSummary{
		Requests:  len(all),
		Seconds:   elapsed.Seconds(),
		ReqPerSec: float64(len(all)) / elapsed.Seconds(),
		P50Ms:     percentileMs(all, 50),
		P99Ms:     percentileMs(all, 99),
	}
}

// runMixed reruns the ingest wave while an equal number of readers
// alternate /sample and /weight (tenant mode: /sample only), measuring read
// latency with writes hot.
func runMixed(client *http.Client, rt routes, clients, batches, size int) (ingest, sample, weight phaseSummary) {
	sampleDurs := make([][]time.Duration, clients)
	weightDurs := make([][]time.Duration, clients)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for c := 0; c < clients; c++ {
		readers.Add(1)
		go func(c int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url, durs := rt.sample(i*clients+c), &sampleDurs[c]
				if i%2 == 1 && rt.weight != nil {
					url, durs = rt.weight(i*clients+c), &weightDurs[c]
				}
				t0 := time.Now() //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
				code, err := doGet(client, url)
				*durs = append(*durs, time.Since(t0)) //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
				if err != nil {
					fatal(err)
				}
				if code != http.StatusOK && code != http.StatusNotFound {
					fatal(fmt.Errorf("mixed query status %d", code))
				}
			}
		}(c)
	}
	ingest = runIngest(client, rt, clients, batches, size, batches)
	close(stop)
	readers.Wait()

	sAll, wAll := merge(sampleDurs), merge(weightDurs)
	sample = phaseSummary{
		Requests:  len(sAll),
		Seconds:   ingest.Seconds,
		ReqPerSec: float64(len(sAll)) / ingest.Seconds,
		P50Ms:     percentileMs(sAll, 50),
		P99Ms:     percentileMs(sAll, 99),
	}
	weight = phaseSummary{
		Requests:  len(wAll),
		Seconds:   ingest.Seconds,
		ReqPerSec: float64(len(wAll)) / ingest.Seconds,
		P50Ms:     percentileMs(wAll, 50),
		P99Ms:     percentileMs(wAll, 99),
	}
	return ingest, sample, weight
}

func doPost(client *http.Client, url, body string) (int, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// liveTenants reads the fabric listing and returns the named fabric's live
// tenant count (0 if the listing is unavailable — diagnostics, not a gate).
func liveTenants(client *http.Client, base, name string) int {
	resp, err := client.Get(base + "/fabrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var infos []struct {
		Name    string `json:"name"`
		Tenants int    `json:"tenants"`
	}
	if json.NewDecoder(resp.Body).Decode(&infos) != nil {
		return 0
	}
	for _, info := range infos {
		if info.Name == name {
			return info.Tenants
		}
	}
	return 0
}

func doGet(client *http.Client, url string) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func merge(durs [][]time.Duration) []time.Duration {
	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// percentileMs returns the p-th percentile of a sorted latency slice in
// milliseconds (nearest-rank).
func percentileMs(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
