// Command swload is the end-to-end load harness for the serving layer: it
// drives concurrent ingest and query traffic through the real HTTP stack
// and reports ingest throughput and query latency percentiles as a JSON
// summary on stdout.
//
// By default the run is hermetic: swload starts an in-process server
// (internal/serve registry behind serve.NewHTTPServer on a loopback
// listener), registers one seq-mode sharded weighted sampler, and measures
// against it — no external process, no ports to coordinate, reproducible in
// CI. With -url it targets a running swserve instead, registering its
// sampler via POST /samplers.
//
// The workload has three phases:
//
//   - ingest: -clients goroutines each POST -batches batches of -batch-size
//     weighted values to /ingest/{name}; 503 (staging queue full) is retried.
//     Reported as events/sec plus request latency percentiles.
//   - query: the same client count issues -queries GET /sample/{name} each;
//     reported as query latency percentiles.
//   - mixed: producers run a second ingest wave while an equal number of
//     query clients alternate GET /sample and GET /weight until the wave
//     ends. This is the phase the lock split exists for — query latency
//     while ingest is hot measures how long reads stall behind writes.
//
// The sampler is seq-mode (sequence window) so concurrent producers cannot
// violate timestamp monotonicity against each other — arrival order IS the
// admission order, whatever interleaving the scheduler picks.
//
// -legacy measures the pre-pipeline baseline: whole-request ingest locking
// and sequential shard queries (serve.SetPipelinedIngest(false),
// parallel.SetQueryFanout(1)). BENCH_5.json pairs -legacy rows with default
// rows at equal workloads.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"slidingsample/internal/parallel"
	"slidingsample/internal/serve"
)

type phaseSummary struct {
	Requests     int     `json:"requests"`
	Events       int     `json:"events,omitempty"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"eventsPerSec,omitempty"`
	ReqPerSec    float64 `json:"reqPerSec"`
	P50Ms        float64 `json:"p50Ms"`
	P99Ms        float64 `json:"p99Ms"`
	Retried      int     `json:"retried503,omitempty"`
}

type summary struct {
	Label     string       `json:"label,omitempty"`
	Pipelined bool         `json:"pipelined"`
	Fanout    int          `json:"fanout"`
	Clients   int          `json:"clients"`
	Batches   int          `json:"batchesPerClient"`
	BatchSize int          `json:"batchSize"`
	Queries   int          `json:"queriesPerClient"`
	Sampler   string       `json:"sampler"`
	Ingest    phaseSummary `json:"ingest"`
	Query     phaseSummary `json:"query"`
	// Mixed reruns ingest with concurrent readers: MixedIngest is the wave's
	// ingest view, MixedSample/MixedWeight the readers' latency split by
	// endpoint (/sample takes the application lock, /weight rides the read
	// lock and only waits for the applier to catch up).
	MixedIngest phaseSummary `json:"mixedIngest"`
	MixedSample phaseSummary `json:"mixedSample"`
	MixedWeight phaseSummary `json:"mixedWeight"`
}

func main() {
	var (
		urlFlag   = flag.String("url", "", "base URL of a running swserve; empty: hermetic in-process server")
		name      = flag.String("name", "load", "sampler name to register and drive")
		sampler   = flag.String("sampler", "sharded-weighted-wor", "seq-mode substrate to load")
		clients   = flag.Int("clients", 4, "concurrent client goroutines")
		batches   = flag.Int("batches", 50, "ingest batches per client")
		batchSize = flag.Int("batch-size", 100, "values per ingest batch")
		queries   = flag.Int("queries", 200, "sample queries per client")
		n         = flag.Uint64("n", 4096, "sequence window size")
		k         = flag.Int("k", 16, "sample size")
		g         = flag.Int("g", 4, "shard count")
		seed      = flag.Uint64("seed", 5, "sampler seed")
		legacy    = flag.Bool("legacy", false, "baseline: pre-pipeline ingest and sequential shard queries")
		fanout    = flag.Int("fanout", 0, "shard-query worker bound (0: min(GOMAXPROCS, 8); ignored with -legacy)")
		label     = flag.String("label", "", "free-form label copied into the JSON summary")
	)
	flag.Parse()

	if *legacy {
		serve.SetPipelinedIngest(false)
		parallel.SetQueryFanout(1)
	} else if *fanout > 0 {
		parallel.SetQueryFanout(*fanout)
	}

	spec := serve.Spec{Mode: "seq", Sampler: *sampler, N: *n, K: *k, G: *g, Seed: *seed}
	base := *urlFlag
	if base == "" {
		registry := serve.NewServer()
		if _, err := registry.Register(*name, spec); err != nil {
			fatal(err)
		}
		defer registry.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		srv := serve.NewHTTPServer("", registry, serve.DefaultHTTPTimeouts())
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
	} else {
		base = strings.TrimRight(base, "/")
		if err := registerRemote(base, *name, spec); err != nil {
			fatal(err)
		}
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}}

	out := summary{
		Label:     *label,
		Pipelined: !*legacy,
		Fanout:    parallel.QueryFanout(),
		Clients:   *clients,
		Batches:   *batches,
		BatchSize: *batchSize,
		Queries:   *queries,
		Sampler:   *sampler,
	}
	out.Ingest = runIngest(client, base, *name, *clients, *batches, *batchSize, 0)
	out.Query = runQueries(client, base, *name, *clients, *queries)
	out.MixedIngest, out.MixedSample, out.MixedWeight =
		runMixed(client, base, *name, *clients, *batches, *batchSize)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swload:", err)
	os.Exit(1)
}

// registerRemote creates the load sampler on an external server, tolerating
// "already exists" so repeated runs can share one instance.
func registerRemote(base, name string, spec serve.Spec) error {
	body, err := json.Marshal(struct {
		Name string     `json:"name"`
		Spec serve.Spec `json:"spec"`
	}{name, spec})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/samplers", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("register %q on %s: status %d", name, base, resp.StatusCode)
	}
	return nil
}

// ingestBody builds one deterministic batch payload: weights cycle over a
// small set, values encode (client, batch, index) so every element is
// distinct.
func ingestBody(c, b, size int) string {
	var sb strings.Builder
	sb.WriteString(`{"values":[`)
	for i := 0; i < size; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `"c%d-b%d-i%d"`, c, b, i)
	}
	sb.WriteString(`],"weights":[`)
	for i := 0; i < size; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d.5", (c+b+i)%9+1)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// runIngest drives one concurrent ingest wave; batchOffset keeps a second
// wave's values distinct from the first.
func runIngest(client *http.Client, base, name string, clients, batches, size, batchOffset int) phaseSummary {
	durs := make([][]time.Duration, clients)
	retries := make([]int, clients)
	var wg sync.WaitGroup
	start := time.Now() //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				body := ingestBody(c, b+batchOffset, size)
				for {
					t0 := time.Now() //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
					code, err := doPost(client, base+"/ingest/"+name, body)
					durs[c] = append(durs[c], time.Since(t0)) //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
					if err != nil {
						fatal(err)
					}
					if code == http.StatusServiceUnavailable {
						retries[c]++
						continue // staging queue full: back off by retrying
					}
					if code != http.StatusOK {
						fatal(fmt.Errorf("ingest status %d", code))
					}
					break
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start) //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds

	all := merge(durs)
	events := clients * batches * size
	retried := 0
	for _, r := range retries {
		retried += r
	}
	return phaseSummary{
		Requests:     len(all),
		Events:       events,
		Seconds:      elapsed.Seconds(),
		EventsPerSec: float64(events) / elapsed.Seconds(),
		ReqPerSec:    float64(len(all)) / elapsed.Seconds(),
		P50Ms:        percentileMs(all, 50),
		P99Ms:        percentileMs(all, 99),
		Retried:      retried,
	}
}

func runQueries(client *http.Client, base, name string, clients, queries int) phaseSummary {
	durs := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	start := time.Now() //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				t0 := time.Now() //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
				code, err := doGet(client, base+"/sample/"+name)
				durs[c] = append(durs[c], time.Since(t0)) //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
				if err != nil {
					fatal(err)
				}
				if code != http.StatusOK {
					fatal(fmt.Errorf("sample status %d", code))
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start) //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds

	all := merge(durs)
	return phaseSummary{
		Requests:  len(all),
		Seconds:   elapsed.Seconds(),
		ReqPerSec: float64(len(all)) / elapsed.Seconds(),
		P50Ms:     percentileMs(all, 50),
		P99Ms:     percentileMs(all, 99),
	}
}

// runMixed reruns the ingest wave while an equal number of readers
// alternate /sample and /weight, measuring read latency with writes hot.
func runMixed(client *http.Client, base, name string, clients, batches, size int) (ingest, sample, weight phaseSummary) {
	sampleDurs := make([][]time.Duration, clients)
	weightDurs := make([][]time.Duration, clients)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for c := 0; c < clients; c++ {
		readers.Add(1)
		go func(c int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url, durs := base+"/sample/"+name, &sampleDurs[c]
				if i%2 == 1 {
					url, durs = base+"/weight/"+name, &weightDurs[c]
				}
				t0 := time.Now() //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
				code, err := doGet(client, url)
				*durs = append(*durs, time.Since(t0)) //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
				if err != nil {
					fatal(err)
				}
				if code != http.StatusOK {
					fatal(fmt.Errorf("mixed query status %d", code))
				}
			}
		}(c)
	}
	ingest = runIngest(client, base, name, clients, batches, size, batches)
	close(stop)
	readers.Wait()

	sAll, wAll := merge(sampleDurs), merge(weightDurs)
	sample = phaseSummary{
		Requests:  len(sAll),
		Seconds:   ingest.Seconds,
		ReqPerSec: float64(len(sAll)) / ingest.Seconds,
		P50Ms:     percentileMs(sAll, 50),
		P99Ms:     percentileMs(sAll, 99),
	}
	weight = phaseSummary{
		Requests:  len(wAll),
		Seconds:   ingest.Seconds,
		ReqPerSec: float64(len(wAll)) / ingest.Seconds,
		P50Ms:     percentileMs(wAll, 50),
		P99Ms:     percentileMs(wAll, 99),
	}
	return ingest, sample, weight
}

func doPost(client *http.Client, url, body string) (int, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func doGet(client *http.Client, url string) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func merge(durs [][]time.Duration) []time.Duration {
	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// percentileMs returns the p-th percentile of a sorted latency slice in
// milliseconds (nearest-rank).
func percentileMs(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
