// Command swlint is the repository's invariant checker: a go/analysis
// vettool enforcing, at build-gate time, the determinism and concurrency
// contracts every correctness argument in this reproduction rests on.
//
// It is built as a unitchecker, so it runs under the standard go vet
// driver (which handles package loading, type checking, caching, and
// cross-package fact propagation):
//
//	go build -o bin/swlint ./cmd/swlint
//	go vet -vettool=$(pwd)/bin/swlint ./...
//
// or just `make lint`. The analyzers, what theorem or PR each invariant
// protects, and the //swlint:allow escape hatch are documented in
// internal/lint and DESIGN.md §8.
//
// Two extra modes post-process vet's machine-readable output (vet -json
// always exits 0, so both read the stream from stdin and own the exit
// code):
//
//	go vet -vettool=… -json ./... | swlint render      # file:line:col lines, exit 1 on findings
//	go vet -vettool=… -json ./... | swlint applyfixes  # apply suggested fixes to the tree
//
// `make lint-json` and `make lint-fix` wrap these; CI parses render's
// output with a problem matcher and runs applyfixes under a
// `git diff --exit-code` drift gate.
package main

import (
	"fmt"
	"os"

	"golang.org/x/tools/go/analysis/unitchecker"

	"slidingsample/internal/lint"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "render":
			n, err := lint.Render(os.Stdin, os.Stdout)
			exitJSONMode(err, n > 0)
		case "applyfixes":
			_, err := lint.ApplyFixes(os.Stdin, os.Stdout)
			exitJSONMode(err, false)
		}
	}
	unitchecker.Main(lint.Analyzers()...)
}

// exitJSONMode terminates a render/applyfixes run: exit 2 on stream or
// I/O errors, 1 when render saw diagnostics, 0 otherwise.
func exitJSONMode(err error, findings bool) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "swlint:", err)
		os.Exit(2)
	}
	if findings {
		os.Exit(1)
	}
	os.Exit(0)
}
