// Command swlint is the repository's invariant checker: a go/analysis
// vettool enforcing, at build-gate time, the determinism and concurrency
// contracts every correctness argument in this reproduction rests on.
//
// It is built as a unitchecker, so it runs under the standard go vet
// driver (which handles package loading, type checking, caching, and
// cross-package fact propagation):
//
//	go build -o bin/swlint ./cmd/swlint
//	go vet -vettool=$(pwd)/bin/swlint ./...
//
// or just `make lint`. The analyzers, what theorem or PR each invariant
// protects, and the //swlint:allow escape hatch are documented in
// internal/lint and DESIGN.md §8.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"slidingsample/internal/lint"
)

func main() {
	unitchecker.Main(lint.Analyzers()...)
}
