// Command swbench regenerates the reproduction experiments E1–E18 (see
// DESIGN.md §4): memory tables contrasting the paper's deterministic
// bounds with the randomized baselines, uniformity and independence test
// tables, the Section 5 application-error tables, and the unified-interface
// substrate sweep.
//
// Usage:
//
//	swbench                 # run everything (full scale)
//	swbench -e E1,E3        # selected experiments
//	swbench -quick          # smaller trial counts (CI speed)
//	swbench -seed 7         # different master seed
//	swbench -list           # list experiments
//
// Every run is deterministic given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"slidingsample/internal/bench"
)

func main() {
	var (
		exps  = flag.String("e", "all", "comma-separated experiment ids (E1..E18) or 'all'")
		seed  = flag.Uint64("seed", 2009, "master seed (2009: the paper's PODS year)")
		quick = flag.Bool("quick", false, "reduced trial counts")
		list  = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	var selected []bench.Experiment
	if *exps == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "swbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := bench.Config{Seed: *seed, Quick: *quick, Out: os.Stdout}
	start := time.Now() //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
	for _, e := range selected {
		t0 := time.Now() //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
		e.Run(cfg)
		fmt.Printf("    [%s done in %v]\n", e.ID, time.Since(t0).Round(time.Millisecond)) //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
	}
	fmt.Printf("\nall done in %v\n", time.Since(start).Round(time.Millisecond)) //swlint:allow detrand timing harness: wall-clock throughput measurement only; never feeds sampler state or seeds
}
