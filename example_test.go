package slidingsample_test

import (
	"fmt"

	"slidingsample"
)

// ExampleNewSequenceWOR maintains 3 distinct samples of the last 8 stream
// elements.
func ExampleNewSequenceWOR() {
	s, err := slidingsample.NewSequenceWOR[string](8, 3, slidingsample.WithSeed(42))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 100; i++ {
		s.Observe(fmt.Sprintf("msg-%03d", i))
	}
	sample, ok := s.Sample()
	fmt.Println("ok:", ok, "distinct:", len(sample))
	for _, e := range sample {
		fmt.Println(e.Index >= 92, e.Value[:4]) // all within the last 8
	}
	// Output:
	// ok: true distinct: 3
	// true msg-
	// true msg-
	// true msg-
}

// ExampleNewSequenceWR shows k independent with-replacement samples and the
// constant memory footprint.
func ExampleNewSequenceWR() {
	s, err := slidingsample.NewSequenceWR[int](1000, 4, slidingsample.WithSeed(7))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 50_000; i++ {
		s.Observe(i)
	}
	vals, _ := s.Values()
	allRecent := true
	for _, v := range vals {
		if v < 49_000 {
			allRecent = false
		}
	}
	fmt.Println("samples:", len(vals), "all in window:", allRecent)
	fmt.Println("peak memory independent of n and stream length:", s.MaxWords() < 50)
	// Output:
	// samples: 4 all in window: true
	// peak memory independent of n and stream length: true
}

// ExampleNewTimestampWR samples from "the last 10 ticks" of a bursty stream.
func ExampleNewTimestampWR() {
	s, err := slidingsample.NewTimestampWR[string](10, 2, slidingsample.WithSeed(3))
	if err != nil {
		panic(err)
	}
	// A burst at tick 0, silence, then a burst at tick 50.
	for i := 0; i < 100; i++ {
		_ = s.Observe(fmt.Sprintf("old-%d", i), 0)
	}
	for i := 0; i < 5; i++ {
		_ = s.Observe(fmt.Sprintf("new-%d", i), 50)
	}
	sample, ok := s.SampleAt(55)
	fmt.Println("ok:", ok)
	for _, e := range sample {
		fmt.Println(e.Value[:3], "from tick", e.Timestamp)
	}
	// Output:
	// ok: true
	// new from tick 50
	// new from tick 50
}

// ExampleNewTimestampWOR demonstrates the window emptying out.
func ExampleNewTimestampWOR() {
	s, err := slidingsample.NewTimestampWOR[int](5, 3, slidingsample.WithSeed(1))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 10; i++ {
		_ = s.Observe(i, int64(i))
	}
	if got, ok := s.SampleAt(9); ok {
		fmt.Println("active window sample size:", len(got))
	}
	if _, ok := s.SampleAt(100); !ok {
		fmt.Println("window empty after the horizon passes")
	}
	// Output:
	// active window sample size: 3
	// window empty after the horizon passes
}

// ExampleNewStepBiased builds a two-step recency bias.
func ExampleNewStepBiased() {
	s, err := slidingsample.NewStepBiased[int]([]uint64{10, 100}, []uint64{1, 1}, slidingsample.WithSeed(5))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 1000; i++ {
		s.Observe(i)
	}
	fmt.Printf("P(newest) = %.3f\n", s.Prob(0))
	fmt.Printf("P(age 50) = %.3f\n", s.Prob(50))
	fmt.Printf("P(age 200) = %.3f\n", s.Prob(200))
	// Output:
	// P(newest) = 0.055
	// P(age 50) = 0.005
	// P(age 200) = 0.000
}

// ExampleNewShardedWeightedTimestampWOR samples the heaviest flows of the
// last minute while ingest is dealt across 4 shard goroutines. The sample
// law stays the exact Efraimidis–Spirakis weighted k-sample without
// replacement — per-shard keys are globally comparable — and queries flush
// in-flight ingest automatically, so no explicit Barrier appears anywhere.
func ExampleNewShardedWeightedTimestampWOR() {
	s, err := slidingsample.NewShardedWeightedTimestampWOR[string](60, 4, 3, slidingsample.WithSeed(11))
	if err != nil {
		panic(err)
	}
	defer s.Close() // stops the shard goroutines; the sampler stays queryable
	for i := 0; i < 600; i++ {
		flow := fmt.Sprintf("flow-%03d", i)
		bytes := float64(i%50) + 1 // the element's weight
		if err := s.Observe(flow, bytes, int64(i/10)); err != nil {
			panic(err)
		}
	}
	sample, ok := s.SampleAt(59) // auto-barrier, then the merged top-k
	fmt.Println("ok:", ok, "distinct:", len(sample))
	for _, e := range sample {
		fmt.Println(59-e.Timestamp < 60, e.Weight >= 1, e.Value[:5])
	}
	// The scale oracles are (1±5%) estimates: all 600 arrivals are active
	// (weights cycle 1..50, so the true total is 12 · 1275 = 15300).
	n, w := s.SizeAt(59), s.TotalWeightAt(59)
	fmt.Println("size in range:", n >= 570 && n <= 630)
	fmt.Println("weight in range:", w >= 14535 && w <= 16065)
	// Output:
	// ok: true distinct: 3
	// true true flow-
	// true true flow-
	// true true flow-
	// size in range: true
	// weight in range: true
}

// ExampleSequenceWOR_Sample shows warm-up behaviour: before the window
// holds k elements, the sample is the entire window.
func ExampleSequenceWOR_Sample() {
	s, _ := slidingsample.NewSequenceWOR[string](100, 5, slidingsample.WithSeed(2))
	s.Observe("a")
	s.Observe("b")
	sample, _ := s.Sample()
	fmt.Println(len(sample), "of 5 slots filled after 2 arrivals")
	// Output:
	// 2 of 5 slots filled after 2 arrivals
}
