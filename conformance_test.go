package slidingsample

// conformance_test.go: the shared interface battery. Every sampler in the
// repository — core, baselines, sharded, step-biased — must satisfy
// stream.Sampler and behave identically under its contract:
//
//   - empty stream: Sample reports ok=false;
//   - after m arrivals: Count == m, K matches construction, samples come
//     from the active window, WOR samples are distinct, Words > 0 and
//     MaxWords >= Words;
//   - ObserveBatch(batch) is sample-path identical to looping Observe under
//     equal seeds: same samples, same Count, same Words, same MaxWords.
//
// The battery is what future substrates are tested against: add a row, get
// the whole contract checked.

import (
	"math"
	"testing"

	"slidingsample/internal/apps"
	"slidingsample/internal/baseline"
	"slidingsample/internal/core"
	"slidingsample/internal/parallel"
	"slidingsample/internal/stream"
	"slidingsample/internal/weighted"
	"slidingsample/internal/xrand"
)

const (
	confN  = 128 // sequence window (divisible by confG)
	confT0 = 40  // timestamp horizon
	confK  = 6
	confG  = 4
)

type confSubstrate struct {
	name string
	mk   func(r *xrand.Rand) stream.Sampler[uint64]
	// seq: sampled indexes must lie in the last min(count, confN) arrivals;
	// otherwise sampled timestamps must satisfy now - ts < confT0.
	seq bool
	// wor: sampled indexes must be distinct and len(sample) == min(k, window).
	wor bool
	// k is the expected K() (StepBiased draws one element per query).
	k int
	// mayFail: Sample may legitimately report ok=false on a non-empty
	// window (the over-sampling baseline's documented failure mode).
	mayFail bool
}

func confSubstrates() []confSubstrate {
	return []confSubstrate{
		{name: "core/SeqWR", seq: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] { return core.NewSeqWR[uint64](r, confN, confK) }},
		{name: "core/SeqWOR", seq: true, wor: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] { return core.NewSeqWOR[uint64](r, confN, confK) }},
		{name: "core/TSWR", k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] { return core.NewTSWR[uint64](r, confT0, confK) }},
		{name: "core/TSWOR", wor: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] { return core.NewTSWOR[uint64](r, confT0, confK) }},
		{name: "baseline/Chain", seq: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] { return baseline.NewChain[uint64](r, confN, confK) }},
		{name: "baseline/Oversample", seq: true, wor: true, k: confK, mayFail: true,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] { return baseline.NewOversample[uint64](r, confN, confK, 2) }},
		{name: "baseline/Priority", k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] { return baseline.NewPriority[uint64](r, confT0, confK) }},
		{name: "baseline/Skyband", wor: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] { return baseline.NewSkyband[uint64](r, confT0, confK) }},
		{name: "baseline/FullWindow(seq)", seq: true, wor: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return baseline.NewFullWindowSeq[uint64](r, confN).Bind(confK, true)
			}},
		{name: "baseline/FullWindow(ts)", wor: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return baseline.NewFullWindowTS[uint64](r, confT0).Bind(confK, true)
			}},
		{name: "apps/StepBiased", seq: true, k: 1,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return apps.NewStepBiased[uint64](r, []uint64{16, confN}, []uint64{3, 1})
			}},
		{name: "weighted/WOR", seq: true, wor: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return weighted.NewWOR[uint64](r, confN, confK, confWeight)
			}},
		{name: "weighted/WR", seq: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return weighted.NewWR[uint64](r, confN, confK, confWeight)
			}},
		{name: "weighted/TSWOR", wor: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return weighted.NewTSWOR[uint64](r, confT0, confK, 0.05, confWeight)
			}},
		{name: "weighted/TSWR", k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return weighted.NewTSWR[uint64](r, confT0, confK, 0.05, confWeight)
			}},
		{name: "parallel/ShardedSeqWR", seq: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedSeqWR[uint64](r, confN, confG, confK)
			}},
		{name: "parallel/ShardedTSWR", k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedTSWR[uint64](r, confT0, confG, confK, 0.05)
			}},
		{name: "parallel/ShardedTSWOR", wor: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedTSWOR[uint64](r, confT0, confG, confK, 0.05)
			}},
		{name: "parallel/ShardedWeightedSeqWOR", seq: true, wor: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedWeightedSeqWOR[uint64](r, confN, confG, confK, 0.05, confWeight)
			}},
		{name: "parallel/ShardedWeightedSeqWR", seq: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedWeightedSeqWR[uint64](r, confN, confG, confK, 0.05, confWeight)
			}},
		{name: "parallel/ShardedWeightedTSWOR", wor: true, k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedWeightedTSWOR[uint64](r, confT0, confG, confK, 0.05, confWeight)
			}},
		{name: "parallel/ShardedWeightedTSWR", k: confK,
			mk: func(r *xrand.Rand) stream.Sampler[uint64] {
				return parallel.NewShardedWeightedTSWR[uint64](r, confT0, confG, confK, 0.05, confWeight)
			}},
	}
}

func confSync(s stream.Sampler[uint64]) {
	if b, ok := s.(interface{ Barrier() }); ok {
		b.Barrier()
	}
}

func confClose(s stream.Sampler[uint64]) {
	if c, ok := s.(interface{ Close() }); ok {
		c.Close()
	}
}

// confTS yields the bursty timestamp of arrival i (three arrivals per tick).
func confTS(i int) int64 { return int64(i / 3) }

// confWeight is the deterministic weight law of the weighted substrates.
func confWeight(v uint64) float64 { return float64(v%7) + 1 }

func TestConformanceBattery(t *testing.T) {
	const m = 1500
	for _, sub := range confSubstrates() {
		t.Run(sub.name, func(t *testing.T) {
			s := sub.mk(xrand.New(77))
			defer confClose(s)

			// Empty stream.
			confSync(s)
			if _, ok := s.Sample(); ok {
				t.Fatal("sample from empty sampler")
			}
			if s.Count() != 0 {
				t.Fatalf("Count = %d before any arrival", s.Count())
			}

			// Feed and check the basic accessors.
			for i := 0; i < m; i++ {
				s.Observe(uint64(i), confTS(i))
			}
			confSync(s)
			if s.Count() != m {
				t.Fatalf("Count = %d, want %d", s.Count(), m)
			}
			if s.K() != sub.k {
				t.Fatalf("K = %d, want %d", s.K(), sub.k)
			}
			if s.Words() <= 0 {
				t.Fatalf("Words = %d", s.Words())
			}
			if s.MaxWords() < s.Words() {
				t.Fatalf("MaxWords %d < Words %d", s.MaxWords(), s.Words())
			}

			// Repeated queries: shape and membership invariants.
			now := confTS(m - 1)
			for q := 0; q < 25; q++ {
				got, ok := s.Sample()
				if !ok {
					if sub.mayFail {
						continue
					}
					t.Fatal("no sample from non-empty window")
				}
				if sub.wor {
					if len(got) > sub.k {
						t.Fatalf("WOR sample of %d > k=%d", len(got), sub.k)
					}
					seen := map[uint64]bool{}
					for _, e := range got {
						if seen[e.Index] {
							t.Fatalf("duplicate index %d in WOR sample", e.Index)
						}
						seen[e.Index] = true
					}
				} else if len(got) != sub.k {
					t.Fatalf("WR sample of %d != k=%d", len(got), sub.k)
				}
				for _, e := range got {
					if e.Value != e.Index {
						t.Fatalf("value/index mismatch: %d vs %d", e.Value, e.Index)
					}
					if sub.seq {
						if e.Index < m-confN || e.Index >= m {
							t.Fatalf("index %d outside window [%d,%d)", e.Index, m-confN, m)
						}
					} else if now-e.TS >= confT0 {
						t.Fatalf("expired element: ts %d at now %d", e.TS, now)
					}
				}
			}

			// Timestamp substrates also answer explicit "as of" queries.
			if ts, ok := s.(stream.TimedSampler[uint64]); ok && !sub.seq {
				got, ok := ts.SampleAt(now)
				if !ok && !sub.mayFail {
					t.Fatal("SampleAt failed on non-empty window")
				}
				for _, e := range got {
					if now-e.TS >= confT0 {
						t.Fatalf("SampleAt returned expired element: ts %d", e.TS)
					}
				}
			}
		})
	}
}

func TestConformanceBatchEquivalence(t *testing.T) {
	// ObserveBatch must be sample-path identical to looped Observe under
	// equal seeds, for every substrate, across irregular batch sizes that
	// straddle bucket boundaries.
	const m = 1200
	sizes := []int{1, 9, 128, 3, 301, 1, 64}
	for _, sub := range confSubstrates() {
		t.Run(sub.name, func(t *testing.T) {
			loop := sub.mk(xrand.New(99))
			batch := sub.mk(xrand.New(99))
			defer confClose(loop)
			defer confClose(batch)

			for i := 0; i < m; i++ {
				loop.Observe(uint64(i), confTS(i))
			}
			buf := make([]stream.Element[uint64], 0, 512)
			for i, si := 0, 0; i < m; si++ {
				sz := sizes[si%len(sizes)]
				if i+sz > m {
					sz = m - i
				}
				buf = buf[:0]
				for j := 0; j < sz; j++ {
					buf = append(buf, stream.Element[uint64]{Value: uint64(i + j), TS: confTS(i + j)})
				}
				batch.ObserveBatch(buf)
				i += sz
			}

			confSync(loop)
			confSync(batch)
			if loop.Count() != batch.Count() {
				t.Fatalf("Count diverged: %d vs %d", loop.Count(), batch.Count())
			}
			if loop.Words() != batch.Words() {
				t.Fatalf("Words diverged: %d vs %d", loop.Words(), batch.Words())
			}
			if loop.MaxWords() != batch.MaxWords() {
				t.Fatalf("MaxWords diverged: %d vs %d", loop.MaxWords(), batch.MaxWords())
			}
			la, lok := loop.Sample()
			ba, bok := batch.Sample()
			if lok != bok || len(la) != len(ba) {
				t.Fatalf("sample shape diverged: ok %v/%v len %d/%d", lok, bok, len(la), len(ba))
			}
			for i := range la {
				if la[i] != ba[i] {
					t.Fatalf("slot %d diverged: %+v vs %+v", i, la[i], ba[i])
				}
			}
		})
	}
}

func TestPublicBatchEquivalence(t *testing.T) {
	// The public ObserveBatch wrappers must match per-element feeding too.
	t.Run("sequence", func(t *testing.T) {
		a, _ := NewSequenceWOR[int](100, 5, WithSeed(3))
		b, _ := NewSequenceWOR[int](100, 5, WithSeed(3))
		var chunk []int
		for i := 0; i < 950; i++ {
			a.Observe(i)
			chunk = append(chunk, i)
			if len(chunk) == 37 {
				b.ObserveBatch(chunk)
				chunk = chunk[:0]
			}
		}
		b.ObserveBatch(chunk)
		av, aok := a.Sample()
		bv, bok := b.Sample()
		if aok != bok || len(av) != len(bv) {
			t.Fatalf("shape diverged")
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("slot %d diverged", i)
			}
		}
		if a.Words() != b.Words() || a.MaxWords() != b.MaxWords() {
			t.Fatal("memory accounting diverged")
		}
	})
	t.Run("timestamp", func(t *testing.T) {
		a, _ := NewTimestampWR[int](60, 4, WithSeed(4))
		b, _ := NewTimestampWR[int](60, 4, WithSeed(4))
		var vals []int
		var tss []int64
		for i := 0; i < 800; i++ {
			ts := int64(i / 5)
			if err := a.Observe(i, ts); err != nil {
				t.Fatal(err)
			}
			vals = append(vals, i)
			tss = append(tss, ts)
			if len(vals) == 53 {
				if err := b.ObserveBatch(vals, tss); err != nil {
					t.Fatal(err)
				}
				vals, tss = vals[:0], tss[:0]
			}
		}
		if err := b.ObserveBatch(vals, tss); err != nil {
			t.Fatal(err)
		}
		av, aok := a.Sample()
		bv, bok := b.Sample()
		if aok != bok || len(av) != len(bv) {
			t.Fatalf("shape diverged")
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("slot %d diverged", i)
			}
		}
	})
}

func TestPublicBatchErrors(t *testing.T) {
	s, _ := NewTimestampWOR[string](10, 2, WithSeed(5))
	if err := s.ObserveBatch([]string{"a"}, []int64{1, 2}); err != ErrBatchShape {
		t.Fatalf("length mismatch: got %v", err)
	}
	if err := s.ObserveBatch([]string{"a", "b"}, []int64{5, 3}); err != ErrTimeBackwards {
		t.Fatalf("in-batch regression: got %v", err)
	}
	if s.Count() != 0 {
		t.Fatal("rejected batch mutated the sampler")
	}
	if err := s.ObserveBatch([]string{"a", "b"}, []int64{3, 5}); err != nil {
		t.Fatal(err)
	}
	// A batch starting before the sampler's clock is rejected atomically.
	if err := s.ObserveBatch([]string{"c"}, []int64{4}); err != ErrTimeBackwards {
		t.Fatalf("cross-batch regression: got %v", err)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d after one accepted batch of 2", s.Count())
	}
}

func TestFreshTimedValuesDoesNotPinClock(t *testing.T) {
	// Values() on a fresh timestamp sampler must behave like Sample(): report
	// ok=false WITHOUT advancing the internal clock, so a later stream may
	// still start at any timestamp, including negative ones.
	s, _ := NewTimestampWR[int](10, 2, WithSeed(6))
	if _, ok := s.Values(); ok {
		t.Fatal("values from empty sampler")
	}
	if err := s.Observe(1, -5); err != nil {
		t.Fatalf("negative start after fresh Values: %v", err)
	}
	w, _ := NewTimestampWOR[int](10, 2, WithSeed(6))
	if _, ok := w.Values(); ok {
		t.Fatal("values from empty sampler")
	}
	if err := w.Observe(1, -5); err != nil {
		t.Fatalf("negative start after fresh Values (WOR): %v", err)
	}
}

// confEstimatorAPI is the estimator surface shared by apps.NewSubsetSum,
// apps.NewSubsetSumTS, and apps.NewShardedSubsetSumTS. The subset-sum
// substrates answer Estimate/Total instead of Sample — they are not
// stream.Samplers — so they get their own battery half below instead of a
// row in confSubstrates.
type confEstimatorAPI interface {
	Observe(value uint64, ts int64)
	ObserveBatch(batch []stream.Element[uint64])
	Estimate(pred func(uint64) bool) (float64, bool)
	K() int
	Count() uint64
	Words() int
	MaxWords() int
}

type confEstimator struct {
	name string
	seq  bool
	mk   func(r *xrand.Rand) confEstimatorAPI
}

// confEstK is larger than confK: the Horvitz–Thompson estimate over k
// sketch slots tightens with k, and 48 slots keep the deterministic
// tolerance below modest.
const confEstK = 48

func confEstimators() []confEstimator {
	return []confEstimator{
		{name: "apps/SubsetSum", seq: true,
			mk: func(r *xrand.Rand) confEstimatorAPI {
				return apps.NewSubsetSum[uint64](r, confN, confEstK, confWeight)
			}},
		{name: "apps/SubsetSumTS",
			mk: func(r *xrand.Rand) confEstimatorAPI {
				return apps.NewSubsetSumTS[uint64](r, confT0, confEstK, 0.05, confWeight)
			}},
		{name: "apps/ShardedSubsetSumTS",
			mk: func(r *xrand.Rand) confEstimatorAPI {
				return apps.NewShardedSubsetSumTS[uint64](r, confT0, confG, confEstK, 0.05, confWeight)
			}},
	}
}

// confEstSync/confEstClose mirror confSync/confClose for the estimator
// surface (the sharded estimator is checkpointed like the sharded samplers).
func confEstSync(e confEstimatorAPI) {
	if b, ok := e.(interface{ Barrier() }); ok {
		b.Barrier()
	}
}

// confEstAll is the pred ≡ true subset: Estimate(confEstAll) is the total
// active weight, the one query every estimator answers (the sharded
// estimator has TotalAt but no Total, so the battery totals through it).
func confEstAll(uint64) bool { return true }

func confEstClose(e confEstimatorAPI) {
	if c, ok := e.(interface{ Close() }); ok {
		c.Close()
	}
}

// TestEstimatorBattery is the estimator half of the conformance battery:
// every subset-sum substrate refuses to estimate an empty window, reports
// memory and counters sanely, and answers Estimate/Total within a
// deterministic tolerance of the exact windowed subset sum (fixed seed, so
// the tolerance is a regression pin, not a statistical bet).
func TestEstimatorBattery(t *testing.T) {
	const m = 1500
	const tol = 0.35
	for _, sub := range confEstimators() {
		t.Run(sub.name, func(t *testing.T) {
			e := sub.mk(xrand.New(101))
			defer confEstClose(e)

			confEstSync(e)
			if _, ok := e.Estimate(confEstAll); ok {
				t.Fatal("estimate from empty window")
			}

			for i := 0; i < m; i++ {
				e.Observe(uint64(i), confTS(i))
			}
			confEstSync(e)
			if e.Count() != m {
				t.Fatalf("Count = %d, want %d", e.Count(), m)
			}
			if e.K() != confEstK {
				t.Fatalf("K = %d, want %d", e.K(), confEstK)
			}
			if e.Words() <= 0 {
				t.Fatalf("Words = %d", e.Words())
			}
			if e.MaxWords() < e.Words() {
				t.Fatalf("MaxWords %d < Words %d", e.MaxWords(), e.Words())
			}

			// Exact subset sums over the active window.
			now := confTS(m - 1)
			exactTotal, exactEven := 0.0, 0.0
			for i := 0; i < m; i++ {
				if sub.seq {
					if i < m-confN {
						continue
					}
				} else if now-confTS(i) >= confT0 {
					continue
				}
				w := confWeight(uint64(i))
				exactTotal += w
				if i%2 == 0 {
					exactEven += w
				}
			}

			total, ok := e.Estimate(confEstAll)
			if !ok {
				t.Fatal("Estimate(all) failed on non-empty window")
			}
			if rel := math.Abs(total-exactTotal) / exactTotal; rel > tol {
				t.Fatalf("Estimate(all) = %g, exact %g (rel err %.2f)", total, exactTotal, rel)
			}
			even, ok := e.Estimate(func(v uint64) bool { return v%2 == 0 })
			if !ok {
				t.Fatal("Estimate failed on non-empty window")
			}
			if rel := math.Abs(even-exactEven) / exactEven; rel > tol {
				t.Fatalf("Estimate(even) = %g, exact %g (rel err %.2f)", even, exactEven, rel)
			}
		})
	}
}
