package slidingsample

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"

	"slidingsample/internal/apps"
	"slidingsample/internal/core"
	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// ErrTimeBackwards is returned when a timestamp-based sampler is fed an
// element whose timestamp precedes an earlier arrival or query time.
var ErrTimeBackwards = errors.New("slidingsample: timestamps must be non-decreasing")

// Sampled is one sampled element together with its stream coordinates.
type Sampled[T any] struct {
	// Value is the element payload.
	Value T
	// Index is the element's 0-based arrival position.
	Index uint64
	// Timestamp is the element's arrival timestamp (0 for sequence-based
	// samplers fed through Observe without a timestamp).
	Timestamp int64
}

func fromElements[T any](es []stream.Element[T]) []Sampled[T] {
	out := make([]Sampled[T], len(es))
	for i, e := range es {
		out[i] = Sampled[T]{Value: e.Value, Index: e.Index, Timestamp: e.TS}
	}
	return out
}

// Option configures a sampler at construction time.
type Option func(*config)

type config struct {
	seed   uint64
	seeded bool
}

// WithSeed makes the sampler's randomness reproducible: two samplers built
// with the same seed and fed the same stream make identical choices.
// Without it, each sampler draws a fresh seed from crypto/rand.
func WithSeed(seed uint64) Option {
	return func(c *config) {
		c.seed = seed
		c.seeded = true
	}
}

func buildRNG(opts []Option) *xrand.Rand {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.seeded {
		return xrand.New(c.seed)
	}
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		return xrand.New(binary.LittleEndian.Uint64(b[:]))
	}
	// crypto/rand failing is effectively fatal on any supported platform;
	// fall back to a fixed seed rather than crashing a library caller.
	return xrand.New(0x9e3779b97f4a7c15)
}

// ---------------------------------------------------------------------------
// Sequence-based windows
// ---------------------------------------------------------------------------

// SequenceWR maintains k independent uniform samples (with replacement)
// over the n most recent elements, in Θ(k) words (Theorem 2.1).
type SequenceWR[T any] struct {
	inner *core.SeqWR[T]
}

// NewSequenceWR returns a with-replacement sampler over a window of the n
// most recent elements with k sample slots.
func NewSequenceWR[T any](n uint64, k int, opts ...Option) (*SequenceWR[T], error) {
	if n == 0 {
		return nil, fmt.Errorf("slidingsample: window size n must be positive")
	}
	if k <= 0 {
		return nil, fmt.Errorf("slidingsample: sample count k must be positive")
	}
	return &SequenceWR[T]{inner: core.NewSeqWR[T](buildRNG(opts), n, k)}, nil
}

// Observe feeds the next element.
func (s *SequenceWR[T]) Observe(value T) { s.inner.Observe(value, 0) }

// Sample returns k elements, each uniform over the current window and
// mutually independent. ok is false while the stream is empty.
func (s *SequenceWR[T]) Sample() ([]Sampled[T], bool) {
	es, ok := s.inner.Sample()
	if !ok {
		return nil, false
	}
	return fromElements(es), true
}

// Values returns just the sampled payloads.
func (s *SequenceWR[T]) Values() ([]T, bool) {
	es, ok := s.inner.Sample()
	if !ok {
		return nil, false
	}
	out := make([]T, len(es))
	for i, e := range es {
		out[i] = e.Value
	}
	return out, true
}

// N returns the window size; K the number of samples; Count the arrivals.
func (s *SequenceWR[T]) N() uint64     { return s.inner.N() }
func (s *SequenceWR[T]) K() int        { return s.inner.K() }
func (s *SequenceWR[T]) Count() uint64 { return s.inner.Count() }

// Words and MaxWords report memory in the paper's word model (DESIGN.md §6).
func (s *SequenceWR[T]) Words() int    { return s.inner.Words() }
func (s *SequenceWR[T]) MaxWords() int { return s.inner.MaxWords() }

// SequenceWOR maintains a uniform k-sample without replacement over the n
// most recent elements, in Θ(k) words (Theorem 2.2). While the window holds
// fewer than k elements the sample is the whole window.
type SequenceWOR[T any] struct {
	inner *core.SeqWOR[T]
}

// NewSequenceWOR returns a without-replacement sampler over a window of the
// n most recent elements with target sample size k.
func NewSequenceWOR[T any](n uint64, k int, opts ...Option) (*SequenceWOR[T], error) {
	if n == 0 {
		return nil, fmt.Errorf("slidingsample: window size n must be positive")
	}
	if k <= 0 {
		return nil, fmt.Errorf("slidingsample: sample count k must be positive")
	}
	return &SequenceWOR[T]{inner: core.NewSeqWOR[T](buildRNG(opts), n, k)}, nil
}

// Observe feeds the next element.
func (s *SequenceWOR[T]) Observe(value T) { s.inner.Observe(value, 0) }

// Sample returns min(k, windowSize) DISTINCT window elements, uniform over
// all such subsets. ok is false while the stream is empty.
func (s *SequenceWOR[T]) Sample() ([]Sampled[T], bool) {
	es, ok := s.inner.Sample()
	if !ok {
		return nil, false
	}
	return fromElements(es), true
}

// Values returns just the sampled payloads.
func (s *SequenceWOR[T]) Values() ([]T, bool) {
	es, ok := s.inner.Sample()
	if !ok {
		return nil, false
	}
	out := make([]T, len(es))
	for i, e := range es {
		out[i] = e.Value
	}
	return out, true
}

// N returns the window size; K the target sample size; Count the arrivals.
func (s *SequenceWOR[T]) N() uint64     { return s.inner.N() }
func (s *SequenceWOR[T]) K() int        { return s.inner.K() }
func (s *SequenceWOR[T]) Count() uint64 { return s.inner.Count() }

// Words and MaxWords report memory in the paper's word model.
func (s *SequenceWOR[T]) Words() int    { return s.inner.Words() }
func (s *SequenceWOR[T]) MaxWords() int { return s.inner.MaxWords() }

// ---------------------------------------------------------------------------
// Timestamp-based windows
// ---------------------------------------------------------------------------

// TimestampWR maintains k independent uniform samples (with replacement)
// over the elements of the last t0 clock ticks, in Θ(k·log n) words
// (Theorem 3.9). An element with timestamp ts is active at time now iff
// now - ts < t0.
type TimestampWR[T any] struct {
	inner *core.TSWR[T]
	last  int64
	begun bool
}

// NewTimestampWR returns a with-replacement sampler over a timestamp window
// of horizon t0 with k sample slots.
func NewTimestampWR[T any](t0 int64, k int, opts ...Option) (*TimestampWR[T], error) {
	if t0 <= 0 {
		return nil, fmt.Errorf("slidingsample: horizon t0 must be positive")
	}
	if k <= 0 {
		return nil, fmt.Errorf("slidingsample: sample count k must be positive")
	}
	return &TimestampWR[T]{inner: core.NewTSWR[T](buildRNG(opts), t0, k)}, nil
}

// Observe feeds the next element with its arrival timestamp. Timestamps
// must be non-decreasing across both arrivals and queries.
func (s *TimestampWR[T]) Observe(value T, ts int64) error {
	if s.begun && ts < s.last {
		return ErrTimeBackwards
	}
	s.begun = true
	s.last = ts
	s.inner.Observe(value, ts)
	return nil
}

// SampleAt returns k elements, each uniform over the elements active at
// time now, mutually independent. Querying advances the sampler's clock;
// ok is false when the window is empty.
func (s *TimestampWR[T]) SampleAt(now int64) ([]Sampled[T], bool) {
	if s.begun && now < s.last {
		now = s.last
	}
	s.begun = true
	s.last = now
	es, ok := s.inner.SampleAt(now)
	if !ok {
		return nil, false
	}
	return fromElements(es), true
}

// Sample queries at the latest observed time. On a sampler that has seen
// nothing it reports ok=false without pinning the clock (so a later stream
// may still start at any timestamp, including negative ones).
func (s *TimestampWR[T]) Sample() ([]Sampled[T], bool) {
	if !s.begun {
		return nil, false
	}
	return s.SampleAt(s.last)
}

// ValuesAt returns just the sampled payloads at time now.
func (s *TimestampWR[T]) ValuesAt(now int64) ([]T, bool) {
	es, ok := s.SampleAt(now)
	if !ok {
		return nil, false
	}
	out := make([]T, len(es))
	for i, e := range es {
		out[i] = e.Value
	}
	return out, true
}

// Horizon returns t0; K the number of samples; Count the arrivals.
func (s *TimestampWR[T]) Horizon() int64 { return s.inner.Horizon() }
func (s *TimestampWR[T]) K() int         { return s.inner.K() }
func (s *TimestampWR[T]) Count() uint64  { return s.inner.Count() }

// Words and MaxWords report memory in the paper's word model.
func (s *TimestampWR[T]) Words() int    { return s.inner.Words() }
func (s *TimestampWR[T]) MaxWords() int { return s.inner.MaxWords() }

// TimestampWOR maintains a uniform k-sample without replacement over the
// elements of the last t0 clock ticks, in Θ(k·log n) words (Theorem 4.4).
// While fewer than k elements are active the sample is the whole window.
type TimestampWOR[T any] struct {
	inner *core.TSWOR[T]
	last  int64
	begun bool
}

// NewTimestampWOR returns a without-replacement sampler over a timestamp
// window of horizon t0 with target sample size k.
func NewTimestampWOR[T any](t0 int64, k int, opts ...Option) (*TimestampWOR[T], error) {
	if t0 <= 0 {
		return nil, fmt.Errorf("slidingsample: horizon t0 must be positive")
	}
	if k <= 0 {
		return nil, fmt.Errorf("slidingsample: sample count k must be positive")
	}
	return &TimestampWOR[T]{inner: core.NewTSWOR[T](buildRNG(opts), t0, k)}, nil
}

// Observe feeds the next element with its arrival timestamp.
func (s *TimestampWOR[T]) Observe(value T, ts int64) error {
	if s.begun && ts < s.last {
		return ErrTimeBackwards
	}
	s.begun = true
	s.last = ts
	s.inner.Observe(value, ts)
	return nil
}

// SampleAt returns min(k, n) distinct active elements forming a uniform
// without-replacement sample at time now.
func (s *TimestampWOR[T]) SampleAt(now int64) ([]Sampled[T], bool) {
	if s.begun && now < s.last {
		now = s.last
	}
	s.begun = true
	s.last = now
	es, ok := s.inner.SampleAt(now)
	if !ok {
		return nil, false
	}
	return fromElements(es), true
}

// Sample queries at the latest observed time. On a sampler that has seen
// nothing it reports ok=false without pinning the clock.
func (s *TimestampWOR[T]) Sample() ([]Sampled[T], bool) {
	if !s.begun {
		return nil, false
	}
	return s.SampleAt(s.last)
}

// ValuesAt returns just the sampled payloads at time now.
func (s *TimestampWOR[T]) ValuesAt(now int64) ([]T, bool) {
	es, ok := s.SampleAt(now)
	if !ok {
		return nil, false
	}
	out := make([]T, len(es))
	for i, e := range es {
		out[i] = e.Value
	}
	return out, true
}

// Horizon returns t0; K the target sample size; Count the arrivals.
func (s *TimestampWOR[T]) Horizon() int64 { return s.inner.Horizon() }
func (s *TimestampWOR[T]) K() int         { return s.inner.K() }
func (s *TimestampWOR[T]) Count() uint64  { return s.inner.Count() }

// Words and MaxWords report memory in the paper's word model.
func (s *TimestampWOR[T]) Words() int    { return s.inner.Words() }
func (s *TimestampWOR[T]) MaxWords() int { return s.inner.MaxWords() }

// ---------------------------------------------------------------------------
// Step-biased sampling (Section 5 extension)
// ---------------------------------------------------------------------------

// StepBiased draws recency-biased samples: window lengths n_1 < ... < n_m
// with integer weights w_i define a non-increasing step function over
// element age; an element of age d is drawn with probability
// Σ_{i: n_i > d} (w_i / Σw) / n_i.
type StepBiased[T any] struct {
	inner *apps.StepBiased[T]
}

// NewStepBiased returns a step-biased sampler. lens must be strictly
// increasing and weights positive, with len(lens) == len(weights).
func NewStepBiased[T any](lens []uint64, weights []uint64, opts ...Option) (*StepBiased[T], error) {
	if len(lens) == 0 || len(lens) != len(weights) {
		return nil, fmt.Errorf("slidingsample: lens and weights must be non-empty and equal length")
	}
	var prev uint64
	for i, n := range lens {
		if n <= prev {
			return nil, fmt.Errorf("slidingsample: lens must be strictly increasing")
		}
		if weights[i] == 0 {
			return nil, fmt.Errorf("slidingsample: weights must be positive")
		}
		prev = n
	}
	return &StepBiased[T]{inner: apps.NewStepBiased[T](buildRNG(opts), lens, weights)}, nil
}

// Observe feeds the next element.
func (s *StepBiased[T]) Observe(value T) { s.inner.Observe(value, 0) }

// Sample draws one element under the step-biased distribution.
func (s *StepBiased[T]) Sample() (Sampled[T], bool) {
	e, ok := s.inner.Sample()
	if !ok {
		return Sampled[T]{}, false
	}
	return Sampled[T]{Value: e.Value, Index: e.Index, Timestamp: e.TS}, true
}

// Prob returns the theoretical sampling probability for age d (0 = newest).
func (s *StepBiased[T]) Prob(d uint64) float64 { return s.inner.Prob(d) }

// Words and MaxWords report memory in the paper's word model.
func (s *StepBiased[T]) Words() int    { return s.inner.Words() }
func (s *StepBiased[T]) MaxWords() int { return s.inner.MaxWords() }
