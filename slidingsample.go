package slidingsample

import (
	cryptorand "crypto/rand" //swlint:allow detrand entropy only for the optional default-seed bootstrap; every draw still flows through seeded xrand
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"slidingsample/internal/apps"
	"slidingsample/internal/core"
	"slidingsample/internal/parallel"
	"slidingsample/internal/stream"
	"slidingsample/internal/weighted"
	"slidingsample/internal/xrand"
)

// ErrTimeBackwards is returned when a timestamp-based sampler is fed an
// element whose timestamp precedes an earlier arrival or query time.
var ErrTimeBackwards = errors.New("slidingsample: timestamps must be non-decreasing")

// ErrBatchShape is returned when ObserveBatch on a timestamp-based or
// weighted sampler is given value and timestamp/weight slices of different
// lengths.
var ErrBatchShape = errors.New("slidingsample: ObserveBatch needs equally long value and timestamp/weight slices")

// ErrBadWeight is returned when a weighted sampler is fed a weight that is
// not positive and finite.
var ErrBadWeight = errors.New("slidingsample: weights must be positive and finite")

// ErrClosed is returned when a sharded sampler is fed after Close. Closed
// samplers remain queryable; only ingest stops.
var ErrClosed = errors.New("slidingsample: sampler is closed")

// Sampled is one sampled element together with its stream coordinates.
type Sampled[T any] struct {
	// Value is the element payload.
	Value T
	// Index is the element's 0-based arrival position.
	Index uint64
	// Timestamp is the element's arrival timestamp (0 for sequence-based
	// samplers fed through Observe without a timestamp).
	Timestamp int64
}

func fromElements[T any](es []stream.Element[T]) []Sampled[T] {
	out := make([]Sampled[T], len(es))
	for i, e := range es {
		out[i] = Sampled[T]{Value: e.Value, Index: e.Index, Timestamp: e.TS}
	}
	return out
}

// Option configures a sampler at construction time.
type Option func(*config)

type config struct {
	seed   uint64
	seeded bool
}

// WithSeed makes the sampler's randomness reproducible: two samplers built
// with the same seed and fed the same stream make identical choices.
// Without it, each sampler draws a fresh seed from crypto/rand.
func WithSeed(seed uint64) Option {
	return func(c *config) {
		c.seed = seed
		c.seeded = true
	}
}

func buildRNG(opts []Option) *xrand.Rand {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.seeded {
		return xrand.New(c.seed)
	}
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		return xrand.New(binary.LittleEndian.Uint64(b[:]))
	}
	// crypto/rand failing is effectively fatal on any supported platform;
	// fall back to a fixed seed rather than crashing a library caller.
	return xrand.New(0x9e3779b97f4a7c15)
}

// ---------------------------------------------------------------------------
// The generic adapters
//
// Every internal sampler — the four core algorithms, the baselines, the
// sharded wrappers, the step-biased extension — satisfies the unified
// stream.Sampler interface, so the public API needs exactly one adapter for
// sequence-shaped ingest and one for timestamp-shaped ingest instead of one
// hand-written wrapper per algorithm.
// ---------------------------------------------------------------------------

// sampler lifts the internal interface's queries to public Sampled results.
type sampler[T any] struct {
	inner stream.Sampler[T]
}

// Sample returns the current sample: K() elements for with-replacement
// samplers, min(K(), windowSize) distinct elements without replacement.
// ok is false while the window is empty.
func (s *sampler[T]) Sample() ([]Sampled[T], bool) {
	es, ok := s.inner.Sample()
	if !ok {
		return nil, false
	}
	return fromElements(es), true
}

// Values returns just the sampled payloads.
func (s *sampler[T]) Values() ([]T, bool) {
	es, ok := s.inner.Sample()
	if !ok {
		return nil, false
	}
	out := make([]T, len(es))
	for i, e := range es {
		out[i] = e.Value
	}
	return out, true
}

// K returns the sample-size parameter; Count the number of arrivals.
func (s *sampler[T]) K() int        { return s.inner.K() }
func (s *sampler[T]) Count() uint64 { return s.inner.Count() }

// Words and MaxWords report memory in the paper's word model (DESIGN.md §6).
func (s *sampler[T]) Words() int    { return s.inner.Words() }
func (s *sampler[T]) MaxWords() int { return s.inner.MaxWords() }

// releaseScratch clears the batch scratch for reuse, dropping the backing
// array entirely when it grew beyond stream.MaxRecycledCap entries — the
// one shared retention cap every recycled buffer in the repository obeys
// (the sharded dispatcher's dealing buffers use the same constant).
func releaseScratch[E any](scratch *[]E) {
	if cap(*scratch) > stream.MaxRecycledCap {
		*scratch = nil
		return
	}
	clear(*scratch)
	*scratch = (*scratch)[:0]
}

// seqSampler adds sequence-shaped ingest (no timestamps).
type seqSampler[T any] struct {
	sampler[T]
	scratch []stream.Element[T]
}

// Observe feeds the next element.
func (s *seqSampler[T]) Observe(value T) { s.inner.Observe(value, 0) }

// ObserveBatch feeds a run of elements through the sampler's batched hot
// path. The result is identical to calling Observe per value — under
// WithSeed the two make the same random choices — but per-element
// bookkeeping is amortized across the run.
func (s *seqSampler[T]) ObserveBatch(values []T) {
	if len(values) == 0 {
		return
	}
	s.scratch = s.scratch[:0]
	for _, v := range values {
		s.scratch = append(s.scratch, stream.Element[T]{Value: v})
	}
	s.inner.ObserveBatch(s.scratch)
	releaseScratch(&s.scratch)
}

// tsSampler adds timestamped ingest with the monotone-clock guard (the
// internal samplers panic on time regressions; the public API returns
// ErrTimeBackwards instead).
type tsSampler[T any] struct {
	sampler[T]
	timed   stream.TimedSampler[T]
	scratch []stream.Element[T]
	last    int64
	begun   bool
}

// Observe feeds the next element with its arrival timestamp. Timestamps
// must be non-decreasing across both arrivals and queries.
func (s *tsSampler[T]) Observe(value T, ts int64) error {
	if s.begun && ts < s.last {
		return ErrTimeBackwards
	}
	s.begun = true
	s.last = ts
	s.timed.Observe(value, ts)
	return nil
}

// ObserveBatch feeds a run of timestamped elements through the sampler's
// batched hot path; values[i] arrives at timestamps[i]. The whole batch is
// validated before any element is fed, so a rejected batch leaves the
// sampler untouched. The result is identical to calling Observe per element.
func (s *tsSampler[T]) ObserveBatch(values []T, timestamps []int64) error {
	if len(values) != len(timestamps) {
		return ErrBatchShape
	}
	if len(values) == 0 {
		return nil
	}
	last, begun := s.last, s.begun
	for _, ts := range timestamps {
		if begun && ts < last {
			return ErrTimeBackwards
		}
		begun, last = true, ts
	}
	s.scratch = s.scratch[:0]
	for i, v := range values {
		s.scratch = append(s.scratch, stream.Element[T]{Value: v, TS: timestamps[i]})
	}
	s.timed.ObserveBatch(s.scratch)
	releaseScratch(&s.scratch)
	s.begun, s.last = true, last
	return nil
}

// SampleAt returns the sample over the elements active at time now.
// Querying advances the sampler's clock (it never rewinds); ok is false
// when the window is empty.
func (s *tsSampler[T]) SampleAt(now int64) ([]Sampled[T], bool) {
	if s.begun && now < s.last {
		now = s.last
	}
	s.begun = true
	s.last = now
	es, ok := s.timed.SampleAt(now)
	if !ok {
		return nil, false
	}
	return fromElements(es), true
}

// Sample queries at the latest observed time. On a sampler that has seen
// nothing it reports ok=false without pinning the clock (so a later stream
// may still start at any timestamp, including negative ones).
func (s *tsSampler[T]) Sample() ([]Sampled[T], bool) {
	if !s.begun {
		return nil, false
	}
	return s.SampleAt(s.last)
}

// Values returns just the sampled payloads at the latest observed time,
// with the same fresh-sampler clock behavior as Sample (the embedded
// generic Values would query the inner sampler directly and pin its clock
// at 0 before the stream begins).
func (s *tsSampler[T]) Values() ([]T, bool) {
	es, ok := s.Sample()
	if !ok {
		return nil, false
	}
	out := make([]T, len(es))
	for i, e := range es {
		out[i] = e.Value
	}
	return out, true
}

// ValuesAt returns just the sampled payloads at time now.
func (s *tsSampler[T]) ValuesAt(now int64) ([]T, bool) {
	es, ok := s.SampleAt(now)
	if !ok {
		return nil, false
	}
	out := make([]T, len(es))
	for i, e := range es {
		out[i] = e.Value
	}
	return out, true
}

func validateSeqParams(n uint64, k int) error {
	if n == 0 {
		return fmt.Errorf("slidingsample: window size n must be positive")
	}
	if k <= 0 {
		return fmt.Errorf("slidingsample: sample count k must be positive")
	}
	return nil
}

func validateTSParams(t0 int64, k int) error {
	if t0 <= 0 {
		return fmt.Errorf("slidingsample: horizon t0 must be positive")
	}
	if k <= 0 {
		return fmt.Errorf("slidingsample: sample count k must be positive")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Sequence-based windows
// ---------------------------------------------------------------------------

// SequenceWR maintains k independent uniform samples (with replacement)
// over the n most recent elements, in Θ(k) words (Theorem 2.1).
type SequenceWR[T any] struct {
	seqSampler[T]
	n uint64
}

// NewSequenceWR returns a with-replacement sampler over a window of the n
// most recent elements with k sample slots.
func NewSequenceWR[T any](n uint64, k int, opts ...Option) (*SequenceWR[T], error) {
	if err := validateSeqParams(n, k); err != nil {
		return nil, err
	}
	s := &SequenceWR[T]{n: n}
	s.inner = core.NewSeqWR[T](buildRNG(opts), n, k)
	return s, nil
}

// N returns the window size.
func (s *SequenceWR[T]) N() uint64 { return s.n }

// SequenceWOR maintains a uniform k-sample without replacement over the n
// most recent elements, in Θ(k) words (Theorem 2.2). While the window holds
// fewer than k elements the sample is the whole window.
type SequenceWOR[T any] struct {
	seqSampler[T]
	n uint64
}

// NewSequenceWOR returns a without-replacement sampler over a window of the
// n most recent elements with target sample size k.
func NewSequenceWOR[T any](n uint64, k int, opts ...Option) (*SequenceWOR[T], error) {
	if err := validateSeqParams(n, k); err != nil {
		return nil, err
	}
	s := &SequenceWOR[T]{n: n}
	s.inner = core.NewSeqWOR[T](buildRNG(opts), n, k)
	return s, nil
}

// N returns the window size.
func (s *SequenceWOR[T]) N() uint64 { return s.n }

// ---------------------------------------------------------------------------
// Timestamp-based windows
// ---------------------------------------------------------------------------

// TimestampWR maintains k independent uniform samples (with replacement)
// over the elements of the last t0 clock ticks, in Θ(k·log n) words
// (Theorem 3.9). An element with timestamp ts is active at time now iff
// now - ts < t0.
type TimestampWR[T any] struct {
	tsSampler[T]
	t0 int64
}

// NewTimestampWR returns a with-replacement sampler over a timestamp window
// of horizon t0 with k sample slots.
func NewTimestampWR[T any](t0 int64, k int, opts ...Option) (*TimestampWR[T], error) {
	if err := validateTSParams(t0, k); err != nil {
		return nil, err
	}
	s := &TimestampWR[T]{t0: t0}
	s.timed = core.NewTSWR[T](buildRNG(opts), t0, k)
	s.inner = s.timed
	return s, nil
}

// Horizon returns t0.
func (s *TimestampWR[T]) Horizon() int64 { return s.t0 }

// TimestampWOR maintains a uniform k-sample without replacement over the
// elements of the last t0 clock ticks, in Θ(k·log n) words (Theorem 4.4).
// While fewer than k elements are active the sample is the whole window.
type TimestampWOR[T any] struct {
	tsSampler[T]
	t0 int64
}

// NewTimestampWOR returns a without-replacement sampler over a timestamp
// window of horizon t0 with target sample size k.
func NewTimestampWOR[T any](t0 int64, k int, opts ...Option) (*TimestampWOR[T], error) {
	if err := validateTSParams(t0, k); err != nil {
		return nil, err
	}
	s := &TimestampWOR[T]{t0: t0}
	s.timed = core.NewTSWOR[T](buildRNG(opts), t0, k)
	s.inner = s.timed
	return s, nil
}

// Horizon returns t0.
func (s *TimestampWOR[T]) Horizon() int64 { return s.t0 }

// ---------------------------------------------------------------------------
// Step-biased sampling (Section 5 extension)
// ---------------------------------------------------------------------------

// StepBiased draws recency-biased samples: window lengths n_1 < ... < n_m
// with integer weights w_i define a non-increasing step function over
// element age; an element of age d is drawn with probability
// Σ_{i: n_i > d} (w_i / Σw) / n_i.
type StepBiased[T any] struct {
	seqSampler[T]
	biased *apps.StepBiased[T]
}

// NewStepBiased returns a step-biased sampler. lens must be strictly
// increasing and weights positive, with len(lens) == len(weights).
func NewStepBiased[T any](lens []uint64, weights []uint64, opts ...Option) (*StepBiased[T], error) {
	if len(lens) == 0 || len(lens) != len(weights) {
		return nil, fmt.Errorf("slidingsample: lens and weights must be non-empty and equal length")
	}
	var prev uint64
	for i, n := range lens {
		if n <= prev {
			return nil, fmt.Errorf("slidingsample: lens must be strictly increasing")
		}
		if weights[i] == 0 {
			return nil, fmt.Errorf("slidingsample: weights must be positive")
		}
		prev = n
	}
	s := &StepBiased[T]{biased: apps.NewStepBiased[T](buildRNG(opts), lens, weights)}
	s.inner = s.biased
	return s, nil
}

// Sample draws one element under the step-biased distribution.
//
//swlint:allow norandquery the step-biased mixture draws its step at query time by contract (paper sect. 6 extension); the draw comes from the sampler's own split rng, deterministic given query order
func (s *StepBiased[T]) Sample() (Sampled[T], bool) {
	es, ok := s.biased.Sample()
	if !ok {
		return Sampled[T]{}, false
	}
	return Sampled[T]{Value: es[0].Value, Index: es[0].Index, Timestamp: es[0].TS}, true
}

// Prob returns the theoretical sampling probability for age d (0 = newest).
func (s *StepBiased[T]) Prob(d uint64) float64 { return s.biased.Prob(d) }

// ---------------------------------------------------------------------------
// Weighted sequence-based windows (Efraimidis–Spirakis substrate)
// ---------------------------------------------------------------------------

// SampledWeight is one weighted sampled element: stream coordinates plus
// the weight it was ingested with.
type SampledWeight[T any] struct {
	Sampled[T]
	// Weight is the element's ingest weight.
	Weight float64
}

// weightedItem carries the per-element weight through the internal sampler,
// whose weight function just reads it back.
type weightedItem[T any] struct {
	value  T
	weight float64
}

func itemWeight[T any](it weightedItem[T]) float64 { return it.weight }

func validWeight(w float64) bool { return w > 0 && !math.IsInf(w, 1) }

// weightedSeqSampler is the shared weighted ingest/query adapter: weighted
// elements in, weighted samples out, with the standard scratch discipline.
type weightedSeqSampler[T any] struct {
	inner   stream.Sampler[weightedItem[T]]
	scratch []stream.Element[weightedItem[T]] //swlint:allow wordsacct recycled batch scratch under stream.MaxRecycledCap, empty between calls
	// sync, when set, flushes pending sharded ingest before a query: the
	// sharded substrates require a barrier between ingest and sampling, and
	// the public wrappers hold it automatically so queries are always safe.
	sync func()
	// closed refuses ingest after Close (the internal dispatchers treat it
	// as programmer error and panic; the public API returns ErrClosed).
	closed bool
	n      uint64
}

// Observe feeds the next element with its weight. Weights must be positive
// and finite; a rejected element leaves the sampler untouched.
func (s *weightedSeqSampler[T]) Observe(value T, weight float64) error {
	if s.closed {
		return ErrClosed
	}
	if !validWeight(weight) {
		return ErrBadWeight
	}
	s.inner.Observe(weightedItem[T]{value: value, weight: weight}, 0)
	return nil
}

// ObserveBatch feeds a run of weighted elements through the sampler's
// batched hot path; values[i] carries weights[i]. The whole batch is
// validated before any element is fed, so a rejected batch leaves the
// sampler untouched. The result is identical to calling Observe per element.
func (s *weightedSeqSampler[T]) ObserveBatch(values []T, weights []float64) error {
	if s.closed {
		return ErrClosed
	}
	if len(values) != len(weights) {
		return ErrBatchShape
	}
	if len(values) == 0 {
		return nil
	}
	for _, w := range weights {
		if !validWeight(w) {
			return ErrBadWeight
		}
	}
	s.scratch = s.scratch[:0]
	for i, v := range values {
		s.scratch = append(s.scratch, stream.Element[weightedItem[T]]{Value: weightedItem[T]{value: v, weight: weights[i]}})
	}
	s.inner.ObserveBatch(s.scratch)
	releaseScratch(&s.scratch)
	return nil
}

// Sample returns the current weighted sample: K() independent weighted
// draws for the with-replacement sampler, min(K(), windowSize) distinct
// elements under the Efraimidis–Spirakis successive-sampling law without
// replacement. ok is false while the window is empty.
func (s *weightedSeqSampler[T]) Sample() ([]SampledWeight[T], bool) {
	if s.sync != nil {
		s.sync()
	}
	es, ok := s.inner.Sample()
	if !ok {
		return nil, false
	}
	out := make([]SampledWeight[T], len(es))
	for i, e := range es {
		out[i] = SampledWeight[T]{
			Sampled: Sampled[T]{Value: e.Value.value, Index: e.Index, Timestamp: e.TS},
			Weight:  e.Value.weight,
		}
	}
	return out, true
}

// Values returns just the sampled payloads.
func (s *weightedSeqSampler[T]) Values() ([]T, bool) {
	if s.sync != nil {
		s.sync()
	}
	es, ok := s.inner.Sample()
	if !ok {
		return nil, false
	}
	out := make([]T, len(es))
	for i, e := range es {
		out[i] = e.Value.value
	}
	return out, true
}

// K returns the sample-size parameter; N the window size; Count the number
// of arrivals.
func (s *weightedSeqSampler[T]) K() int        { return s.inner.K() }
func (s *weightedSeqSampler[T]) N() uint64     { return s.n }
func (s *weightedSeqSampler[T]) Count() uint64 { return s.inner.Count() }

// Words and MaxWords report memory in the paper's word model (DESIGN.md §6).
// Unlike the uniform core samplers, the weighted substrates' footprint is a
// random variable with expectation O(k·log n).
// Like every query they flush in-flight sharded ingest first: the counts
// walk per-shard sampler state, which dealt-but-unprocessed elements would
// otherwise race with.
func (s *weightedSeqSampler[T]) Words() int {
	if s.sync != nil {
		s.sync()
	}
	return s.inner.Words()
}

func (s *weightedSeqSampler[T]) MaxWords() int {
	if s.sync != nil {
		s.sync()
	}
	return s.inner.MaxWords()
}

// WeightedSequenceWOR maintains a weighted k-sample without replacement
// over the n most recent elements: the sample is distributed like k
// successive weighted draws from the window (pick i with probability
// w_i/W, remove, renormalize, repeat — the Efraimidis–Spirakis law), in
// expected O(k·log n) words. While the window holds fewer than k elements
// the sample is the whole window.
type WeightedSequenceWOR[T any] struct {
	weightedSeqSampler[T]
}

// NewWeightedSequenceWOR returns a weighted without-replacement sampler
// over a window of the n most recent elements with target sample size k.
func NewWeightedSequenceWOR[T any](n uint64, k int, opts ...Option) (*WeightedSequenceWOR[T], error) {
	if err := validateSeqParams(n, k); err != nil {
		return nil, err
	}
	s := &WeightedSequenceWOR[T]{}
	s.n = n
	s.inner = weighted.NewWOR(buildRNG(opts), n, k, itemWeight[T])
	return s, nil
}

// WeightedSequenceWR maintains k independent weighted draws (sampling with
// replacement) over the n most recent elements: each sample slot returns
// element i with probability w_i / W(window), in expected O(k·log n) words.
type WeightedSequenceWR[T any] struct {
	weightedSeqSampler[T]
}

// NewWeightedSequenceWR returns a weighted with-replacement sampler over a
// window of the n most recent elements with k sample slots.
func NewWeightedSequenceWR[T any](n uint64, k int, opts ...Option) (*WeightedSequenceWR[T], error) {
	if err := validateSeqParams(n, k); err != nil {
		return nil, err
	}
	s := &WeightedSequenceWR[T]{}
	s.n = n
	s.inner = weighted.NewWR(buildRNG(opts), n, k, itemWeight[T])
	return s, nil
}

// ---------------------------------------------------------------------------
// Sharded weighted sequence-based windows (G-way parallel ingest)
// ---------------------------------------------------------------------------
//
// The public sequence-window sharded pair was blocked (ROADMAP) on the
// Barrier-vs-auto-flush story: the internal samplers PANIC on a query
// without an explicit Barrier, and a sequence window has no query clock
// that could make "query at time t" naturally checkpoint-shaped. The
// resolution is the same contract the timestamp pair already ships:
// EVERY query auto-flushes (Sample/Values hold a barrier through the sync
// hook), so the un-barriered panic is unreachable through the public API,
// and Barrier stays exported purely as an optimization — checkpoint once,
// then run read-heavy query bursts without re-flushing per call.

// ShardedWeightedSequenceWOR is the G-way parallel WeightedSequenceWOR:
// ingest is dealt round-robin across G shard goroutines while the sample
// law stays the EXACT Efraimidis–Spirakis weighted k-sample without
// replacement over the last n elements — per-shard log-keys are globally
// comparable, so the merged top-k at query time is the window's top-k with
// no cross-shard approximation. Only the TotalWeight oracle carries a
// (1±5%) error.
//
// Drive the sampler — ingest AND queries, including TotalWeight — from ONE
// goroutine (the dispatch order defines the stream order; the shard
// goroutines are internal). Queries flush in-flight ingest automatically;
// Barrier may also be called explicitly to checkpoint without sampling.
// Call Close to stop the shard goroutines; the sampler remains queryable.
type ShardedWeightedSequenceWOR[T any] struct {
	weightedSeqSampler[T]
	sharded *parallel.ShardedWeightedSeqWOR[weightedItem[T]]
}

// NewShardedWeightedSequenceWOR returns a g-way sharded weighted
// without-replacement sampler over a window of the n most recent elements
// with target sample size k. n must be divisible by g (round-robin dealing
// then puts exactly n/g active elements on every shard).
func NewShardedWeightedSequenceWOR[T any](n uint64, g, k int, opts ...Option) (*ShardedWeightedSequenceWOR[T], error) {
	if err := validateSeqParams(n, k); err != nil {
		return nil, err
	}
	if g < 1 {
		return nil, fmt.Errorf("slidingsample: shard count g must be positive")
	}
	if n%uint64(g) != 0 {
		return nil, fmt.Errorf("slidingsample: window size n must be divisible by the shard count g")
	}
	s := &ShardedWeightedSequenceWOR[T]{}
	s.n = n
	s.sharded = parallel.NewShardedWeightedSeqWOR(buildRNG(opts), n, g, k, weighted.DefaultSizeEps, itemWeight[T])
	s.inner = s.sharded
	s.sync = s.sharded.Barrier
	return s, nil
}

// Barrier flushes all in-flight ingest so dispatched elements are
// reflected in the shards (queries do this automatically).
func (s *ShardedWeightedSequenceWOR[T]) Barrier() { s.sharded.Barrier() }

// Close stops the shard goroutines. The sampler remains queryable;
// further ingest returns ErrClosed.
func (s *ShardedWeightedSequenceWOR[T]) Close() {
	s.closed = true
	s.sharded.Close()
}

// G returns the shard count.
func (s *ShardedWeightedSequenceWOR[T]) G() int { return s.sharded.G() }

// TotalWeight returns a (1±5%) estimate of the window's total weight from
// the dispatcher's per-shard exponential histograms over weights (clocked
// on the arrival index). Like every method it belongs to the ingest
// goroutine; no barrier is needed.
func (s *ShardedWeightedSequenceWOR[T]) TotalWeight() float64 { return s.sharded.TotalWeight() }

// ShardedWeightedSequenceWR is the G-way parallel WeightedSequenceWR: k
// independent weighted draws with replacement over the last n elements,
// ingested across G shard goroutines. Each draw picks a shard
// proportionally to its (1±5%) active-weight total and takes the shard's
// exact slot draw, so each window element is returned with probability
// (1±O(5%))·w/W. Concurrency contract as ShardedWeightedSequenceWOR.
type ShardedWeightedSequenceWR[T any] struct {
	weightedSeqSampler[T]
	sharded *parallel.ShardedWeightedSeqWR[weightedItem[T]]
}

// NewShardedWeightedSequenceWR returns a g-way sharded weighted
// with-replacement sampler over a window of the n most recent elements
// with k sample slots. n must be divisible by g.
func NewShardedWeightedSequenceWR[T any](n uint64, g, k int, opts ...Option) (*ShardedWeightedSequenceWR[T], error) {
	if err := validateSeqParams(n, k); err != nil {
		return nil, err
	}
	if g < 1 {
		return nil, fmt.Errorf("slidingsample: shard count g must be positive")
	}
	if n%uint64(g) != 0 {
		return nil, fmt.Errorf("slidingsample: window size n must be divisible by the shard count g")
	}
	s := &ShardedWeightedSequenceWR[T]{}
	s.n = n
	s.sharded = parallel.NewShardedWeightedSeqWR(buildRNG(opts), n, g, k, weighted.DefaultSizeEps, itemWeight[T])
	s.inner = s.sharded
	s.sync = s.sharded.Barrier
	return s, nil
}

// Barrier flushes all in-flight ingest (queries do this automatically).
func (s *ShardedWeightedSequenceWR[T]) Barrier() { s.sharded.Barrier() }

// Close stops the shard goroutines. The sampler remains queryable;
// further ingest returns ErrClosed.
func (s *ShardedWeightedSequenceWR[T]) Close() {
	s.closed = true
	s.sharded.Close()
}

// G returns the shard count.
func (s *ShardedWeightedSequenceWR[T]) G() int { return s.sharded.G() }

// TotalWeight returns a (1±5%) estimate of the window's total weight
// (no barrier needed; ingest-goroutine only, like every method).
func (s *ShardedWeightedSequenceWR[T]) TotalWeight() float64 { return s.sharded.TotalWeight() }

// ---------------------------------------------------------------------------
// Weighted timestamp-based windows ("heaviest flows by bytes, last minute")
// ---------------------------------------------------------------------------

// weightedTSSampler is the shared weighted timestamped adapter: weighted
// elements in (with the monotone-clock guard — the internal samplers panic
// on time regressions; the public API returns ErrTimeBackwards), weighted
// "as of now" samples out.
type weightedTSSampler[T any] struct {
	timed   stream.TimedSampler[weightedItem[T]]
	sized   interface{ SizeAt(int64) uint64 } //swlint:allow wordsacct capability view of the timed sampler above, counted there
	scratch []stream.Element[weightedItem[T]] //swlint:allow wordsacct recycled batch scratch under stream.MaxRecycledCap, empty between calls
	// sync, when set, flushes pending sharded ingest before a query: the
	// sharded substrates require a barrier between ingest and sampling, and
	// the public wrappers hold it automatically so queries are always safe.
	sync func()
	// closed refuses ingest after Close (the internal dispatchers treat it
	// as programmer error and panic; the public API returns ErrClosed).
	closed bool
	t0     int64
	last   int64
	begun  bool
}

// Observe feeds the next element with its weight and arrival timestamp.
// Weights must be positive and finite; timestamps must be non-decreasing
// across both arrivals and queries. A rejected element leaves the sampler
// untouched.
func (s *weightedTSSampler[T]) Observe(value T, weight float64, ts int64) error {
	if s.closed {
		return ErrClosed
	}
	if !validWeight(weight) {
		return ErrBadWeight
	}
	if s.begun && ts < s.last {
		return ErrTimeBackwards
	}
	s.begun = true
	s.last = ts
	s.timed.Observe(weightedItem[T]{value: value, weight: weight}, ts)
	return nil
}

// ObserveBatch feeds a run of weighted timestamped elements through the
// sampler's batched hot path; values[i] carries weights[i] and arrives at
// timestamps[i]. The whole batch is validated before any element is fed,
// so a rejected batch leaves the sampler untouched. The result is
// identical to calling Observe per element.
func (s *weightedTSSampler[T]) ObserveBatch(values []T, weights []float64, timestamps []int64) error {
	if s.closed {
		return ErrClosed
	}
	if len(values) != len(weights) || len(values) != len(timestamps) {
		return ErrBatchShape
	}
	if len(values) == 0 {
		return nil
	}
	for _, w := range weights {
		if !validWeight(w) {
			return ErrBadWeight
		}
	}
	last, begun := s.last, s.begun
	for _, ts := range timestamps {
		if begun && ts < last {
			return ErrTimeBackwards
		}
		begun, last = true, ts
	}
	s.scratch = s.scratch[:0]
	for i, v := range values {
		s.scratch = append(s.scratch, stream.Element[weightedItem[T]]{
			Value: weightedItem[T]{value: v, weight: weights[i]},
			TS:    timestamps[i],
		})
	}
	s.timed.ObserveBatch(s.scratch)
	releaseScratch(&s.scratch)
	s.begun, s.last = true, last
	return nil
}

// SampleAt returns the weighted sample over the elements active at time
// now: min(K, n(now)) distinct elements for the without-replacement
// sampler, K independent draws with replacement. Querying advances the
// sampler's clock (it never rewinds); ok is false when the window is empty
// at now — which, unlike sequence windows, can happen by clock advancement
// alone.
func (s *weightedTSSampler[T]) SampleAt(now int64) ([]SampledWeight[T], bool) {
	if s.begun && now < s.last {
		now = s.last
	}
	s.begun = true
	s.last = now
	if s.sync != nil {
		s.sync()
	}
	es, ok := s.timed.SampleAt(now)
	if !ok {
		return nil, false
	}
	out := make([]SampledWeight[T], len(es))
	for i, e := range es {
		out[i] = SampledWeight[T]{
			Sampled: Sampled[T]{Value: e.Value.value, Index: e.Index, Timestamp: e.TS},
			Weight:  e.Value.weight,
		}
	}
	return out, true
}

// Sample queries at the latest observed time. On a sampler that has seen
// nothing it reports ok=false without pinning the clock (so a later stream
// may still start at any timestamp, including negative ones).
func (s *weightedTSSampler[T]) Sample() ([]SampledWeight[T], bool) {
	if !s.begun {
		return nil, false
	}
	return s.SampleAt(s.last)
}

// ValuesAt returns just the sampled payloads at time now.
func (s *weightedTSSampler[T]) ValuesAt(now int64) ([]T, bool) {
	es, ok := s.SampleAt(now)
	if !ok {
		return nil, false
	}
	out := make([]T, len(es))
	for i, e := range es {
		out[i] = e.Value
	}
	return out, true
}

// Values returns just the sampled payloads at the latest observed time.
func (s *weightedTSSampler[T]) Values() ([]T, bool) {
	es, ok := s.Sample()
	if !ok {
		return nil, false
	}
	out := make([]T, len(es))
	for i, e := range es {
		out[i] = e.Value
	}
	return out, true
}

// SizeAt returns a (1±5%) estimate of n(now), the number of elements
// active at time now, from the sampler's embedded exponential-histogram
// counter — the exact count is not computable in sublinear space (the
// paper's Section 3 negative result). Unlike SampleAt, this is a read-only
// query: it never advances the sampler's clock.
func (s *weightedTSSampler[T]) SizeAt(now int64) uint64 { return s.sized.SizeAt(now) }

// K returns the sample-size parameter; Horizon t0; Count the number of
// arrivals.
func (s *weightedTSSampler[T]) K() int         { return s.timed.K() }
func (s *weightedTSSampler[T]) Horizon() int64 { return s.t0 }
func (s *weightedTSSampler[T]) Count() uint64  { return s.timed.Count() }

// Words and MaxWords report memory in the paper's word model (DESIGN.md
// §6), including the embedded window-size counter. The weighted
// substrates' footprint is a random variable with expectation O(k·log n).
// Like every query they flush in-flight sharded ingest first: the counts
// walk per-shard sampler state, which dealt-but-unprocessed elements would
// otherwise race with.
func (s *weightedTSSampler[T]) Words() int {
	if s.sync != nil {
		s.sync()
	}
	return s.timed.Words()
}

func (s *weightedTSSampler[T]) MaxWords() int {
	if s.sync != nil {
		s.sync()
	}
	return s.timed.MaxWords()
}

// WeightedTimestampWOR maintains a weighted k-sample without replacement
// over the elements of the last t0 clock ticks under the
// Efraimidis–Spirakis law, in expected O(k·log n) words plus an embedded
// (1±5%) window-size counter. While fewer than k elements are active the
// sample is the whole window; expiry — including at query time, with no
// arrival — uses the overflow-safe timestamp comparison.
type WeightedTimestampWOR[T any] struct {
	weightedTSSampler[T]
}

// NewWeightedTimestampWOR returns a weighted without-replacement sampler
// over a timestamp window of horizon t0 with target sample size k.
func NewWeightedTimestampWOR[T any](t0 int64, k int, opts ...Option) (*WeightedTimestampWOR[T], error) {
	if err := validateTSParams(t0, k); err != nil {
		return nil, err
	}
	s := &WeightedTimestampWOR[T]{}
	s.t0 = t0
	inner := weighted.NewTSWOR(buildRNG(opts), t0, k, weighted.DefaultSizeEps, itemWeight[T])
	s.timed, s.sized = inner, inner
	return s, nil
}

// WeightedTimestampWR maintains k independent weighted draws (sampling
// with replacement) over the elements of the last t0 clock ticks: each
// sample slot returns element i with probability w_i / W(active window),
// in expected O(k·log n) words plus an embedded (1±5%) window-size
// counter.
type WeightedTimestampWR[T any] struct {
	weightedTSSampler[T]
}

// NewWeightedTimestampWR returns a weighted with-replacement sampler over
// a timestamp window of horizon t0 with k sample slots.
func NewWeightedTimestampWR[T any](t0 int64, k int, opts ...Option) (*WeightedTimestampWR[T], error) {
	if err := validateTSParams(t0, k); err != nil {
		return nil, err
	}
	s := &WeightedTimestampWR[T]{}
	s.t0 = t0
	inner := weighted.NewTSWR(buildRNG(opts), t0, k, weighted.DefaultSizeEps, itemWeight[T])
	s.timed, s.sized = inner, inner
	return s, nil
}

// ---------------------------------------------------------------------------
// Sharded weighted timestamp windows (G-way parallel ingest)
// ---------------------------------------------------------------------------

// ShardedWeightedTimestampWOR is the G-way parallel WeightedTimestampWOR:
// ingest is dealt round-robin across G shard goroutines (multi-core
// throughput for streams too fast for one core) while the sample law stays
// the EXACT Efraimidis–Spirakis weighted k-sample without replacement —
// per-shard log-keys are globally comparable, so the merged top-k at query
// time is the window's top-k with no cross-shard approximation. Only the
// scale oracles (SizeAt, TotalWeightAt) carry a (1±5%) error.
//
// Drive the sampler — ingest AND queries, including the SizeAt /
// TotalWeightAt oracles — from ONE goroutine (the dispatch order defines
// the stream order, and like every sampler in this package it is not safe
// for concurrent use; the shard goroutines are internal). Queries flush
// in-flight ingest automatically — each Sample/SampleAt holds a barrier —
// so they are always consistent; Barrier may also be called explicitly to
// checkpoint without sampling. Call Close to stop the shard goroutines;
// the sampler remains queryable after.
type ShardedWeightedTimestampWOR[T any] struct {
	weightedTSSampler[T]
	sharded *parallel.ShardedWeightedTSWOR[weightedItem[T]]
}

// NewShardedWeightedTimestampWOR returns a g-way sharded weighted
// without-replacement sampler over a timestamp window of horizon t0 with
// target sample size k.
func NewShardedWeightedTimestampWOR[T any](t0 int64, g, k int, opts ...Option) (*ShardedWeightedTimestampWOR[T], error) {
	if err := validateTSParams(t0, k); err != nil {
		return nil, err
	}
	if g < 1 {
		return nil, fmt.Errorf("slidingsample: shard count g must be positive")
	}
	s := &ShardedWeightedTimestampWOR[T]{}
	s.t0 = t0
	s.sharded = parallel.NewShardedWeightedTSWOR(buildRNG(opts), t0, g, k, weighted.DefaultSizeEps, itemWeight[T])
	s.timed, s.sized = s.sharded, s.sharded
	s.sync = s.sharded.Barrier
	return s, nil
}

// Barrier flushes all in-flight ingest so dispatched elements are
// reflected in the shards (queries do this automatically).
func (s *ShardedWeightedTimestampWOR[T]) Barrier() { s.sharded.Barrier() }

// Close stops the shard goroutines. The sampler remains queryable;
// further ingest returns ErrClosed.
func (s *ShardedWeightedTimestampWOR[T]) Close() {
	s.closed = true
	s.sharded.Close()
}

// G returns the shard count.
func (s *ShardedWeightedTimestampWOR[T]) G() int { return s.sharded.G() }

// TotalWeightAt returns a (1±5%) estimate of the total weight of the
// elements active at time now, from the dispatcher's per-shard
// exponential histograms over weights. Like SizeAt it is read-only in the
// clock sense — it never advances the sampler's clock and needs no
// barrier — but it must be called from the same goroutine that ingests,
// like every other method.
func (s *ShardedWeightedTimestampWOR[T]) TotalWeightAt(now int64) float64 {
	return s.sharded.TotalWeightAt(now)
}

// ShardedWeightedTimestampWR is the G-way parallel WeightedTimestampWR: k
// independent weighted draws with replacement over the last t0 ticks,
// ingested across G shard goroutines. Each draw picks a shard
// proportionally to its (1±5%) active-weight total — the per-shard
// exponential histograms over weights — and takes the shard's exact slot
// draw, so each active element is returned with probability
// (1±O(5%))·w/W. Concurrency contract as ShardedWeightedTimestampWOR.
type ShardedWeightedTimestampWR[T any] struct {
	weightedTSSampler[T]
	sharded *parallel.ShardedWeightedTSWR[weightedItem[T]]
}

// NewShardedWeightedTimestampWR returns a g-way sharded weighted
// with-replacement sampler over a timestamp window of horizon t0 with k
// sample slots.
func NewShardedWeightedTimestampWR[T any](t0 int64, g, k int, opts ...Option) (*ShardedWeightedTimestampWR[T], error) {
	if err := validateTSParams(t0, k); err != nil {
		return nil, err
	}
	if g < 1 {
		return nil, fmt.Errorf("slidingsample: shard count g must be positive")
	}
	s := &ShardedWeightedTimestampWR[T]{}
	s.t0 = t0
	s.sharded = parallel.NewShardedWeightedTSWR(buildRNG(opts), t0, g, k, weighted.DefaultSizeEps, itemWeight[T])
	s.timed, s.sized = s.sharded, s.sharded
	s.sync = s.sharded.Barrier
	return s, nil
}

// Barrier flushes all in-flight ingest (queries do this automatically).
func (s *ShardedWeightedTimestampWR[T]) Barrier() { s.sharded.Barrier() }

// Close stops the shard goroutines. The sampler remains queryable;
// further ingest returns ErrClosed.
func (s *ShardedWeightedTimestampWR[T]) Close() {
	s.closed = true
	s.sharded.Close()
}

// G returns the shard count.
func (s *ShardedWeightedTimestampWR[T]) G() int { return s.sharded.G() }

// TotalWeightAt returns a (1±5%) estimate of the total active weight at
// time now (read-only in the clock sense — no barrier needed — but
// producer-goroutine only, like every method).
func (s *ShardedWeightedTimestampWR[T]) TotalWeightAt(now int64) float64 {
	return s.sharded.TotalWeightAt(now)
}
