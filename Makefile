# Developer and CI entry points. `make ci` is what the GitHub Actions
# workflow runs; the other targets are the common local loops.

GO ?= go

.PHONY: all build test test-race vet bench-quick bench-batch swbench-quick ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the goroutine-parallel ingest machinery.
test-race:
	$(GO) test -race ./internal/parallel/...

vet:
	$(GO) vet ./...

# Fast benchmark smoke: fixed iteration counts so CI time is bounded.
bench-quick:
	$(GO) test -run xxx -bench . -benchtime 10000x ./...

# The batched-vs-looped ingest comparison behind BENCH_1.json.
bench-batch:
	$(GO) test -run xxx -bench 'BenchmarkBatch_' -benchtime 300000x .

# All statistical experiments at reduced trial counts.
swbench-quick:
	$(GO) run ./cmd/swbench -quick

ci: vet build test test-race
