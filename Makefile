# Developer and CI entry points. `make check` is the full local gate and
# what the GitHub Actions workflow mirrors; the other targets are the
# common local loops.

GO ?= go

.PHONY: all build test test-race vet lint lint-json lint-fix bench-quick bench-batch bench-smoke bench-tenants swbench-quick smoke-e18 smoke-e19 serve-smoke recover-smoke check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass. Why each package is (or is not) in the list:
#   .                      public sharded wrappers: auto-flush queries and
#                          footprint accessors race ingest by design
#   ./internal/parallel    the goroutine-parallel ingest machinery itself
#   ./internal/ehist       read-only EstimateAt under a read lock,
#                          hammered concurrently with ingest
#   ./internal/serve       HTTP layer: concurrent ingest+query, applier
#                          goroutine, snapshot/close interleavings
#   ./internal/weighted    single-writer substrates, but the rng-free-query
#                          contract means post-ingest reads are concurrent
#                          -safe; TestWORConcurrentReadOracle pins that
#   ./internal/window      exact materializers: harness code reads them
#                          from checker goroutines after ingest stops;
#                          TestBuffersConcurrentReads pins the read paths
#   ./internal/slab        sync.Pool-backed slice recycling shared by every
#                          tenant ingest request; TestSlicePoolConcurrent
#                          hammers Get/Put from many goroutines
# internal/serve includes TestTenantFirstArrivalRace, the fabric's
# concurrent lazy-instantiation hammer (exactly one sampler per tenant).
# Not listed: internal/core and internal/xrand are single-goroutine by
# contract with no concurrent tests to exercise (callers synchronize);
# internal/stream and internal/substrate are data/plumbing with no
# goroutines; cmd/* are covered by the smoke targets.
test-race:
	$(GO) test -race . ./internal/parallel/... ./internal/ehist/... ./internal/serve/... ./internal/slab/... ./internal/weighted/... ./internal/window/...

vet:
	$(GO) vet ./...

# swlint: the repo's own go/analysis gate (norandquery, detrand,
# lockorder, errsurface, wordsacct, noalias, substratecov, nilness,
# unusedwrite — see internal/lint and DESIGN.md §8). Built from source so
# the gate always matches the checked-out tree, then run through
# `go vet -vettool` so it inherits vet's package loading, caching, and
# cross-package facts. Must pass with zero unexplained //swlint:allow
# directives; fixture tests in internal/lint prove it fails on violations.
lint:
	$(GO) build -o bin/swlint ./cmd/swlint
	$(GO) vet -vettool=$(CURDIR)/bin/swlint ./...

# Same gate, machine-readable: vet's -json stream rendered to
# file:line:col lines (what editors and the CI problem matcher parse).
# vet writes the -json stream to stderr (hence the 2>&1) and always exits
# 0 in that mode, so `swlint render` owns the exit code.
lint-json:
	$(GO) build -o bin/swlint ./cmd/swlint
	$(GO) vet -vettool=$(CURDIR)/bin/swlint -json ./... 2>&1 | bin/swlint render

# Apply every suggested fix the analyzers offer (today: noalias wraps an
# aliasing return in an append copy). CI runs this followed by
# `git diff --exit-code` as the drift gate: fixes must already be applied.
lint-fix:
	$(GO) build -o bin/swlint ./cmd/swlint
	$(GO) vet -vettool=$(CURDIR)/bin/swlint -json ./... 2>&1 | bin/swlint applyfixes

# The weighted timestamp-window experiment at CI scale: exercises the
# tentpole end to end (skyband + embedded ehist + query-time expiry).
smoke-e18:
	$(GO) run ./cmd/swbench -quick -e E18

# The sharded weighted experiment at CI scale: weight-aware dispatch,
# exact cross-shard WOR merge, per-shard ehist-over-weights oracles.
smoke-e19:
	$(GO) run ./cmd/swbench -quick -e E19

# The serving layer end to end: start swserve in-process, ingest over HTTP
# (JSON + NDJSON), query every endpoint including the error surface, and
# diff the full transcript against the golden (hermetic — no curl/ports).
# Regenerate after intended changes with:
#   $(GO) run ./cmd/swserve -smoke > cmd/swserve/testdata/smoke.golden
serve-smoke:
	$(GO) run ./cmd/swserve -smoke -golden cmd/swserve/testdata/smoke.golden

# Durability end to end (DESIGN.md §10): the kill-and-recover battery
# (snapshot + WAL-tail replay vs an uninterrupted control, bit-for-bit
# over HTTP), the wire snapshot/restore round trip, and the
# snapshot-while-ingesting hammer — all under the race detector.
recover-smoke:
	$(GO) test -race -count=1 -run 'TestKillAndRecover|TestHTTPSnapshotRestoreRoundTrip|TestSnapshotWhileIngesting' ./internal/serve/

# Fast benchmark smoke: fixed iteration counts so CI time is bounded.
bench-quick:
	$(GO) test -run xxx -bench . -benchtime 10000x ./...

# The batched-vs-looped ingest comparison behind BENCH_1.json.
bench-batch:
	$(GO) test -run xxx -bench 'BenchmarkBatch_' -benchtime 300000x .

# All statistical experiments at reduced trial counts.
swbench-quick:
	$(GO) run ./cmd/swbench -quick

# Serving-path load smoke: a tiny hermetic swload run (the BENCH_5 harness
# end to end — in-process HTTP server, concurrent ingest, mixed read/write
# wave) plus the key batched-ingest and shard-query benchmarks at one
# iteration each. Verifies the perf machinery runs, not that it is fast.
bench-smoke:
	$(GO) run ./cmd/swload -clients 2 -batches 4 -batch-size 25 -queries 10 > /dev/null
	$(GO) test -run xxx -bench 'BenchmarkHTTP|BenchmarkBatch_|SampleAt' -benchtime 1x ./internal/serve/ .

# Multi-tenant fabric smoke: a tiny hermetic swload tenant wave (fabric
# registration, zipf-skewed /tenant/{fabric}/{id}/ traffic) plus the tenant
# ingest/footprint benchmarks at one iteration with -short (skips the 1M
# population). Verifies the BENCH_6 machinery runs, not that it is fast.
bench-tenants:
	$(GO) run ./cmd/swload -tenants 100 -tenant-skew 1.1 -clients 2 -batches 4 -batch-size 25 -queries 10 > /dev/null
	$(GO) test -run xxx -bench 'BenchmarkTenant' -benchtime 1x -short ./internal/serve/

# lint runs right after vet/build so invariant violations fail the gate
# before the slower race and smoke stages.
check: vet build lint test test-race smoke-e18 smoke-e19 serve-smoke recover-smoke bench-smoke bench-tenants

ci: check
