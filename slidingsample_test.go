package slidingsample

import (
	"math"
	"testing"
)

func TestPublicSequenceWR(t *testing.T) {
	s, err := NewSequenceWR[string](4, 2, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Sample(); ok {
		t.Fatal("sample from empty sampler")
	}
	words := []string{"a", "b", "c", "d", "e", "f"}
	for _, w := range words {
		s.Observe(w)
	}
	got, ok := s.Sample()
	if !ok || len(got) != 2 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	for _, e := range got {
		if e.Index < 2 || e.Index > 5 {
			t.Fatalf("sample outside window: %+v", e)
		}
		if e.Value != words[e.Index] {
			t.Fatalf("value/index mismatch: %+v", e)
		}
	}
	vals, ok := s.Values()
	if !ok || len(vals) != 2 {
		t.Fatal("Values broken")
	}
	if s.N() != 4 || s.K() != 2 || s.Count() != 6 {
		t.Fatal("accessors broken")
	}
	if s.Words() <= 0 || s.MaxWords() < s.Words() {
		t.Fatal("memory accounting broken")
	}
}

func TestPublicSequenceWOR(t *testing.T) {
	s, err := NewSequenceWOR[int](8, 3, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Observe(i)
	}
	got, ok := s.Sample()
	if !ok || len(got) != 3 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	seen := map[uint64]bool{}
	for _, e := range got {
		if e.Index < 12 || seen[e.Index] {
			t.Fatalf("bad WOR sample: %+v", got)
		}
		seen[e.Index] = true
	}
}

func TestPublicTimestampWR(t *testing.T) {
	s, err := NewTimestampWR[int](10, 2, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.Observe(i, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.SampleAt(29)
	if !ok || len(got) != 2 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	for _, e := range got {
		if e.Timestamp < 20 {
			t.Fatalf("expired element sampled: %+v", e)
		}
	}
	if err := s.Observe(99, 5); err != ErrTimeBackwards {
		t.Fatalf("backwards timestamp returned %v, want ErrTimeBackwards", err)
	}
	if _, ok := s.SampleAt(100); ok {
		t.Fatal("sample from expired window")
	}
	// Clock clamping: an earlier query time must not error or resurrect.
	if _, ok := s.SampleAt(50); ok {
		t.Fatal("earlier query resurrected the window")
	}
	if s.Horizon() != 10 || s.K() != 2 || s.Count() != 30 {
		t.Fatal("accessors broken")
	}
}

func TestPublicTimestampWOR(t *testing.T) {
	s, err := NewTimestampWOR[int](10, 3, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := s.Observe(i, int64(i/2)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.Sample()
	if !ok || len(got) != 3 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	seen := map[uint64]bool{}
	for _, e := range got {
		if seen[e.Index] {
			t.Fatal("duplicate in WOR sample")
		}
		seen[e.Index] = true
	}
	if err := s.Observe(0, 1); err != ErrTimeBackwards {
		t.Fatalf("want ErrTimeBackwards, got %v", err)
	}
	if s.Words() <= 0 || s.MaxWords() < s.Words() {
		t.Fatal("memory accounting broken")
	}
}

func TestPublicStepBiased(t *testing.T) {
	s, err := NewStepBiased[int]([]uint64{2, 8}, []uint64{1, 1}, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Observe(i)
	}
	e, ok := s.Sample()
	if !ok || e.Index < 12 {
		t.Fatalf("biased sample outside largest window: %+v ok=%v", e, ok)
	}
	if s.Prob(0) <= s.Prob(5) {
		t.Fatal("bias not decreasing")
	}
	if math.Abs(s.Prob(0)-(0.5/2+0.5/8)) > 1e-12 {
		t.Fatalf("Prob(0) = %v", s.Prob(0))
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewSequenceWR[int](0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewSequenceWR[int](4, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewSequenceWOR[int](0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewSequenceWOR[int](4, -1); err == nil {
		t.Error("k<0 accepted")
	}
	if _, err := NewTimestampWR[int](0, 1); err == nil {
		t.Error("t0=0 accepted")
	}
	if _, err := NewTimestampWR[int](5, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewTimestampWOR[int](-1, 1); err == nil {
		t.Error("t0<0 accepted")
	}
	if _, err := NewTimestampWOR[int](5, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewStepBiased[int](nil, nil); err == nil {
		t.Error("empty steps accepted")
	}
	if _, err := NewStepBiased[int]([]uint64{4, 4}, []uint64{1, 1}); err == nil {
		t.Error("non-increasing lens accepted")
	}
	if _, err := NewStepBiased[int]([]uint64{4, 8}, []uint64{1, 0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewStepBiased[int]([]uint64{4}, []uint64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSeededDeterminismAcrossInstances(t *testing.T) {
	run := func() []uint64 {
		s, _ := NewSequenceWR[int](16, 2, WithSeed(42))
		var out []uint64
		for i := 0; i < 100; i++ {
			s.Observe(i)
			if got, ok := s.Sample(); ok {
				for _, e := range got {
					out = append(out, e.Index)
				}
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("WithSeed not deterministic")
		}
	}
}

func TestUnseededInstancesDiffer(t *testing.T) {
	// Two default-seeded samplers should (with overwhelming probability)
	// make different choices on a long stream.
	a, _ := NewSequenceWR[int](64, 1)
	b, _ := NewSequenceWR[int](64, 1)
	same := 0
	const steps = 200
	for i := 0; i < steps; i++ {
		a.Observe(i)
		b.Observe(i)
		sa, _ := a.Sample()
		sb, _ := b.Sample()
		if sa[0].Index == sb[0].Index {
			same++
		}
	}
	if same == steps {
		t.Fatal("two unseeded samplers behaved identically — crypto seeding broken")
	}
}

// TestPublicUniformitySmoke is an end-to-end uniformity smoke test through
// the public API (the heavy statistical validation lives in internal/core).
func TestPublicUniformitySmoke(t *testing.T) {
	const n, trials = 8, 40000
	counts := make([]int, n)
	for tr := 0; tr < trials; tr++ {
		s, _ := NewSequenceWR[int](n, 1, WithSeed(uint64(tr)))
		for i := 0; i < 19; i++ {
			s.Observe(i)
		}
		got, _ := s.Sample()
		counts[got[0].Index-(19-n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("window pos %d: %d, want about %.0f", i, c, want)
		}
	}
}

func TestEmptySampleDoesNotPinClock(t *testing.T) {
	// Querying an empty timestamp sampler must not fix its clock at 0:
	// a stream starting at a negative timestamp must still be accepted.
	wr, _ := NewTimestampWR[int](10, 1, WithSeed(1))
	if _, ok := wr.Sample(); ok {
		t.Fatal("sample from empty sampler")
	}
	if err := wr.Observe(1, -100); err != nil {
		t.Fatalf("negative start rejected after empty Sample: %v", err)
	}
	if got, ok := wr.Sample(); !ok || got[0].Timestamp != -100 {
		t.Fatal("sampler broken after negative start")
	}

	wor, _ := NewTimestampWOR[int](10, 2, WithSeed(2))
	if _, ok := wor.Sample(); ok {
		t.Fatal("sample from empty sampler")
	}
	if err := wor.Observe(1, -100); err != nil {
		t.Fatalf("negative start rejected after empty Sample: %v", err)
	}
	if got, ok := wor.Sample(); !ok || len(got) != 1 {
		t.Fatal("sampler broken after negative start")
	}
}

func TestPublicValuesHelpers(t *testing.T) {
	wor, _ := NewSequenceWOR[string](4, 2, WithSeed(3))
	if _, ok := wor.Values(); ok {
		t.Fatal("Values from empty sampler")
	}
	wor.Observe("x")
	if vals, ok := wor.Values(); !ok || len(vals) != 1 || vals[0] != "x" {
		t.Fatalf("Values = %v ok=%v", vals, ok)
	}
	twr, _ := NewTimestampWR[string](10, 2, WithSeed(4))
	_ = twr.Observe("a", 1)
	if vals, ok := twr.ValuesAt(1); !ok || len(vals) != 2 || vals[0] != "a" {
		t.Fatalf("ValuesAt = %v ok=%v", vals, ok)
	}
	twor, _ := NewTimestampWOR[string](10, 2, WithSeed(5))
	_ = twor.Observe("b", 1)
	if vals, ok := twor.ValuesAt(1); !ok || len(vals) != 1 || vals[0] != "b" {
		t.Fatalf("ValuesAt = %v ok=%v", vals, ok)
	}
}
