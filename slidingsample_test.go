package slidingsample

import (
	"math"
	"testing"

	"slidingsample/internal/stream"
)

func TestPublicSequenceWR(t *testing.T) {
	s, err := NewSequenceWR[string](4, 2, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Sample(); ok {
		t.Fatal("sample from empty sampler")
	}
	words := []string{"a", "b", "c", "d", "e", "f"}
	for _, w := range words {
		s.Observe(w)
	}
	got, ok := s.Sample()
	if !ok || len(got) != 2 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	for _, e := range got {
		if e.Index < 2 || e.Index > 5 {
			t.Fatalf("sample outside window: %+v", e)
		}
		if e.Value != words[e.Index] {
			t.Fatalf("value/index mismatch: %+v", e)
		}
	}
	vals, ok := s.Values()
	if !ok || len(vals) != 2 {
		t.Fatal("Values broken")
	}
	if s.N() != 4 || s.K() != 2 || s.Count() != 6 {
		t.Fatal("accessors broken")
	}
	if s.Words() <= 0 || s.MaxWords() < s.Words() {
		t.Fatal("memory accounting broken")
	}
}

func TestPublicSequenceWOR(t *testing.T) {
	s, err := NewSequenceWOR[int](8, 3, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Observe(i)
	}
	got, ok := s.Sample()
	if !ok || len(got) != 3 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	seen := map[uint64]bool{}
	for _, e := range got {
		if e.Index < 12 || seen[e.Index] {
			t.Fatalf("bad WOR sample: %+v", got)
		}
		seen[e.Index] = true
	}
}

func TestPublicTimestampWR(t *testing.T) {
	s, err := NewTimestampWR[int](10, 2, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.Observe(i, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.SampleAt(29)
	if !ok || len(got) != 2 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	for _, e := range got {
		if e.Timestamp < 20 {
			t.Fatalf("expired element sampled: %+v", e)
		}
	}
	if err := s.Observe(99, 5); err != ErrTimeBackwards {
		t.Fatalf("backwards timestamp returned %v, want ErrTimeBackwards", err)
	}
	if _, ok := s.SampleAt(100); ok {
		t.Fatal("sample from expired window")
	}
	// Clock clamping: an earlier query time must not error or resurrect.
	if _, ok := s.SampleAt(50); ok {
		t.Fatal("earlier query resurrected the window")
	}
	if s.Horizon() != 10 || s.K() != 2 || s.Count() != 30 {
		t.Fatal("accessors broken")
	}
}

func TestPublicTimestampWOR(t *testing.T) {
	s, err := NewTimestampWOR[int](10, 3, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := s.Observe(i, int64(i/2)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.Sample()
	if !ok || len(got) != 3 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	seen := map[uint64]bool{}
	for _, e := range got {
		if seen[e.Index] {
			t.Fatal("duplicate in WOR sample")
		}
		seen[e.Index] = true
	}
	if err := s.Observe(0, 1); err != ErrTimeBackwards {
		t.Fatalf("want ErrTimeBackwards, got %v", err)
	}
	if s.Words() <= 0 || s.MaxWords() < s.Words() {
		t.Fatal("memory accounting broken")
	}
}

func TestPublicStepBiased(t *testing.T) {
	s, err := NewStepBiased[int]([]uint64{2, 8}, []uint64{1, 1}, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Observe(i)
	}
	e, ok := s.Sample()
	if !ok || e.Index < 12 {
		t.Fatalf("biased sample outside largest window: %+v ok=%v", e, ok)
	}
	if s.Prob(0) <= s.Prob(5) {
		t.Fatal("bias not decreasing")
	}
	if math.Abs(s.Prob(0)-(0.5/2+0.5/8)) > 1e-12 {
		t.Fatalf("Prob(0) = %v", s.Prob(0))
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewSequenceWR[int](0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewSequenceWR[int](4, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewSequenceWOR[int](0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewSequenceWOR[int](4, -1); err == nil {
		t.Error("k<0 accepted")
	}
	if _, err := NewTimestampWR[int](0, 1); err == nil {
		t.Error("t0=0 accepted")
	}
	if _, err := NewTimestampWR[int](5, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewTimestampWOR[int](-1, 1); err == nil {
		t.Error("t0<0 accepted")
	}
	if _, err := NewTimestampWOR[int](5, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewStepBiased[int](nil, nil); err == nil {
		t.Error("empty steps accepted")
	}
	if _, err := NewStepBiased[int]([]uint64{4, 4}, []uint64{1, 1}); err == nil {
		t.Error("non-increasing lens accepted")
	}
	if _, err := NewStepBiased[int]([]uint64{4, 8}, []uint64{1, 0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewStepBiased[int]([]uint64{4}, []uint64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSeededDeterminismAcrossInstances(t *testing.T) {
	run := func() []uint64 {
		s, _ := NewSequenceWR[int](16, 2, WithSeed(42))
		var out []uint64
		for i := 0; i < 100; i++ {
			s.Observe(i)
			if got, ok := s.Sample(); ok {
				for _, e := range got {
					out = append(out, e.Index)
				}
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("WithSeed not deterministic")
		}
	}
}

func TestUnseededInstancesDiffer(t *testing.T) {
	// Two default-seeded samplers should (with overwhelming probability)
	// make different choices on a long stream.
	a, _ := NewSequenceWR[int](64, 1)
	b, _ := NewSequenceWR[int](64, 1)
	same := 0
	const steps = 200
	for i := 0; i < steps; i++ {
		a.Observe(i)
		b.Observe(i)
		sa, _ := a.Sample()
		sb, _ := b.Sample()
		if sa[0].Index == sb[0].Index {
			same++
		}
	}
	if same == steps {
		t.Fatal("two unseeded samplers behaved identically — crypto seeding broken")
	}
}

// TestPublicUniformitySmoke is an end-to-end uniformity smoke test through
// the public API (the heavy statistical validation lives in internal/core).
func TestPublicUniformitySmoke(t *testing.T) {
	const n, trials = 8, 40000
	counts := make([]int, n)
	for tr := 0; tr < trials; tr++ {
		s, _ := NewSequenceWR[int](n, 1, WithSeed(uint64(tr)))
		for i := 0; i < 19; i++ {
			s.Observe(i)
		}
		got, _ := s.Sample()
		counts[got[0].Index-(19-n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("window pos %d: %d, want about %.0f", i, c, want)
		}
	}
}

func TestEmptySampleDoesNotPinClock(t *testing.T) {
	// Querying an empty timestamp sampler must not fix its clock at 0:
	// a stream starting at a negative timestamp must still be accepted.
	wr, _ := NewTimestampWR[int](10, 1, WithSeed(1))
	if _, ok := wr.Sample(); ok {
		t.Fatal("sample from empty sampler")
	}
	if err := wr.Observe(1, -100); err != nil {
		t.Fatalf("negative start rejected after empty Sample: %v", err)
	}
	if got, ok := wr.Sample(); !ok || got[0].Timestamp != -100 {
		t.Fatal("sampler broken after negative start")
	}

	wor, _ := NewTimestampWOR[int](10, 2, WithSeed(2))
	if _, ok := wor.Sample(); ok {
		t.Fatal("sample from empty sampler")
	}
	if err := wor.Observe(1, -100); err != nil {
		t.Fatalf("negative start rejected after empty Sample: %v", err)
	}
	if got, ok := wor.Sample(); !ok || len(got) != 1 {
		t.Fatal("sampler broken after negative start")
	}
}

func TestPublicValuesHelpers(t *testing.T) {
	wor, _ := NewSequenceWOR[string](4, 2, WithSeed(3))
	if _, ok := wor.Values(); ok {
		t.Fatal("Values from empty sampler")
	}
	wor.Observe("x")
	if vals, ok := wor.Values(); !ok || len(vals) != 1 || vals[0] != "x" {
		t.Fatalf("Values = %v ok=%v", vals, ok)
	}
	twr, _ := NewTimestampWR[string](10, 2, WithSeed(4))
	_ = twr.Observe("a", 1)
	if vals, ok := twr.ValuesAt(1); !ok || len(vals) != 2 || vals[0] != "a" {
		t.Fatalf("ValuesAt = %v ok=%v", vals, ok)
	}
	twor, _ := NewTimestampWOR[string](10, 2, WithSeed(5))
	_ = twor.Observe("b", 1)
	if vals, ok := twor.ValuesAt(1); !ok || len(vals) != 1 || vals[0] != "b" {
		t.Fatalf("ValuesAt = %v ok=%v", vals, ok)
	}
}

func TestBatchScratchCapacityReleased(t *testing.T) {
	// One huge batch must not pin its backing array for the sampler's
	// lifetime: the adapters cap the scratch they retain between calls.
	// Regression test for the unbounded high-water retention.
	big := make([]int, 100_000)
	for i := range big {
		big[i] = i
	}
	t.Run("sequence", func(t *testing.T) {
		s, err := NewSequenceWOR[int](64, 4, WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		s.ObserveBatch(big)
		if c := cap(s.scratch); c > stream.MaxRecycledCap {
			t.Fatalf("retained scratch capacity %d > %d after a huge batch", c, stream.MaxRecycledCap)
		}
		s.ObserveBatch([]int{1, 2, 3}) // small batches keep working
		if s.Count() != uint64(len(big))+3 {
			t.Fatalf("Count = %d", s.Count())
		}
	})
	t.Run("timestamp", func(t *testing.T) {
		tss := make([]int64, len(big))
		for i := range tss {
			tss[i] = int64(i / 100)
		}
		s, err := NewTimestampWOR[int](60, 4, WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveBatch(big, tss); err != nil {
			t.Fatal(err)
		}
		if c := cap(s.scratch); c > stream.MaxRecycledCap {
			t.Fatalf("retained scratch capacity %d > %d after a huge batch", c, stream.MaxRecycledCap)
		}
	})
	t.Run("weighted", func(t *testing.T) {
		ws := make([]float64, len(big))
		for i := range ws {
			ws[i] = float64(i%9) + 1
		}
		s, err := NewWeightedSequenceWOR[int](64, 4, WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveBatch(big, ws); err != nil {
			t.Fatal(err)
		}
		if c := cap(s.scratch); c > stream.MaxRecycledCap {
			t.Fatalf("retained scratch capacity %d > %d after a huge batch", c, stream.MaxRecycledCap)
		}
	})
}

func TestTimestampWindowNearMinInt64(t *testing.T) {
	// The public API allows streams to start at any timestamp, including
	// hugely negative ones. An element observed near math.MinInt64 must be
	// expired by the time the clock reaches small timestamps — the naive
	// now-ts horizon test overflows and reports it active forever.
	// Regression test for the overflow.
	for name, mk := range map[string]func() (interface {
		Observe(int, int64) error
		SampleAt(int64) ([]Sampled[int], bool)
	}, error){
		"WOR": func() (interface {
			Observe(int, int64) error
			SampleAt(int64) ([]Sampled[int], bool)
		}, error) {
			return NewTimestampWOR[int](60, 4, WithSeed(2))
		},
		"WR": func() (interface {
			Observe(int, int64) error
			SampleAt(int64) ([]Sampled[int], bool)
		}, error) {
			return NewTimestampWR[int](60, 4, WithSeed(2))
		},
	} {
		t.Run(name, func(t *testing.T) {
			s, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			const ancient = math.MinInt64 + 5
			for i := 0; i < 10; i++ {
				if err := s.Observe(i, ancient); err != nil {
					t.Fatal(err)
				}
			}
			// now - ancient exceeds MaxInt64 here, so the naive comparison
			// wraps negative and calls the ancient elements active.
			if err := s.Observe(100, 100); err != nil {
				t.Fatal(err)
			}
			got, ok := s.SampleAt(100)
			if !ok {
				t.Fatal("no sample at now=100 with one active element")
			}
			for _, e := range got {
				if e.Timestamp == ancient {
					t.Fatalf("sample contains the ancient element (ts=%d) at now=100: horizon test overflowed", e.Timestamp)
				}
				if e.Value != 100 {
					t.Fatalf("sampled value %d, want the only active element 100", e.Value)
				}
			}
		})
	}
}

func TestPublicWeightedWOR(t *testing.T) {
	s, err := NewWeightedSequenceWOR[string](8, 3, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Sample(); ok {
		t.Fatal("sample from empty sampler")
	}
	if s.K() != 3 || s.N() != 8 {
		t.Fatalf("K=%d N=%d", s.K(), s.N())
	}
	if err := s.Observe("x", 0); err != ErrBadWeight {
		t.Fatalf("zero weight: got %v", err)
	}
	if err := s.Observe("x", math.Inf(1)); err != ErrBadWeight {
		t.Fatalf("infinite weight: got %v", err)
	}
	if err := s.Observe("x", math.NaN()); err != ErrBadWeight {
		t.Fatalf("NaN weight: got %v", err)
	}
	if s.Count() != 0 {
		t.Fatal("rejected weights mutated the sampler")
	}
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	for i, v := range names {
		if err := s.Observe(v, float64(i%4)+1); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.Sample()
	if !ok || len(got) != 3 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	seen := map[uint64]bool{}
	for _, e := range got {
		if e.Index < uint64(len(names))-8 || e.Index >= uint64(len(names)) {
			t.Fatalf("index %d outside window", e.Index)
		}
		if seen[e.Index] {
			t.Fatalf("duplicate index %d in WOR sample", e.Index)
		}
		seen[e.Index] = true
		if want := float64(e.Index%4) + 1; e.Weight != want {
			t.Fatalf("weight %v, want %v", e.Weight, want)
		}
		if e.Value != names[e.Index] {
			t.Fatalf("value %q at index %d", e.Value, e.Index)
		}
	}
	if s.Words() <= 0 || s.MaxWords() < s.Words() {
		t.Fatalf("memory accounting: words=%d max=%d", s.Words(), s.MaxWords())
	}
}

func TestPublicWeightedBatchEquivalence(t *testing.T) {
	for name, mk := range map[string]func() (interface {
		Observe(int, float64) error
		ObserveBatch([]int, []float64) error
		Sample() ([]SampledWeight[int], bool)
	}, error){
		"WOR": func() (interface {
			Observe(int, float64) error
			ObserveBatch([]int, []float64) error
			Sample() ([]SampledWeight[int], bool)
		}, error) {
			return NewWeightedSequenceWOR[int](100, 5, WithSeed(3))
		},
		"WR": func() (interface {
			Observe(int, float64) error
			ObserveBatch([]int, []float64) error
			Sample() ([]SampledWeight[int], bool)
		}, error) {
			return NewWeightedSequenceWR[int](100, 5, WithSeed(3))
		},
	} {
		t.Run(name, func(t *testing.T) {
			a, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			b, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			var vals []int
			var ws []float64
			wAt := func(i int) float64 { return float64(i%7) + 0.5 }
			for i := 0; i < 950; i++ {
				if err := a.Observe(i, wAt(i)); err != nil {
					t.Fatal(err)
				}
				vals = append(vals, i)
				ws = append(ws, wAt(i))
				if len(vals) == 37 {
					if err := b.ObserveBatch(vals, ws); err != nil {
						t.Fatal(err)
					}
					vals, ws = vals[:0], ws[:0]
				}
			}
			if err := b.ObserveBatch(vals, ws); err != nil {
				t.Fatal(err)
			}
			av, aok := a.Sample()
			bv, bok := b.Sample()
			if aok != bok || len(av) != len(bv) {
				t.Fatalf("shape diverged")
			}
			for i := range av {
				if av[i] != bv[i] {
					t.Fatalf("slot %d diverged: %+v vs %+v", i, av[i], bv[i])
				}
			}
		})
	}
}

func TestPublicWeightedBatchErrors(t *testing.T) {
	s, err := NewWeightedSequenceWR[string](10, 2, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveBatch([]string{"a"}, []float64{1, 2}); err != ErrBatchShape {
		t.Fatalf("length mismatch: got %v", err)
	}
	if err := s.ObserveBatch([]string{"a", "b"}, []float64{1, -3}); err != ErrBadWeight {
		t.Fatalf("bad weight: got %v", err)
	}
	if s.Count() != 0 {
		t.Fatal("rejected batch mutated the sampler")
	}
	if err := s.ObserveBatch([]string{"a", "b"}, []float64{1, 3}); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d after one accepted batch of 2", s.Count())
	}
	vs, ok := s.Values()
	if !ok || len(vs) != 2 {
		t.Fatalf("Values: ok=%v len=%d", ok, len(vs))
	}
}

func TestPublicWeightedTimestampWOR(t *testing.T) {
	s, err := NewWeightedTimestampWOR[string](10, 3, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Sample(); ok {
		t.Fatal("sample from empty sampler")
	}
	if s.K() != 3 || s.Horizon() != 10 {
		t.Fatalf("K=%d Horizon=%d", s.K(), s.Horizon())
	}
	if err := s.Observe("x", 0, 0); err != ErrBadWeight {
		t.Fatalf("zero weight: got %v", err)
	}
	if s.Count() != 0 {
		t.Fatal("rejected weight mutated the sampler")
	}
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, v := range names {
		if err := s.Observe(v, float64(i%4)+1, int64(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	// Clock regression across arrivals and after a query.
	if err := s.Observe("late", 1, 5); err != ErrTimeBackwards {
		t.Fatalf("backwards arrival: got %v", err)
	}
	now := int64(7 * 3) // window (11, 21]: indexes 4..7 active
	got, ok := s.SampleAt(now)
	if !ok || len(got) != 3 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	seen := map[uint64]bool{}
	for _, e := range got {
		if e.Index < 4 || e.Index > 7 {
			t.Fatalf("index %d outside the active window", e.Index)
		}
		if seen[e.Index] {
			t.Fatalf("duplicate index %d in WOR sample", e.Index)
		}
		seen[e.Index] = true
		if want := float64(e.Index%4) + 1; e.Weight != want {
			t.Fatalf("weight %v, want %v", e.Weight, want)
		}
		if e.Value != names[e.Index] || e.Timestamp != int64(e.Index*3) {
			t.Fatalf("coordinates corrupted: %+v", e)
		}
	}
	// Query-time expiry with no arrival: advance until n(t) < k, then empty.
	got, ok = s.SampleAt(now + 7) // window (18, 28]: only index 7 active
	if !ok || len(got) != 1 || got[0].Index != 7 {
		t.Fatalf("drained sample: ok=%v %+v", ok, got)
	}
	if sz := s.SizeAt(now + 7); sz != 1 {
		t.Fatalf("SizeAt = %d with one active element", sz)
	}
	if _, ok := s.SampleAt(now + 100); ok {
		t.Fatal("sample from a fully expired window")
	}
	// The query advanced the clock: older arrivals are now rejected...
	if err := s.Observe("old", 1, now); err != ErrTimeBackwards {
		t.Fatalf("post-query backwards arrival: got %v", err)
	}
	// ...but the stream continues at or past the query time.
	if err := s.Observe("fresh", 2, now+100); err != nil {
		t.Fatal(err)
	}
	if vs, ok := s.Values(); !ok || len(vs) != 1 || vs[0] != "fresh" {
		t.Fatalf("post-drain values: ok=%v %v", ok, vs)
	}
	if s.Words() <= 0 || s.MaxWords() < s.Words() {
		t.Fatalf("memory accounting: words=%d max=%d", s.Words(), s.MaxWords())
	}
}

func TestPublicWeightedTimestampWR(t *testing.T) {
	s, err := NewWeightedTimestampWR[int](60, 4, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := s.Observe(i, float64(i%5)+1, int64(i/5)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.Sample()
	if !ok || len(got) != 4 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	now := int64(499 / 5)
	for _, e := range got {
		if now-e.Timestamp >= 60 {
			t.Fatalf("expired element: ts %d at now %d", e.Timestamp, now)
		}
	}
	if sz := s.SizeAt(now); sz == 0 || sz > 500 {
		t.Fatalf("SizeAt = %d", sz)
	}
	// SizeAt is read-only: an arrival at the current clock still works
	// after probing far in the future.
	s.SizeAt(now + 1000)
	if err := s.Observe(1000, 1, now); err != nil {
		t.Fatalf("SizeAt pinned the clock: %v", err)
	}
}

func TestPublicWeightedTimestampBatch(t *testing.T) {
	mk := func() *WeightedTimestampWOR[int] {
		s, err := NewWeightedTimestampWOR[int](40, 5, WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	var vals []int
	var ws []float64
	var tss []int64
	wAt := func(i int) float64 { return float64(i%7) + 0.5 }
	for i := 0; i < 800; i++ {
		if err := a.Observe(i, wAt(i), int64(i/4)); err != nil {
			t.Fatal(err)
		}
		vals, ws, tss = append(vals, i), append(ws, wAt(i)), append(tss, int64(i/4))
		if len(vals) == 53 {
			if err := b.ObserveBatch(vals, ws, tss); err != nil {
				t.Fatal(err)
			}
			vals, ws, tss = vals[:0], ws[:0], tss[:0]
		}
	}
	if err := b.ObserveBatch(vals, ws, tss); err != nil {
		t.Fatal(err)
	}
	av, aok := a.Sample()
	bv, bok := b.Sample()
	if aok != bok || len(av) != len(bv) {
		t.Fatalf("shape diverged")
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("slot %d diverged: %+v vs %+v", i, av[i], bv[i])
		}
	}
	if a.Words() != b.Words() || a.MaxWords() != b.MaxWords() {
		t.Fatal("memory accounting diverged")
	}

	// Error paths: shape, weight, and time are all validated atomically.
	s := mk()
	if err := s.ObserveBatch([]int{1}, []float64{1, 2}, []int64{0}); err != ErrBatchShape {
		t.Fatalf("length mismatch: got %v", err)
	}
	if err := s.ObserveBatch([]int{1, 2}, []float64{1, 2}, []int64{0}); err != ErrBatchShape {
		t.Fatalf("timestamp length mismatch: got %v", err)
	}
	if err := s.ObserveBatch([]int{1, 2}, []float64{1, -1}, []int64{0, 1}); err != ErrBadWeight {
		t.Fatalf("bad weight: got %v", err)
	}
	if err := s.ObserveBatch([]int{1, 2}, []float64{1, 1}, []int64{5, 3}); err != ErrTimeBackwards {
		t.Fatalf("in-batch regression: got %v", err)
	}
	if s.Count() != 0 {
		t.Fatal("rejected batches mutated the sampler")
	}
	if err := s.ObserveBatch([]int{1, 2}, []float64{1, 1}, []int64{3, 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveBatch([]int{3}, []float64{1}, []int64{4}); err != ErrTimeBackwards {
		t.Fatalf("cross-batch regression: got %v", err)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d after one accepted batch of 2", s.Count())
	}
}

func TestPublicWeightedTimestampFreshValuesDoesNotPinClock(t *testing.T) {
	s, _ := NewWeightedTimestampWOR[int](10, 2, WithSeed(6))
	if _, ok := s.Values(); ok {
		t.Fatal("values from empty sampler")
	}
	if err := s.Observe(1, 1, -5); err != nil {
		t.Fatalf("negative start after fresh Values: %v", err)
	}
	w, _ := NewWeightedTimestampWR[int](10, 2, WithSeed(6))
	if _, ok := w.Sample(); ok {
		t.Fatal("sample from empty sampler")
	}
	if err := w.Observe(1, 1, -5); err != nil {
		t.Fatalf("negative start after fresh Sample (WR): %v", err)
	}
}
