package slidingsample

// alias_test.go: the dynamic half of the noalias contract. Query results
// are owned by the caller — scribbling over a returned sample must not
// perturb sampler state or the rng stream. Two identically-seeded runs
// make the same ingest and query sequence; one of them vandalizes every
// returned slice in between. Any aliasing between the returned slice and
// retained state (or any query-path read of the mutated backing) makes the
// follow-up samples diverge.

import (
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

func TestQueryResultsAreCallerOwned(t *testing.T) {
	const m = 900
	const queries = 8
	for _, sub := range confSubstrates() {
		t.Run(sub.name, func(t *testing.T) {
			clean := sub.mk(xrand.New(42))
			dirty := sub.mk(xrand.New(42))
			defer confClose(clean)
			defer confClose(dirty)

			for i := 0; i < m; i++ {
				clean.Observe(uint64(i), confTS(i))
				dirty.Observe(uint64(i), confTS(i))
			}
			confSync(clean)
			confSync(dirty)

			vandalize := func(es []stream.Element[uint64]) {
				for j := range es {
					es[j] = stream.Element[uint64]{Value: ^uint64(0), Index: ^uint64(0), TS: -1}
				}
			}

			for q := 0; q < queries; q++ {
				want, okW := clean.Sample()
				got, okG := dirty.Sample()
				if okW != okG {
					t.Fatalf("query %d: ok diverged (%v vs %v) after mutating results", q, okW, okG)
				}
				if len(want) != len(got) {
					t.Fatalf("query %d: sample size diverged (%d vs %d) after mutating results", q, len(want), len(got))
				}
				for j := range want {
					if want[j] != got[j] {
						t.Fatalf("query %d: sample[%d] diverged (%+v vs %+v) after mutating results", q, j, want[j], got[j])
					}
				}
				vandalize(got)
			}

			// Timestamp substrates: the same contract for explicit "as of"
			// queries through the TimedSampler surface.
			tc, okC := clean.(stream.TimedSampler[uint64])
			td, okD := dirty.(stream.TimedSampler[uint64])
			if okC && okD && !sub.seq {
				now := confTS(m - 1)
				for q := 0; q < queries; q++ {
					want, okW := tc.SampleAt(now)
					got, okG := td.SampleAt(now)
					if okW != okG || len(want) != len(got) {
						t.Fatalf("SampleAt query %d diverged after mutating results", q)
					}
					for j := range want {
						if want[j] != got[j] {
							t.Fatalf("SampleAt query %d: sample[%d] diverged (%+v vs %+v)", q, j, want[j], got[j])
						}
					}
					vandalize(got)
				}
			}

			// The vandalism must also leave ingest unharmed: feed more and
			// re-compare.
			for i := m; i < m+200; i++ {
				clean.Observe(uint64(i), confTS(i))
				dirty.Observe(uint64(i), confTS(i))
			}
			confSync(clean)
			confSync(dirty)
			want, _ := clean.Sample()
			got, _ := dirty.Sample()
			if len(want) != len(got) {
				t.Fatalf("post-ingest sample size diverged (%d vs %d)", len(want), len(got))
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("post-ingest sample[%d] diverged (%+v vs %+v)", j, want[j], got[j])
				}
			}
		})
	}
}
