// Netflow: monitoring a bursty packet stream — byte-weighted sampling over
// both window models plus windowed entropy.
//
// Three windows run side by side:
//
//   - a BYTE-WEIGHTED k-sample without replacement over the last MINUTE
//     (60 ticks): the timestamp-window Efraimidis–Spirakis sampler finally
//     answers the question a packet-count window cannot — "the heaviest
//     flows by bytes in the last minute" — because under a flood the
//     packet RATE explodes, so a fixed packet budget covers an
//     ever-shrinking slice of time. The sampler's embedded
//     exponential-histogram counter reports how many packets the minute
//     actually holds (n(t) is data-dependent and only approximable);
//   - a BYTE-WEIGHTED k-sample without replacement over the last 4096
//     packets, with a Horvitz–Thompson subset-sum sketch estimating each
//     source's share of the window's bytes;
//   - a windowed source-address ENTROPY estimate over the last 60 ticks
//     (Corollary 5.4 machinery): entropy collapse is a classic signature of
//     a scanning attack or a single-source flood; and
//   - a SHARDED twin of the last-minute sampler (4-way parallel ingest,
//     the deployment shape for line-rate capture): the per-shard
//     Efraimidis–Spirakis log-keys merge into the exact same weighted law,
//     and the dispatcher's per-shard weight histograms report the minute's
//     total bytes within ±5% — compare its report against the unsharded
//     sampler's at the end.
//
// An attack is injected mid-stream: one source floods with large packets.
// Watch the entropy estimate drop, the byte-share estimate of the attacker
// spike, and both weighted samples fill up with the attacker — while the
// uniform packet count barely moves.
//
// Run with:
//
//	go run ./examples/netflow
package main

import (
	"fmt"

	"slidingsample/internal/apps"
	"slidingsample/internal/core"
	"slidingsample/internal/ehist"
	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"

	"slidingsample"
)

const (
	horizon   = 60   // ticks: "the last minute" (entropy window)
	packetWin = 4096 // packets: the byte-weighted inspection window
	sources   = 256  // address space of benign traffic
	attacker  = uint64(666)
)

// packet is one observed flow record: source address and byte count.
type packet struct {
	Src   uint64
	Bytes uint64
}

func main() {
	rng := xrand.New(1)

	// Public API: the byte-weighted WOR packet sample for inspection.
	sample, err := slidingsample.NewWeightedSequenceWOR[packet](packetWin, 8, slidingsample.WithSeed(7))
	if err != nil {
		panic(err)
	}

	// Public API: "heaviest flows by bytes in the last minute" — the same
	// byte-weighted law over a TIMESTAMP window, expiring by the clock
	// rather than by packet count (during the flood the packet window
	// shrinks to a fraction of a minute; this one does not).
	lastMinute, err := slidingsample.NewWeightedTimestampWOR[packet](horizon, 8, slidingsample.WithSeed(8))
	if err != nil {
		panic(err)
	}

	// Public API, sharded mode: the same last-minute byte-weighted WOR law
	// behind 4-way parallel ingest. Queries hold their own barrier, so the
	// loop below only feeds it; Close stops the shard goroutines at exit.
	lastMinuteSharded, err := slidingsample.NewShardedWeightedTimestampWOR[packet](horizon, 4, 8, slidingsample.WithSeed(9))
	if err != nil {
		panic(err)
	}
	defer lastMinuteSharded.Close()

	// Estimator layer: per-source byte shares over the same packet window,
	// from an O(k log n)-word bottom-k sketch (any source can be queried
	// after the fact — the sketch never looks at values on ingest).
	bytesBySrc := apps.NewSubsetSum[packet](rng.Split(), packetWin, 64,
		func(p packet) float64 { return float64(p.Bytes) })

	// Estimator layer: windowed entropy of source addresses. The window
	// size of a timestamp window is not exactly computable in small space
	// (the paper's Section 3 negative result), so the estimator scales by
	// the (1±5%) exponential-histogram count.
	counter := ehist.NewEps(horizon, 0.05)
	sampler := core.NewTSWR[uint64](rng.Split(), horizon, 80)
	entropy := apps.NewEntropy(apps.TSWRSource(sampler, counter.SizeOracle()), 16, 5)

	benign := stream.NewZipfValues(rng.Split(), 1.05, sources)
	arrivals := stream.NewBurstyArrivals(rng.Split(), 12, 2)
	sizes := rng.Split()

	fmt.Println("tick   packets/window   H(source) bits   attacker byte share   note")
	var clock int64
	packets := 0
	lastReport := int64(-10)
	isAttacker := func(p packet) bool { return p.Src == attacker }
	for packets < 60_000 {
		clock = arrivals.Next()
		p := packet{Src: benign.Next(), Bytes: 64 + sizes.Uint64n(1200)}

		// Attack phase: between ticks 400 and 500 the attacker floods —
		// 3 of 4 packets come from one address, and they are big.
		attack := clock >= 400 && clock < 500
		if attack && packets%4 != 0 {
			p.Src = attacker
			p.Bytes = 1400
		}

		if err := sample.Observe(p, float64(p.Bytes)); err != nil {
			panic(err)
		}
		if err := lastMinute.Observe(p, float64(p.Bytes), clock); err != nil {
			panic(err)
		}
		if err := lastMinuteSharded.Observe(p, float64(p.Bytes), clock); err != nil {
			panic(err)
		}
		bytesBySrc.Observe(p, clock)
		entropy.Observe(p.Src, clock)
		counter.Observe(clock)
		packets++

		if clock >= lastReport+50 {
			lastReport = clock
			h, ok := entropy.EstimateAt(clock)
			if !ok {
				continue
			}
			nEst := counter.EstimateAt(clock)
			share := 0.0
			if attackBytes, ok := bytesBySrc.Estimate(isAttacker); ok {
				if total, ok := bytesBySrc.Total(); ok && total > 0 {
					share = attackBytes / total
				}
			}
			tag := ""
			if attack {
				tag = "  <-- flood in progress"
			}
			fmt.Printf("%5d  %7d          %6.2f           %5.1f%%%s\n", clock, nEst, h, 100*share, tag)
		}
	}

	// The question the tentpole exists for: heaviest flows by bytes in the
	// last minute, queried at wall-clock time — the sampler expires by the
	// clock even though no packet arrives at the query instant, and its
	// embedded counter reports how many packets "the last minute" held.
	fmt.Printf("\nheaviest flows by bytes in the last minute (t=%d, ~%d packets in window):\n",
		clock, lastMinute.SizeAt(clock))
	if got, ok := lastMinute.SampleAt(clock); ok {
		for _, e := range got {
			marker := ""
			if e.Value.Src == attacker {
				marker = "  (attacker)"
			}
			fmt.Printf("  src=%4d  bytes=%4d  age=%2d ticks%s\n", e.Value.Src, e.Value.Bytes, clock-e.Timestamp, marker)
		}
	}

	// The sharded twin answers the same question from 4-way parallel
	// ingest: the merged per-shard log-keys follow the exact same weighted
	// law, and the per-shard weight histograms price the minute's bytes.
	fmt.Printf("\nsharded (g=%d) heaviest flows in the last minute (~%d packets, ~%.0f bytes in window):\n",
		lastMinuteSharded.G(), lastMinuteSharded.SizeAt(clock), lastMinuteSharded.TotalWeightAt(clock))
	if got, ok := lastMinuteSharded.SampleAt(clock); ok {
		for _, e := range got {
			marker := ""
			if e.Value.Src == attacker {
				marker = "  (attacker)"
			}
			fmt.Printf("  src=%4d  bytes=%4d  age=%2d ticks%s\n", e.Value.Src, e.Value.Bytes, clock-e.Timestamp, marker)
		}
	}

	// Inspect the final weighted sample: heavy packets dominate.
	fmt.Printf("\nfinal byte-weighted 8-packet sample of the last %d packets (distinct):\n", packetWin)
	if got, ok := sample.Sample(); ok {
		for _, e := range got {
			marker := ""
			if e.Value.Src == attacker {
				marker = "  (attacker)"
			}
			fmt.Printf("  src=%4d  bytes=%4d%s\n", e.Value.Src, e.Value.Bytes, marker)
		}
	}
	fmt.Printf("\nweighted sampler memory: %d words (peak %d) — expected O(k·log n); the\n", sample.Words(), sample.MaxWords())
	fmt.Printf("window itself holds %d packets. Last-minute sampler: %d words (peak %d,\n", packetWin, lastMinute.Words(), lastMinute.MaxWords())
	fmt.Printf("embedded size counter included). Entropy sampler: %d words (peak %d).\n", sampler.Words(), sampler.MaxWords())
}
