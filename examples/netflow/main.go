// Netflow: monitoring a bursty packet stream with a timestamp-based window.
//
// The scenario the paper's timestamp windows were designed for: packets
// arrive asynchronously (bursts, gaps), and the analyst wants, at any
// moment, statistics over "the last minute" — not the last N packets.
//
// This example maintains:
//
//   - a k-sample WITHOUT replacement of the packets of the last 60 ticks
//     (e.g. for flagging suspicious source addresses by inspection), and
//   - a windowed source-address ENTROPY estimate (Corollary 5.4 machinery):
//     entropy collapse is a classic signature of a scanning attack or a
//     single-source flood.
//
// An attack is injected mid-stream; watch the entropy estimate drop and the
// sample fill up with the attacker.
//
// Run with:
//
//	go run ./examples/netflow
package main

import (
	"fmt"

	"slidingsample/internal/apps"
	"slidingsample/internal/core"
	"slidingsample/internal/ehist"
	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"

	"slidingsample"
)

const (
	horizon  = 60  // ticks: "the last minute"
	sources  = 256 // address space of benign traffic
	attacker = uint64(666)
)

func main() {
	rng := xrand.New(1)

	// Public API: the WOR packet sample for inspection.
	sample, err := slidingsample.NewTimestampWOR[uint64](horizon, 8, slidingsample.WithSeed(7))
	if err != nil {
		panic(err)
	}

	// Estimator layer: windowed entropy of source addresses. The window
	// size of a timestamp window is not exactly computable in small space
	// (the paper's Section 3 negative result), so the estimator scales by
	// the (1±5%) exponential-histogram count.
	counter := ehist.NewEps(horizon, 0.05)
	sampler := core.NewTSWR[uint64](rng.Split(), horizon, 80)
	entropy := apps.NewEntropy(apps.TSWRSource(sampler, counter.SizeOracle()), 16, 5)

	benign := stream.NewZipfValues(rng.Split(), 1.05, sources)
	arrivals := stream.NewBurstyArrivals(rng.Split(), 12, 2)

	fmt.Println("tick   packets/window   H(source) bits   note")
	var clock int64
	packets := 0
	peakWindow := uint64(0)
	lastReport := int64(-10)
	for packets < 60_000 {
		clock = arrivals.Next()
		src := benign.Next()

		// Attack phase: between ticks 400 and 500 the attacker floods —
		// 3 of 4 packets come from one address.
		attack := clock >= 400 && clock < 500
		if attack && packets%4 != 0 {
			src = attacker
		}

		if err := sample.Observe(src, clock); err != nil {
			panic(err)
		}
		entropy.Observe(src, clock)
		counter.Observe(clock)
		packets++

		if clock >= lastReport+50 {
			lastReport = clock
			h, ok := entropy.EstimateAt(clock)
			if !ok {
				continue
			}
			nEst := counter.EstimateAt(clock)
			if nEst > peakWindow {
				peakWindow = nEst
			}
			tag := ""
			if attack {
				tag = "  <-- flood in progress"
			}
			fmt.Printf("%5d  %7d          %6.2f%s\n", clock, nEst, h, tag)
		}
	}

	// Inspect the final window sample.
	fmt.Println("\nfinal 8-packet sample of the last minute (distinct packets):")
	if got, ok := sample.SampleAt(clock); ok {
		for _, e := range got {
			marker := ""
			if e.Value == attacker {
				marker = "  (attacker)"
			}
			fmt.Printf("  src=%4d  t=%d%s\n", e.Value, e.Timestamp, marker)
		}
	}
	fmt.Printf("\nsampler memory: %d words (peak %d) — Θ(k·log n), deterministic; the\n", sample.Words(), sample.MaxWords())
	fmt.Printf("window itself held up to ~%d packets.\n", peakWindow)
}
