// Quickstart: a 60-second tour of the slidingsample API.
//
// Run with:
//
//	go run ./examples/quickstart
//
// It feeds a synthetic integer stream through all four samplers — per
// element and through the batched ObserveBatch hot path — and prints
// samples and memory footprints along the way. Every sampler answers the
// same unified interface (Observe/ObserveBatch/Sample/K/Count/Words), so
// swapping substrates is a one-line change.
package main

import (
	"fmt"

	"slidingsample"
)

func main() {
	// --- Sequence-based window: the last 100 elements are active. ---------
	seqWR, err := slidingsample.NewSequenceWR[int](100, 3, slidingsample.WithSeed(1))
	if err != nil {
		panic(err)
	}
	seqWOR, err := slidingsample.NewSequenceWOR[int](100, 5, slidingsample.WithSeed(2))
	if err != nil {
		panic(err)
	}

	// Feed the samplers from a channel — the idiomatic streaming shape. The
	// WR sampler is fed per element, the WOR sampler through the batched
	// hot path: the two ingest styles are interchangeable (identical
	// samples under the same seed), batching just amortizes the per-element
	// bookkeeping for high-throughput feeds.
	input := make(chan int, 64)
	go func() {
		defer close(input)
		for i := 0; i < 10_000; i++ {
			input <- i
		}
	}()
	chunk := make([]int, 0, 256)
	for v := range input {
		seqWR.Observe(v)
		chunk = append(chunk, v)
		if len(chunk) == cap(chunk) {
			seqWOR.ObserveBatch(chunk)
			chunk = chunk[:0]
		}
	}
	seqWOR.ObserveBatch(chunk)

	fmt.Println("Sequence window (last 100 of 10000 elements):")
	if vals, ok := seqWR.Values(); ok {
		fmt.Printf("  3 samples with replacement:    %v\n", vals)
	}
	if got, ok := seqWOR.Sample(); ok {
		vals := make([]int, len(got))
		for i, e := range got {
			vals[i] = e.Value
		}
		fmt.Printf("  5 samples without replacement: %v (all distinct, all >= 9900)\n", vals)
	}
	fmt.Printf("  memory: %d words now, %d peak — Θ(k), independent of window size\n\n",
		seqWOR.Words(), seqWOR.MaxWords())

	// --- Timestamp-based window: the last 60 "seconds" are active. --------
	tsWR, err := slidingsample.NewTimestampWR[string](60, 2, slidingsample.WithSeed(3))
	if err != nil {
		panic(err)
	}
	tsWOR, err := slidingsample.NewTimestampWOR[string](60, 4, slidingsample.WithSeed(4))
	if err != nil {
		panic(err)
	}

	// Bursty arrivals: many events share a timestamp, then silence.
	clock := int64(0)
	event := 0
	for tick := 0; tick < 500; tick++ {
		clock += int64(1 + tick%7) // irregular gaps
		burst := 1 + (tick*13)%9   // irregular burst sizes
		for b := 0; b < burst; b++ {
			msg := fmt.Sprintf("event-%d@t=%d", event, clock)
			if err := tsWR.Observe(msg, clock); err != nil {
				panic(err)
			}
			if err := tsWOR.Observe(msg, clock); err != nil {
				panic(err)
			}
			event++
		}
	}

	fmt.Printf("Timestamp window (events of the last 60 ticks, now=%d):\n", clock)
	if got, ok := tsWR.SampleAt(clock); ok {
		for _, e := range got {
			fmt.Printf("  WR sample:  %s\n", e.Value)
		}
	}
	if got, ok := tsWOR.SampleAt(clock); ok {
		fmt.Printf("  WOR sample: %d distinct events\n", len(got))
	}
	fmt.Printf("  memory: %d words now, %d peak — Θ(k·log n), deterministic\n\n", tsWOR.Words(), tsWOR.MaxWords())

	// --- Step-biased sampling: favor the very recent past. ----------------
	biased, err := slidingsample.NewStepBiased[int]([]uint64{10, 1000}, []uint64{1, 1}, slidingsample.WithSeed(5))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 5000; i++ {
		biased.Observe(i)
	}
	fmt.Println("Step-biased sampling (half the mass on the last 10 elements):")
	fmt.Printf("  P(age 0)  = %.5f\n", biased.Prob(0))
	fmt.Printf("  P(age 500)= %.5f\n", biased.Prob(500))
	recent := 0
	const draws = 1000
	for i := 0; i < draws; i++ {
		// Redraws use fresh randomness over the retained samples; the
		// retained samples themselves change only on arrivals, so for a
		// quick demo we just count which step the draw came from.
		if e, ok := biased.Sample(); ok && e.Index >= 4990 {
			recent++
		}
	}
	fmt.Printf("  %d/%d draws came from the newest 10 elements (expect ~one half)\n", recent, draws)
}
