// Graphstream: triangle counting over a sliding window of graph edges
// (Corollary 5.3).
//
// Edges of an interaction graph (who-messages-whom) stream in; community
// bursts create triangles, background chatter does not. The estimator
// maintains the triangle count of the last n edges — a standard clustering
// signal — using thousands of constant-size sample slots instead of storing
// the window.
//
// Run with:
//
//	go run ./examples/graphstream
package main

import (
	"fmt"

	"slidingsample/internal/apps"
	"slidingsample/internal/xrand"
)

const (
	vertices = 128
	win      = 512
)

func main() {
	rng := xrand.New(7)
	est := apps.NewTriangles(rng.Split(), win, vertices, 8192)

	// Ground truth (debug only): the exact window content.
	buf := make([]apps.Edge, 0, win)
	push := func(e apps.Edge) {
		if len(buf) == win {
			buf = buf[1:]
		}
		buf = append(buf, e)
	}

	noise := func(r *xrand.Rand) apps.Edge {
		for {
			a, b := r.Uint64n(vertices), r.Uint64n(vertices)
			if a != b {
				return apps.Edge{U: a, V: b}
			}
		}
	}

	r := rng.Split()
	idx := int64(0)
	observe := func(e apps.Edge) {
		est.Observe(e, idx)
		push(e)
		idx++
	}

	fmt.Println("edges     est_T3    exact_T3  phase")
	report := func(phase string) {
		got, ok := est.EstimateAt(idx)
		if !ok {
			return
		}
		fmt.Printf("%7d  %7.0f  %9d  %s\n", idx, got, apps.ExactTriangles(buf), phase)
	}

	// Phase 1: background chatter only — few triangles.
	for i := 0; i < 2*win; i++ {
		observe(noise(r))
	}
	report("chatter")

	// Phase 2: community burst — triads among a 64-vertex community. (The
	// community must not be too small: a sampled-edge estimator assumes few
	// duplicate edges in the window, so the community's edge universe has
	// to dwarf the burst volume — see the E9 notes in DESIGN.md §4.)
	const community = 64
	for i := 0; i < win; i++ {
		if i%2 == 0 {
			a := r.Uint64n(community)
			b := (a + 1 + r.Uint64n(community-2)) % community
			c := (b + 1 + r.Uint64n(community-2)) % community
			if a != b && b != c && a != c {
				observe(apps.Edge{U: a, V: b})
				observe(apps.Edge{U: b, V: c})
				observe(apps.Edge{U: a, V: c})
				continue
			}
		}
		observe(noise(r))
	}
	report("community burst")

	// Phase 3: burst slides out of the window.
	for i := 0; i < 2*win; i++ {
		observe(noise(r))
	}
	report("chatter again")

	fmt.Printf("\nestimator memory: %d words for 8192 slots — independent of how dense the window graph gets.\n", est.Words())
	fmt.Println("the exact count above required materializing the whole window (debug only).")
}
