// Serving: the repository as a queryable service — the internal/serve
// registry run in-process, driven entirely over HTTP, the way a deployment
// of cmd/swserve would be driven from another machine.
//
// The scenario is the netflow example's question ("heaviest flows by
// bytes, last minute") moved behind a network boundary:
//
//   - a sharded weighted timestamp WOR sampler is registered over HTTP
//     (POST /samplers), with a seed so every run of this example prints
//     the same report;
//   - a bursty flow stream is POSTed in NDJSON batches, each carrying the
//     flow's byte count as its explicit ingest weight — the serving edge
//     hands weights straight into the weight-aware sharded dispatch, so
//     the server never re-derives them;
//   - a subset-sum estimator substrate ingests the same weighted stream
//     and answers "how many bytes did source-7 move in the last minute?"
//     (GET /subsetsum?prefix=...) — the predicate is chosen AFTER ingest,
//     which is the point of the bottom-k sketch;
//   - reads mix clock-advancing samples (/sample, write lock,
//     auto-barrier) with read-only oracles (/size rides the read-only
//     ehist path under a read lock) — see DESIGN.md §7;
//   - shutdown drains the dispatcher barrier before the shard goroutines
//     stop.
//
// Run it:
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	"slidingsample/internal/serve"
)

const (
	horizon = 60 // "the last minute", in ticks
	shards  = 4
	k       = 5
)

func main() {
	// A cmd/swserve deployment in miniature: real registry, real listener.
	registry := serve.NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: registry}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// Register the two substrates over the wire, seeded for this report.
	post(base+"/samplers", "application/json",
		`{"name":"flows","spec":{"mode":"ts","sampler":"sharded-weighted-ts-wor","t0":60,"k":5,"g":4,"seed":1}}`)
	post(base+"/samplers", "application/json",
		`{"name":"bytes","spec":{"mode":"ts","sampler":"sharded-subsetsum-ts","t0":60,"k":48,"g":2,"seed":2}}`)

	// A bursty stream: 8 sources, packets in bursts of 6 per tick, one
	// heavy source (src-7) sending 10× larger flows. NDJSON batches of 96.
	const packets = 960
	var batch strings.Builder
	flush := func() {
		if batch.Len() == 0 {
			return
		}
		// Both substrates take the same weighted batch: explicit ingest
		// weights ride the precomputed-weight path into the sampler AND
		// the estimator's sketch, so their numbers are directly comparable.
		body := batch.String()
		post(base+"/ingest/flows", "application/x-ndjson", body)
		post(base+"/ingest/bytes", "application/x-ndjson", body)
		batch.Reset()
	}
	for i := 0; i < packets; i++ {
		src := i % 8
		bytes := 40 + (i*37)%1460
		if src == 7 {
			bytes *= 10
		}
		fmt.Fprintf(&batch, "{\"value\":\"src-%d pkt-%04d\",\"ts\":%d,\"weight\":%d}\n", src, i, i/6, bytes)
		if (i+1)%96 == 0 {
			flush()
		}
	}
	flush()

	now := (packets - 1) / 6
	fmt.Printf("after %d packets, window = last %d ticks, queried at t=%d over HTTP:\n\n", packets, horizon, now)

	fmt.Printf("heaviest flows (%d-way sharded exact weighted WOR, k=%d):\n", shards, k)
	fmt.Printf("  %s\n", get(fmt.Sprintf("%s/sample/flows?at=%d", base, now)))
	fmt.Printf("packets in window, (1±5%%) read-only oracle:\n  %s\n", get(fmt.Sprintf("%s/size/flows?at=%d", base, now)))
	fmt.Printf("bytes in window, (1±5%%) oracle:\n  %s\n", get(fmt.Sprintf("%s/weight/flows?at=%d", base, now)))
	fmt.Println("\nper-source byte estimates from the bottom-k sketch (predicates chosen post hoc):")
	for _, src := range []string{"src-7", "src-3"} {
		fmt.Printf("  %-6s %s\n", src, get(fmt.Sprintf("%s/subsetsum/bytes?at=%d&prefix=%s", base, now, src)))
	}

	// Graceful shutdown: drain the dispatcher barriers, stop the shards.
	registry.Close()
	fmt.Println("\nafter shutdown the drained samplers stay queryable:")
	fmt.Printf("  %s\n", get(fmt.Sprintf("%s/size/flows?at=%d", base, now)))
}

func post(url, contentType, body string) {
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		fatal(fmt.Errorf("POST %s: %d %s", url, resp.StatusCode, strings.TrimSpace(string(b))))
	}
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		fatal(fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, strings.TrimSpace(string(b))))
	}
	return strings.TrimSpace(string(b))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serving example:", err)
	os.Exit(1)
}
