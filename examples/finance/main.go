// Finance: repeat-rate ("surprise") monitoring over a tick stream with a
// sequence-based window.
//
// Market data arrives at an enormous but steady rate — the paper's
// motivating case for fixed-size windows (stock market measurements). This
// example watches a stream of trade ticks bucketed by price level and
// maintains, over the last 50 000 ticks:
//
//   - a k-sample WITH replacement feeding an F2 (second frequency moment)
//     estimate — F2/n² is the repeat rate, a liquidity-concentration
//     indicator: it spikes when trading piles onto few price levels
//     (Corollary 5.2 machinery);
//   - a small WOR sample of raw ticks for inspection.
//
// A concentration regime is injected mid-stream; the F2 estimate tracks the
// exact value computed from a (debug-only) materialized window.
//
// Run with:
//
//	go run ./examples/finance
package main

import (
	"fmt"

	"slidingsample/internal/apps"
	"slidingsample/internal/core"
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"

	"slidingsample"
)

const (
	win      = 50_000 // ticks in the analysis window
	levels   = 500    // distinct price levels in the normal regime
	hotLevel = uint64(42)
)

func main() {
	rng := xrand.New(2024)

	// F2 estimator over the sliding window, 120 sample copies.
	f2 := apps.NewMoments(apps.SeqWRSource(core.NewSeqWR[uint64](rng.Split(), win, 120)), 2, 24, 5)

	// WOR sample of ticks through the public API.
	insp, err := slidingsample.NewSequenceWOR[uint64](win, 5, slidingsample.WithSeed(9))
	if err != nil {
		panic(err)
	}

	// Ground truth (debug only — Θ(window) memory the estimator never uses).
	truth := window.NewSeqBuffer[uint64](win)

	normal := stream.NewZipfValues(rng.Split(), 1.01, levels)

	fmt.Println("ticks     est_repeat_rate  exact_repeat_rate  regime")
	for i := 0; i < 400_000; i++ {
		v := normal.Next()
		// Concentration regime: ticks 200k-260k pile half the flow onto
		// one price level.
		concentrated := i >= 200_000 && i < 260_000
		if concentrated && i%2 == 0 {
			v = hotLevel
		}
		f2.Observe(v, int64(i))
		insp.Observe(v)
		truth.Observe(stream.Element[uint64]{Value: v, Index: uint64(i), TS: int64(i)})

		if (i+1)%50_000 == 0 {
			est, ok := f2.EstimateAt(0)
			if !ok {
				continue
			}
			var vals []uint64
			for _, e := range truth.Contents() {
				vals = append(vals, e.Value)
			}
			exact := apps.ExactMoment(vals, 2)
			nn := float64(truth.Len()) * float64(truth.Len())
			regime := "normal"
			if concentrated {
				regime = "CONCENTRATED"
			}
			fmt.Printf("%7d   %15.6f  %17.6f  %s\n", i+1, est/nn, exact/nn, regime)
		}
	}

	fmt.Println("\nfive inspection ticks from the final window (distinct):")
	if got, ok := insp.Sample(); ok {
		for _, e := range got {
			fmt.Printf("  price level %3d at tick %d\n", e.Value, e.Index)
		}
	}
	fmt.Printf("\nestimator memory: Θ(copies) words; inspection sampler: %d words (peak %d)\n",
		insp.Words(), insp.MaxWords())
	fmt.Println("both independent of the 50k-tick window size — Theorems 2.1/2.2.")
}
