package window

import (
	"sync"
	"testing"
)

// TestBuffersConcurrentReads exercises the read-only paths of both exact
// materializers from many goroutines at once. The buffers are
// single-writer structures — Observe/AdvanceTo are not synchronized — but
// once ingest stops, Len/Contents/At/Now are pure reads, and harnesses
// (swload's oracle checker, the serve layer's frozen snapshots) rely on
// that. Run under -race via `make test-race`, this pins the contract: any
// hidden mutation in a read path becomes a detected race.
func TestBuffersConcurrentReads(t *testing.T) {
	sb := NewSeqBuffer[uint64](32)
	tb := NewTSBuffer[uint64](16)
	for i := uint64(0); i < 100; i++ {
		sb.Observe(elem(i, int64(i/3)))
		tb.Observe(elem(i, int64(i/3)))
	}
	tb.AdvanceTo(40)

	wantSeq := sb.Contents()
	wantTS := tb.Contents()
	wantNow := tb.Now()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				if got := sb.Len(); got != len(wantSeq) {
					t.Errorf("SeqBuffer.Len = %d, want %d", got, len(wantSeq))
					return
				}
				got := sb.Contents()
				for i := range got {
					if got[i] != wantSeq[i] {
						t.Errorf("SeqBuffer.Contents[%d] = %+v, want %+v", i, got[i], wantSeq[i])
						return
					}
					if sb.At(i) != wantSeq[i] {
						t.Errorf("SeqBuffer.At(%d) disagrees with Contents", i)
						return
					}
				}
				if tb.Len() != len(wantTS) || tb.Now() != wantNow {
					t.Errorf("TSBuffer read drifted: Len=%d Now=%d, want %d, %d",
						tb.Len(), tb.Now(), len(wantTS), wantNow)
					return
				}
				ts := tb.Contents()
				for i := range ts {
					if ts[i] != wantTS[i] {
						t.Errorf("TSBuffer.Contents[%d] = %+v, want %+v", i, ts[i], wantTS[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
