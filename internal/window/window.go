// Package window defines the two sliding-window semantics from the paper and
// exact window materializers used as ground truth by tests, estimator-error
// experiments, and the Zhang-et-al.-style full-window baseline.
//
// Sequence-based windows (Section 2): exactly the n most recent elements are
// active. Timestamp-based windows (Section 3): an element p is active at time
// t iff t - T(p) < t0 for the window parameter t0; the number of active
// elements n(t) is data-dependent and cannot be computed in sublinear space.
package window

import "slidingsample/internal/stream"

// Sequence describes a sequence-based (fixed-size) window of size N.
type Sequence struct {
	// N is the window size: the N most recent elements are active.
	N uint64
}

// Active reports whether the element at arrival index idx is active when the
// latest arrival index is latest (both 0-based). The window is
// [latest-N+1, latest] clamped at 0.
func (w Sequence) Active(idx, latest uint64) bool {
	if idx > latest {
		return false
	}
	return latest-idx < w.N
}

// Start returns the smallest active index when the latest arrival index is
// latest.
func (w Sequence) Start(latest uint64) uint64 {
	if latest+1 < w.N {
		return 0
	}
	return latest + 1 - w.N
}

// Timestamp describes a timestamp-based window of horizon T0 ticks.
type Timestamp struct {
	// T0 is the horizon: an element with timestamp ts is active at time now
	// iff now - ts < T0.
	T0 int64
}

// Active reports whether an element with timestamp ts is active at time now.
//
// The comparison is overflow-safe: streams may start at any timestamp,
// including ones near math.MinInt64, where the naive now-ts wraps around and
// silently flips active/expired. For ts <= now the true difference now-ts
// lies in [0, 2^64) and is computed exactly in uint64 arithmetic (two's
// complement subtraction yields the value mod 2^64, which is the value
// itself in that range); a timestamp from the future is trivially active.
func (w Timestamp) Active(ts, now int64) bool {
	if ts > now {
		return true
	}
	return uint64(now)-uint64(ts) < uint64(w.T0)
}

// Expired reports the complement of Active (reads better at call sites that
// mirror the paper's phrasing).
func (w Timestamp) Expired(ts, now int64) bool {
	return !w.Active(ts, now)
}

// ---------------------------------------------------------------------------
// Exact materializers (ground truth; memory O(window), test/bench use only)
// ---------------------------------------------------------------------------

// SeqBuffer keeps the full contents of a sequence-based window: a ring buffer
// of the last N elements. Used to compute exact answers against which the
// samplers' outputs are validated — this is the very thing the paper's
// algorithms avoid storing, so nothing in internal/core depends on it.
type SeqBuffer[T any] struct {
	n    uint64
	buf  []stream.Element[T]
	next int
	size int
}

// NewSeqBuffer returns an exact materializer for a window of size n.
func NewSeqBuffer[T any](n uint64) *SeqBuffer[T] {
	if n == 0 {
		panic("window: NewSeqBuffer with n == 0")
	}
	return &SeqBuffer[T]{n: n, buf: make([]stream.Element[T], n)}
}

// Observe appends one element, evicting the oldest when full.
func (b *SeqBuffer[T]) Observe(e stream.Element[T]) {
	b.buf[b.next] = e
	b.next = (b.next + 1) % int(b.n)
	if b.size < int(b.n) {
		b.size++
	}
}

// Len returns the number of active elements (min(arrivals, n)).
func (b *SeqBuffer[T]) Len() int { return b.size }

// Contents returns the active elements in arrival order (oldest first).
func (b *SeqBuffer[T]) Contents() []stream.Element[T] {
	out := make([]stream.Element[T], 0, b.size)
	start := (b.next - b.size + int(b.n)) % int(b.n)
	for i := 0; i < b.size; i++ {
		out = append(out, b.buf[(start+i)%int(b.n)])
	}
	return out
}

// At returns the i-th active element, oldest first. Panics if out of range.
func (b *SeqBuffer[T]) At(i int) stream.Element[T] {
	if i < 0 || i >= b.size {
		panic("window: SeqBuffer.At out of range")
	}
	start := (b.next - b.size + int(b.n)) % int(b.n)
	return b.buf[(start+i)%int(b.n)]
}

// TSBuffer keeps the full contents of a timestamp-based window: a deque from
// which expired elements are dropped. Ground truth only.
type TSBuffer[T any] struct {
	w   Timestamp
	buf []stream.Element[T]
	now int64
	any bool
}

// NewTSBuffer returns an exact materializer for a horizon-t0 window.
func NewTSBuffer[T any](t0 int64) *TSBuffer[T] {
	if t0 <= 0 {
		panic("window: NewTSBuffer with t0 <= 0")
	}
	return &TSBuffer[T]{w: Timestamp{T0: t0}}
}

// Observe appends one element and advances the clock to its timestamp.
func (b *TSBuffer[T]) Observe(e stream.Element[T]) {
	if b.any && e.TS < b.now {
		panic("window: TSBuffer timestamps must be non-decreasing")
	}
	b.any = true
	b.now = e.TS
	b.buf = append(b.buf, e)
	b.expire()
}

// AdvanceTo moves the clock forward without an arrival (queries may happen
// after the last arrival).
func (b *TSBuffer[T]) AdvanceTo(now int64) {
	if now < b.now {
		return
	}
	b.now = now
	b.expire()
}

func (b *TSBuffer[T]) expire() {
	i := 0
	for i < len(b.buf) && b.w.Expired(b.buf[i].TS, b.now) {
		i++
	}
	if i > 0 {
		// Shift in place and zero the vacated tail: the tail capacity would
		// otherwise keep the expired elements' payloads (strings, slices,
		// pointers) live for the buffer's whole lifetime.
		m := copy(b.buf, b.buf[i:])
		clear(b.buf[m:])
		b.buf = b.buf[:m]
	}
}

// Len returns n(t), the number of active elements.
func (b *TSBuffer[T]) Len() int { return len(b.buf) }

// Contents returns the active elements in arrival order (oldest first).
// The returned slice aliases internal storage; callers must not mutate it.
func (b *TSBuffer[T]) Contents() []stream.Element[T] { return b.buf }

// Now returns the current clock.
func (b *TSBuffer[T]) Now() int64 { return b.now }
