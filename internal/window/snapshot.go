package window

import (
	"slidingsample/internal/snap"
	"slidingsample/internal/stream"
)

// Header-less body codecs for the exact materializers, used by the
// full-window baseline's snapshot (the enclosing sampler owns the header).

// EncodeSeqBuffer writes a SeqBuffer body (nil-aware) on a shared writer.
// The ring is flattened to arrival order so the wire format is independent
// of the in-memory cursor position.
func EncodeSeqBuffer[T any](w *snap.Writer, b *SeqBuffer[T]) {
	if b == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.U64(b.n)
	contents := b.Contents()
	w.Len(len(contents))
	for _, e := range contents {
		snap.WriteElement(w, e)
	}
}

// DecodeSeqBuffer reads a SeqBuffer body written by EncodeSeqBuffer.
func DecodeSeqBuffer[T any](r *snap.Reader) *SeqBuffer[T] {
	if !r.Bool() {
		return nil
	}
	n := r.U64()
	if r.Err() != nil {
		return nil
	}
	if n == 0 || n > snap.MaxParam {
		r.Failf("window.SeqBuffer with n %d", n)
		return nil
	}
	b := &SeqBuffer[T]{n: n, buf: make([]stream.Element[T], n)}
	cnt := r.Len(int(n))
	for i := 0; i < cnt && r.Err() == nil; i++ {
		b.Observe(snap.ReadElement[T](r))
	}
	return b
}

// EncodeTSBuffer writes a TSBuffer body (nil-aware) on a shared writer.
func EncodeTSBuffer[T any](w *snap.Writer, b *TSBuffer[T]) {
	if b == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.I64(b.w.T0)
	w.I64(b.now)
	w.Bool(b.any)
	w.Len(len(b.buf))
	for _, e := range b.buf {
		snap.WriteElement(w, e)
	}
}

// DecodeTSBuffer reads a TSBuffer body written by EncodeTSBuffer.
func DecodeTSBuffer[T any](r *snap.Reader) *TSBuffer[T] {
	if !r.Bool() {
		return nil
	}
	b := &TSBuffer[T]{}
	b.w.T0 = r.I64()
	b.now = r.I64()
	b.any = r.Bool()
	if r.Err() != nil {
		return nil
	}
	if b.w.T0 <= 0 {
		r.Failf("window.TSBuffer with t0 %d", b.w.T0)
		return nil
	}
	n := r.Len(-1)
	if r.Err() != nil {
		return nil
	}
	b.buf = make([]stream.Element[T], 0, snap.CapHint(n))
	for i := 0; i < n && r.Err() == nil; i++ {
		b.buf = append(b.buf, snap.ReadElement[T](r))
	}
	return b
}
