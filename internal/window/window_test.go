package window

import (
	"math"
	"testing"
	"testing/quick"

	"slidingsample/internal/stream"
)

func TestSequenceActive(t *testing.T) {
	w := Sequence{N: 5}
	cases := []struct {
		idx, latest uint64
		want        bool
	}{
		{0, 0, true},
		{0, 4, true},
		{0, 5, false},
		{1, 5, true},
		{5, 5, true},
		{6, 5, false}, // future index is not active
		{95, 99, true},
		{94, 99, false},
	}
	for _, c := range cases {
		if got := w.Active(c.idx, c.latest); got != c.want {
			t.Errorf("Active(%d, %d) = %v, want %v", c.idx, c.latest, got, c.want)
		}
	}
}

func TestSequenceStart(t *testing.T) {
	w := Sequence{N: 5}
	cases := []struct{ latest, want uint64 }{
		{0, 0}, {3, 0}, {4, 0}, {5, 1}, {100, 96},
	}
	for _, c := range cases {
		if got := w.Start(c.latest); got != c.want {
			t.Errorf("Start(%d) = %d, want %d", c.latest, got, c.want)
		}
	}
}

func TestSequenceStartConsistentWithActive(t *testing.T) {
	f := func(nRaw uint16, latestRaw uint32) bool {
		n := uint64(nRaw%1000) + 1
		latest := uint64(latestRaw % 100000)
		w := Sequence{N: n}
		s := w.Start(latest)
		if !w.Active(s, latest) {
			return false
		}
		if s > 0 && w.Active(s-1, latest) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampActive(t *testing.T) {
	w := Timestamp{T0: 10}
	cases := []struct {
		ts, now int64
		want    bool
	}{
		{0, 0, true},
		{0, 9, true},
		{0, 10, false},
		{5, 14, true},
		{5, 15, false},
	}
	for _, c := range cases {
		if got := w.Active(c.ts, c.now); got != c.want {
			t.Errorf("Active(%d, %d) = %v, want %v", c.ts, c.now, got, c.want)
		}
		if w.Expired(c.ts, c.now) == c.want {
			t.Errorf("Expired(%d, %d) inconsistent with Active", c.ts, c.now)
		}
	}
}

func elem(idx uint64, ts int64) stream.Element[uint64] {
	return stream.Element[uint64]{Value: idx, Index: idx, TS: ts}
}

func TestSeqBufferBasics(t *testing.T) {
	b := NewSeqBuffer[uint64](3)
	if b.Len() != 0 {
		t.Fatal("fresh buffer not empty")
	}
	for i := uint64(0); i < 5; i++ {
		b.Observe(elem(i, 0))
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	got := b.Contents()
	for i, e := range got {
		if e.Index != uint64(i+2) {
			t.Fatalf("contents[%d].Index = %d, want %d", i, e.Index, i+2)
		}
		if b.At(i).Index != e.Index {
			t.Fatalf("At(%d) disagrees with Contents", i)
		}
	}
}

func TestSeqBufferPartial(t *testing.T) {
	b := NewSeqBuffer[uint64](10)
	b.Observe(elem(0, 0))
	b.Observe(elem(1, 0))
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if c := b.Contents(); len(c) != 2 || c[0].Index != 0 || c[1].Index != 1 {
		t.Fatalf("Contents = %v", c)
	}
}

func TestSeqBufferAtPanics(t *testing.T) {
	b := NewSeqBuffer[uint64](2)
	b.Observe(elem(0, 0))
	for _, i := range []int{-1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d) did not panic", i)
				}
			}()
			b.At(i)
		}()
	}
}

func TestTSBufferExpiry(t *testing.T) {
	b := NewTSBuffer[uint64](10)
	b.Observe(elem(0, 0))
	b.Observe(elem(1, 5))
	b.Observe(elem(2, 9))
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	b.Observe(elem(3, 10)) // ts=0 expires: 10-0 >= 10
	if b.Len() != 3 {
		t.Fatalf("after ts=10 Len = %d, want 3 (element 0 expired)", b.Len())
	}
	if b.Contents()[0].Index != 1 {
		t.Fatalf("oldest active should be index 1, got %d", b.Contents()[0].Index)
	}
	b.AdvanceTo(25) // everything expires
	if b.Len() != 0 {
		t.Fatalf("after AdvanceTo(25) Len = %d, want 0", b.Len())
	}
}

func TestTSBufferBurst(t *testing.T) {
	b := NewTSBuffer[uint64](2)
	for i := uint64(0); i < 100; i++ {
		b.Observe(elem(i, 7))
	}
	if b.Len() != 100 {
		t.Fatalf("burst not fully active: Len = %d", b.Len())
	}
	b.AdvanceTo(8)
	if b.Len() != 100 {
		t.Fatalf("burst should still be active at 8: Len = %d", b.Len())
	}
	b.AdvanceTo(9)
	if b.Len() != 0 {
		t.Fatalf("burst should be expired at 9: Len = %d", b.Len())
	}
}

func TestTSBufferAdvanceBackwardsIgnored(t *testing.T) {
	b := NewTSBuffer[uint64](5)
	b.Observe(elem(0, 10))
	b.AdvanceTo(3) // ignored
	if b.Now() != 10 {
		t.Fatalf("Now = %d, want 10", b.Now())
	}
	if b.Len() != 1 {
		t.Fatal("backward advance must not expire elements")
	}
}

func TestTSBufferMonotonePanic(t *testing.T) {
	b := NewTSBuffer[uint64](5)
	b.Observe(elem(0, 10))
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing timestamp did not panic")
		}
	}()
	b.Observe(elem(1, 9))
}

func TestConstructorPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewSeqBuffer(0) did not panic")
			}
		}()
		NewSeqBuffer[uint64](0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewTSBuffer(0) did not panic")
			}
		}()
		NewTSBuffer[uint64](0)
	}()
}

func TestTimestampActiveOverflowSafe(t *testing.T) {
	// Streams may start at any timestamp, including near math.MinInt64
	// (slidingsample's public contract). The naive now-ts comparison
	// overflows int64 for hugely negative ts and silently reports an
	// ancient element as active; the horizon test must not.
	w := Timestamp{T0: 60}
	cases := []struct {
		ts, now int64
		active  bool
	}{
		{math.MinInt64, 10, false},           // pre-fix: now-ts wraps negative => "active"
		{math.MinInt64 + 1, 0, false},        // same overflow region
		{math.MinInt64, math.MinInt64, true}, // fresh element at the floor
		{math.MinInt64, math.MinInt64 + 59, true},
		{math.MinInt64, math.MinInt64 + 60, false},
		{-30, 29, true}, // plain negative-to-positive span
		{-30, 30, false},
		{0, math.MaxInt64, false}, // huge forward span, no wrap
		{math.MaxInt64 - 1, math.MaxInt64, true},
		{5, 3, true}, // future timestamp: trivially active
	}
	for _, c := range cases {
		if got := w.Active(c.ts, c.now); got != c.active {
			t.Errorf("Active(ts=%d, now=%d) = %v, want %v", c.ts, c.now, got, c.active)
		}
		if got := w.Expired(c.ts, c.now); got == c.active {
			t.Errorf("Expired(ts=%d, now=%d) = %v, want %v", c.ts, c.now, got, !c.active)
		}
	}
	// The full representable span must also be exact for large horizons.
	wide := Timestamp{T0: math.MaxInt64}
	if wide.Active(math.MinInt64, math.MaxInt64) {
		t.Error("span of 2^64-1 ticks reported inside a 2^63-1 horizon")
	}
	if !wide.Active(-1, math.MaxInt64-2) {
		t.Error("span of MaxInt64-1 ticks reported outside a MaxInt64 horizon")
	}
}

// TestTSBufferExpiryReleasesPayloads is the leak regression for the exact
// materializer: expire's in-place shift must zero the vacated tail, or the
// expired elements' payloads (pointers, big slices) stay live in the
// buffer's spare capacity for its whole lifetime.
func TestTSBufferExpiryReleasesPayloads(t *testing.T) {
	const t0 = 8
	b := NewTSBuffer[*[]byte](t0)
	for i := 0; i < 256; i++ {
		p := make([]byte, 1<<10)
		b.Observe(stream.Element[*[]byte]{Value: &p, Index: uint64(i), TS: int64(i)})
	}
	b.AdvanceTo(1 << 20) // everything expires
	if b.Len() != 0 {
		t.Fatalf("%d elements active after full expiry", b.Len())
	}
	full := b.buf[:cap(b.buf)]
	for i, e := range full {
		if e.Value != nil {
			t.Fatalf("slack slot %d still pins an expired payload (cap %d)", i, cap(b.buf))
		}
	}
	// And mid-stream: live elements stay, only the slack is scrubbed.
	p := make([]byte, 16)
	b.Observe(stream.Element[*[]byte]{Value: &p, Index: 256, TS: 1 << 20})
	live := map[*[]byte]bool{}
	for _, e := range b.Contents() {
		live[e.Value] = true
	}
	full = b.buf[:cap(b.buf)]
	for i := b.Len(); i < len(full); i++ {
		if v := full[i].Value; v != nil && !live[v] {
			t.Fatalf("slack slot %d pins a non-live payload", i)
		}
	}
}
