package baseline

// invariant_test.go: structural invariants of the baseline implementations,
// checked against brute-force recomputation — the memory comparisons in
// DESIGN.md §4 are only meaningful if the baselines are implemented
// correctly.

import (
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

func belem(i uint64) stream.Element[uint64] {
	return stream.Element[uint64]{Value: i, Index: i, TS: int64(i)}
}

// TestPriorityRetainedSetIsRightMaxima: the retained list must be exactly
// the elements with no later, higher-priority element — verified by brute
// force on a shadow history.
func TestPriorityRetainedSetIsRightMaxima(t *testing.T) {
	p := newPrio[uint64](xrand.New(2), 1<<40) // effectively no expiry
	for i := uint64(0); i < 500; i++ {
		// We cannot observe discarded priorities from outside, so verify the
		// structural property instead: the retained list must be strictly
		// decreasing in priority and increasing in arrival order, and the
		// head must be what sample() returns.
		p.observe(belem(i))
		for j := 1; j < len(p.nodes); j++ {
			if p.nodes[j-1].prio <= p.nodes[j].prio {
				t.Fatalf("step %d: retained priorities not strictly decreasing at %d", i, j)
			}
			if p.nodes[j-1].st.Elem.Index >= p.nodes[j].st.Elem.Index {
				t.Fatalf("step %d: retained indexes not increasing at %d", i, j)
			}
		}
	}
	// The head is the maximum-priority element among all retained, and by
	// the pop rule every discarded element was dominated by a later one, so
	// the head is the global maximum of all 500 priorities.
	st, ok := p.sample(1 << 30)
	if !ok {
		t.Fatal("no sample")
	}
	if st != p.nodes[0].st {
		t.Fatal("sample is not the head")
	}
}

// TestSkybandContainsTopK: after any prefix, the skyband must contain the k
// active elements with the highest priorities (compared against a
// brute-force shadow that keeps everything).
func TestSkybandContainsTopK(t *testing.T) {
	const k = 3
	const t0 = 24
	r := xrand.New(3)
	s := NewSkyband[uint64](xrand.New(4), t0, k)
	// Shadow: replay the sampler's own stored priorities. We cannot observe
	// discarded priorities from outside, so instead verify the output
	// directly: SampleAt must return k distinct active elements whose
	// priorities are the k largest among the retained set, and the retained
	// set must contain at least min(k, n) active elements at all times.
	w := window.Timestamp{T0: t0}
	ts := int64(0)
	active := 0
	var arrivals []int64
	for i := uint64(0); i < 800; i++ {
		if r.Uint64n(3) == 0 {
			ts += int64(r.Uint64n(4))
		}
		s.Observe(i, ts)
		arrivals = append(arrivals, ts)
		active = 0
		for _, ats := range arrivals {
			if w.Active(ats, ts) {
				active++
			}
		}
		got, ok := s.SampleAt(ts)
		if !ok {
			t.Fatalf("step %d: no sample", i)
		}
		wantLen := k
		if active < k {
			wantLen = active
		}
		if len(got) != wantLen {
			t.Fatalf("step %d: sample size %d, want %d (active=%d)", i, len(got), wantLen, active)
		}
		if s.Retained() < wantLen {
			t.Fatalf("step %d: retained %d < needed %d", i, s.Retained(), wantLen)
		}
	}
}

// TestChainNodeStructure: chain nodes are strictly increasing in index, the
// head is the sample, and each node's successor index lies within n of it.
func TestChainNodeStructure(t *testing.T) {
	const n = 32
	c := newChain[uint64](xrand.New(5), n)
	for i := uint64(0); i < 2000; i++ {
		c.observe(belem(i))
		for j := range c.nodes {
			nd := c.nodes[j]
			if nd.succ <= nd.st.Elem.Index || nd.succ > nd.st.Elem.Index+n {
				t.Fatalf("step %d: successor %d outside (%d, %d]", i, nd.succ, nd.st.Elem.Index, nd.st.Elem.Index+n)
			}
			if j > 0 {
				prev := c.nodes[j-1]
				if nd.st.Elem.Index != prev.succ {
					t.Fatalf("step %d: node %d is not its predecessor's successor", i, j)
				}
			}
		}
		// The sample must be active.
		if got := c.sample(); got == nil || i-got.Elem.Index >= n {
			t.Fatalf("step %d: sample missing or expired", i)
		}
	}
}

// TestOversampleWordsScaleWithFactor: memory must grow linearly in the
// over-sampling factor (disadvantage (a) as an invariant).
func TestOversampleWordsScaleWithFactor(t *testing.T) {
	words := map[int]int{}
	for _, f := range []int{1, 2, 4} {
		o := NewOversample[uint64](xrand.New(6), 64, 8, f)
		for i := uint64(0); i < 1000; i++ {
			o.Observe(i, int64(i))
		}
		words[f] = o.Words()
	}
	if !(words[1] < words[2] && words[2] < words[4]) {
		t.Fatalf("oversample words not increasing in factor: %v", words)
	}
	if words[4] < 3*words[1] {
		t.Fatalf("factor-4 words %d not ~4x factor-1 words %d", words[4], words[1])
	}
}
