package baseline

import (
	"math"
	"testing"

	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// ---------------------------------------------------------------------------
// Chain sampling (BDM, sequence-based, with replacement)
// ---------------------------------------------------------------------------

func TestChainSampleInWindow(t *testing.T) {
	const n = 16
	c := NewChain[uint64](xrand.New(1), n, 3)
	for i := 0; i < 600; i++ {
		c.Observe(uint64(i), int64(i))
		got, ok := c.Sample()
		if !ok || len(got) != 3 {
			t.Fatalf("step %d: ok=%v len=%d", i, ok, len(got))
		}
		lo := uint64(0)
		if i >= n {
			lo = uint64(i) - n + 1
		}
		for _, e := range got {
			if e.Index < lo || e.Index > uint64(i) {
				t.Fatalf("step %d: chain sample %d outside window [%d,%d]", i, e.Index, lo, i)
			}
		}
	}
}

// TestChainUniform validates the baseline itself: chain sampling is supposed
// to be a correct uniform with-replacement sampler (its defect is memory,
// not bias).
func TestChainUniform(t *testing.T) {
	const n = 8
	const trials = 60000
	r := xrand.New(2)
	for _, m := range []int{5, 8, 13, 24} {
		lo := 0
		if m > n {
			lo = m - n
		}
		size := m - lo
		counts := make([]int, size)
		for tr := 0; tr < trials; tr++ {
			c := NewChain[uint64](r, n, 1)
			for i := 0; i < m; i++ {
				c.Observe(uint64(i), int64(i))
			}
			got, _ := c.Sample()
			counts[int(got[0].Index)-lo]++
		}
		want := float64(trials) / float64(size)
		for i, cnt := range counts {
			if math.Abs(float64(cnt)-want) > 5*math.Sqrt(want) {
				t.Errorf("m=%d pos %d: %d, want about %.0f", m, i, cnt, want)
			}
		}
	}
}

// TestChainMemoryIsRandom documents the E1 point: across seeds, the peak
// memory differs (randomized bound), and single chains can exceed the
// constant our sampler never exceeds.
func TestChainMemoryIsRandom(t *testing.T) {
	peaks := map[int]bool{}
	for seed := uint64(0); seed < 30; seed++ {
		c := NewChain[uint64](xrand.New(seed), 64, 1)
		for i := 0; i < 5000; i++ {
			c.Observe(uint64(i), int64(i))
		}
		peaks[c.MaxWords()] = true
	}
	if len(peaks) < 3 {
		t.Fatalf("chain peak memory identical across seeds (%v) — expected a random variable", peaks)
	}
}

func TestChainLensDiagnostics(t *testing.T) {
	c := NewChain[uint64](xrand.New(3), 32, 4)
	for i := 0; i < 200; i++ {
		c.Observe(uint64(i), int64(i))
	}
	lens := c.ChainLens()
	if len(lens) != 4 {
		t.Fatalf("ChainLens returned %d entries", len(lens))
	}
	for i, l := range lens {
		if l < 1 {
			t.Fatalf("chain %d has no sample", i)
		}
	}
	if c.K() != 4 || c.Count() != 200 {
		t.Fatalf("accessors: K=%d Count=%d", c.K(), c.Count())
	}
}

func TestChainEmptyAndPanics(t *testing.T) {
	c := NewChain[uint64](xrand.New(4), 8, 1)
	if _, ok := c.Sample(); ok {
		t.Fatal("empty chain returned sample")
	}
	for _, tc := range []struct {
		n uint64
		k int
	}{{0, 1}, {8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewChain(%d,%d) did not panic", tc.n, tc.k)
				}
			}()
			NewChain[uint64](xrand.New(1), tc.n, tc.k)
		}()
	}
}

// ---------------------------------------------------------------------------
// Priority sampling (BDM, timestamp-based, with replacement)
// ---------------------------------------------------------------------------

func tsPattern() []int64 {
	var p []int64
	add := func(ts int64, c int) {
		for i := 0; i < c; i++ {
			p = append(p, ts)
		}
	}
	add(0, 5)
	add(2, 9)
	add(3, 1)
	add(7, 6)
	add(9, 4)
	return p
}

func TestPriorityUniform(t *testing.T) {
	const t0 = 8
	const trials = 60000
	pattern := tsPattern()
	now := int64(9)
	w := window.Timestamp{T0: t0}
	var act []uint64
	for i, ts := range pattern {
		if w.Active(ts, now) {
			act = append(act, uint64(i))
		}
	}
	r := xrand.New(5)
	counts := map[uint64]int{}
	for tr := 0; tr < trials; tr++ {
		p := NewPriority[uint64](r, t0, 1)
		for i, ts := range pattern {
			p.Observe(uint64(i), ts)
		}
		got, ok := p.SampleAt(now)
		if !ok {
			t.Fatal("no sample")
		}
		counts[got[0].Index]++
	}
	want := float64(trials) / float64(len(act))
	total := 0
	for _, idx := range act {
		total += counts[idx]
		if math.Abs(float64(counts[idx])-want) > 5*math.Sqrt(want) {
			t.Errorf("idx %d: %d, want about %.0f", idx, counts[idx], want)
		}
	}
	if total != trials {
		t.Fatalf("%d of %d samples were active — inactive elements sampled", total, trials)
	}
}

func TestPriorityExpiryAndEmpty(t *testing.T) {
	p := NewPriority[uint64](xrand.New(6), 5, 2)
	if _, ok := p.SampleAt(0); ok {
		t.Fatal("empty priority sampler returned sample")
	}
	p.Observe(0, 0)
	p.Observe(1, 1)
	if got, ok := p.SampleAt(4); !ok || len(got) != 2 {
		t.Fatal("priority sample missing while active")
	}
	if _, ok := p.SampleAt(10); ok {
		t.Fatal("priority sample survived expiry")
	}
}

func TestPriorityRetainedIsLogarithmicOnAverage(t *testing.T) {
	// E[retained] = H_n ≈ ln n for n active elements; check it is far below
	// n and in the right ballpark.
	const n = 10000
	sum := 0
	const runs = 20
	for seed := uint64(0); seed < runs; seed++ {
		p := NewPriority[uint64](xrand.New(seed), 1<<40, 1)
		for i := 0; i < n; i++ {
			p.Observe(uint64(i), int64(i))
		}
		sum += p.RetainedLens()[0]
	}
	avg := float64(sum) / runs
	h := math.Log(n)
	if avg < h/3 || avg > h*3 {
		t.Fatalf("average retained %f, want near ln(n)=%.1f", avg, h)
	}
}

func TestPriorityPanics(t *testing.T) {
	for _, tc := range []struct {
		t0 int64
		k  int
	}{{0, 1}, {5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewPriority(%d,%d) did not panic", tc.t0, tc.k)
				}
			}()
			NewPriority[uint64](xrand.New(1), tc.t0, tc.k)
		}()
	}
}

// ---------------------------------------------------------------------------
// Skyband (Gemulla–Lehner, timestamp-based, without replacement)
// ---------------------------------------------------------------------------

func TestSkybandDistinctAndActive(t *testing.T) {
	const t0, k = 6, 3
	s := NewSkyband[uint64](xrand.New(7), t0, k)
	w := window.Timestamp{T0: t0}
	ts := int64(0)
	r := xrand.New(8)
	for i := 0; i < 2000; i++ {
		if r.Uint64n(4) == 0 {
			ts += int64(r.Uint64n(3))
		}
		s.Observe(uint64(i), ts)
		got, ok := s.SampleAt(ts)
		if !ok {
			t.Fatalf("step %d: no sample", i)
		}
		seen := map[uint64]bool{}
		for _, e := range got {
			if w.Expired(e.TS, ts) {
				t.Fatalf("step %d: expired element in skyband sample", i)
			}
			if seen[e.Index] {
				t.Fatalf("step %d: duplicate in WOR sample", i)
			}
			seen[e.Index] = true
		}
	}
}

// TestSkybandMatchesBruteForceTopK: the skyband must always contain the k
// highest-priority active elements; we verify the sample size and, on a
// small window, uniformity over 2-subsets.
func TestSkybandUniformSubsets(t *testing.T) {
	const t0, k = 8, 2
	const trials = 90000
	pattern := tsPattern()
	now := int64(9)
	w := window.Timestamp{T0: t0}
	var act []uint64
	for i, ts := range pattern {
		if w.Active(ts, now) {
			act = append(act, uint64(i))
		}
	}
	n := len(act)
	r := xrand.New(9)
	counts := map[[2]uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewSkyband[uint64](r, t0, k)
		for i, ts := range pattern {
			s.Observe(uint64(i), ts)
		}
		got, ok := s.SampleAt(now)
		if !ok || len(got) != k {
			t.Fatalf("ok=%v len=%d", ok, len(got))
		}
		a, b := got[0].Index, got[1].Index
		if a > b {
			a, b = b, a
		}
		counts[[2]uint64{a, b}]++
	}
	nSub := n * (n - 1) / 2
	if len(counts) != nSub {
		t.Fatalf("saw %d subsets, want %d", len(counts), nSub)
	}
	want := float64(trials) / float64(nSub)
	for key, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("subset %v: %d, want about %.0f", key, c, want)
		}
	}
}

func TestSkybandSmallWindowReturnsAll(t *testing.T) {
	s := NewSkyband[uint64](xrand.New(10), 10, 5)
	s.Observe(0, 0)
	s.Observe(1, 1)
	got, ok := s.SampleAt(1)
	if !ok || len(got) != 2 {
		t.Fatalf("want the 2 active elements, got ok=%v len=%d", ok, len(got))
	}
}

func TestSkybandRetainedBoundedOnAverage(t *testing.T) {
	const n, k = 5000, 4
	sum := 0
	const runs = 10
	for seed := uint64(0); seed < runs; seed++ {
		s := NewSkyband[uint64](xrand.New(seed), 1<<40, k)
		for i := 0; i < n; i++ {
			s.Observe(uint64(i), int64(i))
		}
		sum += s.Retained()
	}
	avg := float64(sum) / runs
	bound := float64(k) * math.Log(n) * 3
	if avg > bound {
		t.Fatalf("average retained %f exceeds 3*k*ln(n)=%.1f", avg, bound)
	}
	if avg < math.Log(n) {
		t.Fatalf("average retained %f suspiciously small", avg)
	}
}

// ---------------------------------------------------------------------------
// Oversampling (BDM WOR strawman)
// ---------------------------------------------------------------------------

func TestOversampleProducesDistinct(t *testing.T) {
	o := NewOversample[uint64](xrand.New(11), 32, 4, 4)
	for i := 0; i < 200; i++ {
		o.Observe(uint64(i), int64(i))
	}
	okCount := 0
	for q := 0; q < 100; q++ {
		got, ok := o.Sample()
		if !ok {
			continue
		}
		okCount++
		if len(got) != 4 {
			t.Fatalf("sample size %d, want 4", len(got))
		}
		seen := map[uint64]bool{}
		for _, e := range got {
			if e.Index < 200-32 || seen[e.Index] {
				t.Fatalf("bad oversample result %v", got)
			}
			seen[e.Index] = true
		}
	}
	if okCount == 0 {
		t.Fatal("oversampling never succeeded with factor 4 on n=32")
	}
	if o.Queries() != 100 {
		t.Fatalf("Queries = %d", o.Queries())
	}
}

// TestOversampleCanFail demonstrates disadvantage (b): with factor 1 and a
// tiny window, collisions make some queries fail. Queries are interleaved
// with arrivals so the underlying samples actually change.
func TestOversampleCanFail(t *testing.T) {
	var failures, queries uint64
	for seed := uint64(0); seed < 20; seed++ {
		o := NewOversample[uint64](xrand.New(seed), 4, 3, 1)
		for i := 0; i < 200; i++ {
			o.Observe(uint64(i), int64(i))
			if i%10 == 9 {
				o.Sample()
			}
		}
		failures += o.Failures()
		queries += o.Queries()
	}
	if failures == 0 {
		t.Fatal("oversampling with factor 1 on k=3,n=4 never failed — statistically implausible")
	}
	if failures == queries {
		t.Fatal("oversampling always failed — broken")
	}
}

func TestOversampleAccessorsAndPanics(t *testing.T) {
	o := NewOversample[uint64](xrand.New(13), 8, 2, 3)
	if o.K() != 2 || o.Factor() != 3 {
		t.Fatal("accessors wrong")
	}
	if o.Words() <= 0 || o.MaxWords() < o.Words() {
		// MaxWords is tracked on the inner chain (which only grows before
		// observations), so it is at least Words right after construction.
		t.Fatalf("words accounting wrong: %d %d", o.Words(), o.MaxWords())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewOversample(k=0) did not panic")
			}
		}()
		NewOversample[uint64](xrand.New(1), 8, 0, 2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewOversample(factor=0) did not panic")
			}
		}()
		NewOversample[uint64](xrand.New(1), 8, 2, 0)
	}()
}

// ---------------------------------------------------------------------------
// FullWindow (Zhang et al. strawman)
// ---------------------------------------------------------------------------

func TestFullWindowSeqExact(t *testing.T) {
	f := NewFullWindowSeq[uint64](xrand.New(14), 8)
	if _, ok := f.SampleWR(0, 1); ok {
		t.Fatal("empty full window returned sample")
	}
	for i := 0; i < 20; i++ {
		f.Observe(uint64(i), int64(i))
	}
	if f.Len() != 8 {
		t.Fatalf("Len = %d, want 8", f.Len())
	}
	got, ok := f.SampleWOR(0, 5)
	if !ok || len(got) != 5 {
		t.Fatalf("WOR ok=%v len=%d", ok, len(got))
	}
	seen := map[uint64]bool{}
	for _, e := range got {
		if e.Index < 12 || seen[e.Index] {
			t.Fatalf("bad WOR sample %v", got)
		}
		seen[e.Index] = true
	}
	wr, ok := f.SampleWR(0, 100)
	if !ok || len(wr) != 100 {
		t.Fatal("WR sampling failed")
	}
	for _, e := range wr {
		if e.Index < 12 {
			t.Fatal("WR sampled expired element")
		}
	}
}

func TestFullWindowTSExact(t *testing.T) {
	f := NewFullWindowTS[uint64](xrand.New(15), 5)
	for i := 0; i < 10; i++ {
		f.Observe(uint64(i), int64(i))
	}
	// At now=9 horizon 5: active ts in (4, 9] -> indexes 5..9.
	got, ok := f.SampleWOR(9, 10)
	if !ok || len(got) != 5 {
		t.Fatalf("ok=%v len=%d, want 5 active", ok, len(got))
	}
	if f.Count() != 10 {
		t.Fatalf("Count = %d", f.Count())
	}
	// Memory is Θ(n): words must scale with the window content.
	if f.Words() < 5*3 {
		t.Fatalf("Words = %d, too small for 5 stored elements", f.Words())
	}
	if _, ok := f.SampleWR(100, 1); ok {
		t.Fatal("sample from fully expired window")
	}
}

func TestFullWindowWORWholeWindowWhenKBig(t *testing.T) {
	f := NewFullWindowSeq[uint64](xrand.New(16), 4)
	for i := 0; i < 3; i++ {
		f.Observe(uint64(i), 0)
	}
	got, ok := f.SampleWOR(0, 10)
	if !ok || len(got) != 3 {
		t.Fatalf("want whole window, got %d", len(got))
	}
}
