package baseline

import (
	"sort"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// Oversample is the over-sampling approach to without-replacement sampling
// that Babcock, Datar and Motwani proposed and that the paper's Theorem 2.2
// renders obsolete: run factor*k independent with-replacement chain
// samplers; at query time, collect the distinct elements among their
// samples and return a random k-subset when at least k are distinct.
//
// The two documented disadvantages, both measured in experiment E2:
//
//	(a) cost — factor*k samplers instead of k (words and time);
//	(b) no worst-case guarantee — with some probability fewer than k
//	    distinct samples exist and the query FAILS (ok=false). Failures()
//	    counts them.
//
// Note the returned subset is only approximately a uniform k-WOR sample
// (deduplicating with-replacement draws slightly biases against recently
// duplicated elements, a known defect of over-sampling at small n — one
// more reason it is a strawman).
type Oversample[T any] struct {
	n        uint64
	k        int
	factor   int
	rng      *xrand.Rand
	inner    *Chain[T]
	failures uint64
	queries  uint64
}

// NewOversample returns an over-sampling WOR sampler over a sequence window
// of size n with target sample size k and over-sampling factor >= 1.
func NewOversample[T any](rng *xrand.Rand, n uint64, k, factor int) *Oversample[T] {
	if k <= 0 || factor < 1 {
		panic("baseline: NewOversample with k <= 0 or factor < 1")
	}
	return &Oversample[T]{
		n:      n,
		k:      k,
		factor: factor,
		rng:    rng.Split(),
		inner:  NewChain[T](rng, n, k*factor),
	}
}

// Observe feeds the next element.
func (o *Oversample[T]) Observe(value T, ts int64) { o.inner.Observe(value, ts) }

// ObserveBatch implements stream.Sampler via the inner chain sampler.
func (o *Oversample[T]) ObserveBatch(batch []stream.Element[T]) { o.inner.ObserveBatch(batch) }

// Count returns the number of arrivals.
func (o *Oversample[T]) Count() uint64 { return o.inner.Count() }

// Sample returns a k-subset of distinct window elements when the underlying
// factor*k with-replacement samples contain at least k distinct values;
// otherwise ok=false and the failure counter increments.
func (o *Oversample[T]) Sample() ([]stream.Element[T], bool) {
	o.queries++
	raw, ok := o.inner.Sample()
	if !ok {
		o.failures++
		return nil, false
	}
	seen := make(map[uint64]stream.Element[T], len(raw))
	for _, e := range raw {
		seen[e.Index] = e
	}
	if len(seen) < o.k {
		o.failures++
		return nil, false
	}
	distinct := make([]stream.Element[T], 0, len(seen))
	for _, e := range seen {
		distinct = append(distinct, e)
	}
	// Map iteration order is randomized; put the pool in arrival order so
	// equally seeded samplers make identical draws (reproducibility under
	// WithSeed, and the E16 batch/loop equivalence check).
	sort.Slice(distinct, func(i, j int) bool { return distinct[i].Index < distinct[j].Index })
	// Random k-subset of the distinct pool.
	out := make([]stream.Element[T], 0, o.k)
	for _, j := range o.rng.PickK(len(distinct), o.k) {
		out = append(out, distinct[j])
	}
	return out, true
}

// Failures returns how many queries could not produce k distinct samples.
func (o *Oversample[T]) Failures() uint64 { return o.failures }

// Queries returns the number of Sample calls.
func (o *Oversample[T]) Queries() uint64 { return o.queries }

// K returns the target sample size.
func (o *Oversample[T]) K() int { return o.k }

// Factor returns the over-sampling factor.
func (o *Oversample[T]) Factor() int { return o.factor }

// Words implements stream.MemoryReporter.
func (o *Oversample[T]) Words() int { return 4 + o.inner.Words() }

// MaxWords implements stream.MemoryReporter.
func (o *Oversample[T]) MaxWords() int { return 4 + o.inner.MaxWords() }
