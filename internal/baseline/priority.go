package baseline

import (
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// prioNode is a retained element together with its random priority.
// Priorities are uniform 64-bit integers rather than the paper's reals in
// (0,1): ties have probability ~2^-64 per pair and a word each under the
// DESIGN.md §6 cost model.
type prioNode[T any] struct {
	st   *stream.Stored[T]
	prio uint64
}

// prio is one Babcock–Datar–Motwani priority sampler over a timestamp-based
// window: every arrival draws a priority; the sample is the highest-priority
// active element. The retained set is exactly the elements with no later,
// higher-priority element — a descending-priority list in arrival order,
// maintained by popping dominated tails on arrival and expired heads on
// advance. Its size is O(log n) in expectation but randomized.
type prio[T any] struct {
	w     window.Timestamp
	rng   *xrand.Rand
	nodes []prioNode[T] // arrival order == descending priority
}

func newPrio[T any](rng *xrand.Rand, t0 int64) *prio[T] {
	return &prio[T]{w: window.Timestamp{T0: t0}, rng: rng}
}

func (p *prio[T]) observe(e stream.Element[T]) {
	pr := p.rng.Uint64()
	for len(p.nodes) > 0 && p.nodes[len(p.nodes)-1].prio < pr {
		p.nodes = p.nodes[:len(p.nodes)-1]
	}
	p.nodes = append(p.nodes, prioNode[T]{st: &stream.Stored[T]{Elem: e}, prio: pr})
	p.expire(e.TS)
}

func (p *prio[T]) expire(now int64) {
	i := 0
	for i < len(p.nodes) && p.w.Expired(p.nodes[i].st.Elem.TS, now) {
		i++
	}
	if i > 0 {
		p.nodes = append(p.nodes[:0:0], p.nodes[i:]...)
	}
}

func (p *prio[T]) sample(now int64) (*stream.Stored[T], bool) {
	p.expire(now)
	if len(p.nodes) == 0 {
		return nil, false
	}
	return p.nodes[0].st, true
}

// words: element (3) + priority (1) per node.
func (p *prio[T]) words() int { return len(p.nodes) * (stream.StoredWords + 1) }

// Priority maintains k independent priority samplers — the
// Babcock–Datar–Motwani with-replacement sampler for timestamp-based
// windows (the E3 comparator of core.TSWR).
type Priority[T any] struct {
	t0       int64
	k        int
	count    uint64
	now      int64 // latest observed timestamp (for clockless Sample)
	copies   []*prio[T]
	maxWords int
}

// NewPriority returns k independent priority samplers with horizon t0.
// Panics if t0 <= 0 or k <= 0.
func NewPriority[T any](rng *xrand.Rand, t0 int64, k int) *Priority[T] {
	if t0 <= 0 {
		panic("baseline: NewPriority with t0 <= 0")
	}
	if k <= 0 {
		panic("baseline: NewPriority with k <= 0")
	}
	p := &Priority[T]{t0: t0, k: k, copies: make([]*prio[T], k)}
	for i := range p.copies {
		p.copies[i] = newPrio[T](rng.Split(), t0)
	}
	p.maxWords = p.Words()
	return p
}

// Observe feeds the next element (timestamps must be non-decreasing).
func (p *Priority[T]) Observe(value T, ts int64) {
	e := stream.Element[T]{Value: value, Index: p.count, TS: ts}
	p.count++
	p.now = ts
	for _, c := range p.copies {
		c.observe(e)
	}
	if w := p.Words(); w > p.maxWords {
		p.maxWords = w
	}
}

// ObserveBatch implements stream.Sampler via the reference loop (priority
// sampling has no batch-amortizable work).
func (p *Priority[T]) ObserveBatch(batch []stream.Element[T]) { stream.ObserveAll[T](p, batch) }

// Sample returns the k samples at the latest observed timestamp.
func (p *Priority[T]) Sample() ([]stream.Element[T], bool) {
	if p.count == 0 {
		return nil, false
	}
	return p.SampleAt(p.now)
}

// SampleAt returns the k samples at time now. ok is false when the window
// is empty.
func (p *Priority[T]) SampleAt(now int64) ([]stream.Element[T], bool) {
	out := make([]stream.Element[T], p.k)
	for i, c := range p.copies {
		st, ok := c.sample(now)
		if !ok {
			return nil, false
		}
		out[i] = st.Elem
	}
	return out, true
}

// K returns the number of sample copies.
func (p *Priority[T]) K() int { return p.k }

// Count returns the number of arrivals.
func (p *Priority[T]) Count() uint64 { return p.count }

// RetainedLens returns the retained-set size of each copy (diagnostics for
// the E3/E4 tables).
func (p *Priority[T]) RetainedLens() []int {
	out := make([]int, p.k)
	for i, c := range p.copies {
		out[i] = len(c.nodes)
	}
	return out
}

// Words implements stream.MemoryReporter.
func (p *Priority[T]) Words() int {
	w := 4 // t0, k, count, now
	for _, c := range p.copies {
		w += c.words()
	}
	return w
}

// MaxWords implements stream.MemoryReporter (a random variable — the E3
// contrast with core.TSWR's deterministic bound).
func (p *Priority[T]) MaxWords() int { return p.maxWords }
