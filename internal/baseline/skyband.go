package baseline

import (
	"sort"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// skyNode is a retained element in the k-skyband: its priority plus the
// number of later elements with higher priority observed so far.
type skyNode[T any] struct {
	st        *stream.Stored[T]
	prio      uint64
	dominated int // later, higher-priority arrivals seen so far
}

// Skyband is the Gemulla–Lehner style extension of priority sampling to
// sampling WITHOUT replacement from timestamp-based windows: retain every
// element that has fewer than k later elements with higher priority (the
// "k highest priorities" successors list). The k-WOR sample at time t is
// the k highest-priority ACTIVE elements — uniform because priorities are
// i.i.d. The retained-set size is O(k log n) in expectation but randomized
// (the E5 comparator of core.TSWOR).
type Skyband[T any] struct {
	t0       int64
	k        int
	w        window.Timestamp
	rng      *xrand.Rand
	count    uint64
	now      int64        // latest observed timestamp (for clockless Sample)
	nodes    []skyNode[T] // arrival order
	maxWords int
}

// NewSkyband returns a k-WOR skyband sampler with horizon t0.
// Panics if t0 <= 0 or k <= 0.
func NewSkyband[T any](rng *xrand.Rand, t0 int64, k int) *Skyband[T] {
	if t0 <= 0 {
		panic("baseline: NewSkyband with t0 <= 0")
	}
	if k <= 0 {
		panic("baseline: NewSkyband with k <= 0")
	}
	s := &Skyband[T]{t0: t0, k: k, w: window.Timestamp{T0: t0}, rng: rng.Split()}
	s.maxWords = s.Words()
	return s
}

// Observe feeds the next element (timestamps must be non-decreasing).
func (s *Skyband[T]) Observe(value T, ts int64) {
	e := stream.Element[T]{Value: value, Index: s.count, TS: ts}
	s.count++
	s.now = ts
	pr := s.rng.Uint64()
	// Dominate older, lower-priority elements; drop the ones that are now
	// dominated k times (they can never again be among the k highest
	// priorities of any future window).
	keep := s.nodes[:0]
	for _, nd := range s.nodes {
		if nd.prio < pr {
			nd.dominated++
		}
		if nd.dominated < s.k {
			keep = append(keep, nd)
		}
	}
	s.nodes = keep
	s.nodes = append(s.nodes, skyNode[T]{st: &stream.Stored[T]{Elem: e}, prio: pr})
	s.expire(ts)
	if w := s.Words(); w > s.maxWords {
		s.maxWords = w
	}
}

func (s *Skyband[T]) expire(now int64) {
	i := 0
	for i < len(s.nodes) && s.w.Expired(s.nodes[i].st.Elem.TS, now) {
		i++
	}
	if i > 0 {
		s.nodes = append(s.nodes[:0:0], s.nodes[i:]...)
	}
}

// ObserveBatch implements stream.Sampler via the reference loop (the skyband
// has no batch-amortizable work).
func (s *Skyband[T]) ObserveBatch(batch []stream.Element[T]) { stream.ObserveAll[T](s, batch) }

// Sample returns the sample at the latest observed timestamp.
func (s *Skyband[T]) Sample() ([]stream.Element[T], bool) {
	if s.count == 0 {
		return nil, false
	}
	return s.SampleAt(s.now)
}

// SampleAt returns the min(k, n) active elements with the highest
// priorities — a uniform without-replacement sample. ok is false when the
// window is empty.
func (s *Skyband[T]) SampleAt(now int64) ([]stream.Element[T], bool) {
	s.expire(now)
	if len(s.nodes) == 0 {
		return nil, false
	}
	idx := make([]int, len(s.nodes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.nodes[idx[a]].prio > s.nodes[idx[b]].prio })
	m := s.k
	if len(idx) < m {
		m = len(idx)
	}
	out := make([]stream.Element[T], m)
	for i := 0; i < m; i++ {
		out[i] = s.nodes[idx[i]].st.Elem
	}
	return out, true
}

// K returns the sample-size parameter.
func (s *Skyband[T]) K() int { return s.k }

// Count returns the number of arrivals.
func (s *Skyband[T]) Count() uint64 { return s.count }

// Retained returns the current retained-set size (diagnostics).
func (s *Skyband[T]) Retained() int { return len(s.nodes) }

// Words implements stream.MemoryReporter: element (3) + priority (1) +
// domination counter (1) per node, plus four scalars (t0, k, count, now).
func (s *Skyband[T]) Words() int {
	return 4 + len(s.nodes)*(stream.StoredWords+2)
}

// MaxWords implements stream.MemoryReporter (randomized — the E5 contrast).
func (s *Skyband[T]) MaxWords() int { return s.maxWords }
