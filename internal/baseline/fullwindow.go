package baseline

import (
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// FullWindow is the store-everything strawman (the approach of Zhang, Li,
// Yu, Wang and Jiang (2005), which adapts reservoir sampling by keeping the
// window in memory): exact uniform samples — with or without replacement —
// at Θ(n) words. It doubles as a correctness oracle in tests and as the
// memory upper anchor in the E1/E3 tables.
type FullWindow[T any] struct {
	seq      *window.SeqBuffer[T] // non-nil for sequence windows
	tsb      *window.TSBuffer[T]  // non-nil for timestamp windows
	rng      *xrand.Rand
	n        uint64 // arrivals
	lastTS   int64  // latest observed timestamp (for clockless Sample)
	k        int    // default sample size for Sample/SampleAt (see Bind)
	wor      bool   // default mode: without replacement
	maxWords int
}

// NewFullWindowSeq returns a full-window sampler over a sequence-based
// window of size n.
func NewFullWindowSeq[T any](rng *xrand.Rand, n uint64) *FullWindow[T] {
	return &FullWindow[T]{seq: window.NewSeqBuffer[T](n), rng: rng.Split()}
}

// NewFullWindowTS returns a full-window sampler over a timestamp-based
// window of horizon t0.
func NewFullWindowTS[T any](rng *xrand.Rand, t0 int64) *FullWindow[T] {
	return &FullWindow[T]{tsb: window.NewTSBuffer[T](t0), rng: rng.Split()}
}

// Bind fixes the default sample size and mode used by the interface-shaped
// Sample/SampleAt queries (stream.Sampler has no per-query parameters; the
// explicit SampleWR/SampleWOR remain available). Returns f for chaining.
func (f *FullWindow[T]) Bind(k int, withoutReplacement bool) *FullWindow[T] {
	if k <= 0 {
		panic("baseline: FullWindow.Bind with k <= 0")
	}
	f.k = k
	f.wor = withoutReplacement
	return f
}

// Observe feeds the next element.
func (f *FullWindow[T]) Observe(value T, ts int64) {
	e := stream.Element[T]{Value: value, Index: f.n, TS: ts}
	if f.seq != nil {
		f.seq.Observe(e)
	} else {
		f.tsb.Observe(e)
	}
	f.n++
	f.lastTS = ts
	if w := f.Words(); w > f.maxWords {
		f.maxWords = w
	}
}

// ObserveBatch implements stream.Sampler via the reference loop.
func (f *FullWindow[T]) ObserveBatch(batch []stream.Element[T]) { stream.ObserveAll[T](f, batch) }

// Count returns the number of arrivals.
func (f *FullWindow[T]) Count() uint64 { return f.n }

// K returns the Bind-configured default sample size (0 before Bind).
func (f *FullWindow[T]) K() int { return f.k }

// Sample draws the Bind-configured sample at the latest observed timestamp.
func (f *FullWindow[T]) Sample() ([]stream.Element[T], bool) { return f.SampleAt(f.lastTS) }

// SampleAt draws the Bind-configured sample at time now. Panics if Bind was
// never called (the defaults would be meaningless).
func (f *FullWindow[T]) SampleAt(now int64) ([]stream.Element[T], bool) {
	if f.k <= 0 {
		panic("baseline: FullWindow.Sample before Bind")
	}
	if f.wor {
		return f.SampleWOR(now, f.k)
	}
	return f.SampleWR(now, f.k)
}

// SampleWR returns k exact uniform with-replacement samples at time now
// (now ignored for sequence windows).
func (f *FullWindow[T]) SampleWR(now int64, k int) ([]stream.Element[T], bool) {
	content := f.contents(now)
	if len(content) == 0 {
		return nil, false
	}
	out := make([]stream.Element[T], k)
	for i := range out {
		out[i] = content[f.rng.Intn(len(content))]
	}
	return out, true
}

// SampleWOR returns min(k, n) exact uniform without-replacement samples.
func (f *FullWindow[T]) SampleWOR(now int64, k int) ([]stream.Element[T], bool) {
	content := f.contents(now)
	if len(content) == 0 {
		return nil, false
	}
	if k > len(content) {
		k = len(content)
	}
	out := make([]stream.Element[T], 0, k)
	for _, j := range f.rng.PickK(len(content), k) {
		out = append(out, content[j])
	}
	return out, true
}

func (f *FullWindow[T]) contents(now int64) []stream.Element[T] {
	if f.seq != nil {
		return f.seq.Contents()
	}
	f.tsb.AdvanceTo(now)
	return f.tsb.Contents()
}

// Len returns the current number of active elements.
func (f *FullWindow[T]) Len() int {
	if f.seq != nil {
		return f.seq.Len()
	}
	return f.tsb.Len()
}

// Words implements stream.MemoryReporter: the whole window plus the four
// scalars (arrival counter, clock, and the Bind configuration) — the same
// per-scalar accounting the other baselines use.
func (f *FullWindow[T]) Words() int {
	return 4 + f.Len()*stream.StoredWords
}

// MaxWords implements stream.MemoryReporter.
func (f *FullWindow[T]) MaxWords() int { return f.maxWords }
