package baseline

import (
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// FullWindow is the store-everything strawman (the approach of Zhang, Li,
// Yu, Wang and Jiang (2005), which adapts reservoir sampling by keeping the
// window in memory): exact uniform samples — with or without replacement —
// at Θ(n) words. It doubles as a correctness oracle in tests and as the
// memory upper anchor in the E1/E3 tables.
type FullWindow[T any] struct {
	seq      *window.SeqBuffer[T] // non-nil for sequence windows
	tsb      *window.TSBuffer[T]  // non-nil for timestamp windows
	rng      *xrand.Rand
	n        uint64 // arrivals
	maxWords int
}

// NewFullWindowSeq returns a full-window sampler over a sequence-based
// window of size n.
func NewFullWindowSeq[T any](rng *xrand.Rand, n uint64) *FullWindow[T] {
	return &FullWindow[T]{seq: window.NewSeqBuffer[T](n), rng: rng.Split()}
}

// NewFullWindowTS returns a full-window sampler over a timestamp-based
// window of horizon t0.
func NewFullWindowTS[T any](rng *xrand.Rand, t0 int64) *FullWindow[T] {
	return &FullWindow[T]{tsb: window.NewTSBuffer[T](t0), rng: rng.Split()}
}

// Observe feeds the next element.
func (f *FullWindow[T]) Observe(value T, ts int64) {
	e := stream.Element[T]{Value: value, Index: f.n, TS: ts}
	if f.seq != nil {
		f.seq.Observe(e)
	} else {
		f.tsb.Observe(e)
	}
	f.n++
	if w := f.Words(); w > f.maxWords {
		f.maxWords = w
	}
}

// Count returns the number of arrivals.
func (f *FullWindow[T]) Count() uint64 { return f.n }

// SampleWR returns k exact uniform with-replacement samples at time now
// (now ignored for sequence windows).
func (f *FullWindow[T]) SampleWR(now int64, k int) ([]stream.Element[T], bool) {
	content := f.contents(now)
	if len(content) == 0 {
		return nil, false
	}
	out := make([]stream.Element[T], k)
	for i := range out {
		out[i] = content[f.rng.Intn(len(content))]
	}
	return out, true
}

// SampleWOR returns min(k, n) exact uniform without-replacement samples.
func (f *FullWindow[T]) SampleWOR(now int64, k int) ([]stream.Element[T], bool) {
	content := f.contents(now)
	if len(content) == 0 {
		return nil, false
	}
	if k > len(content) {
		k = len(content)
	}
	out := make([]stream.Element[T], 0, k)
	for _, j := range f.rng.PickK(len(content), k) {
		out = append(out, content[j])
	}
	return out, true
}

func (f *FullWindow[T]) contents(now int64) []stream.Element[T] {
	if f.seq != nil {
		return f.seq.Contents()
	}
	f.tsb.AdvanceTo(now)
	return f.tsb.Contents()
}

// Len returns the current number of active elements.
func (f *FullWindow[T]) Len() int {
	if f.seq != nil {
		return f.seq.Len()
	}
	return f.tsb.Len()
}

// Words implements stream.MemoryReporter: the whole window.
func (f *FullWindow[T]) Words() int {
	return 1 + f.Len()*stream.StoredWords
}

// MaxWords implements stream.MemoryReporter.
func (f *FullWindow[T]) MaxWords() int { return f.maxWords }
