package baseline

import (
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// chainNode is one link of a chain sampler: a retained element plus the
// index of its chosen successor.
type chainNode[T any] struct {
	st   *stream.Stored[T]
	succ uint64 // index of the successor that will replace this node
}

// chain is a single Babcock–Datar–Motwani chain sampler over a
// sequence-based window of size n.
//
// Algorithm: the t-th arrival becomes the sample with probability
// 1/min(t, n); when an element at index i is (or becomes) the latest link,
// a successor index is drawn uniformly from [i+1, i+n] and the element at
// that index is stored when it arrives, itself drawing a successor, and so
// on. When the current sample expires, the next link takes over — it is
// guaranteed to have arrived already, because the successor of index i lies
// within [i+1, i+n] and i only expires when index i+n arrives.
//
// The chain length is a random variable — the whole point of experiment E1:
// expectation O(1) per sample, but with a heavy tail across seeds.
type chain[T any] struct {
	n     uint64
	rng   *xrand.Rand
	win   window.Sequence
	nodes []chainNode[T] // nodes[0] is the current sample
	count uint64
}

func newChain[T any](rng *xrand.Rand, n uint64) *chain[T] {
	return &chain[T]{n: n, rng: rng, win: window.Sequence{N: n}}
}

func (c *chain[T]) pickSucc(i uint64) uint64 {
	return i + 1 + c.rng.Uint64n(c.n)
}

func (c *chain[T]) observe(e stream.Element[T]) {
	c.count++
	if c.count == 1 {
		c.nodes = append(c.nodes, chainNode[T]{
			st:   &stream.Stored[T]{Elem: e},
			succ: c.pickSucc(e.Index),
		})
		return
	}
	// 1. Successor bookkeeping: the only pending successor is the tail's.
	if e.Index == c.nodes[len(c.nodes)-1].succ {
		c.nodes = append(c.nodes, chainNode[T]{
			st:   &stream.Stored[T]{Elem: e},
			succ: c.pickSucc(e.Index),
		})
	}
	// 2. Either the sample expires — its successor (uniform over the new
	// window) takes over — or, exclusively, the new arrival grabs the sample
	// with probability 1/min(t, n). The two paths must be mutually
	// exclusive: the promotion path already lands uniformly on the new
	// window (mass 1/n on the newcomer included), so adding an independent
	// 1/n grab would overweight fresh elements; conversely, without the
	// grab on the non-expiry path the newcomer would only ever get the
	// 1/n² promotion mass. Combined: P(sample = newest) =
	// (1-1/n)(1/n) + (1/n)(1/n) = 1/n and every survivor keeps exactly 1/n.
	latest := e.Index
	if !c.win.Active(c.nodes[0].st.Elem.Index, latest) {
		c.nodes = c.nodes[1:]
		if len(c.nodes) == 0 {
			// Cannot happen: the successor of an expiring sample lies within
			// the n indexes after it and has therefore arrived.
			panic("baseline: chain lost its sample")
		}
		return
	}
	denom := c.count
	if denom > c.n {
		denom = c.n
	}
	if c.rng.Uint64n(denom) == 0 {
		c.nodes = c.nodes[:0]
		c.nodes = append(c.nodes, chainNode[T]{
			st:   &stream.Stored[T]{Elem: e},
			succ: c.pickSucc(e.Index),
		})
	}
}

func (c *chain[T]) sample() *stream.Stored[T] {
	if len(c.nodes) == 0 {
		return nil
	}
	return c.nodes[0].st
}

// words: each node stores an element (3) + successor index (1); plus the
// arrival counter.
func (c *chain[T]) words() int { return 1 + len(c.nodes)*(stream.StoredWords+1) }

// Chain maintains k independent chain samplers — the Babcock–Datar–Motwani
// with-replacement sampler for sequence-based windows (the E1 comparator of
// core.SeqWR).
type Chain[T any] struct {
	n        uint64
	k        int
	chains   []*chain[T]
	maxWords int
}

// NewChain returns k independent chain samplers over a window of size n.
// Panics if n == 0 or k <= 0.
func NewChain[T any](rng *xrand.Rand, n uint64, k int) *Chain[T] {
	if n == 0 {
		panic("baseline: NewChain with n == 0")
	}
	if k <= 0 {
		panic("baseline: NewChain with k <= 0")
	}
	c := &Chain[T]{n: n, k: k, chains: make([]*chain[T], k)}
	for i := range c.chains {
		c.chains[i] = newChain[T](rng.Split(), n)
	}
	c.maxWords = c.Words()
	return c
}

// Observe feeds the next element to every chain.
func (c *Chain[T]) Observe(value T, ts int64) {
	var idx uint64
	if c.k > 0 {
		idx = c.chains[0].count
	}
	e := stream.Element[T]{Value: value, Index: idx, TS: ts}
	for _, ch := range c.chains {
		ch.observe(e)
	}
	if w := c.Words(); w > c.maxWords {
		c.maxWords = w
	}
}

// ObserveBatch implements stream.Sampler via the reference loop: the chain
// baseline has no amortizable bookkeeping (every element must walk every
// chain), so there is no dedicated hot path.
func (c *Chain[T]) ObserveBatch(batch []stream.Element[T]) { stream.ObserveAll[T](c, batch) }

// Sample returns the k current samples (with replacement). ok is false
// before the first arrival.
func (c *Chain[T]) Sample() ([]stream.Element[T], bool) {
	if c.chains[0].count == 0 {
		return nil, false
	}
	out := make([]stream.Element[T], c.k)
	for i, ch := range c.chains {
		st := ch.sample()
		if st == nil {
			return nil, false
		}
		out[i] = st.Elem
	}
	return out, true
}

// K returns the number of sample copies.
func (c *Chain[T]) K() int { return c.k }

// Count returns the number of arrivals.
func (c *Chain[T]) Count() uint64 { return c.chains[0].count }

// ChainLens returns the current chain length of each copy (diagnostics for
// the E1 memory distribution table).
func (c *Chain[T]) ChainLens() []int {
	out := make([]int, c.k)
	for i, ch := range c.chains {
		out[i] = len(ch.nodes)
	}
	return out
}

// Words implements stream.MemoryReporter.
func (c *Chain[T]) Words() int {
	w := 2 // n, k
	for _, ch := range c.chains {
		w += ch.words()
	}
	return w
}

// MaxWords implements stream.MemoryReporter. Unlike the core samplers this
// peak is a RANDOM variable — the point of experiment E1.
func (c *Chain[T]) MaxWords() int { return c.maxWords }
