package baseline

import "slidingsample/internal/stream"

// Compile-time conformance to the unified sampler interfaces: every baseline
// runs behind the same stream.Sampler contract as the core samplers, which is
// what lets the experiment harness and cmd/swsample sweep substrates
// generically. The timestamp-window baselines additionally answer explicit
// "as of" queries.
var (
	_ stream.Sampler[int]      = (*Chain[int])(nil)
	_ stream.Sampler[int]      = (*Oversample[int])(nil)
	_ stream.TimedSampler[int] = (*Priority[int])(nil)
	_ stream.TimedSampler[int] = (*Skyband[int])(nil)
	_ stream.TimedSampler[int] = (*FullWindow[int])(nil)
)
