// Package baseline implements the prior algorithms the paper improves on,
// so the experiments can measure (rather than assert) the paper's headline
// contrast: deterministic versus randomized memory bounds.
//
//   - Chain — Babcock, Datar, Motwani (SODA 2002) chain sampling for
//     sequence-based windows, sampling with replacement: O(k) words expected,
//     O(k log n) with high probability, but the chain length is a random
//     variable (the paper's disadvantage (b)).
//   - Priority — Babcock, Datar, Motwani priority sampling for
//     timestamp-based windows, sampling with replacement: O(k log n) words
//     expected and w.h.p., again randomized.
//   - Skyband — Gemulla, Lehner (SIGMOD 2008 line of work) extension of
//     priority sampling to sampling without replacement: keep every element
//     dominated by fewer than k later higher-priority elements (a k-skyband);
//     expected O(k log n) words, randomized.
//   - Oversample — the over-sampling approach Babcock, Datar and Motwani
//     proposed for sampling without replacement: run c·k independent
//     with-replacement samplers and hope for k distinct non-expired values;
//     costs a multiplicative factor (disadvantage (a)) and can FAIL to
//     produce k samples (measured as failure rate in experiment E2).
//   - FullWindow — the store-everything strawman (Zhang et al., 2005 adapt
//     reservoir sampling this way): exact samples, Θ(n) words.
//
// All baselines implement the same Words/MaxWords accounting conventions as
// the core samplers (DESIGN.md §6: a stored priority costs 1 word, a
// counter 1 word), so the memory tables in cmd/swbench compare like with
// like.
package baseline
