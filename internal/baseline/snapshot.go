package baseline

import (
	"io"

	"slidingsample/internal/snap"
	"slidingsample/internal/window"
)

// Snapshot kind tags.
const (
	kindChain      = "baseline.Chain"
	kindOversample = "baseline.Oversample"
	kindPriority   = "baseline.Priority"
	kindSkyband    = "baseline.Skyband"
	kindFullWindow = "baseline.FullWindow"
)

// The decoders construct structs directly (never via New*): construction
// splits generators that the snapshot already carries, and decoders must
// return errors where constructors panic. See internal/core/snapshot.go.

// ---------------------------------------------------------------------------
// Chain / Oversample
// ---------------------------------------------------------------------------

func encodeChain[T any](w *snap.Writer, c *chain[T]) {
	w.U64(c.n)
	snap.WriteRand(w, c.rng)
	w.U64(c.count)
	w.Len(len(c.nodes))
	for _, nd := range c.nodes {
		snap.WriteStored(w, nd.st)
		w.U64(nd.succ)
	}
}

func decodeChain[T any](r *snap.Reader) *chain[T] {
	c := &chain[T]{}
	c.n = r.U64()
	c.rng = snap.ReadRand(r)
	c.count = r.U64()
	if r.Err() != nil {
		return c
	}
	if c.n == 0 || c.rng == nil {
		r.Failf("baseline.chain with n %d", c.n)
		return c
	}
	c.win = window.Sequence{N: c.n}
	n := r.Len(-1)
	c.nodes = make([]chainNode[T], 0, snap.CapHint(n))
	for i := 0; i < n && r.Err() == nil; i++ {
		st := snap.ReadStored[T](r)
		succ := r.U64()
		if st == nil && r.Err() == nil {
			r.Failf("baseline.chain with nil node")
			break
		}
		c.nodes = append(c.nodes, chainNode[T]{st: st, succ: succ})
	}
	return c
}

// Snapshot writes the sampler's full state (header included) to w.
func (c *Chain[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindChain)
	encodeChainTop(sw, c)
	return sw.Err()
}

func encodeChainTop[T any](w *snap.Writer, c *Chain[T]) {
	w.U64(c.n)
	w.Int(c.k)
	w.Int(c.maxWords)
	for _, ch := range c.chains {
		encodeChain(w, ch)
	}
}

// RestoreChain reads a Chain snapshot written by Snapshot.
func RestoreChain[T any](r io.Reader) (*Chain[T], error) {
	sr, err := snap.NewReader(r, kindChain)
	if err != nil {
		return nil, err
	}
	c := decodeChainTop[T](sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

func decodeChainTop[T any](r *snap.Reader) *Chain[T] {
	c := &Chain[T]{}
	c.n = r.U64()
	c.k = r.Int()
	c.maxWords = r.Int()
	if r.Err() != nil {
		return c
	}
	if c.n == 0 || c.k <= 0 || c.k > snap.MaxParam {
		r.Failf("baseline.Chain with n %d, k %d", c.n, c.k)
		return c
	}
	c.chains = make([]*chain[T], c.k)
	for i := 0; i < c.k && r.Err() == nil; i++ {
		c.chains[i] = decodeChain[T](r)
	}
	return c
}

// Snapshot writes the sampler's full state (header included) to w.
func (o *Oversample[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindOversample)
	sw.U64(o.n)
	sw.Int(o.k)
	sw.Int(o.factor)
	snap.WriteRand(sw, o.rng)
	sw.U64(o.failures)
	sw.U64(o.queries)
	encodeChainTop(sw, o.inner)
	return sw.Err()
}

// RestoreOversample reads an Oversample snapshot written by Snapshot.
func RestoreOversample[T any](r io.Reader) (*Oversample[T], error) {
	sr, err := snap.NewReader(r, kindOversample)
	if err != nil {
		return nil, err
	}
	o := &Oversample[T]{}
	o.n = sr.U64()
	o.k = sr.Int()
	o.factor = sr.Int()
	o.rng = snap.ReadRand(sr)
	o.failures = sr.U64()
	o.queries = sr.U64()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if o.k <= 0 || o.factor < 1 || o.rng == nil {
		return nil, snap.Errorf("baseline.Oversample with k %d, factor %d", o.k, o.factor)
	}
	o.inner = decodeChainTop[T](sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return o, nil
}

// ---------------------------------------------------------------------------
// Priority / Skyband
// ---------------------------------------------------------------------------

// Snapshot writes the sampler's full state (header included) to w.
func (p *Priority[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindPriority)
	sw.I64(p.t0)
	sw.Int(p.k)
	sw.U64(p.count)
	sw.I64(p.now)
	sw.Int(p.maxWords)
	for _, c := range p.copies {
		snap.WriteRand(sw, c.rng)
		sw.Len(len(c.nodes))
		for _, nd := range c.nodes {
			snap.WriteStored(sw, nd.st)
			sw.U64(nd.prio)
		}
	}
	return sw.Err()
}

// RestorePriority reads a Priority snapshot written by Snapshot.
func RestorePriority[T any](r io.Reader) (*Priority[T], error) {
	sr, err := snap.NewReader(r, kindPriority)
	if err != nil {
		return nil, err
	}
	p := &Priority[T]{}
	p.t0 = sr.I64()
	p.k = sr.Int()
	p.count = sr.U64()
	p.now = sr.I64()
	p.maxWords = sr.Int()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if p.t0 <= 0 || p.k <= 0 || p.k > snap.MaxParam {
		return nil, snap.Errorf("baseline.Priority with t0 %d, k %d", p.t0, p.k)
	}
	p.copies = make([]*prio[T], p.k)
	for i := 0; i < p.k && sr.Err() == nil; i++ {
		c := &prio[T]{w: window.Timestamp{T0: p.t0}}
		c.rng = snap.ReadRand(sr)
		if sr.Err() == nil && c.rng == nil {
			sr.Failf("baseline.prio missing rng")
			break
		}
		n := sr.Len(-1)
		c.nodes = make([]prioNode[T], 0, snap.CapHint(n))
		for j := 0; j < n && sr.Err() == nil; j++ {
			st := snap.ReadStored[T](sr)
			pr := sr.U64()
			if st == nil && sr.Err() == nil {
				sr.Failf("baseline.prio with nil node")
				break
			}
			c.nodes = append(c.nodes, prioNode[T]{st: st, prio: pr})
		}
		p.copies[i] = c
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// Snapshot writes the sampler's full state (header included) to w.
func (s *Skyband[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindSkyband)
	sw.I64(s.t0)
	sw.Int(s.k)
	snap.WriteRand(sw, s.rng)
	sw.U64(s.count)
	sw.I64(s.now)
	sw.Int(s.maxWords)
	sw.Len(len(s.nodes))
	for _, nd := range s.nodes {
		snap.WriteStored(sw, nd.st)
		sw.U64(nd.prio)
		sw.Int(nd.dominated)
	}
	return sw.Err()
}

// RestoreSkyband reads a Skyband snapshot written by Snapshot.
func RestoreSkyband[T any](r io.Reader) (*Skyband[T], error) {
	sr, err := snap.NewReader(r, kindSkyband)
	if err != nil {
		return nil, err
	}
	s := &Skyband[T]{}
	s.t0 = sr.I64()
	s.k = sr.Int()
	s.rng = snap.ReadRand(sr)
	s.count = sr.U64()
	s.now = sr.I64()
	s.maxWords = sr.Int()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if s.t0 <= 0 || s.k <= 0 || s.rng == nil {
		return nil, snap.Errorf("baseline.Skyband with t0 %d, k %d", s.t0, s.k)
	}
	s.w = window.Timestamp{T0: s.t0}
	n := sr.Len(-1)
	s.nodes = make([]skyNode[T], 0, snap.CapHint(n))
	for i := 0; i < n && sr.Err() == nil; i++ {
		st := snap.ReadStored[T](sr)
		prio := sr.U64()
		dominated := sr.Int()
		if st == nil && sr.Err() == nil {
			sr.Failf("baseline.Skyband with nil node")
			break
		}
		s.nodes = append(s.nodes, skyNode[T]{st: st, prio: prio, dominated: dominated})
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// FullWindow
// ---------------------------------------------------------------------------

// Snapshot writes the sampler's full state (header included) to w. The
// whole window content rides along — this is the store-everything
// baseline, its snapshot is Θ(n) by construction.
func (f *FullWindow[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindFullWindow)
	snap.WriteRand(sw, f.rng)
	sw.U64(f.n)
	sw.I64(f.lastTS)
	sw.Int(f.k)
	sw.Bool(f.wor)
	sw.Int(f.maxWords)
	window.EncodeSeqBuffer(sw, f.seq)
	window.EncodeTSBuffer(sw, f.tsb)
	return sw.Err()
}

// RestoreFullWindow reads a FullWindow snapshot written by Snapshot.
func RestoreFullWindow[T any](r io.Reader) (*FullWindow[T], error) {
	sr, err := snap.NewReader(r, kindFullWindow)
	if err != nil {
		return nil, err
	}
	f := &FullWindow[T]{}
	f.rng = snap.ReadRand(sr)
	f.n = sr.U64()
	f.lastTS = sr.I64()
	f.k = sr.Int()
	f.wor = sr.Bool()
	f.maxWords = sr.Int()
	f.seq = window.DecodeSeqBuffer[T](sr)
	f.tsb = window.DecodeTSBuffer[T](sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if f.rng == nil {
		return nil, snap.Errorf("baseline.FullWindow missing rng")
	}
	if (f.seq == nil) == (f.tsb == nil) {
		return nil, snap.Errorf("baseline.FullWindow needs exactly one buffer")
	}
	return f, nil
}
