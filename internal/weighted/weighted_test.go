package weighted

import (
	"math"
	"sort"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// testWeight is the deterministic weight law used across the tests: values
// map to small distinct-ish positive weights.
func testWeight(v uint64) float64 { return float64(v%5) + 1 }

// feed pushes m arrivals (value i at a bursty timestamp) into s.
func feed(s stream.Sampler[uint64], m int) {
	for i := 0; i < m; i++ {
		s.Observe(uint64(i), int64(i/3))
	}
}

// windowContents materializes the exact window (ground truth) for m
// arrivals of the canonical test stream over a window of size n.
func windowContents(n uint64, m int) []stream.Element[uint64] {
	buf := window.NewSeqBuffer[uint64](n)
	for i := 0; i < m; i++ {
		buf.Observe(stream.Element[uint64]{Value: uint64(i), Index: uint64(i), TS: int64(i / 3)})
	}
	return buf.Contents()
}

// TestWORMatchesBruteForceLaw is the distribution-correctness conformance
// test the substrate is admitted on: the WOR sampler's ORDERED k-sample over
// the window must match (in total-variation distance) both
//
//   - a brute-force Efraimidis–Spirakis sampler over the exact window
//     contents from window.SeqBuffer (draw a fresh key per active element,
//     take the top-k), and
//   - the closed-form successive-sampling law
//     P(i1, i2) = w1/W · w2/(W - w1).
//
// Everything is seeded, so the observed TV distances are reproducible.
func TestWORMatchesBruteForceLaw(t *testing.T) {
	const (
		n      = 8
		k      = 2
		m      = 19 // window = arrivals 11..18: crosses several expiries
		trials = 60000
	)
	win := windowContents(n, m)
	if len(win) != n {
		t.Fatalf("ground-truth window has %d elements, want %d", len(win), n)
	}

	// Closed-form ordered-pair law over the window.
	W := 0.0
	for _, e := range win {
		W += testWeight(e.Value)
	}
	exact := map[[2]uint64]float64{}
	for _, a := range win {
		wa := testWeight(a.Value)
		for _, b := range win {
			if a.Index == b.Index {
				continue
			}
			exact[[2]uint64{a.Index, b.Index}] = wa / W * testWeight(b.Value) / (W - wa)
		}
	}

	// Empirical law of the sliding sampler.
	sampler := map[[2]uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewWOR[uint64](xrand.New(uint64(tr)+1), n, k, testWeight)
		feed(s, m)
		got, ok := s.Sample()
		if !ok || len(got) != k {
			t.Fatalf("trial %d: ok=%v len=%d", tr, ok, len(got))
		}
		sampler[[2]uint64{got[0].Index, got[1].Index}]++
	}

	// Empirical law of the brute-force ES sampler over the same window.
	brute := map[[2]uint64]int{}
	br := xrand.New(987654321)
	keys := make([]float64, len(win))
	order := make([]int, len(win))
	for tr := 0; tr < trials; tr++ {
		for i, e := range win {
			u := br.Float64()
			for u == 0 {
				u = br.Float64()
			}
			keys[i] = math.Log(u) / testWeight(e.Value)
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return keys[order[a]] > keys[order[b]] })
		brute[[2]uint64{win[order[0]].Index, win[order[1]].Index}]++
	}

	tv := func(emp map[[2]uint64]int) float64 {
		d := 0.0
		for pair, p := range exact {
			d += math.Abs(p - float64(emp[pair])/trials)
		}
		for pair, c := range emp {
			if _, known := exact[pair]; !known {
				t.Fatalf("sampled pair %v outside the window law support", pair)
			}
			_ = c
		}
		return d / 2
	}
	if d := tv(sampler); d > 0.05 {
		t.Errorf("sampler vs closed-form law: TV = %.4f > 0.05", d)
	}
	if d := tv(brute); d > 0.05 {
		t.Errorf("brute force vs closed-form law: TV = %.4f > 0.05 (test harness broken)", d)
	}
	// Sampler vs brute force directly (two empiricals of the same law).
	d := 0.0
	seen := map[[2]uint64]bool{}
	for pair := range exact {
		seen[pair] = true
		d += math.Abs(float64(sampler[pair])-float64(brute[pair])) / trials
	}
	if d /= 2; d > 0.06 {
		t.Errorf("sampler vs brute force: TV = %.4f > 0.06", d)
	}
}

// TestWRInclusionLaw checks the with-replacement law: each slot returns
// element i with probability w_i / W(window), independently per slot.
func TestWRInclusionLaw(t *testing.T) {
	const (
		n      = 8
		k      = 3
		m      = 19
		trials = 40000
	)
	win := windowContents(n, m)
	W := 0.0
	for _, e := range win {
		W += testWeight(e.Value)
	}
	counts := map[uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewWR[uint64](xrand.New(uint64(tr)+1), n, k, testWeight)
		feed(s, m)
		got, ok := s.Sample()
		if !ok || len(got) != k {
			t.Fatalf("trial %d: ok=%v len=%d", tr, ok, len(got))
		}
		for _, e := range got {
			counts[e.Index]++
		}
	}
	draws := float64(trials * k)
	for _, e := range win {
		p := testWeight(e.Value) / W
		got := float64(counts[e.Index]) / draws
		// 5 sigma on a binomial proportion.
		tol := 5 * math.Sqrt(p*(1-p)/draws)
		if math.Abs(got-p) > tol {
			t.Errorf("index %d: inclusion %.4f, want %.4f ± %.4f", e.Index, got, p, tol)
		}
	}
	for idx := range counts {
		found := false
		for _, e := range win {
			if e.Index == idx {
				found = true
			}
		}
		if !found {
			t.Errorf("sampled expired index %d", idx)
		}
	}
}

// TestBatchLoopIdentical: the batched hot paths must be sample-path
// identical to looped Observe under equal seeds, including the memory
// accounting (the repository-wide PR-1 contract; the root conformance
// battery re-checks this through the unified interface).
func TestBatchLoopIdentical(t *testing.T) {
	const m = 3000
	sizes := []int{1, 9, 128, 3, 301, 1, 64}
	mk := map[string]func(r *xrand.Rand) stream.Sampler[uint64]{
		"WOR": func(r *xrand.Rand) stream.Sampler[uint64] { return NewWOR[uint64](r, 256, 7, testWeight) },
		"WR":  func(r *xrand.Rand) stream.Sampler[uint64] { return NewWR[uint64](r, 256, 7, testWeight) },
	}
	for name, make := range mk {
		t.Run(name, func(t *testing.T) {
			loop := make(xrand.New(42))
			batch := make(xrand.New(42))
			for i := 0; i < m; i++ {
				loop.Observe(uint64(i), int64(i/3))
			}
			var buf []stream.Element[uint64]
			for i, si := 0, 0; i < m; si++ {
				sz := sizes[si%len(sizes)]
				if i+sz > m {
					sz = m - i
				}
				buf = buf[:0]
				for j := 0; j < sz; j++ {
					buf = append(buf, stream.Element[uint64]{Value: uint64(i + j), TS: int64((i + j) / 3)})
				}
				batch.ObserveBatch(buf)
				i += sz
			}
			if loop.Count() != batch.Count() || loop.Words() != batch.Words() || loop.MaxWords() != batch.MaxWords() {
				t.Fatalf("state diverged: count %d/%d words %d/%d max %d/%d",
					loop.Count(), batch.Count(), loop.Words(), batch.Words(), loop.MaxWords(), batch.MaxWords())
			}
			la, lok := loop.Sample()
			ba, bok := batch.Sample()
			if lok != bok || len(la) != len(ba) {
				t.Fatalf("sample shape diverged")
			}
			for i := range la {
				if la[i] != ba[i] {
					t.Fatalf("slot %d diverged: %+v vs %+v", i, la[i], ba[i])
				}
			}
		})
	}
}

// TestWORInvariants: window membership, distinctness, warm-up shape, and the
// expected O(k log n) retained-set size staying within a loose bound.
func TestWORInvariants(t *testing.T) {
	const n, k, m = 512, 8, 40000
	s := NewWOR[uint64](xrand.New(7), n, k, testWeight)
	for i := 0; i < m; i++ {
		s.Observe(uint64(i), int64(i))
		if i == 3 {
			got, ok := s.Sample()
			if !ok || len(got) != 4 {
				t.Fatalf("warm-up sample: ok=%v len=%d, want whole window of 4", ok, len(got))
			}
		}
	}
	got, ok := s.Sample()
	if !ok || len(got) != k {
		t.Fatalf("sample: ok=%v len=%d", ok, len(got))
	}
	seen := map[uint64]bool{}
	for _, e := range got {
		if e.Index < m-n || e.Index >= m {
			t.Errorf("index %d outside window [%d, %d)", e.Index, m-n, m)
		}
		if seen[e.Index] {
			t.Errorf("duplicate index %d in WOR sample", e.Index)
		}
		seen[e.Index] = true
	}
	// Items are in decreasing key order with sane weights.
	items, _ := s.Items()
	for i := 1; i < len(items); i++ {
		if items[i].LogKey > items[i-1].LogKey {
			t.Fatalf("items out of key order at %d", i)
		}
	}
	for _, it := range items {
		if it.Weight != testWeight(it.Elem.Value) {
			t.Errorf("item weight %v, want %v", it.Weight, testWeight(it.Elem.Value))
		}
	}
	// Retained set: expected ~ k(1 + ln(n/k)) ≈ 41; 8x slack keeps this a
	// structural bound, not a flake.
	bound := 8 * k * (1 + int(math.Log(float64(n))))
	if r := s.Retained(); r > bound {
		t.Errorf("retained %d nodes, loose bound %d", r, bound)
	}
	if s.MaxWords() > 3+bound*NodeWords {
		t.Errorf("peak %d words above loose bound", s.MaxWords())
	}
}

// TestSkybandEvictionReleasesPayloads is the leak regression for the
// skyband's in-place maintenance: both eviction paths — domination drops
// during the walk and front expiry's shift — previously left the evicted
// nodes' values live in the slice's spare capacity, pinning expired element
// payloads (large strings, slices) for the sampler's lifetime. After
// feeding far more than a window of pointer payloads, every slot beyond
// len(nodes) up to the retained capacity must be zero.
func TestSkybandEvictionReleasesPayloads(t *testing.T) {
	const n, k, m = 32, 3, 4096
	s := NewWOR[*[]byte](xrand.New(2), n, k, func(*[]byte) float64 { return 1 })
	for i := 0; i < m; i++ {
		p := make([]byte, 1<<10)
		s.Observe(&p, int64(i))
	}
	live := map[*[]byte]bool{}
	for _, nd := range s.sky.nodes {
		live[nd.elem.Value] = true
	}
	full := s.sky.nodes[:cap(s.sky.nodes)]
	for i := len(s.sky.nodes); i < len(full); i++ {
		if v := full[i].elem.Value; v != nil && !live[v] {
			t.Fatalf("slack slot %d still pins an evicted payload (retained %d, cap %d)",
				i, len(s.sky.nodes), cap(s.sky.nodes))
		}
	}
	// The same discipline holds inside every WR instance.
	wr := NewWR[*[]byte](xrand.New(3), n, k, func(*[]byte) float64 { return 1 })
	for i := 0; i < m; i++ {
		p := make([]byte, 1<<10)
		wr.Observe(&p, int64(i))
	}
	for j := range wr.insts {
		nodes := wr.insts[j].nodes
		full := nodes[:cap(nodes)]
		for i := len(nodes); i < len(full); i++ {
			if full[i].elem.Value != nil {
				t.Fatalf("instance %d slack slot %d still pins an evicted payload", j, i)
			}
		}
	}
}

// TestWeightPanics: a non-positive or infinite weight is programmer error.
func TestWeightPanics(t *testing.T) {
	for name, bad := range map[string]float64{"zero": 0, "negative": -1, "inf": math.Inf(1), "nan": math.NaN()} {
		t.Run(name, func(t *testing.T) {
			w := bad
			s := NewWOR[uint64](xrand.New(1), 8, 2, func(uint64) float64 { return w })
			defer func() {
				if recover() == nil {
					t.Fatal("bad weight did not panic")
				}
			}()
			s.Observe(1, 0)
		})
	}
}
