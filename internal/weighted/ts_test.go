package weighted

import (
	"math"
	"sort"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// tsPattern is one timestamp-stream shape the distribution battery runs
// over: the arrival timestamps, the horizon, and the query time (which may
// lie past the last arrival — query-time expiry is part of the law).
type tsPattern struct {
	name string
	t0   int64
	ts   []int64
	now  int64
}

// tsPatterns returns the three adversarial shapes the tentpole is admitted
// on: bursty (many arrivals per tick), gapped (idle stretches plus a query
// past the last arrival), and a stream starting next to MinInt64 (the
// overflow-safe Timestamp comparison must carry the law unchanged).
func tsPatterns() []tsPattern {
	bursty := make([]int64, 30)
	for i := range bursty {
		bursty[i] = int64(i / 3)
	}
	gapped := []int64{0, 0, 10, 10, 11, 13, 20, 21, 21, 22, 25}
	const min = math.MinInt64
	nearMin := make([]int64, 12)
	for i := range nearMin {
		nearMin[i] = min + int64(i)
	}
	return []tsPattern{
		{name: "bursty", t0: 3, ts: bursty, now: 9},
		{name: "gapped", t0: 10, ts: gapped, now: 28}, // 3 ticks past the last arrival
		{name: "minint64", t0: 8, ts: nearMin, now: min + 11},
	}
}

// tsWindow materializes the exact active window of a pattern (ground truth
// from window.TSBuffer, advanced to the query time).
func tsWindow(p tsPattern) []stream.Element[uint64] {
	buf := window.NewTSBuffer[uint64](p.t0)
	for i, ts := range p.ts {
		buf.Observe(stream.Element[uint64]{Value: uint64(i), Index: uint64(i), TS: ts})
	}
	buf.AdvanceTo(p.now)
	return buf.Contents()
}

// TestTSWORMatchesBruteForceLaw is the distribution-correctness conformance
// test the timestamp substrate is admitted on: over each timestamp pattern,
// the TSWOR sampler's ORDERED 2-sample at the query time must match (in
// total-variation distance) both a brute-force Efraimidis–Spirakis sampler
// over the exact TSBuffer window contents and the closed-form
// successive-sampling law P(i1, i2) = w1/W · w2/(W - w1).
func TestTSWORMatchesBruteForceLaw(t *testing.T) {
	const (
		k      = 2
		trials = 40000
	)
	for _, p := range tsPatterns() {
		t.Run(p.name, func(t *testing.T) {
			win := tsWindow(p)
			if len(win) < 4 {
				t.Fatalf("pattern too small: window has %d elements", len(win))
			}
			W := 0.0
			for _, e := range win {
				W += testWeight(e.Value)
			}
			exact := map[[2]uint64]float64{}
			for _, a := range win {
				wa := testWeight(a.Value)
				for _, b := range win {
					if a.Index == b.Index {
						continue
					}
					exact[[2]uint64{a.Index, b.Index}] = wa / W * testWeight(b.Value) / (W - wa)
				}
			}

			// Empirical law of the sliding sampler, queried at p.now.
			sampler := map[[2]uint64]int{}
			for tr := 0; tr < trials; tr++ {
				s := NewTSWOR[uint64](xrand.New(uint64(tr)+1), p.t0, k, 0.05, testWeight)
				for i, ts := range p.ts {
					s.Observe(uint64(i), ts)
				}
				got, ok := s.SampleAt(p.now)
				if !ok || len(got) != k {
					t.Fatalf("trial %d: ok=%v len=%d", tr, ok, len(got))
				}
				sampler[[2]uint64{got[0].Index, got[1].Index}]++
			}

			// Empirical law of brute-force ES over the same window.
			brute := map[[2]uint64]int{}
			br := xrand.New(192837465)
			keys := make([]float64, len(win))
			order := make([]int, len(win))
			for tr := 0; tr < trials; tr++ {
				for i, e := range win {
					keys[i] = drawLogKey(br, testWeight(e.Value))
					order[i] = i
				}
				sort.Slice(order, func(a, b int) bool { return keys[order[a]] > keys[order[b]] })
				brute[[2]uint64{win[order[0]].Index, win[order[1]].Index}]++
			}

			tv := func(emp map[[2]uint64]int) float64 {
				d := 0.0
				for pair, pr := range exact {
					d += math.Abs(pr - float64(emp[pair])/trials)
				}
				for pair := range emp {
					if _, known := exact[pair]; !known {
						t.Fatalf("sampled pair %v outside the window law support", pair)
					}
				}
				return d / 2
			}
			if d := tv(sampler); d > 0.05 {
				t.Errorf("sampler vs closed-form law: TV = %.4f > 0.05", d)
			}
			if d := tv(brute); d > 0.05 {
				t.Errorf("brute force vs closed-form law: TV = %.4f > 0.05 (test harness broken)", d)
			}
			d := 0.0
			for pair := range exact {
				d += math.Abs(float64(sampler[pair])-float64(brute[pair])) / trials
			}
			if d /= 2; d > 0.06 {
				t.Errorf("sampler vs brute force: TV = %.4f > 0.06", d)
			}
		})
	}
}

// TestTSWRInclusionLaw checks the with-replacement law on the gapped
// pattern: each slot returns active element i with probability w_i / W at
// the query time, and never an expired element.
func TestTSWRInclusionLaw(t *testing.T) {
	const (
		k      = 3
		trials = 30000
	)
	p := tsPatterns()[1] // gapped: includes query-time expiry past the last arrival
	win := tsWindow(p)
	W := 0.0
	active := map[uint64]bool{}
	for _, e := range win {
		W += testWeight(e.Value)
		active[e.Index] = true
	}
	counts := map[uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewTSWR[uint64](xrand.New(uint64(tr)+1), p.t0, k, 0.05, testWeight)
		for i, ts := range p.ts {
			s.Observe(uint64(i), ts)
		}
		got, ok := s.SampleAt(p.now)
		if !ok || len(got) != k {
			t.Fatalf("trial %d: ok=%v len=%d", tr, ok, len(got))
		}
		for _, e := range got {
			if !active[e.Index] {
				t.Fatalf("trial %d: sampled expired index %d", tr, e.Index)
			}
			counts[e.Index]++
		}
	}
	draws := float64(trials * k)
	for _, e := range win {
		pr := testWeight(e.Value) / W
		got := float64(counts[e.Index]) / draws
		tol := 5 * math.Sqrt(pr*(1-pr)/draws) // 5 sigma on a binomial proportion
		if math.Abs(got-pr) > tol {
			t.Errorf("index %d: inclusion %.4f, want %.4f ± %.4f", e.Index, got, pr, tol)
		}
	}
}

// TestTSQueryTimeExpiryMatchesBuffer: after the last arrival the clock
// keeps moving by queries alone, and Items must track TSBuffer ground truth
// exactly — |sample| = min(k, n(t)), every sampled element active, the
// sample EQUAL to the window once n(t) <= k, and ok=false once the window
// drains. This is the "arrivals no longer bound the clock" half of the
// tentpole, for both samplers.
func TestTSQueryTimeExpiryMatchesBuffer(t *testing.T) {
	const (
		t0 = 50
		k  = 6
		m  = 200
	)
	wor := NewTSWOR[uint64](xrand.New(9), t0, k, 0.05, testWeight)
	wr := NewTSWR[uint64](xrand.New(10), t0, k, 0.05, testWeight)
	truth := window.NewTSBuffer[uint64](t0)
	rng := xrand.New(11)
	ts := int64(0)
	for i := 0; i < m; i++ {
		if rng.Uint64n(3) == 0 {
			ts += int64(rng.Uint64n(4))
		}
		wor.Observe(uint64(i), ts)
		wr.Observe(uint64(i), ts)
		truth.Observe(stream.Element[uint64]{Value: uint64(i), Index: uint64(i), TS: ts})
	}
	// Pure clock advancement: tick past the last arrival until everything
	// has expired, checking against ground truth at every step.
	for now := ts; now <= ts+t0+2; now++ {
		truth.AdvanceTo(now)
		active := map[uint64]stream.Element[uint64]{}
		for _, e := range truth.Contents() {
			active[e.Index] = e
		}
		n := len(active)

		items, ok := wor.ItemsAt(now)
		if ok != (n > 0) {
			t.Fatalf("now=%d: WOR ok=%v with n(t)=%d", now, ok, n)
		}
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(items) != wantLen {
			t.Fatalf("now=%d: WOR |sample|=%d, want min(k,n)=%d", now, len(items), wantLen)
		}
		for _, it := range items {
			if _, live := active[it.Elem.Index]; !live {
				t.Fatalf("now=%d: WOR sampled expired index %d", now, it.Elem.Index)
			}
		}
		if n <= k {
			// Exhaustive regime: the sample IS the window.
			got := map[uint64]bool{}
			for _, it := range items {
				got[it.Elem.Index] = true
			}
			for idx := range active {
				if !got[idx] {
					t.Fatalf("now=%d: WOR missing active index %d in exhaustive regime", now, idx)
				}
			}
		}

		draws, ok := wr.ItemsAt(now)
		if ok != (n > 0) {
			t.Fatalf("now=%d: WR ok=%v with n(t)=%d", now, ok, n)
		}
		if ok {
			if len(draws) != k {
				t.Fatalf("now=%d: WR |sample|=%d, want k=%d", now, len(draws), k)
			}
			for _, it := range draws {
				if _, live := active[it.Elem.Index]; !live {
					t.Fatalf("now=%d: WR sampled expired index %d", now, it.Elem.Index)
				}
			}
		}
	}
}

// TestTSWORRetainedBound is the property test for the tentpole's memory
// claim: under adversarial timestamp bursts (B arrivals per tick, so n(t)
// jumps by B at once, followed by total-expiry gaps) the retained-set size
// stays O(k·log n) in expectation. The bound is checked on the mean across
// seeded runs — the retained size is a random variable; the expectation is
// what the harmonic argument bounds — with the same 8x slack the sequence
// substrate uses.
func TestTSWORRetainedBound(t *testing.T) {
	const (
		t0    = 16
		k     = 8
		burst = 512
		runs  = 20
	)
	n := float64(t0 * burst) // peak active count
	expect := float64(k) * (1 + math.Log(n/float64(k)))
	bound := 8 * expect
	sum, checks := 0.0, 0
	for run := 0; run < runs; run++ {
		s := NewTSWOR[uint64](xrand.New(uint64(run)+1), t0, k, 0.05, testWeight)
		v := uint64(0)
		for cycle := 0; cycle < 3; cycle++ {
			base := int64(cycle) * (t0 * 4)
			for tick := int64(0); tick < t0*2; tick++ { // fill, then slide at full width
				for b := 0; b < burst; b++ {
					s.Observe(v, base+tick)
					v++
				}
				sum += float64(s.Retained())
				checks++
			}
			// Gap: everything expires before the next cycle begins.
		}
	}
	mean := sum / float64(checks)
	if mean > bound {
		t.Errorf("mean retained %.1f nodes above 8x expectation bound %.1f (E ≈ %.1f)", mean, bound, expect)
	}
}

// TestTSBatchLoopIdentical: the batched hot paths must be sample-path
// identical to looped Observe under equal seeds, including memory
// accounting and the embedded counter.
func TestTSBatchLoopIdentical(t *testing.T) {
	const m = 3000
	sizes := []int{1, 9, 128, 3, 301, 1, 64}
	mk := map[string]func(r *xrand.Rand) stream.Sampler[uint64]{
		"TSWOR": func(r *xrand.Rand) stream.Sampler[uint64] { return NewTSWOR[uint64](r, 40, 7, 0.05, testWeight) },
		"TSWR":  func(r *xrand.Rand) stream.Sampler[uint64] { return NewTSWR[uint64](r, 40, 7, 0.05, testWeight) },
	}
	for name, make := range mk {
		t.Run(name, func(t *testing.T) {
			loop := make(xrand.New(42))
			batch := make(xrand.New(42))
			for i := 0; i < m; i++ {
				loop.Observe(uint64(i), int64(i/3))
			}
			var buf []stream.Element[uint64]
			for i, si := 0, 0; i < m; si++ {
				sz := sizes[si%len(sizes)]
				if i+sz > m {
					sz = m - i
				}
				buf = buf[:0]
				for j := 0; j < sz; j++ {
					buf = append(buf, stream.Element[uint64]{Value: uint64(i + j), TS: int64((i + j) / 3)})
				}
				batch.ObserveBatch(buf)
				i += sz
			}
			if loop.Count() != batch.Count() || loop.Words() != batch.Words() || loop.MaxWords() != batch.MaxWords() {
				t.Fatalf("state diverged: count %d/%d words %d/%d max %d/%d",
					loop.Count(), batch.Count(), loop.Words(), batch.Words(), loop.MaxWords(), batch.MaxWords())
			}
			la, lok := loop.Sample()
			ba, bok := batch.Sample()
			if lok != bok || len(la) != len(ba) {
				t.Fatalf("sample shape diverged")
			}
			for i := range la {
				if la[i] != ba[i] {
					t.Fatalf("slot %d diverged: %+v vs %+v", i, la[i], ba[i])
				}
			}
		})
	}
}

// TestTSSizeAt: the embedded counter reports n(t) within its (1±eps) bound
// against TSBuffer ground truth, including at query times past the last
// arrival, and never above the arrival count.
func TestTSSizeAt(t *testing.T) {
	const (
		t0  = 64
		k   = 4
		m   = 5000
		eps = 0.1
	)
	s := NewTSWOR[uint64](xrand.New(3), t0, k, eps, testWeight)
	truth := window.NewTSBuffer[uint64](t0)
	rng := xrand.New(4)
	ts := int64(0)
	for i := 0; i < m; i++ {
		if rng.Uint64n(4) == 0 {
			ts += int64(rng.Uint64n(7))
		}
		s.Observe(uint64(i), ts)
		truth.Observe(stream.Element[uint64]{Value: uint64(i), Index: uint64(i), TS: ts})
		if i%17 != 0 {
			continue
		}
		probe := ts + int64(rng.Uint64n(t0/2))
		probeTruth := window.NewTSBuffer[uint64](t0)
		for _, e := range truth.Contents() {
			probeTruth.Observe(e)
		}
		probeTruth.AdvanceTo(probe)
		got, want := float64(s.SizeAt(probe)), float64(probeTruth.Len())
		if want == 0 {
			if got != 0 {
				t.Fatalf("step %d: SizeAt=%.0f on an empty window", i, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > eps+1e-9 {
			t.Fatalf("step %d: SizeAt=%.0f vs n(t)=%.0f (rel %.3f > %.2f)", i, got, want, rel, eps)
		}
	}
}

// TestTSFreshQueryDoesNotPinClock: Items/Sample on a sampler that has seen
// no arrival must report ok=false WITHOUT committing a clock, so the
// stream may still start at any timestamp — including negative ones
// (estimator layers like apps.SubsetSumTS query through Items directly,
// with no public wrapper guarding them).
func TestTSFreshQueryDoesNotPinClock(t *testing.T) {
	wor := NewTSWOR[uint64](xrand.New(1), 100, 4, 0.05, testWeight)
	if _, ok := wor.Items(); ok {
		t.Fatal("items from empty sampler")
	}
	if _, ok := wor.SampleAt(50); ok {
		t.Fatal("sample from empty sampler")
	}
	wor.Observe(1, -10) // must not panic "time went backwards"
	if got, ok := wor.Sample(); !ok || len(got) != 1 || got[0].TS != -10 {
		t.Fatalf("negative-start stream after fresh queries: ok=%v %+v", ok, got)
	}
	wr := NewTSWR[uint64](xrand.New(2), 100, 4, 0.05, testWeight)
	if _, ok := wr.Sample(); ok {
		t.Fatal("sample from empty sampler")
	}
	wr.Observe(1, -10)
	if _, ok := wr.Sample(); !ok {
		t.Fatal("no sample after negative start")
	}
}

// TestTSWeightAndParamPanics: constructor and weight validation match the
// internal panic convention.
func TestTSWeightAndParamPanics(t *testing.T) {
	ok1 := func(uint64) float64 { return 1 }
	for name, fn := range map[string]func(){
		"t0":       func() { NewTSWOR[uint64](xrand.New(1), 0, 2, 0.05, ok1) },
		"k":        func() { NewTSWOR[uint64](xrand.New(1), 8, 0, 0.05, ok1) },
		"eps":      func() { NewTSWOR[uint64](xrand.New(1), 8, 2, 1.5, ok1) },
		"weight":   func() { NewTSWOR[uint64](xrand.New(1), 8, 2, 0.05, nil) },
		"wr-eps":   func() { NewTSWR[uint64](xrand.New(1), 8, 2, 0, ok1) },
		"badw":     func() { NewTSWOR[uint64](xrand.New(1), 8, 2, 0.05, func(uint64) float64 { return 0 }).Observe(1, 0) },
		"backward": func() { s := NewTSWOR[uint64](xrand.New(1), 8, 2, 0.05, ok1); s.Observe(1, 5); s.Observe(2, 4) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

// TestTSSkybandExpiryReleasesPayloads is the timestamp half of the leak
// regression: nodes expired by a pure clock-advancing query must leave no
// live payload pointers in the node slice's spare capacity.
func TestTSSkybandExpiryReleasesPayloads(t *testing.T) {
	const t0 = 10
	s := NewTSWOR[*[]byte](xrand.New(5), t0, 2, 0.05, func(*[]byte) float64 { return 1 })
	for i := 0; i < 64; i++ {
		p := make([]byte, 1<<10)
		s.Observe(&p, int64(i))
	}
	// Expire everything by query alone.
	if _, ok := s.ItemsAt(int64(64 + t0)); ok {
		t.Fatal("window should be empty")
	}
	if got := len(s.sky.nodes); got != 0 {
		t.Fatalf("%d nodes retained after full expiry", got)
	}
	full := s.sky.nodes[:cap(s.sky.nodes)]
	for i, nd := range full {
		if nd.elem.Value != nil {
			t.Fatalf("slack slot %d still pins an expired payload", i)
		}
	}
}
