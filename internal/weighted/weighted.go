// Package weighted implements weighted sampling from sliding windows —
// sequence-based (WOR/WR, this file) and timestamp-based (TSWOR/TSWR,
// ts.go): each element carries a positive weight, and heavy elements are
// sampled proportionally more often than light ones.
//
// The substrate is the Efraimidis–Spirakis key construction: element p_i with
// weight w_i draws an independent uniform U_i and gets key U_i^(1/w_i). The
// k elements with the largest keys among a set form a weighted k-sample
// WITHOUT replacement of that set — distributed exactly like successive
// weighted draws (pick i with probability w_i/W, remove it, renormalize,
// repeat k times). Keys are kept in log space (ln U_i / w_i, an
// order-preserving transform) so tiny weights cannot underflow.
//
// To slide the window, WOR generalizes the paper's Theorem 2.2 machinery the
// same way Gemulla–Lehner's skyband generalizes priority sampling: retain
// exactly the elements that are in the key-top-k of SOME suffix of the
// arrival order — equivalently, the elements beaten by fewer than k newer
// arrivals. Because a sequence window is always a suffix, the top-k of the
// active window is a subset of the retained set at all times, and an element
// beaten k times can never re-enter any future window's top-k, so dropping
// it is safe. Elements expire by arrival index. The retained set has
// expected size O(k·log(n/k)) (the harmonic argument of bounded priority
// sampling), so the structure costs O(k·log n) words in expectation —
// randomized, unlike the deterministic uniform samplers in internal/core;
// the weighted law is what buys the slack.
//
// WR maintains k independent single-draw instances (k = 1 skybands): each
// query slot returns an element with probability w_i / W(window),
// independently across slots — sampling with replacement.
//
// All four samplers satisfy stream.Sampler[T] (the timestamp pair also
// stream.TimedSampler[T]); the element weight is derived from the value by
// the weight function fixed at construction, so weighted substrates drop
// into every layer that speaks the unified interface.
//
// # Queries draw no randomness
//
// Every rng consumption in this package happens at OBSERVE time: the ES key
// is drawn once when an element arrives, and expiry (whether triggered by an
// arrival or by a timestamped query) only discards retained nodes. Items /
// Sample / ItemsAt / SampleAt never advance a generator — a query is a pure
// function of the retained state and the query clock. This is a
// load-bearing invariant: internal/parallel fans per-shard queries across
// worker goroutines in nondeterministic order, and internal/serve interleaves
// concurrent readers between ingest batches; both stay seed-deterministic
// only because querying cannot perturb the rng stream that future observes
// will consume. TestQueriesDrawNoRandomness pins it.
package weighted

import (
	"math"
	"sort"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// NodeWords is the per-retained-node cost in the DESIGN.md §6 word model:
// the stored element (value + index + timestamp) plus the weight, the
// log-key, and the domination counter.
const NodeWords = stream.StoredWords + 3

// node is one retained element: its log-key plus the number of newer
// arrivals with larger keys observed so far.
type node[T any] struct {
	elem stream.Element[T]
	w    float64
	lk   float64 // ln(U)/w; order-isomorphic to the ES key U^(1/w)
	beat int     // newer arrivals with larger log-key
}

// skyband is the suffix-top-k retained set over a sequence window: nodes in
// arrival order, each beaten by fewer than k newer arrivals. It is the
// shared core of WOR (one skyband with parameter k) and WR (k independent
// skybands with parameter 1).
type skyband[T any] struct {
	win window.Sequence
	k   int
	// rng is embedded by value (SplitValue, not Split): the multi-tenant
	// fabric packs millions of skybands into one process, and 32 bytes
	// inline beats a pointer plus a separate 32-byte heap object per
	// skyband — k of them per WR sampler. The derived stream is identical.
	rng   xrand.Rand
	nodes []node[T]
}

// drawLogKey draws ln(U)/w for a fresh uniform U in (0, 1).
func drawLogKey(rng *xrand.Rand, w float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return math.Log(u) / w
}

// observe inserts the next element: bump the domination count of every
// retained node the new key beats, drop nodes beaten k times (they can
// never again be in the top-k of a suffix), append the arrival, and expire
// the front by arrival index. Arrivals newer than a node expire after it,
// so a domination count never includes expired elements while the node is
// active — which is exactly why beat >= k is a safe drop.
func (s *skyband[T]) observe(e stream.Element[T], w float64) {
	s.nodes = insertNode(s.nodes, s.k, e, w, drawLogKey(&s.rng, w))
	i := 0
	for i < len(s.nodes) && !s.win.Active(s.nodes[i].elem.Index, e.Index) {
		i++
	}
	dropFront(&s.nodes, i)
}

// insertNode is the shared skyband walk of the sequence- and
// timestamp-window samplers: bump the domination count of every retained
// node the new key beats, drop nodes beaten k times, append the arrival,
// and zero any slots the drops vacated — the evicted elements' payloads
// (strings, slices, pointers) must not stay live in the slice's slack for
// the sampler's lifetime.
func insertNode[T any](nodes []node[T], k int, e stream.Element[T], w, lk float64) []node[T] {
	old := len(nodes)
	keep := nodes[:0]
	for _, nd := range nodes {
		if nd.lk < lk {
			nd.beat++
		}
		if nd.beat < k {
			keep = append(keep, nd)
		}
	}
	nodes = append(keep, node[T]{elem: e, w: w, lk: lk})
	if len(nodes) < old {
		// Drops guarantee append reused the backing array (reallocation only
		// happens when nothing was dropped and the slice was full).
		clear(nodes[len(nodes):old])
	}
	return nodes
}

// dropFront removes the first i nodes by shifting the survivors in place
// (the capacity is bounded by the retained peak, which the word model
// already charges for) and zeroes the vacated tail — expired payloads must
// not be pinned by the slice's slack.
func dropFront[T any](nodes *[]node[T], i int) {
	if i <= 0 {
		return
	}
	m := copy(*nodes, (*nodes)[i:])
	clear((*nodes)[m:])
	*nodes = (*nodes)[:m]
}

// checkWeight validates a weight function result (programmer error to
// return anything else, matching the internal panic convention).
func checkWeight(w float64) float64 {
	if !(w > 0) || math.IsInf(w, 1) {
		panic("weighted: element weight must be positive and finite")
	}
	return w
}

// Item is one sampled element together with its weight and log-key. The
// log-key is what subset-sum estimation needs: conditioned on a threshold
// tau, P(ln U/w > tau) = 1 - e^(w·tau) is the element's inclusion
// probability (see apps.SubsetSum).
type Item[T any] struct {
	Elem   stream.Element[T]
	Weight float64
	LogKey float64
}

// ---------------------------------------------------------------------------
// WOR: weighted k-sample without replacement
// ---------------------------------------------------------------------------

// WOR maintains a weighted k-sample without replacement over the n most
// recent elements under the Efraimidis–Spirakis law, in expected O(k·log n)
// words. While the window holds fewer than k elements the sample is the
// whole window.
type WOR[T any] struct {
	n        uint64
	k        int
	weight   func(T) float64
	count    uint64
	sky      skyband[T]
	maxWords int
}

// NewWOR returns a weighted without-replacement sampler over a window of
// the n most recent elements with target sample size k. weight maps an
// element value to its positive, finite weight. Panics on bad parameters.
func NewWOR[T any](rng *xrand.Rand, n uint64, k int, weight func(T) float64) *WOR[T] {
	if n == 0 {
		panic("weighted: NewWOR with n == 0")
	}
	if k <= 0 {
		panic("weighted: NewWOR with k <= 0")
	}
	if weight == nil {
		panic("weighted: NewWOR with nil weight function")
	}
	s := &WOR[T]{
		n:      n,
		k:      k,
		weight: weight,
		sky:    skyband[T]{win: window.Sequence{N: n}, k: k, rng: rng.SplitValue()},
	}
	s.maxWords = s.Words()
	return s
}

// Observe feeds the next stream element (timestamps carried through only).
func (s *WOR[T]) Observe(value T, ts int64) {
	s.ObserveWeighted(value, s.weight(value), ts)
}

// ObserveWeighted feeds the next element with a precomputed weight —
// layers that already paid the weight function (the sharded dispatcher
// computes each element's weight for its per-shard weight oracles before
// dealing) hand it over instead of paying twice. With w == weight(value)
// the state and draws are identical to Observe.
func (s *WOR[T]) ObserveWeighted(value T, w float64, ts int64) {
	e := stream.Element[T]{Value: value, Index: s.count, TS: ts}
	s.count++
	s.sky.observe(e, checkWeight(w))
	if wd := s.Words(); wd > s.maxWords {
		s.maxWords = wd
	}
}

// ObserveBatch feeds a run of elements (Index assigned here; draws and
// state identical to looping Observe). The amortization is the PR-1 locals
// convention: the arrival counter and peak tracker stay in registers for
// the whole run and the footprint checkpoint is inlined arithmetic — the
// skyband walk itself is inherently per element.
func (s *WOR[T]) ObserveBatch(batch []stream.Element[T]) {
	cnt := s.count
	peak := s.maxWords
	for _, e := range batch {
		e.Index = cnt
		cnt++
		s.sky.observe(e, checkWeight(s.weight(e.Value)))
		if w := s.Words(); w > peak {
			peak = w
		}
	}
	s.count = cnt
	s.maxWords = peak
}

// ObserveWeightedBatch is ObserveBatch with precomputed weights;
// weights[i] belongs to batch[i] (panics on a length mismatch, matching
// the internal convention).
func (s *WOR[T]) ObserveWeightedBatch(batch []stream.Element[T], weights []float64) {
	if len(batch) != len(weights) {
		panic("weighted: ObserveWeightedBatch with mismatched slice lengths")
	}
	cnt := s.count
	peak := s.maxWords
	for i, e := range batch {
		e.Index = cnt
		cnt++
		s.sky.observe(e, checkWeight(weights[i]))
		if w := s.Words(); w > peak {
			peak = w
		}
	}
	s.count = cnt
	s.maxWords = peak
}

// Items returns the current sample — the min(k, windowSize) active elements
// with the largest keys, in decreasing key order (the successive-sampling
// order: the first item is distributed like a single weighted draw over the
// window). ok is false while the stream is empty.
func (s *WOR[T]) Items() ([]Item[T], bool) {
	if s.count == 0 {
		return nil, false
	}
	// Every retained node is active (expiry runs at each observe and the
	// sequence clock is the arrival index), and the window's top-k is always
	// retained, so the top-k of the retained set IS the window's top-k.
	return topItems(s.sky.nodes, s.k), true
}

// topItems returns the min(k, len(nodes)) retained nodes with the largest
// keys as Items, in decreasing key order (the successive-sampling order).
func topItems[T any](nodes []node[T], k int) []Item[T] {
	idx := make([]int, len(nodes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return nodes[idx[a]].lk > nodes[idx[b]].lk })
	m := k
	if len(idx) < m {
		m = len(idx)
	}
	out := make([]Item[T], m)
	for i := 0; i < m; i++ {
		nd := nodes[idx[i]]
		out[i] = Item[T]{Elem: nd.elem, Weight: nd.w, LogKey: nd.lk}
	}
	return out
}

// Sample implements stream.Sampler: the Items sample as bare elements.
func (s *WOR[T]) Sample() ([]stream.Element[T], bool) {
	items, ok := s.Items()
	if !ok {
		return nil, false
	}
	out := make([]stream.Element[T], len(items))
	for i, it := range items {
		out[i] = it.Elem
	}
	return out, true
}

// K returns the target sample size.
func (s *WOR[T]) K() int { return s.k }

// N returns the window size.
func (s *WOR[T]) N() uint64 { return s.n }

// Count returns the number of elements observed.
func (s *WOR[T]) Count() uint64 { return s.count }

// Retained returns the current retained-set size (diagnostics).
func (s *WOR[T]) Retained() int { return len(s.sky.nodes) }

// Words implements stream.MemoryReporter: the retained nodes plus three
// scalars (n, k, count).
func (s *WOR[T]) Words() int { return 3 + len(s.sky.nodes)*NodeWords }

// MaxWords implements stream.MemoryReporter (randomized — the weighted
// substrates trade the paper's deterministic bound for the weighted law).
func (s *WOR[T]) MaxWords() int { return s.maxWords }

// ---------------------------------------------------------------------------
// WR: k independent weighted draws (with replacement)
// ---------------------------------------------------------------------------

// WR maintains k independent weighted single draws over the n most recent
// elements: slot j returns element i with probability w_i / W(window),
// independently across slots. Implemented as k independent k=1 skybands
// (each a monotone deque of suffix key maxima, expected O(log n) nodes).
type WR[T any] struct {
	n        uint64
	k        int
	weight   func(T) float64
	count    uint64
	insts    []skyband[T]
	maxWords int
}

// NewWR returns a weighted with-replacement sampler over a window of the n
// most recent elements with k sample slots. Panics on bad parameters.
func NewWR[T any](rng *xrand.Rand, n uint64, k int, weight func(T) float64) *WR[T] {
	if n == 0 {
		panic("weighted: NewWR with n == 0")
	}
	if k <= 0 {
		panic("weighted: NewWR with k <= 0")
	}
	if weight == nil {
		panic("weighted: NewWR with nil weight function")
	}
	s := &WR[T]{n: n, k: k, weight: weight, insts: make([]skyband[T], k)}
	for i := range s.insts {
		s.insts[i] = skyband[T]{win: window.Sequence{N: n}, k: 1, rng: rng.SplitValue()}
	}
	s.maxWords = s.Words()
	return s
}

// Observe feeds the next stream element to every slot instance.
func (s *WR[T]) Observe(value T, ts int64) {
	s.ObserveWeighted(value, s.weight(value), ts)
}

// ObserveWeighted feeds the next element with a precomputed weight (see
// WOR.ObserveWeighted).
func (s *WR[T]) ObserveWeighted(value T, w float64, ts int64) {
	e := stream.Element[T]{Value: value, Index: s.count, TS: ts}
	s.count++
	w = checkWeight(w)
	for i := range s.insts {
		s.insts[i].observe(e, w)
	}
	if wd := s.Words(); wd > s.maxWords {
		s.maxWords = wd
	}
}

// ObserveBatch feeds a run of elements. Element-major like Observe (each
// instance owns its generator, so the per-element slot order is what keeps
// the draw sequences — and the footprint checkpoints — identical to the
// looped path); the counter and peak tracking are hoisted into locals.
func (s *WR[T]) ObserveBatch(batch []stream.Element[T]) {
	cnt := s.count
	peak := s.maxWords
	for _, e := range batch {
		e.Index = cnt
		cnt++
		w := checkWeight(s.weight(e.Value))
		for i := range s.insts {
			s.insts[i].observe(e, w)
		}
		if wd := s.Words(); wd > peak {
			peak = wd
		}
	}
	s.count = cnt
	s.maxWords = peak
}

// ObserveWeightedBatch is ObserveBatch with precomputed weights.
func (s *WR[T]) ObserveWeightedBatch(batch []stream.Element[T], weights []float64) {
	if len(batch) != len(weights) {
		panic("weighted: ObserveWeightedBatch with mismatched slice lengths")
	}
	cnt := s.count
	peak := s.maxWords
	for i, e := range batch {
		e.Index = cnt
		cnt++
		w := checkWeight(weights[i])
		for j := range s.insts {
			s.insts[j].observe(e, w)
		}
		if wd := s.Words(); wd > peak {
			peak = wd
		}
	}
	s.count = cnt
	s.maxWords = peak
}

// Items returns the k slot draws with their weights and log-keys.
func (s *WR[T]) Items() ([]Item[T], bool) {
	if s.count == 0 {
		return nil, false
	}
	out := make([]Item[T], s.k)
	for i := range s.insts {
		// A k=1 skyband's nodes have strictly decreasing keys in arrival
		// order (a newer, higher-keyed arrival evicts), so the front node is
		// the active key maximum — the slot's weighted draw.
		nd := s.insts[i].nodes[0]
		out[i] = Item[T]{Elem: nd.elem, Weight: nd.w, LogKey: nd.lk}
	}
	return out, true
}

// Sample implements stream.Sampler: k weighted draws with replacement.
func (s *WR[T]) Sample() ([]stream.Element[T], bool) {
	items, ok := s.Items()
	if !ok {
		return nil, false
	}
	out := make([]stream.Element[T], len(items))
	for i, it := range items {
		out[i] = it.Elem
	}
	return out, true
}

// K returns the number of sample slots.
func (s *WR[T]) K() int { return s.k }

// N returns the window size.
func (s *WR[T]) N() uint64 { return s.n }

// Count returns the number of elements observed.
func (s *WR[T]) Count() uint64 { return s.count }

// Retained returns the total retained-node count (diagnostics).
func (s *WR[T]) Retained() int {
	t := 0
	for i := range s.insts {
		t += len(s.insts[i].nodes)
	}
	return t
}

// Words implements stream.MemoryReporter: every instance's nodes plus three
// scalars (n, k, count).
func (s *WR[T]) Words() int {
	w := 3
	for i := range s.insts {
		w += len(s.insts[i].nodes) * NodeWords
	}
	return w
}

// MaxWords implements stream.MemoryReporter.
func (s *WR[T]) MaxWords() int { return s.maxWords }

// Compile-time conformance with the unified sampler interface (including
// the precomputed-weight ingest extension the sharded dispatcher uses).
var (
	_ stream.WeightedSampler[int] = (*WOR[int])(nil)
	_ stream.WeightedSampler[int] = (*WR[int])(nil)
)
