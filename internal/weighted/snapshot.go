package weighted

import (
	"io"
	"math"

	"slidingsample/internal/ehist"
	"slidingsample/internal/snap"
	"slidingsample/internal/window"
)

// Snapshot kind tags.
const (
	kindWOR   = "weighted.WOR"
	kindWR    = "weighted.WR"
	kindTSWOR = "weighted.TSWOR"
	kindTSWR  = "weighted.TSWR"
)

// Weight functions cannot ride a snapshot (they are code, not state), so
// every Restore* here takes the weight function as an argument; the
// substrate layer re-resolves it by name from the spec vocabulary before
// calling down. Decoders construct structs directly — see
// internal/core/snapshot.go for why constructors are bypassed.

func encodeNodes[T any](w *snap.Writer, nodes []node[T]) {
	w.Len(len(nodes))
	for _, nd := range nodes {
		snap.WriteElement(w, nd.elem)
		w.F64(nd.w)
		w.F64(nd.lk)
		w.Int(nd.beat)
	}
}

func decodeNodes[T any](r *snap.Reader) []node[T] {
	n := r.Len(-1)
	if r.Err() != nil {
		return nil
	}
	nodes := make([]node[T], 0, snap.CapHint(n))
	for i := 0; i < n && r.Err() == nil; i++ {
		nd := node[T]{
			elem: snap.ReadElement[T](r),
			w:    r.F64(),
			lk:   r.F64(),
			beat: r.Int(),
		}
		if r.Err() == nil && (!(nd.w > 0) || math.IsInf(nd.w, 1)) {
			r.Failf("weighted node with weight %v", nd.w)
			break
		}
		nodes = append(nodes, nd)
	}
	return nodes
}

func encodeSkyband[T any](w *snap.Writer, s *skyband[T]) {
	snap.WriteRandValue(w, &s.rng)
	encodeNodes(w, s.nodes)
}

func decodeSkyband[T any](r *snap.Reader, n uint64, k int) skyband[T] {
	return skyband[T]{
		win:   window.Sequence{N: n},
		k:     k,
		rng:   snap.ReadRandValue(r),
		nodes: decodeNodes[T](r),
	}
}

func encodeTSSkyband[T any](w *snap.Writer, s *tsSkyband[T]) {
	snap.WriteRandValue(w, &s.rng)
	encodeNodes(w, s.nodes)
}

func decodeTSSkyband[T any](r *snap.Reader, t0 int64, k int) tsSkyband[T] {
	return tsSkyband[T]{
		win:   window.Timestamp{T0: t0},
		k:     k,
		rng:   snap.ReadRandValue(r),
		nodes: decodeNodes[T](r),
	}
}

// ---------------------------------------------------------------------------
// WOR / WR (sequence windows)
// ---------------------------------------------------------------------------

// Snapshot writes the sampler's full state (header included) to w. The
// weight function is NOT captured; Restore re-binds it.
func (s *WOR[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindWOR)
	EncodeWOR(sw, s)
	return sw.Err()
}

// EncodeWOR writes the header-less body on a shared writer (for the
// sharded dispatcher snapshots).
func EncodeWOR[T any](w *snap.Writer, s *WOR[T]) {
	w.U64(s.n)
	w.Int(s.k)
	w.U64(s.count)
	w.Int(s.maxWords)
	encodeSkyband(w, &s.sky)
}

// RestoreWOR reads a WOR snapshot, re-binding the given weight function.
func RestoreWOR[T any](r io.Reader, weight func(T) float64) (*WOR[T], error) {
	sr, err := snap.NewReader(r, kindWOR)
	if err != nil {
		return nil, err
	}
	s := DecodeWOR(sr, weight)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeWOR reads the header-less body on a shared reader.
func DecodeWOR[T any](r *snap.Reader, weight func(T) float64) *WOR[T] {
	s := &WOR[T]{weight: weight}
	s.n = r.U64()
	s.k = r.Int()
	s.count = r.U64()
	s.maxWords = r.Int()
	if r.Err() != nil {
		return s
	}
	if s.n == 0 || s.k <= 0 {
		r.Failf("weighted.WOR with n %d, k %d", s.n, s.k)
		return s
	}
	if weight == nil {
		r.Failf("weighted.WOR restored with nil weight function")
		return s
	}
	s.sky = decodeSkyband[T](r, s.n, s.k)
	return s
}

// Snapshot writes the sampler's full state (header included) to w.
func (s *WR[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindWR)
	EncodeWR(sw, s)
	return sw.Err()
}

// EncodeWR writes the header-less body on a shared writer.
func EncodeWR[T any](w *snap.Writer, s *WR[T]) {
	w.U64(s.n)
	w.Int(s.k)
	w.U64(s.count)
	w.Int(s.maxWords)
	for i := range s.insts {
		encodeSkyband(w, &s.insts[i])
	}
}

// RestoreWR reads a WR snapshot, re-binding the given weight function.
func RestoreWR[T any](r io.Reader, weight func(T) float64) (*WR[T], error) {
	sr, err := snap.NewReader(r, kindWR)
	if err != nil {
		return nil, err
	}
	s := DecodeWR(sr, weight)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeWR reads the header-less body on a shared reader.
func DecodeWR[T any](r *snap.Reader, weight func(T) float64) *WR[T] {
	s := &WR[T]{weight: weight}
	s.n = r.U64()
	s.k = r.Int()
	s.count = r.U64()
	s.maxWords = r.Int()
	if r.Err() != nil {
		return s
	}
	if s.n == 0 || s.k <= 0 || s.k > snap.MaxParam {
		r.Failf("weighted.WR with n %d, k %d", s.n, s.k)
		return s
	}
	if weight == nil {
		r.Failf("weighted.WR restored with nil weight function")
		return s
	}
	s.insts = make([]skyband[T], s.k)
	for i := 0; i < s.k && r.Err() == nil; i++ {
		s.insts[i] = decodeSkyband[T](r, s.n, 1)
	}
	return s
}

// ---------------------------------------------------------------------------
// TSWOR / TSWR (timestamp windows)
// ---------------------------------------------------------------------------

// Snapshot writes the sampler's full state (header included) to w,
// embedded window-size counter included.
func (s *TSWOR[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindTSWOR)
	EncodeTSWOR(sw, s)
	return sw.Err()
}

// EncodeTSWOR writes the header-less body on a shared writer.
func EncodeTSWOR[T any](w *snap.Writer, s *TSWOR[T]) {
	w.I64(s.t0)
	w.Int(s.k)
	w.U64(s.count)
	w.I64(s.now)
	w.Bool(s.started)
	w.Int(s.maxWords)
	encodeTSSkyband(w, &s.sky)
	ehist.EncodeCounter(w, s.est)
}

// RestoreTSWOR reads a TSWOR snapshot, re-binding the weight function.
func RestoreTSWOR[T any](r io.Reader, weight func(T) float64) (*TSWOR[T], error) {
	sr, err := snap.NewReader(r, kindTSWOR)
	if err != nil {
		return nil, err
	}
	s := DecodeTSWOR(sr, weight)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeTSWOR reads the header-less body on a shared reader.
func DecodeTSWOR[T any](r *snap.Reader, weight func(T) float64) *TSWOR[T] {
	s := &TSWOR[T]{weight: weight}
	s.t0 = r.I64()
	s.k = r.Int()
	s.count = r.U64()
	s.now = r.I64()
	s.started = r.Bool()
	s.maxWords = r.Int()
	if r.Err() != nil {
		return s
	}
	if s.t0 <= 0 || s.k <= 0 {
		r.Failf("weighted.TSWOR with t0 %d, k %d", s.t0, s.k)
		return s
	}
	if weight == nil {
		r.Failf("weighted.TSWOR restored with nil weight function")
		return s
	}
	s.sky = decodeTSSkyband[T](r, s.t0, s.k)
	s.est = ehist.DecodeCounter(r)
	if r.Err() == nil && s.est == nil {
		r.Failf("weighted.TSWOR missing size counter")
	}
	return s
}

// Snapshot writes the sampler's full state (header included) to w.
func (s *TSWR[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindTSWR)
	EncodeTSWR(sw, s)
	return sw.Err()
}

// EncodeTSWR writes the header-less body on a shared writer.
func EncodeTSWR[T any](w *snap.Writer, s *TSWR[T]) {
	w.I64(s.t0)
	w.Int(s.k)
	w.U64(s.count)
	w.I64(s.now)
	w.Bool(s.started)
	w.Int(s.maxWords)
	for i := range s.insts {
		encodeTSSkyband(w, &s.insts[i])
	}
	ehist.EncodeCounter(w, s.est)
}

// RestoreTSWR reads a TSWR snapshot, re-binding the weight function.
func RestoreTSWR[T any](r io.Reader, weight func(T) float64) (*TSWR[T], error) {
	sr, err := snap.NewReader(r, kindTSWR)
	if err != nil {
		return nil, err
	}
	s := DecodeTSWR(sr, weight)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeTSWR reads the header-less body on a shared reader.
func DecodeTSWR[T any](r *snap.Reader, weight func(T) float64) *TSWR[T] {
	s := &TSWR[T]{weight: weight}
	s.t0 = r.I64()
	s.k = r.Int()
	s.count = r.U64()
	s.now = r.I64()
	s.started = r.Bool()
	s.maxWords = r.Int()
	if r.Err() != nil {
		return s
	}
	if s.t0 <= 0 || s.k <= 0 || s.k > snap.MaxParam {
		r.Failf("weighted.TSWR with t0 %d, k %d", s.t0, s.k)
		return s
	}
	if weight == nil {
		r.Failf("weighted.TSWR restored with nil weight function")
		return s
	}
	s.insts = make([]tsSkyband[T], s.k)
	for i := 0; i < s.k && r.Err() == nil; i++ {
		s.insts[i] = decodeTSSkyband[T](r, s.t0, 1)
	}
	s.est = ehist.DecodeCounter(r)
	if r.Err() == nil && s.est == nil {
		r.Failf("weighted.TSWR missing size counter")
	}
	return s
}
