package weighted

import (
	"sync"
	"testing"

	"slidingsample/internal/xrand"
)

// TestWORConcurrentReadOracle pins the rng-free-query contract at runtime,
// complementing swlint's static norandquery check: once ingest stops, every
// WOR query path (Items, Sample, Count, Retained, Words) is a pure read —
// no rng draw, no lazy expiry, no memoization — so concurrent readers are
// safe and all see the identical sample. Run under -race via
// `make test-race`; a hidden mutation in any read path becomes a detected
// race, and a hidden draw breaks the equality oracle below.
//
// TSWOR is deliberately absent: its ItemsAt advances the clock and expires
// nodes in place (reads are mutating by design there), which is exactly why
// the serve layer wraps it in qmu. WR is absent because with-replacement
// sampling draws at query time (a contractual, swlint-allowed draw).
func TestWORConcurrentReadOracle(t *testing.T) {
	s := NewWOR[uint64](xrand.New(7), 64, 8, testWeight)
	feed(s, 500)

	wantItems, ok := s.Items()
	if !ok {
		t.Fatal("no sample after 500 arrivals")
	}
	wantCount, wantRetained, wantWords := s.Count(), s.Retained(), s.Words()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				items, ok := s.Items()
				if !ok || len(items) != len(wantItems) {
					t.Errorf("Items: ok=%v len=%d, want ok=true len=%d", ok, len(items), len(wantItems))
					return
				}
				for i := range items {
					if items[i] != wantItems[i] {
						t.Errorf("Items[%d] = %+v, want %+v (query path not a pure read?)", i, items[i], wantItems[i])
						return
					}
				}
				sample, ok := s.Sample()
				if !ok || len(sample) != len(wantItems) {
					t.Errorf("Sample: ok=%v len=%d, want ok=true len=%d", ok, len(sample), len(wantItems))
					return
				}
				for i := range sample {
					if sample[i] != wantItems[i].Elem {
						t.Errorf("Sample[%d] = %+v, want %+v", i, sample[i], wantItems[i].Elem)
						return
					}
				}
				if s.Count() != wantCount || s.Retained() != wantRetained || s.Words() != wantWords {
					t.Errorf("scalar reads drifted: Count=%d Retained=%d Words=%d, want %d, %d, %d",
						s.Count(), s.Retained(), s.Words(), wantCount, wantRetained, wantWords)
					return
				}
			}
		}()
	}
	wg.Wait()
}
