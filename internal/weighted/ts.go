// ts.go implements weighted sampling from TIMESTAMP-based sliding windows:
// "the heaviest flows by bytes in the last minute". The Efraimidis–Spirakis
// key construction and the suffix-top-k retention argument carry over from
// the sequence-window samplers verbatim — an element beaten k times by
// newer arrivals can never re-enter any future window's top-k, because the
// beaters are newer and therefore expire later — but two things change with
// the window semantics:
//
//   - Expiry switches from arrival index to the overflow-safe
//     window.Timestamp, and must ALSO run at query time: arrivals no longer
//     bound the clock, so a query after the last arrival can expire part or
//     all of the retained set (the samplers satisfy stream.TimedSampler and
//     answer SampleAt/ItemsAt "as of" an explicit time).
//
//   - |sample| = min(k, n(t)) with n(t) data-dependent and — per the
//     paper's Section 3 negative result, citing [31] — not exactly
//     computable in sublinear space. The retained skyband yields the
//     min(k, n(t)) sample EXACTLY (when n(t) <= k every active element is
//     beaten fewer than k times and so is retained), but n(t) itself is
//     only approximable: each sampler embeds a DGIM exponential-histogram
//     counter (internal/ehist) reporting a (1±eps) effective window size
//     via SizeAt, which is what scale-factor consumers — apps.SubsetSumTS,
//     estimator layers, dashboards — need alongside the sample.
//
// Retention cost matches the sequence case: expected O(k·log n) words for
// TSWOR plus the counter's O(eps^-1·log^2 n) — the embedded ehist cost is
// part of the Words()/MaxWords() accounting (DESIGN.md §6).
package weighted

import (
	"fmt"

	"slidingsample/internal/ehist"
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// DefaultSizeEps is the relative error of the embedded window-size counter
// used by the public constructors (matching internal/parallel's CLI
// default).
const DefaultSizeEps = 0.05

// tsSkyband is the suffix-top-k retained set over a timestamp window:
// nodes in arrival order (non-decreasing timestamps), each beaten by fewer
// than k newer arrivals. Unlike the sequence skyband, expiry takes an
// explicit clock so it can run at query time too.
type tsSkyband[T any] struct {
	win window.Timestamp
	k   int
	// rng is embedded by value (SplitValue): see the sequence skyband — at
	// fabric scale the inline 32 bytes beat a pointer to a separate heap
	// object per skyband. The derived stream is identical to Split's.
	rng   xrand.Rand
	nodes []node[T]
}

// observe inserts the next element and expires the front at its timestamp.
func (s *tsSkyband[T]) observe(e stream.Element[T], w float64) {
	s.nodes = insertNode(s.nodes, s.k, e, w, drawLogKey(&s.rng, w))
	s.expire(e.TS)
}

// expire drops the retained nodes that have left the window at time now.
// Nodes are in arrival order with non-decreasing timestamps, so the dead
// nodes form a prefix.
func (s *tsSkyband[T]) expire(now int64) {
	i := 0
	for i < len(s.nodes) && s.win.Expired(s.nodes[i].elem.TS, now) {
		i++
	}
	dropFront(&s.nodes, i)
}

// validateTS is the shared constructor validation of the timestamp-window
// samplers (programmer error to violate, matching the internal convention).
func validateTS(name string, t0 int64, k int, eps float64, weightNil bool) {
	if t0 <= 0 {
		panic("weighted: " + name + " with t0 <= 0")
	}
	if k <= 0 {
		panic("weighted: " + name + " with k <= 0")
	}
	if eps <= 0 || eps >= 1 {
		panic("weighted: " + name + " with eps outside (0,1)")
	}
	if weightNil {
		panic("weighted: " + name + " with nil weight function")
	}
}

// ---------------------------------------------------------------------------
// TSWOR: weighted k-sample without replacement, timestamp window
// ---------------------------------------------------------------------------

// TSWOR maintains a weighted k-sample without replacement over the elements
// of the last t0 clock ticks under the Efraimidis–Spirakis law, in expected
// O(k·log n) words plus the embedded size counter. While the window holds
// fewer than k elements the sample is the whole window; when a query
// empties the window the sample reports ok=false.
type TSWOR[T any] struct {
	t0     int64
	k      int
	weight func(T) float64
	count  uint64
	sky    tsSkyband[T]
	// est approximates n(t), the data-dependent active count the sample
	// size min(k, n(t)) is defined against — exact counting is impossible
	// in sublinear space (DGIM lower bound), so SizeAt is (1±eps).
	est      *ehist.Counter
	now      int64
	started  bool
	maxWords int
}

// NewTSWOR returns a weighted without-replacement sampler over a timestamp
// window of horizon t0 with target sample size k. eps is the relative error
// of the embedded window-size counter; weight maps an element value to its
// positive, finite weight. Panics on bad parameters.
func NewTSWOR[T any](rng *xrand.Rand, t0 int64, k int, eps float64, weight func(T) float64) *TSWOR[T] {
	validateTS("NewTSWOR", t0, k, eps, weight == nil)
	s := &TSWOR[T]{
		t0:     t0,
		k:      k,
		weight: weight,
		sky:    tsSkyband[T]{win: window.Timestamp{T0: t0}, k: k, rng: rng.SplitValue()},
		est:    ehist.NewEps(t0, eps),
	}
	s.maxWords = s.Words()
	return s
}

// Observe feeds the next stream element. Timestamps must be non-decreasing
// across arrivals; queries never advance the arrival clock (the embedded
// counter's queries are read-only), so a wall-clock query may be followed
// by an older — but still non-decreasing — arrival.
func (s *TSWOR[T]) Observe(value T, ts int64) {
	s.ObserveWeighted(value, s.weight(value), ts)
}

// ObserveWeighted feeds the next element with a precomputed weight (see
// WOR.ObserveWeighted; with w == weight(value) the state and draws are
// identical to Observe).
func (s *TSWOR[T]) ObserveWeighted(value T, w float64, ts int64) {
	if s.started && ts < s.now {
		panic(fmt.Sprintf("weighted: TSWOR time went backwards: %d after %d", ts, s.now))
	}
	s.now = ts
	s.started = true
	e := stream.Element[T]{Value: value, Index: s.count, TS: ts}
	s.count++
	s.est.Observe(ts)
	s.sky.observe(e, checkWeight(w))
	if wd := s.Words(); wd > s.maxWords {
		s.maxWords = wd
	}
}

// ObserveBatch feeds a run of elements (non-decreasing timestamps; Index is
// assigned here; draws and state identical to looping Observe). The
// amortization is the locals convention: the arrival counter and peak
// tracker stay in registers for the run — the skyband walk itself is
// inherently per element.
func (s *TSWOR[T]) ObserveBatch(batch []stream.Element[T]) {
	cnt := s.count
	peak := s.maxWords
	for _, e := range batch {
		if s.started && e.TS < s.now {
			panic(fmt.Sprintf("weighted: TSWOR time went backwards: %d after %d", e.TS, s.now))
		}
		s.now = e.TS
		s.started = true
		e.Index = cnt
		cnt++
		s.est.Observe(e.TS)
		s.sky.observe(e, checkWeight(s.weight(e.Value)))
		if w := s.Words(); w > peak {
			peak = w
		}
	}
	s.count = cnt
	s.maxWords = peak
}

// ObserveWeightedBatch is ObserveBatch with precomputed weights.
func (s *TSWOR[T]) ObserveWeightedBatch(batch []stream.Element[T], weights []float64) {
	if len(batch) != len(weights) {
		panic("weighted: ObserveWeightedBatch with mismatched slice lengths")
	}
	cnt := s.count
	peak := s.maxWords
	for i, e := range batch {
		if s.started && e.TS < s.now {
			panic(fmt.Sprintf("weighted: TSWOR time went backwards: %d after %d", e.TS, s.now))
		}
		s.now = e.TS
		s.started = true
		e.Index = cnt
		cnt++
		s.est.Observe(e.TS)
		s.sky.observe(e, checkWeight(weights[i]))
		if w := s.Words(); w > peak {
			peak = w
		}
	}
	s.count = cnt
	s.maxWords = peak
}

// ItemsAt returns the weighted sample over the elements active at time now
// — the min(k, n(t)) active elements with the largest keys, in decreasing
// key order — together with weights and log-keys. Querying advances the
// sampler's clock (it never rewinds) and expires retained nodes: arrivals
// no longer bound the clock, so expiry must run here too. ok is false when
// the window is empty at now; on a sampler that has seen NO arrival the
// clock is left untouched, so a later stream may still start at any
// timestamp, including negative ones.
func (s *TSWOR[T]) ItemsAt(now int64) ([]Item[T], bool) {
	if s.count == 0 {
		return nil, false
	}
	if s.started && now < s.now {
		now = s.now
	}
	s.now = now
	s.started = true
	s.sky.expire(now)
	if len(s.sky.nodes) == 0 {
		return nil, false
	}
	// The retained set holds the active suffix-top-k, so its key-top-k IS
	// the window's: when n(t) <= k every active element is retained (each is
	// beaten at most n(t)-1 < k times by active arrivals, and expired
	// beaters imply an expired beatee), giving |sample| = min(k, n(t))
	// exactly even though n(t) itself is only approximable.
	return topItems(s.sky.nodes, s.k), true
}

// Items returns the sample at the latest observed time.
func (s *TSWOR[T]) Items() ([]Item[T], bool) { return s.ItemsAt(s.now) }

// SampleAt implements stream.TimedSampler: the ItemsAt sample as bare
// elements.
func (s *TSWOR[T]) SampleAt(now int64) ([]stream.Element[T], bool) {
	return itemElements(s.ItemsAt(now))
}

// Sample implements stream.Sampler: the sample at the latest observed time.
func (s *TSWOR[T]) Sample() ([]stream.Element[T], bool) { return s.SampleAt(s.now) }

// SizeAt returns the (1±eps) estimate of n(t), the number of active window
// elements at time now, clamped to the arrival count. The exact value is
// not computable in sublinear space (the Section 3 negative result); this
// is the effective-sample-size oracle min(k, n(t)) is reported against.
func (s *TSWOR[T]) SizeAt(now int64) uint64 {
	n := s.est.EstimateAt(now)
	if n > s.count {
		n = s.count
	}
	return n
}

// K returns the target sample size.
func (s *TSWOR[T]) K() int { return s.k }

// Horizon returns t0.
func (s *TSWOR[T]) Horizon() int64 { return s.t0 }

// Count returns the number of elements observed.
func (s *TSWOR[T]) Count() uint64 { return s.count }

// Retained returns the current retained-set size (diagnostics).
func (s *TSWOR[T]) Retained() int { return len(s.sky.nodes) }

// Words implements stream.MemoryReporter: the retained nodes plus the
// embedded size counter plus four scalars (t0, k, count, now).
func (s *TSWOR[T]) Words() int { return 4 + len(s.sky.nodes)*NodeWords + s.est.Words() }

// MaxWords implements stream.MemoryReporter (randomized, like every
// weighted substrate; the embedded counter's words are included).
func (s *TSWOR[T]) MaxWords() int { return s.maxWords }

// ---------------------------------------------------------------------------
// TSWR: k independent weighted draws (with replacement), timestamp window
// ---------------------------------------------------------------------------

// TSWR maintains k independent weighted single draws over the elements of
// the last t0 clock ticks: slot j returns element i with probability
// w_i / W(active window), independently across slots. Implemented as k
// independent k=1 timestamp skybands (monotone deques of suffix key maxima)
// sharing one embedded window-size counter.
type TSWR[T any] struct {
	t0       int64
	k        int
	weight   func(T) float64
	count    uint64
	insts    []tsSkyband[T]
	est      *ehist.Counter
	now      int64
	started  bool
	maxWords int
}

// NewTSWR returns a weighted with-replacement sampler over a timestamp
// window of horizon t0 with k sample slots. eps is the relative error of
// the embedded window-size counter. Panics on bad parameters.
func NewTSWR[T any](rng *xrand.Rand, t0 int64, k int, eps float64, weight func(T) float64) *TSWR[T] {
	validateTS("NewTSWR", t0, k, eps, weight == nil)
	s := &TSWR[T]{
		t0:     t0,
		k:      k,
		weight: weight,
		insts:  make([]tsSkyband[T], k),
		est:    ehist.NewEps(t0, eps),
	}
	for i := range s.insts {
		s.insts[i] = tsSkyband[T]{win: window.Timestamp{T0: t0}, k: 1, rng: rng.SplitValue()}
	}
	s.maxWords = s.Words()
	return s
}

// Observe feeds the next stream element to every slot instance.
func (s *TSWR[T]) Observe(value T, ts int64) {
	s.ObserveWeighted(value, s.weight(value), ts)
}

// ObserveWeighted feeds the next element with a precomputed weight (see
// WOR.ObserveWeighted).
func (s *TSWR[T]) ObserveWeighted(value T, w float64, ts int64) {
	if s.started && ts < s.now {
		panic(fmt.Sprintf("weighted: TSWR time went backwards: %d after %d", ts, s.now))
	}
	s.now = ts
	s.started = true
	e := stream.Element[T]{Value: value, Index: s.count, TS: ts}
	s.count++
	s.est.Observe(ts)
	w = checkWeight(w)
	for i := range s.insts {
		s.insts[i].observe(e, w)
	}
	if wd := s.Words(); wd > s.maxWords {
		s.maxWords = wd
	}
}

// ObserveBatch feeds a run of elements. Element-major like Observe (each
// instance owns its generator, so the per-element slot order keeps the draw
// sequences identical to the looped path); counter and peak tracking are
// hoisted into locals.
func (s *TSWR[T]) ObserveBatch(batch []stream.Element[T]) {
	cnt := s.count
	peak := s.maxWords
	for _, e := range batch {
		if s.started && e.TS < s.now {
			panic(fmt.Sprintf("weighted: TSWR time went backwards: %d after %d", e.TS, s.now))
		}
		s.now = e.TS
		s.started = true
		e.Index = cnt
		cnt++
		s.est.Observe(e.TS)
		w := checkWeight(s.weight(e.Value))
		for i := range s.insts {
			s.insts[i].observe(e, w)
		}
		if wd := s.Words(); wd > peak {
			peak = wd
		}
	}
	s.count = cnt
	s.maxWords = peak
}

// ObserveWeightedBatch is ObserveBatch with precomputed weights.
func (s *TSWR[T]) ObserveWeightedBatch(batch []stream.Element[T], weights []float64) {
	if len(batch) != len(weights) {
		panic("weighted: ObserveWeightedBatch with mismatched slice lengths")
	}
	cnt := s.count
	peak := s.maxWords
	for i, e := range batch {
		if s.started && e.TS < s.now {
			panic(fmt.Sprintf("weighted: TSWR time went backwards: %d after %d", e.TS, s.now))
		}
		s.now = e.TS
		s.started = true
		e.Index = cnt
		cnt++
		s.est.Observe(e.TS)
		w := checkWeight(weights[i])
		for j := range s.insts {
			s.insts[j].observe(e, w)
		}
		if wd := s.Words(); wd > peak {
			peak = wd
		}
	}
	s.count = cnt
	s.maxWords = peak
}

// ItemsAt returns the k slot draws over the elements active at time now.
// Querying advances the clock and expires retained nodes (arrivals no
// longer bound the clock). ok is false when the window is empty at now; on
// a sampler that has seen NO arrival the clock is left untouched, so a
// later stream may still start at any timestamp, including negative ones.
func (s *TSWR[T]) ItemsAt(now int64) ([]Item[T], bool) {
	if s.count == 0 {
		return nil, false
	}
	if s.started && now < s.now {
		now = s.now
	}
	s.now = now
	s.started = true
	out := make([]Item[T], s.k)
	for i := range s.insts {
		s.insts[i].expire(now)
		// A k=1 skyband's nodes have strictly decreasing keys in arrival
		// order, so after expiry the front node is the active key maximum —
		// the slot's weighted draw. Expiry empties every instance at the
		// same time (it depends only on timestamps, not keys).
		if len(s.insts[i].nodes) == 0 {
			return nil, false
		}
		nd := s.insts[i].nodes[0]
		out[i] = Item[T]{Elem: nd.elem, Weight: nd.w, LogKey: nd.lk}
	}
	return out, true
}

// Items returns the k slot draws at the latest observed time.
func (s *TSWR[T]) Items() ([]Item[T], bool) { return s.ItemsAt(s.now) }

// SampleAt implements stream.TimedSampler: k weighted draws with
// replacement over the window active at time now.
func (s *TSWR[T]) SampleAt(now int64) ([]stream.Element[T], bool) {
	return itemElements(s.ItemsAt(now))
}

// Sample implements stream.Sampler: the draws at the latest observed time.
func (s *TSWR[T]) Sample() ([]stream.Element[T], bool) { return s.SampleAt(s.now) }

// SizeAt returns the (1±eps) estimate of n(t) at time now, clamped to the
// arrival count.
func (s *TSWR[T]) SizeAt(now int64) uint64 {
	n := s.est.EstimateAt(now)
	if n > s.count {
		n = s.count
	}
	return n
}

// K returns the number of sample slots.
func (s *TSWR[T]) K() int { return s.k }

// Horizon returns t0.
func (s *TSWR[T]) Horizon() int64 { return s.t0 }

// Count returns the number of elements observed.
func (s *TSWR[T]) Count() uint64 { return s.count }

// Retained returns the total retained-node count (diagnostics).
func (s *TSWR[T]) Retained() int {
	t := 0
	for i := range s.insts {
		t += len(s.insts[i].nodes)
	}
	return t
}

// Words implements stream.MemoryReporter: every instance's nodes plus the
// embedded size counter plus four scalars (t0, k, count, now).
func (s *TSWR[T]) Words() int {
	w := 4 + s.est.Words()
	for i := range s.insts {
		w += len(s.insts[i].nodes) * NodeWords
	}
	return w
}

// MaxWords implements stream.MemoryReporter.
func (s *TSWR[T]) MaxWords() int { return s.maxWords }

// itemElements strips Items down to bare elements (the Sample/SampleAt
// shape of the unified interface).
func itemElements[T any](items []Item[T], ok bool) ([]stream.Element[T], bool) {
	if !ok {
		return nil, false
	}
	out := make([]stream.Element[T], len(items))
	for i, it := range items {
		out[i] = it.Elem
	}
	return out, true
}

// Compile-time conformance with the unified sampler interface (including
// the precomputed-weight ingest extension the sharded dispatcher uses).
var (
	_ stream.TimedSampler[int]    = (*TSWOR[int])(nil)
	_ stream.TimedSampler[int]    = (*TSWR[int])(nil)
	_ stream.WeightedSampler[int] = (*TSWOR[int])(nil)
	_ stream.WeightedSampler[int] = (*TSWR[int])(nil)
)
