package weighted

import (
	"fmt"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// norandSampler is the slice of the sampler surface the no-randomness-at-
// query regression needs: ingest, query, and a transcript of the retained
// draws.
type norandSampler interface {
	ObserveWeighted(value string, w float64, ts int64)
	Items() ([]Item[string], bool)
	Sample() ([]stream.Element[string], bool)
}

// norandBuilders constructs every sampler in the package from one seed.
func norandBuilders() map[string]func(seed uint64) norandSampler {
	weight := func(v string) float64 { return float64(len(v)) }
	return map[string]func(seed uint64) norandSampler{
		"wor":   func(seed uint64) norandSampler { return NewWOR(xrand.New(seed), 48, 6, weight) },
		"wr":    func(seed uint64) norandSampler { return NewWR(xrand.New(seed), 48, 6, weight) },
		"tswor": func(seed uint64) norandSampler { return NewTSWOR(xrand.New(seed), 40, 6, 0.1, weight) },
		"tswr":  func(seed uint64) norandSampler { return NewTSWR(xrand.New(seed), 40, 6, 0.1, weight) },
	}
}

func norandIngest(s norandSampler, from, to int, ts *int64) {
	for i := from; i < to; i++ {
		if i%3 != 2 {
			*ts++
		}
		s.ObserveWeighted(fmt.Sprintf("value-%d", i), float64(i%11)+0.5, *ts)
	}
}

func norandDraws(t *testing.T, s norandSampler) string {
	t.Helper()
	items, iok := s.Items()
	sample, sok := s.Sample()
	return fmt.Sprintf("%v %v %v %v", iok, items, sok, sample)
}

// TestQueriesDrawNoRandomness pins the package doc's invariant: querying a
// sampler consumes no randomness. Two same-seed samplers see the same
// stream; one is queried heavily mid-stream, the other not at all. If any
// query advanced the generator, the subsequent ES key draws would diverge
// and the final retained sets with them.
func TestQueriesDrawNoRandomness(t *testing.T) {
	for name, build := range norandBuilders() {
		t.Run(name, func(t *testing.T) {
			quiet, noisy := build(3), build(3)
			var tsQ, tsN int64
			norandIngest(quiet, 0, 60, &tsQ)
			norandIngest(noisy, 0, 60, &tsN)
			for i := 0; i < 200; i++ {
				noisy.Items()
				noisy.Sample()
			}
			// The draws that matter are the ones AFTER the query storm: they
			// consume whatever generator state the storm left behind.
			norandIngest(quiet, 60, 140, &tsQ)
			norandIngest(noisy, 60, 140, &tsN)
			if q, n := norandDraws(t, quiet), norandDraws(t, noisy); q != n {
				t.Fatalf("querying perturbed the rng stream\nquiet: %.300s\nnoisy: %.300s", q, n)
			}
		})
	}
}
