package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"slidingsample/internal/slab"
	"slidingsample/internal/stream"
)

// Server is the registry plus its HTTP surface. Routes:
//
//	GET  /healthz            liveness
//	GET  /samplers           list registered samplers (name, spec, stats)
//	POST /samplers           register a sampler from a JSON {name, spec}
//	POST /ingest/{name}      batched ingest: JSON arrays or NDJSON records
//	GET  /sample/{name}      current sample            [?at=<ts>]
//	GET  /size/{name}        (1±ε) window size oracle  [?at=<ts>]
//	GET  /weight/{name}      (1±ε) weight total oracle [?at=<ts>]
//	GET  /subsetsum/{name}   HT subset-sum estimate    [?at=<ts>&prefix=&contains=]
//	POST /snapshot/{name}    stream the instance's binary snapshot (and persist
//	                         it when a state dir is attached)
//	POST /restore/{name}     register an instance from a snapshot body
//
// Multi-tenant fabric routes (DESIGN.md §9; tenants are created lazily on
// first ingest, and the fabric/sampler namespaces are independent):
//
//	GET  /fabrics                              list fabrics (name, spec, budget, live tenants)
//	POST /fabrics                              register a fabric from a JSON {name, spec, maxTenants}
//	POST /tenant/{fabric}/{id}/ingest          batched ingest, JSON or NDJSON
//	GET  /tenant/{fabric}/{id}/sample          tenant sample             [?at=<ts>]
//	GET  /tenant/{fabric}/{id}/size            tenant window size oracle [?at=<ts>]
//	GET  /tenant/{fabric}/{id}/weight          tenant weight oracle      [?at=<ts>]
//	GET  /tenant/{fabric}/{id}/subsetsum       tenant subset-sum         [?at=<ts>&prefix=&contains=]
//
// Close drains every instance (barrier, then shard shutdown) and seals
// every fabric — call it after the enclosing http.Server has finished its
// graceful Shutdown so no handler is mid-flight.
type Server struct {
	mu      sync.RWMutex
	inst    map[string]*Instance
	fabrics map[string]*Fabric
	mux     *http.ServeMux
	closed  bool

	// state, when set, makes registered and restored instances durable:
	// Register and POST /restore enable a WAL + snapshot file per instance
	// (DESIGN.md §10). Set it before the server takes traffic.
	state *StateDir
}

// NewServer returns an empty registry serving the routes above.
func NewServer() *Server {
	s := &Server{
		inst:    make(map[string]*Instance),
		fabrics: make(map[string]*Fabric),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /samplers", s.handleList)
	s.mux.HandleFunc("POST /samplers", s.handleRegister)
	s.mux.HandleFunc("POST /ingest/{name}", s.handleIngest)
	s.mux.HandleFunc("GET /sample/{name}", s.handleSample)
	s.mux.HandleFunc("GET /size/{name}", s.handleSize)
	s.mux.HandleFunc("GET /weight/{name}", s.handleWeight)
	s.mux.HandleFunc("GET /subsetsum/{name}", s.handleSubsetSum)
	s.mux.HandleFunc("POST /snapshot/{name}", s.handleSnapshot)
	s.mux.HandleFunc("POST /restore/{name}", s.handleRestore)
	s.mux.HandleFunc("GET /fabrics", s.handleFabricList)
	s.mux.HandleFunc("POST /fabrics", s.handleFabricRegister)
	s.mux.HandleFunc("POST /tenant/{fabric}/{id}/ingest", s.handleTenantIngest)
	s.mux.HandleFunc("GET /tenant/{fabric}/{id}/sample", s.handleTenantSample)
	s.mux.HandleFunc("GET /tenant/{fabric}/{id}/size", s.handleTenantSize)
	s.mux.HandleFunc("GET /tenant/{fabric}/{id}/weight", s.handleTenantWeight)
	s.mux.HandleFunc("GET /tenant/{fabric}/{id}/subsetsum", s.handleTenantSubsetSum)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Register builds the spec's substrate and adds it under name.
func (s *Server) Register(name string, spec Spec) (*Instance, error) {
	if name == "" || strings.ContainsAny(name, "/ \t\n") {
		return nil, fmt.Errorf("serve: sampler name must be non-empty without slashes or whitespace")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, dup := s.inst[name]; dup {
		return nil, ErrDuplicateName
	}
	inst, err := Build(spec)
	if err != nil {
		return nil, err
	}
	if s.state != nil {
		if err := s.state.Enable(name, inst); err != nil {
			inst.Close()
			return nil, err
		}
	}
	s.inst[name] = inst
	return inst, nil
}

// SetStateDir attaches a durability directory: instances registered (or
// restored over HTTP) afterwards get a WAL and snapshot file there. Call
// it after StateDir.Recover and before the server takes traffic.
func (s *Server) SetStateDir(sd *StateDir) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = sd
}

// stateDir returns the attached durability directory, if any.
func (s *Server) stateDir() *StateDir {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.state
}

// Adopt inserts an already-built instance — a restored snapshot — under
// name. Unlike Register it never builds and never touches the state dir;
// recovery wires durability itself before adopting.
func (s *Server) Adopt(name string, inst *Instance) error {
	if name == "" || strings.ContainsAny(name, "/ \t\n") {
		return fmt.Errorf("serve: sampler name must be non-empty without slashes or whitespace")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.inst[name]; dup {
		return ErrDuplicateName
	}
	s.inst[name] = inst
	return nil
}

// drop removes a name from the registry (restore-endpoint unwind only).
func (s *Server) drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inst, name)
}

// Get returns the named instance.
func (s *Server) Get(name string) (*Instance, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	inst, ok := s.inst[name]
	return inst, ok
}

// RegisterFabric builds the spec's fabric template and adds it under name.
// Fabric names share the samplers' naming rules but live in their own
// namespace (the routes never overlap).
func (s *Server) RegisterFabric(name string, spec Spec, maxTenants int) (*Fabric, error) {
	if name == "" || strings.ContainsAny(name, "/ \t\n") {
		return nil, fmt.Errorf("serve: fabric name must be non-empty without slashes or whitespace")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, dup := s.fabrics[name]; dup {
		return nil, ErrDuplicateName
	}
	f, err := NewFabric(spec, maxTenants)
	if err != nil {
		return nil, err
	}
	s.fabrics[name] = f
	return f, nil
}

// GetFabric returns the named fabric.
func (s *Server) GetFabric(name string) (*Fabric, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.fabrics[name]
	return f, ok
}

// Close drains every registered instance — each takes a final barrier (so
// all dispatched elements are reflected in the shards) and then stops its
// shard goroutines — and seals every fabric. Instances and tenants stay
// queryable; ingest is refused afterwards.
func (s *Server) Close() {
	insts, fabs := s.seal()
	for _, f := range fabs {
		f.Close()
	}
	for _, in := range insts {
		in.Close()
	}
}

// seal marks the registry closed and snapshots the instances and fabrics
// under mu, so the (slow, instance-draining) Close calls run with the
// registry lock released. Returns nils when already closed.
func (s *Server) seal() ([]*Instance, []*Fabric) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil
	}
	s.closed = true
	insts := make([]*Instance, 0, len(s.inst))
	for _, in := range s.inst {
		insts = append(insts, in)
	}
	fabs := make([]*Fabric, 0, len(s.fabrics))
	for _, f := range s.fabrics {
		fabs = append(fabs, f)
	}
	return insts, fabs
}

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

// IngestRequest is the JSON batch body of POST /ingest/{name}. Timestamps
// are required in ts mode and must be omitted in seq mode; weights are
// optional and only accepted on substrates with a precomputed-weight path.
type IngestRequest struct {
	Values     []string  `json:"values"`
	Timestamps []int64   `json:"timestamps,omitempty"`
	Weights    []float64 `json:"weights,omitempty"`
}

// Record is one NDJSON ingest record (Content-Type: application/x-ndjson).
type Record struct {
	Value  string   `json:"value"`
	TS     *int64   `json:"ts,omitempty"`
	Weight *float64 `json:"weight,omitempty"`
}

// IngestResponse reports a successful batch.
type IngestResponse struct {
	Ingested int    `json:"ingested"`
	Count    uint64 `json:"count"`
}

// SampledElement is one sample entry on the wire.
type SampledElement struct {
	Value string `json:"value"`
	Index uint64 `json:"index"`
	TS    int64  `json:"ts"`
}

// SampleResponse answers GET /sample; OK is false while the window is
// empty (Sample is then absent).
type SampleResponse struct {
	OK     bool             `json:"ok"`
	Sample []SampledElement `json:"sample,omitempty"`
}

// SamplerInfo is one GET /samplers listing entry.
type SamplerInfo struct {
	Name     string `json:"name"`
	Spec     Spec   `json:"spec"`
	Count    uint64 `json:"count"`
	K        int    `json:"k"`
	Words    int    `json:"words"`
	MaxWords int    `json:"maxWords"`
}

// RegisterRequest is the POST /samplers body.
type RegisterRequest struct {
	Name string `json:"name"`
	Spec Spec   `json:"spec"`
}

// FabricRegisterRequest is the POST /fabrics body. MaxTenants 0 selects
// DefaultMaxTenants.
type FabricRegisterRequest struct {
	Name       string `json:"name"`
	Spec       Spec   `json:"spec"`
	MaxTenants int    `json:"maxTenants,omitempty"`
}

// FabricInfo is one GET /fabrics listing entry. Tenants is the live count;
// per-tenant footprint walks are deliberately not offered here — a listing
// that touched a million tenants per scrape would be its own overload.
type FabricInfo struct {
	Name       string `json:"name"`
	Spec       Spec   `json:"spec"`
	MaxTenants int    `json:"maxTenants"`
	Tenants    int    `json:"tenants"`
}

type errResponse struct {
	Error string `json:"error"`
}

// statusFor maps serving-layer errors onto HTTP statuses: requests that
// can never succeed are 400, missing names 404, requests that conflict
// with the instance's current stream state (clocks, shutdown) 409, an
// oversized NDJSON line 413 (split the batch), transient overload — a full
// ingest staging queue — 503 (retryable), and an exhausted tenant budget
// 507 (the operator capped the fabric's memory; retrying will not help).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownSampler),
		errors.Is(err, ErrUnknownFabric),
		errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrLineTooLong):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrTenantBudget):
		return http.StatusInsufficientStorage
	case errors.Is(err, ErrDuplicateName),
		errors.Is(err, ErrTimeBackwards),
		errors.Is(err, ErrClockBackwards),
		errors.Is(err, ErrNoArrivals),
		errors.Is(err, ErrClosed):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// retryAfterSeconds is the Retry-After hint on 503 responses. Overload
// means the staging queue is full while the applier drains it continuously,
// so the right client move is a short pause and a resend of the SAME batch
// — nothing was admitted. DESIGN.md §7 documents the backoff contract.
const retryAfterSeconds = "1"

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	writeJSON(w, status, errResponse{Error: err.Error()})
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

func (s *Server) instanceFor(w http.ResponseWriter, r *http.Request) (*Instance, bool) {
	inst, ok := s.Get(r.PathValue("name"))
	if !ok {
		writeErr(w, fmt.Errorf("%w: %q", ErrUnknownSampler, r.PathValue("name")))
		return nil, false
	}
	return inst, true
}

// atParam parses the optional ?at= query time.
func atParam(r *http.Request) (*int64, error) {
	raw := r.URL.Query().Get("at")
	if raw == "" {
		return nil, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("serve: bad at=%q: want an integer timestamp", raw)
	}
	return &v, nil
}

// handleList renders the registry sorted by name (map order is random;
// listings must be deterministic).
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.inst))
	for name := range s.inst {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]SamplerInfo, 0, len(names))
	for _, name := range names {
		inst, ok := s.Get(name)
		if !ok {
			continue
		}
		count, k, words, maxWords := inst.Stats()
		out = append(out, SamplerInfo{
			Name: name, Spec: inst.Spec(),
			Count: count, K: k, Words: words, MaxWords: maxWords,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeJSONBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	inst, err := s.Register(req.Name, req.Spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	// The same payload GET /samplers serves: Stats reports the fresh
	// instance's real construction footprint, not zeroes.
	count, k, words, maxWords := inst.Stats()
	writeJSON(w, http.StatusCreated, SamplerInfo{
		Name: req.Name, Spec: inst.Spec(),
		Count: count, K: k, Words: words, MaxWords: maxWords,
	})
}

// maxBodyBytes bounds ingest bodies; a serving deployment would tune this.
const maxBodyBytes = 32 << 20

func decodeJSONBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	// A trailing second JSON value is a malformed batch, not a stream.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("serve: bad request body: trailing data after the JSON object")
	}
	return nil
}

// handleIngest accepts one batch per request: a JSON IngestRequest by
// default, or NDJSON Records under Content-Type application/x-ndjson. The
// batch feeds the substrate's batched hot path (ObserveBatch, or
// ObserveWeightedBatch when explicit weights ride along) in one call.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceFor(w, r)
	if !ok {
		return
	}
	req, err := decodeIngestBody(r, IngestRequest{})
	if err != nil {
		writeErr(w, err)
		return
	}
	count, err := inst.Ingest(req.Values, req.Timestamps, req.Weights)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Ingested: len(req.Values), Count: count})
}

// decodeIngestBody parses an ingest request body — NDJSON under
// Content-Type application/x-ndjson, a JSON IngestRequest otherwise —
// appending into the slices req arrives with (the tenant handlers pass
// slab-recycled scratch; the named path passes the zero value).
func decodeIngestBody(r *http.Request, req IngestRequest) (IngestRequest, error) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/x-ndjson") {
		return parseNDJSON(r, req)
	}
	if err := decodeJSONBody(r, &req); err != nil {
		return req, err
	}
	return req, nil
}

// NDJSON scanner bounds: lines buffer through initialNDJSONBufBytes and may
// grow to maxNDJSONLineBytes; a longer line is an explicit 413
// (ErrLineTooLong) rather than bufio.Scanner's bare "token too long" — the
// client can split the batch or switch to the JSON body.
const (
	initialNDJSONBufBytes = 64 << 10
	maxNDJSONLineBytes    = 1 << 20
)

// parseNDJSON folds a stream of Records into one batch, appending into the
// request's slices. Records must be uniform: either every record carries ts
// or none, and either every record carries weight or none (a ragged stream
// is a malformed batch). Presence is tracked explicitly — not by slice
// nil-ness — because recycled scratch slices are non-nil while empty.
func parseNDJSON(r *http.Request, req IngestRequest) (IngestRequest, error) {
	sc := bufio.NewScanner(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	sc.Buffer(make([]byte, initialNDJSONBufBytes), maxNDJSONLineBytes)
	line := 0
	var hasTS, hasW bool
	for sc.Scan() {
		raw := strings.TrimSpace(sc.Text())
		line++
		if raw == "" {
			continue
		}
		var rec Record
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return req, fmt.Errorf("serve: bad NDJSON record on line %d: %w", line, err)
		}
		if len(req.Values) == 0 {
			hasTS, hasW = rec.TS != nil, rec.Weight != nil
		} else {
			if (rec.TS != nil) != hasTS {
				return req, fmt.Errorf("serve: ragged NDJSON batch: line %d switches ts presence", line)
			}
			if (rec.Weight != nil) != hasW {
				return req, fmt.Errorf("serve: ragged NDJSON batch: line %d switches weight presence", line)
			}
		}
		req.Values = append(req.Values, rec.Value)
		if rec.TS != nil {
			req.Timestamps = append(req.Timestamps, *rec.TS)
		}
		if rec.Weight != nil {
			req.Weights = append(req.Weights, *rec.Weight)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return req, fmt.Errorf("%w (%d bytes; split the batch or use the JSON body)", ErrLineTooLong, maxNDJSONLineBytes)
		}
		return req, fmt.Errorf("serve: bad NDJSON body: %w", err)
	}
	return req, nil
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceFor(w, r)
	if !ok {
		return
	}
	at, err := atParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	es, sampled, err := inst.Sample(at)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := SampleResponse{OK: sampled}
	for _, e := range es {
		resp.Sample = append(resp.Sample, SampledElement{Value: e.Value, Index: e.Index, TS: e.TS})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSize(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceFor(w, r)
	if !ok {
		return
	}
	at, err := atParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	n, err := inst.Size(at)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"size": n})
}

func (s *Server) handleWeight(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceFor(w, r)
	if !ok {
		return
	}
	at, err := atParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	wt, err := inst.Weight(at)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"weight": wt})
}

// SubsetSumResponse answers GET /subsetsum.
type SubsetSumResponse struct {
	OK       bool    `json:"ok"`
	Estimate float64 `json:"estimate"`
}

// handleSubsetSum estimates Σ w(p) over the active elements whose value
// matches the ?prefix= and ?contains= filters (both optional, conjunctive
// — the predicate is evaluated post hoc over the sketch, so any filter
// can be asked after ingest).
func (s *Server) handleSubsetSum(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceFor(w, r)
	if !ok {
		return
	}
	at, err := atParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query()
	prefix, contains := q.Get("prefix"), q.Get("contains")
	pred := func(v string) bool {
		return strings.HasPrefix(v, prefix) && strings.Contains(v, contains)
	}
	est, sampled, err := inst.SubsetSum(at, pred)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SubsetSumResponse{OK: sampled, Estimate: est})
}

// handleSnapshot streams the instance's binary snapshot. When a state dir
// is attached and the instance is durable there, the same bytes are also
// persisted as the instance's latest on-disk snapshot — one consistent
// cut, on disk and on the wire.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceFor(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	var buf bytes.Buffer
	if err := inst.Snapshot(&buf); err != nil {
		writeErr(w, err)
		return
	}
	if sd := s.stateDir(); sd != nil && sd.has(name) {
		if err := sd.writeSnapBytes(name, buf.Bytes()); err != nil {
			writeErr(w, err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// handleRestore registers an instance under {name} from a snapshot body
// (the bytes POST /snapshot produced). The name must be free — restore
// never replaces a live instance. Any WAL coverage the snapshot mentions
// is irrelevant here: no WAL accompanies an HTTP body, and with a state
// dir attached the instance starts a fresh one.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	inst, _, err := RestoreInstance(bufio.NewReader(http.MaxBytesReader(nil, r.Body, maxSnapshotBytes)))
	if err != nil {
		writeErr(w, fmt.Errorf("serve: restore: %w", err))
		return
	}
	if err := s.Adopt(name, inst); err != nil {
		inst.Close()
		writeErr(w, err)
		return
	}
	if sd := s.stateDir(); sd != nil {
		if err := sd.Enable(name, inst); err != nil {
			s.drop(name)
			inst.Close()
			writeErr(w, err)
			return
		}
	}
	count, k, words, maxWords := inst.Stats()
	writeJSON(w, http.StatusCreated, SamplerInfo{
		Name: name, Spec: inst.Spec(),
		Count: count, K: k, Words: words, MaxWords: maxWords,
	})
}

// ---------------------------------------------------------------------------
// Fabric handlers
// ---------------------------------------------------------------------------

// Tenant request scratch: the decoded values/timestamps/weights slices are
// dead the moment the fabric call returns (the fabric copies into its own
// slab-recycled element batch and the substrates retain only the values),
// so they recycle per request. The named-instance path cannot share this —
// its pipelined admission RETAINS the batch in the staging queue.
var (
	tenantValuesPool  = slab.NewSlicePool[string](stream.MaxRecycledCap)
	tenantTSPool      = slab.NewSlicePool[int64](stream.MaxRecycledCap)
	tenantWeightsPool = slab.NewSlicePool[float64](stream.MaxRecycledCap)
)

func (s *Server) fabricFor(w http.ResponseWriter, r *http.Request) (*Fabric, bool) {
	f, ok := s.GetFabric(r.PathValue("fabric"))
	if !ok {
		writeErr(w, fmt.Errorf("%w: %q", ErrUnknownFabric, r.PathValue("fabric")))
		return nil, false
	}
	return f, true
}

// handleFabricList renders the fabric registry sorted by name.
func (s *Server) handleFabricList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.fabrics))
	for name := range s.fabrics {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]FabricInfo, 0, len(names))
	for _, name := range names {
		f, ok := s.GetFabric(name)
		if !ok {
			continue
		}
		out = append(out, FabricInfo{
			Name: name, Spec: f.Spec(),
			MaxTenants: f.MaxTenants(), Tenants: f.Tenants(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFabricRegister(w http.ResponseWriter, r *http.Request) {
	var req FabricRegisterRequest
	if err := decodeJSONBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	f, err := s.RegisterFabric(req.Name, req.Spec, req.MaxTenants)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, FabricInfo{
		Name: req.Name, Spec: f.Spec(),
		MaxTenants: f.MaxTenants(), Tenants: f.Tenants(),
	})
}

// handleTenantIngest is handleIngest against a fabric tenant, with the
// request scratch recycled through the tenant slab pools (a million thin
// writers must not allocate three slices per request).
func (s *Server) handleTenantIngest(w http.ResponseWriter, r *http.Request) {
	f, ok := s.fabricFor(w, r)
	if !ok {
		return
	}
	req, err := decodeIngestBody(r, IngestRequest{
		Values:     tenantValuesPool.Get(0),
		Timestamps: tenantTSPool.Get(0),
		Weights:    tenantWeightsPool.Get(0),
	})
	if err == nil {
		var count uint64
		count, err = f.Ingest(r.PathValue("id"), req.Values, req.Timestamps, req.Weights)
		if err == nil {
			writeJSON(w, http.StatusOK, IngestResponse{Ingested: len(req.Values), Count: count})
		}
	}
	if err != nil {
		writeErr(w, err)
	}
	tenantValuesPool.Put(req.Values)
	tenantTSPool.Put(req.Timestamps)
	tenantWeightsPool.Put(req.Weights)
}

func (s *Server) handleTenantSample(w http.ResponseWriter, r *http.Request) {
	f, ok := s.fabricFor(w, r)
	if !ok {
		return
	}
	at, err := atParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	es, sampled, err := f.Sample(r.PathValue("id"), at)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := SampleResponse{OK: sampled}
	for _, e := range es {
		resp.Sample = append(resp.Sample, SampledElement{Value: e.Value, Index: e.Index, TS: e.TS})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTenantSize(w http.ResponseWriter, r *http.Request) {
	f, ok := s.fabricFor(w, r)
	if !ok {
		return
	}
	at, err := atParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	n, err := f.Size(r.PathValue("id"), at)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"size": n})
}

func (s *Server) handleTenantWeight(w http.ResponseWriter, r *http.Request) {
	f, ok := s.fabricFor(w, r)
	if !ok {
		return
	}
	at, err := atParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	wt, err := f.Weight(r.PathValue("id"), at)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"weight": wt})
}

func (s *Server) handleTenantSubsetSum(w http.ResponseWriter, r *http.Request) {
	f, ok := s.fabricFor(w, r)
	if !ok {
		return
	}
	at, err := atParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query()
	prefix, contains := q.Get("prefix"), q.Get("contains")
	pred := func(v string) bool {
		return strings.HasPrefix(v, prefix) && strings.Contains(v, contains)
	}
	est, sampled, err := f.SubsetSum(r.PathValue("id"), at, pred)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SubsetSumResponse{OK: sampled, Estimate: est})
}

// Compile-time check: the wire sample shape matches the stream element.
var _ = func(e stream.Element[string]) SampledElement {
	return SampledElement{Value: e.Value, Index: e.Index, TS: e.TS}
}
