package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"slidingsample/internal/stream"
)

// Server is the registry plus its HTTP surface. Routes:
//
//	GET  /healthz            liveness
//	GET  /samplers           list registered samplers (name, spec, stats)
//	POST /samplers           register a sampler from a JSON {name, spec}
//	POST /ingest/{name}      batched ingest: JSON arrays or NDJSON records
//	GET  /sample/{name}      current sample            [?at=<ts>]
//	GET  /size/{name}        (1±ε) window size oracle  [?at=<ts>]
//	GET  /weight/{name}      (1±ε) weight total oracle [?at=<ts>]
//	GET  /subsetsum/{name}   HT subset-sum estimate    [?at=<ts>&prefix=&contains=]
//
// Close drains every instance (barrier, then shard shutdown) — call it
// after the enclosing http.Server has finished its graceful Shutdown so no
// handler is mid-flight.
type Server struct {
	mu     sync.RWMutex
	inst   map[string]*Instance
	mux    *http.ServeMux
	closed bool
}

// NewServer returns an empty registry serving the routes above.
func NewServer() *Server {
	s := &Server{inst: make(map[string]*Instance), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /samplers", s.handleList)
	s.mux.HandleFunc("POST /samplers", s.handleRegister)
	s.mux.HandleFunc("POST /ingest/{name}", s.handleIngest)
	s.mux.HandleFunc("GET /sample/{name}", s.handleSample)
	s.mux.HandleFunc("GET /size/{name}", s.handleSize)
	s.mux.HandleFunc("GET /weight/{name}", s.handleWeight)
	s.mux.HandleFunc("GET /subsetsum/{name}", s.handleSubsetSum)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Register builds the spec's substrate and adds it under name.
func (s *Server) Register(name string, spec Spec) (*Instance, error) {
	if name == "" || strings.ContainsAny(name, "/ \t\n") {
		return nil, fmt.Errorf("serve: sampler name must be non-empty without slashes or whitespace")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, dup := s.inst[name]; dup {
		return nil, ErrDuplicateName
	}
	inst, err := Build(spec)
	if err != nil {
		return nil, err
	}
	s.inst[name] = inst
	return inst, nil
}

// Get returns the named instance.
func (s *Server) Get(name string) (*Instance, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	inst, ok := s.inst[name]
	return inst, ok
}

// Close drains every registered instance: each takes a final barrier (so
// all dispatched elements are reflected in the shards) and then stops its
// shard goroutines. Instances stay queryable; ingest is refused afterwards.
func (s *Server) Close() {
	for _, in := range s.seal() {
		in.Close()
	}
}

// seal marks the registry closed and snapshots the instances under mu,
// so the (slow, instance-draining) Close calls run with the registry
// lock released. Returns nil when already closed.
func (s *Server) seal() []*Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	insts := make([]*Instance, 0, len(s.inst))
	for _, in := range s.inst {
		insts = append(insts, in)
	}
	return insts
}

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

// IngestRequest is the JSON batch body of POST /ingest/{name}. Timestamps
// are required in ts mode and must be omitted in seq mode; weights are
// optional and only accepted on substrates with a precomputed-weight path.
type IngestRequest struct {
	Values     []string  `json:"values"`
	Timestamps []int64   `json:"timestamps,omitempty"`
	Weights    []float64 `json:"weights,omitempty"`
}

// Record is one NDJSON ingest record (Content-Type: application/x-ndjson).
type Record struct {
	Value  string   `json:"value"`
	TS     *int64   `json:"ts,omitempty"`
	Weight *float64 `json:"weight,omitempty"`
}

// IngestResponse reports a successful batch.
type IngestResponse struct {
	Ingested int    `json:"ingested"`
	Count    uint64 `json:"count"`
}

// SampledElement is one sample entry on the wire.
type SampledElement struct {
	Value string `json:"value"`
	Index uint64 `json:"index"`
	TS    int64  `json:"ts"`
}

// SampleResponse answers GET /sample; OK is false while the window is
// empty (Sample is then absent).
type SampleResponse struct {
	OK     bool             `json:"ok"`
	Sample []SampledElement `json:"sample,omitempty"`
}

// SamplerInfo is one GET /samplers listing entry.
type SamplerInfo struct {
	Name     string `json:"name"`
	Spec     Spec   `json:"spec"`
	Count    uint64 `json:"count"`
	K        int    `json:"k"`
	Words    int    `json:"words"`
	MaxWords int    `json:"maxWords"`
}

// RegisterRequest is the POST /samplers body.
type RegisterRequest struct {
	Name string `json:"name"`
	Spec Spec   `json:"spec"`
}

type errResponse struct {
	Error string `json:"error"`
}

// statusFor maps serving-layer errors onto HTTP statuses: requests that
// can never succeed are 400, missing names 404, requests that conflict
// with the instance's current stream state (clocks, shutdown) 409, and
// transient overload — a full ingest staging queue — 503 (retryable).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownSampler):
		return http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDuplicateName),
		errors.Is(err, ErrTimeBackwards),
		errors.Is(err, ErrClockBackwards),
		errors.Is(err, ErrNoArrivals),
		errors.Is(err, ErrClosed):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), errResponse{Error: err.Error()})
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

func (s *Server) instanceFor(w http.ResponseWriter, r *http.Request) (*Instance, bool) {
	inst, ok := s.Get(r.PathValue("name"))
	if !ok {
		writeErr(w, fmt.Errorf("%w: %q", ErrUnknownSampler, r.PathValue("name")))
		return nil, false
	}
	return inst, true
}

// atParam parses the optional ?at= query time.
func atParam(r *http.Request) (*int64, error) {
	raw := r.URL.Query().Get("at")
	if raw == "" {
		return nil, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("serve: bad at=%q: want an integer timestamp", raw)
	}
	return &v, nil
}

// handleList renders the registry sorted by name (map order is random;
// listings must be deterministic).
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.inst))
	for name := range s.inst {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]SamplerInfo, 0, len(names))
	for _, name := range names {
		inst, ok := s.Get(name)
		if !ok {
			continue
		}
		count, k, words, maxWords := inst.Stats()
		out = append(out, SamplerInfo{
			Name: name, Spec: inst.Spec(),
			Count: count, K: k, Words: words, MaxWords: maxWords,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeJSONBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	inst, err := s.Register(req.Name, req.Spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	// The same payload GET /samplers serves: Stats reports the fresh
	// instance's real construction footprint, not zeroes.
	count, k, words, maxWords := inst.Stats()
	writeJSON(w, http.StatusCreated, SamplerInfo{
		Name: req.Name, Spec: inst.Spec(),
		Count: count, K: k, Words: words, MaxWords: maxWords,
	})
}

// maxBodyBytes bounds ingest bodies; a serving deployment would tune this.
const maxBodyBytes = 32 << 20

func decodeJSONBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	// A trailing second JSON value is a malformed batch, not a stream.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("serve: bad request body: trailing data after the JSON object")
	}
	return nil
}

// handleIngest accepts one batch per request: a JSON IngestRequest by
// default, or NDJSON Records under Content-Type application/x-ndjson. The
// batch feeds the substrate's batched hot path (ObserveBatch, or
// ObserveWeightedBatch when explicit weights ride along) in one call.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceFor(w, r)
	if !ok {
		return
	}
	var req IngestRequest
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/x-ndjson") {
		parsed, err := parseNDJSON(r)
		if err != nil {
			writeErr(w, err)
			return
		}
		req = parsed
	} else {
		if err := decodeJSONBody(r, &req); err != nil {
			writeErr(w, err)
			return
		}
	}
	count, err := inst.Ingest(req.Values, req.Timestamps, req.Weights)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Ingested: len(req.Values), Count: count})
}

// parseNDJSON folds a stream of Records into one batch. Records must be
// uniform: either every record carries ts or none, and either every record
// carries weight or none (a ragged stream is a malformed batch).
func parseNDJSON(r *http.Request) (IngestRequest, error) {
	var req IngestRequest
	sc := bufio.NewScanner(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		raw := strings.TrimSpace(sc.Text())
		line++
		if raw == "" {
			continue
		}
		var rec Record
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return req, fmt.Errorf("serve: bad NDJSON record on line %d: %w", line, err)
		}
		if (rec.TS != nil) != (req.Timestamps != nil) && len(req.Values) > 0 {
			return req, fmt.Errorf("serve: ragged NDJSON batch: line %d switches ts presence", line)
		}
		if (rec.Weight != nil) != (req.Weights != nil) && len(req.Values) > 0 {
			return req, fmt.Errorf("serve: ragged NDJSON batch: line %d switches weight presence", line)
		}
		req.Values = append(req.Values, rec.Value)
		if rec.TS != nil {
			req.Timestamps = append(req.Timestamps, *rec.TS)
		}
		if rec.Weight != nil {
			req.Weights = append(req.Weights, *rec.Weight)
		}
	}
	if err := sc.Err(); err != nil {
		return req, fmt.Errorf("serve: bad NDJSON body: %w", err)
	}
	return req, nil
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceFor(w, r)
	if !ok {
		return
	}
	at, err := atParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	es, sampled, err := inst.Sample(at)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := SampleResponse{OK: sampled}
	for _, e := range es {
		resp.Sample = append(resp.Sample, SampledElement{Value: e.Value, Index: e.Index, TS: e.TS})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSize(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceFor(w, r)
	if !ok {
		return
	}
	at, err := atParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	n, err := inst.Size(at)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"size": n})
}

func (s *Server) handleWeight(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceFor(w, r)
	if !ok {
		return
	}
	at, err := atParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	wt, err := inst.Weight(at)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"weight": wt})
}

// SubsetSumResponse answers GET /subsetsum.
type SubsetSumResponse struct {
	OK       bool    `json:"ok"`
	Estimate float64 `json:"estimate"`
}

// handleSubsetSum estimates Σ w(p) over the active elements whose value
// matches the ?prefix= and ?contains= filters (both optional, conjunctive
// — the predicate is evaluated post hoc over the sketch, so any filter
// can be asked after ingest).
func (s *Server) handleSubsetSum(w http.ResponseWriter, r *http.Request) {
	inst, ok := s.instanceFor(w, r)
	if !ok {
		return
	}
	at, err := atParam(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query()
	prefix, contains := q.Get("prefix"), q.Get("contains")
	pred := func(v string) bool {
		return strings.HasPrefix(v, prefix) && strings.Contains(v, contains)
	}
	est, sampled, err := inst.SubsetSum(at, pred)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SubsetSumResponse{OK: sampled, Estimate: est})
}

// Compile-time check: the wire sample shape matches the stream element.
var _ = func(e stream.Element[string]) SampledElement {
	return SampledElement{Value: e.Value, Index: e.Index, TS: e.TS}
}
