package serve

import (
	"net/http"
	"time"
)

// HTTPTimeouts are the slow-client protections for the serving listener.
// A zero-valued http.Server never times a connection out: one slowloris
// client trickling header bytes (or a body at one byte per minute) pins a
// handler goroutine and its connection forever, and enough of them exhaust
// the process. Every production listener in front of the registry should
// set all four knobs; NewHTTPServer applies them.
type HTTPTimeouts struct {
	// ReadHeaderTimeout bounds reading the request headers.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading the whole request, body included — ingest
	// bodies are capped at maxBodyBytes, so a healthy client finishes fast.
	ReadTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit between
	// requests.
	IdleTimeout time.Duration
	// MaxHeaderBytes bounds the request header size.
	MaxHeaderBytes int
}

// DefaultHTTPTimeouts returns the serving defaults: generous enough for a
// 32 MiB ingest body over a slow link, tight enough that an idle or
// malicious connection is reclaimed in seconds.
func DefaultHTTPTimeouts() HTTPTimeouts {
	return HTTPTimeouts{
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
}

// withDefaults fills zero fields from DefaultHTTPTimeouts, so callers may
// override only the knobs they care about. (A zero knob is never a valid
// operator intent here — it would mean "no protection", which is exactly
// the misconfiguration this constructor exists to prevent.)
func (t HTTPTimeouts) withDefaults() HTTPTimeouts {
	d := DefaultHTTPTimeouts()
	if t.ReadHeaderTimeout <= 0 {
		t.ReadHeaderTimeout = d.ReadHeaderTimeout
	}
	if t.ReadTimeout <= 0 {
		t.ReadTimeout = d.ReadTimeout
	}
	if t.IdleTimeout <= 0 {
		t.IdleTimeout = d.IdleTimeout
	}
	if t.MaxHeaderBytes <= 0 {
		t.MaxHeaderBytes = d.MaxHeaderBytes
	}
	return t
}

// NewHTTPServer returns an http.Server for the handler with the slow-client
// protections applied: ReadHeaderTimeout, ReadTimeout, IdleTimeout and
// MaxHeaderBytes are always set (zero fields in timeouts fall back to
// DefaultHTTPTimeouts). There is deliberately no WriteTimeout: responses
// are small JSON bodies the handlers produce promptly, and a write deadline
// would also cut off legitimately slow readers of large /sample responses.
func NewHTTPServer(addr string, handler http.Handler, timeouts HTTPTimeouts) *http.Server {
	t := timeouts.withDefaults()
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: t.ReadHeaderTimeout,
		ReadTimeout:       t.ReadTimeout,
		IdleTimeout:       t.IdleTimeout,
		MaxHeaderBytes:    t.MaxHeaderBytes,
	}
}
