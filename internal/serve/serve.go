// Package serve is the HTTP serving layer over the unified sampler
// interfaces: a named-sampler registry, a batched JSON/NDJSON ingest
// endpoint feeding ObserveBatch/ObserveWeightedBatch, and concurrent read
// endpoints (/sample, /size, /weight, /subsetsum) — the deployment shape
// the paper's worst-case memory bounds were designed for (a sampler is
// long-lived in-memory state; traffic is many small writes and reads
// against it). See DESIGN.md §7 for the architecture.
//
// Concurrency model (per registered instance; DESIGN.md §7 has the full
// argument):
//
//   - Ingest is PIPELINED: handlers validate outside any lock, then hold a
//     small admission mutex just long enough to check the monotone stream
//     clock and the staging bounds and append the batch to a per-instance
//     staging queue — concurrent producers admit back to back without
//     waiting for sampler work. A single per-instance applier goroutine
//     drains the queue in admission order into ObserveBatch /
//     ObserveWeightedBatch under the write lock. The queue is bounded
//     (MaxQueuedIngestEvents); admission past the bound is an explicit
//     ErrOverloaded (HTTP 503), never unbounded memory.
//   - Clock-advancing queries (/sample, /subsetsum) hold the WRITE lock:
//     they fix their serialization point under the admission mutex
//     (snapshotting the staged prefix and the clock atomically), drain
//     that prefix themselves, barrier, and query — so every response is a
//     deterministic function of the admission order, applier timing be
//     damned. On sharded substrates the per-shard sub-queries then fan out
//     across internal/parallel's bounded worker pool.
//   - /size holds the READ lock: SizeAt is a read-only query end to end —
//     ehist.Counter.EstimateAt neither advances the clock nor expires
//     buckets (made so in PR 3 precisely for this path). It first waits
//     for the applier to reach its admission snapshot, so a sequential
//     client always sees its own ingest reflected.
//   - /weight rides the READ lock too: the sharded weight oracles memoize
//     per (dispatch count, query time) in a shared scratch cache, which a
//     small dedicated mutex (oracleMu) serializes — concurrent scrapes
//     contend with each other, not with ingest.
//   - /samplers (Stats) reads the footprint under the READ lock whenever
//     nothing is staged and a barrier has flushed the shards since the
//     last apply; only the first scrape after ingest pays the write lock.
//
// Every response is deterministic under a fixed Spec.Seed: two servers
// given the same registrations and the same ADMISSION order return
// byte-identical bodies — the staging queue preserves admission order, and
// each query's visible prefix and clock are fixed atomically at its
// serialization point — which is how the end-to-end tests cross-check the
// HTTP surface against directly-driven samplers.
package serve

import (
	"errors"
	"fmt"

	"slidingsample/internal/stream"
	"slidingsample/internal/substrate"
)

// Errors returned by the serving layer, mapped onto HTTP status codes by
// the handlers (statusFor): unknown names are 404, malformed requests 400,
// and stream-state conflicts — non-monotone clocks, queries before the
// first arrival — 409.
var (
	// ErrUnknownSampler: no registry entry under the requested name.
	ErrUnknownSampler = errors.New("serve: unknown sampler name")
	// ErrDuplicateName: Register with a name already in the registry.
	ErrDuplicateName = errors.New("serve: sampler name already registered")
	// ErrBatchShape: ingest slices of unequal lengths, or timestamps
	// missing/present against the window mode.
	ErrBatchShape = errors.New("serve: batch needs equally long values and timestamps/weights, with timestamps exactly on timestamp-window samplers")
	// ErrBadWeight: an ingest weight that is not positive and finite.
	ErrBadWeight = errors.New("serve: weights must be positive and finite")
	// ErrWeightsUnsupported: explicit weights for a substrate that derives
	// weights from its construction-time weight function.
	ErrWeightsUnsupported = errors.New("serve: substrate derives weights from its weight function and takes no explicit weights")
	// ErrTimeBackwards: ingest timestamps that regress against the
	// instance's monotone stream clock.
	ErrTimeBackwards = errors.New("serve: ingest timestamps must be non-decreasing")
	// ErrClockBackwards: a clock-advancing query (sample, subsetsum) at a
	// time before the instance's stream clock.
	ErrClockBackwards = errors.New("serve: query clock must be non-decreasing")
	// ErrNoArrivals: an "as of" query on a timestamp window that has seen
	// no elements (answering would pin the stream clock arbitrarily).
	ErrNoArrivals = errors.New("serve: timestamp window has no arrivals yet")
	// ErrNoClock: an at= parameter on a sequence-window sampler.
	ErrNoClock = errors.New("serve: sequence windows have no query clock")
	// ErrUnsupported: the substrate lacks the queried capability (e.g.
	// /weight on a uniform sampler, /subsetsum on a non-estimator).
	ErrUnsupported = errors.New("serve: substrate does not support this endpoint")
	// ErrClosed: ingest after the server began its graceful shutdown.
	ErrClosed = errors.New("serve: server is shutting down")
	// ErrOverloaded: the instance's ingest staging queue is full — the
	// applier is not keeping up with admission. Surfaced as 503 so clients
	// back off and retry instead of the queue growing without bound.
	ErrOverloaded = errors.New("serve: ingest staging queue is full, retry later")
	// ErrLineTooLong: one NDJSON ingest line exceeded the scanner's bound.
	// Surfaced as 413 — the batch can be split, so the condition is the
	// client's to fix, not transient.
	ErrLineTooLong = errors.New("serve: NDJSON line exceeds the per-line limit")
	// ErrUnknownFabric: no fabric registered under the requested name.
	ErrUnknownFabric = errors.New("serve: unknown fabric name")
	// ErrUnknownTenant: a query for a tenant that has never ingested
	// (tenants are created lazily on first arrival; queries never create).
	ErrUnknownTenant = errors.New("serve: unknown tenant (tenants are created on first ingest)")
	// ErrTenantBudget: a first arrival that would exceed the fabric's tenant
	// budget. Surfaced as 507 — admitting the tenant would commit memory the
	// operator has capped, and the condition does not clear by retrying.
	ErrTenantBudget = errors.New("serve: fabric tenant budget exhausted")
	// ErrBadTenantID: a tenant id that is empty, too long, or carries
	// path/whitespace characters.
	ErrBadTenantID = errors.New("serve: tenant id must be non-empty, at most 128 bytes, without slashes or whitespace")
)

// Spec names a substrate the registry can serve — the shared
// name→constructor vocabulary of internal/substrate, which cmd/swsample's
// flags resolve through too, so the CLI and HTTP surfaces cannot drift.
type Spec = substrate.Spec

// Serving-grade caps on the spec parameters that drive EAGER allocation
// at construction: registration is a network-reachable endpoint, so a
// single unauthenticated POST must not be able to allocate the process to
// death. K sizes per-slot state in every substrate, G spawns goroutines
// and buffered channels, and the fullwindow baseline allocates its Θ(n)
// ring up front (window.SeqBuffer is documented test/bench-grade). The
// CLIs resolve specs through internal/substrate directly and are not
// capped — a local operator's own machine is their own business.
const (
	// MaxK bounds the sample/sketch size of a registered sampler.
	MaxK = 1 << 16
	// MaxG bounds the shard count of a registered sampler.
	MaxG = 256
	// MaxFullWindowN bounds the eagerly allocated fullwindow baseline ring.
	MaxFullWindowN = 1 << 22
)

func validateServable(spec Spec) error {
	if spec.K > MaxK {
		return fmt.Errorf("serve: k %d exceeds the serving cap %d", spec.K, MaxK)
	}
	if spec.G > MaxG {
		return fmt.Errorf("serve: g %d exceeds the serving cap %d", spec.G, MaxG)
	}
	if spec.Sampler == "fullwindow" && spec.Mode == "seq" && spec.N > MaxFullWindowN {
		return fmt.Errorf("serve: fullwindow allocates its Θ(n) ring eagerly; n capped at %d for serving", MaxFullWindowN)
	}
	return nil
}

// Build constructs the spec's substrate, seeds it, and wires up its
// capability views. Served values are strings (the HTTP surface is
// line-shaped, like cmd/swsample); the weight function comes from
// Spec.Weight.
func Build(spec Spec) (*Instance, error) {
	if err := validateServable(spec); err != nil {
		return nil, err
	}
	built, seed, err := substrate.New(spec)
	if err != nil {
		return nil, err
	}
	resolved := spec
	resolved.Seed = seed
	return newInstance(resolved, built), nil
}

// ingester is the capability every registrable substrate has: batched
// ingest plus the unified metadata surface. It is stream.Sampler minus
// Sample — the subset-sum estimators ingest and report like samplers but
// answer estimates, not samples.
type ingester interface {
	Observe(value string, ts int64)
	ObserveBatch(batch []stream.Element[string])
	K() int
	Count() uint64
	stream.MemoryReporter
}
