package serve

// Kill-and-recover end-to-end battery (DESIGN.md §10). The durability
// contract under test: a recovered instance (snapshot + WAL tail replay)
// is indistinguishable — bit for bit, over HTTP — from a twin that never
// crashed. The crash point sits BETWEEN a periodic snapshot and later
// admitted batches, so recovery must stitch both sources together; and
// because WAL replay re-admits elements one at a time, the battery also
// pins batch-boundary invariance of the ingest path.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// httpTranscript runs the fixed query script against a server and
// renders status + exact body for each request. Queries draw from the
// sampler RNG in request order, so both servers must see the same script.
func httpTranscript(t *testing.T, base, name string) string {
	t.Helper()
	var b strings.Builder
	for _, path := range []string{
		"/sample/" + name,
		"/size/" + name,
		"/weight/" + name,
		"/subsetsum/" + name + "?contains=1",
		"/sample/" + name,
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "GET %s -> %d %s\n", path, resp.StatusCode, body)
	}
	return b.String()
}

// httpIngest posts the deterministic batch [start, start+count) as one
// JSON ingest request.
func httpIngest(t *testing.T, base, name string, spec Spec, start, count int) {
	t.Helper()
	values, timestamps := seedBatch(spec, start, count)
	payload := map[string]any{"values": values}
	if timestamps != nil {
		payload["timestamps"] = timestamps
	}
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/ingest/"+name, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest %s [%d,%d): %d %s", name, start, start+count, resp.StatusCode, msg)
	}
}

// TestKillAndRecover crashes a durable server after a snapshot AND two
// more admitted batches, recovers into a fresh server from the state
// directory, and requires its HTTP responses to be byte-identical to a
// control server that never died.
func TestKillAndRecover(t *testing.T) {
	for _, spec := range fuzzSpecs() {
		t.Run(spec.Mode+"/"+spec.Sampler, func(t *testing.T) {
			// Control: the uninterrupted twin.
			control := NewServer()
			defer control.Close()
			cinst, err := control.Register("d", spec)
			if err != nil {
				t.Fatal(err)
			}
			seedIngest(t, cinst, 0, 48)
			seedIngest(t, cinst, 48, 20)
			seedIngest(t, cinst, 68, 12)

			// Durable: snapshot covers the first 48 events, the WAL tail
			// holds the remaining 32 admitted after the last snapshot.
			dir := t.TempDir()
			sd, err := OpenStateDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			victim := NewServer()
			victim.SetStateDir(sd)
			vinst, err := victim.Register("d", spec)
			if err != nil {
				t.Fatal(err)
			}
			seedIngest(t, vinst, 0, 48)
			if err := sd.SnapshotAll(); err != nil {
				t.Fatal(err)
			}
			seedIngest(t, vinst, 48, 20)
			seedIngest(t, vinst, 68, 12)
			// "Kill": drain goroutines but write no final snapshot — the
			// last 32 events exist only in the WAL.
			victim.Close()

			// Recover into a brand-new process-equivalent.
			sd2, err := OpenStateDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			revived := NewServer()
			defer revived.Close()
			names, err := sd2.Recover(revived)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if len(names) != 1 || names[0] != "d" {
				t.Fatalf("recovered %v, want [d]", names)
			}
			revived.SetStateDir(sd2)

			controlSrv := httptest.NewServer(control)
			defer controlSrv.Close()
			revivedSrv := httptest.NewServer(revived)
			defer revivedSrv.Close()

			// Identical scripts from here on: queries, another ingest
			// (exercising the recovered WAL), queries again.
			got := httpTranscript(t, revivedSrv.URL, "d")
			want := httpTranscript(t, controlSrv.URL, "d")
			if got != want {
				t.Fatalf("post-recovery transcript diverged:\n--- recovered\n%s--- control\n%s", got, want)
			}
			httpIngest(t, revivedSrv.URL, "d", spec, 80, 24)
			httpIngest(t, controlSrv.URL, "d", spec, 80, 24)
			got = httpTranscript(t, revivedSrv.URL, "d")
			want = httpTranscript(t, controlSrv.URL, "d")
			if got != want {
				t.Fatalf("post-recovery resume diverged:\n--- recovered\n%s--- control\n%s", got, want)
			}
		})
	}
}

// TestHTTPSnapshotRestoreRoundTrip ships a snapshot over the wire:
// POST /snapshot on one server, POST /restore on another, then requires
// the two to serve byte-identical responses.
func TestHTTPSnapshotRestoreRoundTrip(t *testing.T) {
	spec := Spec{Mode: "ts", Sampler: "sharded-weighted-ts-wor", T0: 16, K: 3, G: 4, Seed: 7}

	src := NewServer()
	defer src.Close()
	inst, err := src.Register("d", spec)
	if err != nil {
		t.Fatal(err)
	}
	seedIngest(t, inst, 0, 60)
	srcSrv := httptest.NewServer(src)
	defer srcSrv.Close()

	resp, err := http.Post(srcSrv.URL+"/snapshot/d", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	snapBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d %s", resp.StatusCode, snapBytes)
	}
	if err != nil {
		t.Fatal(err)
	}

	dst := NewServer()
	defer dst.Close()
	dstSrv := httptest.NewServer(dst)
	defer dstSrv.Close()
	resp, err = http.Post(dstSrv.URL+"/restore/d", "application/octet-stream", bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("restore: %d %s", resp.StatusCode, msg)
	}

	for round := 0; round < 3; round++ {
		start := 60 + round*15
		httpIngest(t, srcSrv.URL, "d", spec, start, 15)
		httpIngest(t, dstSrv.URL, "d", spec, start, 15)
		got := httpTranscript(t, dstSrv.URL, "d")
		want := httpTranscript(t, srcSrv.URL, "d")
		if got != want {
			t.Fatalf("round %d diverged:\n--- restored\n%s--- source\n%s", round, got, want)
		}
	}
}

// TestSnapshotWhileIngesting hammers a durable instance with concurrent
// ingest, periodic snapshots, and queries (run under -race by
// `make test-race` and `make recover-smoke`), then crash-recovers and
// checks that every acknowledged element survived.
func TestSnapshotWhileIngesting(t *testing.T) {
	spec := Spec{Mode: "ts", Sampler: "sharded-weighted-ts-wor", T0: 16, K: 4, G: 4, Seed: 99}
	dir := t.TempDir()
	sd, err := OpenStateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	s.SetStateDir(sd)
	inst, err := s.Register("hammer", spec)
	if err != nil {
		t.Fatal(err)
	}

	var (
		stop     = make(chan struct{})
		admitted atomic.Uint64
		wg       sync.WaitGroup
	)
	wg.Add(3)
	go func() { // ingester: acknowledged == WAL-logged
		defer wg.Done()
		for start := 0; ; start += 8 {
			select {
			case <-stop:
				return
			default:
			}
			values, timestamps := seedBatch(spec, start, 8)
			if _, err := inst.Ingest(values, timestamps, nil); err != nil {
				if errors.Is(err, ErrOverloaded) {
					start -= 8
					time.Sleep(time.Millisecond)
					continue
				}
				t.Errorf("ingest: %v", err)
				return
			}
			admitted.Add(8)
		}
	}()
	go func() { // snapshotter
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := sd.SnapshotAll(); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
			}
		}
	}()
	go func() { // querier
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				inst.Sample(nil)
				inst.Stats()
			}
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	s.Close() // crash: no final snapshot

	sd2, err := OpenStateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	revived := NewServer()
	defer revived.Close()
	if _, err := sd2.Recover(revived); err != nil {
		t.Fatalf("recover after hammer: %v", err)
	}
	rinst, ok := revived.Get("hammer")
	if !ok {
		t.Fatal("hammer instance not recovered")
	}
	count, _, _, _ := rinst.Stats()
	if want := admitted.Load(); count != want {
		t.Fatalf("recovered %d events, want every acknowledged one (%d)", count, want)
	}
}
