package serve

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"slidingsample/internal/parallel"
)

// pipelineSpecs is the four sharded weighted substrates the determinism
// acceptance criterion names, plus the sharded uniform ones for good
// measure.
var pipelineSpecs = map[string]Spec{
	"wtswor":  {Mode: "ts", Sampler: "sharded-weighted-ts-wor", T0: 60, K: 5, G: 4, Seed: 11},
	"wtswr":   {Mode: "ts", Sampler: "sharded-weighted-ts-wr", T0: 60, K: 5, G: 4, Seed: 12},
	"wseqwor": {Mode: "seq", Sampler: "sharded-weighted-wor", N: 64, K: 5, G: 4, Seed: 13},
	"wseqwr":  {Mode: "seq", Sampler: "sharded-weighted-wr", N: 64, K: 5, G: 4, Seed: 14},
	"utswr":   {Mode: "ts", Sampler: "sharded-wr", T0: 60, K: 5, G: 4, Seed: 15},
	"utswor":  {Mode: "ts", Sampler: "sharded-wor", T0: 60, K: 5, G: 4, Seed: 16},
}

// pipelineTranscript drives one server through a fixed sequential request
// script — batched ingest, samples, oracles — and returns the concatenated
// response bodies. The script is identical across calls, so two servers
// with equal seeds must return byte-identical transcripts.
func pipelineTranscript(t *testing.T, names []string) string {
	t.Helper()
	s := NewServer()
	for _, name := range names {
		if _, err := s.Register(name, pipelineSpecs[name]); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	var out strings.Builder
	now := int64(0)
	idx := 0
	for round := 0; round < 8; round++ {
		var vals, tstamps, weights []string
		for i := 0; i < 23; i++ {
			if i%4 != 3 {
				now++
			}
			vals = append(vals, fmt.Sprintf("%q", fmt.Sprintf("v%d", idx)))
			tstamps = append(tstamps, fmt.Sprintf("%d", now))
			weights = append(weights, fmt.Sprintf("%d.25", idx%9+1))
			idx++
		}
		for _, name := range names {
			body := `{"values":[` + strings.Join(vals, ",") + `]`
			if pipelineSpecs[name].Mode == "ts" {
				body += `,"timestamps":[` + strings.Join(tstamps, ",") + `]`
			}
			if strings.Contains(pipelineSpecs[name].Sampler, "weighted") {
				body += `,"weights":[` + strings.Join(weights, ",") + `]`
			}
			body += `}`
			code, resp := post(t, ts.URL+"/ingest/"+name, body)
			wantStatus(t, code, 200, resp)
			out.WriteString(resp)
		}
		for _, name := range names {
			for _, ep := range []string{"/sample/", "/size/", "/weight/"} {
				code, resp := get(t, ts.URL+ep+name)
				if code != 200 && code != 400 { // 400: capability absent on this substrate
					t.Fatalf("GET %s%s: status %d (%s)", ep, name, code, resp)
				}
				out.WriteString(resp)
			}
		}
	}
	return out.String()
}

// TestPipelinedMatchesLegacyIngest is the acceptance-criterion determinism
// regression: the pipelined staging-queue ingest path plus the parallel
// shard fan-out produce responses byte-identical to the legacy
// lock-everything ingest path with sequential shard queries, under equal
// seeds and an equal request order — for all four sharded weighted
// substrates and the sharded uniform ones.
func TestPipelinedMatchesLegacyIngest(t *testing.T) {
	names := []string{"wtswor", "wtswr", "wseqwor", "wseqwr", "utswr", "utswor"}

	SetPipelinedIngest(false)
	parallel.SetQueryFanout(1)
	legacy := pipelineTranscript(t, names)

	SetPipelinedIngest(true)
	parallel.SetQueryFanout(8)
	t.Cleanup(func() { parallel.SetQueryFanout(0) })
	pipelined := pipelineTranscript(t, names)

	if legacy != pipelined {
		t.Fatalf("pipelined+fanout transcript diverges from legacy+sequential\nlegacy:    %.400s\npipelined: %.400s", legacy, pipelined)
	}
}

// TestIngestOverload pins the bounded-queue contract: when the applier
// cannot run (the application lock is held) and the staging queue fills,
// admission fails with ErrOverloaded — mapped to HTTP 503 — and succeeds
// again once the queue drains.
func TestIngestOverload(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()
	inst, err := s.Register("q", Spec{Mode: "ts", Sampler: "sharded-weighted-ts-wor", T0: 60, K: 4, G: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	inst.queueCap = 5 // shrink the bound so the test fills it instantly

	// Pin the application lock so nothing drains while we overfill.
	// Admission only needs the small queue mutex, so staging keeps working.
	inst.mu.Lock()
	if _, err := inst.Ingest([]string{"a", "b", "c"}, []int64{1, 1, 2}, nil); err != nil {
		inst.mu.Unlock()
		t.Fatalf("first batch: %v", err)
	}
	if _, err := inst.Ingest([]string{"d", "e"}, []int64{2, 3}, nil); err != nil {
		inst.mu.Unlock()
		t.Fatalf("second batch (at the bound): %v", err)
	}
	if _, err := inst.Ingest([]string{"f"}, []int64{3}, nil); err != ErrOverloaded {
		inst.mu.Unlock()
		t.Fatalf("overfull queue: got %v, want ErrOverloaded", err)
	}
	// The HTTP surface maps the same condition to 503, with the Retry-After
	// backoff hint (DESIGN.md §7: nothing was admitted — pause briefly and
	// resend the SAME batch).
	code, body, hdr := postHdr(t, ts.URL+"/ingest/q", `{"values":["g"],"timestamps":[4]}`)
	inst.mu.Unlock()
	wantStatus(t, code, 503, body)
	if got := hdr.Get("Retry-After"); got != "1" {
		t.Fatalf("503 Retry-After = %q, want %q", got, "1")
	}

	// Once the applier drains, admission succeeds again and the rejected
	// batches left no trace: the count reflects exactly the admitted ones.
	code, body = post(t, ts.URL+"/ingest/q", `{"values":["h"],"timestamps":[4]}`)
	wantStatus(t, code, 200, body)
	if want := `{"ingested":1,"count":6}`; body != want {
		t.Fatalf("post-drain ingest body %s, want %s", body, want)
	}
}

// TestPipelinedConcurrentProducers hammers pipelined admission: many
// producers ingest concurrently into one seq-mode instance (no timestamp
// ordering between them to violate), while readers scrape every endpoint.
// The final count must account for every admitted element exactly once,
// and a final sample must see a fully drained, consistent substrate.
func TestPipelinedConcurrentProducers(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()
	if _, err := s.Register("cp", Spec{Mode: "seq", Sampler: "sharded-weighted-wr", N: 160, K: 4, G: 4, Seed: 21}); err != nil {
		t.Fatal(err)
	}
	const (
		producers = 8
		rounds    = 40
		perBatch  = 11
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var vals []string
				for i := 0; i < perBatch; i++ {
					vals = append(vals, fmt.Sprintf("%q", fmt.Sprintf("p%dr%di%d", p, r, i)))
				}
				code, body := post(t, ts.URL+"/ingest/cp", `{"values":[`+strings.Join(vals, ",")+`]}`)
				if code != 200 && code != 503 {
					t.Errorf("ingest status %d: %s", code, body)
					return
				}
				if code == 503 {
					r-- // overloaded: retry the batch
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for rd := 0; rd < 4; rd++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				get(t, ts.URL+"/sample/cp")
				get(t, ts.URL+"/weight/cp")
				get(t, ts.URL+"/samplers")
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	code, body := get(t, ts.URL+"/sample/cp")
	wantStatus(t, code, 200, body)
	inst, _ := s.Get("cp")
	count, _, _, _ := inst.Stats()
	if want := uint64(producers * rounds * perBatch); count != want {
		t.Fatalf("final count %d, want %d", count, want)
	}
}
