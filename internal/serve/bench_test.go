package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"slidingsample/internal/parallel"
)

// benchSpec is the workload substrate for the HTTP load benchmarks:
// seq-mode so concurrent producers cannot race the timestamp clock.
var benchSpec = Spec{Mode: "seq", Sampler: "sharded-weighted-wor", N: 4096, K: 16, G: 4, Seed: 5}

const benchBatch = 100

func benchBody(i int) string {
	var sb strings.Builder
	sb.WriteString(`{"values":[`)
	for j := 0; j < benchBatch; j++ {
		if j > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `"b%d-i%d"`, i, j)
	}
	sb.WriteString(`],"weights":[`)
	for j := 0; j < benchBatch; j++ {
		if j > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d.5", (i+j)%9+1)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// benchServer builds a fresh registry + HTTP server under the requested
// ingest mode and restores the pipelined default on cleanup.
func benchServer(b *testing.B, pipelined bool) (*httptest.Server, *http.Client) {
	b.Helper()
	SetPipelinedIngest(pipelined)
	if !pipelined {
		parallel.SetQueryFanout(1)
	}
	b.Cleanup(func() {
		SetPipelinedIngest(true)
		parallel.SetQueryFanout(0)
	})
	s := NewServer()
	if _, err := s.Register("bench", benchSpec); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	b.Cleanup(func() { ts.Close(); s.Close() })
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	return ts, client
}

// benchModes runs fn once per ingest mode and client count — the grid the
// BENCH_5 before/after rows are drawn from.
func benchModes(b *testing.B, fn func(b *testing.B, pipelined bool, clients int)) {
	for _, mode := range []struct {
		name      string
		pipelined bool
	}{{"legacy", false}, {"pipelined", true}} {
		for _, clients := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/clients=%d", mode.name, clients), func(b *testing.B) {
				fn(b, mode.pipelined, clients)
			})
		}
	}
}

// BenchmarkHTTPIngest measures concurrent batched ingest through the real
// HTTP stack: b.N batches of benchBatch weighted values split across the
// client goroutines. 503 responses are retried (they are part of the
// pipelined path's contract, not an error).
func BenchmarkHTTPIngest(b *testing.B) {
	benchModes(b, func(b *testing.B, pipelined bool, clients int) {
		ts, client := benchServer(b, pipelined)
		var next atomic.Int64
		b.ResetTimer()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= b.N {
						return
					}
					body := benchBody(i)
					for {
						resp, err := client.Post(ts.URL+"/ingest/bench", "application/json", strings.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						code := resp.StatusCode
						resp.Body.Close()
						if code == http.StatusServiceUnavailable {
							continue
						}
						if code != http.StatusOK {
							b.Errorf("ingest status %d", code)
							return
						}
						break
					}
				}
			}()
		}
		wg.Wait()
		b.StopTimer()
		b.ReportMetric(float64(b.N*benchBatch)/b.Elapsed().Seconds(), "events/s")
	})
}

// BenchmarkHTTPQuery measures /sample latency at several client counts over
// a prefilled instance, with one background producer keeping ingest hot —
// the serving mix the lock split targets.
func BenchmarkHTTPQuery(b *testing.B) {
	benchModes(b, func(b *testing.B, pipelined bool, clients int) {
		ts, client := benchServer(b, pipelined)
		for i := 0; i < 8; i++ {
			resp, err := client.Post(ts.URL+"/ingest/bench", "application/json", strings.NewReader(benchBody(i)))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
		}
		stop := make(chan struct{})
		var producer sync.WaitGroup
		producer.Add(1)
		go func() {
			defer producer.Done()
			for i := 8; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(ts.URL+"/ingest/bench", "application/json", strings.NewReader(benchBody(i)))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
		var next atomic.Int64
		b.ResetTimer()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if int(next.Add(1))-1 >= b.N {
						return
					}
					resp, err := client.Get(ts.URL + "/sample/bench")
					if err != nil {
						b.Error(err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						b.Errorf("sample status %d", resp.StatusCode)
					}
					resp.Body.Close()
				}
			}()
		}
		wg.Wait()
		b.StopTimer()
		close(stop)
		producer.Wait()
	})
}
