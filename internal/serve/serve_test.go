package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer registers a standard battery of instances: a sequence WOR,
// a weighted timestamp WOR, a sharded weighted timestamp WOR and a sharded
// subset-sum estimator, all seeded.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer()
	specs := map[string]Spec{
		"seq":     {Mode: "seq", Sampler: "wor", N: 64, K: 4, Seed: 1},
		"wts":     {Mode: "ts", Sampler: "weighted-ts-wor", T0: 60, K: 4, Seed: 2},
		"shts":    {Mode: "ts", Sampler: "sharded-weighted-ts-wor", T0: 60, K: 4, G: 4, Seed: 3},
		"est":     {Mode: "ts", Sampler: "sharded-subsetsum-ts", T0: 60, K: 6, G: 2, Seed: 4},
		"uniform": {Mode: "ts", Sampler: "wor", T0: 60, K: 4, Seed: 5},
		"shseq":   {Mode: "seq", Sampler: "sharded-weighted-wor", N: 64, K: 4, G: 4, Seed: 6},
	}
	for name, spec := range specs {
		if _, err := s.Register(name, spec); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// do issues a request and returns status and decoded-to-string body.
func do(t *testing.T, method, url, contentType, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, strings.TrimSpace(string(b))
}

func post(t *testing.T, url, body string) (int, string) {
	return do(t, http.MethodPost, url, "application/json", body)
}

// postHdr is post exposing the response headers (for header-contract
// assertions like Retry-After on 503).
func postHdr(t *testing.T, url, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, strings.TrimSpace(string(b)), resp.Header
}

func get(t *testing.T, url string) (int, string) {
	return do(t, http.MethodGet, url, "", "")
}

func wantStatus(t *testing.T, got int, want int, body string) {
	t.Helper()
	if got != want {
		t.Fatalf("status %d, want %d (body: %s)", got, want, body)
	}
}

func TestHandlerUnknownSampler(t *testing.T) {
	_, ts := newTestServer(t)
	for _, url := range []string{
		ts.URL + "/sample/nope",
		ts.URL + "/size/nope",
		ts.URL + "/weight/nope",
		ts.URL + "/subsetsum/nope",
	} {
		code, body := get(t, url)
		wantStatus(t, code, http.StatusNotFound, body)
	}
	code, body := post(t, ts.URL+"/ingest/nope", `{"values":["a"]}`)
	wantStatus(t, code, http.StatusNotFound, body)
}

func TestHandlerMalformedBatch(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, target, ct, body string
	}{
		{"truncated JSON", "/ingest/seq", "application/json", `{"values":["a"`},
		{"trailing data", "/ingest/seq", "application/json", `{"values":["a"]} {"values":["b"]}`},
		{"unknown field", "/ingest/seq", "application/json", `{"values":["a"],"bogus":1}`},
		{"shape mismatch", "/ingest/wts", "application/json", `{"values":["a","b"],"timestamps":[1]}`},
		{"weights shape", "/ingest/wts", "application/json", `{"values":["a","b"],"timestamps":[1,2],"weights":[1]}`},
		{"seq with timestamps", "/ingest/seq", "application/json", `{"values":["a"],"timestamps":[1]}`},
		{"ts without timestamps", "/ingest/wts", "application/json", `{"values":["a"]}`},
		{"zero weight", "/ingest/wts", "application/json", `{"values":["a"],"timestamps":[1],"weights":[0]}`},
		{"negative weight", "/ingest/wts", "application/json", `{"values":["a"],"timestamps":[1],"weights":[-2]}`},
		{"weights on uniform substrate", "/ingest/uniform", "application/json", `{"values":["a"],"timestamps":[1],"weights":[1]}`},
		{"bad NDJSON record", "/ingest/wts", "application/x-ndjson", `{"value":"a","ts":1}` + "\nnot-json\n"},
		{"ragged NDJSON ts", "/ingest/wts", "application/x-ndjson", `{"value":"a","ts":1}` + "\n" + `{"value":"b"}`},
		{"ragged NDJSON weight", "/ingest/wts", "application/x-ndjson", `{"value":"a","ts":1,"weight":2}` + "\n" + `{"value":"b","ts":2}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, http.MethodPost, ts.URL+tc.target, tc.ct, tc.body)
			wantStatus(t, code, http.StatusBadRequest, body)
			var e errResponse
			if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
				t.Fatalf("error body not JSON {error}: %s", body)
			}
		})
	}
	// A rejected batch leaves the sampler untouched: count stays 0.
	code, body := get(t, ts.URL+"/samplers")
	wantStatus(t, code, http.StatusOK, body)
	var infos []SamplerInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.Count != 0 {
			t.Fatalf("sampler %s ingested %d elements from rejected batches", info.Name, info.Count)
		}
	}
}

func TestHandlerQueryBeforeFirstArrival(t *testing.T) {
	_, ts := newTestServer(t)
	// A timestamp window with no arrivals cannot answer "as of" queries —
	// doing so would pin the stream clock before the stream begins.
	for _, url := range []string{
		ts.URL + "/sample/wts",
		ts.URL + "/sample/wts?at=10",
		ts.URL + "/size/wts",
		ts.URL + "/size/shts?at=5",
		ts.URL + "/weight/shts",
		ts.URL + "/subsetsum/est?at=3",
	} {
		code, body := get(t, url)
		wantStatus(t, code, http.StatusConflict, body)
	}
	// Sequence windows have no clock: an empty window is just ok=false.
	code, body := get(t, ts.URL+"/sample/seq")
	wantStatus(t, code, http.StatusOK, body)
	var sr SampleResponse
	if err := json.Unmarshal([]byte(body), &sr); err != nil || sr.OK {
		t.Fatalf("empty seq sample should be ok=false: %s", body)
	}
}

func TestHandlerNonMonotoneClocks(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := post(t, ts.URL+"/ingest/wts", `{"values":["aa","bb"],"timestamps":[10,20]}`)
	wantStatus(t, code, http.StatusOK, body)

	// Ingest timestamps must be non-decreasing, within and across batches.
	code, body = post(t, ts.URL+"/ingest/wts", `{"values":["cc"],"timestamps":[5]}`)
	wantStatus(t, code, http.StatusConflict, body)
	code, body = post(t, ts.URL+"/ingest/wts", `{"values":["cc","dd"],"timestamps":[30,25]}`)
	wantStatus(t, code, http.StatusConflict, body)

	// The query clock is monotone too: sampling at 40 advances it, and an
	// older clock-advancing query is refused...
	code, body = get(t, ts.URL+"/sample/wts?at=40")
	wantStatus(t, code, http.StatusOK, body)
	code, body = get(t, ts.URL+"/sample/wts?at=30")
	wantStatus(t, code, http.StatusConflict, body)
	// ...as is ingest older than the advanced clock.
	code, body = post(t, ts.URL+"/ingest/wts", `{"values":["ee"],"timestamps":[35]}`)
	wantStatus(t, code, http.StatusConflict, body)

	// Read-only oracles clamp instead: they move no state.
	code, body = get(t, ts.URL+"/size/wts?at=30")
	wantStatus(t, code, http.StatusOK, body)

	// Sequence windows reject at= outright.
	code, body = post(t, ts.URL+"/ingest/seq", `{"values":["a","b","c"]}`)
	wantStatus(t, code, http.StatusOK, body)
	code, body = get(t, ts.URL+"/sample/seq?at=1")
	wantStatus(t, code, http.StatusBadRequest, body)
}

func TestHandlerCapabilityGaps(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := post(t, ts.URL+"/ingest/uniform", `{"values":["aa"],"timestamps":[1]}`)
	wantStatus(t, code, http.StatusOK, body)
	// Estimators accept explicit weights too: the precomputed weight flows
	// into the sketch (and the HT estimate) without the weight function.
	code, body = post(t, ts.URL+"/ingest/est", `{"values":["aa"],"timestamps":[1],"weights":[7.5]}`)
	wantStatus(t, code, http.StatusOK, body)
	code, body = get(t, ts.URL+"/subsetsum/est?at=1")
	wantStatus(t, code, http.StatusOK, body)
	var ss SubsetSumResponse
	if err := json.Unmarshal([]byte(body), &ss); err != nil || !ss.OK || ss.Estimate != 7.5 {
		t.Fatalf("explicit-weight subset sum: %s", body)
	}

	// Uniform samplers have no size/weight oracles and no estimator.
	for _, url := range []string{
		ts.URL + "/size/uniform",
		ts.URL + "/weight/uniform",
		ts.URL + "/subsetsum/uniform",
		ts.URL + "/weight/seq",
		ts.URL + "/subsetsum/seq",
	} {
		code, body := get(t, url)
		wantStatus(t, code, http.StatusBadRequest, body)
	}
	// Estimators answer /subsetsum, /size, /weight but not /sample.
	code, body = get(t, ts.URL+"/sample/est")
	wantStatus(t, code, http.StatusBadRequest, body)
	for _, url := range []string{
		ts.URL + "/subsetsum/est",
		ts.URL + "/size/est",
		ts.URL + "/weight/est",
	} {
		code, body := get(t, url)
		wantStatus(t, code, http.StatusOK, body)
	}
	// Sequence-window sharded weighted samplers answer /weight through the
	// arrival-index-clocked TotalWeight oracle — but take no at=.
	code, body = post(t, ts.URL+"/ingest/shseq", `{"values":["aa","bbb","c"],"weights":[2,3,1]}`)
	wantStatus(t, code, http.StatusOK, body)
	code, body = get(t, ts.URL+"/weight/shseq")
	wantStatus(t, code, http.StatusOK, body)
	var wt map[string]float64
	if err := json.Unmarshal([]byte(body), &wt); err != nil || wt["weight"] != 6 {
		t.Fatalf("shseq weight: %s", body)
	}
	code, body = get(t, ts.URL+"/weight/shseq?at=1")
	wantStatus(t, code, http.StatusBadRequest, body)
}

func TestHandlerRegister(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := post(t, ts.URL+"/samplers",
		`{"name":"fresh","spec":{"mode":"ts","sampler":"weighted-ts-wr","t0":30,"k":3,"seed":9}}`)
	wantStatus(t, code, http.StatusCreated, body)
	code, body = post(t, ts.URL+"/ingest/fresh", `{"values":["hello"],"timestamps":[1]}`)
	wantStatus(t, code, http.StatusOK, body)

	for name, req := range map[string]string{
		"duplicate name": `{"name":"seq","spec":{"mode":"seq","sampler":"wor","n":8,"k":2}}`,
		"bad mode":       `{"name":"x1","spec":{"mode":"circular","sampler":"wor","n":8,"k":2}}`,
		"bad sampler":    `{"name":"x2","spec":{"mode":"seq","sampler":"quantum","n":8,"k":2}}`,
		"bad name":       `{"name":"a b","spec":{"mode":"seq","sampler":"wor","n":8,"k":2}}`,
		"zero k":         `{"name":"x3","spec":{"mode":"seq","sampler":"wor","n":8}}`,
		"bad weight fn":  `{"name":"x4","spec":{"mode":"seq","sampler":"weighted-wor","n":8,"k":2,"weight":"grams"}}`,
		"indivisible n":  `{"name":"x5","spec":{"mode":"seq","sampler":"sharded-weighted-wor","n":10,"g":4,"k":2}}`,
		// Serving caps: registration is network-reachable, so parameters
		// that drive eager allocation are bounded (a 2e9-slot fullwindow
		// ring would OOM the process from one unauthenticated POST).
		"fullwindow n over cap": `{"name":"x6","spec":{"mode":"seq","sampler":"fullwindow","n":2000000000,"k":1}}`,
		"k over cap":            `{"name":"x7","spec":{"mode":"seq","sampler":"wor","n":8,"k":1000000000}}`,
		"g over cap":            `{"name":"x8","spec":{"mode":"ts","sampler":"sharded-wr","t0":10,"k":2,"g":1000000}}`,
	} {
		t.Run(name, func(t *testing.T) {
			code, body := post(t, ts.URL+"/samplers", req)
			if code != http.StatusBadRequest && code != http.StatusConflict {
				t.Fatalf("status %d, want 400/409 (body: %s)", code, body)
			}
		})
	}
}

func TestHandlerNDJSONIngest(t *testing.T) {
	_, ts := newTestServer(t)
	var b strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, "{\"value\":\"ev-%d\",\"ts\":%d,\"weight\":%d}\n", i, i/3, i%4+1)
	}
	code, body := do(t, http.MethodPost, ts.URL+"/ingest/shts", "application/x-ndjson", b.String())
	wantStatus(t, code, http.StatusOK, body)
	var ir IngestResponse
	if err := json.Unmarshal([]byte(body), &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Ingested != 10 || ir.Count != 10 {
		t.Fatalf("ingested %d count %d, want 10/10", ir.Ingested, ir.Count)
	}
	code, body = get(t, ts.URL+"/sample/shts?at=3")
	wantStatus(t, code, http.StatusOK, body)
	var sr SampleResponse
	if err := json.Unmarshal([]byte(body), &sr); err != nil || !sr.OK {
		t.Fatalf("sample after NDJSON ingest: %s", body)
	}
}

// TestHandlerDeterminism: two servers with identical registrations and
// request sequences answer byte-identically — the WithSeed contract holds
// through the HTTP surface.
func TestHandlerDeterminism(t *testing.T) {
	run := func() []string {
		s := NewServer()
		defer s.Close()
		if _, err := s.Register("d", Spec{Mode: "ts", Sampler: "sharded-weighted-ts-wor", T0: 40, K: 5, G: 4, Seed: 1234}); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		defer ts.Close()
		var out []string
		for round := 0; round < 5; round++ {
			var vals, tss, ws []string
			for i := 0; i < 40; i++ {
				n := round*40 + i
				vals = append(vals, fmt.Sprintf("%q", fmt.Sprintf("ev-%04d", n)))
				tss = append(tss, fmt.Sprintf("%d", n/6))
				ws = append(ws, fmt.Sprintf("%d", n%9+1))
			}
			body := fmt.Sprintf(`{"values":[%s],"timestamps":[%s],"weights":[%s]}`,
				strings.Join(vals, ","), strings.Join(tss, ","), strings.Join(ws, ","))
			code, resp := post(t, ts.URL+"/ingest/d", body)
			wantStatus(t, code, http.StatusOK, resp)
			out = append(out, resp)
			for _, q := range []string{"/sample/d", "/size/d", "/weight/d"} {
				code, resp := get(t, ts.URL+q)
				wantStatus(t, code, http.StatusOK, resp)
				out = append(out, resp)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("response counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("response %d differs:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}

// TestServerCloseDrainsAndRefusesIngest: Close barriers in-flight sharded
// ingest, instances stay queryable, further ingest is 409.
func TestServerCloseDrainsAndRefusesIngest(t *testing.T) {
	s, ts := newTestServer(t)
	code, body := post(t, ts.URL+"/ingest/shts", `{"values":["aa","bb","cc"],"timestamps":[1,2,3]}`)
	wantStatus(t, code, http.StatusOK, body)
	s.Close()
	s.Close() // idempotent
	code, body = get(t, ts.URL+"/sample/shts")
	wantStatus(t, code, http.StatusOK, body)
	var sr SampleResponse
	if err := json.Unmarshal([]byte(body), &sr); err != nil || !sr.OK || len(sr.Sample) != 3 {
		t.Fatalf("closed server should stay queryable with the full drained window: %s", body)
	}
	code, body = post(t, ts.URL+"/ingest/shts", `{"values":["dd"],"timestamps":[4]}`)
	wantStatus(t, code, http.StatusConflict, body)
	code, body = post(t, ts.URL+"/samplers", `{"name":"late","spec":{"mode":"seq","sampler":"wor","n":8,"k":2}}`)
	wantStatus(t, code, http.StatusConflict, body)
}
