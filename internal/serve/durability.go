package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"slidingsample/internal/snap"
	"slidingsample/internal/stream"
	"slidingsample/internal/substrate"
)

// Serving durability (DESIGN.md §10): an instance snapshot is the serve
// layer's admission state (event count, stream clock) followed by the
// substrate's own spec-headed snapshot, and a WAL is the existing NDJSON
// ingest wire format — one Record line per admitted element, appended in
// admission order before the batch is acknowledged. Recovery restores the
// latest snapshot and replays the WAL records the snapshot does not cover
// through the ordinary ingest path, so a recovered instance resumes
// bit-identically to one that admitted the same stream and served no
// randomness-drawing queries between the snapshot cut and the crash.

// kindServeInstance heads a serving-layer instance snapshot.
const kindServeInstance = "serve.Instance"

// maxSnapshotBytes bounds a POST /restore body. Snapshots are k-sized, not
// window-sized, for every substrate but the fullwindow baseline; this cap
// comfortably covers the serving cap on that ring too.
const maxSnapshotBytes = 1 << 30

// Snapshot writes the instance's full state to w: the admission counters
// and stream clock, then the substrate's spec-headed snapshot. The cut is
// consistent — everything admitted before the cut is applied (staged
// prefix drained, sharded ingest barriered) and everything admitted after
// stays in the staging queue and the WAL.
func (in *Instance) Snapshot(w io.Writer) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	// One qmu section fixes the cut: the staged prefix is dequeued and the
	// admission counters are read atomically with it. Batches admitted
	// after this point cannot be applied until we release mu, so the
	// substrate below reflects exactly the first `events` elements.
	in.qmu.Lock()
	batches := in.queue
	in.queue = nil
	in.queuedEvents = 0
	events, last, begun := in.events, in.last, in.begun
	walSkip := events - in.walBase
	in.qmu.Unlock()
	in.applyLocked(batches)
	if in.barrier != nil {
		in.barrier()
	}
	sw := snap.NewWriter(w, kindServeInstance)
	sw.U64(events)
	sw.U64(walSkip)
	sw.I64(last)
	sw.Bool(begun)
	if err := sw.Err(); err != nil {
		return err
	}
	return substrate.Snapshot(w, in.spec, in.built)
}

// RestoreInstance reads an instance snapshot written by Snapshot and
// rebuilds the instance mid-stream, applier goroutine included. The second
// return is the number of WAL records the snapshot already covers — the
// caller skips that many lines when replaying the instance's WAL.
func RestoreInstance(r io.Reader) (*Instance, uint64, error) {
	sr, err := snap.NewReader(r, kindServeInstance)
	if err != nil {
		return nil, 0, err
	}
	events := sr.U64()
	walSkip := sr.U64()
	last := sr.I64()
	begun := sr.Bool()
	if err := sr.Err(); err != nil {
		return nil, 0, err
	}
	if walSkip > events {
		return nil, 0, snap.Errorf("serve: snapshot covers %d wal records but admitted only %d events", walSkip, events)
	}
	spec, built, err := substrate.Restore(r)
	if err != nil {
		return nil, 0, err
	}
	closeBuilt := func() {
		if c, ok := built.(interface{ Close() }); ok {
			c.Close()
		}
	}
	if err := validateServable(spec); err != nil {
		closeBuilt()
		return nil, 0, fmt.Errorf("%w: %v", snap.ErrFormat, err)
	}
	ing, ok := built.(ingester)
	if !ok {
		closeBuilt()
		return nil, 0, snap.Errorf("serve: restored substrate %T is not servable", built)
	}
	// Every admitted element was applied before the snapshot cut, so the
	// substrate's own count must match the admission counter exactly; a
	// mismatch means a spliced snapshot.
	if c := ing.Count(); c != events {
		closeBuilt()
		return nil, 0, snap.Errorf("serve: snapshot admitted %d events but the substrate counted %d", events, c)
	}
	inst := newInstance(spec, built)
	inst.qmu.Lock()
	inst.events, inst.last, inst.begun = events, last, begun
	inst.qmu.Unlock()
	return inst, walSkip, nil
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

// walFile is one instance's append-only ingest log. Appends happen under
// the instance's admission mutex, so the log order is the admission order;
// the file mutex only guards against the recovery compaction racing a
// late append on a path that bypassed admission (none today — belt and
// braces).
type walFile struct {
	mu sync.Mutex
	f  *os.File
}

func (w *walFile) append(buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("serve: wal append: %w", err)
	}
	return nil
}

func (w *walFile) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Sync()
}

// encodeWALBatch renders one admitted batch as NDJSON Record lines — the
// same wire format the ingest endpoint accepts, so a WAL is replayable
// with nothing but the ordinary ingest path (or curl).
func encodeWALBatch(elems []stream.Element[string], weights []float64, withTS bool) ([]byte, error) {
	var buf bytes.Buffer
	for i := range elems {
		rec := Record{Value: elems[i].Value}
		if withTS {
			ts := elems[i].TS
			rec.TS = &ts
		}
		if weights != nil {
			w := weights[i]
			rec.Weight = &w
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("serve: wal encode: %w", err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// ---------------------------------------------------------------------------
// State directory
// ---------------------------------------------------------------------------

// StateDir is a directory of per-instance durability state: <name>.snap is
// the latest snapshot (written atomically via rename) and <name>.wal is
// the NDJSON ingest log since that WAL file was created. Fabric tenants
// are not persisted — a million thin tenants are cheap to refill from
// their upstream, and per-tenant WAL fds would defeat the fabric's whole
// memory design.
type StateDir struct {
	dir string

	// mu guards the durable set and serializes file writes (two concurrent
	// SnapshotAll calls must not race on the same temp file).
	mu      sync.Mutex
	durable map[string]*Instance
}

// OpenStateDir creates the directory if needed and returns the handle.
func OpenStateDir(dir string) (*StateDir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	return &StateDir{dir: dir, durable: make(map[string]*Instance)}, nil
}

func (sd *StateDir) snapPath(name string) string { return filepath.Join(sd.dir, name+".snap") }
func (sd *StateDir) walPath(name string) string  { return filepath.Join(sd.dir, name+".wal") }

// Enable makes an instance durable: a fresh (truncated) WAL starts at the
// instance's current admission count, and an initial snapshot of the
// current state is written — so the invariant "snapshot + uncovered WAL
// records = full state" holds from the first acknowledged batch on. Call
// it before the instance is published to a registry; the WAL hook is read
// lock-free by the ingest paths.
func (sd *StateDir) Enable(name string, in *Instance) error {
	f, err := os.OpenFile(sd.walPath(name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serve: wal create: %w", err)
	}
	in.wal = &walFile{f: f}
	in.qmu.Lock()
	in.walBase = in.events
	in.qmu.Unlock()
	if err := sd.WriteSnapshot(name, in); err != nil {
		return err
	}
	sd.mu.Lock()
	sd.durable[name] = in
	sd.mu.Unlock()
	return nil
}

// WriteSnapshot snapshots the instance into <name>.snap via a temp file
// and an atomic rename, fsyncing before the swap — a crash mid-write
// leaves the previous snapshot intact.
func (sd *StateDir) WriteSnapshot(name string, in *Instance) error {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	var buf bytes.Buffer
	if err := in.Snapshot(&buf); err != nil {
		return err
	}
	return sd.writeSnapBytesLocked(name, buf.Bytes())
}

// writeSnapBytes persists already-captured snapshot bytes (the /snapshot
// endpoint streams the same bytes to the client).
func (sd *StateDir) writeSnapBytes(name string, b []byte) error {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.writeSnapBytesLocked(name, b)
}

func (sd *StateDir) writeSnapBytesLocked(name string, b []byte) error {
	tmp := sd.snapPath(name) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serve: snapshot write: %w", err)
	}
	_, werr := f.Write(b)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("serve: snapshot write: %w", werr)
	}
	if err := os.Rename(tmp, sd.snapPath(name)); err != nil {
		return fmt.Errorf("serve: snapshot write: %w", err)
	}
	return nil
}

// has reports whether the instance under name is durable in this dir.
func (sd *StateDir) has(name string) bool {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	_, ok := sd.durable[name]
	return ok
}

// SnapshotAll writes a fresh snapshot for every durable instance and
// fsyncs every WAL, returning the first error after attempting all.
func (sd *StateDir) SnapshotAll() error {
	names := func() []string {
		sd.mu.Lock()
		defer sd.mu.Unlock()
		ns := make([]string, 0, len(sd.durable))
		for name := range sd.durable {
			ns = append(ns, name)
		}
		return ns
	}()
	sort.Strings(names)
	var firstErr error
	for _, name := range names {
		in := func() *Instance {
			sd.mu.Lock()
			defer sd.mu.Unlock()
			return sd.durable[name]
		}()
		if in == nil {
			continue
		}
		if err := in.wal.sync(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("serve: wal sync %q: %w", name, err)
		}
		if err := sd.WriteSnapshot(name, in); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("serve: snapshot %q: %w", name, err)
		}
	}
	return firstErr
}

// Recover restores every <name>.snap in the directory, replays each WAL
// tail, compacts (fresh snapshot, truncated WAL), and adopts the
// recovered instances into the registry. It runs single-threaded at
// startup, before the registry serves traffic.
func (sd *StateDir) Recover(s *Server) ([]string, error) {
	entries, err := os.ReadDir(sd.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".snap")
		inst, err := sd.recoverOne(name)
		if err != nil {
			return names, fmt.Errorf("serve: recover %q: %w", name, err)
		}
		if err := s.Adopt(name, inst); err != nil {
			inst.Close()
			return names, err
		}
		names = append(names, name)
	}
	return names, nil
}

// recoverOne rebuilds one instance: restore the snapshot, replay the WAL
// records it does not cover, then compact — truncate the WAL and write a
// snapshot of the caught-up state, so WAL growth is bounded per process
// lifetime.
func (sd *StateDir) recoverOne(name string) (*Instance, error) {
	f, err := os.Open(sd.snapPath(name))
	if err != nil {
		return nil, err
	}
	inst, walSkip, err := RestoreInstance(bufio.NewReader(f))
	_ = f.Close()
	if err != nil {
		return nil, err
	}
	if _, err := sd.replayWAL(inst, name, walSkip); err != nil {
		inst.Close()
		return nil, err
	}
	if err := sd.Enable(name, inst); err != nil {
		inst.Close()
		return nil, err
	}
	return inst, nil
}

// replayWAL feeds the WAL records after the first skip through the
// ordinary ingest path. A torn FINAL record — the crash interrupting an
// append — is tolerated (that batch was never acknowledged); a corrupt
// record anywhere else is an error.
func (sd *StateDir) replayWAL(in *Instance, name string, skip uint64) (uint64, error) {
	f, err := os.Open(sd.walPath(name))
	if errors.Is(err, os.ErrNotExist) {
		if skip != 0 {
			return 0, fmt.Errorf("serve: snapshot covers %d wal records but %q has no wal", skip, name)
		}
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, initialNDJSONBufBytes), maxNDJSONLineBytes)
	var n, applied uint64
	var torn error
	for sc.Scan() {
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		if torn != nil {
			return applied, fmt.Errorf("serve: corrupt wal record %d for %q: %v", n, name, torn)
		}
		n++
		var rec Record
		if err := json.Unmarshal([]byte(raw), &rec); err != nil {
			if n <= skip {
				return applied, fmt.Errorf("serve: corrupt wal record %d for %q (covered by the snapshot): %v", n, name, err)
			}
			torn = err
			continue
		}
		if n <= skip {
			continue
		}
		if err := replayRecord(in, rec); err != nil {
			return applied, fmt.Errorf("serve: wal replay record %d for %q: %w", n, name, err)
		}
		applied++
	}
	if err := sc.Err(); err != nil {
		return applied, fmt.Errorf("serve: wal read %q: %w", name, err)
	}
	if n < skip {
		return applied, fmt.Errorf("serve: wal for %q has %d records but the snapshot covers %d", name, n, skip)
	}
	return applied, nil
}

// replayRecord re-ingests one WAL record, waiting out transient staging
// backpressure (the applier drains concurrently during replay).
func replayRecord(in *Instance, rec Record) error {
	values := []string{rec.Value}
	var tss []int64
	var ws []float64
	if rec.TS != nil {
		tss = []int64{*rec.TS}
	}
	if rec.Weight != nil {
		ws = []float64{*rec.Weight}
	}
	for {
		_, err := in.Ingest(values, tss, ws)
		if errors.Is(err, ErrOverloaded) {
			time.Sleep(time.Millisecond)
			continue
		}
		return err
	}
}
