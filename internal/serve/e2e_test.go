package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"slidingsample/internal/apps"
	"slidingsample/internal/core"
	"slidingsample/internal/parallel"
	"slidingsample/internal/stream"
	"slidingsample/internal/substrate"
	"slidingsample/internal/weighted"
	"slidingsample/internal/xrand"
)

// burstyStream builds the shared e2e stream: bursts of several elements
// per tick, a silence gap mid-stream, weights cycling over a skewed law.
type e2eEvent struct {
	value  string
	ts     int64
	weight float64
}

func burstyStream(m int) []e2eEvent {
	out := make([]e2eEvent, m)
	for i := range out {
		ts := int64(i / 7) // bursts of 7 per tick
		if i > m/2 {
			ts += 25 // a silence gap: the window drains mid-stream
		}
		out[i] = e2eEvent{
			value:  fmt.Sprintf("ev-%04d", i),
			ts:     ts,
			weight: float64(i%13) + 1,
		}
	}
	return out
}

// ingestHTTP posts one batch of events (with explicit weights when
// withWeights is set) and fails the test on any non-200.
func ingestHTTP(t *testing.T, url string, events []e2eEvent, withWeights bool) {
	t.Helper()
	req := IngestRequest{}
	for _, e := range events {
		req.Values = append(req.Values, e.value)
		req.Timestamps = append(req.Timestamps, e.ts)
		if withWeights {
			req.Weights = append(req.Weights, e.weight)
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	code, resp := post(t, url, string(body))
	wantStatus(t, code, http.StatusOK, resp)
}

// TestE2EShardedWeightedWORMatchesDirectSampler is the headline end-to-end
// check: a bursty weighted stream ingested over HTTP in batches answers
// /sample, /size and /weight byte-for-byte like a DIRECTLY driven
// parallel.ShardedWeightedTSWOR built from the same seed — the serving
// layer adds plumbing, not randomness.
func TestE2EShardedWeightedWORMatchesDirectSampler(t *testing.T) {
	const (
		seed = uint64(424242)
		t0   = int64(30)
		g    = 4
		k    = 6
		m    = 700
	)
	s := NewServer()
	defer s.Close()
	if _, err := s.Register("flows", Spec{Mode: "ts", Sampler: "sharded-weighted-ts-wor", T0: t0, K: k, G: g, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	defer hs.Close()

	// The direct twin: the same constructor call Build makes, fed the same
	// batches through the precomputed-weight path the handler uses.
	weight, err := substrate.WeightFunc("")
	if err != nil {
		t.Fatal(err)
	}
	direct := parallel.NewShardedWeightedTSWOR[string](xrand.New(seed), t0, g, k, weighted.DefaultSizeEps, weight)
	defer direct.Close()

	check := func(now int64) {
		t.Helper()
		code, body := get(t, fmt.Sprintf("%s/sample/flows?at=%d", hs.URL, now))
		wantStatus(t, code, http.StatusOK, body)
		var sr SampleResponse
		if err := json.Unmarshal([]byte(body), &sr); err != nil {
			t.Fatal(err)
		}
		direct.Barrier()
		es, ok := direct.SampleAt(now)
		if sr.OK != ok || len(sr.Sample) != len(es) {
			t.Fatalf("now=%d: HTTP ok=%v |%d| vs direct ok=%v |%d|", now, sr.OK, len(sr.Sample), ok, len(es))
		}
		for i, e := range es {
			got := sr.Sample[i]
			if got.Value != e.Value || got.Index != e.Index || got.TS != e.TS {
				t.Fatalf("now=%d slot %d: HTTP %+v vs direct %+v", now, i, got, e)
			}
		}

		code, body = get(t, fmt.Sprintf("%s/size/flows?at=%d", hs.URL, now))
		wantStatus(t, code, http.StatusOK, body)
		var sz map[string]uint64
		if err := json.Unmarshal([]byte(body), &sz); err != nil {
			t.Fatal(err)
		}
		if want := direct.SizeAt(now); sz["size"] != want {
			t.Fatalf("now=%d: HTTP size %d vs direct %d", now, sz["size"], want)
		}

		code, body = get(t, fmt.Sprintf("%s/weight/flows?at=%d", hs.URL, now))
		wantStatus(t, code, http.StatusOK, body)
		var wt map[string]float64
		if err := json.Unmarshal([]byte(body), &wt); err != nil {
			t.Fatal(err)
		}
		if want := direct.TotalWeightAt(now); wt["weight"] != want {
			t.Fatalf("now=%d: HTTP weight %v vs direct %v", now, wt["weight"], want)
		}
	}

	events := burstyStream(m)
	var last int64
	for lo := 0; lo < m; lo += 97 { // deliberately batch-size-unaligned
		hi := lo + 97
		if hi > m {
			hi = m
		}
		chunk := events[lo:hi]
		ingestHTTP(t, hs.URL+"/ingest/flows", chunk, true)
		batch := make([]stream.Element[string], len(chunk))
		ws := make([]float64, len(chunk))
		for i, e := range chunk {
			batch[i] = stream.Element[string]{Value: e.value, TS: e.ts}
			ws[i] = e.weight
		}
		direct.ObserveWeightedBatch(batch, ws)

		// Query only at the batch boundary while ingest continues: the
		// query clock is monotone, so sampling PAST the boundary would
		// (correctly) refuse the next batch's older timestamps.
		last = chunk[len(chunk)-1].ts
		check(last)
	}
	// After the final arrival the window drains at query time: walk the
	// clock through partial expiry to total emptiness.
	for _, now := range []int64{last + 3, last + t0/2, last + t0 + 1} {
		check(now)
	}
}

// TestE2ESequenceWORMatchesDirectSampler: the unweighted sequence window
// over HTTP matches a directly driven core.SeqWOR.
func TestE2ESequenceWORMatchesDirectSampler(t *testing.T) {
	const (
		seed = uint64(77)
		n    = uint64(128)
		k    = 5
		m    = 600
	)
	s := NewServer()
	defer s.Close()
	if _, err := s.Register("lines", Spec{Mode: "seq", Sampler: "wor", N: n, K: k, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	defer hs.Close()
	direct := core.NewSeqWOR[string](xrand.New(seed), n, k)

	for lo := 0; lo < m; lo += 50 {
		var req IngestRequest
		var batch []stream.Element[string]
		for i := lo; i < lo+50 && i < m; i++ {
			v := fmt.Sprintf("line-%04d", i)
			req.Values = append(req.Values, v)
			batch = append(batch, stream.Element[string]{Value: v})
		}
		body, _ := json.Marshal(req)
		code, resp := post(t, hs.URL+"/ingest/lines", string(body))
		wantStatus(t, code, http.StatusOK, resp)
		direct.ObserveBatch(batch)

		code, resp = get(t, hs.URL+"/sample/lines")
		wantStatus(t, code, http.StatusOK, resp)
		var sr SampleResponse
		if err := json.Unmarshal([]byte(resp), &sr); err != nil {
			t.Fatal(err)
		}
		es, ok := direct.Sample()
		if sr.OK != ok || len(sr.Sample) != len(es) {
			t.Fatalf("after %d: HTTP ok=%v |%d| vs direct ok=%v |%d|", lo, sr.OK, len(sr.Sample), ok, len(es))
		}
		for i, e := range es {
			got := sr.Sample[i]
			if got.Value != e.Value || got.Index != e.Index {
				t.Fatalf("slot %d: HTTP %+v vs direct %+v", i, got, e)
			}
		}
	}
}

// TestE2ESubsetSumMatchesDirectEstimator: the /subsetsum endpoint answers
// exactly like a directly driven sharded estimator, for several post-hoc
// predicates over the same sketch.
func TestE2ESubsetSumMatchesDirectEstimator(t *testing.T) {
	const (
		seed = uint64(31337)
		t0   = int64(40)
		g    = 2
		k    = 8
		m    = 400
	)
	s := NewServer()
	defer s.Close()
	if _, err := s.Register("est", Spec{Mode: "ts", Sampler: "sharded-subsetsum-ts", T0: t0, K: k, G: g, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	defer hs.Close()

	weight, err := substrate.WeightFunc("")
	if err != nil {
		t.Fatal(err)
	}
	direct := apps.NewShardedSubsetSumTS[string](xrand.New(seed), t0, g, k, weighted.DefaultSizeEps, weight)
	defer direct.Close()

	// Values alternate two prefixes so the predicate splits the window.
	var req IngestRequest
	var batch []stream.Element[string]
	for i := 0; i < m; i++ {
		prefix := "get"
		if i%3 == 0 {
			prefix = "put"
		}
		v := fmt.Sprintf("%s-%04d", prefix, i)
		ts := int64(i / 5)
		req.Values = append(req.Values, v)
		req.Timestamps = append(req.Timestamps, ts)
		batch = append(batch, stream.Element[string]{Value: v, TS: ts})
	}
	body, _ := json.Marshal(req)
	code, resp := post(t, hs.URL+"/ingest/est", string(body))
	wantStatus(t, code, http.StatusOK, resp)
	direct.ObserveBatch(batch)
	direct.Barrier()

	now := int64((m - 1) / 5)
	for _, q := range []struct {
		query string
		pred  func(string) bool
	}{
		{"", func(string) bool { return true }},
		{"&prefix=put", func(v string) bool { return strings.HasPrefix(v, "put") }},
		{"&contains=-03", func(v string) bool { return strings.Contains(v, "-03") }},
	} {
		code, resp := get(t, fmt.Sprintf("%s/subsetsum/est?at=%d%s", hs.URL, now, q.query))
		wantStatus(t, code, http.StatusOK, resp)
		var sr SubsetSumResponse
		if err := json.Unmarshal([]byte(resp), &sr); err != nil {
			t.Fatal(err)
		}
		want, ok := direct.EstimateAt(now, q.pred)
		if sr.OK != ok || sr.Estimate != want {
			t.Fatalf("query %q: HTTP (%v, %v) vs direct (%v, %v)", q.query, sr.Estimate, sr.OK, want, ok)
		}
	}
	// The oracle endpoints ride the same dispatcher-side state.
	code, resp = get(t, fmt.Sprintf("%s/size/est?at=%d", hs.URL, now))
	wantStatus(t, code, http.StatusOK, resp)
	var sz map[string]uint64
	if err := json.Unmarshal([]byte(resp), &sz); err != nil {
		t.Fatal(err)
	}
	if want := direct.SizeAt(now); sz["size"] != want {
		t.Fatalf("size: HTTP %d vs direct %d", sz["size"], want)
	}
	code, resp = get(t, fmt.Sprintf("%s/weight/est?at=%d", hs.URL, now))
	wantStatus(t, code, http.StatusOK, resp)
	var wt map[string]float64
	if err := json.Unmarshal([]byte(resp), &wt); err != nil {
		t.Fatal(err)
	}
	if want := direct.WeightAt(now); wt["weight"] != want {
		t.Fatalf("weight: HTTP %v vs direct %v", wt["weight"], want)
	}
}
