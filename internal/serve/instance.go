package serve

import (
	"sync"
	"sync/atomic"

	"slidingsample/internal/stream"
)

// weightedIngester is the ingest half of stream.WeightedSampler: what the
// explicit-weight HTTP path needs. It is asserted separately so the
// subset-sum estimators — which forward precomputed weights into their
// sketches but answer estimates rather than samples — qualify too.
type weightedIngester interface {
	ObserveWeighted(value string, weight float64, ts int64)
	ObserveWeightedBatch(batch []stream.Element[string], weights []float64)
}

// Ingest staging bounds: admission is refused with ErrOverloaded once a
// single instance holds this many staged-but-unapplied elements (or this
// many staged batches), so a stalled applier translates into backpressure
// on the clients instead of unbounded queue memory.
const (
	// MaxQueuedIngestEvents bounds the staged elements per instance.
	MaxQueuedIngestEvents = 1 << 20
	// maxQueuedBatches bounds the staged batch headers per instance.
	maxQueuedBatches = 4096
)

// legacyIngest switches instances built afterwards to the pre-pipeline
// ingest path (the whole validate+apply under the write lock). It exists
// for benchmarking the pipeline against its predecessor — BENCH_5.json's
// "before" rows — and as an operational escape hatch; see
// SetPipelinedIngest.
var legacyIngest atomic.Bool

// SetPipelinedIngest selects the ingest path for instances built AFTER the
// call: pipelined (the default — lock-free admission into a staging queue,
// one applier goroutine) or legacy (validate and apply while holding the
// instance write lock). Existing instances keep the path they were built
// with.
func SetPipelinedIngest(on bool) { legacyIngest.Store(!on) }

// stagedBatch is one admitted-but-unapplied ingest batch: the element
// slice ready for ObserveBatch, plus the explicit weights when the request
// carried them.
type stagedBatch struct {
	elems   []stream.Element[string]
	weights []float64
}

// caps holds a built substrate behind its capability views. The registry
// layers — the named Instance and the fabric's per-tenant holder — never
// know concrete sampler types, only what each one can answer; wireCaps is
// the single place the type assertions live.
type caps struct {
	ing ingester // always non-nil

	// Optional capability views (nil when the substrate lacks them).
	plain    stream.Sampler[string]      // Sample()
	timed    stream.TimedSampler[string] // SampleAt(now)
	weighted weightedIngester            // explicit ingest weights
	sizer    interface{ SizeAt(int64) uint64 }
	weigher  func(int64) float64                            // (1±ε) active-weight oracle
	estAt    func(int64, func(string) bool) (float64, bool) // subset sum at a query time
	est      func(pred func(string) bool) (float64, bool)   // subset sum, sequence windows
	barrier  func()
	closer   func()
}

// wireCaps wires a substrate's capabilities by type assertion.
func wireCaps(built any) caps {
	c := caps{ing: built.(ingester)}
	if s, ok := built.(stream.Sampler[string]); ok {
		c.plain = s
	}
	if s, ok := built.(stream.TimedSampler[string]); ok {
		c.timed = s
	}
	if s, ok := built.(weightedIngester); ok {
		c.weighted = s
	}
	if s, ok := built.(interface{ SizeAt(int64) uint64 }); ok {
		c.sizer = s
	}
	if s, ok := built.(interface{ TotalWeightAt(int64) float64 }); ok {
		c.weigher = s.TotalWeightAt
	} else if s, ok := built.(interface{ WeightAt(int64) float64 }); ok {
		// The sharded subset-sum estimator names its dispatcher-side
		// weight oracle WeightAt (TotalAt is the HT estimate).
		c.weigher = s.WeightAt
	} else if s, ok := built.(interface{ TotalWeight() float64 }); ok {
		// Sequence-window sharded weighted samplers: the oracle is clocked
		// on the arrival index, so the query takes no time argument (and
		// readClock already rejects at= in seq mode).
		c.weigher = func(int64) float64 { return s.TotalWeight() }
	}
	if s, ok := built.(interface {
		EstimateAt(int64, func(string) bool) (float64, bool)
	}); ok {
		c.estAt = s.EstimateAt
	}
	if s, ok := built.(interface {
		Estimate(func(string) bool) (float64, bool)
	}); ok {
		c.est = s.Estimate
	}
	if s, ok := built.(interface{ Barrier() }); ok {
		c.barrier = s.Barrier
	}
	if s, ok := built.(interface{ Close() }); ok {
		c.closer = s.Close
	}
	return c
}

// Instance is one registered sampler: the substrate behind its capability
// views, plus the concurrency machinery that maps HTTP concurrency onto
// the single-goroutine sampler contract.
//
// Two locks split the hot path:
//
//   - qmu is the ADMISSION lock: a small mutex guarding the staging queue,
//     the monotone stream clock, and the admitted/applied sequence
//     counters. Ingest handlers validate outside any lock, then hold qmu
//     just long enough to check the clock and bounds and append the batch
//     — they never wait for sampler work, so concurrent producers admit
//     back to back.
//   - mu is the APPLICATION lock: whoever holds it may touch the substrate.
//     The per-instance applier goroutine takes it to drain the staging
//     queue in admission order; clock-advancing queries take it, drain the
//     queue themselves up to their admission snapshot, and then query;
//     read-only oracle queries (/size, /weight) take it SHARED after
//     waiting for the applier to catch up to their snapshot.
//
// Lock order is mu before qmu: mu holders may take qmu (to snapshot or
// drain), never the reverse. Determinism survives the pipeline because
// admission order is a total order (qmu), batches are applied in exactly
// that order by whichever goroutine drains them, and every query's
// serialization point — its clock and its visible prefix — is fixed under
// qmu in that same order.
type Instance struct {
	mu   sync.RWMutex
	spec Spec

	// The substrate behind its capability views (wireCaps).
	caps

	// Admission state, guarded by qmu. workCond wakes the applier when the
	// queue goes non-empty (or shutdown begins); appliedCond wakes oracle
	// readers waiting for the applier to reach their admission snapshot.
	qmu          sync.Mutex
	workCond     *sync.Cond
	appliedCond  *sync.Cond
	queue        []stagedBatch
	queuedEvents int
	admittedSeq  uint64 // batches admitted
	appliedSeq   uint64 // batches applied to the substrate
	events       uint64 // elements admitted (the Count the surface reports)
	last         int64  // stream clock: max ingest/query time admitted (ts mode)
	begun        bool
	closed       bool
	stopping     bool // applier shutdown flag

	queueCap int  // staged-element bound (MaxQueuedIngestEvents; tests shrink it)
	legacy   bool // pre-pipeline ingest path (SetPipelinedIngest(false))

	// statsClean is true while the substrate's footprint walk is safe under
	// the read lock: no staged batches, and a barrier has flushed every
	// applied batch into the shards since the last apply. The applier and
	// the drain paths clear it; Stats' slow path sets it after its barrier.
	statsClean atomic.Bool

	// oracleMu serializes the weight-oracle scratch cache (the sharded
	// substrates memoize per-shard oracle sums per (count, time)) so
	// /weight rides the SHARED lock: concurrent scrapes serialize only
	// against each other on this small mutex, not against ingest.
	oracleMu sync.Mutex

	// scratch is the legacy ingest path's reused batch buffer (guarded by
	// mu; the substrates consume batches synchronously, so it is reusable
	// as soon as the observe call returns).
	scratch []stream.Element[string]

	// built is the substrate behind the capability views, kept for the
	// snapshot codec (substrate.Snapshot re-resolves it by spec name).
	built any

	// wal, when non-nil, logs every admitted batch as NDJSON records for
	// crash recovery (DESIGN.md §10). It is set before the instance is
	// published to the registry and never changes afterwards, so the
	// ingest paths read it without a lock. walBase (guarded by qmu) is the
	// admitted-event count when the current WAL file was created or
	// truncated; a snapshot records events-walBase so recovery knows how
	// many WAL records it already covers.
	wal     *walFile
	walBase uint64
}

// newInstance wires the substrate's capabilities (wireCaps) and starts the
// instance's applier goroutine.
func newInstance(spec Spec, built any) *Instance {
	inst := &Instance{spec: spec, caps: wireCaps(built), built: built}
	inst.workCond = sync.NewCond(&inst.qmu)
	inst.appliedCond = sync.NewCond(&inst.qmu)
	inst.queueCap = MaxQueuedIngestEvents
	inst.legacy = legacyIngest.Load()
	go inst.runApplier()
	return inst
}

// Spec returns the instance's spec with the resolved seed.
func (in *Instance) Spec() Spec { return in.spec }

// seqMode reports whether the instance samples a sequence window.
func (in *Instance) seqMode() bool { return in.spec.Mode == "seq" }

// runApplier is the instance's single applier goroutine: it sleeps until
// admission signals work, then takes the application lock and drains the
// staging queue in admission order. Queries that drained first simply
// leave it nothing to do.
func (in *Instance) runApplier() {
	for {
		// The qmu pair deliberately stays manual: qmu must be RELEASED
		// before blocking on mu below — a deferred unlock would hold it
		// across mu.Lock and invert the declared mu-before-qmu order.
		in.qmu.Lock() //swlint:allow lockorder applier loop must release qmu before blocking on mu; defer would invert the declared hierarchy
		for len(in.queue) == 0 && !in.stopping {
			in.workCond.Wait()
		}
		if len(in.queue) == 0 && in.stopping {
			in.qmu.Unlock()
			return
		}
		in.qmu.Unlock()
		in.mu.Lock()
		in.drainLocked()
		in.mu.Unlock()
	}
}

// drainLocked (mu held) dequeues everything admitted so far and applies it
// in admission order.
func (in *Instance) drainLocked() {
	in.qmu.Lock()
	batches := in.queue
	in.queue = nil
	in.queuedEvents = 0
	in.qmu.Unlock()
	in.applyLocked(batches)
}

// applyLocked (mu held) feeds dequeued batches to the substrate in order
// and publishes the new applied sequence to waiting oracle readers.
func (in *Instance) applyLocked(batches []stagedBatch) {
	if len(batches) == 0 {
		return
	}
	for i := range batches {
		b := &batches[i]
		if b.weights != nil {
			in.weighted.ObserveWeightedBatch(b.elems, b.weights)
		} else {
			in.ing.ObserveBatch(b.elems)
		}
	}
	in.statsClean.Store(false)
	in.qmu.Lock()
	in.appliedSeq += uint64(len(batches))
	in.appliedCond.Broadcast()
	in.qmu.Unlock()
}

// Ingest validates and admits one batch. values is required; timestamps is
// required in ts mode and must be absent in seq mode; weights is optional
// and only accepted on substrates with a precomputed-weight ingest path.
// The whole batch is validated before anything is committed, so a rejected
// batch leaves the instance untouched.
//
// On the pipelined path the handler returns as soon as the batch is
// ADMITTED — sequence-numbered and staged under qmu — without waiting for
// the substrate; the applier (or the next draining query) applies staged
// batches in admission order, which is what keeps the draws byte-identical
// to a sequential run over the same admission order. A full staging queue
// is an explicit ErrOverloaded (HTTP 503), never unbounded memory.
func (in *Instance) Ingest(values []string, timestamps []int64, weights []float64) (uint64, error) {
	if in.seqMode() {
		if timestamps != nil {
			return 0, ErrBatchShape
		}
	} else if len(timestamps) != len(values) {
		return 0, ErrBatchShape
	}
	if weights != nil {
		if in.weighted == nil {
			return 0, ErrWeightsUnsupported
		}
		if len(weights) != len(values) {
			return 0, ErrBatchShape
		}
		for _, w := range weights {
			if !(w > 0) || w > maxFinite {
				return 0, ErrBadWeight
			}
		}
	}
	if in.legacy {
		return in.ingestLegacy(values, timestamps, weights)
	}
	// Within-batch timestamp monotonicity needs no instance state; check it
	// outside the locks so qmu holds only the clock handoff.
	var first, lastTS int64
	if len(timestamps) > 0 {
		first = timestamps[0]
		prev := first
		for _, ts := range timestamps[1:] {
			if ts < prev {
				return 0, ErrTimeBackwards
			}
			prev = ts
		}
		lastTS = prev
	}
	if len(values) == 0 {
		in.qmu.Lock()
		defer in.qmu.Unlock()
		if in.closed {
			return 0, ErrClosed
		}
		return in.events, nil
	}
	elems := make([]stream.Element[string], len(values))
	for i, v := range values {
		elems[i] = stream.Element[string]{Value: v}
		if timestamps != nil {
			elems[i].TS = timestamps[i]
		}
	}
	// Encode the WAL records outside the locks; admit appends them under
	// qmu so the log order IS the admission order.
	var walBuf []byte
	if in.wal != nil {
		var err error
		walBuf, err = encodeWALBatch(elems, weights, !in.seqMode())
		if err != nil {
			return 0, err
		}
	}
	return in.admit(elems, weights, first, lastTS, walBuf)
}

// admit is Ingest's single qmu section: capacity and clock checks, then
// the queue append and the admission-clock advance. The deferred unlock
// covers every rejection branch (the lockorder split-unlock rule); defer
// costs nanoseconds against a batch admission, so the hot path permits
// it.
func (in *Instance) admit(elems []stream.Element[string], weights []float64, first, lastTS int64, walBuf []byte) (uint64, error) {
	in.qmu.Lock()
	defer in.qmu.Unlock()
	if in.closed {
		return 0, ErrClosed
	}
	if in.queuedEvents+len(elems) > in.queueCap || len(in.queue) >= maxQueuedBatches {
		return 0, ErrOverloaded
	}
	if !in.seqMode() && in.begun && first < in.last {
		return 0, ErrTimeBackwards
	}
	// Log before committing: a batch is only acknowledged once it is on
	// disk, so a crash never loses acknowledged ingest. A failed append
	// rejects the batch with the instance untouched.
	if walBuf != nil {
		if err := in.wal.append(walBuf); err != nil {
			return 0, err
		}
	}
	if !in.seqMode() {
		in.last, in.begun = lastTS, true
	}
	in.queue = append(in.queue, stagedBatch{elems: elems, weights: weights})
	in.queuedEvents += len(elems)
	in.admittedSeq++
	in.events += uint64(len(elems))
	total := in.events
	in.workCond.Signal()
	return total, nil
}

// ingestLegacy is the pre-pipeline ingest path: the whole validate+apply
// under the write lock, kept selectable (SetPipelinedIngest) for
// benchmarking the pipeline against it.
func (in *Instance) ingestLegacy(values []string, timestamps []int64, weights []float64) (uint64, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	closed, last, begun := in.admissionState()
	if closed {
		return 0, ErrClosed
	}
	if len(values) == 0 {
		return in.ing.Count(), nil
	}
	for _, ts := range timestamps {
		if begun && ts < last {
			return 0, ErrTimeBackwards
		}
		begun, last = true, ts
	}
	batch := in.scratch[:0]
	if cap(batch) < len(values) {
		batch = make([]stream.Element[string], 0, len(values))
	}
	for i, v := range values {
		e := stream.Element[string]{Value: v}
		if timestamps != nil {
			e.TS = timestamps[i]
		}
		batch = append(batch, e)
	}
	if in.wal != nil {
		buf, err := encodeWALBatch(batch, weights, !in.seqMode())
		if err != nil {
			return 0, err
		}
		if err := in.wal.append(buf); err != nil {
			return 0, err
		}
	}
	if weights != nil {
		in.weighted.ObserveWeightedBatch(batch, weights)
	} else {
		in.ing.ObserveBatch(batch)
	}
	if cap(batch) > stream.MaxRecycledCap {
		in.scratch = nil
	} else {
		clear(batch) // release the payload strings
		in.scratch = batch[:0]
	}
	in.statsClean.Store(false)
	return in.publishLegacy(last, begun), nil
}

// admissionState snapshots the qmu-guarded admission flags for the
// legacy path's pre-checks.
func (in *Instance) admissionState() (closed bool, last int64, begun bool) {
	in.qmu.Lock()
	defer in.qmu.Unlock()
	return in.closed, in.last, in.begun
}

// publishLegacy writes the legacy path's advanced stream clock and event
// count back into the qmu-guarded admission state.
func (in *Instance) publishLegacy(last int64, begun bool) (total uint64) {
	in.qmu.Lock()
	defer in.qmu.Unlock()
	if !in.seqMode() {
		in.last, in.begun = last, begun
	}
	in.events = in.ing.Count()
	return in.events
}

// maxFinite rejects +Inf (and, via the w > 0 guard, NaN) without pulling
// math into the hot validation loop.
const maxFinite = 1.7976931348623157e308

// advanceClockAndDrain (mu held) fixes a clock-advancing query's
// serialization point: in ONE qmu section it snapshots the staged prefix,
// resolves the query clock against the admitted stream clock (nil means
// "at the latest admitted time"; an explicit time must not regress — the
// repository-wide monotone query clock contract, surfaced as a 409 instead
// of the internal panic), and pushes an explicit query time into the
// admission clock so no later batch can be admitted below it. It then
// applies the snapshotted prefix, making the query's visible state exactly
// the admitted prefix at its serialization point. Querying a timestamp
// window that has seen nothing is an error — answering would pin the
// stream clock before the stream begins.
func (in *Instance) advanceClockAndDrain(at *int64) (int64, error) {
	in.qmu.Lock()
	batches := in.queue
	in.queue = nil
	in.queuedEvents = 0
	var now int64
	var err error
	switch {
	case in.seqMode():
		if at != nil {
			err = ErrNoClock
		}
	case !in.begun:
		err = ErrNoArrivals
	case at == nil:
		now = in.last
	case *at < in.last:
		err = ErrClockBackwards
	default:
		now = *at
		in.last = now
	}
	in.qmu.Unlock()
	// Apply even when the clock was rejected: the batches are admitted and
	// already dequeued; their application is unconditional, only ordered.
	in.applyLocked(batches)
	return now, err
}

// awaitReadClock resolves an "as of" time for a READ-ONLY oracle query and
// waits — holding no instance lock other than qmu, which the wait releases
// — until the applier has caught up to the query's admission snapshot.
// Older times are clamped to the stream clock (matching the substrates'
// own clamping) rather than rejected, since the query moves no state.
func (in *Instance) awaitReadClock(at *int64) (int64, error) {
	in.qmu.Lock()
	defer in.qmu.Unlock()
	var now int64
	switch {
	case in.seqMode():
		if at != nil {
			return 0, ErrNoClock
		}
	case !in.begun:
		return 0, ErrNoArrivals
	case at == nil || *at < in.last:
		now = in.last
	default:
		now = *at
	}
	target := in.admittedSeq
	for in.appliedSeq < target {
		in.appliedCond.Wait()
	}
	return now, nil
}

// Sample answers the /sample query: the current sample at the resolved
// query clock. Holds the write lock — sampling advances the clock, drains
// the staged prefix, and on sharded substrates flushes in-flight ingest
// (auto-barrier) before the shard queries fan out.
func (in *Instance) Sample(at *int64) ([]stream.Element[string], bool, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plain == nil {
		return nil, false, ErrUnsupported
	}
	now, err := in.advanceClockAndDrain(at)
	if err != nil {
		return nil, false, err
	}
	if in.barrier != nil {
		in.barrier()
	}
	if in.seqMode() {
		es, ok := in.plain.Sample()
		return es, ok, nil
	}
	if in.timed == nil {
		// A ts-mode substrate without SampleAt could only answer at its
		// last-arrival clock, silently mislabeling the response's time
		// (unreachable for the registrable substrates today — every
		// ts-mode sampler is a TimedSampler — but refuse rather than lie).
		return nil, false, ErrUnsupported
	}
	es, ok := in.timed.SampleAt(now)
	return es, ok, nil
}

// Size answers the /size query: the (1±ε) effective window size n(t) from
// the substrate's embedded exponential-histogram counter. Holds only the
// READ lock — the whole oracle path is read-only (DESIGN.md §7) — after
// waiting for the applier to reach the query's admission snapshot, so a
// sequential client always sees its own ingest reflected.
func (in *Instance) Size(at *int64) (uint64, error) {
	if in.sizer == nil {
		return 0, ErrUnsupported
	}
	now, err := in.awaitReadClock(at)
	if err != nil {
		return 0, err
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.sizer.SizeAt(now), nil
}

// Weight answers the /weight query: the (1±ε) active-weight total from the
// sharded substrates' per-shard weight oracles. Holds the READ lock — the
// oracle sums are memoized in a scratch cache, so concurrent scrapes
// serialize on oracleMu (a small mutex) rather than on ingest.
func (in *Instance) Weight(at *int64) (float64, error) {
	if in.weigher == nil {
		return 0, ErrUnsupported
	}
	now, err := in.awaitReadClock(at)
	if err != nil {
		return 0, err
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	in.oracleMu.Lock()
	defer in.oracleMu.Unlock()
	return in.weigher(now), nil
}

// SubsetSum answers the /subsetsum query: the unbiased Horvitz–Thompson
// estimate of Σ w(p) over active elements satisfying pred. Write lock:
// estimator queries advance the clock, drain the staged prefix, and flush
// sharded ingest.
func (in *Instance) SubsetSum(at *int64, pred func(string) bool) (float64, bool, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.estAt == nil && in.est == nil {
		return 0, false, ErrUnsupported
	}
	now, err := in.advanceClockAndDrain(at)
	if err != nil {
		return 0, false, err
	}
	if in.barrier != nil {
		in.barrier()
	}
	if in.seqMode() || in.estAt == nil {
		if in.est == nil {
			// Unreachable for today's registrable substrates (every seq
			// estimator has Estimate), but refuse rather than panic if a
			// future substrate exposes only the other half.
			return 0, false, ErrUnsupported
		}
		v, ok := in.est(pred)
		return v, ok, nil
	}
	v, ok := in.estAt(now, pred)
	return v, ok, nil
}

// Stats answers the /samplers listing. The fast path — nothing staged,
// nothing unapplied, and a barrier has flushed the shards since the last
// apply — reads the footprint under the READ lock, so concurrent /stats
// scrapes neither serialize ingest nor each other. Otherwise it takes the
// write lock once to drain, barrier, and mark the state clean; follow-up
// scrapes ride the fast path again.
func (in *Instance) Stats() (count uint64, k, words, maxWords int) {
	in.qmu.Lock()
	pending := len(in.queue) > 0 || in.appliedSeq != in.admittedSeq
	count = in.events
	in.qmu.Unlock()
	if !pending && in.statsClean.Load() {
		if k, words, maxWords, ok := in.statsFast(); ok {
			return count, k, words, maxWords
		}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.drainLocked()
	if in.barrier != nil {
		in.barrier()
	}
	in.statsClean.Store(true)
	return count, in.ing.K(), in.ing.Words(), in.ing.MaxWords()
}

// statsFast reads the footprint under the read lock. Re-checks statsClean
// under the lock: an applier that slipped in between the caller's probe
// and the RLock would have cleared the flag before releasing mu, and it
// cannot run while we hold the read side.
func (in *Instance) statsFast() (k, words, maxWords int, ok bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if !in.statsClean.Load() {
		return 0, 0, 0, false
	}
	return in.ing.K(), in.ing.Words(), in.ing.MaxWords(), true
}

// Close drains and stops the instance: admission is sealed, the staged
// queue is applied in order, a final barrier flushes any in-flight sharded
// ingest, the shard goroutines are stopped, and the applier goroutine
// exits. The substrate stays queryable afterwards (sharded Close is made
// for this); only further ingest is refused.
func (in *Instance) Close() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.beginClose() {
		return
	}
	in.drainLocked()
	if in.barrier != nil {
		in.barrier()
	}
	if in.closer != nil {
		in.closer()
	}
}

// beginClose seals admission under qmu, waking the applier so it can
// observe stopping and exit. Reports false when already closed.
func (in *Instance) beginClose() bool {
	in.qmu.Lock()
	defer in.qmu.Unlock()
	if in.closed {
		return false
	}
	in.closed = true
	in.stopping = true
	in.workCond.Broadcast()
	return true
}
