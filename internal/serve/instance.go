package serve

import (
	"sync"

	"slidingsample/internal/stream"
)

// weightedIngester is the ingest half of stream.WeightedSampler: what the
// explicit-weight HTTP path needs. It is asserted separately so the
// subset-sum estimators — which forward precomputed weights into their
// sketches but answer estimates rather than samples — qualify too.
type weightedIngester interface {
	ObserveWeighted(value string, weight float64, ts int64)
	ObserveWeightedBatch(batch []stream.Element[string], weights []float64)
}

// Instance is one registered sampler: the substrate behind its capability
// views, the monotone stream clock the HTTP surface enforces (the internal
// samplers treat clock regressions as programmer error and panic; the
// serving edge validates and returns 4xx instead), and the RWMutex that
// maps the package's concurrency model onto the single-goroutine sampler
// contract.
type Instance struct {
	mu   sync.RWMutex
	spec Spec

	ing ingester // always non-nil

	// Optional capability views (nil when the substrate lacks them).
	plain    stream.Sampler[string]      // Sample()
	timed    stream.TimedSampler[string] // SampleAt(now)
	weighted weightedIngester            // explicit ingest weights
	sizer    interface{ SizeAt(int64) uint64 }
	weigher  func(int64) float64                                  // (1±ε) active-weight oracle
	estAt    func(int64, func(string) bool) (float64, bool)       // subset sum at a query time
	est      func(pred func(string) bool) (float64, bool)         // subset sum, sequence windows
	barrier  func()
	closer   func()

	// scratch is the reused ingest batch buffer (guarded by mu; every
	// substrate consumes its batch synchronously — the sharded dispatcher
	// copies into per-shard slices before returning — so steady-state HTTP
	// ingest is allocation-free under the stream.MaxRecycledCap
	// discipline, like every other retained buffer in the repository).
	scratch []stream.Element[string]

	last   int64 // stream clock: max ingest/query time seen (ts mode)
	begun  bool
	closed bool
}

// newInstance wires the substrate's capabilities by type assertion — the
// registry never needs to know concrete sampler types, only what each one
// can answer.
func newInstance(spec Spec, built any) *Instance {
	inst := &Instance{spec: spec, ing: built.(ingester)}
	if s, ok := built.(stream.Sampler[string]); ok {
		inst.plain = s
	}
	if s, ok := built.(stream.TimedSampler[string]); ok {
		inst.timed = s
	}
	if s, ok := built.(weightedIngester); ok {
		inst.weighted = s
	}
	if s, ok := built.(interface{ SizeAt(int64) uint64 }); ok {
		inst.sizer = s
	}
	if s, ok := built.(interface{ TotalWeightAt(int64) float64 }); ok {
		inst.weigher = s.TotalWeightAt
	} else if s, ok := built.(interface{ WeightAt(int64) float64 }); ok {
		// The sharded subset-sum estimator names its dispatcher-side
		// weight oracle WeightAt (TotalAt is the HT estimate).
		inst.weigher = s.WeightAt
	} else if s, ok := built.(interface{ TotalWeight() float64 }); ok {
		// Sequence-window sharded weighted samplers: the oracle is clocked
		// on the arrival index, so the query takes no time argument (and
		// readClock already rejects at= in seq mode).
		inst.weigher = func(int64) float64 { return s.TotalWeight() }
	}
	if s, ok := built.(interface {
		EstimateAt(int64, func(string) bool) (float64, bool)
	}); ok {
		inst.estAt = s.EstimateAt
	}
	if s, ok := built.(interface {
		Estimate(func(string) bool) (float64, bool)
	}); ok {
		inst.est = s.Estimate
	}
	if s, ok := built.(interface{ Barrier() }); ok {
		inst.barrier = s.Barrier
	}
	if s, ok := built.(interface{ Close() }); ok {
		inst.closer = s.Close
	}
	return inst
}

// Spec returns the instance's spec with the resolved seed.
func (in *Instance) Spec() Spec { return in.spec }

// seqMode reports whether the instance samples a sequence window.
func (in *Instance) seqMode() bool { return in.spec.Mode == "seq" }

// Ingest validates and feeds one batch. values is required; timestamps is
// required in ts mode and must be absent in seq mode; weights is optional
// and only accepted on substrates with a precomputed-weight ingest path.
// The whole batch is validated before any element is fed, so a rejected
// batch leaves the sampler untouched.
func (in *Instance) Ingest(values []string, timestamps []int64, weights []float64) (uint64, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return 0, ErrClosed
	}
	if in.seqMode() {
		if timestamps != nil {
			return 0, ErrBatchShape
		}
	} else {
		if len(timestamps) != len(values) {
			return 0, ErrBatchShape
		}
	}
	if weights != nil {
		if in.weighted == nil {
			return 0, ErrWeightsUnsupported
		}
		if len(weights) != len(values) {
			return 0, ErrBatchShape
		}
		for _, w := range weights {
			if !(w > 0) || w > maxFinite {
				return 0, ErrBadWeight
			}
		}
	}
	if len(values) == 0 {
		return in.ing.Count(), nil
	}
	last, begun := in.last, in.begun
	for _, ts := range timestamps {
		if begun && ts < last {
			return 0, ErrTimeBackwards
		}
		begun, last = true, ts
	}
	batch := in.scratch[:0]
	if cap(batch) < len(values) {
		batch = make([]stream.Element[string], 0, len(values))
	}
	for i, v := range values {
		e := stream.Element[string]{Value: v}
		if timestamps != nil {
			e.TS = timestamps[i]
		}
		batch = append(batch, e)
	}
	if weights != nil {
		in.weighted.ObserveWeightedBatch(batch, weights)
	} else {
		in.ing.ObserveBatch(batch)
	}
	if cap(batch) > stream.MaxRecycledCap {
		in.scratch = nil
	} else {
		clear(batch) // release the payload strings
		in.scratch = batch[:0]
	}
	if !in.seqMode() {
		in.last, in.begun = last, begun
	}
	return in.ing.Count(), nil
}

// maxFinite rejects +Inf (and, via the w > 0 guard, NaN) without pulling
// math into the hot validation loop.
const maxFinite = 1.7976931348623157e308

// queryClock resolves an "as of" query time for a CLOCK-ADVANCING query:
// nil means "at the latest observed time"; an explicit time must not
// regress (the repository-wide monotone query clock contract, surfaced as
// a 409 instead of the internal panic). Querying a timestamp window that
// has seen nothing is an error — answering would pin the stream clock
// before the stream begins.
func (in *Instance) queryClock(at *int64) (int64, error) {
	if in.seqMode() {
		if at != nil {
			return 0, ErrNoClock
		}
		return 0, nil
	}
	if !in.begun {
		return 0, ErrNoArrivals
	}
	if at == nil {
		return in.last, nil
	}
	if *at < in.last {
		return 0, ErrClockBackwards
	}
	return *at, nil
}

// readClock resolves an "as of" time for a READ-ONLY oracle query: older
// times are clamped to the stream clock (matching the substrates' own
// clamping) rather than rejected, since the query moves no state.
func (in *Instance) readClock(at *int64) (int64, error) {
	if in.seqMode() {
		if at != nil {
			return 0, ErrNoClock
		}
		return 0, nil
	}
	if !in.begun {
		return 0, ErrNoArrivals
	}
	if at == nil || *at < in.last {
		return in.last, nil
	}
	return *at, nil
}

// Sample answers the /sample query: the current sample at the resolved
// query clock. Holds the write lock — sampling advances the clock, and on
// sharded substrates flushes in-flight ingest (auto-barrier).
func (in *Instance) Sample(at *int64) ([]stream.Element[string], bool, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plain == nil {
		return nil, false, ErrUnsupported
	}
	now, err := in.queryClock(at)
	if err != nil {
		return nil, false, err
	}
	if in.barrier != nil {
		in.barrier()
	}
	if in.seqMode() {
		es, ok := in.plain.Sample()
		return es, ok, nil
	}
	if in.timed == nil {
		// A ts-mode substrate without SampleAt could only answer at its
		// last-arrival clock, silently mislabeling the response's time
		// (unreachable for the registrable substrates today — every
		// ts-mode sampler is a TimedSampler — but refuse rather than lie).
		return nil, false, ErrUnsupported
	}
	in.last = now
	es, ok := in.timed.SampleAt(now)
	return es, ok, nil
}

// Size answers the /size query: the (1±ε) effective window size n(t) from
// the substrate's embedded exponential-histogram counter. Holds only the
// READ lock — the whole path is read-only (DESIGN.md §7).
func (in *Instance) Size(at *int64) (uint64, error) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if in.sizer == nil {
		return 0, ErrUnsupported
	}
	now, err := in.readClock(at)
	if err != nil {
		return 0, err
	}
	return in.sizer.SizeAt(now), nil
}

// Weight answers the /weight query: the (1±ε) active-weight total from the
// sharded substrates' per-shard weight oracles. Write lock: the oracle
// sums are memoized in a per-instance scratch cache.
func (in *Instance) Weight(at *int64) (float64, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.weigher == nil {
		return 0, ErrUnsupported
	}
	now, err := in.readClock(at)
	if err != nil {
		return 0, err
	}
	return in.weigher(now), nil
}

// SubsetSum answers the /subsetsum query: the unbiased Horvitz–Thompson
// estimate of Σ w(p) over active elements satisfying pred. Write lock:
// estimator queries advance the clock and flush sharded ingest.
func (in *Instance) SubsetSum(at *int64, pred func(string) bool) (float64, bool, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.estAt == nil && in.est == nil {
		return 0, false, ErrUnsupported
	}
	now, err := in.queryClock(at)
	if err != nil {
		return 0, false, err
	}
	if in.barrier != nil {
		in.barrier()
	}
	if in.seqMode() || in.estAt == nil {
		if in.est == nil {
			// Unreachable for today's registrable substrates (every seq
			// estimator has Estimate), but refuse rather than panic if a
			// future substrate exposes only the other half.
			return 0, false, ErrUnsupported
		}
		v, ok := in.est(pred)
		return v, ok, nil
	}
	in.last = now
	v, ok := in.estAt(now, pred)
	return v, ok, nil
}

// Stats answers the /samplers listing. It holds the WRITE lock and flushes
// sharded ingest first: Words/MaxWords walk per-shard sampler state, which
// in-flight dealt elements would otherwise race with (the dispatcher is
// asynchronous past the channel send).
func (in *Instance) Stats() (count uint64, k, words, maxWords int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.barrier != nil {
		in.barrier()
	}
	return in.ing.Count(), in.ing.K(), in.ing.Words(), in.ing.MaxWords()
}

// Close drains and stops the instance: a final barrier flushes any
// in-flight sharded ingest, then the shard goroutines are stopped. The
// substrate stays queryable afterwards (sharded Close is made for this);
// only further ingest is refused.
func (in *Instance) Close() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return
	}
	in.closed = true
	if in.barrier != nil {
		in.barrier()
	}
	if in.closer != nil {
		in.closer()
	}
}
