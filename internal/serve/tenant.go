package serve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"slidingsample/internal/slab"
	"slidingsample/internal/stream"
	"slidingsample/internal/substrate"
	"slidingsample/internal/xrand"
)

// The multi-tenant sampler fabric: one template Spec stamped out lazily per
// tenant, behind a striped keyed registry. The paper's samplers keep
// O(k·log n) words each, so the serving-scale win is packing millions of
// them into one process; three choices here are load-bearing for that:
//
//   - LOOKUP NEVER SERIALIZES INGEST: the registry is split into
//     tenantStripes shards keyed by a hash of the tenant id. The hot path
//     (an existing tenant) takes one stripe RLock just long enough for a
//     map read; first arrivals take that stripe's write lock only, so a
//     thundering herd of new tenants contends per stripe, not globally.
//   - TENANTS ARE LIGHTWEIGHT: a tenant is the substrate behind its
//     capability views plus one sync.Mutex and three clock/count words —
//     NOT a full Instance. The named instances each carry a staging queue,
//     two conds, and a dedicated applier goroutine (kilobytes of stack
//     apiece), which is the right trade for a handful of hot streams and
//     the wrong one a million times over. Per-tenant traffic is assumed
//     thin, so tenant ingest validates outside the lock and applies
//     synchronously under the tenant's own mutex; cross-tenant ingest still
//     runs fully in parallel. (A plain Mutex, not RWMutex, on purpose: it
//     is 24 bytes smaller, and clock-advancing queries need exclusivity
//     anyway.)
//   - DETERMINISM IS PER TENANT: every tenant's substrate is seeded
//     xrand.TenantSeed(fabric base seed, tenant id), a pure function of the
//     pair, and queries draw no randomness (the package invariant). So a
//     tenant's responses are byte-deterministic given its OWN admission
//     order, no matter how other tenants' arrivals interleave — the
//     WithSeed contract, per key.
//
// Ingest scratch (the element batch built from each request) comes from a
// typed slab free-list (internal/slab): the substrates consume batches
// synchronously and retain only the element values, so the buffer recycles
// as soon as apply returns, and steady-state ingest does not allocate per
// request for scratch.
const tenantStripes = 64

// Serving-grade caps on the fabric surface: tenant creation is a
// network-reachable side effect, so both the tenant count and the implied
// eager memory are bounded at registration time.
const (
	// DefaultMaxTenants is the per-fabric tenant budget when registration
	// does not choose one.
	DefaultMaxTenants = 1 << 20
	// MaxTenantsCap bounds any fabric's tenant budget.
	MaxTenantsCap = 1 << 21
	// MaxFabricWords bounds maxTenants × (estimated steady per-tenant
	// words), so one fabric registration cannot commit the process to more
	// than ~2 GB of sampler state even at its full tenant budget.
	MaxFabricWords = 1 << 28
	// maxTenantIDBytes bounds one tenant id (ids are map keys held for the
	// fabric's lifetime).
	maxTenantIDBytes = 128
)

// tenant is one lazily created sampler: the substrate behind its capability
// views, a mutex mapping HTTP concurrency onto the single-goroutine sampler
// contract, and the same admission state the named instances keep (event
// count and the monotone stream clock).
type tenant struct {
	mu sync.Mutex
	caps
	events uint64
	last   int64 // stream clock: max ingest/query time applied (ts mode)
	begun  bool
}

// tenantStripe is one shard of the fabric's keyed registry.
type tenantStripe struct {
	mu sync.RWMutex
	m  map[string]*tenant
}

// Fabric is a multi-tenant sampler registry: one template Spec, one tenant
// budget, and per-tenant samplers created lazily on first arrival. Safe for
// concurrent use.
type Fabric struct {
	spec Spec // template; Seed is the fabric's RESOLVED base seed

	// Capability flags probed from a throwaway template build at
	// registration, so requests that can never succeed (explicit weights on
	// a weight-function substrate, /size on a sampler without an oracle)
	// are refused without creating the tenant.
	weightedOK bool

	maxTenants int64
	live       atomic.Int64
	closed     atomic.Bool
	stripes    [tenantStripes]tenantStripe

	// elems recycles the per-request element scratch under the repo-wide
	// MaxRecycledCap discipline.
	elems *slab.SlicePool[stream.Element[string]]
}

// NewFabric validates the template and returns an empty fabric. maxTenants
// is the tenant budget (0 selects DefaultMaxTenants). The template is built
// once and discarded to probe its capabilities and its construction
// footprint; templates whose substrates own goroutines (the sharded
// samplers) are rejected — at fabric scale, parallelism comes from the
// tenant count, and a million shard pools would be a goroutine bomb.
func NewFabric(spec Spec, maxTenants int) (*Fabric, error) {
	if err := validateServable(spec); err != nil {
		return nil, err
	}
	if strings.HasPrefix(spec.Sampler, "sharded-") {
		return nil, fmt.Errorf("serve: fabric template %q: sharded substrates own goroutine pools; fabrics scale by tenant count, use the non-sharded sampler", spec.Sampler)
	}
	if maxTenants == 0 {
		maxTenants = DefaultMaxTenants
	}
	if maxTenants < 0 || maxTenants > MaxTenantsCap {
		return nil, fmt.Errorf("serve: maxTenants %d outside [1, %d]", maxTenants, MaxTenantsCap)
	}
	probe, _, err := substrate.New(spec)
	if err != nil {
		return nil, err
	}
	pc := wireCaps(probe)
	if pc.closer != nil || pc.barrier != nil {
		// Belt over the prefix check: any substrate with lifecycle hooks
		// owns background machinery the fabric refuses to multiply.
		return nil, fmt.Errorf("serve: fabric template %q: substrate has lifecycle hooks (goroutines); not fabric-servable", spec.Sampler)
	}
	// Coarse steady-state words per tenant: the construction footprint plus
	// the k retained slots the sampler grows into (6 words ≈ a retained
	// node). Deliberately an admission bound, not an accounting claim — the
	// word model proper lives with the substrates (DESIGN.md §6).
	perTenant := int64(pc.ing.Words()) + 6*int64(pc.ing.K())
	if perTenant*int64(maxTenants) > MaxFabricWords {
		return nil, fmt.Errorf("serve: fabric budget %d tenants × ~%d words/tenant exceeds the serving cap %d words; lower maxTenants or k", maxTenants, perTenant, MaxFabricWords)
	}
	resolved := spec
	resolved.Seed = substrate.ResolveSeed(spec.Seed)
	f := &Fabric{
		spec:       resolved,
		weightedOK: pc.weighted != nil,
		maxTenants: int64(maxTenants),
		elems:      slab.NewSlicePool[stream.Element[string]](stream.MaxRecycledCap),
	}
	for i := range f.stripes {
		f.stripes[i].m = make(map[string]*tenant)
	}
	return f, nil
}

// Spec returns the template spec with the resolved base seed.
func (f *Fabric) Spec() Spec { return f.spec }

// MaxTenants returns the fabric's tenant budget.
func (f *Fabric) MaxTenants() int { return int(f.maxTenants) }

// Tenants returns the current live tenant count.
func (f *Fabric) Tenants() int { return int(f.live.Load()) }

// seqMode reports whether the template samples a sequence window.
func (f *Fabric) seqMode() bool { return f.spec.Mode == "seq" }

// Close seals the fabric: further ingest (and tenant creation) is refused.
// Tenants stay queryable — they own no goroutines (enforced at
// registration), so there is nothing to stop or drain.
func (f *Fabric) Close() { f.closed.Store(true) }

// validTenantID bounds tenant ids: they are lifetime map keys and path
// segments, so they must be non-empty, short, and free of separators.
func validTenantID(id string) error {
	if id == "" || len(id) > maxTenantIDBytes || strings.ContainsAny(id, "/ \t\n") {
		return fmt.Errorf("%w: %q", ErrBadTenantID, id)
	}
	return nil
}

// stripeOf picks the registry stripe for a tenant id (FNV-1a 64, masked —
// tenantStripes is a power of two).
func stripeOf(id string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int(h & (tenantStripes - 1))
}

// tenantFor resolves a tenant through the striped registry. The fast path
// is one stripe RLock around a map read; with create set, a miss falls into
// the stripe's write lock where exactly one racer builds the sampler.
func (f *Fabric) tenantFor(id string, create bool) (*tenant, error) {
	if err := validTenantID(id); err != nil {
		return nil, err
	}
	st := &f.stripes[stripeOf(id)]
	st.mu.RLock()
	tn := st.m[id]
	st.mu.RUnlock()
	if tn != nil {
		return tn, nil
	}
	if !create {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	return f.createTenant(st, id)
}

// createTenant is the first-arrival slow path: re-check under the stripe
// write lock (losers of the creation race adopt the winner's sampler — the
// exactly-one-sampler-per-tenant invariant), charge the tenant budget, and
// build the substrate seeded by (base seed, tenant id).
func (f *Fabric) createTenant(st *tenantStripe, id string) (*tenant, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if tn := st.m[id]; tn != nil {
		return tn, nil
	}
	if f.closed.Load() {
		return nil, ErrClosed
	}
	// Optimistic charge with rollback: the counter may transiently overshoot
	// the budget by in-flight creators, but never commits past it.
	if f.live.Add(1) > f.maxTenants {
		f.live.Add(-1)
		return nil, fmt.Errorf("%w (budget %d)", ErrTenantBudget, f.maxTenants)
	}
	spec := f.spec
	spec.Seed = xrand.TenantSeed(f.spec.Seed, id)
	built, _, err := substrate.New(spec)
	if err != nil {
		f.live.Add(-1)
		return nil, err
	}
	tn := &tenant{caps: wireCaps(built)}
	st.m[id] = tn
	return tn, nil
}

// Ingest validates and applies one batch for the tenant, creating the
// tenant on first arrival. Validation runs outside every lock and the whole
// batch is validated before anything commits, so a rejected batch leaves
// the fabric untouched — including tenant creation: an invalid batch never
// creates its tenant, and an EMPTY batch (no arrival) does not either; it
// reports the existing tenant's count, or 0 for a tenant that does not
// exist yet.
//
// Batch-shape checks are length-based here (empty means absent): the
// handler feeds slab-recycled slices, which are non-nil even when the
// request omitted the field.
func (f *Fabric) Ingest(id string, values []string, timestamps []int64, weights []float64) (uint64, error) {
	if f.closed.Load() {
		return 0, ErrClosed
	}
	if f.seqMode() {
		if len(timestamps) > 0 {
			return 0, ErrBatchShape
		}
	} else if len(timestamps) != len(values) {
		return 0, ErrBatchShape
	}
	if len(weights) > 0 {
		if !f.weightedOK {
			return 0, ErrWeightsUnsupported
		}
		if len(weights) != len(values) {
			return 0, ErrBatchShape
		}
		for _, w := range weights {
			if !(w > 0) || w > maxFinite {
				return 0, ErrBadWeight
			}
		}
	}
	// Within-batch timestamp monotonicity needs no tenant state; check it
	// before creating or locking anything.
	var first, lastTS int64
	if len(timestamps) > 0 {
		first = timestamps[0]
		prev := first
		for _, ts := range timestamps[1:] {
			if ts < prev {
				return 0, ErrTimeBackwards
			}
			prev = ts
		}
		lastTS = prev
	}
	if len(values) == 0 {
		if err := validTenantID(id); err != nil {
			return 0, err
		}
		st := &f.stripes[stripeOf(id)]
		st.mu.RLock()
		tn := st.m[id]
		st.mu.RUnlock()
		if tn == nil {
			return 0, nil
		}
		tn.mu.Lock()
		defer tn.mu.Unlock()
		return tn.events, nil
	}
	elems := f.elems.Get(len(values))
	for i, v := range values {
		elems[i] = stream.Element[string]{Value: v}
		if len(timestamps) > 0 {
			elems[i].TS = timestamps[i]
		}
	}
	tn, err := f.tenantFor(id, true)
	if err != nil {
		f.elems.Put(elems)
		return 0, err
	}
	count, err := tn.apply(f.seqMode(), elems, weights, first, lastTS)
	// The substrates consume the batch synchronously and retain only the
	// element values, so the scratch recycles the moment apply returns.
	f.elems.Put(elems)
	return count, err
}

// apply feeds one pre-validated batch to the substrate under the tenant
// mutex: the cross-batch clock check against this tenant's stream clock,
// then the observe call. Weights non-empty selects the precomputed-weight
// path (capability verified by the caller against the template probe).
func (tn *tenant) apply(seqMode bool, elems []stream.Element[string], weights []float64, first, lastTS int64) (uint64, error) {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	if !seqMode {
		if tn.begun && first < tn.last {
			return 0, ErrTimeBackwards
		}
		tn.last, tn.begun = lastTS, true
	}
	if len(weights) > 0 {
		tn.weighted.ObserveWeightedBatch(elems, weights)
	} else {
		tn.ing.ObserveBatch(elems)
	}
	tn.events += uint64(len(elems))
	return tn.events, nil
}

// queryClock resolves an "as of" time against the tenant's monotone stream
// clock (tenant mutex held). Clock-advancing queries (advance=true: sample,
// subsetsum) reject regressions and push explicit times into the clock;
// read-only oracles clamp older times instead, matching the named
// instances' semantics endpoint for endpoint.
func (tn *tenant) queryClock(seqMode bool, at *int64, advance bool) (int64, error) {
	switch {
	case seqMode:
		if at != nil {
			return 0, ErrNoClock
		}
		return 0, nil
	case !tn.begun:
		return 0, ErrNoArrivals
	case at == nil:
		return tn.last, nil
	case *at < tn.last:
		if advance {
			return 0, ErrClockBackwards
		}
		return tn.last, nil
	default:
		if advance {
			tn.last = *at
		}
		return *at, nil
	}
}

// Sample answers /tenant/{id}/sample: the tenant's current sample at the
// resolved query clock.
func (f *Fabric) Sample(id string, at *int64) ([]stream.Element[string], bool, error) {
	tn, err := f.tenantFor(id, false)
	if err != nil {
		return nil, false, err
	}
	if tn.plain == nil {
		return nil, false, ErrUnsupported
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	now, err := tn.queryClock(f.seqMode(), at, true)
	if err != nil {
		return nil, false, err
	}
	if f.seqMode() {
		es, ok := tn.plain.Sample()
		return es, ok, nil
	}
	if tn.timed == nil {
		return nil, false, ErrUnsupported
	}
	es, ok := tn.timed.SampleAt(now)
	return es, ok, nil
}

// Size answers /tenant/{id}/size: the (1±ε) effective window size.
func (f *Fabric) Size(id string, at *int64) (uint64, error) {
	tn, err := f.tenantFor(id, false)
	if err != nil {
		return 0, err
	}
	if tn.sizer == nil {
		return 0, ErrUnsupported
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	now, err := tn.queryClock(f.seqMode(), at, false)
	if err != nil {
		return 0, err
	}
	return tn.sizer.SizeAt(now), nil
}

// Weight answers /tenant/{id}/weight: the (1±ε) active-weight total, on the
// substrates that carry a weight oracle.
func (f *Fabric) Weight(id string, at *int64) (float64, error) {
	tn, err := f.tenantFor(id, false)
	if err != nil {
		return 0, err
	}
	if tn.weigher == nil {
		return 0, ErrUnsupported
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	now, err := tn.queryClock(f.seqMode(), at, false)
	if err != nil {
		return 0, err
	}
	return tn.weigher(now), nil
}

// SubsetSum answers /tenant/{id}/subsetsum: the Horvitz–Thompson estimate
// of Σ w(p) over the tenant's active elements satisfying pred.
func (f *Fabric) SubsetSum(id string, at *int64, pred func(string) bool) (float64, bool, error) {
	tn, err := f.tenantFor(id, false)
	if err != nil {
		return 0, false, err
	}
	if tn.estAt == nil && tn.est == nil {
		return 0, false, ErrUnsupported
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	now, err := tn.queryClock(f.seqMode(), at, true)
	if err != nil {
		return 0, false, err
	}
	if f.seqMode() || tn.estAt == nil {
		if tn.est == nil {
			return 0, false, ErrUnsupported
		}
		v, ok := tn.est(pred)
		return v, ok, nil
	}
	v, ok := tn.estAt(now, pred)
	return v, ok, nil
}

// Count returns the tenant's event count (0 for a tenant that has not
// arrived yet — the same shape an empty-batch ingest reports).
func (f *Fabric) Count(id string) (uint64, error) {
	tn, err := f.tenantFor(id, false)
	if err != nil {
		return 0, err
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	return tn.events, nil
}
