package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/substrate"
	"slidingsample/internal/xrand"
)

// tenantBenchSpec is the fabric template for the multi-tenant benchmarks:
// seq-mode (concurrent producers cannot race a timestamp clock) weighted
// sampling with a small fixed k — the per-tenant state block the slab and
// budget math are sized around.
var tenantBenchSpec = Spec{Mode: "seq", Sampler: "weighted-wor", N: 4096, K: 8, Seed: 5}

// naiveFabric is the BENCH_6 "before": one mutex over one tenant map, a
// fresh element buffer allocated per batch, no striping and no slab. This
// is the obvious first implementation of a keyed registry — every row in
// BenchmarkTenantIngest pairs it with the striped fabric at an equal
// workload.
type naiveFabric struct {
	spec Spec
	mu   sync.Mutex
	m    map[string]*tenant
}

func newNaiveFabric(spec Spec) *naiveFabric {
	resolved := spec
	resolved.Seed = substrate.ResolveSeed(spec.Seed)
	return &naiveFabric{spec: resolved, m: make(map[string]*tenant)}
}

func (nf *naiveFabric) ingest(id string, values []string, weights []float64) (uint64, error) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	tn := nf.m[id]
	if tn == nil {
		spec := nf.spec
		spec.Seed = xrand.TenantSeed(nf.spec.Seed, id)
		built, _, err := substrate.New(spec)
		if err != nil {
			return 0, err
		}
		tn = &tenant{caps: wireCaps(built)}
		nf.m[id] = tn
	}
	elems := make([]stream.Element[string], len(values))
	for i, v := range values {
		elems[i] = stream.Element[string]{Value: v}
	}
	return tn.apply(true, elems, weights, 0, 0)
}

// BenchmarkTenantIngest measures steady-state multi-tenant ingest: b.N
// batches round-robined across a pre-created tenant population, split over
// the client goroutines. naive serializes every batch behind one mutex and
// allocates fresh scratch; fabric rides the striped registry and the slab
// pool. The events/s delta is the tentpole's throughput claim.
func BenchmarkTenantIngest(b *testing.B) {
	const batchSize = 16
	vals := make([]string, batchSize)
	ws := make([]float64, batchSize)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%d", i)
		ws[i] = float64(i%9 + 1)
	}
	for _, mode := range []string{"naive", "fabric"} {
		for _, liveTenants := range []int{4096, 100_000} {
			for _, clients := range []int{1, 8} {
				if testing.Short() && liveTenants > 4096 {
					continue // smoke runs skip the large population build
				}
				ids := make([]string, liveTenants)
				for i := range ids {
					ids[i] = fmt.Sprintf("tenant-%d", i)
				}
				b.Run(fmt.Sprintf("%s/tenants=%d/clients=%d", mode, liveTenants, clients), func(b *testing.B) {
					var ingest func(id string) error
					switch mode {
					case "naive":
						nf := newNaiveFabric(tenantBenchSpec)
						ingest = func(id string) error { _, err := nf.ingest(id, vals, ws); return err }
					case "fabric":
						f, err := NewFabric(tenantBenchSpec, 0)
						if err != nil {
							b.Fatal(err)
						}
						ingest = func(id string) error { _, err := f.Ingest(id, vals, nil, ws); return err }
					}
					// Pre-create the whole population so the timed region measures
					// steady-state ingest, not first-arrival construction.
					for _, id := range ids {
						if err := ingest(id); err != nil {
							b.Fatal(err)
						}
					}
					var next atomic.Int64
					b.ResetTimer()
					var wg sync.WaitGroup
					for c := 0; c < clients; c++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							for {
								i := int(next.Add(1)) - 1
								if i >= b.N {
									return
								}
								if err := ingest(ids[i%liveTenants]); err != nil {
									b.Error(err)
									return
								}
							}
						}()
					}
					wg.Wait()
					b.StopTimer()
					b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "events/s")
				})
			}
		}
	}
}

// BenchmarkTenantFootprint measures bytes per idle tenant: create n tenants
// with one element each, force a GC, and divide the live-heap growth by n.
// It is a one-shot measurement — the population is built once regardless of
// b.N, so the bytes/tenant metric is meaningful at any -benchtime (ns/op is
// not; ignore it). The 1M row is the headline number for the README memory
// table; -short keeps it out of smoke runs.
func BenchmarkTenantFootprint(b *testing.B) {
	for _, mode := range []string{"naive", "fabric"} {
		for _, n := range []int{100_000, 1_000_000} {
			b.Run(fmt.Sprintf("%s/tenants=%d", mode, n), func(b *testing.B) {
				if testing.Short() && n > 100_000 {
					b.Skip("skipping the 1M-tenant population in -short mode")
				}
				vals := []string{"x"}
				ws := []float64{1}
				var ingest func(id string) error
				var keep any
				switch mode {
				case "naive":
					nf := newNaiveFabric(tenantBenchSpec)
					ingest = func(id string) error { _, err := nf.ingest(id, vals, ws); return err }
					keep = nf
				case "fabric":
					f, err := NewFabric(tenantBenchSpec, 0)
					if err != nil {
						b.Fatal(err)
					}
					ingest = func(id string) error { _, err := f.Ingest(id, vals, nil, ws); return err }
					keep = f
				}
				runtime.GC()
				var before runtime.MemStats
				runtime.ReadMemStats(&before)
				for t := 0; t < n; t++ {
					if err := ingest(fmt.Sprintf("tenant-%d", t)); err != nil {
						b.Fatal(err)
					}
				}
				runtime.GC()
				var after runtime.MemStats
				runtime.ReadMemStats(&after)
				b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/float64(n), "bytes/tenant")
				runtime.KeepAlive(keep)
			})
		}
	}
}
