package serve

// Golden snapshot fixtures: one committed .snap file per codec family,
// produced from a fixed seed and a fixed ingest prefix. They pin the
// on-disk format from both sides —
//
//   - encoder stability: re-encoding the same seeded stream today must
//     reproduce the committed bytes exactly, so an accidental format
//     change fails here before it strands anyone's state directory;
//   - decoder compatibility: the committed bytes (written by whatever
//     commit last regenerated them) must still restore into an instance
//     that resumes identically to an uninterrupted twin.
//
// After an INTENDED format change, bump snap.Version and regenerate:
//
//	go test ./internal/serve/ -run TestGoldenSnapshots -update

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden snapshot fixtures in testdata/")

// queryTranscript runs the full read surface in a fixed order and
// renders every result — values, ok flags, AND errors (capability gaps
// must match too). Footprint stats come last so both twins' query caches
// are equally warm when Words is accounted.
func queryTranscript(t *testing.T, inst *Instance) string {
	t.Helper()
	var b strings.Builder
	sample, ok, err := inst.Sample(nil)
	fmt.Fprintf(&b, "sample %v %v %v\n", sample, ok, err)
	size, err := inst.Size(nil)
	fmt.Fprintf(&b, "size %d %v\n", size, err)
	wt, err := inst.Weight(nil)
	fmt.Fprintf(&b, "weight %v %v\n", wt, err)
	sum, ok, err := inst.SubsetSum(nil, func(v string) bool { return strings.HasSuffix(v, "1 extra") })
	fmt.Fprintf(&b, "subsetsum %v %v %v\n", sum, ok, err)
	count, k, words, maxWords := inst.Stats()
	fmt.Fprintf(&b, "stats %d %d %d %d\n", count, k, words, maxWords)
	return b.String()
}

func TestGoldenSnapshots(t *testing.T) {
	for _, spec := range fuzzSpecs() {
		t.Run(spec.Mode+"/"+spec.Sampler, func(t *testing.T) {
			data := seedSnapshot(t, spec)
			path := filepath.Join("testdata", spec.Mode+"-"+spec.Sampler+".snap")
			if *updateGolden {
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (regenerate with -update): %v", err)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("snapshot encoding drifted from %s (%d bytes, want %d): if intended, bump snap.Version and regenerate with -update",
					path, len(data), len(want))
			}

			restored, events, err := RestoreInstance(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("restore %s: %v", path, err)
			}
			defer restored.Close()
			if events != seedEvents {
				t.Fatalf("fixture covers %d events, want %d", events, seedEvents)
			}

			// The fixture must RESUME, not just load: ingest a fresh tail
			// into the restored instance and an uninterrupted twin, and
			// require identical query transcripts.
			s := NewServer()
			defer s.Close()
			twin, err := s.Register("twin", spec)
			if err != nil {
				t.Fatal(err)
			}
			seedIngest(t, twin, 0, seedEvents)
			seedIngest(t, twin, seedEvents, 16)
			seedIngest(t, restored, seedEvents, 16)
			if got, wantT := queryTranscript(t, restored), queryTranscript(t, twin); got != wantT {
				t.Fatalf("restored fixture diverged from uninterrupted twin:\n--- restored\n%s--- twin\n%s", got, wantT)
			}
		})
	}
}
