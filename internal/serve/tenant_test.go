package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"slidingsample/internal/xrand"
)

// fabricSpec is the standard test template: a non-sharded weighted
// timestamp sampler (plain Sample/SampleAt, SizeAt oracle, explicit-weight
// ingest — the widest capability set a fabric template can carry).
var fabricSpec = Spec{Mode: "ts", Sampler: "weighted-ts-wor", T0: 60, K: 5, Seed: 77}

func newFabricServer(t *testing.T, spec Spec, maxTenants int) (*Server, *Fabric, *httptest.Server) {
	t.Helper()
	s := NewServer()
	f, err := s.RegisterFabric("fab", spec, maxTenants)
	if err != nil {
		t.Fatalf("RegisterFabric: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, f, ts
}

func TestTenantIngestAndQuery(t *testing.T) {
	_, f, ts := newFabricServer(t, fabricSpec, 0)

	// First arrival creates the tenant lazily.
	code, body := post(t, ts.URL+"/tenant/fab/alice/ingest",
		`{"values":["a1","a2","a3"],"timestamps":[1,2,3],"weights":[1,2,3]}`)
	wantStatus(t, code, http.StatusOK, body)
	var ir IngestResponse
	if err := json.Unmarshal([]byte(body), &ir); err != nil || ir.Ingested != 3 || ir.Count != 3 {
		t.Fatalf("ingest response: %s", body)
	}
	if f.Tenants() != 1 {
		t.Fatalf("live tenants %d, want 1", f.Tenants())
	}

	// NDJSON rides the same route (and the slab-recycled scratch path).
	nd := `{"value":"b1","ts":1}` + "\n" + `{"value":"b2","ts":4}` + "\n"
	code, body = do(t, http.MethodPost, ts.URL+"/tenant/fab/bob/ingest", "application/x-ndjson", nd)
	wantStatus(t, code, http.StatusOK, body)
	if f.Tenants() != 2 {
		t.Fatalf("live tenants %d, want 2", f.Tenants())
	}

	// Queries answer per tenant.
	code, body = get(t, ts.URL+"/tenant/fab/alice/sample")
	wantStatus(t, code, http.StatusOK, body)
	var sr SampleResponse
	if err := json.Unmarshal([]byte(body), &sr); err != nil || !sr.OK || len(sr.Sample) != 3 {
		t.Fatalf("alice sample: %s", body)
	}
	code, body = get(t, ts.URL+"/tenant/fab/bob/size?at=4")
	wantStatus(t, code, http.StatusOK, body)

	// Queries NEVER create tenants: unknown tenant is 404 and the live
	// count is untouched.
	code, body = get(t, ts.URL+"/tenant/fab/carol/sample")
	wantStatus(t, code, http.StatusNotFound, body)
	if f.Tenants() != 2 {
		t.Fatalf("query created a tenant: live %d", f.Tenants())
	}
	// Unknown fabric is 404 too; bad tenant ids are 400.
	code, body = get(t, ts.URL+"/tenant/nope/alice/sample")
	wantStatus(t, code, http.StatusNotFound, body)
	code, body = post(t, ts.URL+"/tenant/fab/"+strings.Repeat("x", 200)+"/ingest", `{"values":["v"],"timestamps":[9]}`)
	wantStatus(t, code, http.StatusBadRequest, body)

	// An empty batch is not an arrival: it reports count 0 without creating
	// the tenant.
	code, body = post(t, ts.URL+"/tenant/fab/dave/ingest", `{"values":[],"timestamps":[]}`)
	wantStatus(t, code, http.StatusOK, body)
	if err := json.Unmarshal([]byte(body), &ir); err != nil || ir.Count != 0 {
		t.Fatalf("empty-batch response: %s", body)
	}
	if f.Tenants() != 2 {
		t.Fatalf("empty batch created a tenant: live %d", f.Tenants())
	}

	// A rejected batch leaves the fabric untouched: invalid shape on a NEW
	// tenant does not create it, and the clock contract matches the named
	// instances (non-monotone ingest 409, weights validated up front).
	code, body = post(t, ts.URL+"/tenant/fab/eve/ingest", `{"values":["v","w"],"timestamps":[1]}`)
	wantStatus(t, code, http.StatusBadRequest, body)
	code, body = post(t, ts.URL+"/tenant/fab/eve/ingest", `{"values":["v"],"timestamps":[1],"weights":[-1]}`)
	wantStatus(t, code, http.StatusBadRequest, body)
	if f.Tenants() != 2 {
		t.Fatalf("rejected batches created a tenant: live %d", f.Tenants())
	}
	code, body = post(t, ts.URL+"/tenant/fab/alice/ingest", `{"values":["late"],"timestamps":[1]}`)
	wantStatus(t, code, http.StatusConflict, body)

	// The fabric listing reports the live count.
	code, body = get(t, ts.URL+"/fabrics")
	wantStatus(t, code, http.StatusOK, body)
	var infos []FabricInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil || len(infos) != 1 {
		t.Fatalf("fabric listing: %s", body)
	}
	if infos[0].Name != "fab" || infos[0].Tenants != 2 || infos[0].MaxTenants != DefaultMaxTenants {
		t.Fatalf("fabric info: %+v", infos[0])
	}
}

func TestTenantSeqModeAndCapabilityGaps(t *testing.T) {
	_, _, ts := newFabricServer(t, Spec{Mode: "seq", Sampler: "wor", N: 32, K: 4, Seed: 5}, 0)
	code, body := post(t, ts.URL+"/tenant/fab/u1/ingest", `{"values":["a","b","c"]}`)
	wantStatus(t, code, http.StatusOK, body)
	// Sequence windows: timestamps rejected, at= rejected.
	code, body = post(t, ts.URL+"/tenant/fab/u1/ingest", `{"values":["d"],"timestamps":[1]}`)
	wantStatus(t, code, http.StatusBadRequest, body)
	code, body = get(t, ts.URL+"/tenant/fab/u1/sample?at=3")
	wantStatus(t, code, http.StatusBadRequest, body)
	code, body = get(t, ts.URL+"/tenant/fab/u1/sample")
	wantStatus(t, code, http.StatusOK, body)
	// A uniform sampler has no weight oracle, no size oracle, no estimator,
	// and takes no explicit weights.
	for _, ep := range []string{"size", "weight", "subsetsum"} {
		code, body = get(t, ts.URL+"/tenant/fab/u1/"+ep)
		wantStatus(t, code, http.StatusBadRequest, body)
	}
	code, body = post(t, ts.URL+"/tenant/fab/u1/ingest", `{"values":["d"],"weights":[2]}`)
	wantStatus(t, code, http.StatusBadRequest, body)
}

func TestFabricRegisterValidation(t *testing.T) {
	s := NewServer()
	t.Cleanup(s.Close)
	cases := map[string]struct {
		name       string
		spec       Spec
		maxTenants int
	}{
		"sharded template":   {"f1", Spec{Mode: "ts", Sampler: "sharded-weighted-ts-wor", T0: 60, K: 4, G: 4}, 0},
		"bad name":           {"a b", Spec{Mode: "seq", Sampler: "wor", N: 8, K: 2}, 0},
		"unknown sampler":    {"f2", Spec{Mode: "seq", Sampler: "quantum", N: 8, K: 2}, 0},
		"negative budget":    {"f3", Spec{Mode: "seq", Sampler: "wor", N: 8, K: 2}, -1},
		"budget over cap":    {"f4", Spec{Mode: "seq", Sampler: "wor", N: 8, K: 2}, MaxTenantsCap + 1},
		"words budget blown": {"f5", Spec{Mode: "seq", Sampler: "wor", N: 1 << 20, K: MaxK}, MaxTenantsCap},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := s.RegisterFabric(tc.name, tc.spec, tc.maxTenants); err == nil {
				t.Fatalf("RegisterFabric accepted %+v", tc)
			}
		})
	}
	if _, err := s.RegisterFabric("ok", fabricSpec, 100); err != nil {
		t.Fatalf("valid fabric refused: %v", err)
	}
	if _, err := s.RegisterFabric("ok", fabricSpec, 100); err != ErrDuplicateName {
		t.Fatalf("duplicate fabric: %v", err)
	}
	// Fabric and sampler namespaces are independent.
	if _, err := s.Register("ok", Spec{Mode: "seq", Sampler: "wor", N: 8, K: 2}); err != nil {
		t.Fatalf("sampler sharing a fabric name refused: %v", err)
	}
}

func TestTenantBudgetExhaustion(t *testing.T) {
	_, f, ts := newFabricServer(t, fabricSpec, 2)
	for _, id := range []string{"t1", "t2"} {
		code, body := post(t, ts.URL+"/tenant/fab/"+id+"/ingest", `{"values":["v"],"timestamps":[1]}`)
		wantStatus(t, code, http.StatusOK, body)
	}
	// The third first-arrival blows the budget: 507, and no tenant appears.
	code, body := post(t, ts.URL+"/tenant/fab/t3/ingest", `{"values":["v"],"timestamps":[1]}`)
	wantStatus(t, code, http.StatusInsufficientStorage, body)
	if f.Tenants() != 2 {
		t.Fatalf("live tenants %d after budget rejection, want 2", f.Tenants())
	}
	// Existing tenants keep working at the cap.
	code, body = post(t, ts.URL+"/tenant/fab/t1/ingest", `{"values":["w"],"timestamps":[2]}`)
	wantStatus(t, code, http.StatusOK, body)
}

func TestFabricCloseSealsIngest(t *testing.T) {
	s, _, ts := newFabricServer(t, fabricSpec, 0)
	code, body := post(t, ts.URL+"/tenant/fab/t1/ingest", `{"values":["v","w"],"timestamps":[1,2]}`)
	wantStatus(t, code, http.StatusOK, body)
	s.Close()
	s.Close() // idempotent
	// Tenants stay queryable; ingest and creation are refused.
	code, body = get(t, ts.URL+"/tenant/fab/t1/sample")
	wantStatus(t, code, http.StatusOK, body)
	code, body = post(t, ts.URL+"/tenant/fab/t1/ingest", `{"values":["x"],"timestamps":[3]}`)
	wantStatus(t, code, http.StatusConflict, body)
	code, body = post(t, ts.URL+"/tenant/fab/t9/ingest", `{"values":["x"],"timestamps":[3]}`)
	wantStatus(t, code, http.StatusConflict, body)
	// Registering new fabrics is refused too.
	if _, err := s.RegisterFabric("late", fabricSpec, 0); err != ErrClosed {
		t.Fatalf("RegisterFabric after Close: %v", err)
	}
}

// TestTenantFirstArrivalRace is the concurrent lazy-instantiation hammer:
// many goroutines race to create the same and different tenants. Exactly
// one sampler must win per tenant — every racer's batch lands in the SAME
// sampler (the per-tenant event count accounts for all of them; a lost
// duplicate would swallow events), and the live count matches the distinct
// ids. Run under -race this also proves the striped registry's memory
// safety.
func TestTenantFirstArrivalRace(t *testing.T) {
	f, err := NewFabric(Spec{Mode: "seq", Sampler: "wor", N: 1 << 16, K: 4, Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const (
		tenants   = 32
		perTenant = 8 // goroutines racing on each tenant
		batches   = 5
		batchSize = 3
	)
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		for g := 0; g < perTenant; g++ {
			wg.Add(1)
			go func(tn, g int) {
				defer wg.Done()
				id := fmt.Sprintf("tenant-%d", tn)
				vals := make([]string, batchSize)
				for b := 0; b < batches; b++ {
					for i := range vals {
						vals[i] = fmt.Sprintf("g%db%di%d", g, b, i)
					}
					if _, err := f.Ingest(id, vals, nil, nil); err != nil {
						t.Errorf("ingest %s: %v", id, err)
						return
					}
				}
			}(tn, g)
		}
	}
	wg.Wait()
	if got := f.Tenants(); got != tenants {
		t.Fatalf("live tenants %d, want %d", got, tenants)
	}
	for tn := 0; tn < tenants; tn++ {
		id := fmt.Sprintf("tenant-%d", tn)
		count, err := f.Count(id)
		if err != nil {
			t.Fatalf("count %s: %v", id, err)
		}
		if want := uint64(perTenant * batches * batchSize); count != want {
			t.Fatalf("tenant %s saw %d events, want %d — a creation race split the stream across samplers", id, count, want)
		}
	}
}

// TestTenantDeterminismAcrossInterleaving is the per-tenant WithSeed
// contract: a tenant's responses through the fabric — with other tenants'
// arrivals interleaved arbitrarily between its own — are byte-identical to
// a standalone named sampler registered with that tenant's derived seed
// (xrand.TenantSeed(base, id)) and fed ONLY that tenant's batches in the
// same order.
func TestTenantDeterminismAcrossInterleaving(t *testing.T) {
	_, f, ts := newFabricServer(t, fabricSpec, 0)
	base := f.Spec().Seed

	ids := []string{"alpha", "beta", "gamma"}
	// Per-tenant script: batch b of tenant i ingests 4 values at increasing
	// timestamps; the interleaving round-robins the tenants with uneven
	// strides so arrivals genuinely interleave.
	const rounds = 6
	tenantBody := func(i, b int) string {
		var vals, tss, ws []string
		for j := 0; j < 4; j++ {
			vals = append(vals, fmt.Sprintf("%q", fmt.Sprintf("t%d-b%d-%d", i, b, j)))
			tss = append(tss, fmt.Sprintf("%d", b*10+j))
			ws = append(ws, fmt.Sprintf("%d", (i+b+j)%7+1))
		}
		return fmt.Sprintf(`{"values":[%s],"timestamps":[%s],"weights":[%s]}`,
			strings.Join(vals, ","), strings.Join(tss, ","), strings.Join(ws, ","))
	}
	for b := 0; b < rounds; b++ {
		for off := 0; off < len(ids); off++ {
			i := (b + off*2) % len(ids) // uneven interleave, each tenant once per round
			code, body := post(t, ts.URL+"/tenant/fab/"+ids[i]+"/ingest", tenantBody(i, b))
			wantStatus(t, code, http.StatusOK, body)
		}
	}
	// Collect each tenant's responses through the fabric.
	fabricResp := make(map[string][]string)
	for _, id := range ids {
		for _, q := range []string{"/sample", "/size?at=" + fmt.Sprint((rounds-1)*10+3)} {
			code, body := get(t, ts.URL+"/tenant/fab/"+id+q)
			wantStatus(t, code, http.StatusOK, body)
			fabricResp[id] = append(fabricResp[id], body)
		}
	}

	// Replay each tenant solo against a named instance seeded with the
	// derived per-tenant seed.
	for i, id := range ids {
		solo := NewServer()
		spec := fabricSpec
		spec.Seed = xrand.TenantSeed(base, id)
		if _, err := solo.Register("solo", spec); err != nil {
			t.Fatal(err)
		}
		sts := httptest.NewServer(solo)
		for b := 0; b < rounds; b++ {
			code, body := post(t, sts.URL+"/ingest/solo", tenantBody(i, b))
			wantStatus(t, code, http.StatusOK, body)
		}
		var got []string
		for _, q := range []string{"/sample/solo", "/size/solo?at=" + fmt.Sprint((rounds-1)*10+3)} {
			code, body := get(t, sts.URL+q)
			wantStatus(t, code, http.StatusOK, body)
			got = append(got, body)
		}
		sts.Close()
		solo.Close()
		for j := range got {
			if got[j] != fabricResp[id][j] {
				t.Fatalf("tenant %s response %d diverges from solo replay:\nfabric: %s\nsolo:   %s",
					id, j, fabricResp[id][j], got[j])
			}
		}
	}
}

// TestNDJSONLineTooLong pins the bounded-scanner contract: an NDJSON line
// beyond maxNDJSONLineBytes is refused with 413 on both the named-sampler
// and the tenant ingest routes, the response names the limit, and the
// sampler stays usable afterward.
func TestNDJSONLineTooLong(t *testing.T) {
	s, _, ts := newFabricServer(t, fabricSpec, 0)
	if _, err := s.Register("named", fabricSpec); err != nil {
		t.Fatal(err)
	}
	huge := `{"value":"` + strings.Repeat("x", maxNDJSONLineBytes+1) + `","ts":1}` + "\n"
	for _, url := range []string{ts.URL + "/ingest/named", ts.URL + "/tenant/fab/big/ingest"} {
		code, body := do(t, http.MethodPost, url, "application/x-ndjson", huge)
		wantStatus(t, code, http.StatusRequestEntityTooLarge, body)
		if !strings.Contains(body, "per-line limit") || !strings.Contains(body, fmt.Sprint(maxNDJSONLineBytes)) {
			t.Fatalf("413 body should name the limit: %s", body)
		}
	}
	// Nothing was admitted, and a within-bound line still works.
	ok := `{"value":"small","ts":1}` + "\n"
	for _, url := range []string{ts.URL + "/ingest/named", ts.URL + "/tenant/fab/big/ingest"} {
		code, body := do(t, http.MethodPost, url, "application/x-ndjson", ok)
		wantStatus(t, code, http.StatusOK, body)
		var ir IngestResponse
		if err := json.Unmarshal([]byte(body), &ir); err != nil || ir.Count != 1 {
			t.Fatalf("post-413 ingest should start from a clean count: %s", body)
		}
	}
}

// TestTenantScratchRecyclingKeepsBatchesIntact drives many different-sized
// batches through one connection so the slab-recycled request scratch is
// reused across requests; every response must account for exactly its own
// batch (a stale recycled slice would surface as phantom values or wrong
// counts).
func TestTenantScratchRecyclingKeepsBatchesIntact(t *testing.T) {
	_, _, ts := newFabricServer(t, Spec{Mode: "seq", Sampler: "wor", N: 1 << 12, K: 3, Seed: 8}, 0)
	total := uint64(0)
	for r := 0; r < 40; r++ {
		n := r%7 + 1
		var vals []string
		for i := 0; i < n; i++ {
			vals = append(vals, fmt.Sprintf("%q", fmt.Sprintf("r%d-%d", r, i)))
		}
		code, body := post(t, ts.URL+"/tenant/fab/solo/ingest", `{"values":[`+strings.Join(vals, ",")+`]}`)
		wantStatus(t, code, http.StatusOK, body)
		total += uint64(n)
		var ir IngestResponse
		if err := json.Unmarshal([]byte(body), &ir); err != nil {
			t.Fatal(err)
		}
		if ir.Ingested != n || ir.Count != total {
			t.Fatalf("round %d: ingested %d count %d, want %d/%d (%s)", r, ir.Ingested, ir.Count, n, total, body)
		}
	}
}
