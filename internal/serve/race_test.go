package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentIngestAndQueries hammers one instance with a single
// ingesting producer and many concurrent readers — run under -race this is
// the serving layer's core safety claim: the RWMutex discipline maps HTTP
// concurrency onto the single-goroutine sampler contract, with /size
// readers sharing the read lock over the read-only ehist path while
// ingest, /sample (auto-barrier) and /weight (oracle cache) serialize on
// the write lock.
func TestConcurrentIngestAndQueries(t *testing.T) {
	const (
		rounds    = 60
		batchSize = 50
		readers   = 4
	)
	s := NewServer()
	defer s.Close()
	if _, err := s.Register("hot", Spec{Mode: "ts", Sampler: "sharded-weighted-ts-wor", T0: 50, K: 8, G: 4, Seed: 99}); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	defer hs.Close()

	// Seed the window so readers never hit ErrNoArrivals.
	code, body := post(t, hs.URL+"/ingest/hot", `{"values":["seed"],"timestamps":[0],"weights":[1]}`)
	wantStatus(t, code, http.StatusOK, body)

	var stop atomic.Bool
	var wg sync.WaitGroup

	// One producer: the HTTP analogue of the single-goroutine ingest
	// contract (concurrent producers would interleave non-monotone
	// timestamp batches and be 409ed, correctly).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for r := 0; r < rounds; r++ {
			req := IngestRequest{}
			for i := 0; i < batchSize; i++ {
				n := r*batchSize + i
				req.Values = append(req.Values, fmt.Sprintf("ev-%05d", n))
				req.Timestamps = append(req.Timestamps, int64(n/20))
				req.Weights = append(req.Weights, float64(n%7)+1)
			}
			b, err := json.Marshal(req)
			if err != nil {
				t.Error(err)
				return
			}
			code, body := post(t, hs.URL+"/ingest/hot", string(b))
			if code != http.StatusOK {
				t.Errorf("ingest round %d: %d %s", r, code, body)
				return
			}
		}
	}()

	// Readers mix the read-lock path (/size) with write-lock queries
	// (/sample with no explicit clock, /weight) and the registry listing.
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !stop.Load() {
				for _, q := range []string{"/size/hot", "/sample/hot", "/weight/hot", "/samplers"} {
					code, body := get(t, hs.URL+q)
					if code != http.StatusOK {
						t.Errorf("reader %d %s: %d %s", id, q, code, body)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()

	// Shutdown drains cleanly while the samplers stay queryable.
	s.Close()
	code, body = get(t, hs.URL+"/sample/hot")
	wantStatus(t, code, http.StatusOK, body)
	var sr SampleResponse
	if err := json.Unmarshal([]byte(body), &sr); err != nil || !sr.OK {
		t.Fatalf("post-shutdown sample: %s", body)
	}
}
