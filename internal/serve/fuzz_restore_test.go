package serve

// Restore hardening battery: arbitrary, truncated, corrupted, and
// version-bumped snapshot bytes must make RestoreInstance return an
// error — never panic, never hang, never leak a dispatcher goroutine.
// The seed corpus is a set of REAL snapshots (one per representative
// substrate family, fixed seeds) so the fuzzer starts inside the format
// and mutates outward. Run the corpus with plain `go test`, or explore:
//
//	go test -fuzz FuzzRestoreInstance ./internal/serve/
//
// A successful restore of mutated bytes is fine (e.g. a flipped bit
// inside an RNG word is just a different valid snapshot); the property
// is that whatever comes back is a working instance that closes cleanly.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"slidingsample/internal/snap"
)

// fuzzSpecs covers one row per codec family: core seq/ts, baseline,
// weighted, sharded, and the estimator apps.
func fuzzSpecs() []Spec {
	return []Spec{
		{Mode: "seq", Sampler: "wor", N: 64, K: 4, Seed: 11},
		{Mode: "seq", Sampler: "chain", N: 64, K: 3, Seed: 12},
		{Mode: "seq", Sampler: "weighted-wr", N: 64, K: 3, Seed: 13},
		{Mode: "ts", Sampler: "wor", T0: 16, K: 3, Seed: 14},
		{Mode: "ts", Sampler: "fullwindow", T0: 16, K: 3, Seed: 15},
		{Mode: "ts", Sampler: "sharded-weighted-ts-wor", T0: 16, K: 3, G: 4, Seed: 16},
		{Mode: "ts", Sampler: "subsetsum-ts", T0: 16, K: 8, Seed: 17},
	}
}

// seedBatch builds the deterministic element batch [start, start+count):
// distinct values with a second whitespace field (so every weight
// selector has something to chew on) and a half-rate timestamp clock.
func seedBatch(spec Spec, start, count int) (values []string, timestamps []int64) {
	values = make([]string, count)
	if spec.Mode == "ts" {
		timestamps = make([]int64, count)
	}
	for i := range values {
		values[i] = fmt.Sprintf("v%03d extra", start+i)
		if timestamps != nil {
			timestamps[i] = int64((start + i) / 2)
		}
	}
	return values, timestamps
}

// seedIngest pushes the deterministic batch [start, start+count) into inst.
func seedIngest(t testing.TB, inst *Instance, start, count int) {
	t.Helper()
	values, timestamps := seedBatch(inst.Spec(), start, count)
	if _, err := inst.Ingest(values, timestamps, nil); err != nil {
		spec := inst.Spec()
		t.Fatalf("Ingest(%s/%s): %v", spec.Mode, spec.Sampler, err)
	}
}

// seedEvents is the ingest prefix captured by seedSnapshot and the
// golden fixtures.
const seedEvents = 48

// seedSnapshot registers spec on a throwaway server, ingests the fixed
// prefix, and returns the instance's snapshot bytes.
func seedSnapshot(t testing.TB, spec Spec) []byte {
	t.Helper()
	s := NewServer()
	defer s.Close()
	inst, err := s.Register("seed", spec)
	if err != nil {
		t.Fatalf("Register(%s/%s): %v", spec.Mode, spec.Sampler, err)
	}
	seedIngest(t, inst, 0, seedEvents)
	var buf bytes.Buffer
	if err := inst.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot(%s/%s): %v", spec.Mode, spec.Sampler, err)
	}
	return buf.Bytes()
}

// tryRestore feeds data to RestoreInstance and, when it succeeds, proves
// the instance is live (query + close) so a semi-corrupt snapshot that
// slips past validation still has to produce a working sampler.
func tryRestore(t *testing.T, data []byte) {
	t.Helper()
	inst, _, err := RestoreInstance(bytes.NewReader(data))
	if err != nil {
		if inst != nil {
			t.Fatalf("RestoreInstance returned both an instance and error %v", err)
		}
		return
	}
	if _, k, _, _ := inst.Stats(); k <= 0 {
		t.Fatalf("restored instance reports k=%d", k)
	}
	inst.Close()
}

func FuzzRestoreInstance(f *testing.F) {
	for _, spec := range fuzzSpecs() {
		f.Add(seedSnapshot(f, spec))
	}
	f.Add([]byte{})
	f.Add([]byte("SWS1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		tryRestore(t, data)
	})
}

// TestRestoreTruncated checks that every strict prefix of a valid
// snapshot errors: the codec reads exactly what the encoder wrote, so a
// byte missing anywhere must surface before the instance is built.
func TestRestoreTruncated(t *testing.T) {
	for _, spec := range fuzzSpecs() {
		t.Run(spec.Mode+"/"+spec.Sampler, func(t *testing.T) {
			data := seedSnapshot(t, spec)
			step := 1
			if len(data) > 2048 {
				step = len(data) / 2048
			}
			for cut := 0; cut < len(data); cut += step {
				inst, _, err := RestoreInstance(bytes.NewReader(data[:cut]))
				if err == nil {
					inst.Close()
					t.Fatalf("restore of %d/%d-byte prefix succeeded", cut, len(data))
				}
			}
		})
	}
}

// TestRestoreCorrupted flips one byte at a time across the snapshot. A
// flip may land in RNG state and still restore (a different valid
// snapshot) — the invariant is no panic and a closeable result.
func TestRestoreCorrupted(t *testing.T) {
	for _, spec := range fuzzSpecs() {
		t.Run(spec.Mode+"/"+spec.Sampler, func(t *testing.T) {
			data := seedSnapshot(t, spec)
			step := 1
			if len(data) > 2048 {
				step = len(data) / 2048
			}
			for i := 0; i < len(data); i += step {
				mut := bytes.Clone(data)
				mut[i] ^= 0xFF
				tryRestore(t, mut)
			}
		})
	}
}

// TestRestoreVersionBump checks a future-versioned snapshot is rejected
// loudly with ErrFormat (offset 4 is the little-endian u16 version).
func TestRestoreVersionBump(t *testing.T) {
	data := seedSnapshot(t, fuzzSpecs()[0])
	data[4], data[5] = 0xFE, 0xCA
	inst, _, err := RestoreInstance(bytes.NewReader(data))
	if err == nil {
		inst.Close()
		t.Fatal("restore of version-bumped snapshot succeeded")
	}
	if !errors.Is(err, snap.ErrFormat) {
		t.Fatalf("version bump error = %v, want snap.ErrFormat", err)
	}
}

// TestRestoreKindMismatch feeds a snapshot whose kind tag was rewritten;
// the header check must refuse before any body decoding happens.
func TestRestoreKindMismatch(t *testing.T) {
	var buf bytes.Buffer
	sw := snap.NewWriter(&buf, "serve.SomethingElse")
	sw.U64(0)
	if err := sw.Err(); err != nil {
		t.Fatal(err)
	}
	inst, _, err := RestoreInstance(bytes.NewReader(buf.Bytes()))
	if err == nil {
		inst.Close()
		t.Fatal("restore of wrong-kind snapshot succeeded")
	}
	if !errors.Is(err, snap.ErrFormat) {
		t.Fatalf("kind mismatch error = %v, want snap.ErrFormat", err)
	}
}
