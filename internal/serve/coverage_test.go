package serve

// coverage_test.go: the exhaustive registration sweep. Every (mode,
// sampler) pair the internal/substrate registry accepts must register
// through this layer, take a batch, and answer its natural query — the
// wiring the substratecov analyzer cross-checks statically (a substrate
// name missing from this package fails `make lint`).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// substrateSweep lists every registrable substrate. est marks the
// subset-sum estimators, which answer /subsetsum instead of /sample.
var substrateSweep = []struct {
	mode, sampler string
	est           bool
}{
	{"seq", "wor", false},
	{"seq", "wr", false},
	{"seq", "chain", false},
	{"seq", "oversample", false},
	{"seq", "fullwindow", false},
	{"seq", "sharded-wr", false},
	{"seq", "weighted-wor", false},
	{"seq", "weighted-wr", false},
	{"seq", "sharded-weighted-wor", false},
	{"seq", "sharded-weighted-wr", false},
	{"seq", "subsetsum", true},
	{"ts", "wor", false},
	{"ts", "wr", false},
	{"ts", "priority", false},
	{"ts", "skyband", false},
	{"ts", "fullwindow", false},
	{"ts", "sharded-wr", false},
	{"ts", "sharded-wor", false},
	{"ts", "weighted-ts-wor", false},
	{"ts", "weighted-ts-wr", false},
	{"ts", "sharded-weighted-ts-wor", false},
	{"ts", "sharded-weighted-ts-wr", false},
	{"ts", "subsetsum-ts", true},
	{"ts", "sharded-subsetsum-ts", true},
}

func TestRegisterEverySubstrate(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })

	for i, row := range substrateSweep {
		name := row.mode + "-" + strings.ReplaceAll(row.sampler, "-", "")
		t.Run(row.mode+"/"+row.sampler, func(t *testing.T) {
			spec := Spec{Mode: row.mode, Sampler: row.sampler, K: 4, G: 2, Seed: uint64(i) + 1}
			if row.mode == "seq" {
				spec.N = 64
			} else {
				spec.T0 = 60
			}
			if _, err := s.Register(name, spec); err != nil {
				t.Fatalf("register %s/%s: %v", row.mode, row.sampler, err)
			}

			// A small batch: timestamps only in ts mode (three per tick).
			var body strings.Builder
			body.WriteString(`{"values":[`)
			for j := 0; j < 12; j++ {
				if j > 0 {
					body.WriteByte(',')
				}
				fmt.Fprintf(&body, "%q", fmt.Sprintf("v%d", j))
			}
			body.WriteString(`]`)
			if row.mode == "ts" {
				body.WriteString(`,"timestamps":[`)
				for j := 0; j < 12; j++ {
					if j > 0 {
						body.WriteByte(',')
					}
					fmt.Fprintf(&body, "%d", j/3)
				}
				body.WriteString(`]`)
			}
			body.WriteString(`}`)
			code, resp := post(t, ts.URL+"/ingest/"+name, body.String())
			wantStatus(t, code, http.StatusOK, resp)

			query := "/sample/"
			if row.est {
				query = "/subsetsum/"
			}
			code, resp = get(t, ts.URL+query+name)
			wantStatus(t, code, http.StatusOK, resp)
			if row.est {
				var got SubsetSumResponse
				if err := json.Unmarshal([]byte(resp), &got); err != nil {
					t.Fatalf("bad /subsetsum body %q: %v", resp, err)
				}
				if !got.OK || got.Estimate <= 0 {
					t.Fatalf("estimate not positive after ingest: %+v", got)
				}
			} else {
				var got SampleResponse
				if err := json.Unmarshal([]byte(resp), &got); err != nil {
					t.Fatalf("bad /sample body %q: %v", resp, err)
				}
				// oversample may legitimately fail; everyone else samples.
				if !got.OK && row.sampler != "oversample" {
					t.Fatalf("no sample after ingest: %+v", got)
				}
			}
		})
	}
}
