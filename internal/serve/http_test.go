package serve

import (
	"net/http"
	"testing"
	"time"
)

func TestNewHTTPServerAppliesTimeouts(t *testing.T) {
	h := http.NewServeMux()

	// Zero timeouts resolve to the documented defaults — the constructor
	// must never hand back a server with a disabled protection.
	srv := NewHTTPServer(":0", h, HTTPTimeouts{})
	d := DefaultHTTPTimeouts()
	if srv.Addr != ":0" {
		t.Fatalf("addr %q, want %q", srv.Addr, ":0")
	}
	if srv.Handler == nil {
		t.Fatal("handler not wired")
	}
	if srv.ReadHeaderTimeout != d.ReadHeaderTimeout {
		t.Fatalf("ReadHeaderTimeout %v, want default %v", srv.ReadHeaderTimeout, d.ReadHeaderTimeout)
	}
	if srv.ReadTimeout != d.ReadTimeout {
		t.Fatalf("ReadTimeout %v, want default %v", srv.ReadTimeout, d.ReadTimeout)
	}
	if srv.IdleTimeout != d.IdleTimeout {
		t.Fatalf("IdleTimeout %v, want default %v", srv.IdleTimeout, d.IdleTimeout)
	}
	if srv.MaxHeaderBytes != d.MaxHeaderBytes {
		t.Fatalf("MaxHeaderBytes %d, want default %d", srv.MaxHeaderBytes, d.MaxHeaderBytes)
	}
	for _, knob := range []time.Duration{srv.ReadHeaderTimeout, srv.ReadTimeout, srv.IdleTimeout} {
		if knob <= 0 {
			t.Fatalf("a default timeout is disabled: %+v", srv)
		}
	}
	if srv.MaxHeaderBytes <= 0 {
		t.Fatalf("default MaxHeaderBytes disabled: %d", srv.MaxHeaderBytes)
	}

	// Explicit overrides are applied verbatim; unset knobs still default.
	srv = NewHTTPServer(":8081", h, HTTPTimeouts{
		ReadHeaderTimeout: 250 * time.Millisecond,
		MaxHeaderBytes:    4096,
	})
	if srv.ReadHeaderTimeout != 250*time.Millisecond {
		t.Fatalf("ReadHeaderTimeout %v, want 250ms", srv.ReadHeaderTimeout)
	}
	if srv.MaxHeaderBytes != 4096 {
		t.Fatalf("MaxHeaderBytes %d, want 4096", srv.MaxHeaderBytes)
	}
	if srv.ReadTimeout != d.ReadTimeout || srv.IdleTimeout != d.IdleTimeout {
		t.Fatalf("unset knobs did not default: %+v", srv)
	}
}
