package stats

import (
	"math"
	"testing"

	"slidingsample/internal/xrand"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestRegIncGammaUpperKnownValues(t *testing.T) {
	// Q(1, x) = exp(-x) exactly (chi-square df=2 survival at 2x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		almost(t, "Q(1,x)", RegIncGammaUpper(1, x), math.Exp(-x), 1e-10)
	}
	// Q(0.5, x) = erfc(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		almost(t, "Q(0.5,x)", RegIncGammaUpper(0.5, x), math.Erfc(math.Sqrt(x)), 1e-10)
	}
	// Boundary and error cases.
	if RegIncGammaUpper(1, 0) != 1 {
		t.Error("Q(a,0) must be 1")
	}
	if !math.IsNaN(RegIncGammaUpper(0, 1)) || !math.IsNaN(RegIncGammaUpper(1, -1)) {
		t.Error("invalid arguments must return NaN")
	}
}

func TestChiSquareCriticalValues(t *testing.T) {
	// Classic critical values: P(X >= 3.841) = 0.05 for df=1,
	// P(X >= 16.92) = 0.05 for df=9.
	p := chiSquareSurvival(3.841, 1)
	almost(t, "chisq(3.841, df=1)", p, 0.05, 1e-3)
	p = chiSquareSurvival(16.919, 9)
	almost(t, "chisq(16.919, df=9)", p, 0.05, 1e-3)
	p = chiSquareSurvival(6.635, 1)
	almost(t, "chisq(6.635, df=1)", p, 0.01, 1e-3)
}

func TestChiSquareUniformDetects(t *testing.T) {
	// Uniform counts: p should be large. Heavily skewed: p tiny.
	flat := []int{100, 101, 99, 100, 98, 102}
	_, p, err := ChiSquareUniform(flat)
	if err != nil || p < 0.5 {
		t.Fatalf("flat counts: p=%v err=%v", p, err)
	}
	skew := []int{500, 10, 10, 10, 10, 10}
	_, p, err = ChiSquareUniform(skew)
	if err != nil || p > 1e-10 {
		t.Fatalf("skewed counts: p=%v err=%v", p, err)
	}
}

func TestChiSquareUniformOnRealRNG(t *testing.T) {
	r := xrand.New(1)
	counts := make([]int, 20)
	for i := 0; i < 100000; i++ {
		counts[r.Uint64n(20)]++
	}
	_, p, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("good RNG rejected: p=%v", p)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquareUniform([]int{}); err == nil {
		t.Error("empty counts must error")
	}
	if _, _, err := ChiSquareUniform([]int{5}); err == nil {
		t.Error("single cell must error")
	}
	if _, _, err := ChiSquareUniform([]int{0, 0}); err == nil {
		t.Error("all-zero counts must error")
	}
	if _, _, err := ChiSquareUniform([]int{3, -1}); err == nil {
		t.Error("negative count must error")
	}
}

func TestChiSquareExpected(t *testing.T) {
	obs := []int{90, 210}
	exp := []float64{100, 200}
	stat, p, err := ChiSquareExpected(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "stat", stat, 1.0+0.5, 1e-9) // (10^2/100)+(10^2/200)
	if p < 0.1 {
		t.Fatalf("mild deviation rejected: p=%v", p)
	}
	if _, _, err := ChiSquareExpected([]int{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, _, err := ChiSquareExpected([]int{1, 2}, []float64{0, 1}); err == nil {
		t.Error("zero expected must error")
	}
}

func TestChiSquareIndependence(t *testing.T) {
	// Perfectly proportional table: independent, p ~ 1.
	indep := [][]int{{100, 200}, {50, 100}}
	_, p, err := ChiSquareIndependence(indep)
	if err != nil || p < 0.9 {
		t.Fatalf("independent table: p=%v err=%v", p, err)
	}
	// Strongly dependent table: tiny p.
	dep := [][]int{{200, 10}, {10, 200}}
	_, p, err = ChiSquareIndependence(dep)
	if err != nil || p > 1e-10 {
		t.Fatalf("dependent table: p=%v err=%v", p, err)
	}
	if _, _, err := ChiSquareIndependence([][]int{{1, 2}}); err == nil {
		t.Error("1-row table must error")
	}
	if _, _, err := ChiSquareIndependence([][]int{{1, 2}, {3}}); err == nil {
		t.Error("ragged table must error")
	}
}

func TestKSUniform(t *testing.T) {
	r := xrand.New(2)
	good := make([]float64, 2000)
	for i := range good {
		good[i] = r.Float64()
	}
	d, p, err := KSUniform(good)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-3 {
		t.Fatalf("uniform data rejected: d=%v p=%v", d, p)
	}
	bad := make([]float64, 2000)
	for i := range bad {
		bad[i] = r.Float64() * r.Float64() // skewed toward 0
	}
	_, p, err = KSUniform(bad)
	if err != nil || p > 1e-6 {
		t.Fatalf("skewed data accepted: p=%v err=%v", p, err)
	}
	if _, _, err := KSUniform([]float64{0.5}); err == nil {
		t.Error("tiny sample must error")
	}
	if _, _, err := KSUniform([]float64{0, 0.5, 1.5, 0.2, 0.7}); err == nil {
		t.Error("out-of-range sample must error")
	}
}

func TestSummaryHelpers(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	almost(t, "Mean", Mean(xs), 3, 1e-12)
	almost(t, "Variance", Variance(xs), 2.5, 1e-12)
	almost(t, "StdDev", StdDev(xs), math.Sqrt(2.5), 1e-12)
	almost(t, "Median odd", Median(xs), 3, 1e-12)
	almost(t, "Median even", Median([]float64{1, 2, 3, 4}), 2.5, 1e-12)
	almost(t, "Mean empty", Mean(nil), 0, 0)
	almost(t, "Variance short", Variance([]float64{1}), 0, 0)
	almost(t, "RelErr", RelErr(110, 100), 0.1, 1e-12)
	almost(t, "RelErr zero want", RelErr(3, 0), 3, 1e-12)
}

func TestMedianOfMeans(t *testing.T) {
	xs := []float64{1, 1, 1, 100, 2, 2, 2, 2, 3}
	// 3 groups of 3: means 34, 2, (2+2+3)/3 -> median is 2.333...
	got := MedianOfMeans(xs, 3)
	almost(t, "MedianOfMeans", got, (2.0+2.0+3.0)/3, 1e-9)
	almost(t, "MedianOfMeans g=1", MedianOfMeans(xs, 1), Mean(xs), 1e-9)
	almost(t, "MedianOfMeans empty", MedianOfMeans(nil, 3), 0, 0)
	almost(t, "MedianOfMeans g>len", MedianOfMeans([]float64{5, 7}, 10), 6, 1e-9)
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	almost(t, "Q0", Quantile(xs, 0), 1, 0)
	almost(t, "Q0.5", Quantile(xs, 0.5), 3, 0)
	almost(t, "Q1", Quantile(xs, 1), 5, 0)
	almost(t, "Q0.99", Quantile(xs, 0.99), 5, 0)
	almost(t, "Q empty", Quantile(nil, 0.5), 0, 0)
}

func TestMaxInt(t *testing.T) {
	if MaxInt([]int{3, 9, 2}) != 9 || MaxInt(nil) != 0 || MaxInt([]int{-5, -2}) != -2 {
		t.Fatal("MaxInt broken")
	}
}
