// Package stats provides the statistical machinery the experiments use to
// decide whether a sampler is uniform: chi-square goodness-of-fit and
// independence tests with real p-values (regularized incomplete gamma
// implemented from scratch on the stdlib), Kolmogorov–Smirnov against the
// uniform law, and small summary-statistics helpers for the estimator-error
// experiments (E8–E10).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a test is asked to run on data that
// cannot support it (empty cells, too few categories).
var ErrInsufficientData = errors.New("stats: insufficient data")

// ChiSquareUniform runs a chi-square goodness-of-fit test of the observed
// counts against the uniform distribution over len(counts) cells. It
// returns the test statistic and the p-value (probability of a statistic at
// least this large under uniformity). Small p-values indicate non-uniform
// sampling; the experiment harness flags p < 1e-6.
func ChiSquareUniform(counts []int) (stat, p float64, err error) {
	if len(counts) < 2 {
		return 0, 0, ErrInsufficientData
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return 0, 0, errors.New("stats: negative count")
		}
		total += c
	}
	if total == 0 {
		return 0, 0, ErrInsufficientData
	}
	expected := float64(total) / float64(len(counts))
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	df := float64(len(counts) - 1)
	return stat, chiSquareSurvival(stat, df), nil
}

// ChiSquareExpected tests observed counts against arbitrary expected counts
// (which need not be equal); expected values must be positive.
func ChiSquareExpected(observed []int, expected []float64) (stat, p float64, err error) {
	if len(observed) != len(expected) || len(observed) < 2 {
		return 0, 0, ErrInsufficientData
	}
	for i, c := range observed {
		if expected[i] <= 0 {
			return 0, 0, errors.New("stats: nonpositive expected count")
		}
		d := float64(c) - expected[i]
		stat += d * d / expected[i]
	}
	df := float64(len(observed) - 1)
	return stat, chiSquareSurvival(stat, df), nil
}

// ChiSquareIndependence runs a chi-square test of independence on an r x c
// contingency table (all rows must have equal length). Used by experiment
// E7 (independence of samples over disjoint windows).
func ChiSquareIndependence(table [][]int) (stat, p float64, err error) {
	r := len(table)
	if r < 2 || len(table[0]) < 2 {
		return 0, 0, ErrInsufficientData
	}
	c := len(table[0])
	rowSum := make([]float64, r)
	colSum := make([]float64, c)
	total := 0.0
	for i, row := range table {
		if len(row) != c {
			return 0, 0, errors.New("stats: ragged contingency table")
		}
		for j, v := range row {
			if v < 0 {
				return 0, 0, errors.New("stats: negative count")
			}
			rowSum[i] += float64(v)
			colSum[j] += float64(v)
			total += float64(v)
		}
	}
	if total == 0 {
		return 0, 0, ErrInsufficientData
	}
	for i := range table {
		for j, v := range table[i] {
			e := rowSum[i] * colSum[j] / total
			if e == 0 {
				continue
			}
			d := float64(v) - e
			stat += d * d / e
		}
	}
	df := float64((r - 1) * (c - 1))
	return stat, chiSquareSurvival(stat, df), nil
}

// chiSquareSurvival returns P(X >= stat) for X ~ chi-square with df degrees
// of freedom: Q(df/2, stat/2), the regularized upper incomplete gamma.
func chiSquareSurvival(stat, df float64) float64 {
	if stat <= 0 {
		return 1
	}
	return RegIncGammaUpper(df/2, stat/2)
}

// RegIncGammaUpper computes the regularized upper incomplete gamma function
// Q(a, x) = Γ(a,x)/Γ(a) via the classic series/continued-fraction split
// (Numerical Recipes gser/gcf): the series for the lower function converges
// quickly for x < a+1, the Lentz continued fraction for the upper converges
// quickly otherwise.
func RegIncGammaUpper(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaSeriesLower(a, x)
	default:
		return gammaContinuedUpper(a, x)
	}
}

// gammaSeriesLower computes P(a, x) by series expansion (x < a+1).
func gammaSeriesLower(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedUpper computes Q(a, x) by modified Lentz continued fraction
// (x >= a+1).
func gammaContinuedUpper(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// KSUniform runs a one-sample Kolmogorov–Smirnov test of the samples (which
// must lie in [0,1]) against the uniform distribution, returning the
// statistic D and the asymptotic p-value.
func KSUniform(samples []float64) (d, p float64, err error) {
	n := len(samples)
	if n < 5 {
		return 0, 0, ErrInsufficientData
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	for i, v := range s {
		if v < 0 || v > 1 {
			return 0, 0, errors.New("stats: KSUniform sample outside [0,1]")
		}
		lo := v - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - v
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	ne := math.Sqrt(float64(n))
	lambda := (ne + 0.12 + 0.11/ne) * d
	return d, ksSurvival(lambda), nil
}

// ksSurvival is the Kolmogorov distribution tail Q_KS(λ) = 2 Σ (-1)^{j-1}
// exp(-2 j² λ²).
func ksSurvival(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j*j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than 2 values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// RelErr returns |got-want|/|want|, or |got| when want == 0.
func RelErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MedianOfMeans partitions xs into g contiguous groups, averages each, and
// returns the median of the group means — the boosting construction used by
// the AMS-style estimators in Section 5.
func MedianOfMeans(xs []float64, g int) float64 {
	if g <= 0 || len(xs) == 0 {
		return 0
	}
	if g > len(xs) {
		g = len(xs)
	}
	size := len(xs) / g
	if size == 0 {
		size = 1
	}
	means := make([]float64, 0, g)
	for i := 0; i < g; i++ {
		lo := i * size
		hi := lo + size
		if i == g-1 {
			hi = len(xs)
		}
		if lo >= len(xs) {
			break
		}
		means = append(means, Mean(xs[lo:hi]))
	}
	return Median(means)
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank on a sorted
// copy.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// MaxInt returns the maximum of xs (0 for empty).
func MaxInt(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}
