package apps

import (
	"math"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// TestShardedSubsetSumUnbiased: the sharded estimator's HT estimate —
// computed over the EXACT merged top-(k+1) across shards — must converge
// in the mean to the exact windowed subset sum, at a query time past the
// last arrival (query-time expiry through the sharded read path).
func TestShardedSubsetSumUnbiased(t *testing.T) {
	const (
		t0     = 64
		g      = 4
		k      = 16
		m      = 300
		trials = 1200
	)
	buf := window.NewTSBuffer[uint64](t0)
	for i := 0; i < m; i++ {
		buf.Observe(stream.Element[uint64]{Value: uint64(i), Index: uint64(i), TS: int64(i / 3)})
	}
	queryAt := int64((m-1)/3) + t0/4
	buf.AdvanceTo(queryAt)
	preds := map[string]func(uint64) bool{
		"mod3":  func(v uint64) bool { return v%3 == 0 },
		"total": func(uint64) bool { return true },
	}
	exact := map[string]float64{}
	for name, pred := range preds {
		s := 0.0
		for _, e := range buf.Contents() {
			if pred(e.Value) {
				s += ssWeight(e.Value)
			}
		}
		exact[name] = s
	}

	sums := map[string]float64{}
	for tr := 0; tr < trials; tr++ {
		est := NewShardedSubsetSumTS[uint64](xrand.New(uint64(tr)+1), t0, g, k, 0.05, ssWeight)
		for i := 0; i < m; i++ {
			est.Observe(uint64(i), int64(i/3))
		}
		est.Barrier()
		for name, pred := range preds {
			got, ok := est.EstimateAt(queryAt, pred)
			if !ok {
				t.Fatalf("trial %d: no estimate", tr)
			}
			sums[name] += got
		}
		est.Close()
	}
	for name := range preds {
		mean := sums[name] / trials
		if rel := math.Abs(mean/exact[name] - 1); rel > 0.03 {
			t.Errorf("%s: mean estimate %.2f vs exact %.2f (rel err %.4f > 0.03)", name, mean, exact[name], rel)
		}
	}
}

// TestShardedSubsetSumMatchesScaleOracles: WeightAt is within (1±eps) of
// the ground-truth active weight and SizeAt within (1±eps) of n(t),
// including past the last arrival — the per-shard oracles the sharded
// estimator layers its scale factors on.
func TestShardedSubsetSumScaleOracles(t *testing.T) {
	const (
		t0  = 128
		g   = 4
		k   = 8
		m   = 5000
		eps = 0.05
	)
	est := NewShardedSubsetSumTS[uint64](xrand.New(5), t0, g, k, eps, ssWeight)
	defer est.Close()
	truth := window.NewTSBuffer[uint64](t0)
	rng := xrand.New(6)
	ts := int64(0)
	for i := 0; i < m; i++ {
		if rng.Uint64n(3) == 0 {
			ts += int64(rng.Uint64n(5))
		}
		est.Observe(uint64(i), ts)
		truth.Observe(stream.Element[uint64]{Value: uint64(i), Index: uint64(i), TS: ts})
		if i%113 != 0 {
			continue
		}
		probe := ts + int64(rng.Uint64n(t0/2))
		probeTruth := window.NewTSBuffer[uint64](t0)
		for _, e := range truth.Contents() {
			probeTruth.Observe(e)
		}
		probeTruth.AdvanceTo(probe)
		wantW := 0.0
		for _, e := range probeTruth.Contents() {
			wantW += ssWeight(e.Value)
		}
		wantN := float64(probeTruth.Len())
		if wantW == 0 {
			continue
		}
		if got := est.WeightAt(probe); math.Abs(got-wantW)/wantW > eps+1e-9 {
			t.Fatalf("step %d: WeightAt=%g vs W(t)=%g", i, got, wantW)
		}
		if got := float64(est.SizeAt(probe)); math.Abs(got-wantN)/wantN > eps+1e-9 {
			t.Fatalf("step %d: SizeAt=%.0f vs n(t)=%.0f", i, got, wantN)
		}
	}
}

// TestShardedSubsetSumExhaustive: with at most k active elements the
// merged sketch holds the whole window and the estimate is exact.
func TestShardedSubsetSumExhaustive(t *testing.T) {
	const (
		t0 = 10
		g  = 3
		k  = 40
	)
	est := NewShardedSubsetSumTS[uint64](xrand.New(3), t0, g, k, 0.05, ssWeight)
	defer est.Close()
	est.Barrier()
	if _, ok := est.Estimate(func(uint64) bool { return true }); ok {
		t.Fatal("estimate from empty window")
	}
	exact := 0.0
	for i := 0; i < 30; i++ {
		est.Observe(uint64(i), int64(25+i/8)) // all within the horizon
		exact += ssWeight(uint64(i))
	}
	est.Barrier()
	got, ok := est.Estimate(func(uint64) bool { return true })
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(got-exact) > 1e-9*exact {
		t.Fatalf("exhaustive estimate %.6f, want exact %.6f", got, exact)
	}
}
