package apps

import (
	"slidingsample/internal/core"
	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// StepBiased implements the biased-sampling extension sketched at the end of
// Section 5: "we can apply our methods to implement step biased functions,
// maintaining samples over each window with different lengths and combining
// the samples with corresponding probabilities."
//
// Given window lengths n_1 < n_2 < ... < n_m with weights w_1..w_m summing
// to 1, a query picks window i with probability w_i and returns that
// window's uniform sample. An element whose age (elements since arrival,
// 0 = newest) is d therefore has sampling probability
//
//	P(d) = Σ_{i : n_i > d} w_i / n_i,
//
// a non-increasing step function of age — recent elements are favored, with
// the step heights fully under the caller's control. Memory is Θ(m) words
// (one Theorem 2.1 sampler per step, k = 1 each), deterministic.
type StepBiased[T any] struct {
	lens     []uint64
	weights  []uint64 // integer weights; probability of step i = weights[i]/wsum
	wsum     uint64
	samplers []*core.SeqWR[T]
	rng      *xrand.Rand
	count    uint64
}

// NewStepBiased builds a step-biased sampler. lens must be strictly
// increasing window lengths; weights are positive integer step weights
// (probability of step i is weights[i] / sum(weights) — integers keep the
// query draw exact). Panics on malformed input.
func NewStepBiased[T any](rng *xrand.Rand, lens []uint64, weights []uint64) *StepBiased[T] {
	if len(lens) == 0 || len(lens) != len(weights) {
		panic("apps: NewStepBiased needs matching, non-empty lens and weights")
	}
	b := &StepBiased[T]{rng: rng.Split()}
	var prev uint64
	for i, n := range lens {
		if n <= prev {
			panic("apps: NewStepBiased lens must be strictly increasing")
		}
		if weights[i] == 0 {
			panic("apps: NewStepBiased zero weight")
		}
		prev = n
		b.lens = append(b.lens, n)
		b.weights = append(b.weights, weights[i])
		b.wsum += weights[i]
		b.samplers = append(b.samplers, core.NewSeqWR[T](rng.Split(), n, 1))
	}
	return b
}

// Observe feeds the next element to every step sampler.
func (b *StepBiased[T]) Observe(value T, ts int64) {
	b.count++
	for _, s := range b.samplers {
		s.Observe(value, ts)
	}
}

// ObserveBatch feeds a run of elements to every step sampler through their
// batched hot paths (indexes are assigned per step sampler, which keeps each
// one sample-path identical to its per-element feed).
func (b *StepBiased[T]) ObserveBatch(batch []stream.Element[T]) {
	b.count += uint64(len(batch))
	for _, s := range b.samplers {
		s.ObserveBatch(batch)
	}
}

// Sample returns one element drawn under the step-biased distribution, as a
// one-element slice (K() == 1) so step-biased sampling answers the same
// stream.Sampler queries as every other substrate. If the drawn step's
// sampler reports empty, the draw falls back to the non-empty steps
// (renormalized over their weights) instead of failing on a non-empty
// window; the returned slice never aliases an inner sampler's sample.
func (b *StepBiased[T]) Sample() ([]stream.Element[T], bool) {
	if b.count == 0 {
		return nil, false
	}
	u := b.rng.Uint64n(b.wsum)
	for i, w := range b.weights {
		if u < w {
			if got, ok := b.samplers[i].Sample(); ok {
				return []stream.Element[T]{got[0]}, true
			}
			return b.sampleNonEmpty()
		}
		u -= w
	}
	return nil, false
}

// sampleNonEmpty redraws the step over the steps whose samplers currently
// hold a sample, with probabilities renormalized over their weights.
func (b *StepBiased[T]) sampleNonEmpty() ([]stream.Element[T], bool) {
	samples := make([][]stream.Element[T], len(b.samplers))
	var total uint64
	for i, s := range b.samplers {
		if got, ok := s.Sample(); ok && len(got) > 0 {
			samples[i] = got
			total += b.weights[i]
		}
	}
	if total == 0 {
		return nil, false
	}
	u := b.rng.Uint64n(total)
	for i, got := range samples {
		if got == nil {
			continue
		}
		if u < b.weights[i] {
			return []stream.Element[T]{got[0]}, true
		}
		u -= b.weights[i]
	}
	return nil, false
}

// K returns 1: each query draws a single element under the step law.
func (b *StepBiased[T]) K() int { return 1 }

// Count returns the number of arrivals.
func (b *StepBiased[T]) Count() uint64 { return b.count }

// Prob returns the theoretical sampling probability for an element of age d
// (0 = the newest element), given the current arrival count (steps whose
// window is still filling use their current fill as the denominator — the
// uniform law of a partially filled Theorem 2.1 sampler).
func (b *StepBiased[T]) Prob(d uint64) float64 {
	p := 0.0
	for i, n := range b.lens {
		size := n
		if b.count < n {
			size = b.count
		}
		if d < size {
			p += float64(b.weights[i]) / float64(b.wsum) / float64(size)
		}
	}
	return p
}

// Words implements stream.MemoryReporter.
func (b *StepBiased[T]) Words() int {
	// wsum + count, then the lens and weights tables (one word per step
	// each), then the per-step samplers.
	w := 2 + len(b.lens) + len(b.weights)
	for _, s := range b.samplers {
		w += s.Words()
	}
	return w
}

// MaxWords implements stream.MemoryReporter.
func (b *StepBiased[T]) MaxWords() int {
	w := 2 + len(b.lens) + len(b.weights)
	for _, s := range b.samplers {
		w += s.MaxWords()
	}
	return w
}
