package apps

import (
	"math"

	"slidingsample/internal/stats"
)

// Entropy estimates the empirical entropy H = Σ_v (x_v/n) log2(n/x_v) of a
// sliding window (Corollary 5.4), in bits. It is the suffix-count estimator
// of the Chakrabarti–Cormode–McGregor line of work: for a uniform position
// with suffix count r,
//
//	X = r*log2(n/r) - (r-1)*log2(n/(r-1))      (second term 0 when r = 1)
//
// satisfies E[X] = H by telescoping; the estimate is a median of s2 means of
// s1 copies. The paper's point (Corollary 5.4) is that replacing the CCM
// reservoir/priority sampler with the Theorem 2.1/3.9 samplers preserves the
// estimator while making the memory bound deterministic.
type Entropy struct {
	s1, s2 int
	src    SlotSource[uint64]
}

// NewEntropy builds an entropy estimator over the given slot source, which
// must carry k = s1*s2 sample slots.
func NewEntropy(src SlotSource[uint64], s1, s2 int) *Entropy {
	if s1 < 1 || s2 < 1 {
		panic("apps: NewEntropy with s1 or s2 < 1")
	}
	return &Entropy{s1: s1, s2: s2, src: src}
}

// Observe feeds the next value.
func (e *Entropy) Observe(value uint64, ts int64) {
	e.src.Observe(value, ts)
	bumpCounters(e.src, value)
}

// EstimateAt returns the entropy estimate (bits) for the window at time now.
func (e *Entropy) EstimateAt(now int64) (float64, bool) {
	slots, ok := e.src.Slots(now)
	if !ok || len(slots) == 0 {
		return 0, false
	}
	n, ok := e.src.WindowSize(now)
	if !ok || n <= 0 {
		return 0, false
	}
	xs := make([]float64, len(slots))
	for i, st := range slots {
		r := float64(suffixCount(st))
		x := r * math.Log2(n/r)
		if r > 1 {
			x -= (r - 1) * math.Log2(n/(r-1))
		}
		xs[i] = x
	}
	return stats.MedianOfMeans(xs, e.s2), true
}

// Copies returns the number of independent estimator copies.
func (e *Entropy) Copies() int { return e.s1 * e.s2 }

// ExactEntropy computes the window entropy exactly in bits (ground truth).
func ExactEntropy(values []uint64) float64 {
	if len(values) == 0 {
		return 0
	}
	freq := map[uint64]uint64{}
	for _, v := range values {
		freq[v]++
	}
	n := float64(len(values))
	h := 0.0
	for _, x := range freq {
		p := float64(x) / n
		h -= p * math.Log2(p)
	}
	return h
}
