package apps

import (
	"sort"

	"slidingsample/internal/core"
	"slidingsample/internal/xrand"
)

// HeavyHitters reports the values that occupy at least a φ-fraction of a
// sequence-based sliding window, from a with-replacement sample — another
// direct Theorem 5.1 instance (sampling-based frequent-items detection à la
// sticky sampling / sampled counts).
//
// With k = Θ(ε⁻² log(1/(δφ))) independent window samples, every value of
// window frequency ≥ φn appears in the sample with relative frequency
// ≥ φ - ε/2 w.h.p., and every value of frequency ≤ (φ-ε)n falls below the
// same threshold w.h.p. (Chernoff); Report therefore thresholds the sample
// histogram at φ - ε/2.
type HeavyHitters struct {
	sampler *core.SeqWR[uint64]
}

// NewHeavyHitters builds a windowed frequent-items detector over the last n
// values using k sample slots.
func NewHeavyHitters(rng *xrand.Rand, n uint64, k int) *HeavyHitters {
	return &HeavyHitters{sampler: core.NewSeqWR[uint64](rng.Split(), n, k)}
}

// Observe feeds the next value.
func (h *HeavyHitters) Observe(value uint64, ts int64) {
	h.sampler.Observe(value, ts)
}

// Report returns the candidate heavy hitters for threshold φ with slack ε
// (0 < ε < φ), sorted by descending sample frequency. ok is false while the
// window is empty.
func (h *HeavyHitters) Report(phi, eps float64) ([]uint64, bool) {
	if phi <= 0 || phi > 1 || eps <= 0 || eps >= phi {
		panic("apps: HeavyHitters.Report needs 0 < eps < phi <= 1")
	}
	got, ok := h.sampler.Sample()
	if !ok {
		return nil, false
	}
	counts := map[uint64]int{}
	for _, e := range got {
		counts[e.Value]++
	}
	thresh := (phi - eps/2) * float64(len(got))
	type vc struct {
		v uint64
		c int
	}
	var cand []vc
	for v, c := range counts {
		if float64(c) >= thresh {
			cand = append(cand, vc{v, c})
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].c != cand[j].c {
			return cand[i].c > cand[j].c
		}
		return cand[i].v < cand[j].v
	})
	out := make([]uint64, len(cand))
	for i, x := range cand {
		out[i] = x.v
	}
	return out, true
}

// Words reports the sampler footprint (Θ(k), deterministic).
func (h *HeavyHitters) Words() int { return h.sampler.Words() }

// MaxWords reports the peak footprint.
func (h *HeavyHitters) MaxWords() int { return h.sampler.MaxWords() }

// ExactHeavyHitters returns the values with frequency >= phi*len(values),
// sorted by descending frequency (ground truth).
func ExactHeavyHitters(values []uint64, phi float64) []uint64 {
	counts := map[uint64]int{}
	for _, v := range values {
		counts[v]++
	}
	thresh := phi * float64(len(values))
	type vc struct {
		v uint64
		c int
	}
	var cand []vc
	for v, c := range counts {
		if float64(c) >= thresh {
			cand = append(cand, vc{v, c})
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].c != cand[j].c {
			return cand[i].c > cand[j].c
		}
		return cand[i].v < cand[j].v
	})
	out := make([]uint64, len(cand))
	for i, x := range cand {
		out[i] = x.v
	}
	return out
}
