package apps

import (
	"math"

	"slidingsample/internal/stats"
)

// Moments estimates the p-th frequency moment F_p = Σ_v x_v^p of the values
// in a sliding window (Corollary 5.2). It is the Alon–Matias–Szegedy
// estimator run over a window sampler: each sample slot contributes
//
//	X = |W| * (r^p - (r-1)^p)
//
// where r is the within-window suffix count of the slot's value, and the
// final estimate is the median of s2 means of s1 copies. E[X] = F_p by the
// AMS telescoping identity; the window sampler supplies the uniform position
// and this package's counter layer supplies r.
type Moments struct {
	p      int
	s1, s2 int
	src    SlotSource[uint64]
}

// NewMoments builds an F_p estimator over the given slot source. The source
// must have been constructed with k = s1*s2 sample slots. Panics if p < 1 or
// s1, s2 < 1.
func NewMoments(src SlotSource[uint64], p, s1, s2 int) *Moments {
	if p < 1 {
		panic("apps: NewMoments with p < 1")
	}
	if s1 < 1 || s2 < 1 {
		panic("apps: NewMoments with s1 or s2 < 1")
	}
	return &Moments{p: p, s1: s1, s2: s2, src: src}
}

// Observe feeds the next value through the sampler and maintains the
// per-slot suffix counters.
func (m *Moments) Observe(value uint64, ts int64) {
	m.src.Observe(value, ts)
	bumpCounters(m.src, value)
}

// EstimateAt returns the F_p estimate for the window at time now (pass the
// latest timestamp, or anything for sequence windows). ok is false while the
// window is empty.
func (m *Moments) EstimateAt(now int64) (float64, bool) {
	slots, ok := m.src.Slots(now)
	if !ok || len(slots) == 0 {
		return 0, false
	}
	n, ok := m.src.WindowSize(now)
	if !ok || n <= 0 {
		return 0, false
	}
	xs := make([]float64, len(slots))
	for i, st := range slots {
		r := float64(suffixCount(st))
		xs[i] = n * (math.Pow(r, float64(m.p)) - math.Pow(r-1, float64(m.p)))
	}
	return stats.MedianOfMeans(xs, m.s2), true
}

// Copies returns the number of independent estimator copies (s1*s2).
func (m *Moments) Copies() int { return m.s1 * m.s2 }

// ExactMoment computes F_p of a window content exactly (ground truth for
// the E8 error tables; Θ(window) space, never used by the estimator).
func ExactMoment(values []uint64, p int) float64 {
	freq := map[uint64]uint64{}
	for _, v := range values {
		freq[v]++
	}
	sum := 0.0
	for _, x := range freq {
		sum += math.Pow(float64(x), float64(p))
	}
	return sum
}
