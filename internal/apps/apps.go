// Package apps implements the paper's Section 5: Theorem 5.1 states that any
// sampling-based streaming algorithm transfers to sliding windows by
// replacing its sampler with the paper's window samplers. This package makes
// that translation concrete for the three corollaries —
//
//   - frequency moments F_p (Corollary 5.2, the Alon–Matias–Szegedy
//     estimator),
//   - triangle counting in graph streams (Corollary 5.3, the sampled-edge +
//     sampled-vertex estimator of Buriol et al.),
//   - empirical entropy (Corollary 5.4, the Chakrabarti–Cormode–McGregor
//     style suffix-count estimator),
//
// plus the step-biased sampling extension sketched at the end of Section 5.
//
// # How the translation works
//
// The AMS family of estimators needs, for a uniformly sampled position p,
// the count r of occurrences of the sampled value from p to the end of the
// window. The samplers in internal/core expose every element they currently
// retain through ForEachStored; the estimators here attach a counter to each
// retained slot when it is created (which is always at that element's
// arrival) and bump it on every later matching arrival. Because every later
// arrival is more recent than the slot's element, the counter equals the
// within-window suffix count exactly whenever the slot's element is active —
// and the samplers only ever output active elements. No change to the
// samplers is needed: this is Theorem 5.1 as an API.
//
// Estimators are Θ(slots) extra words and Θ(slots) extra work per arrival.
package apps

import (
	"slidingsample/internal/core"
	"slidingsample/internal/stream"
)

// StepBiased participates in the unified sampler interface like every other
// substrate (K() == 1: one step-law draw per query).
var _ stream.Sampler[int] = (*StepBiased[int])(nil)

// SlotSource adapts a window sampler for the estimator layer: feeding
// elements, visiting retained slots, and producing the chosen sample slots
// at query time together with the (known or estimated) window size the
// estimators scale by.
type SlotSource[T any] struct {
	// Observe feeds the next element.
	Observe func(value T, ts int64)
	// ForEach visits every retained slot (for counter maintenance).
	ForEach func(func(*stream.Stored[T]))
	// Slots returns the sampler's current output slots at time now.
	Slots func(now int64) ([]*stream.Stored[T], bool)
	// WindowSize returns |W| at time now.
	WindowSize func(now int64) (float64, bool)
}

// SlotBackend is what the estimator layer needs from a sampler: the unified
// ingest/query contract plus live-slot access for the Theorem 5.1 counter
// attachment. Any substrate satisfying both interfaces — core samplers
// today, future backends tomorrow — plugs into every estimator.
type SlotBackend[T any] interface {
	stream.Sampler[T]
	stream.SlotSampler[T]
}

// Source adapts any slot-exposing sampler to the estimator layer. size is
// the window-size oracle the estimators scale by: exact for sequence
// windows (see SeqSizeOracle), exact-from-ground-truth or approximate (the
// internal/ehist counter) for timestamp windows.
func Source[T any](s SlotBackend[T], size func(now int64) (float64, bool)) SlotSource[T] {
	return SlotSource[T]{
		Observe:    s.Observe,
		ForEach:    s.ForEachStored,
		Slots:      s.SlotsAt,
		WindowSize: size,
	}
}

// SeqSizeOracle returns the exact size oracle of a sequence-based window:
// min(count, n), where count is read through the sampler interface.
func SeqSizeOracle[T any](s stream.Sampler[T], n uint64) func(now int64) (float64, bool) {
	return func(int64) (float64, bool) {
		c := s.Count()
		if c == 0 {
			return 0, false
		}
		if c < n {
			return float64(c), true
		}
		return float64(n), true
	}
}

// SeqWRSource adapts a sequence-based with-replacement sampler: the window
// size is min(count, n), known exactly.
func SeqWRSource[T any](s *core.SeqWR[T]) SlotSource[T] {
	return Source[T](s, SeqSizeOracle[T](s, s.N()))
}

// TSWRSource adapts a timestamp-based with-replacement sampler. The window
// size n(t) of a timestamp window cannot be computed exactly in sublinear
// space (Datar–Gionis–Indyk–Motwani), so the caller provides a size oracle —
// exact (from test ground truth) or approximate (the exponential-histogram
// counter in internal/ehist, the classic (1±ε) sliding-window counter).
func TSWRSource[T any](s *core.TSWR[T], size func(now int64) (float64, bool)) SlotSource[T] {
	return Source[T](s, size)
}

// suffixCounter is the per-slot auxiliary state: occurrences of the slot's
// value from the slot's element (inclusive) to the newest arrival.
type suffixCounter struct {
	r uint64
}

// bumpCounters initializes the counter of any slot created by the current
// arrival (slots are only ever created for the arriving element, so a nil
// Aux identifies them) and increments the counter of every slot whose value
// matches the arrival.
func bumpCounters[T comparable](src SlotSource[T], value T) {
	src.ForEach(func(st *stream.Stored[T]) {
		if st.Aux == nil {
			st.Aux = &suffixCounter{r: 1}
			return
		}
		if c, ok := st.Aux.(*suffixCounter); ok && st.Elem.Value == value {
			c.r++
		}
	})
}

// suffixCount reads a slot's counter (1 if the estimator never saw the slot,
// which cannot happen when Observe went through the estimator).
func suffixCount[T any](st *stream.Stored[T]) uint64 {
	if c, ok := st.Aux.(*suffixCounter); ok {
		return c.r
	}
	return 1
}
