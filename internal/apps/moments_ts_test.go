package apps

import (
	"math"
	"testing"

	"slidingsample/internal/core"
	"slidingsample/internal/ehist"
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// TestMomentsOverTimestampWindow drives the F2 estimator through the TSWR
// source with the exponential-histogram size oracle — the full Corollary
// 5.2 stack on timestamp windows (the E10 entropy test covers the same path
// for Corollary 5.4).
func TestMomentsOverTimestampWindow(t *testing.T) {
	const t0 = 64
	r := xrand.New(1)
	eh := ehist.NewEps(t0, 0.05)
	sampler := core.NewTSWR[uint64](r.Split(), t0, 100)
	est := NewMoments(TSWRSource(sampler, eh.SizeOracle()), 2, 20, 5)
	buf := window.NewTSBuffer[uint64](t0)
	zipf := stream.NewZipfValues(r.Split(), 1.4, 16)
	arr := stream.NewBurstyArrivals(r.Split(), 6, 2)
	var ts int64
	for i := 0; i < 6000; i++ {
		v := zipf.Next()
		ts = arr.Next()
		est.Observe(v, ts)
		eh.Observe(ts)
		buf.Observe(stream.Element[uint64]{Value: v, Index: uint64(i), TS: ts})
	}
	var content []uint64
	for _, e := range buf.Contents() {
		content = append(content, e.Value)
	}
	exact := ExactMoment(content, 2)
	got, ok := est.EstimateAt(ts)
	if !ok {
		t.Fatal("no estimate")
	}
	if rel := math.Abs(got-exact) / exact; rel > 0.35 {
		t.Fatalf("TS F2 estimate %.0f vs exact %.0f (rel %.2f)", got, exact, rel)
	}
}

// TestMomentsTSEmptyWindow: after everything expires, the estimator
// reports no estimate rather than a stale or zero-division result.
func TestMomentsTSEmptyWindow(t *testing.T) {
	const t0 = 5
	r := xrand.New(2)
	eh := ehist.NewEps(t0, 0.1)
	sampler := core.NewTSWR[uint64](r.Split(), t0, 10)
	est := NewMoments(TSWRSource(sampler, eh.SizeOracle()), 2, 2, 5)
	for i := 0; i < 50; i++ {
		est.Observe(uint64(i%3), 0)
		eh.Observe(0)
	}
	if _, ok := est.EstimateAt(0); !ok {
		t.Fatal("no estimate while window active")
	}
	if _, ok := est.EstimateAt(100); ok {
		t.Fatal("estimate produced from an expired window")
	}
}
