package apps

import (
	"io"

	"slidingsample/internal/parallel"
	"slidingsample/internal/snap"
	"slidingsample/internal/weighted"
)

// Snapshot kind tags.
const (
	kindSubsetSum          = "apps.SubsetSum"
	kindSubsetSumTS        = "apps.SubsetSumTS"
	kindShardedSubsetSumTS = "apps.ShardedSubsetSumTS"
)

// The estimators are thin shells over their weighted samplers: the
// persistent state is the sketch size plus the embedded sampler's body.
// Weight functions are code, not state — every Restore* re-binds one.

// Snapshot writes the estimator's full state (header included) to w.
func (e *SubsetSum[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindSubsetSum)
	sw.Int(e.k)
	weighted.EncodeWOR(sw, e.s)
	return sw.Err()
}

// RestoreSubsetSum reads a SubsetSum snapshot, re-binding the given
// weight function.
func RestoreSubsetSum[T any](r io.Reader, weight func(T) float64) (*SubsetSum[T], error) {
	sr, err := snap.NewReader(r, kindSubsetSum)
	if err != nil {
		return nil, err
	}
	e := &SubsetSum[T]{}
	e.k = sr.Int()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if e.k < 1 {
		return nil, snap.Errorf("apps.SubsetSum with k %d", e.k)
	}
	e.s = weighted.DecodeWOR(sr, weight)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if e.s.K() != e.k+1 {
		return nil, snap.Errorf("apps.SubsetSum sketch slots %d != k+1 = %d", e.s.K(), e.k+1)
	}
	return e, nil
}

// Snapshot writes the estimator's full state (header included) to w.
func (e *SubsetSumTS[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindSubsetSumTS)
	sw.Int(e.k)
	weighted.EncodeTSWOR(sw, e.s)
	return sw.Err()
}

// RestoreSubsetSumTS reads a SubsetSumTS snapshot, re-binding the given
// weight function.
func RestoreSubsetSumTS[T any](r io.Reader, weight func(T) float64) (*SubsetSumTS[T], error) {
	sr, err := snap.NewReader(r, kindSubsetSumTS)
	if err != nil {
		return nil, err
	}
	e := &SubsetSumTS[T]{}
	e.k = sr.Int()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if e.k < 1 {
		return nil, snap.Errorf("apps.SubsetSumTS with k %d", e.k)
	}
	e.s = weighted.DecodeTSWOR(sr, weight)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if e.s.K() != e.k+1 {
		return nil, snap.Errorf("apps.SubsetSumTS sketch slots %d != k+1 = %d", e.s.K(), e.k+1)
	}
	return e, nil
}

// Snapshot writes the estimator's full state (header included) to w. The
// embedded sharded sampler drains an ingest barrier first; like every
// method, Snapshot belongs to the producer goroutine.
func (e *ShardedSubsetSumTS[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindShardedSubsetSumTS)
	sw.Int(e.k)
	parallel.EncodeShardedWeightedTSWOR(sw, e.s)
	return sw.Err()
}

// RestoreShardedSubsetSumTS reads a ShardedSubsetSumTS snapshot,
// re-binding the given weight function, and starts the shard workers.
func RestoreShardedSubsetSumTS[T any](r io.Reader, weight func(T) float64) (*ShardedSubsetSumTS[T], error) {
	sr, err := snap.NewReader(r, kindShardedSubsetSumTS)
	if err != nil {
		return nil, err
	}
	e := &ShardedSubsetSumTS[T]{}
	e.k = sr.Int()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if e.k < 1 {
		return nil, snap.Errorf("apps.ShardedSubsetSumTS with k %d", e.k)
	}
	e.s = parallel.DecodeShardedWeightedTSWOR(sr, weight)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if e.s.K() != e.k+1 {
		return nil, snap.Errorf("apps.ShardedSubsetSumTS sketch slots %d != k+1 = %d", e.s.K(), e.k+1)
	}
	return e, nil
}
