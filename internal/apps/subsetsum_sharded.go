package apps

import (
	"slidingsample/internal/parallel"
	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// ShardedSubsetSumTS is the G-way parallel timestamp-window subset-sum
// estimator: the same Cohen–Kaplan bottom-k construction as SubsetSumTS,
// ingesting through parallel.ShardedWeightedTSWOR's multi-core dispatch.
//
// The estimate itself carries NO sharding error: the sharded sampler's
// merged ItemsAt is the exact Efraimidis–Spirakis top-(k+1) of the window
// (globally comparable log-keys), so the conditional Horvitz–Thompson
// computation is identical to the sequential estimator's. What the
// sharding adds on top is the dispatcher's per-shard weight oracles:
// WeightAt reports a direct (1±eps) estimate of the total active weight —
// the scale factor mean/share-style consumers need — without touching the
// sketch, and SizeAt the matching (1±eps) active count.
//
// Drive ingest AND queries from one producer goroutine; EstimateAt and
// TotalAt need a Barrier after the last Observe, exactly like every
// sharded substrate, while WeightAt and SizeAt read dispatcher-side state
// and need no barrier (they still belong to the producer goroutine).
type ShardedSubsetSumTS[T any] struct {
	k int
	s *parallel.ShardedWeightedTSWOR[T]
}

// NewShardedSubsetSumTS builds a G-way sharded windowed subset-sum
// estimator over the elements of the last t0 clock ticks with sketch size
// k (k+1 sampler slots: k estimation slots plus the threshold). eps is the
// relative error of the embedded weight/size oracles; weight maps a value
// to its positive, finite weight. Panics on bad parameters.
func NewShardedSubsetSumTS[T any](rng *xrand.Rand, t0 int64, g, k int, eps float64, weight func(T) float64) *ShardedSubsetSumTS[T] {
	if k < 1 {
		panic("apps: NewShardedSubsetSumTS with k < 1")
	}
	return &ShardedSubsetSumTS[T]{
		k: k,
		s: parallel.NewShardedWeightedTSWOR[T](rng, t0, g, k+1, eps, weight),
	}
}

// Observe feeds the next element (non-decreasing timestamps; single
// producer goroutine).
func (e *ShardedSubsetSumTS[T]) Observe(value T, ts int64) { e.s.Observe(value, ts) }

// ObserveBatch feeds a run of elements through the weight-aware batch
// dealing.
func (e *ShardedSubsetSumTS[T]) ObserveBatch(batch []stream.Element[T]) { e.s.ObserveBatch(batch) }

// ObserveWeighted feeds one element with a precomputed weight: the weight
// rides the dispatch into the sketch and the dispatcher-side oracles, and
// the weight function is never called (see SubsetSum.ObserveWeighted).
func (e *ShardedSubsetSumTS[T]) ObserveWeighted(value T, w float64, ts int64) {
	e.s.ObserveWeighted(value, w, ts)
}

// ObserveWeightedBatch feeds a run of elements with precomputed weights.
func (e *ShardedSubsetSumTS[T]) ObserveWeightedBatch(batch []stream.Element[T], weights []float64) {
	e.s.ObserveWeightedBatch(batch, weights)
}

// Barrier flushes the shard channels; required before EstimateAt/TotalAt.
func (e *ShardedSubsetSumTS[T]) Barrier() { e.s.Barrier() }

// Close shuts the shard workers down. The estimator remains queryable.
func (e *ShardedSubsetSumTS[T]) Close() { e.s.Close() }

// EstimateAt returns the unbiased estimate of Σ w(p) over the elements
// active at time now that satisfy pred. ok is false when the window is
// empty at now. Panics without a Barrier since the last Observe.
func (e *ShardedSubsetSumTS[T]) EstimateAt(now int64, pred func(T) bool) (float64, bool) {
	items, ok := e.s.ItemsAt(now)
	if !ok {
		return 0, false
	}
	return htEstimate(items, e.k, pred), true
}

// Estimate returns the estimate at the latest dispatched timestamp.
func (e *ShardedSubsetSumTS[T]) Estimate(pred func(T) bool) (float64, bool) {
	items, ok := e.s.Items()
	if !ok {
		return 0, false
	}
	return htEstimate(items, e.k, pred), true
}

// TotalAt estimates the total active weight W at time now through the
// sketch (unbiased HT). For the direct (1±eps) oracle see WeightAt.
func (e *ShardedSubsetSumTS[T]) TotalAt(now int64) (float64, bool) {
	return e.EstimateAt(now, func(T) bool { return true })
}

// WeightAt returns the (1±eps) active-weight total from the dispatcher's
// per-shard weight oracles — the estimator's scale factor, available
// without a barrier and without touching the sketch (producer-goroutine
// only, like every method).
func (e *ShardedSubsetSumTS[T]) WeightAt(now int64) float64 { return e.s.TotalWeightAt(now) }

// SizeAt returns the (1±eps) effective window size n(t) at time now.
func (e *ShardedSubsetSumTS[T]) SizeAt(now int64) uint64 { return e.s.SizeAt(now) }

// K returns the sketch size (estimation slots, excluding the threshold).
func (e *ShardedSubsetSumTS[T]) K() int { return e.k }

// G returns the shard count.
func (e *ShardedSubsetSumTS[T]) G() int { return e.s.G() }

// Count returns the number of arrivals.
func (e *ShardedSubsetSumTS[T]) Count() uint64 { return e.s.Count() }

// Words and MaxWords implement stream.MemoryReporter (per-shard skybands,
// embedded counters and the dispatcher's weight oracles included).
func (e *ShardedSubsetSumTS[T]) Words() int    { return 1 + e.s.Words() }
func (e *ShardedSubsetSumTS[T]) MaxWords() int { return 1 + e.s.MaxWords() }
