package apps

import (
	"math"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

func ssWeight(v uint64) float64 { return float64(v%10) + 1 }

// TestSubsetSumUnbiased: the mean of the HT estimate over many seeded runs
// must converge to the exact windowed subset sum from SeqBuffer ground
// truth, for both a sparse and a dense predicate plus the window total.
func TestSubsetSumUnbiased(t *testing.T) {
	const (
		n      = 64
		k      = 16
		m      = 300
		trials = 1500
	)
	buf := window.NewSeqBuffer[uint64](n)
	for i := 0; i < m; i++ {
		buf.Observe(stream.Element[uint64]{Value: uint64(i), Index: uint64(i)})
	}
	preds := map[string]func(uint64) bool{
		"mod3":  func(v uint64) bool { return v%3 == 0 },
		"mod7":  func(v uint64) bool { return v%7 == 0 },
		"total": func(uint64) bool { return true },
	}
	exact := map[string]float64{}
	for name, pred := range preds {
		s := 0.0
		for _, e := range buf.Contents() {
			if pred(e.Value) {
				s += ssWeight(e.Value)
			}
		}
		exact[name] = s
	}

	sums := map[string]float64{}
	for tr := 0; tr < trials; tr++ {
		est := NewSubsetSum[uint64](xrand.New(uint64(tr)+1), n, k, ssWeight)
		for i := 0; i < m; i++ {
			est.Observe(uint64(i), 0)
		}
		for name, pred := range preds {
			got, ok := est.Estimate(pred)
			if !ok {
				t.Fatalf("trial %d: no estimate", tr)
			}
			sums[name] += got
		}
	}
	for name := range preds {
		mean := sums[name] / trials
		if rel := math.Abs(mean/exact[name] - 1); rel > 0.03 {
			t.Errorf("%s: mean estimate %.2f vs exact %.2f (rel err %.4f > 0.03)", name, mean, exact[name], rel)
		}
	}
}

// TestSubsetSumExhaustive: with the window no larger than k the sketch
// holds everything and the estimate is exactly the subset sum.
func TestSubsetSumExhaustive(t *testing.T) {
	const n, k = 32, 40
	est := NewSubsetSum[uint64](xrand.New(3), n, k, ssWeight)
	if _, ok := est.Estimate(func(uint64) bool { return true }); ok {
		t.Fatal("estimate from empty window")
	}
	exact := 0.0
	for i := 0; i < 200; i++ {
		est.Observe(uint64(i), 0)
		if i >= 200-int(n) {
			exact += ssWeight(uint64(i))
		}
	}
	got, ok := est.Total()
	if !ok || got != exact {
		t.Fatalf("exhaustive total = %v (ok=%v), want exactly %v", got, ok, exact)
	}
	sub, _ := est.Estimate(func(v uint64) bool { return v%2 == 0 })
	exactSub := 0.0
	for i := 200 - int(n); i < 200; i++ {
		if i%2 == 0 {
			exactSub += ssWeight(uint64(i))
		}
	}
	if sub != exactSub {
		t.Fatalf("exhaustive subset = %v, want exactly %v", sub, exactSub)
	}
}

// TestSubsetSumBatchEquivalence: ObserveBatch must leave the estimator in
// the same state as looped Observe under equal seeds.
func TestSubsetSumBatchEquivalence(t *testing.T) {
	const n, k, m = 64, 8, 500
	loop := NewSubsetSum[uint64](xrand.New(11), n, k, ssWeight)
	batch := NewSubsetSum[uint64](xrand.New(11), n, k, ssWeight)
	var buf []stream.Element[uint64]
	for i := 0; i < m; i++ {
		loop.Observe(uint64(i), 0)
		buf = append(buf, stream.Element[uint64]{Value: uint64(i)})
		if len(buf) == 37 {
			batch.ObserveBatch(buf)
			buf = buf[:0]
		}
	}
	batch.ObserveBatch(buf)
	pred := func(v uint64) bool { return v%3 == 0 }
	a, aok := loop.Estimate(pred)
	b, bok := batch.Estimate(pred)
	if aok != bok || a != b {
		t.Fatalf("estimates diverged: %v/%v vs %v/%v", a, aok, b, bok)
	}
	if loop.Words() != batch.Words() || loop.MaxWords() != batch.MaxWords() {
		t.Fatal("memory accounting diverged")
	}
}
