package apps

import (
	"math"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

func ssWeight(v uint64) float64 { return float64(v%10) + 1 }

// TestSubsetSumUnbiased: the mean of the HT estimate over many seeded runs
// must converge to the exact windowed subset sum from SeqBuffer ground
// truth, for both a sparse and a dense predicate plus the window total.
func TestSubsetSumUnbiased(t *testing.T) {
	const (
		n      = 64
		k      = 16
		m      = 300
		trials = 1500
	)
	buf := window.NewSeqBuffer[uint64](n)
	for i := 0; i < m; i++ {
		buf.Observe(stream.Element[uint64]{Value: uint64(i), Index: uint64(i)})
	}
	preds := map[string]func(uint64) bool{
		"mod3":  func(v uint64) bool { return v%3 == 0 },
		"mod7":  func(v uint64) bool { return v%7 == 0 },
		"total": func(uint64) bool { return true },
	}
	exact := map[string]float64{}
	for name, pred := range preds {
		s := 0.0
		for _, e := range buf.Contents() {
			if pred(e.Value) {
				s += ssWeight(e.Value)
			}
		}
		exact[name] = s
	}

	sums := map[string]float64{}
	for tr := 0; tr < trials; tr++ {
		est := NewSubsetSum[uint64](xrand.New(uint64(tr)+1), n, k, ssWeight)
		for i := 0; i < m; i++ {
			est.Observe(uint64(i), 0)
		}
		for name, pred := range preds {
			got, ok := est.Estimate(pred)
			if !ok {
				t.Fatalf("trial %d: no estimate", tr)
			}
			sums[name] += got
		}
	}
	for name := range preds {
		mean := sums[name] / trials
		if rel := math.Abs(mean/exact[name] - 1); rel > 0.03 {
			t.Errorf("%s: mean estimate %.2f vs exact %.2f (rel err %.4f > 0.03)", name, mean, exact[name], rel)
		}
	}
}

// TestSubsetSumExhaustive: with the window no larger than k the sketch
// holds everything and the estimate is exactly the subset sum.
func TestSubsetSumExhaustive(t *testing.T) {
	const n, k = 32, 40
	est := NewSubsetSum[uint64](xrand.New(3), n, k, ssWeight)
	if _, ok := est.Estimate(func(uint64) bool { return true }); ok {
		t.Fatal("estimate from empty window")
	}
	exact := 0.0
	for i := 0; i < 200; i++ {
		est.Observe(uint64(i), 0)
		if i >= 200-int(n) {
			exact += ssWeight(uint64(i))
		}
	}
	got, ok := est.Total()
	if !ok || got != exact {
		t.Fatalf("exhaustive total = %v (ok=%v), want exactly %v", got, ok, exact)
	}
	sub, _ := est.Estimate(func(v uint64) bool { return v%2 == 0 })
	exactSub := 0.0
	for i := 200 - int(n); i < 200; i++ {
		if i%2 == 0 {
			exactSub += ssWeight(uint64(i))
		}
	}
	if sub != exactSub {
		t.Fatalf("exhaustive subset = %v, want exactly %v", sub, exactSub)
	}
}

// TestSubsetSumTSUnbiased: over a bursty timestamp window, the mean of the
// HT estimate across seeded runs must converge to the exact subset sum of
// the active elements — both at the last arrival and at a query time past
// it, where part of the window has expired by clock advancement alone.
func TestSubsetSumTSUnbiased(t *testing.T) {
	const (
		t0     = 40
		k      = 16
		m      = 600
		trials = 1500
	)
	ts := func(i int) int64 { return int64(i / 5) } // bursty: 5 arrivals per tick
	lastTS := ts(m - 1)
	probe := lastTS + t0/4 // expires the oldest quarter with no arrival
	pred := func(v uint64) bool { return v%3 == 0 }

	exactAt := func(now int64) float64 {
		buf := window.NewTSBuffer[uint64](t0)
		for i := 0; i < m; i++ {
			buf.Observe(stream.Element[uint64]{Value: uint64(i), Index: uint64(i), TS: ts(i)})
		}
		buf.AdvanceTo(now)
		sum := 0.0
		for _, e := range buf.Contents() {
			if pred(e.Value) {
				sum += ssWeight(e.Value)
			}
		}
		return sum
	}
	exactLast, exactProbe := exactAt(lastTS), exactAt(probe)
	if exactProbe >= exactLast {
		t.Fatalf("probe time expired nothing: %v >= %v (test harness broken)", exactProbe, exactLast)
	}

	sumLast, sumProbe := 0.0, 0.0
	for tr := 0; tr < trials; tr++ {
		est := NewSubsetSumTS[uint64](xrand.New(uint64(tr)+1), t0, k, 0.05, ssWeight)
		for i := 0; i < m; i++ {
			est.Observe(uint64(i), ts(i))
		}
		got, ok := est.Estimate(pred)
		if !ok {
			t.Fatalf("trial %d: no estimate at the last arrival", tr)
		}
		sumLast += got
		got, ok = est.EstimateAt(probe, pred)
		if !ok {
			t.Fatalf("trial %d: no estimate at the probe time", tr)
		}
		sumProbe += got
	}
	if rel := math.Abs(sumLast/trials/exactLast - 1); rel > 0.03 {
		t.Errorf("at last arrival: mean %.2f vs exact %.2f (rel %.4f > 0.03)", sumLast/trials, exactLast, rel)
	}
	if rel := math.Abs(sumProbe/trials/exactProbe - 1); rel > 0.03 {
		t.Errorf("at probe: mean %.2f vs exact %.2f (rel %.4f > 0.03)", sumProbe/trials, exactProbe, rel)
	}
}

// TestSubsetSumTSDrainsExact: as queries alone drain the window below k
// elements the sketch turns exhaustive and the estimate becomes exact,
// ending at ok=false on the empty window.
func TestSubsetSumTSDrainsExact(t *testing.T) {
	const t0, k = 30, 10
	est := NewSubsetSumTS[uint64](xrand.New(7), t0, k, 0.05, ssWeight)
	if _, ok := est.Total(); ok {
		t.Fatal("estimate from empty estimator")
	}
	for i := 0; i < 90; i++ {
		est.Observe(uint64(i), int64(i)) // one element per tick
	}
	// At now = 89+t0-1 only the last arrival survives; walk the drain.
	for now := int64(89 + t0 - k); now < 89+t0; now++ {
		active := 89 + t0 - now // elements with ts > now-t0, i.e. ts in (now-30, 89]
		exact := 0.0
		for i := 90 - int(active); i < 90; i++ {
			exact += ssWeight(uint64(i))
		}
		got, ok := est.TotalAt(now)
		if !ok || got != exact {
			t.Fatalf("now=%d (%d active): total %v ok=%v, want exactly %v", now, active, got, ok, exact)
		}
	}
	if _, ok := est.TotalAt(89 + t0); ok {
		t.Fatal("estimate from a fully drained window")
	}
	// Still usable after the drain.
	est.Observe(1000, 89+t0+1)
	if got, ok := est.Total(); !ok || got != ssWeight(1000) {
		t.Fatalf("post-drain arrival: total %v ok=%v", got, ok)
	}
}

// TestSubsetSumTSFreshQueryDoesNotPinClock: an Estimate/Total on a fresh
// estimator reports ok=false without pinning the clock, so the stream may
// still start at any timestamp, including negative ones.
func TestSubsetSumTSFreshQueryDoesNotPinClock(t *testing.T) {
	est := NewSubsetSumTS[uint64](xrand.New(1), 100, 4, 0.05, ssWeight)
	if _, ok := est.Total(); ok {
		t.Fatal("estimate from empty estimator")
	}
	est.Observe(7, -10) // must not panic "time went backwards"
	if got, ok := est.Total(); !ok || got != ssWeight(7) {
		t.Fatalf("negative-start stream after a fresh query: total %v ok=%v", got, ok)
	}
}

// TestSubsetSumTSBatchEquivalence: the batched path must match looped
// ingest exactly, estimates included.
func TestSubsetSumTSBatchEquivalence(t *testing.T) {
	const t0, k, m = 64, 8, 500
	loop := NewSubsetSumTS[uint64](xrand.New(11), t0, k, 0.05, ssWeight)
	batch := NewSubsetSumTS[uint64](xrand.New(11), t0, k, 0.05, ssWeight)
	var buf []stream.Element[uint64]
	for i := 0; i < m; i++ {
		ts := int64(i / 3)
		loop.Observe(uint64(i), ts)
		buf = append(buf, stream.Element[uint64]{Value: uint64(i), TS: ts})
		if len(buf) == 37 {
			batch.ObserveBatch(buf)
			buf = buf[:0]
		}
	}
	batch.ObserveBatch(buf)
	pred := func(v uint64) bool { return v%3 == 0 }
	a, aok := loop.Estimate(pred)
	b, bok := batch.Estimate(pred)
	if aok != bok || a != b {
		t.Fatalf("estimates diverged: %v/%v vs %v/%v", a, aok, b, bok)
	}
	if loop.Words() != batch.Words() || loop.MaxWords() != batch.MaxWords() {
		t.Fatal("memory accounting diverged")
	}
}

// TestSubsetSumBatchEquivalence: ObserveBatch must leave the estimator in
// the same state as looped Observe under equal seeds.
func TestSubsetSumBatchEquivalence(t *testing.T) {
	const n, k, m = 64, 8, 500
	loop := NewSubsetSum[uint64](xrand.New(11), n, k, ssWeight)
	batch := NewSubsetSum[uint64](xrand.New(11), n, k, ssWeight)
	var buf []stream.Element[uint64]
	for i := 0; i < m; i++ {
		loop.Observe(uint64(i), 0)
		buf = append(buf, stream.Element[uint64]{Value: uint64(i)})
		if len(buf) == 37 {
			batch.ObserveBatch(buf)
			buf = buf[:0]
		}
	}
	batch.ObserveBatch(buf)
	pred := func(v uint64) bool { return v%3 == 0 }
	a, aok := loop.Estimate(pred)
	b, bok := batch.Estimate(pred)
	if aok != bok || a != b {
		t.Fatalf("estimates diverged: %v/%v vs %v/%v", a, aok, b, bok)
	}
	if loop.Words() != batch.Words() || loop.MaxWords() != batch.MaxWords() {
		t.Fatal("memory accounting diverged")
	}
}
