package apps

import (
	"math"
	"testing"

	"slidingsample/internal/core"
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// ---------------------------------------------------------------------------
// Frequency moments (Corollary 5.2)
// ---------------------------------------------------------------------------

func TestExactMoment(t *testing.T) {
	vals := []uint64{1, 1, 1, 2, 2, 3}
	if got := ExactMoment(vals, 2); got != 9+4+1 {
		t.Fatalf("F2 = %v, want 14", got)
	}
	if got := ExactMoment(vals, 3); got != 27+8+1 {
		t.Fatalf("F3 = %v, want 36", got)
	}
	if got := ExactMoment(vals, 1); got != 6 {
		t.Fatalf("F1 = %v, want 6", got)
	}
	if got := ExactMoment(nil, 2); got != 0 {
		t.Fatalf("F2 of empty = %v", got)
	}
}

// TestMomentsUnbiased checks E[X] = F_p for the single-copy estimator by
// averaging many independent runs against the exact window moment, on a
// window that straddles buckets.
func TestMomentsUnbiased(t *testing.T) {
	const n, m = 32, 80
	const runs = 4000
	r := xrand.New(1)
	// Fixed value sequence: index mod 7 gives a known skew.
	values := make([]uint64, m)
	for i := range values {
		values[i] = uint64(i) % 7
	}
	exact := ExactMoment(values[m-n:], 2)
	sum := 0.0
	for run := 0; run < runs; run++ {
		est := NewMoments(SeqWRSource(core.NewSeqWR[uint64](r.Split(), n, 1)), 2, 1, 1)
		for i, v := range values {
			est.Observe(v, int64(i))
		}
		got, ok := est.EstimateAt(0)
		if !ok {
			t.Fatal("no estimate")
		}
		sum += got
	}
	avg := sum / runs
	if math.Abs(avg-exact)/exact > 0.05 {
		t.Fatalf("estimator biased: avg %.1f, exact %.1f", avg, exact)
	}
}

// TestMomentsConcentrates: with many copies the median-of-means estimate
// should land within 25%% of the exact value on a Zipf window.
func TestMomentsConcentrates(t *testing.T) {
	const n = 256
	const m = 600
	r := xrand.New(2)
	zipf := stream.NewZipfValues(r.Split(), 1.3, 64)
	values := make([]uint64, m)
	for i := range values {
		values[i] = zipf.Next()
	}
	exact := ExactMoment(values[m-n:], 2)
	est := NewMoments(SeqWRSource(core.NewSeqWR[uint64](r.Split(), n, 16*5)), 2, 16, 5)
	for i, v := range values {
		est.Observe(v, int64(i))
	}
	got, ok := est.EstimateAt(0)
	if !ok {
		t.Fatal("no estimate")
	}
	if rel := math.Abs(got-exact) / exact; rel > 0.25 {
		t.Fatalf("F2 estimate %.0f vs exact %.0f (rel err %.2f)", got, exact, rel)
	}
}

func TestMomentsWarmup(t *testing.T) {
	// Before the window fills, the estimator runs over the partial window.
	r := xrand.New(3)
	est := NewMoments(SeqWRSource(core.NewSeqWR[uint64](r, 100, 4)), 2, 4, 1)
	if _, ok := est.EstimateAt(0); ok {
		t.Fatal("estimate from empty stream")
	}
	est.Observe(5, 0)
	got, ok := est.EstimateAt(0)
	if !ok || got != 1 {
		// F2 of a single element is 1; with one element every slot holds it
		// and r=1, X = 1*(1-0) = 1.
		t.Fatalf("single-element F2 = %v ok=%v, want exactly 1", got, ok)
	}
}

func TestMomentsConstantStream(t *testing.T) {
	// All-equal values: F2 = n^2 exactly, r of the sampled position is
	// (n - pos) and X = n*(r^2-(r-1)^2) -> E[X] = n^2; with the window
	// full of one value the suffix counts are exact, so the estimator has
	// nonzero variance but correct mean; check a big-copies run lands close.
	const n = 64
	r := xrand.New(4)
	est := NewMoments(SeqWRSource(core.NewSeqWR[uint64](r, n, 60)), 2, 12, 5)
	for i := 0; i < 300; i++ {
		est.Observe(7, int64(i))
	}
	got, _ := est.EstimateAt(0)
	exact := float64(n * n)
	if math.Abs(got-exact)/exact > 0.3 {
		t.Fatalf("constant-stream F2 %.0f vs %.0f", got, exact)
	}
}

func TestMomentsPanics(t *testing.T) {
	r := xrand.New(5)
	src := SeqWRSource(core.NewSeqWR[uint64](r, 8, 1))
	for _, fn := range []func(){
		func() { NewMoments(src, 0, 1, 1) },
		func() { NewMoments(src, 2, 0, 1) },
		func() { NewMoments(src, 2, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad NewMoments args did not panic")
				}
			}()
			fn()
		}()
	}
}

// ---------------------------------------------------------------------------
// Entropy (Corollary 5.4)
// ---------------------------------------------------------------------------

func TestExactEntropy(t *testing.T) {
	if got := ExactEntropy([]uint64{1, 1, 2, 2}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("H = %v, want 1 bit", got)
	}
	if got := ExactEntropy([]uint64{3, 3, 3}); got != 0 {
		t.Fatalf("H of constant = %v, want 0", got)
	}
	if got := ExactEntropy(nil); got != 0 {
		t.Fatalf("H of empty = %v", got)
	}
	// Uniform over 8 values: 3 bits.
	var u []uint64
	for i := uint64(0); i < 8; i++ {
		for j := 0; j < 5; j++ {
			u = append(u, i)
		}
	}
	if got := ExactEntropy(u); math.Abs(got-3) > 1e-12 {
		t.Fatalf("H = %v, want 3 bits", got)
	}
}

func TestEntropyUnbiased(t *testing.T) {
	const n, m = 32, 70
	const runs = 4000
	r := xrand.New(6)
	values := make([]uint64, m)
	for i := range values {
		values[i] = uint64(i) % 5
	}
	exact := ExactEntropy(values[m-n:])
	sum := 0.0
	for run := 0; run < runs; run++ {
		est := NewEntropy(SeqWRSource(core.NewSeqWR[uint64](r.Split(), n, 1)), 1, 1)
		for i, v := range values {
			est.Observe(v, int64(i))
		}
		got, ok := est.EstimateAt(0)
		if !ok {
			t.Fatal("no estimate")
		}
		sum += got
	}
	avg := sum / runs
	if math.Abs(avg-exact) > 0.08*exact+0.02 {
		t.Fatalf("entropy estimator biased: avg %.3f, exact %.3f", avg, exact)
	}
}

func TestEntropyConcentrates(t *testing.T) {
	const n, m = 256, 600
	r := xrand.New(7)
	zipf := stream.NewZipfValues(r.Split(), 1.1, 32)
	values := make([]uint64, m)
	for i := range values {
		values[i] = zipf.Next()
	}
	exact := ExactEntropy(values[m-n:])
	est := NewEntropy(SeqWRSource(core.NewSeqWR[uint64](r.Split(), n, 80)), 16, 5)
	for i, v := range values {
		est.Observe(v, int64(i))
	}
	got, ok := est.EstimateAt(0)
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(got-exact) > 0.25*exact {
		t.Fatalf("entropy %.3f vs exact %.3f", got, exact)
	}
}

// TestEntropyOverTimestampWindow drives the TSWR source with an exact size
// oracle (the ground-truth buffer), validating the Theorem 5.1 translation
// on timestamp windows.
func TestEntropyOverTimestampWindow(t *testing.T) {
	const t0 = 50
	r := xrand.New(8)
	buf := window.NewTSBuffer[uint64](t0)
	sizeOracle := func(now int64) (float64, bool) {
		buf.AdvanceTo(now)
		if buf.Len() == 0 {
			return 0, false
		}
		return float64(buf.Len()), true
	}
	s := core.NewTSWR[uint64](r.Split(), t0, 60)
	est := NewEntropy(TSWRSource(s, sizeOracle), 12, 5)
	ts := int64(0)
	var idx uint64
	zipf := stream.NewZipfValues(r.Split(), 1.2, 16)
	for i := 0; i < 800; i++ {
		if i%3 == 0 {
			ts++
		}
		v := zipf.Next()
		est.Observe(v, ts)
		buf.Observe(stream.Element[uint64]{Value: v, Index: idx, TS: ts})
		idx++
	}
	var content []uint64
	for _, e := range buf.Contents() {
		content = append(content, e.Value)
	}
	exact := ExactEntropy(content)
	got, ok := est.EstimateAt(ts)
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(got-exact) > 0.3*exact {
		t.Fatalf("TS entropy %.3f vs exact %.3f", got, exact)
	}
}

// ---------------------------------------------------------------------------
// Triangles (Corollary 5.3)
// ---------------------------------------------------------------------------

func TestExactTriangles(t *testing.T) {
	tri := []Edge{{0, 1}, {1, 2}, {0, 2}}
	if got := ExactTriangles(tri); got != 1 {
		t.Fatalf("one triangle counted as %d", got)
	}
	// K4 has 4 triangles.
	k4 := []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if got := ExactTriangles(k4); got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
	// Duplicates and self-loops are ignored.
	noisy := append(append([]Edge{}, tri...), Edge{1, 0}, Edge{2, 2})
	if got := ExactTriangles(noisy); got != 1 {
		t.Fatalf("noisy triangle count = %d, want 1", got)
	}
	if got := ExactTriangles([]Edge{{0, 1}, {1, 2}}); got != 0 {
		t.Fatalf("path has %d triangles", got)
	}
}

// TestTrianglesUnbiased: E[estimate] = T3 over many independent runs on a
// fixed windowed edge stream with planted triangles.
func TestTrianglesUnbiased(t *testing.T) {
	const V = 12
	const n = 30
	// Build a fixed edge stream: a chain of planted triangles plus noise,
	// all inside the final window.
	var es []Edge
	for i := uint64(0); i+2 < V; i += 3 {
		es = append(es, Edge{i, i + 1}, Edge{i + 1, i + 2}, Edge{i, i + 2})
	}
	es = append(es, Edge{0, 5}, Edge{3, 8}, Edge{1, 7}, Edge{4, 9})
	if len(es) > n {
		t.Fatal("test stream larger than window")
	}
	exact := float64(ExactTriangles(es))
	const runs = 3000
	r := xrand.New(9)
	sum := 0.0
	for run := 0; run < runs; run++ {
		tr := NewTriangles(r.Split(), n, V, 1)
		for i, e := range es {
			tr.Observe(e, int64(i))
		}
		got, ok := tr.EstimateAt(0)
		if !ok {
			t.Fatal("no estimate")
		}
		sum += got
	}
	avg := sum / runs
	if math.Abs(avg-exact) > 0.15*exact {
		t.Fatalf("triangle estimator biased: avg %.2f, exact %.0f", avg, exact)
	}
}

func TestTrianglesSlidingExpiry(t *testing.T) {
	// A planted triangle that slides OUT of the window must stop
	// contributing: feed the triangle, then n noise edges; the exact count
	// of the final window is 0 and the estimator should average near 0.
	const V = 20
	const n = 10
	r := xrand.New(10)
	var es []Edge
	es = append(es, Edge{0, 1}, Edge{1, 2}, Edge{0, 2})
	for i := 0; i < n; i++ {
		es = append(es, Edge{uint64(10 + i%5), uint64(16 + (i*3)%4)})
	}
	const runs = 600
	sum := 0.0
	for run := 0; run < runs; run++ {
		tr := NewTriangles(r.Split(), n, V, 2)
		for i, e := range es {
			tr.Observe(e, int64(i))
		}
		got, _ := tr.EstimateAt(0)
		sum += got
	}
	if avg := sum / runs; avg > 4 {
		t.Fatalf("expired triangle still contributes: avg estimate %.2f", avg)
	}
}

func TestTrianglesPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("V<3 did not panic")
			}
		}()
		NewTriangles(xrand.New(1), 8, 2, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("self-loop did not panic")
			}
		}()
		tr := NewTriangles(xrand.New(1), 8, 5, 1)
		tr.Observe(Edge{3, 3}, 0)
	}()
}

// ---------------------------------------------------------------------------
// Step-biased sampling (Section 5 closing)
// ---------------------------------------------------------------------------

func TestStepBiasedDistribution(t *testing.T) {
	// Two steps: last 4 elements with weight 1, last 16 with weight 1.
	// P(age < 4) = (1/2)/4 + (1/2)/16; P(4 <= age < 16) = (1/2)/16.
	const trials = 200000
	r := xrand.New(11)
	counts := make([]int, 16)
	const total = 50
	for tr := 0; tr < trials; tr++ {
		b := NewStepBiased[uint64](r, []uint64{4, 16}, []uint64{1, 1})
		for i := 0; i < total; i++ {
			b.Observe(uint64(i), int64(i))
		}
		got, ok := b.Sample()
		if !ok {
			t.Fatal("no biased sample")
		}
		age := uint64(total-1) - got[0].Index
		if age >= 16 {
			t.Fatalf("sampled element of age %d outside the largest window", age)
		}
		counts[age]++
	}
	b := NewStepBiased[uint64](r, []uint64{4, 16}, []uint64{1, 1})
	for i := 0; i < total; i++ {
		b.Observe(uint64(i), int64(i))
	}
	for age := uint64(0); age < 16; age++ {
		p := b.Prob(age)
		want := p * trials
		sigma := math.Sqrt(trials * p * (1 - p))
		if math.Abs(float64(counts[age])-want) > 5*sigma {
			t.Errorf("age %d: %d draws, want about %.0f", age, counts[age], want)
		}
	}
	// The bias must be a strict step: ages 0-3 strictly more likely.
	if b.Prob(0) <= b.Prob(5) {
		t.Fatal("step function not decreasing")
	}
	if b.Prob(5) != b.Prob(15) {
		t.Fatal("within one step the probability should be flat")
	}
	if b.Prob(16) != 0 {
		t.Fatal("beyond the largest window the probability must be 0")
	}
}

func TestStepBiasedPanicsAndEdge(t *testing.T) {
	r := xrand.New(12)
	for _, fn := range []func(){
		func() { NewStepBiased[uint64](r, nil, nil) },
		func() { NewStepBiased[uint64](r, []uint64{4, 4}, []uint64{1, 1}) },
		func() { NewStepBiased[uint64](r, []uint64{8, 4}, []uint64{1, 1}) },
		func() { NewStepBiased[uint64](r, []uint64{4, 8}, []uint64{1, 0}) },
		func() { NewStepBiased[uint64](r, []uint64{4}, []uint64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("malformed StepBiased args did not panic")
				}
			}()
			fn()
		}()
	}
	b := NewStepBiased[uint64](r, []uint64{4, 8}, []uint64{3, 1})
	if _, ok := b.Sample(); ok {
		t.Fatal("sample from empty biased sampler")
	}
	b.Observe(1, 0)
	if _, ok := b.Sample(); !ok {
		t.Fatal("no sample after observation")
	}
	if b.Words() <= 0 || b.MaxWords() < b.Words() {
		t.Fatal("words accounting broken")
	}
}
