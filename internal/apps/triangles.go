package apps

import (
	"slidingsample/internal/core"
	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// Edge is one undirected graph-stream element. Endpoints are vertex ids in
// [0, V).
type Edge struct {
	U, V uint64
}

// norm returns the edge with ordered endpoints (canonical form).
func (e Edge) norm() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// triangleWatch is the per-slot auxiliary state of the triangle estimator:
// the third vertex drawn when the edge was sampled, and flags for the two
// closing edges observed since.
type triangleWatch struct {
	w      uint64
	seenAW bool
	seenBW bool
}

// Triangles estimates the number of triangles among the edges in a
// sequence-based sliding window of the last n edges (Corollary 5.3, after
// Buriol, Frahling, Leonardi, Marchetti-Spaccamela and Sohler). Each of the
// s sample slots holds a uniform window edge (a,b) plus a uniformly drawn
// third vertex w; the slot scores 1 iff both closing edges (a,w) and (b,w)
// arrived after the sampled edge. For a triangle wholly inside the window,
// only its EARLIEST edge can score, so
//
//	E[score] = T3 / (n * (V-2))   and   T3^ = mean(score) * n * (V-2).
//
// (Buriol et al. state the estimator with slightly different constants for
// their one-pass space-bound accounting; the derivation above is the exact
// identity for this windowed formulation and is what the E9 experiment
// validates.)
type Triangles struct {
	sampler  *core.SeqWR[Edge]
	rng      *xrand.Rand
	vertices uint64
	s        int
}

// NewTriangles builds a triangle estimator over a window of the n most
// recent edges of a graph on `vertices` vertices, using s independent
// sample slots. Panics if vertices < 3 or s < 1.
func NewTriangles(rng *xrand.Rand, n uint64, vertices uint64, s int) *Triangles {
	if vertices < 3 {
		panic("apps: NewTriangles needs at least 3 vertices")
	}
	if s < 1 {
		panic("apps: NewTriangles with s < 1")
	}
	return &Triangles{
		sampler:  core.NewSeqWR[Edge](rng.Split(), n, s),
		rng:      rng.Split(),
		vertices: vertices,
		s:        s,
	}
}

// Observe feeds the next edge of the stream. Self-loops are not part of the
// model (they cannot participate in triangles and would corrupt the
// third-vertex draw); Observe panics on them.
func (t *Triangles) Observe(e Edge, ts int64) {
	if e.U == e.V {
		panic("apps: Triangles.Observe self-loop")
	}
	en := e.norm()
	t.sampler.Observe(en, ts)
	t.sampler.ForEachStored(func(st *stream.Stored[Edge]) {
		if st.Aux == nil {
			// Slot created by this arrival: draw the third vertex uniformly
			// from V minus the edge's endpoints.
			w := t.rng.Uint64n(t.vertices - 2)
			a, b := st.Elem.Value.U, st.Elem.Value.V
			if w >= min64(a, b) {
				w++
			}
			if w >= max64(a, b) {
				w++
			}
			st.Aux = &triangleWatch{w: w}
			return
		}
		tw, ok := st.Aux.(*triangleWatch)
		if !ok {
			return
		}
		a, b := st.Elem.Value.U, st.Elem.Value.V
		if en == (Edge{U: min64(a, tw.w), V: max64(a, tw.w)}) {
			tw.seenAW = true
		}
		if en == (Edge{U: min64(b, tw.w), V: max64(b, tw.w)}) {
			tw.seenBW = true
		}
	})
}

// EstimateAt returns the triangle-count estimate for the current window.
func (t *Triangles) EstimateAt(now int64) (float64, bool) {
	slots, ok := t.sampler.SampleSlots()
	if !ok {
		return 0, false
	}
	n := float64(t.sampler.N())
	if t.sampler.Count() < t.sampler.N() {
		n = float64(t.sampler.Count())
	}
	hits := 0
	for _, st := range slots {
		if tw, ok := st.Aux.(*triangleWatch); ok && tw.seenAW && tw.seenBW {
			hits++
		}
	}
	score := float64(hits) / float64(len(slots))
	return score * n * float64(t.vertices-2), true
}

// Copies returns the number of sample slots.
func (t *Triangles) Copies() int { return t.s }

// Words reports the sampler's footprint (the watch state adds 3 words per
// slot under the DESIGN.md §6 model; included here).
func (t *Triangles) Words() int { return t.sampler.Words() + 3*2*t.s }

// ExactTriangles counts triangles among the given edges exactly (ground
// truth; Θ(E·deg) time). Duplicate edges are collapsed.
func ExactTriangles(edges []Edge) int {
	adj := map[uint64]map[uint64]bool{}
	addDirected := func(a, b uint64) {
		if adj[a] == nil {
			adj[a] = map[uint64]bool{}
		}
		adj[a][b] = true
	}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		n := e.norm()
		addDirected(n.U, n.V)
		addDirected(n.V, n.U)
	}
	count := 0
	for _, e := range dedupe(edges) {
		// Count common neighbours of the endpoints; each triangle is counted
		// once per edge, so divide by 3.
		na, nb := adj[e.U], adj[e.V]
		if len(na) > len(nb) {
			na, nb = nb, na
		}
		for w := range na {
			if w != e.U && w != e.V && nb[w] {
				count++
			}
		}
	}
	return count / 3
}

func dedupe(edges []Edge) []Edge {
	seen := map[Edge]bool{}
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		n := e.norm()
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
