package apps

import (
	"testing"

	"slidingsample/internal/core"
	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// TestStepBiasedEmptyStepFallback: when the weighted step draw lands on a
// step whose sampler reports empty, Sample must fall back to the non-empty
// steps (renormalizing over their weights) instead of consuming the draw
// and reporting ok=false on a non-empty window. Regression test for the
// pre-fix behavior, which failed ~w_i/Σw of the queries in that state.
func TestStepBiasedEmptyStepFallback(t *testing.T) {
	b := NewStepBiased[uint64](xrand.New(5), []uint64{4, 16}, []uint64{1, 1})
	for i := uint64(0); i < 10; i++ {
		b.Observe(i, 0)
	}
	// Force the "drawn step is empty" state the fallback exists for: swap in
	// a fresh (never-fed) sampler for step 1. Real samplers only reach this
	// through defensive inner failures, which is why the white-box swap is
	// the regression trigger.
	b.samplers[1] = core.NewSeqWR[uint64](xrand.New(99), 16, 1)
	for q := 0; q < 400; q++ {
		got, ok := b.Sample()
		if !ok {
			t.Fatalf("query %d: ok=false on a non-empty window (empty-step draw not redirected)", q)
		}
		if len(got) != 1 {
			t.Fatalf("query %d: %d elements, want 1", q, len(got))
		}
		// The only live step is the n=4 window: last 4 arrivals.
		if got[0].Index < 6 || got[0].Index > 9 {
			t.Fatalf("query %d: index %d outside the live step's window [6,9]", q, got[0].Index)
		}
	}
}

// TestStepBiasedSampleIsACopy: mutating a returned sample must not corrupt
// a later query's result (the pre-fix code returned got[:1], aliasing the
// inner sampler's returned slice).
func TestStepBiasedSampleIsACopy(t *testing.T) {
	b := NewStepBiased[uint64](xrand.New(6), []uint64{4, 16}, []uint64{1, 1})
	for i := uint64(0); i < 32; i++ {
		b.Observe(i, 0)
	}
	first, ok := b.Sample()
	if !ok {
		t.Fatal("no sample")
	}
	first[0] = stream.Element[uint64]{Value: 12345, Index: 99999}
	got, ok := b.Sample()
	if !ok {
		t.Fatal("no sample after mutation")
	}
	if got[0].Index == 99999 {
		t.Fatal("returned sample aliases mutable storage")
	}
	if got[0].Value != got[0].Index {
		t.Fatalf("sample corrupted: value %d, index %d", got[0].Value, got[0].Index)
	}
}
