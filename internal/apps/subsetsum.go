package apps

import (
	"math"

	"slidingsample/internal/stream"
	"slidingsample/internal/weighted"
	"slidingsample/internal/xrand"
)

// SubsetSum estimates windowed subset sums Σ_{p ∈ W, pred(p)} w(p) from a
// weighted sample — the estimation problem the weighted substrate exists
// for (Cohen–Duffield–Kaplan–Lund–Thorup, "Stream sampling for
// variance-optimal estimation of subset sums"; see PAPERS.md).
//
// Machinery: a weighted.WOR sampler with k+1 slots is a bottom-k sketch.
// Let tau be the (k+1)-th largest log-key. Conditioned on tau, each of the
// top-k elements was included with probability
//
//	P(ln U_i / w_i > tau) = 1 - e^(w_i·tau),
//
// so the conditional Horvitz–Thompson estimator
//
//	Ŝ = Σ_{i in top-k, pred(i)} w_i / (1 - e^(w_i·tau))
//
// is unbiased for the subset sum over the window (Cohen–Kaplan bottom-k
// estimation framework; priority sampling is the w_i/u_i special case).
// While the window holds at most k elements the sketch is exhaustive and
// the estimate is the exact subset sum.
//
// Memory is the sampler's expected O(k·log n) words; any predicate can be
// queried after the fact — the estimator never looks at values on the
// ingest path.
type SubsetSum[T any] struct {
	k int
	s *weighted.WOR[T]
}

// NewSubsetSum builds a windowed subset-sum estimator over the n most
// recent elements with sketch size k (the underlying sampler keeps k+1
// slots: k estimation slots plus the threshold). weight maps a value to its
// positive, finite weight. Panics on bad parameters.
func NewSubsetSum[T any](rng *xrand.Rand, n uint64, k int, weight func(T) float64) *SubsetSum[T] {
	if k < 1 {
		panic("apps: NewSubsetSum with k < 1")
	}
	return &SubsetSum[T]{k: k, s: weighted.NewWOR[T](rng, n, k+1, weight)}
}

// Observe feeds the next element.
func (e *SubsetSum[T]) Observe(value T, ts int64) { e.s.Observe(value, ts) }

// ObserveBatch feeds a run of elements through the sampler's batched hot
// path (sample-path identical to looped Observe).
func (e *SubsetSum[T]) ObserveBatch(batch []stream.Element[T]) { e.s.ObserveBatch(batch) }

// ObserveWeighted implements stream.WeightedSampler's ingest half: the
// precomputed weight flows into the sketch (and the HT estimate reads the
// weight recorded at ingest), so estimator consumers that already hold
// weights — the serving layer — skip the weight function.
func (e *SubsetSum[T]) ObserveWeighted(value T, w float64, ts int64) {
	e.s.ObserveWeighted(value, w, ts)
}

// ObserveWeightedBatch feeds a run of elements with precomputed weights.
func (e *SubsetSum[T]) ObserveWeightedBatch(batch []stream.Element[T], weights []float64) {
	e.s.ObserveWeightedBatch(batch, weights)
}

// Estimate returns the unbiased estimate of Σ w(p) over the active window
// elements satisfying pred. ok is false while the window is empty.
func (e *SubsetSum[T]) Estimate(pred func(T) bool) (float64, bool) {
	items, ok := e.s.Items()
	if !ok {
		return 0, false
	}
	return htEstimate(items, e.k, pred), true
}

// htEstimate is the conditional Horvitz–Thompson computation shared by the
// sequence- and timestamp-window estimators: exhaustive when the sketch
// holds the whole window, thresholded on the (k+1)-th largest log-key
// otherwise.
func htEstimate[T any](items []weighted.Item[T], k int, pred func(T) bool) float64 {
	if len(items) <= k {
		// Exhaustive sketch: the window has at most k elements.
		sum := 0.0
		for _, it := range items {
			if pred(it.Elem.Value) {
				sum += it.Weight
			}
		}
		return sum
	}
	tau := items[k].LogKey // (k+1)-th largest log-key: the threshold
	sum := 0.0
	for _, it := range items[:k] {
		if pred(it.Elem.Value) {
			// Inclusion probability 1 - e^(w·tau), computed via Expm1 so
			// near-certain inclusions (w·tau ≈ 0⁻) keep full precision.
			sum += it.Weight / -math.Expm1(it.Weight*tau)
		}
	}
	return sum
}

// Total estimates the total window weight W (the pred ≡ true subset).
func (e *SubsetSum[T]) Total() (float64, bool) {
	return e.Estimate(func(T) bool { return true })
}

// SubsetSumTS is the timestamp-window subset-sum estimator: the same
// Cohen–Kaplan bottom-k construction over "the last t0 ticks" instead of
// "the last n elements". The underlying weighted.TSWOR expires by the
// overflow-safe timestamp comparison and re-expires at query time, so
// estimates may be asked for any time at or past the last arrival — the
// sketch keeps answering as the window drains, reaching the exact (then
// zero) subset sum once at most k elements survive. Its embedded
// exponential-histogram counter reports the effective window size n(t)
// alongside (SizeAt), the scale factor mean-style consumers need.
type SubsetSumTS[T any] struct {
	k int
	s *weighted.TSWOR[T]
}

// NewSubsetSumTS builds a windowed subset-sum estimator over the elements
// of the last t0 clock ticks with sketch size k (k+1 sampler slots: k
// estimation slots plus the threshold). eps is the relative error of the
// embedded window-size counter; weight maps a value to its positive,
// finite weight. Panics on bad parameters.
func NewSubsetSumTS[T any](rng *xrand.Rand, t0 int64, k int, eps float64, weight func(T) float64) *SubsetSumTS[T] {
	if k < 1 {
		panic("apps: NewSubsetSumTS with k < 1")
	}
	return &SubsetSumTS[T]{k: k, s: weighted.NewTSWOR[T](rng, t0, k+1, eps, weight)}
}

// Observe feeds the next element (non-decreasing timestamps).
func (e *SubsetSumTS[T]) Observe(value T, ts int64) { e.s.Observe(value, ts) }

// ObserveBatch feeds a run of elements through the sampler's batched hot
// path (sample-path identical to looped Observe).
func (e *SubsetSumTS[T]) ObserveBatch(batch []stream.Element[T]) { e.s.ObserveBatch(batch) }

// ObserveWeighted feeds one element with a precomputed weight (see
// SubsetSum.ObserveWeighted).
func (e *SubsetSumTS[T]) ObserveWeighted(value T, w float64, ts int64) {
	e.s.ObserveWeighted(value, w, ts)
}

// ObserveWeightedBatch feeds a run of elements with precomputed weights.
func (e *SubsetSumTS[T]) ObserveWeightedBatch(batch []stream.Element[T], weights []float64) {
	e.s.ObserveWeightedBatch(batch, weights)
}

// EstimateAt returns the unbiased estimate of Σ w(p) over the elements
// active at time now that satisfy pred. Querying advances the estimator's
// clock (never rewinds). ok is false when the window is empty at now.
func (e *SubsetSumTS[T]) EstimateAt(now int64, pred func(T) bool) (float64, bool) {
	items, ok := e.s.ItemsAt(now)
	if !ok {
		return 0, false
	}
	return htEstimate(items, e.k, pred), true
}

// Estimate returns the estimate at the latest observed time.
func (e *SubsetSumTS[T]) Estimate(pred func(T) bool) (float64, bool) {
	items, ok := e.s.Items()
	if !ok {
		return 0, false
	}
	return htEstimate(items, e.k, pred), true
}

// TotalAt estimates the total active weight W at time now.
func (e *SubsetSumTS[T]) TotalAt(now int64) (float64, bool) {
	return e.EstimateAt(now, func(T) bool { return true })
}

// Total estimates the total active weight at the latest observed time.
func (e *SubsetSumTS[T]) Total() (float64, bool) {
	return e.Estimate(func(T) bool { return true })
}

// SizeAt returns the (1±eps) effective window size n(t) at time now.
func (e *SubsetSumTS[T]) SizeAt(now int64) uint64 { return e.s.SizeAt(now) }

// K returns the sketch size (estimation slots, excluding the threshold).
func (e *SubsetSumTS[T]) K() int { return e.k }

// Count returns the number of arrivals.
func (e *SubsetSumTS[T]) Count() uint64 { return e.s.Count() }

// Words and MaxWords implement stream.MemoryReporter (the embedded size
// counter is included — DESIGN.md §6).
func (e *SubsetSumTS[T]) Words() int    { return 1 + e.s.Words() }
func (e *SubsetSumTS[T]) MaxWords() int { return 1 + e.s.MaxWords() }

// K returns the sketch size (estimation slots, excluding the threshold).
func (e *SubsetSum[T]) K() int { return e.k }

// Count returns the number of arrivals.
func (e *SubsetSum[T]) Count() uint64 { return e.s.Count() }

// Words and MaxWords implement stream.MemoryReporter.
func (e *SubsetSum[T]) Words() int    { return 1 + e.s.Words() }
func (e *SubsetSum[T]) MaxWords() int { return 1 + e.s.MaxWords() }
