package apps

import (
	"sort"

	"slidingsample/internal/core"
	"slidingsample/internal/xrand"
)

// Quantiles estimates order statistics of the values in a sequence-based
// sliding window from a without-replacement sample — the most direct
// instance of Theorem 5.1: the textbook sample-quantile algorithm is
// sampling-based, so replacing its sampler with the Theorem 2.2 sampler
// yields a sliding-window quantile sketch with deterministic Θ(k) memory.
//
// Guarantee (classical): the q-quantile of a uniform k-sample of the window
// is an element whose window rank is within n·O(sqrt(log(1/δ)/k)) of q·n
// with probability 1-δ. The E-series experiments measure this empirically;
// the point here is the memory bound, which prior samplers provided only in
// expectation.
type Quantiles struct {
	sampler *core.SeqWOR[uint64]
}

// NewQuantiles builds a windowed quantile estimator over the last n values
// with a sample of size k.
func NewQuantiles(rng *xrand.Rand, n uint64, k int) *Quantiles {
	return &Quantiles{sampler: core.NewSeqWOR[uint64](rng.Split(), n, k)}
}

// Observe feeds the next value.
func (s *Quantiles) Observe(value uint64, ts int64) {
	s.sampler.Observe(value, ts)
}

// Query returns the estimated q-quantile (0 <= q <= 1) of the current
// window. ok is false while the window is empty.
func (s *Quantiles) Query(q float64) (uint64, bool) {
	got, ok := s.sampler.Sample()
	if !ok || len(got) == 0 {
		return 0, false
	}
	vals := make([]uint64, len(got))
	for i, e := range got {
		vals[i] = e.Value
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if q <= 0 {
		return vals[0], true
	}
	if q >= 1 {
		return vals[len(vals)-1], true
	}
	idx := int(q * float64(len(vals)))
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx], true
}

// Words reports the sampler footprint (Θ(k), deterministic).
func (s *Quantiles) Words() int { return s.sampler.Words() }

// MaxWords reports the peak footprint.
func (s *Quantiles) MaxWords() int { return s.sampler.MaxWords() }

// ExactQuantile computes the q-quantile of a window content exactly
// (ground truth for tests).
func ExactQuantile(values []uint64, q float64) uint64 {
	if len(values) == 0 {
		return 0
	}
	vals := append([]uint64(nil), values...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	idx := int(q * float64(len(vals)))
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

// ExactRank returns the rank (0-based count of strictly smaller values) of
// v within values.
func ExactRank(values []uint64, v uint64) int {
	r := 0
	for _, x := range values {
		if x < v {
			r++
		}
	}
	return r
}
