package apps

import (
	"math"
	"sort"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

func TestExactQuantile(t *testing.T) {
	vals := []uint64{50, 10, 40, 30, 20}
	if got := ExactQuantile(vals, 0); got != 10 {
		t.Fatalf("q0 = %d", got)
	}
	if got := ExactQuantile(vals, 0.5); got != 30 {
		t.Fatalf("q0.5 = %d", got)
	}
	if got := ExactQuantile(vals, 1); got != 50 {
		t.Fatalf("q1 = %d", got)
	}
	if got := ExactQuantile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %d", got)
	}
}

func TestExactRank(t *testing.T) {
	vals := []uint64{5, 1, 9, 5, 3}
	if got := ExactRank(vals, 5); got != 2 {
		t.Fatalf("rank(5) = %d, want 2", got)
	}
	if got := ExactRank(vals, 0); got != 0 {
		t.Fatalf("rank(0) = %d", got)
	}
	if got := ExactRank(vals, 100); got != 5 {
		t.Fatalf("rank(100) = %d", got)
	}
}

func TestQuantilesEmpty(t *testing.T) {
	q := NewQuantiles(xrand.New(1), 100, 10)
	if _, ok := q.Query(0.5); ok {
		t.Fatal("quantile from empty window")
	}
}

// TestQuantilesRankError: the estimated median's true window rank must be
// close to n/2 — within 5 standard deviations of the binomial rank noise.
func TestQuantilesRankError(t *testing.T) {
	const n = 2048
	const m = 3 * n
	const k = 256
	r := xrand.New(2)
	gen := stream.NewUniformValues(r.Split(), 1_000_000)
	values := make([]uint64, m)
	for i := range values {
		values[i] = gen.Next()
	}
	windowVals := values[m-n:]
	const runs = 40
	for _, qq := range []float64{0.1, 0.5, 0.9} {
		bad := 0
		for run := 0; run < runs; run++ {
			q := NewQuantiles(r.Split(), n, k)
			for i, v := range values {
				q.Observe(v, int64(i))
			}
			got, ok := q.Query(qq)
			if !ok {
				t.Fatal("no quantile")
			}
			rank := float64(ExactRank(windowVals, got))
			want := qq * n
			// Rank of the sample q-quantile has stddev ~ n*sqrt(q(1-q)/k).
			sigma := float64(n) * math.Sqrt(qq*(1-qq)/float64(k))
			if math.Abs(rank-want) > 5*sigma+float64(n)/float64(k)+1 {
				bad++
			}
		}
		if bad > runs/10 {
			t.Errorf("q=%.1f: %d/%d runs exceeded the 5-sigma rank error", qq, bad, runs)
		}
	}
}

func TestQuantilesSmallWindow(t *testing.T) {
	// k >= n: the sample is the whole window, so quantiles are exact.
	q := NewQuantiles(xrand.New(3), 8, 16)
	vals := []uint64{80, 10, 50, 30, 70, 20, 60, 40}
	for i, v := range vals {
		q.Observe(v, int64(i))
	}
	sorted := append([]uint64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, qq := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got, ok := q.Query(qq)
		if !ok {
			t.Fatal("no quantile")
		}
		if want := ExactQuantile(vals, qq); got != want {
			t.Errorf("q=%.2f: got %d want %d", qq, got, want)
		}
	}
	if q.Words() <= 0 || q.MaxWords() < q.Words() {
		t.Fatal("words accounting broken")
	}
}

func TestQuantilesSlidingWindowTracksRegimeShift(t *testing.T) {
	// Values jump from ~[0,1000) to ~[100000, 101000); once the window has
	// slid fully past the shift, the median must be in the new range.
	const n, k = 512, 64
	q := NewQuantiles(xrand.New(4), n, k)
	r := xrand.New(5)
	ts := int64(0)
	for i := 0; i < 2*n; i++ {
		q.Observe(r.Uint64n(1000), ts)
		ts++
	}
	for i := 0; i < 2*n; i++ {
		q.Observe(100_000+r.Uint64n(1000), ts)
		ts++
	}
	got, ok := q.Query(0.5)
	if !ok || got < 100_000 {
		t.Fatalf("median %d did not track the regime shift", got)
	}
}

func TestHeavyHittersDetectsPlanted(t *testing.T) {
	// One value takes 30% of the window; φ=0.2 must report it, and with
	// ε=0.1 nothing of frequency below 10% should usually be reported.
	const n, k = 4096, 600
	const hot = uint64(7777)
	r := xrand.New(6)
	h := NewHeavyHitters(r.Split(), n, k)
	gen := stream.NewUniformValues(r.Split(), 1000)
	var windowVals []uint64
	for i := 0; i < 2*n; i++ {
		v := gen.Next() + 10_000
		if i%10 < 3 {
			v = hot
		}
		h.Observe(v, int64(i))
		if i >= n {
			windowVals = append(windowVals, v)
		}
	}
	got, ok := h.Report(0.2, 0.1)
	if !ok {
		t.Fatal("no report")
	}
	found := false
	for _, v := range got {
		if v == hot {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted heavy hitter not reported: %v", got)
	}
	// The exact heavy hitters at φ=0.2 are exactly {hot}; the sampled
	// report may contain a few spurious borderline values, but values with
	// tiny frequency (uniform over 1000) cannot plausibly pass a 15%%
	// sample-frequency threshold with k=600.
	if len(got) > 2 {
		t.Fatalf("too many spurious heavy hitters: %v", got)
	}
	exact := ExactHeavyHitters(windowVals, 0.2)
	if len(exact) != 1 || exact[0] != hot {
		t.Fatalf("ground truth wrong: %v", exact)
	}
}

func TestHeavyHittersEmptyAndPanics(t *testing.T) {
	h := NewHeavyHitters(xrand.New(7), 16, 8)
	if _, ok := h.Report(0.5, 0.1); ok {
		t.Fatal("report from empty window")
	}
	h.Observe(1, 0)
	for _, bad := range [][2]float64{{0, 0.1}, {1.5, 0.1}, {0.5, 0}, {0.5, 0.5}, {0.5, 0.9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Report(%v) did not panic", bad)
				}
			}()
			h.Report(bad[0], bad[1])
		}()
	}
}

func TestExactHeavyHittersOrdering(t *testing.T) {
	vals := []uint64{1, 1, 1, 1, 2, 2, 2, 3, 3, 4}
	got := ExactHeavyHitters(vals, 0.2)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
	if got := ExactHeavyHitters(nil, 0.5); len(got) != 0 {
		t.Fatalf("empty input returned %v", got)
	}
}

func TestHeavyHittersUniformWindowHasNone(t *testing.T) {
	const n, k = 1024, 400
	r := xrand.New(8)
	h := NewHeavyHitters(r.Split(), n, k)
	gen := stream.NewUniformValues(r.Split(), 10_000)
	for i := 0; i < 2*n; i++ {
		h.Observe(gen.Next(), int64(i))
	}
	got, ok := h.Report(0.1, 0.05)
	if !ok {
		t.Fatal("no report")
	}
	if len(got) != 0 {
		t.Fatalf("uniform window reported heavy hitters: %v", got)
	}
}
