package slab

import (
	"sync"
	"testing"
	"unsafe"
)

func sameArray[T any](a, b []T) bool {
	return cap(a) > 0 && cap(b) > 0 && unsafe.SliceData(a[:cap(a)]) == unsafe.SliceData(b[:cap(b)])
}

func TestGetReusesPutBuffer(t *testing.T) {
	p := NewSlicePool[int](64)
	a := p.Get(10)
	for i := range a {
		a[i] = i + 1
	}
	p.Put(a)
	b := p.Get(8)
	if !sameArray(a, b) {
		t.Fatalf("Get did not reuse the recycled backing array")
	}
	if len(b) != 8 {
		t.Fatalf("Get(8) returned len %d", len(b))
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("recycled buffer not cleared at %d: %d", i, v)
		}
	}
}

func TestPutClearsFullCapacity(t *testing.T) {
	// Payloads hiding in the slack beyond len must be cleared too — the
	// pool must not pin strings from evicted batches.
	p := NewSlicePool[string](64)
	a := p.Get(10)
	for i := range a {
		a[i] = "payload"
	}
	p.Put(a[:3]) // Put sees len 3, cap 10: all ten slots must be wiped
	b := p.Get(10)
	if !sameArray(a, b) {
		t.Fatalf("expected reuse of the recycled array")
	}
	for i, v := range b {
		if v != "" {
			t.Fatalf("slack slot %d not cleared: %q", i, v)
		}
	}
}

func TestOversizedBufferDropped(t *testing.T) {
	p := NewSlicePool[int](16)
	a := p.Get(32) // beyond maxCap: allocated fresh, must not recycle
	p.Put(a)
	b := p.Get(32)
	if sameArray(a, b) {
		t.Fatalf("pool recycled a buffer over maxCap")
	}
	p.Put(nil) // zero-cap: silently dropped
}

func TestTooSmallRecycledBufferDropped(t *testing.T) {
	p := NewSlicePool[int](64)
	small := p.Get(4)
	p.Put(small)
	big := p.Get(32)
	if sameArray(small, big) {
		t.Fatalf("Get returned a buffer smaller than requested")
	}
	// The small buffer was consumed from the pool (and dropped); the big
	// one recycles normally.
	p.Put(big)
	again := p.Get(32)
	if !sameArray(big, again) {
		t.Fatalf("expected the big buffer back")
	}
}

func TestNewSlicePoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewSlicePool(0) did not panic")
		}
	}()
	NewSlicePool[int](0)
}

// TestConcurrentGetPut hammers the pool from many goroutines under -race:
// the entry boxes migrate between the two internal pools and must never
// carry a buffer visible to two holders at once.
func TestConcurrentGetPut(t *testing.T) {
	p := NewSlicePool[uint64](256)
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := 1 + (g+i)%200
				s := p.Get(n)
				for j := range s {
					if s[j] != 0 {
						t.Errorf("dirty recycled buffer (slot %d)", j)
						return
					}
					s[j] = uint64(g)<<32 | uint64(i)
				}
				p.Put(s)
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkSlicePoolGetPut(b *testing.B) {
	p := NewSlicePool[uint64](4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := p.Get(100)
		s[0] = uint64(i)
		p.Put(s)
	}
}
