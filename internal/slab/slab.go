// Package slab provides typed free-lists for the small fixed-shape scratch
// blocks the serving layer churns through on every request: element batches,
// timestamp and weight runs, staging scratch. The samplers themselves retain
// O(k·log n) words for their lifetime (DESIGN.md §6) and are NOT slab
// candidates; what the multi-tenant fabric must avoid is paying a fresh
// heap allocation per request for buffers whose shape is identical across
// requests and across tenants.
//
// A SlicePool is a sync.Pool of slices with three house rules layered on
// top:
//
//   - the stream.MaxRecycledCap discipline: buffers whose capacity grew past
//     the cap are dropped, not recycled, so one pathological batch cannot
//     pin a huge backing array in the pool forever;
//   - recycled buffers are cleared to their full capacity before they are
//     stored, so evicted payloads (strings, pointers) are not kept live by
//     pool slack — the same rule the skyband insert path follows;
//   - the slice headers themselves are boxed in reusable entries, so a
//     Get/Put cycle is allocation-free in steady state (a bare
//     sync.Pool.Put(s) would box the 24-byte header on every call).
//
// Pools are safe for concurrent use; the returned slices are not shared.
package slab

import "sync"

// entry boxes a slice header so it can cross the sync.Pool any-interface
// boundary without allocating. An entry lives in exactly one of the two
// pools at a time: in slices while it carries a buffer, in boxes while it
// waits to carry the next one.
type entry[T any] struct{ s []T }

// SlicePool is a typed free-list of []T scratch buffers. The zero value is
// not usable; construct with NewSlicePool.
type SlicePool[T any] struct {
	slices sync.Pool // *entry[T] carrying a cleared buffer
	boxes  sync.Pool // *entry[T] with s == nil, awaiting reuse
	maxCap int
}

// NewSlicePool returns a pool that recycles buffers of capacity at most
// maxCap (larger ones are dropped at Put). Panics if maxCap <= 0 — callers
// pass stream.MaxRecycledCap or a deliberate bound, never a default.
func NewSlicePool[T any](maxCap int) *SlicePool[T] {
	if maxCap <= 0 {
		panic("slab: NewSlicePool with maxCap <= 0")
	}
	return &SlicePool[T]{maxCap: maxCap}
}

// Get returns a slice of length n. When a recycled buffer with sufficient
// capacity is available its storage is reused (contents are zero — Put
// cleared them); otherwise a fresh slice is allocated. A recycled buffer
// that is too small for n is dropped rather than returned to the pool: the
// workload's batch sizes converge, so the pool fills back up with
// full-sized buffers from the allocation path's Puts.
func (p *SlicePool[T]) Get(n int) []T {
	if v := p.slices.Get(); v != nil {
		e := v.(*entry[T])
		s := e.s
		e.s = nil
		p.boxes.Put(e)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]T, n)
}

// Put recycles a buffer for a future Get. The buffer is cleared to its full
// capacity first; the caller must not retain any alias to it. Buffers with
// zero capacity or capacity beyond the pool's cap are dropped.
func (p *SlicePool[T]) Put(s []T) {
	c := cap(s)
	if c == 0 || c > p.maxCap {
		return
	}
	s = s[:c]
	clear(s)
	var e *entry[T]
	if v := p.boxes.Get(); v != nil {
		e = v.(*entry[T])
	} else {
		e = new(entry[T])
	}
	e.s = s[:0]
	p.slices.Put(e)
}
