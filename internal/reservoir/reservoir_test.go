package reservoir

import (
	"math"
	"testing"
	"testing/quick"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

func elem(i uint64) stream.Element[uint64] {
	return stream.Element[uint64]{Value: i, Index: i, TS: int64(i)}
}

func TestSingleEmpty(t *testing.T) {
	s := NewSingle[uint64](xrand.New(1))
	if _, ok := s.Sample(); ok {
		t.Fatal("empty reservoir returned a sample")
	}
	if s.Count() != 0 {
		t.Fatal("empty reservoir has nonzero count")
	}
}

func TestSingleFirstElementAlwaysSampled(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		s := NewSingle[uint64](xrand.New(seed))
		s.Observe(elem(7))
		st, ok := s.Sample()
		if !ok || st.Elem.Index != 7 {
			t.Fatalf("seed %d: first element not sampled", seed)
		}
	}
}

func TestSingleUniform(t *testing.T) {
	// Over m=20 elements, each should be the final sample about trials/m
	// times.
	const m, trials = 20, 100000
	r := xrand.New(33)
	counts := make([]int, m)
	for tr := 0; tr < trials; tr++ {
		s := NewSingle[uint64](r)
		for i := uint64(0); i < m; i++ {
			s.Observe(elem(i))
		}
		st, _ := s.Sample()
		counts[st.Elem.Index]++
	}
	want := float64(trials) / m
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("element %d sampled %d times, want about %.0f", i, c, want)
		}
	}
}

// TestSinglePrefixSuffixIndependence verifies the property the paper's
// Section 1.3.4 independence argument uses: the sample after the first i
// elements and the event "the final sample lies in the suffix" are
// independent, and conditioned on landing in the suffix the final sample is
// uniform there.
func TestSinglePrefixSuffixIndependence(t *testing.T) {
	const prefix, total, trials = 4, 8, 160000
	r := xrand.New(44)
	joint := make(map[[2]uint64]int)
	for tr := 0; tr < trials; tr++ {
		s := NewSingle[uint64](r)
		for i := uint64(0); i < prefix; i++ {
			s.Observe(elem(i))
		}
		mid, _ := s.Sample()
		midIdx := mid.Elem.Index
		for i := uint64(prefix); i < total; i++ {
			s.Observe(elem(i))
		}
		fin, _ := s.Sample()
		if fin.Elem.Index >= prefix { // final sample in suffix
			joint[[2]uint64{midIdx, fin.Elem.Index}]++
		}
	}
	// P(mid = a, fin = b in suffix) should factor as (1/prefix) * (1/total)
	// for every a in prefix, b in suffix.
	want := float64(trials) / (prefix * total)
	for a := uint64(0); a < prefix; a++ {
		for b := uint64(prefix); b < total; b++ {
			c := float64(joint[[2]uint64{a, b}])
			if math.Abs(c-want) > 5*math.Sqrt(want) {
				t.Errorf("joint(mid=%d, fin=%d) = %.0f, want about %.0f", a, b, c, want)
			}
		}
	}
}

func TestSingleReset(t *testing.T) {
	s := NewSingle[uint64](xrand.New(2))
	s.Observe(elem(1))
	s.Reset()
	if _, ok := s.Sample(); ok {
		t.Fatal("reset reservoir still has a sample")
	}
	if s.Count() != 0 {
		t.Fatal("reset reservoir has nonzero count")
	}
	s.Observe(elem(9))
	st, ok := s.Sample()
	if !ok || st.Elem.Index != 9 {
		t.Fatal("reservoir unusable after Reset")
	}
}

func TestSingleWords(t *testing.T) {
	s := NewSingle[uint64](xrand.New(3))
	if s.Words() != 1 {
		t.Fatalf("empty Words = %d, want 1", s.Words())
	}
	s.Observe(elem(0))
	if s.Words() != 1+stream.StoredWords {
		t.Fatalf("Words = %d, want %d", s.Words(), 1+stream.StoredWords)
	}
	if s.MaxWords() != s.Words() {
		t.Fatalf("MaxWords = %d, want %d", s.MaxWords(), s.Words())
	}
}

func TestSingleForEachStored(t *testing.T) {
	s := NewSingle[uint64](xrand.New(4))
	n := 0
	s.ForEachStored(func(*stream.Stored[uint64]) { n++ })
	if n != 0 {
		t.Fatal("empty reservoir visited slots")
	}
	s.Observe(elem(5))
	s.ForEachStored(func(st *stream.Stored[uint64]) {
		n++
		st.Aux = "tag"
	})
	if n != 1 {
		t.Fatalf("visited %d slots, want 1", n)
	}
	st, _ := s.Sample()
	if st.Aux != "tag" {
		t.Fatal("Aux not preserved on the live slot")
	}
}

func TestKHoldsAllWhenSmall(t *testing.T) {
	s := NewK[uint64](xrand.New(5), 10)
	for i := uint64(0); i < 6; i++ {
		s.Observe(elem(i))
	}
	got := s.Sample()
	if len(got) != 6 {
		t.Fatalf("got %d slots, want all 6", len(got))
	}
	seen := map[uint64]bool{}
	for _, st := range got {
		seen[st.Elem.Index] = true
	}
	for i := uint64(0); i < 6; i++ {
		if !seen[i] {
			t.Fatalf("element %d missing while count < k", i)
		}
	}
}

func TestKDistinct(t *testing.T) {
	r := xrand.New(6)
	f := func(seed uint16) bool {
		s := NewK[uint64](r, 5)
		for i := uint64(0); i < 50; i++ {
			s.Observe(elem(i))
		}
		seen := map[uint64]bool{}
		for _, st := range s.Sample() {
			if seen[st.Elem.Index] {
				return false
			}
			seen[st.Elem.Index] = true
		}
		return len(seen) == 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKUniformSubsets(t *testing.T) {
	// k=2 over m=5 elements: all C(5,2)=10 subsets equally likely.
	const trials = 100000
	r := xrand.New(7)
	counts := map[[2]uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewK[uint64](r, 2)
		for i := uint64(0); i < 5; i++ {
			s.Observe(elem(i))
		}
		got := s.Sample()
		a, b := got[0].Elem.Index, got[1].Elem.Index
		if a > b {
			a, b = b, a
		}
		counts[[2]uint64{a, b}]++
	}
	if len(counts) != 10 {
		t.Fatalf("saw %d subsets, want 10", len(counts))
	}
	want := float64(trials) / 10
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("subset %v: %d, want about %.0f", k, c, want)
		}
	}
}

func TestKPerElementInclusion(t *testing.T) {
	// Every element should be included with probability k/m.
	const k, m, trials = 3, 12, 60000
	r := xrand.New(8)
	counts := make([]int, m)
	for tr := 0; tr < trials; tr++ {
		s := NewK[uint64](r, k)
		for i := uint64(0); i < m; i++ {
			s.Observe(elem(i))
		}
		for _, st := range s.Sample() {
			counts[st.Elem.Index]++
		}
	}
	p := float64(k) / m
	want := p * trials
	sigma := math.Sqrt(trials * p * (1 - p))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*sigma {
			t.Errorf("element %d included %d times, want about %.0f", i, c, want)
		}
	}
}

func TestKResetAndWords(t *testing.T) {
	s := NewK[uint64](xrand.New(9), 4)
	if s.Words() != 2 {
		t.Fatalf("empty K Words = %d, want 2", s.Words())
	}
	for i := uint64(0); i < 10; i++ {
		s.Observe(elem(i))
	}
	if s.Words() != 2+4*stream.StoredWords {
		t.Fatalf("full K Words = %d, want %d", s.Words(), 2+4*stream.StoredWords)
	}
	if s.MaxWords() != s.Words() {
		t.Fatalf("MaxWords = %d want %d", s.MaxWords(), s.Words())
	}
	s.Reset()
	if s.Count() != 0 || len(s.Sample()) != 0 {
		t.Fatal("K.Reset did not clear state")
	}
	if s.Cap() != 4 {
		t.Fatal("K.Cap changed after reset")
	}
}

func TestKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewK(0) did not panic")
		}
	}()
	NewK[uint64](xrand.New(1), 0)
}

func TestKForEachStoredAuxSurvivesNonReplacement(t *testing.T) {
	s := NewK[uint64](xrand.New(10), 2)
	s.Observe(elem(0))
	s.Observe(elem(1))
	s.ForEachStored(func(st *stream.Stored[uint64]) { st.Aux = st.Elem.Index })
	s.Observe(elem(2)) // may or may not replace
	s.ForEachStored(func(st *stream.Stored[uint64]) {
		if st.Elem.Index <= 1 && st.Aux != st.Elem.Index {
			t.Fatal("Aux lost on a slot that was not replaced")
		}
		if st.Elem.Index == 2 && st.Aux != nil {
			t.Fatal("fresh slot carries stale Aux")
		}
	})
}

func TestFastSingleMatchesSingleDistribution(t *testing.T) {
	const m, trials = 16, 80000
	r := xrand.New(11)
	counts := make([]int, m)
	for tr := 0; tr < trials; tr++ {
		s := NewFastSingle[uint64](r)
		for i := uint64(0); i < m; i++ {
			s.Observe(elem(i))
		}
		st, ok := s.Sample()
		if !ok {
			t.Fatal("FastSingle empty after observations")
		}
		counts[st.Elem.Index]++
	}
	want := float64(trials) / m
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("element %d sampled %d times, want about %.0f", i, c, want)
		}
	}
}

func TestFastSingleCountAndWords(t *testing.T) {
	s := NewFastSingle[uint64](xrand.New(12))
	if s.Words() != 3 || s.MaxWords() != 3 {
		t.Fatalf("empty FastSingle words = %d/%d", s.Words(), s.MaxWords())
	}
	for i := uint64(0); i < 100; i++ {
		s.Observe(elem(i))
	}
	if s.Count() != 100 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Words() != 3+stream.StoredWords {
		t.Fatalf("Words = %d", s.Words())
	}
}
