package reservoir

import (
	"slidingsample/internal/snap"
	"slidingsample/internal/stream"
)

// Snapshot encode/decode helpers. They are exported (unlike the fields
// they capture) because internal/core embeds reservoirs inside its own
// snapshots and encodes them on a shared snap.Writer — no per-reservoir
// header, the enclosing sampler owns the header.

// EncodeSingle writes the full state of a Single.
func EncodeSingle[T any](w *snap.Writer, s *Single[T]) {
	snap.WriteRand(w, s.rng)
	w.U64(s.count)
	snap.WriteStored(w, s.cur)
}

// DecodeSingle reads a Single previously written by EncodeSingle.
func DecodeSingle[T any](r *snap.Reader) *Single[T] {
	s := &Single[T]{}
	s.rng = snap.ReadRand(r)
	s.count = r.U64()
	s.cur = snap.ReadStored[T](r)
	if r.Err() == nil && s.rng == nil {
		r.Failf("reservoir.Single missing rng")
	}
	return s
}

// EncodeK writes the full state of a K.
func EncodeK[T any](w *snap.Writer, s *K[T]) {
	snap.WriteRand(w, s.rng)
	w.Int(s.k)
	w.U64(s.count)
	w.Len(len(s.slots))
	for _, st := range s.slots {
		snap.WriteStored(w, st)
	}
}

// DecodeK reads a K previously written by EncodeK.
func DecodeK[T any](r *snap.Reader) *K[T] {
	s := &K[T]{}
	s.rng = snap.ReadRand(r)
	s.k = r.Int()
	s.count = r.U64()
	if r.Err() != nil {
		return s
	}
	if s.rng == nil {
		r.Failf("reservoir.K missing rng")
		return s
	}
	if s.k <= 0 || s.k > snap.MaxParam {
		r.Failf("reservoir.K with k %d", s.k)
		return s
	}
	n := r.Len(s.k)
	s.slots = make([]*stream.Stored[T], 0, snap.CapHint(s.k))
	for i := 0; i < n && r.Err() == nil; i++ {
		s.slots = append(s.slots, snap.ReadStored[T](r))
	}
	return s
}

// EncodeFastSingle writes the full state of a FastSingle.
func EncodeFastSingle[T any](w *snap.Writer, s *FastSingle[T]) {
	snap.WriteRand(w, s.rng)
	w.U64(s.count)
	w.U64(s.skip)
	w.F64(s.w)
	snap.WriteStored(w, s.cur)
}

// DecodeFastSingle reads a FastSingle previously written by
// EncodeFastSingle.
func DecodeFastSingle[T any](r *snap.Reader) *FastSingle[T] {
	s := &FastSingle[T]{}
	s.rng = snap.ReadRand(r)
	s.count = r.U64()
	s.skip = r.U64()
	s.w = r.F64()
	s.cur = snap.ReadStored[T](r)
	if r.Err() == nil && s.rng == nil {
		r.Failf("reservoir.FastSingle missing rng")
	}
	return s
}
