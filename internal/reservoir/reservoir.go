// Package reservoir implements Vitter's reservoir sampling, the one-pass
// substrate the paper builds on ("for each bucket we maintain a random
// sample using any one-pass algorithm (e.g., the reservoir sampling
// method)", Section 1.3.1).
//
// Three samplers are provided:
//
//   - Single: Algorithm R specialised to one sample (Θ(1) words). This is
//     the in-bucket sampler of Theorems 2.1 and 3.9.
//   - K: Algorithm R with k slots — a uniform k-sample WITHOUT replacement
//     of everything observed (Θ(k) words). This is the in-bucket sampler of
//     Theorem 2.2.
//   - FastSingle: Vitter-style skip-based variant (Algorithm L's skip
//     computation specialised to one slot). An engineering extra for the
//     E11 throughput table; the paper itself only needs Algorithm R.
//
// The property the paper's independence argument (Section 1.3.4) relies on —
// conditioned on the sample after i arrivals, the decision to replace it
// later depends only on later coin flips — holds for Algorithm R by
// construction and is verified by test.
package reservoir

import (
	"math"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// Single maintains one uniform sample of all elements observed since the
// last Reset, using Θ(1) words.
type Single[T any] struct {
	rng   *xrand.Rand
	count uint64
	cur   *stream.Stored[T]
}

// NewSingle returns an empty single-sample reservoir using the given
// generator (not copied; do not share a generator across goroutines).
func NewSingle[T any](rng *xrand.Rand) *Single[T] {
	return &Single[T]{rng: rng}
}

// Observe feeds one element. The i-th observed element becomes the sample
// with probability exactly 1/i.
func (s *Single[T]) Observe(e stream.Element[T]) {
	s.count++
	if s.rng.Uint64n(s.count) == 0 {
		s.cur = &stream.Stored[T]{Elem: e}
	}
}

// ObserveRun feeds a run of elements (indexes already assigned by the
// caller). It is the batched-ingest hot path: state and randomness are
// identical to calling Observe per element — the same count sequence drives
// the same draws — but the counter and generator stay in locals and the
// current-sample store happens at most once per run position, so the
// per-element bookkeeping cost is amortized across the run.
func (s *Single[T]) ObserveRun(es []stream.Element[T]) {
	cnt := s.count
	rng := s.rng
	cur := s.cur
	for i := range es {
		cnt++
		if rng.Uint64n(cnt) == 0 {
			cur = &stream.Stored[T]{Elem: es[i]}
		}
	}
	s.count = cnt
	s.cur = cur
}

// Sample returns the current sample holder, or ok=false when nothing has
// been observed. The returned pointer is the live slot: the Section 5
// application layer attaches auxiliary state to it.
func (s *Single[T]) Sample() (*stream.Stored[T], bool) {
	return s.cur, s.cur != nil
}

// Count returns the number of elements observed since the last Reset.
func (s *Single[T]) Count() uint64 { return s.count }

// Reset forgets everything (used when a bucket closes and the reservoir is
// recycled for the next bucket).
func (s *Single[T]) Reset() {
	s.count = 0
	s.cur = nil
}

// ForEachStored implements stream.SlotVisitor.
func (s *Single[T]) ForEachStored(f func(*stream.Stored[T])) {
	if s.cur != nil {
		f(s.cur)
	}
}

// Words implements stream.MemoryReporter: one stored element plus the
// arrival counter.
func (s *Single[T]) Words() int {
	w := 1 // count
	if s.cur != nil {
		w += stream.StoredWords
	}
	return w
}

// MaxWords implements stream.MemoryReporter. A Single's footprint is
// constant once the first element arrives, so the peak equals
// 1 + StoredWords after any observation.
func (s *Single[T]) MaxWords() int {
	if s.count == 0 && s.cur == nil {
		return 1
	}
	return 1 + stream.StoredWords
}

// K maintains a uniform k-sample without replacement of all elements
// observed since the last Reset (Algorithm R). While fewer than k elements
// have been observed it holds all of them — exactly the behaviour
// Theorem 2.2 needs from partial buckets ("either X_B = C, if |C| < k, or
// X_B is a k-sample of C").
type K[T any] struct {
	rng   *xrand.Rand
	k     int
	count uint64
	slots []*stream.Stored[T]
}

// NewK returns an empty k-slot reservoir. Panics if k <= 0.
func NewK[T any](rng *xrand.Rand, k int) *K[T] {
	if k <= 0 {
		panic("reservoir: NewK with k <= 0")
	}
	return &K[T]{rng: rng, k: k, slots: make([]*stream.Stored[T], 0, k)}
}

// Observe feeds one element.
func (s *K[T]) Observe(e stream.Element[T]) {
	s.count++
	if len(s.slots) < s.k {
		s.slots = append(s.slots, &stream.Stored[T]{Elem: e})
		return
	}
	if j := s.rng.Uint64n(s.count); j < uint64(s.k) {
		s.slots[j] = &stream.Stored[T]{Elem: e}
	}
}

// Sample returns the current slots (all observed elements when count < k).
// The returned slice is freshly allocated; the pointed-to slots are live.
func (s *K[T]) Sample() []*stream.Stored[T] {
	out := make([]*stream.Stored[T], len(s.slots))
	copy(out, s.slots)
	return out
}

// Count returns the number of elements observed since the last Reset.
func (s *K[T]) Count() uint64 { return s.count }

// Cap returns k.
func (s *K[T]) Cap() int { return s.k }

// Reset forgets everything.
func (s *K[T]) Reset() {
	s.count = 0
	s.slots = s.slots[:0]
}

// ForEachStored implements stream.SlotVisitor.
func (s *K[T]) ForEachStored(f func(*stream.Stored[T])) {
	for _, st := range s.slots {
		f(st)
	}
}

// Words implements stream.MemoryReporter.
func (s *K[T]) Words() int {
	return 2 + len(s.slots)*stream.StoredWords // count + k + slots
}

// MaxWords implements stream.MemoryReporter: the slot count is monotone
// between resets and capped at k.
func (s *K[T]) MaxWords() int {
	n := len(s.slots)
	if s.count >= uint64(s.k) {
		n = s.k
	}
	return 2 + n*stream.StoredWords
}

// FastSingle is a skip-based single-sample reservoir: instead of one RNG
// draw per element it draws the gap until the next replacement (geometric
// over a changing success probability, computed in closed form à la
// Vitter's Algorithm L). Statistically identical to Single; used in the E11
// throughput comparison.
type FastSingle[T any] struct {
	rng   *xrand.Rand
	count uint64
	skip  uint64
	w     float64
	cur   *stream.Stored[T]
}

// NewFastSingle returns an empty skip-based single-sample reservoir.
func NewFastSingle[T any](rng *xrand.Rand) *FastSingle[T] {
	return &FastSingle[T]{rng: rng}
}

// Observe feeds one element.
func (s *FastSingle[T]) Observe(e stream.Element[T]) {
	s.count++
	if s.count == 1 {
		s.cur = &stream.Stored[T]{Elem: e}
		s.w = s.nextW()
		s.skip = s.nextSkip()
		return
	}
	if s.skip > 0 {
		s.skip--
		return
	}
	s.cur = &stream.Stored[T]{Elem: e}
	s.w = s.w * s.nextW()
	s.skip = s.nextSkip()
}

func (s *FastSingle[T]) nextW() float64 {
	// W ~ U^(1/k) with k=1: plain uniform in (0,1).
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	return u
}

func (s *FastSingle[T]) nextSkip() uint64 {
	// Number of elements skipped before the next replacement:
	// floor(log(U) / log(1-W)).
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	g := math.Log(u) / math.Log(1-s.w)
	if g < 0 || math.IsNaN(g) || math.IsInf(g, 0) || g > float64(math.MaxInt64) {
		return math.MaxUint32
	}
	return uint64(g)
}

// Sample returns the current sample holder, or ok=false when empty.
func (s *FastSingle[T]) Sample() (*stream.Stored[T], bool) {
	return s.cur, s.cur != nil
}

// Count returns the number of elements observed.
func (s *FastSingle[T]) Count() uint64 { return s.count }

// Words implements stream.MemoryReporter.
func (s *FastSingle[T]) Words() int {
	w := 3 // count, skip, w
	if s.cur != nil {
		w += stream.StoredWords
	}
	return w
}

// MaxWords implements stream.MemoryReporter.
func (s *FastSingle[T]) MaxWords() int {
	if s.count == 0 {
		return 3
	}
	return 3 + stream.StoredWords
}
