package core

import (
	"fmt"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// TSWOR maintains a uniform k-sample WITHOUT replacement over a
// timestamp-based sliding window of horizon t0, using Θ(k·log n) memory
// words at all times — Theorem 4.4, the black-box reduction from sampling
// without replacement to sampling with replacement.
//
// Construction (Section 4): run k independent single-sample TSWR instances
// R_0, ..., R_{k-1}, where instance R_i samples uniformly from all active
// elements EXCEPT the i newest. The delay is realized by feeding R_i element
// p_{j-i} when p_j arrives, from a shared ring buffer of the k most recent
// elements; per Lemma 4.1, a delayed element that is already expired on
// arrival is skipped (its instance's whole structure is expired then too).
//
// Query (Lemmas 4.2/4.3): order the n active elements oldest (1) to newest
// (n). R_{k-1} is a 1-sample of [1, n-k+1]; inductively extend an a-sample
// of [1, b] to an (a+1)-sample of [1, b+1] using the fresh 1-sample R of
// [1, b+1]:
//
//	S ∪ {newest of the extended domain}  if R ∈ S,
//	S ∪ {R}                              otherwise,
//
// which the paper shows is uniform over all (a+1)-subsets. After k-1 steps
// the result is a uniform k-subset of the whole window. When the window
// holds n ≤ k elements the sample is the window itself, read from the ring
// buffer (the n active elements are always the n newest arrivals).
type TSWOR[T any] struct {
	t0  int64
	k   int
	w   window.Timestamp
	rng *xrand.Rand

	insts []*TSWR[T] // insts[i] samples actives among all-but-the-newest-i

	// ring of the k most recent arrivals
	//swlint:allow wordsacct counted by occupancy tailLen in wordsWithTail, not capacity
	tail    []stream.Element[T]
	tailPos int // next write position
	tailLen int

	// scratch holds the index-assigned elements of the batch being ingested,
	// so delayed feeds within the batch read a flat slice instead of the
	// ring. Transport, not sampler state; not counted by Words.
	scratch []stream.Element[T] //swlint:allow wordsacct recycled batch transport, empty between calls

	count    uint64
	now      int64
	started  bool
	maxWords int
}

// NewTSWOR returns a sampler for a k-sample without replacement over a
// timestamp-based window of horizon t0 ticks. Panics if t0 <= 0 or k <= 0.
func NewTSWOR[T any](rng *xrand.Rand, t0 int64, k int) *TSWOR[T] {
	if t0 <= 0 {
		panic("core: NewTSWOR with t0 <= 0")
	}
	if k <= 0 {
		panic("core: NewTSWOR with k <= 0")
	}
	s := &TSWOR[T]{
		t0:    t0,
		k:     k,
		w:     window.Timestamp{T0: t0},
		rng:   rng.Split(),
		insts: make([]*TSWR[T], k),
		tail:  make([]stream.Element[T], k),
	}
	for i := range s.insts {
		s.insts[i] = NewTSWR[T](rng.Split(), t0, 1)
	}
	s.maxWords = s.Words()
	return s
}

// tailFromEnd returns the element i places from the newest arrival
// (i = 0 is the newest). Panics if fewer than i+1 elements have arrived.
func (s *TSWOR[T]) tailFromEnd(i int) stream.Element[T] {
	if i >= s.tailLen {
		panic("core: TSWOR tailFromEnd out of range")
	}
	idx := (s.tailPos - 1 - i + 2*s.k) % s.k
	return s.tail[idx]
}

// Observe feeds the next stream element. Timestamps must be non-decreasing.
func (s *TSWOR[T]) Observe(value T, ts int64) {
	if s.started && ts < s.now {
		panic(fmt.Sprintf("core: TSWOR time went backwards: %d after %d", ts, s.now))
	}
	s.now = ts
	s.started = true
	e := stream.Element[T]{Value: value, Index: s.count, TS: ts}
	s.count++

	// Instance 0 sees the element immediately; instance i sees the element
	// that arrived i steps ago (if any), all under the real clock ts.
	s.insts[0].observeAt(e, ts)
	for i := 1; i < s.k; i++ {
		if i <= s.tailLen {
			s.insts[i].observeAt(s.tailFromEnd(i-1), ts)
		} else {
			// Not enough history yet; still advance the instance clock so
			// its expiry state tracks real time.
			s.insts[i].advance(ts)
		}
	}

	// Now record e as the newest arrival.
	s.tail[s.tailPos] = e
	s.tailPos = (s.tailPos + 1) % s.k
	if s.tailLen < s.k {
		s.tailLen++
	}
	if w := s.Words(); w > s.maxWords {
		s.maxWords = w
	}
}

// ObserveBatch feeds a run of elements (non-decreasing timestamps; Index is
// assigned here). State and randomness are identical to looping Observe —
// every delayed instance sees the same elements under the same clock in the
// same order — but the batch bookkeeping is amortized: delayed feeds for
// in-batch history index a flat slice instead of doing ring-buffer modular
// arithmetic, and the ring itself is rewritten once at batch end (only the
// final k arrivals can survive a batch) rather than once per element.
func (s *TSWOR[T]) ObserveBatch(batch []stream.Element[T]) {
	if len(batch) == 0 {
		return
	}
	s.scratch = s.scratch[:0]
	for _, e := range batch {
		e.Index = s.count
		s.count++
		s.scratch = append(s.scratch, e)
	}
	for _, inst := range s.insts {
		inst.d.beginBatch()
	}
	defer func() {
		for _, inst := range s.insts {
			inst.d.endBatch()
		}
	}()
	preTail := s.tailLen
	for j := range s.scratch {
		e := s.scratch[j]
		if s.started && e.TS < s.now {
			panic(fmt.Sprintf("core: TSWOR time went backwards: %d after %d", e.TS, s.now))
		}
		s.now = e.TS
		s.started = true
		s.insts[0].observeAt(e, e.TS)
		for i := 1; i < s.k; i++ {
			// The element that arrived i steps before e: inside the batch for
			// i <= j, otherwise from the pre-batch ring buffer.
			switch {
			case i <= j:
				s.insts[i].observeAt(s.scratch[j-i], e.TS)
			case i-j <= preTail:
				s.insts[i].observeAt(s.tailFromEnd(i-j-1), e.TS)
			default:
				s.insts[i].advance(e.TS)
			}
		}
		// Footprint checkpoint after every element, exactly like Observe; the
		// ring write is deferred, so account for its would-be length.
		effTail := preTail + j + 1
		if effTail > s.k {
			effTail = s.k
		}
		if w := s.wordsWithTail(effTail); w > s.maxWords {
			s.maxWords = w
		}
	}
	// Rewrite the ring: only the last min(k, batch) arrivals survive, landing
	// at the same positions per-element writes would have left them.
	skip := 0
	if len(s.scratch) > s.k {
		skip = len(s.scratch) - s.k
	}
	s.tailPos = (s.tailPos + skip) % s.k
	for _, e := range s.scratch[skip:] {
		s.tail[s.tailPos] = e
		s.tailPos = (s.tailPos + 1) % s.k
		if s.tailLen < s.k {
			s.tailLen++
		}
	}
	clear(s.scratch)
	s.scratch = s.scratch[:0]
}

// activeTail returns the active elements currently in the ring buffer,
// oldest first.
func (s *TSWOR[T]) activeTail(now int64) []stream.Element[T] {
	var out []stream.Element[T]
	for i := s.tailLen - 1; i >= 0; i-- {
		e := s.tailFromEnd(i)
		if s.w.Active(e.TS, now) {
			out = append(out, e)
		}
	}
	return out
}

// SampleAt returns min(k, n) distinct elements forming a uniform
// without-replacement sample of the active window at time now. ok is false
// when the window is empty. Querying advances the clock.
func (s *TSWOR[T]) SampleAt(now int64) ([]stream.Element[T], bool) {
	if s.started && now < s.now {
		now = s.now // clocks never rewind; keep query monotone
	}
	s.now = now
	s.started = true

	// If fewer than k elements can be active, the window is contained in the
	// ring buffer: the active elements are always the newest arrivals.
	if s.tailLen < s.k {
		act := s.activeTail(now)
		return act, len(act) > 0
	}
	oldestBuffered := s.tailFromEnd(s.k - 1)
	if s.w.Expired(oldestBuffered.TS, now) {
		// n < k: everything active is buffered.
		act := s.activeTail(now)
		return act, len(act) > 0
	}

	// n >= k: Lemma 4.3 induction over the delayed instances.
	res := make([]stream.Element[T], 0, s.k)
	seen := make(map[uint64]bool, s.k)
	for j := 1; j <= s.k; j++ {
		i := s.k - j // instance index: domain = actives except the newest i
		one, ok := s.insts[i].SampleAt(now)
		if !ok {
			// Cannot happen when n >= k: instance i's domain has n-i >= 1
			// elements. Defend anyway.
			panic("core: TSWOR instance empty although n >= k")
		}
		cand := one[0]
		if seen[cand.Index] {
			newest := s.tailFromEnd(i) // the element extending the domain
			res = append(res, newest)
			seen[newest.Index] = true
		} else {
			res = append(res, cand)
			seen[cand.Index] = true
		}
	}
	return res, true
}

// Sample queries at the latest observed time.
func (s *TSWOR[T]) Sample() ([]stream.Element[T], bool) {
	return s.SampleAt(s.now)
}

// K returns the sample-size parameter.
func (s *TSWOR[T]) K() int { return s.k }

// Horizon returns t0.
func (s *TSWOR[T]) Horizon() int64 { return s.t0 }

// Count returns the number of elements observed.
func (s *TSWOR[T]) Count() uint64 { return s.count }

// ForEachStored implements stream.SlotVisitor: visits every slot of every
// delayed instance. The ring-buffer elements are not slots (they are exact
// window content, not samples) and are not visited.
func (s *TSWOR[T]) ForEachStored(f func(*stream.Stored[T])) {
	for _, inst := range s.insts {
		inst.ForEachStored(f)
	}
}

// Words implements stream.MemoryReporter: the k delayed instances plus the
// k-element ring buffer plus four scalars.
func (s *TSWOR[T]) Words() int { return s.wordsWithTail(s.tailLen) }

// wordsWithTail is Words with an explicit ring-buffer length (the batched
// ingest path defers ring writes and accounts for them here).
func (s *TSWOR[T]) wordsWithTail(tailLen int) int {
	w := 4 + tailLen*stream.StoredWords
	for _, inst := range s.insts {
		w += inst.Words()
	}
	return w
}

// MaxWords implements stream.MemoryReporter.
func (s *TSWOR[T]) MaxWords() int { return s.maxWords }
