// Package core implements the paper's contribution: optimal-memory uniform
// random sampling from sliding windows (Braverman, Ostrovsky, Zaniolo,
// "Optimal sampling from sliding windows", PODS 2009 / JCSS 78(1), 2012).
//
// Four samplers are provided, one per problem variant:
//
//   - SeqWR  — k samples WITH replacement, sequence-based window of size n,
//     Θ(k) words deterministic (Theorem 2.1, equivalent-width partitions).
//   - SeqWOR — k samples WITHOUT replacement, sequence-based window,
//     Θ(k) words deterministic (Theorem 2.2).
//   - TSWR   — k samples WITH replacement, timestamp-based window of horizon
//     t0, Θ(k·log n) words deterministic (Theorem 3.9: covering
//     decomposition + generating implicit events).
//   - TSWOR  — k samples WITHOUT replacement, timestamp-based window,
//     Θ(k·log n) words deterministic (Theorem 4.4: black-box reduction to k
//     delayed with-replacement samplers).
//
// All samplers:
//
//   - are deterministic in memory — the bounds above hold at every instant
//     of every run, not in expectation (this is the paper's headline
//     improvement over Babcock–Datar–Motwani chain/priority sampling);
//   - assign arrival indexes themselves (the i-th Observe call carries
//     index i-1) and require non-decreasing timestamps where relevant;
//   - expose Words/MaxWords under the cost model of DESIGN.md §6;
//   - expose ForEachStored so the Section 5 application layer (Theorem 5.1
//     translations) can attach per-slot auxiliary state;
//   - produce samples for non-overlapping windows that are independent
//     (Section 1.3.4), a property inherited from the reservoir substrate.
//
// None of the samplers is safe for concurrent use; wrap with a mutex or give
// each goroutine its own instance.
//
// All four satisfy stream.Sampler (the sequence pair) or stream.TimedSampler
// (the timestamp pair), including the batched ObserveBatch ingest path, which
// is sample-path identical to looped Observe under equal seeds.
package core

import "slidingsample/internal/stream"

// Compile-time conformance to the unified sampler interfaces.
var (
	_ stream.Sampler[int]      = (*SeqWR[int])(nil)
	_ stream.Sampler[int]      = (*SeqWOR[int])(nil)
	_ stream.TimedSampler[int] = (*TSWR[int])(nil)
	_ stream.TimedSampler[int] = (*TSWOR[int])(nil)
	_ stream.SlotSampler[int]  = (*SeqWR[int])(nil)
	_ stream.SlotSampler[int]  = (*SeqWOR[int])(nil)
	_ stream.SlotSampler[int]  = (*TSWR[int])(nil)
)
