package core

// Fuzz targets: byte strings decode to (arrival/gap/query) scripts that
// drive the timestamp samplers through arbitrary interleavings. The
// properties checked are the hard invariants — no panic, samples always
// active, WOR samples always distinct, memory within the deterministic
// bound. They run over the seed corpus during a normal `go test`, or
// explore further with:
//
//	go test -fuzz FuzzTSWR ./internal/core/

import (
	"testing"

	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// script decodes bytes into a deterministic op sequence: each byte b means
// "advance the clock by b%5 ticks, then (arrival if b%3 != 0, else query)".
func runScript(t *testing.T, data []byte, t0 int64, k int, wor bool) {
	t.Helper()
	if len(data) == 0 {
		return
	}
	r := xrand.New(uint64(len(data)))
	w := window.Timestamp{T0: t0}
	var wrS *TSWR[uint64]
	var worS *TSWOR[uint64]
	if wor {
		worS = NewTSWOR[uint64](r, t0, k)
	} else {
		wrS = NewTSWR[uint64](r, t0, k)
	}
	ts := int64(0)
	var idx uint64
	lgBound := func(m uint64) int {
		if m < 2 {
			m = 2
		}
		return 2*int(floorLog2(m)) + 3
	}
	for _, b := range data {
		ts += int64(b % 5)
		if b%3 != 0 {
			if wor {
				worS.Observe(idx, ts)
			} else {
				wrS.Observe(idx, ts)
			}
			idx++
			continue
		}
		if wor {
			got, ok := worS.SampleAt(ts)
			if !ok {
				continue
			}
			seen := map[uint64]bool{}
			for _, e := range got {
				if w.Expired(e.TS, ts) {
					t.Fatalf("WOR sample expired: ts=%d now=%d", e.TS, ts)
				}
				if seen[e.Index] {
					t.Fatalf("WOR sample duplicated index %d", e.Index)
				}
				seen[e.Index] = true
			}
			// Memory bound: k instances, each within the TSWR k=1 bound,
			// plus the k-element tail.
			bound := 4 + k*3 + k*(4+lgBound(idx)*bsWords(1))
			if worS.Words() > bound {
				t.Fatalf("TSWOR words %d exceed bound %d after %d arrivals", worS.Words(), bound, idx)
			}
		} else {
			got, ok := wrS.SampleAt(ts)
			if !ok {
				continue
			}
			for _, e := range got {
				if w.Expired(e.TS, ts) {
					t.Fatalf("WR sample expired: ts=%d now=%d", e.TS, ts)
				}
			}
			bound := 4 + lgBound(idx)*bsWords(k)
			if wrS.Words() > bound {
				t.Fatalf("TSWR words %d exceed bound %d after %d arrivals", wrS.Words(), bound, idx)
			}
		}
	}
}

func fuzzCorpus() [][]byte {
	corpus := [][]byte{
		{},
		{0},
		{1, 2, 3, 4, 5},
		{255, 255, 255},
		{0, 0, 0, 0, 0, 0, 0, 0},
		{3, 3, 3, 3, 3, 3}, // query-heavy
	}
	// A few deterministic pseudo-random scripts of varying lengths.
	r := xrand.New(42)
	for _, n := range []int{17, 100, 500, 3000} {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Uint64n(256))
		}
		corpus = append(corpus, b)
	}
	return corpus
}

func FuzzTSWR(f *testing.F) {
	for _, b := range fuzzCorpus() {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		runScript(t, data, 7, 2, false)
	})
}

func FuzzTSWOR(f *testing.F) {
	for _, b := range fuzzCorpus() {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<15 {
			return
		}
		runScript(t, data, 7, 3, true)
	})
}

// TestScriptsDirect runs the corpus through both samplers without the fuzz
// driver, so the invariants are exercised by plain `go test` too, with more
// parameter combinations.
func TestScriptsDirect(t *testing.T) {
	for _, data := range fuzzCorpus() {
		for _, t0 := range []int64{1, 3, 16} {
			for _, k := range []int{1, 4} {
				runScript(t, data, t0, k, false)
				runScript(t, data, t0, k, true)
			}
		}
	}
}
