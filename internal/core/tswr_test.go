package core

import (
	"math"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// feedPattern feeds elements with the given timestamps (values = indexes).
func feedPattern(s *TSWR[uint64], pattern []int64) {
	for i, ts := range pattern {
		s.Observe(uint64(i), ts)
	}
}

// activeSet returns the indexes active at `now` for horizon t0 given the
// timestamp pattern.
func activeSet(pattern []int64, t0, now int64) []uint64 {
	w := window.Timestamp{T0: t0}
	var out []uint64
	for i, ts := range pattern {
		if ts <= now && w.Active(ts, now) {
			out = append(out, uint64(i))
		}
	}
	return out
}

// burstyPattern is a fixed, irregular arrival pattern used across the TSWR
// tests: bursts of different sizes with gaps, so that query times exercise
// straddling buckets, fully-covered windows, and empty windows.
func burstyPattern() []int64 {
	var p []int64
	add := func(ts int64, count int) {
		for i := 0; i < count; i++ {
			p = append(p, ts)
		}
	}
	add(0, 7)
	add(1, 1)
	add(4, 12)
	add(5, 2)
	add(9, 5)
	add(12, 3)
	add(13, 9)
	add(17, 1)
	return p
}

func TestTSWREmptyAndConstructorPanics(t *testing.T) {
	s := NewTSWR[uint64](xrand.New(1), 10, 1)
	if _, ok := s.Sample(); ok {
		t.Fatal("empty sampler returned a sample")
	}
	if _, ok := s.SampleAt(100); ok {
		t.Fatal("empty sampler returned a sample at a late time")
	}
	for _, tc := range []struct {
		t0 int64
		k  int
	}{{0, 1}, {-5, 1}, {10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewTSWR(t0=%d,k=%d) did not panic", tc.t0, tc.k)
				}
			}()
			NewTSWR[uint64](xrand.New(1), tc.t0, tc.k)
		}()
	}
}

func TestTSWRSampleAlwaysActive(t *testing.T) {
	// On a random bursty stream, every sample returned at every step must be
	// an active element.
	r := xrand.New(2)
	arr := streamBursty(r.Split(), 2000)
	s := NewTSWR[uint64](r.Split(), 7, 2)
	w := window.Timestamp{T0: 7}
	for i, ts := range arr {
		s.Observe(uint64(i), ts)
		got, ok := s.Sample()
		if !ok {
			t.Fatalf("step %d: no sample though an element just arrived", i)
		}
		for _, e := range got {
			if w.Expired(e.TS, ts) {
				t.Fatalf("step %d: sampled expired element (ts=%d now=%d)", i, e.TS, ts)
			}
			if int(e.Index) > i {
				t.Fatalf("step %d: sampled future index %d", i, e.Index)
			}
		}
	}
}

// streamBursty builds a random non-decreasing timestamp sequence.
func streamBursty(r *xrand.Rand, n int) []int64 {
	out := make([]int64, n)
	ts := int64(0)
	for i := 0; i < n; i++ {
		if r.Uint64n(5) == 0 {
			ts += int64(r.Uint64n(4))
		}
		out[i] = ts
	}
	return out
}

// TestTSWRUniform is the Theorem 3.9 correctness check: on a fixed bursty
// pattern, at several query times (windows fully covered, straddling and
// nearly expired), the sample is uniform over the exact active set.
func TestTSWRUniform(t *testing.T) {
	const t0 = 10
	const trials = 60000
	pattern := burstyPattern()
	r := xrand.New(3)
	for _, now := range []int64{0, 4, 9, 13, 14, 17, 20, 22} {
		act := activeSet(pattern, t0, now)
		if len(act) == 0 {
			t.Fatalf("now=%d: empty active set; pick another query time", now)
		}
		pos := make(map[uint64]int, len(act))
		for i, idx := range act {
			pos[idx] = i
		}
		counts := make([]int, len(act))
		for tr := 0; tr < trials; tr++ {
			s := NewTSWR[uint64](r, t0, 1)
			// Feed only elements that have arrived by `now`.
			for i, ts := range pattern {
				if ts <= now {
					s.Observe(uint64(i), ts)
				}
			}
			got, ok := s.SampleAt(now)
			if !ok {
				t.Fatalf("now=%d: no sample", now)
			}
			p, known := pos[got[0].Index]
			if !known {
				t.Fatalf("now=%d: sampled inactive index %d", now, got[0].Index)
			}
			counts[p]++
		}
		want := float64(trials) / float64(len(act))
		for i, c := range counts {
			if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
				t.Errorf("now=%d: active element %d (idx %d) sampled %d times, want about %.0f",
					now, i, act[i], c, want)
			}
		}
	}
}

// TestTSWRCopiesIndependent: k=2 slots over a straddling-window state must
// produce a product-of-uniforms joint distribution.
func TestTSWRCopiesIndependent(t *testing.T) {
	const t0, now = 10, 13
	const trials = 200000
	pattern := burstyPattern()
	act := activeSet(pattern, t0, now)
	pos := map[uint64]int{}
	for i, idx := range act {
		pos[idx] = i
	}
	n := len(act)
	r := xrand.New(4)
	joint := make([]int, n*n)
	for tr := 0; tr < trials; tr++ {
		s := NewTSWR[uint64](r, t0, 2)
		for i, ts := range pattern {
			if ts <= now {
				s.Observe(uint64(i), ts)
			}
		}
		got, _ := s.SampleAt(now)
		joint[pos[got[0].Index]*n+pos[got[1].Index]]++
	}
	want := float64(trials) / float64(n*n)
	for i, c := range joint {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("joint cell %d: %d, want about %.0f", i, c, want)
		}
	}
}

// TestTSWRStateTransitions walks the Lemma 3.5 case analysis explicitly.
func TestTSWRStateTransitions(t *testing.T) {
	const t0 = 10
	s := NewTSWR[uint64](xrand.New(5), t0, 1)

	// Basic filling: case 1, no straddle.
	for i := 0; i < 8; i++ {
		s.Observe(uint64(i), 0)
	}
	if s.straddle != nil {
		t.Fatal("straddle appeared while everything is active")
	}

	// Case 2c: some prefix expires -> straddle selected.
	s.Observe(8, 5)                   // still all active
	if _, ok := s.SampleAt(11); !ok { // ts=0 elements expire (11-0 >= 10)
		t.Fatal("sample failed after partial expiry")
	}
	if s.straddle == nil {
		t.Fatal("no straddle after partial expiry (case 2c)")
	}
	if (window.Timestamp{T0: t0}).Active(s.straddle.First.TS, s.Now()) {
		t.Fatal("straddle first element must be expired")
	}
	if s.d.Empty() {
		t.Fatal("suffix decomposition empty in case 2")
	}
	if !(window.Timestamp{T0: t0}).Active(s.d.At(0).First.TS, s.Now()) {
		t.Fatal("p_z must be active in case 2")
	}
	if s.straddle.Width() > s.d.TotalWidth() {
		t.Fatalf("alpha=%d > beta=%d: Lemma 3.5 invariant violated", s.straddle.Width(), s.d.TotalWidth())
	}

	// Case 3a: new arrivals keep the straddle.
	old := s.straddle
	s.Observe(9, 12)
	if s.straddle != old {
		t.Fatal("straddle replaced although p_z still active (case 3a)")
	}

	// Case 3b: everything expires -> full reset.
	if _, ok := s.SampleAt(100); ok {
		t.Fatal("sample returned after full expiry")
	}
	if s.straddle != nil || !s.d.Empty() {
		t.Fatal("state not cleared on full expiry (case 3b)")
	}

	// Fresh start after reset (case 1 re-established).
	s.Observe(10, 101)
	got, ok := s.Sample()
	if !ok || got[0].Index != 10 {
		t.Fatal("sampler unusable after reset")
	}
}

// TestTSWRInvariantsUnderRandomRuns drives random bursty streams with
// interleaved queries and asserts the Lemma 3.5 invariants after every
// operation.
func TestTSWRInvariantsUnderRandomRuns(t *testing.T) {
	w := window.Timestamp{T0: 13}
	for seed := uint64(0); seed < 10; seed++ {
		r := xrand.New(seed)
		s := NewTSWR[uint64](r.Split(), 13, 2)
		arr := streamBursty(r.Split(), 3000)
		check := func(step int) {
			if s.d.Empty() {
				return
			}
			d := s.d
			for i := 1; i < d.Len(); i++ {
				if d.At(i).X != d.At(i-1).Y {
					t.Fatalf("seed %d step %d: decomposition gap", seed, step)
				}
			}
			if !w.Active(d.Last().First.TS, s.Now()) {
				t.Fatalf("seed %d step %d: newest element expired but structure kept", seed, step)
			}
			if s.straddle != nil {
				if w.Active(s.straddle.First.TS, s.Now()) {
					t.Fatalf("seed %d step %d: straddle first active", seed, step)
				}
				if s.straddle.Y != d.At(0).X {
					t.Fatalf("seed %d step %d: straddle not adjacent to suffix", seed, step)
				}
				if s.straddle.Width() > d.TotalWidth() {
					t.Fatalf("seed %d step %d: alpha > beta", seed, step)
				}
			} else {
				// Case 1: the head bucket's first element must be active
				// only if nothing before it could be active; weaker check:
				// head first is the oldest retained and must be active.
				if !w.Active(d.At(0).First.TS, s.Now()) {
					t.Fatalf("seed %d step %d: case-1 head expired without straddle", seed, step)
				}
			}
		}
		for i, ts := range arr {
			s.Observe(uint64(i), ts)
			check(i)
			if i%7 == 0 {
				// Query at the current time (querying ahead would forbid
				// subsequent same-timestamp arrivals).
				s.SampleAt(ts)
				check(i)
			}
		}
	}
}

// TestTSWRMemoryDeterministic is the Theorem 3.9 memory claim: Words() never
// exceeds c*k*log2(arrivals) + c' at any point, on adversarially bursty
// input, deterministically.
func TestTSWRMemoryDeterministic(t *testing.T) {
	for _, k := range []int{1, 4} {
		r := xrand.New(7)
		s := NewTSWR[uint64](r.Split(), 50, k)
		arr := streamBursty(r.Split(), 60000)
		for i, ts := range arr {
			s.Observe(uint64(i), ts)
			m := uint64(i + 1)
			bound := 4 + (2*int(floorLog2(m))+3)*bsWords(k)
			if w := s.Words(); w > bound {
				t.Fatalf("k=%d step %d: Words=%d exceeds deterministic bound %d", k, i, w, bound)
			}
		}
	}
}

// TestTSWRBurstThenQuiet: a large burst followed by silence; queries as the
// window slides off the burst must stay uniform over the shrinking suffix
// and eventually report an empty window. This exercises expiry-on-query
// (advance without arrivals).
func TestTSWRBurstThenQuiet(t *testing.T) {
	const t0 = 5
	const trials = 40000
	// 20 elements at ts=0..2, then nothing.
	pattern := make([]int64, 0, 20)
	for i := 0; i < 8; i++ {
		pattern = append(pattern, 0)
	}
	for i := 0; i < 7; i++ {
		pattern = append(pattern, 1)
	}
	for i := 0; i < 5; i++ {
		pattern = append(pattern, 2)
	}
	r := xrand.New(8)
	for _, now := range []int64{2, 5, 6} {
		act := activeSet(pattern, t0, now)
		counts := map[uint64]int{}
		for tr := 0; tr < trials; tr++ {
			s := NewTSWR[uint64](r, t0, 1)
			feedPattern(s, pattern)
			got, ok := s.SampleAt(now)
			if !ok {
				t.Fatalf("now=%d: no sample, active=%d", now, len(act))
			}
			counts[got[0].Index]++
		}
		want := float64(trials) / float64(len(act))
		for _, idx := range act {
			if math.Abs(float64(counts[idx])-want) > 5*math.Sqrt(want) {
				t.Errorf("now=%d idx=%d: %d, want about %.0f", now, idx, counts[idx], want)
			}
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != trials {
			t.Errorf("now=%d: sampled inactive elements (%d of %d trials valid)", now, total, trials)
		}
	}
	// After the window slides past everything: empty.
	s := NewTSWR[uint64](r, t0, 1)
	feedPattern(s, pattern)
	if _, ok := s.SampleAt(7); ok {
		t.Fatal("sample returned from a fully expired window")
	}
}

func TestTSWRTimeMonotonicityPanics(t *testing.T) {
	s := NewTSWR[uint64](xrand.New(9), 10, 1)
	s.Observe(0, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards timestamp did not panic")
		}
	}()
	s.Observe(1, 4)
}

func TestTSWRQueryClockNeverRewinds(t *testing.T) {
	s := NewTSWR[uint64](xrand.New(10), 10, 1)
	s.Observe(0, 5)
	s.SampleAt(20) // everything expires
	// Querying at an earlier time must not resurrect the window.
	if _, ok := s.SampleAt(6); ok {
		t.Fatal("query at an earlier time resurrected expired elements")
	}
	if s.Now() != 20 {
		t.Fatalf("clock rewound to %d", s.Now())
	}
}

func TestTSWRDeterminism(t *testing.T) {
	run := func() []uint64 {
		r := xrand.New(42)
		s := NewTSWR[uint64](r.Split(), 9, 2)
		arr := streamBursty(r.Split(), 500)
		var out []uint64
		for i, ts := range arr {
			s.Observe(uint64(i), ts)
			if got, ok := s.Sample(); ok {
				for _, e := range got {
					out = append(out, e.Index)
				}
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("determinism broken: lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism broken at %d", i)
		}
	}
}

func TestTSWRForEachStoredAndAccessors(t *testing.T) {
	s := NewTSWR[uint64](xrand.New(11), 10, 2)
	for i := 0; i < 50; i++ {
		s.Observe(uint64(i), int64(i/5))
	}
	slots := 0
	s.ForEachStored(func(st *stream.Stored[uint64]) { slots++ })
	wantMax := 2 * 2 * s.bucketCount() // (R+Q) * k per bucket
	if slots == 0 || slots > wantMax {
		t.Fatalf("visited %d slots, want between 1 and %d", slots, wantMax)
	}
	if s.Horizon() != 10 || s.K() != 2 || s.Count() != 50 {
		t.Fatalf("accessors wrong: %d %d %d", s.Horizon(), s.K(), s.Count())
	}
}

func TestTSWRSingleElement(t *testing.T) {
	s := NewTSWR[uint64](xrand.New(12), 3, 1)
	s.Observe(0, 100)
	got, ok := s.Sample()
	if !ok || got[0].Index != 0 {
		t.Fatal("single-element window broken")
	}
	if _, ok := s.SampleAt(103); ok {
		t.Fatal("element survived past horizon")
	}
}
