package core

// extra_test.go: broad-scan and edge-case tests complementing the focused
// statistical suites — offset sweeps, negative clocks, exact memory-word
// regressions, and structural invariants for TSWOR.

import (
	"math"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// TestSeqWRMeanSweep scans EVERY window offset over three bucket cycles
// with a cheap mean-position test: the sampled window position must average
// (n-1)/2. Catches offset-dependent bias that spot checks could miss.
func TestSeqWRMeanSweep(t *testing.T) {
	const n = 16
	const trials = 3000
	r := xrand.New(1)
	for m := n; m <= 3*n; m++ {
		sum := 0.0
		for tr := 0; tr < trials; tr++ {
			s := NewSeqWR[uint64](r, n, 1)
			for i := 0; i < m; i++ {
				s.Observe(uint64(i), int64(i))
			}
			got, _ := s.Sample()
			sum += float64(got[0].Index - uint64(m-n))
		}
		mean := sum / trials
		want := float64(n-1) / 2
		sigma := math.Sqrt(float64(n*n-1) / 12 / trials)
		if math.Abs(mean-want) > 5*sigma {
			t.Errorf("m=%d: mean window position %.3f, want %.3f±%.3f", m, mean, want, 5*sigma)
		}
	}
}

// TestSeqWORMeanSweep does the same for the WOR sampler (positions of all k
// returned samples pooled).
func TestSeqWORMeanSweep(t *testing.T) {
	const n, k = 12, 3
	const trials = 2000
	r := xrand.New(2)
	for m := n; m <= 3*n; m += 1 {
		sum, cnt := 0.0, 0
		for tr := 0; tr < trials; tr++ {
			s := NewSeqWOR[uint64](r, n, k)
			for i := 0; i < m; i++ {
				s.Observe(uint64(i), int64(i))
			}
			got, _ := s.Sample()
			for _, e := range got {
				sum += float64(e.Index - uint64(m-n))
				cnt++
			}
		}
		mean := sum / float64(cnt)
		want := float64(n-1) / 2
		// WOR positions are negatively correlated; the variance of the
		// pooled mean is bounded by the WR value, so 5 sigma is safe.
		sigma := math.Sqrt(float64(n*n-1) / 12 / float64(cnt))
		if math.Abs(mean-want) > 5*sigma {
			t.Errorf("m=%d: mean position %.3f, want %.3f±%.3f", m, mean, want, 5*sigma)
		}
	}
}

// TestTSWRNegativeTimestamps: clocks may start below zero (e.g. epoch
// offsets); all logic must be translation-invariant.
func TestTSWRNegativeTimestamps(t *testing.T) {
	s := NewTSWR[uint64](xrand.New(3), 10, 1)
	base := int64(-1_000_000)
	for i := 0; i < 100; i++ {
		s.Observe(uint64(i), base+int64(i))
	}
	got, ok := s.SampleAt(base + 99)
	if !ok {
		t.Fatal("no sample with negative clock")
	}
	if got[0].Index < 90 {
		t.Fatalf("expired element %d sampled (window is the last 10 ticks)", got[0].Index)
	}
	if _, ok := s.SampleAt(base + 1000); ok {
		t.Fatal("expiry broken with negative clock")
	}
}

func TestTSWORNegativeTimestamps(t *testing.T) {
	s := NewTSWOR[uint64](xrand.New(4), 10, 3)
	base := int64(-500_000)
	for i := 0; i < 50; i++ {
		s.Observe(uint64(i), base+int64(i))
	}
	got, ok := s.SampleAt(base + 49)
	if !ok || len(got) != 3 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	for _, e := range got {
		if e.Index < 40 {
			t.Fatalf("expired element %d in WOR sample", e.Index)
		}
	}
}

// TestWordsExactValues pins the word accounting to exact expected values so
// accounting drift is caught as a regression, matching DESIGN.md §6.
func TestWordsExactValues(t *testing.T) {
	// SeqWR k=2: params 3 + per copy (reservoir counter 1 + stored 3).
	s := NewSeqWR[uint64](xrand.New(5), 4, 2)
	if got := s.Words(); got != 3+2*1 {
		t.Fatalf("empty SeqWR Words = %d, want 5", got)
	}
	s.Observe(0, 0)
	if got := s.Words(); got != 3+2*(1+3) {
		t.Fatalf("SeqWR Words after 1 = %d, want 11", got)
	}
	for i := 1; i < 4; i++ {
		s.Observe(uint64(i), int64(i))
	}
	// Bucket completed: frozen samples (2*3) + reset partial reservoirs.
	if got := s.Words(); got != 3+2*1+2*3 {
		t.Fatalf("SeqWR Words at boundary = %d, want 11", got)
	}

	// SeqWOR k=3: 3 + partial (2 + slots*3) + frozen*3.
	w := NewSeqWOR[uint64](xrand.New(6), 4, 3)
	if got := w.Words(); got != 3+2 {
		t.Fatalf("empty SeqWOR Words = %d, want 5", got)
	}
	w.Observe(0, 0)
	w.Observe(1, 0)
	if got := w.Words(); got != 3+2+2*3 {
		t.Fatalf("SeqWOR Words after 2 = %d, want 11", got)
	}

	// TSWR k=1: 4 scalars + buckets*(4+6).
	ts := NewTSWR[uint64](xrand.New(7), 10, 1)
	ts.Observe(0, 0)
	if got := ts.Words(); got != 4+1*bsWords(1) {
		t.Fatalf("TSWR Words after 1 = %d, want %d", got, 4+bsWords(1))
	}
	ts.Observe(1, 0)
	ts.Observe(2, 0) // widths [1,1,1] -> wait: 3 elements give widths [1,1,1]
	if got, want := ts.Words(), 4+ts.d.Len()*bsWords(1); got != want {
		t.Fatalf("TSWR Words = %d, want %d", got, want)
	}

	// TSWOR k=2: 4 scalars + tail*3 + instances.
	tw := NewTSWOR[uint64](xrand.New(8), 10, 2)
	base := tw.insts[0].Words() + tw.insts[1].Words()
	if got := tw.Words(); got != 4+base {
		t.Fatalf("empty TSWOR Words = %d, want %d", got, 4+base)
	}
	tw.Observe(0, 0)
	inst := tw.insts[0].Words() + tw.insts[1].Words()
	if got := tw.Words(); got != 4+1*3+inst {
		t.Fatalf("TSWOR Words after 1 = %d, want %d", got, 4+3+inst)
	}
}

// TestTSWORInvariantsUnderRandomRuns mirrors the TSWR invariant test at the
// reduction level: tail-buffer consistency and per-instance coverage.
func TestTSWORInvariantsUnderRandomRuns(t *testing.T) {
	const t0, k = 11, 4
	for seed := uint64(0); seed < 6; seed++ {
		r := xrand.New(seed)
		s := NewTSWOR[uint64](r.Split(), t0, k)
		arr := streamBursty(r.Split(), 2000)
		for i, ts := range arr {
			s.Observe(uint64(i), ts)
			// Tail holds the last min(i+1, k) arrivals in order.
			wantLen := i + 1
			if wantLen > k {
				wantLen = k
			}
			if s.tailLen != wantLen {
				t.Fatalf("seed %d step %d: tailLen %d, want %d", seed, i, s.tailLen, wantLen)
			}
			for d := 0; d < wantLen; d++ {
				if got := s.tailFromEnd(d); got.Index != uint64(i-d) {
					t.Fatalf("seed %d step %d: tailFromEnd(%d) = %d, want %d", seed, i, d, got.Index, i-d)
				}
			}
			// Instance j must never cover an index newer than i-j.
			for j, inst := range s.insts {
				if !inst.d.Empty() && inst.d.End() > uint64(i-j)+1 {
					t.Fatalf("seed %d step %d: instance %d covers up to %d, limit %d",
						seed, i, j, inst.d.End(), i-j)
				}
			}
		}
	}
}

// TestTSWRQueryOnlyStraddleTransition exercises Lemma 3.5 case 3c driven
// purely by queries (no arrivals): as the clock advances, the straddle must
// be replaced by deeper buckets until full reset.
func TestTSWRQueryOnlyStraddleTransition(t *testing.T) {
	const t0 = 4
	s := NewTSWR[uint64](xrand.New(9), t0, 1)
	// Elements at ticks 0..9, one per tick.
	for i := 0; i < 10; i++ {
		s.Observe(uint64(i), int64(i))
	}
	w := window.Timestamp{T0: t0}
	var prev *BS[uint64]
	for now := int64(9); now <= 14; now++ {
		got, ok := s.SampleAt(now)
		act := 0
		for i := 0; i < 10; i++ {
			if int64(i) <= now && w.Active(int64(i), now) {
				act++
			}
		}
		if act == 0 {
			if ok {
				t.Fatalf("now=%d: sample from empty window", now)
			}
			if s.straddle != nil || !s.d.Empty() {
				t.Fatalf("now=%d: state not reset", now)
			}
			continue
		}
		if !ok {
			t.Fatalf("now=%d: no sample though %d active", now, act)
		}
		if w.Expired(got[0].TS, now) {
			t.Fatalf("now=%d: sampled expired element", now)
		}
		if s.straddle != nil && s.straddle == prev && now > 10 {
			// The straddle may legitimately persist; just ensure invariants.
			if s.straddle.Width() > s.d.TotalWidth() {
				t.Fatalf("now=%d: alpha > beta", now)
			}
		}
		prev = s.straddle
	}
}

// TestTSWRManyArrivalsOneTick: a whole stream within a single timestamp —
// the window either contains everything or nothing.
func TestTSWRManyArrivalsOneTick(t *testing.T) {
	const t0 = 3
	const m = 500
	const trials = 4000
	r := xrand.New(10)
	counts := make([]int, m)
	for tr := 0; tr < trials; tr++ {
		s := NewTSWR[uint64](r, t0, 1)
		for i := 0; i < m; i++ {
			s.Observe(uint64(i), 7)
		}
		got, ok := s.SampleAt(9) // still active: 9-7 < 3
		if !ok {
			t.Fatal("single-tick burst lost")
		}
		counts[got[0].Index]++
	}
	// Mean position check (full chi-square would need many more trials).
	sum := 0.0
	for i, c := range counts {
		sum += float64(i) * float64(c)
	}
	mean := sum / trials
	want := float64(m-1) / 2
	sigma := math.Sqrt(float64(m*m-1) / 12 / trials)
	if math.Abs(mean-want) > 5*sigma {
		t.Fatalf("mean sampled position %.1f, want %.1f±%.1f", mean, want, 5*sigma)
	}
	s := NewTSWR[uint64](r, t0, 1)
	for i := 0; i < m; i++ {
		s.Observe(uint64(i), 7)
	}
	if _, ok := s.SampleAt(10); ok {
		t.Fatal("burst survived past horizon")
	}
}

// TestForEachStoredCountsMatchWords: the slots visited and the Words
// accounting must agree on how many elements are retained.
func TestForEachStoredCountsMatchWords(t *testing.T) {
	r := xrand.New(11)
	s := NewTSWR[uint64](r, 16, 3)
	for i := 0; i < 300; i++ {
		s.Observe(uint64(i), int64(i/9))
	}
	slots := 0
	s.ForEachStored(func(st *stream.Stored[uint64]) { slots++ })
	// Each bucket structure holds 2k slots; Words = 4 + buckets*(4+6k).
	buckets := s.bucketCount()
	if slots != buckets*2*3 {
		t.Fatalf("slots %d, want %d (buckets=%d, k=3)", slots, buckets*6, buckets)
	}
	if s.Words() != 4+buckets*bsWords(3) {
		t.Fatalf("Words %d inconsistent with %d buckets", s.Words(), buckets)
	}
}

// TestSeqSamplersKEqualsWindow: k == n edge for both sequence samplers.
func TestSeqSamplersKEqualsWindow(t *testing.T) {
	const n = 5
	wor := NewSeqWOR[uint64](xrand.New(12), n, n)
	wr := NewSeqWR[uint64](xrand.New(13), n, n)
	for i := 0; i < 23; i++ {
		wor.Observe(uint64(i), int64(i))
		wr.Observe(uint64(i), int64(i))
		got, _ := wor.Sample()
		winSize := i + 1
		if winSize > n {
			winSize = n
		}
		if len(got) != winSize {
			t.Fatalf("step %d: WOR k=n returned %d of %d", i, len(got), winSize)
		}
		gotWR, _ := wr.Sample()
		if len(gotWR) != n {
			t.Fatalf("step %d: WR k=n returned %d", i, len(gotWR))
		}
	}
}

// TestDecompAfterStraddleHandoff: the suffix decomposition must remain a
// valid covering decomposition (Definition 3.1 shape) after DropPrefix —
// the property Lemma 3.5's case 2c/3c relies on for the α ≤ β invariant.
func TestDecompAfterStraddleHandoff(t *testing.T) {
	r := xrand.New(14)
	s := NewTSWR[uint64](r, 8, 1)
	for i := 0; i < 200; i++ {
		s.Observe(uint64(i), int64(i/13))
		if s.straddle == nil {
			continue
		}
		// The suffix list must be contiguous and end in a width-1 bucket.
		d := s.d
		if d.Empty() {
			t.Fatalf("step %d: straddle with empty suffix", i)
		}
		if d.Last().Width() != 1 {
			t.Fatalf("step %d: suffix does not end in a singleton", i)
		}
		for j := 1; j < d.Len(); j++ {
			if d.At(j).X != d.At(j-1).Y {
				t.Fatalf("step %d: suffix gap", i)
			}
			// Suffix widths are non-increasing from some point; the key
			// paper invariant is head width <= total/2:
		}
		if d.At(0).Width() > d.TotalWidth()-d.At(0).Width()+1 {
			// head <= rest + 1 (head covers at most half, rounded up)
			t.Fatalf("step %d: head bucket wider than remainder: %v", i, d.widths())
		}
	}
}
