package core

import (
	"math"
	"testing"
	"testing/quick"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

func feedSeqWOR(s *SeqWOR[uint64], m int) {
	for i := 0; i < m; i++ {
		s.Observe(uint64(i), int64(i))
	}
}

func TestSeqWOREmpty(t *testing.T) {
	s := NewSeqWOR[uint64](xrand.New(1), 8, 2)
	if _, ok := s.Sample(); ok {
		t.Fatal("empty sampler returned a sample")
	}
}

func TestSeqWORConstructorPanics(t *testing.T) {
	for _, tc := range []struct {
		n uint64
		k int
	}{{0, 1}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSeqWOR(n=%d,k=%d) did not panic", tc.n, tc.k)
				}
			}()
			NewSeqWOR[uint64](xrand.New(1), tc.n, tc.k)
		}()
	}
}

// TestSeqWORDistinctAndInWindow is the without-replacement contract: at every
// stream position, the sample holds min(k, windowSize) DISTINCT elements of
// the current window.
func TestSeqWORDistinctAndInWindow(t *testing.T) {
	const n, k = 16, 5
	s := NewSeqWOR[uint64](xrand.New(2), n, k)
	for i := 0; i < 400; i++ {
		s.Observe(uint64(i), int64(i))
		got, ok := s.Sample()
		if !ok {
			t.Fatalf("step %d: no sample", i)
		}
		winSize := i + 1
		if winSize > n {
			winSize = n
		}
		wantLen := k
		if winSize < k {
			wantLen = winSize
		}
		if len(got) != wantLen {
			t.Fatalf("step %d: sample size %d, want %d", i, len(got), wantLen)
		}
		lo := uint64(0)
		if i+1 > n {
			lo = uint64(i+1) - n
		}
		seen := map[uint64]bool{}
		for _, e := range got {
			if e.Index < lo || e.Index > uint64(i) {
				t.Fatalf("step %d: index %d outside window [%d,%d]", i, e.Index, lo, i)
			}
			if seen[e.Index] {
				t.Fatalf("step %d: duplicate index %d in WOR sample", i, e.Index)
			}
			seen[e.Index] = true
		}
	}
}

func TestSeqWORDistinctQuick(t *testing.T) {
	f := func(seed uint64, mRaw uint16) bool {
		m := int(mRaw%200) + 1
		s := NewSeqWOR[uint64](xrand.New(seed), 12, 4)
		feedSeqWOR(s, m)
		got, ok := s.Sample()
		if !ok {
			return false
		}
		seen := map[uint64]bool{}
		for _, e := range got {
			if seen[e.Index] {
				return false
			}
			seen[e.Index] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSeqWORUniformSubsets is the Theorem 2.2 correctness check: every
// k-subset of the window appears with probability 1/C(n,k), at several
// window offsets including straddling positions.
func TestSeqWORUniformSubsets(t *testing.T) {
	const n, k = 6, 2 // C(6,2) = 15
	const trials = 90000
	r := xrand.New(3)
	for _, m := range []int{6, 9, 12, 14} {
		lo := m - n
		counts := map[[2]uint64]int{}
		for tr := 0; tr < trials; tr++ {
			s := NewSeqWOR[uint64](r, n, k)
			feedSeqWOR(s, m)
			got, _ := s.Sample()
			a, b := got[0].Index, got[1].Index
			if a > b {
				a, b = b, a
			}
			counts[[2]uint64{a, b}]++
		}
		if len(counts) != 15 {
			t.Fatalf("m=%d: saw %d distinct subsets, want 15", m, len(counts))
		}
		want := float64(trials) / 15
		for key, c := range counts {
			if key[0] < uint64(lo) || key[1] < uint64(lo) {
				t.Fatalf("m=%d: subset %v contains expired index", m, key)
			}
			if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
				t.Errorf("m=%d: subset %v count %d, want about %.0f", m, key, c, want)
			}
		}
	}
}

// TestSeqWORInclusionProbability: each active element must be in the sample
// with probability k/n.
func TestSeqWORInclusionProbability(t *testing.T) {
	const n, k, m = 10, 3, 27
	const trials = 60000
	r := xrand.New(4)
	counts := make(map[uint64]int)
	for tr := 0; tr < trials; tr++ {
		s := NewSeqWOR[uint64](r, n, k)
		feedSeqWOR(s, m)
		got, _ := s.Sample()
		for _, e := range got {
			counts[e.Index]++
		}
	}
	p := float64(k) / n
	want := p * trials
	sigma := math.Sqrt(trials * p * (1 - p))
	for idx := uint64(m - n); idx < m; idx++ {
		if math.Abs(float64(counts[idx])-want) > 5*sigma {
			t.Errorf("index %d included %d times, want about %.0f", idx, counts[idx], want)
		}
	}
}

func TestSeqWORWholeWindowWhenKLarge(t *testing.T) {
	// k >= n: the sample must be exactly the window at every step.
	const n, k = 4, 7
	s := NewSeqWOR[uint64](xrand.New(5), n, k)
	for i := 0; i < 100; i++ {
		s.Observe(uint64(i), int64(i))
		got, _ := s.Sample()
		winSize := i + 1
		if winSize > n {
			winSize = n
		}
		if len(got) != winSize {
			t.Fatalf("step %d: got %d elements, want the whole window (%d)", i, len(got), winSize)
		}
		seen := map[uint64]bool{}
		for _, e := range got {
			seen[e.Index] = true
		}
		lo := 0
		if i+1 > n {
			lo = i + 1 - n
		}
		for j := lo; j <= i; j++ {
			if !seen[uint64(j)] {
				t.Fatalf("step %d: window element %d missing from full sample", i, j)
			}
		}
	}
}

// TestSeqWORMemoryDeterministic is the Theorem 2.2 memory claim.
func TestSeqWORMemoryDeterministic(t *testing.T) {
	for _, n := range []uint64{1, 3, 64, 512} {
		for _, k := range []int{1, 4, 32} {
			s := NewSeqWOR[uint64](xrand.New(6), n, k)
			// params(3) + partial K reservoir (2 + k stored) + frozen sample (k stored)
			bound := 3 + 2 + 2*k*stream.StoredWords
			for i := 0; i < 4000; i++ {
				s.Observe(uint64(i), int64(i))
				if w := s.Words(); w > bound {
					t.Fatalf("n=%d k=%d step %d: Words=%d exceeds %d", n, k, i, w, bound)
				}
			}
			if s.MaxWords() > bound {
				t.Fatalf("n=%d k=%d: MaxWords=%d exceeds %d", n, k, s.MaxWords(), bound)
			}
		}
	}
}

func TestSeqWORQueryDoesNotMutate(t *testing.T) {
	// Repeated queries without arrivals must keep returning valid samples
	// (fresh randomness for the i-subset is allowed — distinctness and
	// window membership must hold every time).
	s := NewSeqWOR[uint64](xrand.New(7), 8, 3)
	feedSeqWOR(s, 19)
	for q := 0; q < 200; q++ {
		got, ok := s.Sample()
		if !ok || len(got) != 3 {
			t.Fatalf("query %d: ok=%v len=%d", q, ok, len(got))
		}
		seen := map[uint64]bool{}
		for _, e := range got {
			if e.Index < 11 || e.Index > 18 || seen[e.Index] {
				t.Fatalf("query %d: bad sample %v", q, got)
			}
			seen[e.Index] = true
		}
	}
}

func TestSeqWORDeterminism(t *testing.T) {
	run := func() []uint64 {
		s := NewSeqWOR[uint64](xrand.New(42), 16, 3)
		var out []uint64
		for i := 0; i < 150; i++ {
			s.Observe(uint64(i), int64(i))
			if got, ok := s.Sample(); ok {
				for _, e := range got {
					out = append(out, e.Index)
				}
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("determinism broken: different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism broken at %d", i)
		}
	}
}

func TestSeqWORForEachStoredAndAccessors(t *testing.T) {
	s := NewSeqWOR[uint64](xrand.New(8), 8, 3)
	feedSeqWOR(s, 20)
	slots := 0
	s.ForEachStored(func(st *stream.Stored[uint64]) { slots++ })
	if slots == 0 || slots > 6 {
		t.Fatalf("visited %d slots, want between 1 and 6", slots)
	}
	if s.N() != 8 || s.K() != 3 || s.Count() != 20 {
		t.Fatalf("accessors wrong: %d %d %d", s.N(), s.K(), s.Count())
	}
}
