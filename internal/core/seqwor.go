package core

import (
	"slidingsample/internal/reservoir"
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// SeqWOR maintains a uniform k-sample WITHOUT replacement over a
// sequence-based sliding window of the n most recent elements, using Θ(k)
// memory words at all times — Theorem 2.2.
//
// Construction (Section 2.2): one k-slot reservoir (Algorithm R) per stream
// bucket B(in, (i+1)n). Let X_U be the frozen k-sample of the last complete
// bucket U and X_V the running k-reservoir of the partial bucket V. At query
// time, let i = |X_U ∩ Ue| be the number of expired elements in X_U. The
// output is
//
//	Z = (X_U ∩ Ua) ∪ X_V^i
//
// where X_V^i is a uniformly random i-subset of X_V. The paper proves
// P(Z = Q) = 1/C(n,k) for every k-subset Q of the window: the (s choose i)
// ways X_U can spend i slots on the expired region cancel against the
// uniform i-subset drawn from V's sample.
//
// While fewer than min(k, |window|) elements are available the sampler
// returns the entire window content (the reservoir holds everything when
// count < k), mirroring "either X_B = C, if |C| < k, or X_B is a k-sample".
type SeqWOR[T any] struct {
	n     uint64
	k     int
	rng   *xrand.Rand // query-time subset draws
	win   window.Sequence
	count uint64

	partial  *reservoir.K[T]     // running k-reservoir over the partial bucket
	complete []*stream.Stored[T] // frozen k-sample of the last complete bucket (nil before the first completes)

	maxWords int
}

// NewSeqWOR returns a sampler for a k-sample without replacement over a
// window of the n most recent elements. Panics if n == 0 or k <= 0.
func NewSeqWOR[T any](rng *xrand.Rand, n uint64, k int) *SeqWOR[T] {
	if n == 0 {
		panic("core: NewSeqWOR with n == 0")
	}
	if k <= 0 {
		panic("core: NewSeqWOR with k <= 0")
	}
	s := &SeqWOR[T]{
		n:       n,
		k:       k,
		rng:     rng.Split(),
		win:     window.Sequence{N: n},
		partial: reservoir.NewK[T](rng.Split(), k),
	}
	s.maxWords = s.Words()
	return s
}

// Observe feeds the next stream element (timestamps carried through only).
func (s *SeqWOR[T]) Observe(value T, ts int64) {
	e := stream.Element[T]{Value: value, Index: s.count, TS: ts}
	s.count++
	s.partial.Observe(e)
	if s.count%s.n == 0 {
		s.complete = s.partial.Sample()
		s.partial.Reset()
	}
	if w := s.Words(); w > s.maxWords {
		s.maxWords = w
	}
}

// ObserveBatch feeds a run of elements (Index assigned here; state and
// randomness identical to looping Observe). The amortization: the
// bucket-boundary modulus runs once per segment, and the footprint scan runs
// at bucket completions and batch end — the reservoir's slot count is
// monotone between resets, so those checkpoints see exactly the peaks the
// per-element path sees.
func (s *SeqWOR[T]) ObserveBatch(batch []stream.Element[T]) {
	for len(batch) > 0 {
		room := s.n - s.count%s.n
		seg := batch
		if uint64(len(seg)) > room {
			seg = seg[:room]
		}
		batch = batch[len(seg):]
		boundary := uint64(len(seg)) == room
		m := len(seg)
		if boundary {
			m--
		}
		for _, e := range seg[:m] {
			e.Index = s.count
			s.count++
			s.partial.Observe(e)
		}
		if m > 0 {
			// The reservoir's slot count is monotone between resets, so one
			// check captures every per-element checkpoint of the prefix.
			if w := s.Words(); w > s.maxWords {
				s.maxWords = w
			}
		}
		if boundary {
			// Replay the boundary element exactly like Observe so the freeze
			// and its footprint checkpoint land on the same states.
			e := seg[m]
			e.Index = s.count
			s.count++
			s.partial.Observe(e)
			s.complete = s.partial.Sample()
			s.partial.Reset()
			if w := s.Words(); w > s.maxWords {
				s.maxWords = w
			}
		}
	}
}

// sampleStored returns the current without-replacement sample as live slots.
// The result has min(k, windowSize) distinct elements. Fresh query-time
// randomness is drawn for the i-subset of X_V, as the proof of Theorem 2.2
// requires.
func (s *SeqWOR[T]) sampleStored() ([]*stream.Stored[T], bool) {
	if s.count == 0 {
		return nil, false
	}
	latest := s.count - 1
	switch {
	case s.count%s.n == 0:
		// Window is exactly the just-completed bucket.
		return append([]*stream.Stored[T](nil), s.complete...), true
	case s.complete == nil:
		// First bucket still filling: window = everything arrived = what the
		// partial reservoir covers.
		return s.partial.Sample(), true
	default:
		xu := s.complete
		active := make([]*stream.Stored[T], 0, len(xu))
		expired := 0
		for _, st := range xu {
			if s.win.Active(st.Elem.Index, latest) {
				active = append(active, st)
			} else {
				expired++
			}
		}
		if expired == 0 {
			return active, true
		}
		xv := s.partial.Sample()
		// expired <= |Ue| = s and the reservoir holds min(k, s) elements, so
		// the i-subset always exists; this is the Theorem 2.2 invariant
		// i <= min(k, s).
		if expired > len(xv) {
			panic("core: SeqWOR invariant violated: more expired slots than partial sample size")
		}
		for _, j := range s.rng.PickK(len(xv), expired) {
			active = append(active, xv[j])
		}
		return active, true
	}
}

// Sample returns the current without-replacement sample: min(k, windowSize)
// distinct window elements, uniform over all such subsets. ok is false while
// the stream is empty.
func (s *SeqWOR[T]) Sample() ([]stream.Element[T], bool) {
	st, ok := s.sampleStored()
	if !ok {
		return nil, false
	}
	out := make([]stream.Element[T], len(st))
	for i, p := range st {
		out[i] = p.Elem
	}
	return out, true
}

// SampleSlots is Sample exposing live slots (with Aux) for the Section 5
// application layer.
func (s *SeqWOR[T]) SampleSlots() ([]*stream.Stored[T], bool) {
	return s.sampleStored()
}

// SlotsAt implements stream.SlotSampler (sequence windows ignore now).
func (s *SeqWOR[T]) SlotsAt(int64) ([]*stream.Stored[T], bool) {
	return s.sampleStored()
}

// K returns the sample size parameter.
func (s *SeqWOR[T]) K() int { return s.k }

// N returns the window size.
func (s *SeqWOR[T]) N() uint64 { return s.n }

// Count returns the number of elements observed so far.
func (s *SeqWOR[T]) Count() uint64 { return s.count }

// ForEachStored implements stream.SlotVisitor.
func (s *SeqWOR[T]) ForEachStored(f func(*stream.Stored[T])) {
	for _, st := range s.complete {
		f(st)
	}
	s.partial.ForEachStored(f)
}

// Words implements stream.MemoryReporter: the partial k-reservoir plus the
// frozen complete-bucket sample plus three scalars.
func (s *SeqWOR[T]) Words() int {
	return 3 + s.partial.Words() + len(s.complete)*stream.StoredWords
}

// MaxWords implements stream.MemoryReporter.
func (s *SeqWOR[T]) MaxWords() int { return s.maxWords }
