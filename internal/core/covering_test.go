package core

import (
	"math"
	"testing"
	"testing/quick"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

func tsElem(i uint64) stream.Element[uint64] {
	return stream.Element[uint64]{Value: i, Index: i, TS: int64(i)}
}

func buildDecomp(t *testing.T, seed uint64, k int, m int) *decomp[uint64] {
	t.Helper()
	d := newDecomp[uint64](xrand.New(seed), k)
	for i := 0; i < m; i++ {
		d.Append(tsElem(uint64(i)))
	}
	return d
}

// TestIncrMatchesDefinition is the Lemma 3.4 check: after m Append calls the
// bucket widths must equal ζ(0, m-1) computed directly from Definition 3.1.
func TestIncrMatchesDefinition(t *testing.T) {
	d := newDecomp[uint64](xrand.New(1), 1)
	for m := 1; m <= 4096; m++ {
		d.Append(tsElem(uint64(m - 1)))
		d.checkInvariants() // compares widths against referenceWidths(m)
		if got := d.TotalWidth(); got != uint64(m) {
			t.Fatalf("after %d appends TotalWidth = %d", m, got)
		}
	}
}

func TestIncrMatchesDefinitionQuick(t *testing.T) {
	f := func(mRaw uint16, seed uint64) bool {
		m := int(mRaw%5000) + 1
		d := newDecomp[uint64](xrand.New(seed), 2)
		for i := 0; i < m; i++ {
			d.Append(tsElem(uint64(i)))
		}
		w := d.widths()
		want := referenceWidths(uint64(m))
		if len(w) != len(want) {
			return false
		}
		for i := range w {
			if w[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompSizeLogarithmic(t *testing.T) {
	d := newDecomp[uint64](xrand.New(2), 1)
	for m := 1; m <= 1<<16; m++ {
		d.Append(tsElem(uint64(m - 1)))
		bound := 2*int(floorLog2(uint64(m))) + 2
		if d.Len() > bound {
			t.Fatalf("m=%d: decomposition has %d buckets, bound %d (Fact 3.2)", m, d.Len(), bound)
		}
	}
}

func TestDecompStructure(t *testing.T) {
	d := buildDecomp(t, 3, 2, 1000)
	// Contiguous, ends with width-1 bucket, non-increasing... widths follow
	// the reference; spot-check contiguity and the width-1 tail explicitly.
	for i := 1; i < d.Len(); i++ {
		if d.At(i).X != d.At(i-1).Y {
			t.Fatalf("gap between buckets %d and %d", i-1, i)
		}
	}
	if d.Last().Width() != 1 {
		t.Fatalf("last bucket width = %d, want 1", d.Last().Width())
	}
	if d.Start() != 0 || d.End() != 1000 {
		t.Fatalf("range [%d,%d), want [0,1000)", d.Start(), d.End())
	}
	// Every bucket's samples live inside the bucket and carry its metadata.
	for i := 0; i < d.Len(); i++ {
		b := d.At(i)
		if b.First.Index != b.X {
			t.Fatalf("bucket %d First.Index=%d, want %d", i, b.First.Index, b.X)
		}
		for j := range b.R {
			for _, st := range []*stream.Stored[uint64]{b.R[j], b.Q[j]} {
				if st.Elem.Index < b.X || st.Elem.Index >= b.Y {
					t.Fatalf("bucket %d sample index %d outside [%d,%d)", i, st.Elem.Index, b.X, b.Y)
				}
			}
		}
	}
}

// TestHeadBucketSampleUniform checks that after the cascade of merges the
// head bucket's R sample is uniform over the whole bucket — the Section 3.2
// claim that the probability-1/2 merge rule preserves uniformity.
func TestHeadBucketSampleUniform(t *testing.T) {
	const m, trials = 64, 60000 // m a power of two: head bucket covers [0,32)
	r := xrand.New(4)
	counts := make([]int, 32)
	for tr := 0; tr < trials; tr++ {
		d := newDecomp[uint64](r.Split(), 1)
		for i := 0; i < m; i++ {
			d.Append(tsElem(uint64(i)))
		}
		head := d.At(0)
		if head.Width() != 32 {
			t.Fatalf("head bucket width = %d, want 32", head.Width())
		}
		counts[head.R[0].Elem.Index]++
	}
	want := float64(trials) / 32
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("head sample hit %d %d times, want about %.0f", i, c, want)
		}
	}
}

// TestHeadBucketRAndQIndependent verifies that the merge coin streams for R
// and Q are independent: the joint distribution over a 4-wide bucket should
// factor.
func TestHeadBucketRAndQIndependent(t *testing.T) {
	const m, trials = 8, 160000 // head bucket covers [0,4)
	r := xrand.New(5)
	joint := map[[2]uint64]int{}
	for tr := 0; tr < trials; tr++ {
		d := newDecomp[uint64](r.Split(), 1)
		for i := 0; i < m; i++ {
			d.Append(tsElem(uint64(i)))
		}
		head := d.At(0)
		if head.Width() != 4 {
			t.Fatalf("head bucket width = %d, want 4", head.Width())
		}
		joint[[2]uint64{head.R[0].Elem.Index, head.Q[0].Elem.Index}]++
	}
	want := float64(trials) / 16
	for a := uint64(0); a < 4; a++ {
		for b := uint64(0); b < 4; b++ {
			c := float64(joint[[2]uint64{a, b}])
			if math.Abs(c-want) > 5*math.Sqrt(want) {
				t.Errorf("joint(R=%d,Q=%d) = %.0f, want about %.0f", a, b, c, want)
			}
		}
	}
}

func TestPickWeightedUniform(t *testing.T) {
	// Over any m, PickWeighted must be uniform across all covered indexes
	// when each bucket sample is uniform within its bucket. m=48 exercises
	// several widths.
	const m, trials = 48, 96000
	r := xrand.New(6)
	counts := make([]int, m)
	for tr := 0; tr < trials; tr++ {
		d := newDecomp[uint64](r.Split(), 1)
		for i := 0; i < m; i++ {
			d.Append(tsElem(uint64(i)))
		}
		counts[d.PickWeighted(0).Elem.Index]++
	}
	want := float64(trials) / m
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("index %d picked %d times, want about %.0f", i, c, want)
		}
	}
}

func TestDropPrefix(t *testing.T) {
	d := buildDecomp(t, 7, 1, 100)
	n := d.Len()
	first := d.At(1)
	d.DropPrefix(1)
	if d.Len() != n-1 {
		t.Fatalf("Len after DropPrefix = %d, want %d", d.Len(), n-1)
	}
	if d.At(0) != first {
		t.Fatal("DropPrefix removed the wrong bucket")
	}
	d.DropPrefix(d.Len())
	if !d.Empty() {
		t.Fatal("DropPrefix(all) did not empty the decomposition")
	}
}

func TestDropPrefixPanics(t *testing.T) {
	d := buildDecomp(t, 8, 1, 10)
	for _, j := range []int{-1, d.Len() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("DropPrefix(%d) did not panic", j)
				}
			}()
			d.DropPrefix(j)
		}()
	}
}

func TestAppendNonContiguousPanics(t *testing.T) {
	d := buildDecomp(t, 9, 1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("Append with index gap did not panic")
		}
	}()
	d.Append(tsElem(99))
}

func TestMergePanics(t *testing.T) {
	r := xrand.New(10)
	a := newSingletonBS(tsElem(0), 1)
	b := newSingletonBS(tsElem(2), 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("merge of non-adjacent buckets did not panic")
			}
		}()
		mergeBS(r, a, b)
	}()
	// Unequal widths: merge 0-1 into width 2, then try to merge with width 1.
	c := mergeBS(r, newSingletonBS(tsElem(0), 1), newSingletonBS(tsElem(1), 1))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("merge of unequal widths did not panic")
			}
		}()
		mergeBS(r, c, newSingletonBS(tsElem(2), 1))
	}()
}

func TestMergeCarriesAux(t *testing.T) {
	// Application auxiliary state must survive merges on the surviving slot.
	r := xrand.New(11)
	left := newSingletonBS(tsElem(0), 1)
	right := newSingletonBS(tsElem(1), 1)
	left.R[0].Aux = "L"
	right.R[0].Aux = "R"
	m := mergeBS(r, left, right)
	if m.R[0].Aux != "L" && m.R[0].Aux != "R" {
		t.Fatalf("merged slot lost Aux: %v", m.R[0].Aux)
	}
	if m.First.Index != 0 || m.X != 0 || m.Y != 2 {
		t.Fatalf("merged bucket metadata wrong: X=%d Y=%d First=%d", m.X, m.Y, m.First.Index)
	}
}

func TestReferenceWidths(t *testing.T) {
	cases := map[uint64][]uint64{
		1: {1},
		2: {1, 1},
		3: {1, 1, 1},
		4: {2, 1, 1},
		5: {2, 1, 1, 1},
		7: {2, 2, 1, 1, 1},
		8: {4, 2, 1, 1},
		9: {4, 2, 1, 1, 1},
	}
	for m, want := range cases {
		got := referenceWidths(m)
		if len(got) != len(want) {
			t.Fatalf("referenceWidths(%d) = %v, want %v", m, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("referenceWidths(%d) = %v, want %v", m, got, want)
			}
		}
	}
	// Widths must always sum to m.
	for m := uint64(1); m <= 3000; m++ {
		var sum uint64
		for _, w := range referenceWidths(m) {
			sum += w
		}
		if sum != m {
			t.Fatalf("referenceWidths(%d) sums to %d", m, sum)
		}
	}
}

func TestFloorLog2(t *testing.T) {
	cases := map[uint64]uint{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1023: 9, 1024: 10}
	for x, want := range cases {
		if got := floorLog2(x); got != want {
			t.Errorf("floorLog2(%d) = %d, want %d", x, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("floorLog2(0) did not panic")
		}
	}()
	floorLog2(0)
}

func TestDecompWords(t *testing.T) {
	d := buildDecomp(t, 12, 3, 100)
	if got, want := d.Words(), d.Len()*bsWords(3); got != want {
		t.Fatalf("Words = %d, want %d", got, want)
	}
	if bsWords(1) != 10 || bsWords(3) != 22 {
		t.Fatalf("bsWords changed: %d %d", bsWords(1), bsWords(3))
	}
}
