package core

import (
	"math"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

func feedSeqWR(s *SeqWR[uint64], m int) {
	for i := 0; i < m; i++ {
		s.Observe(uint64(i), int64(i))
	}
}

func TestSeqWREmpty(t *testing.T) {
	s := NewSeqWR[uint64](xrand.New(1), 8, 2)
	if _, ok := s.Sample(); ok {
		t.Fatal("empty sampler returned a sample")
	}
}

func TestSeqWRConstructorPanics(t *testing.T) {
	for _, tc := range []struct {
		n uint64
		k int
	}{{0, 1}, {4, 0}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSeqWR(n=%d,k=%d) did not panic", tc.n, tc.k)
				}
			}()
			NewSeqWR[uint64](xrand.New(1), tc.n, tc.k)
		}()
	}
}

func TestSeqWRSampleInWindow(t *testing.T) {
	// At every point of a long stream, every returned sample must lie in the
	// current window.
	s := NewSeqWR[uint64](xrand.New(2), 16, 3)
	for i := 0; i < 500; i++ {
		s.Observe(uint64(i), int64(i))
		got, ok := s.Sample()
		if !ok || len(got) != 3 {
			t.Fatalf("step %d: ok=%v len=%d", i, ok, len(got))
		}
		lo := uint64(0)
		if i >= 16 {
			lo = uint64(i) - 15
		}
		for _, e := range got {
			if e.Index < lo || e.Index > uint64(i) {
				t.Fatalf("step %d: sample index %d outside window [%d,%d]", i, e.Index, lo, i)
			}
		}
	}
}

// TestSeqWRUniformAtOffsets is the Theorem 2.1 correctness check: at several
// stream positions — window inside first bucket, window == bucket, window
// straddling two buckets at various offsets — the sample must be uniform
// over the n active elements.
func TestSeqWRUniformAtOffsets(t *testing.T) {
	const n = 8
	const trials = 60000
	r := xrand.New(3)
	for _, m := range []int{3, 8, 11, 16, 20, 24, 29} {
		lo := 0
		if m > n {
			lo = m - n
		}
		size := m - lo
		counts := make([]int, size)
		for tr := 0; tr < trials; tr++ {
			s := NewSeqWR[uint64](r, n, 1)
			feedSeqWR(s, m)
			got, ok := s.Sample()
			if !ok {
				t.Fatalf("m=%d: no sample", m)
			}
			counts[int(got[0].Index)-lo]++
		}
		want := float64(trials) / float64(size)
		for i, c := range counts {
			if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
				t.Errorf("m=%d: window position %d sampled %d times, want about %.0f", m, i, c, want)
			}
		}
	}
}

// TestSeqWRCopiesIndependent checks that with k=2 the joint distribution of
// the two samples factors into the product of uniforms (sampling WITH
// replacement means independent copies).
func TestSeqWRCopiesIndependent(t *testing.T) {
	const n = 4
	const m = 10 // window = indexes 6..9, straddling buckets [4,8) and [8,12)
	const trials = 160000
	r := xrand.New(4)
	joint := map[[2]uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewSeqWR[uint64](r, n, 2)
		feedSeqWR(s, m)
		got, _ := s.Sample()
		joint[[2]uint64{got[0].Index, got[1].Index}]++
	}
	want := float64(trials) / (n * n)
	for a := uint64(6); a <= 9; a++ {
		for b := uint64(6); b <= 9; b++ {
			c := float64(joint[[2]uint64{a, b}])
			if math.Abs(c-want) > 5*math.Sqrt(want) {
				t.Errorf("joint(%d,%d) = %.0f, want about %.0f", a, b, c, want)
			}
		}
	}
}

// TestSeqWRDisjointWindowsIndependent is the Section 1.3.4 property: samples
// taken over non-overlapping windows are independent.
func TestSeqWRDisjointWindowsIndependent(t *testing.T) {
	const n = 4
	const trials = 160000
	r := xrand.New(5)
	joint := map[[2]uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewSeqWR[uint64](r, n, 1)
		feedSeqWR(s, n) // window A = 0..3
		a, _ := s.Sample()
		for i := n; i < 3*n; i++ { // advance 2n: window B = 8..11, disjoint from A
			s.Observe(uint64(i), int64(i))
		}
		b, _ := s.Sample()
		joint[[2]uint64{a[0].Index, b[0].Index}]++
	}
	want := float64(trials) / (n * n)
	for a := uint64(0); a < n; a++ {
		for b := uint64(2 * n); b < 3*n; b++ {
			c := float64(joint[[2]uint64{a, b}])
			if math.Abs(c-want) > 5*math.Sqrt(want) {
				t.Errorf("joint(A=%d,B=%d) = %.0f, want about %.0f", a, b, c, want)
			}
		}
	}
}

// TestSeqWRMemoryDeterministic is the Theorem 2.1 memory claim: Words()
// never exceeds a fixed linear-in-k bound, regardless of stream length or
// window size.
func TestSeqWRMemoryDeterministic(t *testing.T) {
	for _, n := range []uint64{1, 2, 16, 1024} {
		for _, k := range []int{1, 4, 16} {
			s := NewSeqWR[uint64](xrand.New(6), n, k)
			bound := 3 + k*(1+2*stream.StoredWords) // params + per copy: reservoir counter + 2 stored elements
			for i := 0; i < 5000; i++ {
				s.Observe(uint64(i), int64(i))
				if w := s.Words(); w > bound {
					t.Fatalf("n=%d k=%d step %d: Words=%d exceeds deterministic bound %d", n, k, i, w, bound)
				}
			}
			if s.MaxWords() > bound {
				t.Fatalf("n=%d k=%d: MaxWords=%d exceeds bound %d", n, k, s.MaxWords(), bound)
			}
		}
	}
}

func TestSeqWRWindowOne(t *testing.T) {
	// n=1: the sample must always be the latest element.
	s := NewSeqWR[uint64](xrand.New(7), 1, 2)
	for i := 0; i < 100; i++ {
		s.Observe(uint64(i), int64(i))
		got, ok := s.Sample()
		if !ok {
			t.Fatal("no sample")
		}
		for _, e := range got {
			if e.Index != uint64(i) {
				t.Fatalf("n=1 sample at step %d has index %d", i, e.Index)
			}
		}
	}
}

func TestSeqWRDeterminism(t *testing.T) {
	run := func() []uint64 {
		s := NewSeqWR[uint64](xrand.New(42), 16, 2)
		var out []uint64
		for i := 0; i < 200; i++ {
			s.Observe(uint64(i), int64(i))
			if got, ok := s.Sample(); ok {
				for _, e := range got {
					out = append(out, e.Index)
				}
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("determinism broken: different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism broken at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSeqWRForEachStored(t *testing.T) {
	s := NewSeqWR[uint64](xrand.New(8), 4, 3)
	feedSeqWR(s, 10)
	slots := 0
	s.ForEachStored(func(st *stream.Stored[uint64]) {
		slots++
		st.Aux = "x"
	})
	if slots == 0 || slots > 2*3 {
		t.Fatalf("visited %d slots, want between 1 and 6", slots)
	}
	// The slots handed out by SampleSlots must be among the visited ones.
	got, _ := s.SampleSlots()
	for _, st := range got {
		if st.Aux != "x" {
			t.Fatal("sample slot was not visited by ForEachStored")
		}
	}
}

func TestSeqWRAccessors(t *testing.T) {
	s := NewSeqWR[uint64](xrand.New(9), 32, 5)
	if s.N() != 32 || s.K() != 5 || s.Count() != 0 {
		t.Fatalf("accessors wrong: N=%d K=%d Count=%d", s.N(), s.K(), s.Count())
	}
	feedSeqWR(s, 7)
	if s.Count() != 7 {
		t.Fatalf("Count = %d, want 7", s.Count())
	}
}
