package core

// battery_test.go: a systematic uniformity battery over a grid of
// configurations. Each cell uses a cheap first-two-moments test (mean and
// second moment of the sampled window position) rather than a full
// chi-square, which lets the grid cover many (n, k, offset, pattern)
// combinations in seconds. The sharp chi-square tests live in the dedicated
// files; the battery's job is breadth.

import (
	"math"
	"testing"

	"slidingsample/internal/xrand"
)

// momentCheck verifies that `positions` (window positions in [0, size))
// have the mean and mean-square of the uniform distribution on {0..size-1}
// within 5.5 sigma.
func momentCheck(t *testing.T, label string, positions []float64, size int) {
	t.Helper()
	n := float64(size)
	cnt := float64(len(positions))
	var sum, sumSq float64
	for _, p := range positions {
		sum += p
		sumSq += p * p
	}
	mean := sum / cnt
	wantMean := (n - 1) / 2
	sigmaMean := math.Sqrt((n*n - 1) / 12 / cnt)
	if math.Abs(mean-wantMean) > 5.5*sigmaMean {
		t.Errorf("%s: mean %.3f, want %.3f±%.3f", label, mean, wantMean, 5.5*sigmaMean)
	}
	meanSq := sumSq / cnt
	wantSq := (n - 1) * (2*n - 1) / 6
	// Var(X²) for X uniform on {0..n-1}: E[X⁴]-E[X²]² ≈ n⁴(1/5-1/9).
	sigmaSq := math.Sqrt((math.Pow(n, 4)*(1.0/5-1.0/9) + 1) / cnt)
	if math.Abs(meanSq-wantSq) > 5.5*sigmaSq {
		t.Errorf("%s: mean-square %.1f, want %.1f±%.1f", label, meanSq, wantSq, 5.5*sigmaSq)
	}
}

func TestBatterySeqWR(t *testing.T) {
	const trials = 1200
	r := xrand.New(1)
	for _, n := range []int{2, 5, 8, 16} {
		for _, k := range []int{1, 3} {
			for _, extra := range []int{0, 1, n / 2, n - 1, n, 2*n + 3} {
				m := n + extra
				label := "SeqWR n=" + itoaT(n) + " k=" + itoaT(k) + " m=" + itoaT(m)
				var positions []float64
				for tr := 0; tr < trials; tr++ {
					s := NewSeqWR[uint64](r, uint64(n), k)
					for i := 0; i < m; i++ {
						s.Observe(uint64(i), int64(i))
					}
					got, ok := s.Sample()
					if !ok {
						t.Fatalf("%s: no sample", label)
					}
					for _, e := range got {
						positions = append(positions, float64(e.Index-uint64(m-n)))
					}
				}
				momentCheck(t, label, positions, n)
			}
		}
	}
}

func TestBatterySeqWOR(t *testing.T) {
	const trials = 1200
	r := xrand.New(2)
	for _, n := range []int{4, 9, 16} {
		for _, k := range []int{1, 2, 4} {
			for _, extra := range []int{0, n - 1, n, 3 * n / 2} {
				m := n + extra
				label := "SeqWOR n=" + itoaT(n) + " k=" + itoaT(k) + " m=" + itoaT(m)
				var positions []float64
				for tr := 0; tr < trials; tr++ {
					s := NewSeqWOR[uint64](r, uint64(n), k)
					for i := 0; i < m; i++ {
						s.Observe(uint64(i), int64(i))
					}
					got, _ := s.Sample()
					for _, e := range got {
						positions = append(positions, float64(e.Index-uint64(m-n)))
					}
				}
				// Marginals of a WOR sample are uniform; moments apply.
				momentCheck(t, label, positions, n)
			}
		}
	}
}

func TestBatteryTSWR(t *testing.T) {
	const trials = 1500
	r := xrand.New(3)
	// Several (pattern, t0, query) cells with straddles at different depths.
	type cell struct {
		name    string
		pattern []int64
		t0      int64
		now     int64
	}
	mk := func(bursts ...[2]int64) []int64 {
		var p []int64
		for _, b := range bursts {
			for i := int64(0); i < b[1]; i++ {
				p = append(p, b[0])
			}
		}
		return p
	}
	cells := []cell{
		{"flat", mk([2]int64{0, 10}), 5, 3},
		{"deep-straddle", mk([2]int64{0, 20}, [2]int64{3, 4}), 6, 8},
		{"two-bursts", mk([2]int64{0, 6}, [2]int64{2, 6}, [2]int64{5, 6}), 7, 8},
		{"tail-burst", mk([2]int64{0, 3}, [2]int64{9, 15}), 4, 11},
	}
	for _, c := range cells {
		act := activeSet(c.pattern, c.t0, c.now)
		if len(act) < 2 {
			t.Fatalf("%s: degenerate active set", c.name)
		}
		pos := map[uint64]int{}
		for i, idx := range act {
			pos[idx] = i
		}
		var positions []float64
		for tr := 0; tr < trials; tr++ {
			s := NewTSWR[uint64](r, c.t0, 1)
			for i, ts := range c.pattern {
				if ts <= c.now {
					s.Observe(uint64(i), ts)
				}
			}
			got, ok := s.SampleAt(c.now)
			if !ok {
				t.Fatalf("%s: no sample", c.name)
			}
			p, known := pos[got[0].Index]
			if !known {
				t.Fatalf("%s: sampled inactive index %d", c.name, got[0].Index)
			}
			positions = append(positions, float64(p))
		}
		momentCheck(t, "TSWR "+c.name, positions, len(act))
	}
}

func TestBatteryTSWOR(t *testing.T) {
	const trials = 1200
	r := xrand.New(4)
	pattern := burstyPattern()[:28]
	const t0, now = 10, 13
	act := activeSet(pattern, t0, now)
	pos := map[uint64]int{}
	for i, idx := range act {
		pos[idx] = i
	}
	for _, k := range []int{1, 2, 5} {
		var positions []float64
		for tr := 0; tr < trials; tr++ {
			s := NewTSWOR[uint64](r, t0, k)
			for i, ts := range pattern {
				if ts <= now {
					s.Observe(uint64(i), ts)
				}
			}
			got, ok := s.SampleAt(now)
			if !ok {
				t.Fatalf("k=%d: no sample", k)
			}
			for _, e := range got {
				p, known := pos[e.Index]
				if !known {
					t.Fatalf("k=%d: inactive index %d", k, e.Index)
				}
				positions = append(positions, float64(p))
			}
		}
		momentCheck(t, "TSWOR k="+itoaT(k), positions, len(act))
	}
}

func itoaT(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
