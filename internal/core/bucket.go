package core

import (
	"fmt"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// BS is the paper's bucket structure BS(x, y) (Section 3.1): bookkeeping for
// the index bucket B(x, y) = {p_x, ..., p_{y-1}} together with k independent
// PAIRS of uniform samples (R[j], Q[j]) from the bucket.
//
// Two independent samples per slot is the trick that makes "generating
// implicit events" possible: at query time R is the candidate output while Q
// is consumed to synthesize the unknown-probability coin of Lemma 3.7
// without biasing R.
//
// The stored fields mirror the paper's tuple {p_x, x, y, T(p_x), R, Q, r, q}:
// First carries p_x, its index x and timestamp T(p_x); each Stored sample
// carries its value, its index (the paper's r/q) and its timestamp (needed
// for the expiry tests in Lemma 3.7/3.8).
type BS[T any] struct {
	// X, Y delimit the covered index range [X, Y).
	X, Y uint64
	// First is p_X, the bucket's oldest element.
	First stream.Element[T]
	// R and Q are the k independent sample pairs; R[j] and Q[j] are each
	// uniform over the bucket, independent of each other and of every other
	// slot.
	R, Q []*stream.Stored[T]
}

// newSingletonBS builds BS(e.Index, e.Index+1) for a just-arrived element:
// over a one-element bucket the unique uniform distribution is the element
// itself, so all sample slots point at (separate copies of) it.
func newSingletonBS[T any](e stream.Element[T], k int) *BS[T] {
	p := make([]*stream.Stored[T], 2*k)
	b := &BS[T]{
		X:     e.Index,
		Y:     e.Index + 1,
		First: e,
		R:     p[:k:k],
		Q:     p[k : 2*k : 2*k],
	}
	fillSingletonSlots(b, e, k)
	return b
}

// fillSingletonSlots points every R/Q slot at fresh copies of e. The R and Q
// twins of one slot share a two-element allocation: they are born together,
// and because merges keep or drop each independently, a surviving twin pins
// at most one dead sibling — a bounded 2× slack that halves the dominant
// allocation count of the arrival hot path.
func fillSingletonSlots[T any](b *BS[T], e stream.Element[T], k int) {
	for j := 0; j < k; j++ {
		pair := &[2]stream.Stored[T]{{Elem: e}, {Elem: e}}
		b.R[j] = &pair[0]
		b.Q[j] = &pair[1]
	}
}

// Width returns |B(x,y)| = y - x.
func (b *BS[T]) Width() uint64 { return b.Y - b.X }

// mergeBS unifies two ADJACENT, EQUAL-WIDTH bucket structures into
// BS(left.X, right.Y), per Section 3.2: the merged sample R_{a,d} equals
// R_{a,c} with probability 1/2 and R_{c,d} otherwise — exactly uniform over
// the doubled bucket because the halves have equal width. Each slot and each
// of R/Q flips its own independent coin, preserving mutual independence.
//
// The surviving Stored pointers are carried over, so application auxiliary
// state (Theorem 5.1 layer) follows the sample across merges.
func mergeBS[T any](rng *xrand.Rand, left, right *BS[T]) *BS[T] {
	k := len(left.R)
	p := make([]*stream.Stored[T], 2*k)
	m := &BS[T]{R: p[:k:k], Q: p[k : 2*k : 2*k]}
	return mergeBSInto(rng, left, right, m)
}

// mergeBSInto is mergeBS writing into a pre-allocated shell (the batched
// ingest path reuses arena shells; the coins and the survivor hand-off are
// identical).
func mergeBSInto[T any](rng *xrand.Rand, left, right, m *BS[T]) *BS[T] {
	if left.Y != right.X {
		panic(fmt.Sprintf("core: mergeBS of non-adjacent buckets [%d,%d) [%d,%d)", left.X, left.Y, right.X, right.Y))
	}
	if left.Width() != right.Width() {
		panic(fmt.Sprintf("core: mergeBS of unequal widths %d and %d", left.Width(), right.Width()))
	}
	k := len(left.R)
	m.X = left.X
	m.Y = right.Y
	m.First = left.First
	for j := 0; j < k; j++ {
		if rng.Coin() {
			m.R[j] = left.R[j]
		} else {
			m.R[j] = right.R[j]
		}
		if rng.Coin() {
			m.Q[j] = left.Q[j]
		} else {
			m.Q[j] = right.Q[j]
		}
	}
	return m
}

// bsWords is the word cost of one bucket structure with k slots under the
// DESIGN.md §6 model: First (value+index+timestamp = 3) + Y (1; X is
// First.Index and not double-counted) + k*(R: 3 + Q: 3).
func bsWords(k int) int { return 4 + 6*k }
