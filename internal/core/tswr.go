package core

import (
	"fmt"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// TSWR maintains k independent uniform samples (sampling WITH replacement)
// over a timestamp-based sliding window of horizon t0 — an element with
// timestamp ts is active at time now iff now - ts < t0 — using Θ(k·log n)
// memory words at all times, where n is the number of active elements.
// This is Theorem 3.9 (k = 1) run with k independent sample slots over a
// shared, deterministic bucket skeleton.
//
// State (Lemma 3.5): at every moment the sampler holds one of
//
//  1. a covering decomposition ζ(l(t), N(t)) over exactly the active
//     elements, or
//  2. a STRADDLING bucket structure BS(y, z) with p_y expired and p_z
//     active, plus ζ(z, N(t)) over the (all active) suffix, with the
//     invariant z - y ≤ N(t)+1-z (i.e. α ≤ β).
//
// Query (Lemma 3.8): in case 1 pick a bucket with probability proportional
// to width and output its R sample. In case 2 the straddling bucket holds an
// unknown number γ of active elements; output its R sample when it is active
// AND the Lemma 3.7 implicit event (probability α/(β+γ)) fires, otherwise
// the suffix sample. Either way every active element has probability exactly
// 1/n.
//
// Sharing the skeleton across k slots is sound because bucket boundaries are
// a deterministic function of arrival indexes; all randomness lives in the
// per-slot (R, Q) pairs, the per-slot merge coins, and the per-slot query
// draws, which are mutually independent.
type TSWR[T any] struct {
	t0  int64
	k   int
	w   window.Timestamp
	rng *xrand.Rand

	count    uint64 // arrivals; the next element gets index count
	now      int64  // latest time observed (arrivals and queries both advance it)
	started  bool
	straddle *BS[T] // nil in case 1
	d        *decomp[T]

	maxWords int
}

// NewTSWR returns a sampler for k with-replacement samples over a
// timestamp-based window of horizon t0 ticks. Panics if t0 <= 0 or k <= 0.
func NewTSWR[T any](rng *xrand.Rand, t0 int64, k int) *TSWR[T] {
	if t0 <= 0 {
		panic("core: NewTSWR with t0 <= 0")
	}
	if k <= 0 {
		panic("core: NewTSWR with k <= 0")
	}
	s := &TSWR[T]{
		t0:  t0,
		k:   k,
		w:   window.Timestamp{T0: t0},
		rng: rng.Split(),
		d:   newDecomp[T](rng.Split(), k),
	}
	s.maxWords = s.Words()
	return s
}

// Observe feeds the next stream element. Timestamps must be non-decreasing;
// Observe panics otherwise (the public wrapper in the root package converts
// this to an error).
func (s *TSWR[T]) Observe(value T, ts int64) {
	e := stream.Element[T]{Value: value, Index: s.count, TS: ts}
	s.count++
	s.observeAt(e, ts)
}

// observeAt inserts element e while the current wall-clock is now. For the
// plain sampler now == e.TS; the Theorem 4.4 reduction feeds DELAYED
// elements, where e arrived in the past (e.TS <= now) and may even already
// be expired — per Lemma 4.1 such elements are skipped after clearing the
// (then fully expired) decomposition.
func (s *TSWR[T]) observeAt(e stream.Element[T], now int64) {
	if s.started && now < s.now {
		panic(fmt.Sprintf("core: TSWR time went backwards: %d after %d", now, s.now))
	}
	if e.TS > now {
		panic("core: TSWR element timestamp in the future")
	}
	s.advance(now)
	if s.w.Expired(e.TS, s.now) {
		// Everything in the structure is at least as old as e, so it is all
		// expired too (expire() above has already cleared it). Skip e.
		s.straddle = nil
		s.d.Clear()
		return
	}
	s.d.Append(e)
	if w := s.Words(); w > s.maxWords {
		s.maxWords = w
	}
}

// ObserveBatch feeds a run of elements (non-decreasing timestamps; Index is
// assigned here). State and randomness are identical to looping Observe —
// appends and merge coins happen element by element — but the expiry path is
// amortized: the Lemma 3.5 case analysis only changes state when the clock
// moves, so a burst of equal timestamps pays for one expiry scan instead of
// one per element, and the future-timestamp/already-expired guards of the
// delayed-feed path (never reachable when now == e.TS) are skipped.
func (s *TSWR[T]) ObserveBatch(batch []stream.Element[T]) {
	s.d.beginBatch()
	defer s.d.endBatch()
	for i := range batch {
		e := batch[i]
		e.Index = s.count
		s.count++
		if s.started && e.TS < s.now {
			panic(fmt.Sprintf("core: TSWR time went backwards: %d after %d", e.TS, s.now))
		}
		if !s.started || e.TS > s.now {
			s.now = e.TS
			s.started = true
			s.expire()
		}
		s.d.Append(e)
		if w := s.Words(); w > s.maxWords {
			s.maxWords = w
		}
	}
}

// advance moves the clock to max(now, current) and processes expiry per the
// Lemma 3.5 case analysis.
func (s *TSWR[T]) advance(now int64) {
	if !s.started || now > s.now {
		s.now = now
		s.started = true
	}
	s.expire()
}

// expire restores the Lemma 3.5 state invariant at time s.now:
//
//   - if the newest element p_N expired, everything did: full reset
//     (cases 2b/3b);
//   - otherwise drop every leading bucket whose FIRST element expired; the
//     last such bucket becomes the new straddling bucket (cases 2c/3c) —
//     all earlier dropped buckets contain only elements older than the new
//     straddle's first element, hence fully expired;
//   - if no leading bucket expired, the existing straddle (if any) is still
//     valid because p_z is still active (cases 2a/3a).
func (s *TSWR[T]) expire() {
	if s.d.Empty() {
		return
	}
	if s.w.Expired(s.d.Last().First.TS, s.now) {
		s.straddle = nil
		s.d.Clear()
		return
	}
	j := 0
	for j < s.d.Len() && s.w.Expired(s.d.At(j).First.TS, s.now) {
		j++
	}
	if j > 0 {
		s.straddle = s.d.At(j - 1)
		s.d.DropPrefix(j)
	}
}

// sampleStored returns the k live sample slots at time now (clock advances
// to max(now, latest)). ok is false when the window is empty.
func (s *TSWR[T]) sampleStored(now int64) ([]*stream.Stored[T], bool) {
	s.advance(now)
	if s.d.Empty() {
		return nil, false
	}
	beta := s.d.TotalWidth()
	out := make([]*stream.Stored[T], s.k)
	for j := 0; j < s.k; j++ {
		r2 := s.d.PickWeighted(j)
		if s.straddle == nil {
			out[j] = r2
			continue
		}
		r1 := s.straddle.R[j]
		if s.w.Active(r1.Elem.TS, s.now) && implicitEvent(s.rng, s.straddle, j, beta, s.w, s.now) {
			out[j] = r1
		} else {
			out[j] = r2
		}
	}
	return out, true
}

// SampleAt returns k elements, each uniform over the active window at time
// now, mutually independent. ok is false when no element is active.
// Querying advances the sampler's clock (it never rewinds).
func (s *TSWR[T]) SampleAt(now int64) ([]stream.Element[T], bool) {
	st, ok := s.sampleStored(now)
	if !ok {
		return nil, false
	}
	out := make([]stream.Element[T], len(st))
	for i, p := range st {
		out[i] = p.Elem
	}
	return out, true
}

// SampleSlots is SampleAt exposing live slots (with Aux) for the Section 5
// application layer.
func (s *TSWR[T]) SampleSlots(now int64) ([]*stream.Stored[T], bool) {
	return s.sampleStored(now)
}

// SlotsAt implements stream.SlotSampler.
func (s *TSWR[T]) SlotsAt(now int64) ([]*stream.Stored[T], bool) {
	return s.sampleStored(now)
}

// Sample queries at the latest observed time.
func (s *TSWR[T]) Sample() ([]stream.Element[T], bool) {
	return s.SampleAt(s.now)
}

// K returns the number of sample copies.
func (s *TSWR[T]) K() int { return s.k }

// Horizon returns t0.
func (s *TSWR[T]) Horizon() int64 { return s.t0 }

// Count returns the number of elements observed (including any skipped as
// already-expired by the delayed feed of Theorem 4.4).
func (s *TSWR[T]) Count() uint64 { return s.count }

// Now returns the sampler's current clock.
func (s *TSWR[T]) Now() int64 { return s.now }

// ForEachStored implements stream.SlotVisitor: visits the R and Q slots of
// the straddling bucket and of every decomposition bucket.
func (s *TSWR[T]) ForEachStored(f func(*stream.Stored[T])) {
	visit := func(b *BS[T]) {
		for _, st := range b.R {
			f(st)
		}
		for _, st := range b.Q {
			f(st)
		}
	}
	if s.straddle != nil {
		visit(s.straddle)
	}
	for i := 0; i < s.d.Len(); i++ {
		visit(s.d.At(i))
	}
}

// Words implements stream.MemoryReporter: the decomposition, the straddling
// bucket if any, and four scalars (t0, k, count, now).
func (s *TSWR[T]) Words() int {
	w := 4 + s.d.Words()
	if s.straddle != nil {
		w += bsWords(s.k)
	}
	return w
}

// MaxWords implements stream.MemoryReporter.
func (s *TSWR[T]) MaxWords() int { return s.maxWords }

// bucketCount returns the number of live bucket structures including the
// straddle (diagnostics and the E3 memory table).
func (s *TSWR[T]) bucketCount() int {
	n := s.d.Len()
	if s.straddle != nil {
		n++
	}
	return n
}
