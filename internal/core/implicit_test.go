package core

import (
	"math"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// makeStraddle builds a straddling bucket B(a, a+alpha) in which exactly the
// last gamma elements are active at time `now` under horizon t0, with the Q
// sample drawn uniformly from the bucket (as the covering decomposition
// guarantees for the real structure). Element p_{a+j} gets timestamp
// now-t0-1 (expired) for j < alpha-gamma and now (active) otherwise.
func makeStraddle(rng *xrand.Rand, a, alpha, gamma uint64, t0, now int64) *BS[uint64] {
	if gamma >= alpha {
		panic("test: gamma must be < alpha (p_a is always expired)")
	}
	tsOf := func(j uint64) int64 {
		if j < alpha-gamma {
			return now - t0 - 1
		}
		return now
	}
	b := &BS[uint64]{
		X:     a,
		Y:     a + alpha,
		First: stream.Element[uint64]{Value: a, Index: a, TS: tsOf(0)},
		R:     make([]*stream.Stored[uint64], 1),
		Q:     make([]*stream.Stored[uint64], 1),
	}
	pick := func() *stream.Stored[uint64] {
		j := rng.Uint64n(alpha)
		return &stream.Stored[uint64]{Elem: stream.Element[uint64]{Value: a + j, Index: a + j, TS: tsOf(j)}}
	}
	b.R[0] = pick()
	b.Q[0] = pick()
	return b
}

// TestImplicitEventRate is the Lemma 3.7 check: P(X=1) must equal α/(β+γ)
// for a sweep of (α, β, γ) configurations, with Q1 uniform per trial.
func TestImplicitEventRate(t *testing.T) {
	const t0, now = 100, 1000
	w := window.Timestamp{T0: t0}
	r := xrand.New(77)
	const trials = 200000
	cases := []struct{ alpha, beta, gamma uint64 }{
		{1, 1, 0},   // minimal straddle
		{1, 8, 0},   // α=1: Y=p_a always
		{4, 4, 0},   // α=β boundary, empty straddle
		{4, 4, 3},   // α=β, almost all active
		{8, 16, 3},  // generic
		{8, 16, 7},  // γ = α-1 (only p_a expired)
		{16, 64, 5}, // wide suffix
		{2, 128, 1},
	}
	for _, c := range cases {
		hits := 0
		for i := 0; i < trials; i++ {
			b := makeStraddle(r, 1000, c.alpha, c.gamma, t0, now)
			if implicitEvent(r, b, 0, c.beta, w, now) {
				hits++
			}
		}
		p := float64(c.alpha) / float64(c.beta+c.gamma)
		want := p * trials
		sigma := math.Sqrt(trials * p * (1 - p))
		if sigma < 1 {
			sigma = 1
		}
		if math.Abs(float64(hits)-want) > 5*sigma {
			t.Errorf("alpha=%d beta=%d gamma=%d: %d hits, want about %.0f (5σ=%.0f)",
				c.alpha, c.beta, c.gamma, hits, want, 5*sigma)
		}
	}
}

// TestImplicitEventUsesOnlyQ verifies independence from R: conditioning on
// the R sample's identity must not change the X rate. We fix R to each of
// the two extreme positions and compare rates.
func TestImplicitEventIndependentOfR(t *testing.T) {
	const t0, now = 100, 1000
	w := window.Timestamp{T0: t0}
	r := xrand.New(78)
	const trials = 120000
	const alpha, beta, gamma = 8, 16, 4
	rates := make([]float64, 2)
	for variant := 0; variant < 2; variant++ {
		hits := 0
		for i := 0; i < trials; i++ {
			b := makeStraddle(r, 0, alpha, gamma, t0, now)
			// Overwrite R deterministically; implicitEvent must not care.
			j := uint64(0)
			if variant == 1 {
				j = alpha - 1
			}
			b.R[0] = &stream.Stored[uint64]{Elem: stream.Element[uint64]{Index: j, TS: now}}
			if implicitEvent(r, b, 0, beta, w, now) {
				hits++
			}
		}
		rates[variant] = float64(hits) / trials
	}
	p := float64(alpha) / float64(beta+gamma)
	for v, rate := range rates {
		if math.Abs(rate-p) > 5*math.Sqrt(p*(1-p)/trials) {
			t.Errorf("variant %d: rate %.4f, want %.4f", v, rate, p)
		}
	}
}

func TestImplicitEventAlphaGreaterBetaPanics(t *testing.T) {
	r := xrand.New(79)
	b := makeStraddle(r, 0, 8, 2, 100, 1000)
	defer func() {
		if recover() == nil {
			t.Fatal("implicitEvent with alpha > beta did not panic")
		}
	}()
	implicitEvent(r, b, 0, 4, window.Timestamp{T0: 100}, 1000)
}

// TestSkewedYDistribution checks the Lemma 3.6 distribution of Y directly:
// P(Y = p_{b-i}) = β/((β+i)(β+i-1)) for 0 < i < α and
// P(Y = p_a) = β/(β+α-1). We reconstruct Y's identity from the generator's
// behaviour by instrumenting the same computation implicitEvent performs.
func TestSkewedYDistribution(t *testing.T) {
	const alpha, beta = 8, 16
	const trials = 400000
	r := xrand.New(80)
	counts := make(map[uint64]int) // i -> count, with i=alpha meaning p_a
	for tr := 0; tr < trials; tr++ {
		// Draw Q uniform over the bucket, then replicate the Y construction.
		i := r.Uint64n(alpha) + 1 // i = b - index(Q1) uniform over [1, alpha]
		y := uint64(alpha)        // default: p_a
		if i < alpha {
			if r.Bernoulli(alpha, beta+i) && r.Bernoulli(beta, beta+i-1) {
				y = i
			}
		}
		counts[y]++
	}
	check := func(label string, got int, p float64) {
		want := p * trials
		sigma := math.Sqrt(trials * p * (1 - p))
		if math.Abs(float64(got)-want) > 5*sigma {
			t.Errorf("%s: count %d, want about %.0f", label, got, want)
		}
	}
	for i := uint64(1); i < alpha; i++ {
		p := float64(beta) / (float64(beta+i) * float64(beta+i-1))
		check("Y=p_{b-"+string(rune('0'+i))+"}", counts[i], p)
	}
	check("Y=p_a", counts[alpha], float64(beta)/float64(beta+alpha-1))
}
