package core

import (
	"io"

	"slidingsample/internal/reservoir"
	"slidingsample/internal/snap"
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
)

// Snapshot kind tags. Only the public Snapshot methods write a header;
// nested structures (buckets, decompositions, delayed instances) ride the
// enclosing writer so one snapshot is one header plus a flat body.
const (
	kindSeqWOR = "core.SeqWOR"
	kindSeqWR  = "core.SeqWR"
	kindTSWR   = "core.TSWR"
	kindTSWOR  = "core.TSWOR"
)

// Every decoder here constructs structs directly instead of going through
// the New* constructors: construction draws generator splits that a
// restore must NOT re-draw (the snapshot carries the exact generator
// states), and constructors panic on bad parameters where a decoder must
// return an error. All parameters are therefore re-validated explicitly.

// ---------------------------------------------------------------------------
// Bucket structures and the covering decomposition
// ---------------------------------------------------------------------------

func encodeBS[T any](w *snap.Writer, b *BS[T]) {
	w.U64(b.X)
	w.U64(b.Y)
	snap.WriteElement(w, b.First)
	for j := range b.R {
		snap.WriteStored(w, b.R[j])
	}
	for j := range b.Q {
		snap.WriteStored(w, b.Q[j])
	}
}

// decodeBS reads one bucket structure with k sample slots. The R/Q twins
// of a live singleton share an allocation pair; the restored twins are
// distinct objects, which is semantically invisible (sharing is a memory
// optimization, never observed by any draw).
func decodeBS[T any](r *snap.Reader, k int) *BS[T] {
	b := &BS[T]{}
	b.X = r.U64()
	b.Y = r.U64()
	b.First = snap.ReadElement[T](r)
	if r.Err() != nil {
		return b
	}
	if b.Y <= b.X {
		r.Failf("core.BS with range [%d,%d)", b.X, b.Y)
		return b
	}
	p := make([]*stream.Stored[T], 2*k)
	b.R = p[:k:k]
	b.Q = p[k : 2*k : 2*k]
	for j := 0; j < k && r.Err() == nil; j++ {
		if b.R[j] = snap.ReadStored[T](r); b.R[j] == nil && r.Err() == nil {
			r.Failf("core.BS with nil R slot")
		}
	}
	for j := 0; j < k && r.Err() == nil; j++ {
		if b.Q[j] = snap.ReadStored[T](r); b.Q[j] == nil && r.Err() == nil {
			r.Failf("core.BS with nil Q slot")
		}
	}
	return b
}

func encodeDecomp[T any](w *snap.Writer, d *decomp[T]) {
	snap.WriteRand(w, d.rng)
	w.Len(len(d.list))
	for _, b := range d.list {
		encodeBS(w, b)
	}
}

// decodeDecomp reads a covering decomposition with k slots. The transient
// batch machinery (scratch double buffer, arenas) is never captured; a
// restored decomposition starts with cold buffers, which changes no draw.
func decodeDecomp[T any](r *snap.Reader, k int) *decomp[T] {
	d := &decomp[T]{k: k}
	d.rng = snap.ReadRand(r)
	if r.Err() != nil {
		return d
	}
	if d.rng == nil {
		r.Failf("core.decomp missing rng")
		return d
	}
	n := r.Len(-1)
	d.list = make([]*BS[T], 0, snap.CapHint(n))
	for i := 0; i < n && r.Err() == nil; i++ {
		b := decodeBS[T](r, k)
		if r.Err() != nil {
			break
		}
		if i > 0 && b.X != d.list[i-1].Y {
			r.Failf("core.decomp gap at bucket %d", i)
			break
		}
		d.list = append(d.list, b)
	}
	return d
}

// ---------------------------------------------------------------------------
// SeqWOR
// ---------------------------------------------------------------------------

// Snapshot writes the sampler's full state (header included) to w.
func (s *SeqWOR[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindSeqWOR)
	EncodeSeqWOR(sw, s)
	return sw.Err()
}

// EncodeSeqWOR writes the header-less body on a shared writer (for
// enclosing snapshots such as the sharded dispatchers).
func EncodeSeqWOR[T any](w *snap.Writer, s *SeqWOR[T]) {
	w.U64(s.n)
	w.Int(s.k)
	snap.WriteRand(w, s.rng)
	w.U64(s.count)
	w.Int(s.maxWords)
	reservoir.EncodeK(w, s.partial)
	if s.complete == nil {
		w.Bool(false)
	} else {
		w.Bool(true)
		w.Len(len(s.complete))
		for _, st := range s.complete {
			snap.WriteStored(w, st)
		}
	}
}

// RestoreSeqWOR reads a SeqWOR snapshot written by Snapshot.
func RestoreSeqWOR[T any](r io.Reader) (*SeqWOR[T], error) {
	sr, err := snap.NewReader(r, kindSeqWOR)
	if err != nil {
		return nil, err
	}
	s := DecodeSeqWOR[T](sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeSeqWOR reads the header-less body on a shared reader.
func DecodeSeqWOR[T any](r *snap.Reader) *SeqWOR[T] {
	s := &SeqWOR[T]{}
	s.n = r.U64()
	s.k = r.Int()
	s.rng = snap.ReadRand(r)
	s.count = r.U64()
	s.maxWords = r.Int()
	if r.Err() != nil {
		return s
	}
	if s.n == 0 || s.k <= 0 || s.k > snap.MaxParam || s.rng == nil {
		r.Failf("core.SeqWOR with n %d, k %d", s.n, s.k)
		return s
	}
	s.win = window.Sequence{N: s.n}
	s.partial = reservoir.DecodeK[T](r)
	if r.Err() != nil {
		return s
	}
	if s.partial.Cap() != s.k {
		r.Failf("core.SeqWOR partial reservoir cap %d, want %d", s.partial.Cap(), s.k)
		return s
	}
	if r.Bool() {
		n := r.Len(s.k)
		s.complete = make([]*stream.Stored[T], 0, snap.CapHint(n))
		for i := 0; i < n && r.Err() == nil; i++ {
			st := snap.ReadStored[T](r)
			if st == nil && r.Err() == nil {
				r.Failf("core.SeqWOR with nil complete slot")
				break
			}
			s.complete = append(s.complete, st)
		}
	}
	return s
}

// ---------------------------------------------------------------------------
// SeqWR
// ---------------------------------------------------------------------------

// Snapshot writes the sampler's full state (header included) to w.
func (s *SeqWR[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindSeqWR)
	EncodeSeqWR(sw, s)
	return sw.Err()
}

// EncodeSeqWR writes the header-less body on a shared writer.
func EncodeSeqWR[T any](w *snap.Writer, s *SeqWR[T]) {
	w.U64(s.n)
	w.Int(s.k)
	w.U64(s.count)
	w.Int(s.maxWords)
	for i := 0; i < s.k; i++ {
		reservoir.EncodeSingle(w, s.partial[i])
		snap.WriteStored(w, s.complete[i])
	}
}

// RestoreSeqWR reads a SeqWR snapshot written by Snapshot.
func RestoreSeqWR[T any](r io.Reader) (*SeqWR[T], error) {
	sr, err := snap.NewReader(r, kindSeqWR)
	if err != nil {
		return nil, err
	}
	s := DecodeSeqWR[T](sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeSeqWR reads the header-less body on a shared reader.
func DecodeSeqWR[T any](r *snap.Reader) *SeqWR[T] {
	s := &SeqWR[T]{}
	s.n = r.U64()
	s.k = r.Int()
	s.count = r.U64()
	s.maxWords = r.Int()
	if r.Err() != nil {
		return s
	}
	if s.n == 0 || s.k <= 0 || s.k > snap.MaxParam {
		r.Failf("core.SeqWR with n %d, k %d", s.n, s.k)
		return s
	}
	s.win = window.Sequence{N: s.n}
	s.partial = make([]*reservoir.Single[T], s.k)
	s.complete = make([]*stream.Stored[T], s.k)
	for i := 0; i < s.k && r.Err() == nil; i++ {
		s.partial[i] = reservoir.DecodeSingle[T](r)
		s.complete[i] = snap.ReadStored[T](r)
	}
	return s
}

// ---------------------------------------------------------------------------
// TSWR
// ---------------------------------------------------------------------------

// Snapshot writes the sampler's full state (header included) to w. The
// sampler must not be mid-ingest (single-goroutine contract, as ever).
func (s *TSWR[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindTSWR)
	EncodeTSWR(sw, s)
	return sw.Err()
}

// EncodeTSWR writes the header-less body on a shared writer.
func EncodeTSWR[T any](w *snap.Writer, s *TSWR[T]) {
	w.I64(s.t0)
	w.Int(s.k)
	snap.WriteRand(w, s.rng)
	w.U64(s.count)
	w.I64(s.now)
	w.Bool(s.started)
	w.Int(s.maxWords)
	if s.straddle == nil {
		w.Bool(false)
	} else {
		w.Bool(true)
		encodeBS(w, s.straddle)
	}
	encodeDecomp(w, s.d)
}

// RestoreTSWR reads a TSWR snapshot written by Snapshot.
func RestoreTSWR[T any](r io.Reader) (*TSWR[T], error) {
	sr, err := snap.NewReader(r, kindTSWR)
	if err != nil {
		return nil, err
	}
	s := DecodeTSWR[T](sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeTSWR reads the header-less body on a shared reader.
func DecodeTSWR[T any](r *snap.Reader) *TSWR[T] {
	s := &TSWR[T]{}
	s.t0 = r.I64()
	s.k = r.Int()
	s.rng = snap.ReadRand(r)
	s.count = r.U64()
	s.now = r.I64()
	s.started = r.Bool()
	s.maxWords = r.Int()
	if r.Err() != nil {
		return s
	}
	if s.t0 <= 0 || s.k <= 0 || s.k > snap.MaxParam || s.rng == nil {
		r.Failf("core.TSWR with t0 %d, k %d", s.t0, s.k)
		return s
	}
	s.w = window.Timestamp{T0: s.t0}
	if r.Bool() {
		s.straddle = decodeBS[T](r, s.k)
	}
	s.d = decodeDecomp[T](r, s.k)
	if r.Err() != nil {
		return s
	}
	// Lemma 3.5 case 2 shape: a straddle only exists alongside a non-empty
	// suffix decomposition starting where the straddle ends.
	if s.straddle != nil && (s.d.Empty() || s.d.Start() != s.straddle.Y) {
		r.Failf("core.TSWR straddle/decomposition mismatch")
	}
	return s
}

// ---------------------------------------------------------------------------
// TSWOR
// ---------------------------------------------------------------------------

// Snapshot writes the sampler's full state (header included) to w.
func (s *TSWOR[T]) Snapshot(w io.Writer) error {
	sw := snap.NewWriter(w, kindTSWOR)
	EncodeTSWOR(sw, s)
	return sw.Err()
}

// EncodeTSWOR writes the header-less body on a shared writer. The ring
// buffer is flattened oldest-first so the wire format is independent of
// the cursor position.
func EncodeTSWOR[T any](w *snap.Writer, s *TSWOR[T]) {
	w.I64(s.t0)
	w.Int(s.k)
	snap.WriteRand(w, s.rng)
	w.U64(s.count)
	w.I64(s.now)
	w.Bool(s.started)
	w.Int(s.maxWords)
	for _, inst := range s.insts {
		EncodeTSWR(w, inst)
	}
	w.Len(s.tailLen)
	for i := s.tailLen - 1; i >= 0; i-- {
		snap.WriteElement(w, s.tailFromEnd(i))
	}
}

// RestoreTSWOR reads a TSWOR snapshot written by Snapshot.
func RestoreTSWOR[T any](r io.Reader) (*TSWOR[T], error) {
	sr, err := snap.NewReader(r, kindTSWOR)
	if err != nil {
		return nil, err
	}
	s := DecodeTSWOR[T](sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeTSWOR reads the header-less body on a shared reader. The ring is
// rebuilt oldest-first from position 0 with the cursor after the newest
// element — a different in-memory rotation than the snapshotted one, but
// tailFromEnd only ever indexes relative to the cursor, so every future
// read and write lands on the same elements.
func DecodeTSWOR[T any](r *snap.Reader) *TSWOR[T] {
	s := &TSWOR[T]{}
	s.t0 = r.I64()
	s.k = r.Int()
	s.rng = snap.ReadRand(r)
	s.count = r.U64()
	s.now = r.I64()
	s.started = r.Bool()
	s.maxWords = r.Int()
	if r.Err() != nil {
		return s
	}
	if s.t0 <= 0 || s.k <= 0 || s.k > snap.MaxParam || s.rng == nil {
		r.Failf("core.TSWOR with t0 %d, k %d", s.t0, s.k)
		return s
	}
	s.w = window.Timestamp{T0: s.t0}
	s.insts = make([]*TSWR[T], s.k)
	for i := 0; i < s.k && r.Err() == nil; i++ {
		s.insts[i] = DecodeTSWR[T](r)
	}
	if r.Err() != nil {
		return s
	}
	s.tail = make([]stream.Element[T], s.k)
	s.tailLen = r.Len(s.k)
	for i := 0; i < s.tailLen && r.Err() == nil; i++ {
		s.tail[i] = snap.ReadElement[T](r)
	}
	s.tailPos = s.tailLen % s.k
	return s
}
