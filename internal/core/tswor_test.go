package core

import (
	"math"
	"testing"
	"testing/quick"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

func feedPatternWOR(s *TSWOR[uint64], pattern []int64) {
	for i, ts := range pattern {
		s.Observe(uint64(i), ts)
	}
}

func TestTSWOREmptyAndConstructorPanics(t *testing.T) {
	s := NewTSWOR[uint64](xrand.New(1), 10, 3)
	if _, ok := s.Sample(); ok {
		t.Fatal("empty sampler returned a sample")
	}
	for _, tc := range []struct {
		t0 int64
		k  int
	}{{0, 1}, {10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewTSWOR(t0=%d,k=%d) did not panic", tc.t0, tc.k)
				}
			}()
			NewTSWOR[uint64](xrand.New(1), tc.t0, tc.k)
		}()
	}
}

// TestTSWORDistinctActiveRightSize: on random bursty streams, at every step
// the sample has min(k, n) distinct active elements.
func TestTSWORDistinctActiveRightSize(t *testing.T) {
	const t0 = 8
	w := window.Timestamp{T0: t0}
	for seed := uint64(0); seed < 5; seed++ {
		r := xrand.New(seed)
		s := NewTSWOR[uint64](r.Split(), t0, 4)
		arr := streamBursty(r.Split(), 1500)
		buf := window.NewTSBuffer[uint64](t0)
		for i, ts := range arr {
			s.Observe(uint64(i), ts)
			buf.Observe(stream.Element[uint64]{Value: uint64(i), Index: uint64(i), TS: ts})
			got, ok := s.Sample()
			n := buf.Len()
			wantLen := 4
			if n < 4 {
				wantLen = n
			}
			if !ok || len(got) != wantLen {
				t.Fatalf("seed %d step %d: ok=%v len=%d want %d (n=%d)", seed, i, ok, len(got), wantLen, n)
			}
			seen := map[uint64]bool{}
			for _, e := range got {
				if w.Expired(e.TS, ts) {
					t.Fatalf("seed %d step %d: expired element in WOR sample", seed, i)
				}
				if seen[e.Index] {
					t.Fatalf("seed %d step %d: duplicate %d", seed, i, e.Index)
				}
				seen[e.Index] = true
			}
		}
	}
}

// TestTSWORUniformSubsets is the Theorem 4.4 correctness check: every
// 2-subset of the active window is equally likely, on a pattern that forces
// straddling buckets in the delayed instances.
func TestTSWORUniformSubsets(t *testing.T) {
	const t0, k = 10, 2
	const trials = 120000
	pattern := burstyPattern()[:28] // up to the ts=12 burst
	now := int64(13)
	act := activeSet(pattern, t0, now)
	n := len(act)
	if n < 4 {
		t.Fatalf("test needs a few active elements, got %d", n)
	}
	pos := map[uint64]int{}
	for i, idx := range act {
		pos[idx] = i
	}
	r := xrand.New(3)
	counts := map[[2]int]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewTSWOR[uint64](r, t0, k)
		feedPatternWOR(s, pattern)
		got, ok := s.SampleAt(now)
		if !ok || len(got) != k {
			t.Fatalf("trial %d: ok=%v len=%d", tr, ok, len(got))
		}
		a, okA := pos[got[0].Index]
		b, okB := pos[got[1].Index]
		if !okA || !okB {
			t.Fatalf("sampled inactive element: %v", got)
		}
		if a > b {
			a, b = b, a
		}
		counts[[2]int{a, b}]++
	}
	nSubsets := n * (n - 1) / 2
	if len(counts) != nSubsets {
		t.Fatalf("saw %d distinct subsets, want %d", len(counts), nSubsets)
	}
	want := float64(trials) / float64(nSubsets)
	for key, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("subset %v: %d, want about %.0f", key, c, want)
		}
	}
}

// TestTSWORInclusionProbability: each active element appears in the k-WOR
// sample with probability k/n.
func TestTSWORInclusionProbability(t *testing.T) {
	const t0, k = 10, 3
	const trials = 60000
	pattern := burstyPattern()[:28]
	now := int64(13)
	act := activeSet(pattern, t0, now)
	n := len(act)
	r := xrand.New(4)
	counts := map[uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewTSWOR[uint64](r, t0, k)
		feedPatternWOR(s, pattern)
		got, _ := s.SampleAt(now)
		for _, e := range got {
			counts[e.Index]++
		}
	}
	p := float64(k) / float64(n)
	want := p * trials
	sigma := math.Sqrt(trials * p * (1 - p))
	for _, idx := range act {
		if math.Abs(float64(counts[idx])-want) > 5*sigma {
			t.Errorf("index %d included %d times, want about %.0f", idx, counts[idx], want)
		}
	}
}

// TestTSWORSmallWindow: when n <= k the sample must be exactly the active
// set.
func TestTSWORSmallWindow(t *testing.T) {
	const t0, k = 5, 6
	s := NewTSWOR[uint64](xrand.New(5), t0, k)
	// Three elements, then let time pass so they expire one... timestamps:
	s.Observe(0, 0)
	s.Observe(1, 2)
	s.Observe(2, 4)
	got, ok := s.SampleAt(4)
	if !ok || len(got) != 3 {
		t.Fatalf("want the 3 active elements, got ok=%v len=%d", ok, len(got))
	}
	got, ok = s.SampleAt(5) // element 0 (ts=0) expires at now=5
	if !ok || len(got) != 2 {
		t.Fatalf("want 2 active elements, got ok=%v len=%d", ok, len(got))
	}
	for _, e := range got {
		if e.Index == 0 {
			t.Fatal("expired element returned")
		}
	}
	if _, ok := s.SampleAt(100); ok {
		t.Fatal("sample from empty window")
	}
}

// TestTSWORCrossesKBoundary: n shrinking through k and growing back must
// keep the sample exact/valid. k=3.
func TestTSWORCrossesKBoundary(t *testing.T) {
	const t0, k = 6, 3
	const trials = 30000
	r := xrand.New(6)
	// 10 elements at ts 0..4 (two per tick), query at 8: active = ts >= 3
	// (elements 6..9): n=4 > k. Query at 9: ts >= 4: n=2 < k.
	var pattern []int64
	for i := 0; i < 10; i++ {
		pattern = append(pattern, int64(i/2))
	}
	// n > k: statistical check of inclusion.
	actAt8 := activeSet(pattern, t0, 8)
	if len(actAt8) != 4 {
		t.Fatalf("setup wrong: n at 8 = %d", len(actAt8))
	}
	counts := map[uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewTSWOR[uint64](r, t0, k)
		feedPatternWOR(s, pattern)
		got, _ := s.SampleAt(8)
		if len(got) != k {
			t.Fatalf("n=4 > k=3: got %d", len(got))
		}
		for _, e := range got {
			counts[e.Index]++
		}
	}
	p := 3.0 / 4
	want := p * trials
	sigma := math.Sqrt(trials * p * (1 - p))
	for _, idx := range actAt8 {
		if math.Abs(float64(counts[idx])-want) > 5*sigma {
			t.Errorf("idx %d: %d, want about %.0f", idx, counts[idx], want)
		}
	}
	// n < k at 9: exact active set.
	s := NewTSWOR[uint64](r, t0, k)
	feedPatternWOR(s, pattern)
	got, ok := s.SampleAt(9)
	if !ok || len(got) != 2 {
		t.Fatalf("n=2 < k: ok=%v len=%d", ok, len(got))
	}
	// Growing back: feed two more at ts=9.
	s2 := NewTSWOR[uint64](r, t0, k)
	feedPatternWOR(s2, pattern)
	s2.Observe(10, 9)
	s2.Observe(11, 9)
	got, ok = s2.SampleAt(9)
	if !ok || len(got) != 3 {
		t.Fatalf("window regrew to n=4: ok=%v len=%d", ok, len(got))
	}
}

// TestTSWORMemoryDeterministic is the Theorem 4.4 memory claim:
// O(k log n) words, deterministically.
func TestTSWORMemoryDeterministic(t *testing.T) {
	for _, k := range []int{1, 2, 8} {
		r := xrand.New(7)
		s := NewTSWOR[uint64](r.Split(), 40, k)
		arr := streamBursty(r.Split(), 30000)
		for i, ts := range arr {
			s.Observe(uint64(i), ts)
			m := uint64(i + 1)
			// Each of the k single-slot instances is bounded as in TSWR
			// (k=1 there), plus the k-element tail buffer.
			perInst := 4 + (2*int(floorLog2(m))+3)*bsWords(1)
			bound := 4 + k*3 + k*perInst
			if w := s.Words(); w > bound {
				t.Fatalf("k=%d step %d: Words=%d exceeds %d", k, i, w, bound)
			}
		}
	}
}

func TestTSWORKOne(t *testing.T) {
	// k=1 degenerates to a single uniform sample; verify against a small
	// fixed window.
	const t0 = 10
	const trials = 40000
	pattern := []int64{0, 0, 0, 1, 2}
	r := xrand.New(8)
	counts := map[uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewTSWOR[uint64](r, t0, 1)
		feedPatternWOR(s, pattern)
		got, ok := s.SampleAt(2)
		if !ok || len(got) != 1 {
			t.Fatalf("ok=%v len=%d", ok, len(got))
		}
		counts[got[0].Index]++
	}
	want := float64(trials) / 5
	for i := uint64(0); i < 5; i++ {
		if math.Abs(float64(counts[i])-want) > 5*math.Sqrt(want) {
			t.Errorf("idx %d: %d, want about %.0f", i, counts[i], want)
		}
	}
}

func TestTSWORQuickValidity(t *testing.T) {
	f := func(seed uint64, kRaw, nRaw uint8) bool {
		k := int(kRaw%5) + 1
		n := int(nRaw%100) + 1
		r := xrand.New(seed)
		s := NewTSWOR[uint64](r.Split(), 7, k)
		arr := streamBursty(r.Split(), n)
		w := window.Timestamp{T0: 7}
		for i, ts := range arr {
			s.Observe(uint64(i), ts)
		}
		last := arr[len(arr)-1]
		got, ok := s.SampleAt(last)
		if !ok {
			return false // the newest element is always active at its own ts
		}
		seen := map[uint64]bool{}
		for _, e := range got {
			if seen[e.Index] || w.Expired(e.TS, last) {
				return false
			}
			seen[e.Index] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTSWORDeterminism(t *testing.T) {
	run := func() []uint64 {
		r := xrand.New(42)
		s := NewTSWOR[uint64](r.Split(), 9, 3)
		arr := streamBursty(r.Split(), 400)
		var out []uint64
		for i, ts := range arr {
			s.Observe(uint64(i), ts)
			if got, ok := s.Sample(); ok {
				for _, e := range got {
					out = append(out, e.Index)
				}
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("determinism broken: lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism broken at %d", i)
		}
	}
}

func TestTSWORAccessors(t *testing.T) {
	s := NewTSWOR[uint64](xrand.New(9), 11, 4)
	if s.Horizon() != 11 || s.K() != 4 || s.Count() != 0 {
		t.Fatalf("accessors wrong: %d %d %d", s.Horizon(), s.K(), s.Count())
	}
	s.Observe(0, 1)
	if s.Count() != 1 {
		t.Fatal("Count not advancing")
	}
	slots := 0
	s.ForEachStored(func(st *stream.Stored[uint64]) { slots++ })
	if slots == 0 {
		t.Fatal("no slots visited")
	}
}

func TestTSWORTimeMonotonicityPanics(t *testing.T) {
	s := NewTSWOR[uint64](xrand.New(10), 10, 2)
	s.Observe(0, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards timestamp did not panic")
		}
	}()
	s.Observe(1, 4)
}
