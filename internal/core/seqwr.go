package core

import (
	"slidingsample/internal/reservoir"
	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// SeqWR maintains k independent uniform samples (sampling WITH replacement)
// over a sequence-based sliding window of the n most recent elements, using
// Θ(k) memory words at all times — Theorem 2.1.
//
// Construction (Section 2.1, "equivalent-width partitions"): the stream is
// split into consecutive buckets B(in, (i+1)n) of exactly n elements. At any
// moment at most one bucket is "active" (complete, with a non-expired
// element) and at most one is "partial" (still filling). Each copy j keeps
//
//   - the frozen reservoir sample X_U[j] of the last completed bucket U, and
//   - a running single-element reservoir X_V[j] over the partial bucket V.
//
// The window W always satisfies W = Ua ∪ Va where Ua ⊆ U is the non-expired
// suffix of U and Va ⊆ V is the arrived prefix of V, with |Va| = |Ue| = s.
// The output rule is the paper's: Z = X_U if X_U has not expired, else
// Z = X_V; the probability that X_U expired is exactly s/n and X_V is
// uniform over the s arrived elements of V, so Z is uniform over W.
type SeqWR[T any] struct {
	n     uint64
	k     int
	win   window.Sequence
	count uint64 // total arrivals; the next element gets index count

	partial  []*reservoir.Single[T] // k running reservoirs over the partial bucket
	complete []*stream.Stored[T]    // k frozen samples of the last complete bucket (nil entries before the first bucket completes)

	// scratch holds the index-assigned elements of the batch segment being
	// ingested. Transport, not sampler state: it is empty between calls and
	// not counted by Words (same convention as the parallel channel buffers).
	scratch []stream.Element[T] //swlint:allow wordsacct recycled batch transport, empty between calls

	maxWords int
}

// NewSeqWR returns a sampler for k with-replacement samples over a window of
// the n most recent elements. Each copy gets an independent sub-generator
// derived from rng. Panics if n == 0 or k <= 0 (misconfiguration).
func NewSeqWR[T any](rng *xrand.Rand, n uint64, k int) *SeqWR[T] {
	if n == 0 {
		panic("core: NewSeqWR with n == 0")
	}
	if k <= 0 {
		panic("core: NewSeqWR with k <= 0")
	}
	s := &SeqWR[T]{
		n:        n,
		k:        k,
		win:      window.Sequence{N: n},
		partial:  make([]*reservoir.Single[T], k),
		complete: make([]*stream.Stored[T], k),
	}
	for i := range s.partial {
		s.partial[i] = reservoir.NewSingle[T](rng.Split())
	}
	s.maxWords = s.Words()
	return s
}

// Observe feeds the next stream element. Sequence-based windows ignore
// timestamps; ts is carried through so downstream consumers can still see
// it in returned samples.
func (s *SeqWR[T]) Observe(value T, ts int64) {
	e := stream.Element[T]{Value: value, Index: s.count, TS: ts}
	s.count++
	for i := 0; i < s.k; i++ {
		s.partial[i].Observe(e)
	}
	if s.count%s.n == 0 {
		// The partial bucket just completed: freeze its samples as the new
		// "last complete bucket" and recycle the reservoirs.
		for i := 0; i < s.k; i++ {
			st, ok := s.partial[i].Sample()
			if !ok {
				panic("core: SeqWR completed bucket with empty reservoir")
			}
			s.complete[i] = st
			s.partial[i].Reset()
		}
	}
	if w := s.Words(); w > s.maxWords {
		s.maxWords = w
	}
}

// ObserveBatch feeds a run of elements (Value and TS of each entry; Index is
// assigned here). State and randomness are identical to looping Observe —
// each copy owns an independent generator, so iterating copy-major over a
// segment preserves every per-copy draw sequence — but the per-element
// bookkeeping is amortized: the bucket-boundary check runs once per segment
// instead of once per element, each copy's reservoir counter stays in a
// register for the whole run, and the Θ(k) footprint scan runs at bucket
// completions and batch end, the only points where the cycle's peak (full
// partial reservoirs alongside the frozen bucket) is reachable.
func (s *SeqWR[T]) ObserveBatch(batch []stream.Element[T]) {
	for len(batch) > 0 {
		// Segment: everything up to (and including) the next bucket boundary.
		room := s.n - s.count%s.n
		seg := batch
		if uint64(len(seg)) > room {
			seg = seg[:room]
		}
		batch = batch[len(seg):]
		// Bucket-internal prefix first; the boundary element (if the segment
		// reaches it) is replayed exactly like Observe so the footprint is
		// checkpointed at the same states the per-element path sees.
		boundary := uint64(len(seg)) == room
		m := len(seg)
		if boundary {
			m--
		}
		if m > 0 {
			// Materialize arrival indexes once; all k copies read the run.
			s.scratch = s.scratch[:0]
			for _, e := range seg[:m] {
				e.Index = s.count
				s.count++
				s.scratch = append(s.scratch, e)
			}
			for i := 0; i < s.k; i++ {
				s.partial[i].ObserveRun(s.scratch)
			}
			clear(s.scratch)
			s.scratch = s.scratch[:0]
			// The footprint is monotone within a bucket, so this one check
			// captures every per-element checkpoint of the prefix.
			if w := s.Words(); w > s.maxWords {
				s.maxWords = w
			}
		}
		if boundary {
			e := seg[m]
			e.Index = s.count
			s.count++
			for i := 0; i < s.k; i++ {
				s.partial[i].Observe(e)
			}
			for i := 0; i < s.k; i++ {
				st, ok := s.partial[i].Sample()
				if !ok {
					panic("core: SeqWR completed bucket with empty reservoir")
				}
				s.complete[i] = st
				s.partial[i].Reset()
			}
			if w := s.Words(); w > s.maxWords {
				s.maxWords = w
			}
		}
	}
}

// sampleStored returns the k live sample slots (one per copy), each uniform
// over the current window, or ok=false when the stream is empty. The k
// results are mutually independent (sampling with replacement).
func (s *SeqWR[T]) sampleStored() ([]*stream.Stored[T], bool) {
	if s.count == 0 {
		return nil, false
	}
	out := make([]*stream.Stored[T], s.k)
	latest := s.count - 1
	for i := 0; i < s.k; i++ {
		switch {
		case s.count%s.n == 0:
			// Window coincides with the just-completed bucket.
			out[i] = s.complete[i]
		case s.complete[i] == nil:
			// Still inside the first bucket: the window is everything
			// arrived, which is exactly what the partial reservoir covers.
			st, _ := s.partial[i].Sample()
			out[i] = st
		default:
			xu := s.complete[i]
			if s.win.Active(xu.Elem.Index, latest) {
				out[i] = xu
			} else {
				st, _ := s.partial[i].Sample()
				out[i] = st
			}
		}
	}
	return out, true
}

// Sample returns k elements, each uniformly distributed over the current
// window, independent across calls is NOT implied (the same retained samples
// are returned until the stream advances). ok is false while the stream is
// empty.
func (s *SeqWR[T]) Sample() ([]stream.Element[T], bool) {
	st, ok := s.sampleStored()
	if !ok {
		return nil, false
	}
	out := make([]stream.Element[T], len(st))
	for i, p := range st {
		out[i] = p.Elem
	}
	return out, true
}

// SampleSlots is Sample exposing the live slots (with Aux) instead of
// element copies; the Section 5 estimators read their per-slot auxiliary
// state through it.
func (s *SeqWR[T]) SampleSlots() ([]*stream.Stored[T], bool) {
	return s.sampleStored()
}

// SlotsAt implements stream.SlotSampler (sequence windows ignore now).
func (s *SeqWR[T]) SlotsAt(int64) ([]*stream.Stored[T], bool) {
	return s.sampleStored()
}

// K returns the number of sample copies.
func (s *SeqWR[T]) K() int { return s.k }

// N returns the window size.
func (s *SeqWR[T]) N() uint64 { return s.n }

// Count returns the number of elements observed so far.
func (s *SeqWR[T]) Count() uint64 { return s.count }

// ForEachStored implements stream.SlotVisitor: visits the frozen
// complete-bucket samples and the running partial-bucket reservoirs of all
// k copies — every element the sampler currently retains.
func (s *SeqWR[T]) ForEachStored(f func(*stream.Stored[T])) {
	for i := 0; i < s.k; i++ {
		if s.complete[i] != nil {
			f(s.complete[i])
		}
		s.partial[i].ForEachStored(f)
	}
}

// Words implements stream.MemoryReporter. Per copy: the partial reservoir
// (counter + at most one stored element) plus at most one frozen stored
// element; plus the arrival counter and the two parameters.
func (s *SeqWR[T]) Words() int {
	w := 3 // n, k, count
	for i := 0; i < s.k; i++ {
		w += s.partial[i].Words()
		if s.complete[i] != nil {
			w += stream.StoredWords
		}
	}
	return w
}

// MaxWords implements stream.MemoryReporter.
func (s *SeqWR[T]) MaxWords() int { return s.maxWords }
