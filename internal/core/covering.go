package core

import (
	"fmt"
	"math/bits"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// decomp maintains the paper's covering decomposition ζ(a, b) (Definition
// 3.1): an ordered list of bucket structures partitioning the index range
// [a, b], with bucket widths following the binary-counter pattern
//
//	ζ(b, b)  = ⟨BS(b, b+1)⟩
//	ζ(a, b)  = ⟨BS(a, c), ζ(c, b)⟩,  c = a + 2^(⌊log(b+1-a)⌋ - 1)
//
// so |ζ(a,b)| = O(log(b-a)) and the first bucket always covers at most half
// of the range — the invariant (α ≤ β) that Lemma 3.7's coin needs.
//
// Appending element p_{b+1} applies the paper's Incr operator, which
// Lemma 3.4 proves rebuilds exactly ζ(a, b+1): walk the list front to back;
// at each position either keep the head bucket (when ⌊log(m+1)⌋ = ⌊log m⌋
// for the remaining range size m) or merge the first two — they provably
// have equal width at that point — and continue; finally append the new
// element as a fresh width-1 bucket. The covering_test.go property test
// checks our Incr against Definition 3.1 literally.
type decomp[T any] struct {
	k    int
	rng  *xrand.Rand
	list []*BS[T]
	// scratch is the double buffer for incr: each increment rebuilds the
	// list, and reusing the previous backing array keeps the steady-state
	// arrival path allocation-free for the list itself.
	scratch []*BS[T] //swlint:allow wordsacct rebuild double buffer for list; live buckets are counted via list
	// batch mode (set by the samplers' ObserveBatch around their append
	// loops): bucket structures come from the chunked arenas and the
	// GC-hygiene clears of the retired double buffer are deferred to
	// endBatch. Neither changes any random draw or any live state.
	batch    bool
	useArena bool
	// arena serves singletons (short-lived: merged away within a few
	// arrivals or at most one survives as the straddle, so big chunks are
	// safe); mergeArena serves merged buckets, which can live as long as
	// their width — its chunks are kept small so a long-lived bucket pins
	// at most ~1KiB of slab, bounding the total pinned slack at
	// O(log n · mergeChunk) per sampler.
	arena      bsArena[T] //swlint:allow wordsacct recycled slab allocator; live buckets are counted via list
	mergeArena bsArena[T] //swlint:allow wordsacct recycled merge slab; live buckets are counted via list
}

// arenaMaxK bounds the slot count up to which the batch path draws bucket
// shells from the arena. Beyond it the per-element cost is dominated by the
// 2k slot fills themselves and the slab turnover raises GC-assist pressure
// past what the two saved allocations buy back (measured in
// BenchmarkBatch_TSWR: k=1 gains ~25%, k=16 loses ~8% with the arena on).
const arenaMaxK = 8

// bsArena hands out bucket structures and their R/Q pointer blocks from
// chunked slabs, replacing two allocations per bucket with two per chunk.
// A live bucket pins its whole chunk, so the chunk size must match the
// bucket lifetime (see the decomp field comments). The long-lived Stored
// slots are still allocated individually (in twin pairs) — a batch-wide
// Stored slab would let one surviving sample pin the whole batch's slots.
type bsArena[T any] struct {
	chunk int
	bss   []BS[T]
	ptrs  []*stream.Stored[T]
}

const (
	arenaChunk = 64 // singleton arena: short-lived buckets, big chunks
	mergeChunk = 8  // merge arena: long-lived buckets, small chunks
)

// shell returns an empty bucket structure with its R/Q pointer block wired
// up, taken from the chunked slabs.
func (a *bsArena[T]) shell(k int) *BS[T] {
	if len(a.bss) == 0 {
		a.bss = make([]BS[T], a.chunk)
	}
	b := &a.bss[0]
	a.bss = a.bss[1:]
	if len(a.ptrs) < 2*k {
		// Cap the pointer chunk around 2KiB: bigger slabs raise GC-assist
		// pressure past what the saved allocations buy back.
		per := a.chunk
		if lim := 256 / k; per > lim {
			per = lim
		}
		if per < 4 {
			per = 4
		}
		a.ptrs = make([]*stream.Stored[T], per*2*k)
	}
	p := a.ptrs[: 2*k : 2*k]
	a.ptrs = a.ptrs[2*k:]
	b.R, b.Q = p[:k:k], p[k:2*k:2*k]
	return b
}

func (a *bsArena[T]) singleton(e stream.Element[T], k int) *BS[T] {
	b := a.shell(k)
	b.X, b.Y = e.Index, e.Index+1
	b.First = e
	fillSingletonSlots(b, e, k)
	return b
}

// beginBatch/endBatch bracket a batched append run. endBatch restores the
// per-element GC hygiene: both double-buffer backings are scrubbed of stale
// bucket pointers beyond the live prefix.
func (d *decomp[T]) beginBatch() {
	d.batch = true
	d.useArena = d.k <= arenaMaxK
	d.arena.chunk = arenaChunk
	d.mergeArena.chunk = mergeChunk
}

func (d *decomp[T]) endBatch() {
	d.batch = false
	d.useArena = false
	clearPtrs(d.scratch[:cap(d.scratch)])
	clearPtrs(d.list[len(d.list):cap(d.list)])
}

func newDecomp[T any](rng *xrand.Rand, k int) *decomp[T] {
	return &decomp[T]{k: k, rng: rng}
}

// floorLog2 returns ⌊log₂ x⌋ for x >= 1.
func floorLog2(x uint64) uint {
	if x == 0 {
		panic("core: floorLog2(0)")
	}
	return uint(63 - bits.LeadingZeros64(x))
}

// Empty reports whether the decomposition covers nothing.
func (d *decomp[T]) Empty() bool { return len(d.list) == 0 }

// Start returns a, the first covered index. Panics when empty.
func (d *decomp[T]) Start() uint64 { return d.list[0].X }

// End returns b+1, one past the last covered index. Panics when empty.
func (d *decomp[T]) End() uint64 { return d.list[len(d.list)-1].Y }

// TotalWidth returns the number of covered elements.
func (d *decomp[T]) TotalWidth() uint64 {
	if d.Empty() {
		return 0
	}
	return d.End() - d.Start()
}

// Last returns the most recent bucket structure (always width 1: the Incr
// operator ends by appending the new element as a singleton).
func (d *decomp[T]) Last() *BS[T] { return d.list[len(d.list)-1] }

// Append adds the next element. If the decomposition is empty it starts a
// fresh ζ(e.Index, e.Index); otherwise e.Index must equal End() and the
// paper's Incr operator runs.
func (d *decomp[T]) Append(e stream.Element[T]) {
	var fresh *BS[T]
	if d.useArena {
		fresh = d.arena.singleton(e, d.k)
	} else {
		fresh = newSingletonBS(e, d.k)
	}
	if len(d.list) == 0 {
		d.list = append(d.list, fresh)
		return
	}
	if e.Index != d.End() {
		panic(fmt.Sprintf("core: decomp.Append index %d, want %d", e.Index, d.End()))
	}
	d.incr(e, fresh)
}

// incr is the Incr operator of Section 3.2 in iterative form. The recursion
//
//	Incr(ζ(b,b))   = ⟨BS(b,b+1), BS(b+1,b+2)⟩
//	Incr(ζ(a,b))   = ⟨BS(a,v), Incr(ζ(v,b))⟩
//
// is tail-shaped: each step either retains the head bucket (v = c) or
// replaces the first two buckets by their merge (v = d), then continues on
// the remaining suffix, which is itself a covering decomposition. The merge
// case fires exactly when b+2-a crosses a power of two, in which case the
// paper shows the first two buckets have equal width 2^(i-2).
func (d *decomp[T]) incr(e stream.Element[T], fresh *BS[T]) {
	end := d.End() // b+1
	out := d.scratch[:0]
	i := 0
	for {
		if len(d.list)-i == 1 {
			// Base case Incr(ζ(b,b)): the remaining suffix is the width-1
			// bucket of the newest element; append the fresh singleton.
			if d.list[i].Width() != 1 {
				panic("core: decomp invariant violated: singleton suffix with width > 1")
			}
			out = append(out, d.list[i], fresh)
			break
		}
		a := d.list[i].X
		m := end - a // b + 1 - a
		if floorLog2(m+1) == floorLog2(m) {
			out = append(out, d.list[i])
			i++
			continue
		}
		if d.useArena {
			out = append(out, mergeBSInto(d.rng, d.list[i], d.list[i+1], d.mergeArena.shell(d.k)))
		} else {
			out = append(out, mergeBS(d.rng, d.list[i], d.list[i+1]))
		}
		i += 2
	}
	d.list, d.scratch = out, d.list
	// Drop stale bucket pointers from the retired buffer so merged-away
	// structures become collectable (deferred to endBatch in batch mode —
	// the buffers ping-pong within the batch anyway).
	if !d.batch {
		clearPtrs(d.scratch)
	}
}

func clearPtrs[T any](s []*BS[T]) {
	for i := range s {
		s[i] = nil
	}
}

// DropPrefix discards the first j bucket structures (they represent only
// expired elements, or have been handed off as the straddling bucket).
func (d *decomp[T]) DropPrefix(j int) {
	if j < 0 || j > len(d.list) {
		panic("core: decomp.DropPrefix out of range")
	}
	d.list = append(d.list[:0:0], d.list[j:]...) // fresh backing array: avoid retaining dropped buckets
}

// Clear discards everything.
func (d *decomp[T]) Clear() { d.list = nil }

// Len returns the number of bucket structures.
func (d *decomp[T]) Len() int { return len(d.list) }

// At returns the i-th bucket structure.
func (d *decomp[T]) At(i int) *BS[T] { return d.list[i] }

// PickWeighted returns slot j's R sample of a bucket chosen with probability
// proportional to its width — a uniform sample over ALL covered elements,
// because each bucket's R is uniform within the bucket. One fresh integer
// draw per call; exact arithmetic.
func (d *decomp[T]) PickWeighted(slot int) *stream.Stored[T] {
	total := d.TotalWidth()
	if total == 0 {
		panic("core: PickWeighted on empty decomposition")
	}
	u := d.rng.Uint64n(total)
	for _, b := range d.list {
		w := b.Width()
		if u < w {
			return b.R[slot]
		}
		u -= w
	}
	panic("core: PickWeighted fell off the end")
}

// Words returns the word cost of the whole decomposition.
func (d *decomp[T]) Words() int {
	return len(d.list) * bsWords(d.k)
}

// widths returns the bucket widths front to back (test/diagnostic helper).
func (d *decomp[T]) widths() []uint64 {
	out := make([]uint64, len(d.list))
	for i, b := range d.list {
		out[i] = b.Width()
	}
	return out
}

// checkInvariants panics if the structural invariants of Definition 3.1 do
// not hold: contiguous coverage, width-1 tail, and the exact width sequence
// of ζ(Start, End-1). Used by tests (and cheap enough for debug builds).
func (d *decomp[T]) checkInvariants() {
	if len(d.list) == 0 {
		return
	}
	for i := 1; i < len(d.list); i++ {
		if d.list[i].X != d.list[i-1].Y {
			panic(fmt.Sprintf("core: decomp gap between bucket %d and %d", i-1, i))
		}
	}
	want := referenceWidths(d.TotalWidth())
	got := d.widths()
	if len(want) != len(got) {
		panic(fmt.Sprintf("core: decomp widths %v, want %v", got, want))
	}
	for i := range want {
		if want[i] != got[i] {
			panic(fmt.Sprintf("core: decomp widths %v, want %v", got, want))
		}
	}
}

// referenceWidths computes the bucket widths of ζ(a, a+m-1) directly from
// Definition 3.1 (independent of Incr): for m = 1 the single width-1 bucket;
// otherwise the head has width 2^(⌊log m⌋ - 1) followed by the decomposition
// of the remaining m - head elements.
func referenceWidths(m uint64) []uint64 {
	var out []uint64
	for m > 1 {
		w := uint64(1) << (floorLog2(m) - 1)
		out = append(out, w)
		m -= w
	}
	if m == 1 {
		out = append(out, 1)
	}
	return out
}
