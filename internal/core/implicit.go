package core

import (
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// implicitEvent generates the Lemma 3.7 random variable X with
//
//	P(X = 1) = α / (β + γ) = α / n
//
// where α is the width of the straddling bucket B1 = B(a, b), β is the
// number of elements after it (all active), and γ — the number of still
// active elements inside B1 — is UNKNOWN to the algorithm. This is the
// paper's "generating implicit events" technique, the step that removes the
// need to know the window size n = β + γ.
//
// Construction:
//
//	Lemma 3.6 — from the bucket's auxiliary uniform sample Q1 build a skewed
//	sample Y over B1 with P(Y = p_{b-i}) = β/((β+i)(β+i-1)) for 0 < i < α and
//	P(Y = p_a) = β/(β+α-1). Writing i = b - index(Q1) ∈ [1, α], we let
//	Y = Q1's element when i < α and the coin H_i (probability
//	αβ/((β+i)(β+i-1))) comes up heads, and Y = p_a otherwise. The telescoping
//	sum in the paper shows P(Y is expired) = β/(β+γ).
//
//	Lemma 3.7 — X = [Y is expired] ∧ S with an independent coin S of
//	probability α/β (valid because the Lemma 3.5 case-2 invariant gives
//	α ≤ β). Then P(X=1) = (β/(β+γ))·(α/β) = α/(β+γ).
//
// Exact integer arithmetic: H_i is drawn as the conjunction of two rational
// Bernoulli events Bern(α, β+i) ∧ Bern(β, β+i-1) — both well-formed because
// α ≤ β and i ≥ 1 — whose product is the required probability without any
// uint64 overflow in the denominator.
//
// X is a function of Q1 and fresh coins only, hence independent of the
// bucket's R sample and of every other bucket's samples, as Lemma 3.8 needs.
func implicitEvent[T any](rng *xrand.Rand, straddle *BS[T], slot int, beta uint64, w window.Timestamp, now int64) bool {
	alpha := straddle.Width()
	if alpha > beta {
		panic("core: implicitEvent invariant alpha <= beta violated")
	}
	q := straddle.Q[slot]
	i := straddle.Y - q.Elem.Index // in [1, alpha]
	if i == 0 || i > alpha {
		panic("core: implicitEvent Q sample outside its bucket")
	}

	yExpired := true // Y = p_a, expired by the straddling-bucket invariant (y_t < l(t))
	if i < alpha {
		// H_i: probability αβ/((β+i)(β+i-1)), drawn as two exact factors.
		if rng.Bernoulli(alpha, beta+i) && rng.Bernoulli(beta, beta+i-1) {
			// Y = Q1's element; its expiry is decided by its own timestamp.
			yExpired = w.Expired(q.Elem.TS, now)
		}
	}
	if !yExpired {
		return false
	}
	// S: probability α/β, independent of everything above.
	return rng.Bernoulli(alpha, beta)
}
