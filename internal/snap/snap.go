// Package snap is the versioned binary snapshot codec behind every
// sampler's Snapshot/Restore pair.
//
// Format: a snapshot is a header followed by a flat little-endian body.
//
//	magic   4 bytes  "SWS1"
//	version u16      snap.Version
//	kind    string   length-prefixed type tag, e.g. "core.TSWOR"
//	body    ...      fixed-width u64-based primitives, length-prefixed
//	                 strings/bytes, tagged values
//
// The header pins both the codec version and the concrete type, so a
// reader pointed at the wrong snapshot fails loudly instead of decoding
// garbage. Both Writer and Reader are sticky-error: the first failure is
// latched and every later call is a no-op, so encode/decode code reads as
// straight-line field lists with a single Err() check at the end.
//
// Decoders must never panic on corrupt input (the FuzzRestore batteries
// enforce this): all length prefixes are bounded before allocation, byte
// payloads are read in chunks so a lying length hits EOF before OOM, and
// every numeric parameter is validated by the caller after decode.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// Version is the current snapshot format version. Bump it only with a
// migration path: old-version snapshots are rejected, not skewed.
const Version = 1

// magic identifies a slidingsample snapshot stream.
var magic = [4]byte{'S', 'W', 'S', '1'}

// Limits on length prefixes. They bound allocation on corrupt input; real
// snapshots stay far below them (samplers are O(k·log n) words).
const (
	// MaxString bounds a length-prefixed string or byte payload.
	MaxString = 1 << 20
	// MaxLen bounds a collection length prefix.
	MaxLen = 1 << 24
	// MaxParam bounds decoded structural parameters (k, g, n) that size
	// allocations directly: a corrupt parameter must not buy a 100MB+
	// make before the next read hits EOF. Real parameters are orders of
	// magnitude below this.
	MaxParam = 1 << 20
	// chunk is the incremental read size for byte payloads: a corrupt
	// length prefix exhausts the reader before it exhausts memory.
	chunk = 64 << 10
)

// ErrFormat is wrapped by every decode failure that indicates a
// malformed, truncated, or mismatched snapshot (as opposed to an
// underlying I/O error).
var ErrFormat = errors.New("snap: malformed snapshot")

// Errorf returns a decode error wrapping ErrFormat.
func Errorf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrFormat}, args...)...)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

// Writer encodes a snapshot body. Construct with NewWriter, which emits
// the header; check Err (or Close) once after the last field.
type Writer struct {
	w   io.Writer
	err error
	buf [8]byte
}

// NewWriter emits the magic+version+kind header and returns a body writer.
func NewWriter(w io.Writer, kind string) *Writer {
	sw := &Writer{w: w}
	if _, err := w.Write(magic[:]); err != nil {
		sw.err = err
		return sw
	}
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], Version)
	if _, err := w.Write(v[:]); err != nil {
		sw.err = err
		return sw
	}
	sw.String(kind)
	return sw
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	if w.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:])
}

// I64 writes an int64 (two's-complement u64).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int (as int64; the decoder bound-checks on the way back).
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes a float64 via its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a bool as one u64 (0 or 1; fixed width keeps the format
// trivially seekable and the golden fixtures easy to eyeball).
func (w *Writer) Bool(v bool) {
	if v {
		w.U64(1)
	} else {
		w.U64(0)
	}
}

// Bytes writes a length-prefixed byte payload.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	if w.err != nil || len(b) == 0 {
		return
	}
	_, w.err = w.w.Write(b)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// Len writes a collection length prefix.
func (w *Writer) Len(n int) { w.U64(uint64(n)) }

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

// Reader decodes a snapshot body. Construct with NewReader, which
// verifies the header; check Err once after the last field.
type Reader struct {
	r   io.Reader
	err error
	buf [8]byte
}

// NewReader verifies the magic, version, and kind header. A mismatch is a
// hard error: restoring a "core.SeqWR" stream into a TSWOR decoder must
// fail before a single body field is read.
func NewReader(r io.Reader, kind string) (*Reader, error) {
	sr := &Reader{r: r}
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, Errorf("reading magic: %v", err)
	}
	if m != magic {
		return nil, Errorf("bad magic %q", m[:])
	}
	var v [2]byte
	if _, err := io.ReadFull(r, v[:]); err != nil {
		return nil, Errorf("reading version: %v", err)
	}
	if got := binary.LittleEndian.Uint16(v[:]); got != Version {
		return nil, Errorf("unsupported snapshot version %d (want %d)", got, Version)
	}
	got := sr.String()
	if sr.err != nil {
		return nil, sr.err
	}
	if got != kind {
		return nil, Errorf("snapshot kind %q, want %q", got, kind)
	}
	return sr, nil
}

// PeekKind reads a snapshot header and returns its kind string without
// requiring the caller to know it in advance. Used by dispatching
// restorers (substrate.Restore) that route on the kind.
func PeekKind(r io.Reader) (string, error) {
	sr := &Reader{r: r}
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return "", Errorf("reading magic: %v", err)
	}
	if m != magic {
		return "", Errorf("bad magic %q", m[:])
	}
	var v [2]byte
	if _, err := io.ReadFull(r, v[:]); err != nil {
		return "", Errorf("reading version: %v", err)
	}
	if got := binary.LittleEndian.Uint16(v[:]); got != Version {
		return "", Errorf("unsupported snapshot version %d (want %d)", got, Version)
	}
	kind := sr.String()
	if sr.err != nil {
		return "", sr.err
	}
	return kind, nil
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Fail latches an error from the caller (semantic validation failures).
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Failf latches a formatted ErrFormat-wrapping error.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = Errorf(format, args...)
	}
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		r.err = Errorf("truncated: %v", err)
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:])
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int, rejecting values outside the platform int range.
func (r *Reader) Int() int {
	v := r.I64()
	if int64(int(v)) != v {
		r.Failf("int out of range: %d", v)
		return 0
	}
	return int(v)
}

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a bool, rejecting anything but 0 or 1.
func (r *Reader) Bool() bool {
	switch v := r.U64(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Failf("bad bool %d", v)
		return false
	}
}

// Bytes reads a length-prefixed byte payload, bounded by MaxString and
// read in chunks so a corrupt length hits EOF before a huge allocation.
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > MaxString {
		r.Failf("byte payload length %d exceeds limit", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, 0, min(int(n), chunk))
	remaining := int(n)
	for remaining > 0 {
		step := min(remaining, chunk)
		start := len(out)
		out = append(out, make([]byte, step)...)
		if _, err := io.ReadFull(r.r, out[start:]); err != nil {
			r.err = Errorf("truncated payload: %v", err)
			return nil
		}
		remaining -= step
	}
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// CapHint bounds an initial slice capacity taken from a decoded length:
// the claimed length may lie on corrupt input, so decoders allocate
// small and let append grow toward the real, EOF-bounded element count.
func CapHint(n int) int {
	if n < 0 {
		return 0
	}
	if n > 4096 {
		return 4096
	}
	return n
}

// Len reads a collection length prefix bounded by max (and MaxLen).
// Slice-decode loops must also guard on Err() so a latched failure does
// not spin on zero-value reads.
func (r *Reader) Len(max int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	limit := uint64(MaxLen)
	if max >= 0 && uint64(max) < limit {
		limit = uint64(max)
	}
	if n > limit {
		r.Failf("collection length %d exceeds limit %d", n, limit)
		return 0
	}
	return int(n)
}

// ---------------------------------------------------------------------------
// Tagged value codec (for generic element payloads)
// ---------------------------------------------------------------------------

// Value type tags. Samplers are generic over T; snapshots store each value
// behind a one-byte-equivalent tag so the decoder can verify the dynamic
// type matches the sampler's T.
const (
	tagString  = 1
	tagBytes   = 2
	tagUint64  = 3
	tagInt64   = 4
	tagInt     = 5
	tagFloat64 = 6
	tagBool    = 7
)

// WriteValue encodes a supported dynamic value. Unsupported types latch an
// error: snapshotting is defined for the payload types the serving layer
// and experiments actually stream (strings, byte slices, integers,
// floats, bools).
func WriteValue(w *Writer, v any) {
	switch x := v.(type) {
	case string:
		w.U64(tagString)
		w.String(x)
	case []byte:
		w.U64(tagBytes)
		w.Bytes(x)
	case uint64:
		w.U64(tagUint64)
		w.U64(x)
	case int64:
		w.U64(tagInt64)
		w.I64(x)
	case int:
		w.U64(tagInt)
		w.Int(x)
	case float64:
		w.U64(tagFloat64)
		w.F64(x)
	case bool:
		w.U64(tagBool)
		w.Bool(x)
	default:
		if w.err == nil {
			w.err = fmt.Errorf("snap: unsupported value type %T", v)
		}
	}
}

// ReadValue decodes a tagged value and asserts it has type T.
func ReadValue[T any](r *Reader) T {
	var zero T
	var decoded any
	switch tag := r.U64(); tag {
	case tagString:
		decoded = r.String()
	case tagBytes:
		decoded = r.Bytes()
	case tagUint64:
		decoded = r.U64()
	case tagInt64:
		decoded = r.I64()
	case tagInt:
		decoded = r.Int()
	case tagFloat64:
		decoded = r.F64()
	case tagBool:
		decoded = r.Bool()
	default:
		if r.err == nil {
			r.Failf("bad value tag %d", tag)
		}
		return zero
	}
	if r.err != nil {
		return zero
	}
	out, ok := decoded.(T)
	if !ok {
		r.Failf("value type %T does not match sampler payload %T", decoded, zero)
		return zero
	}
	return out
}

// ---------------------------------------------------------------------------
// Shared structure helpers
// ---------------------------------------------------------------------------

// WriteElement encodes a stream.Element.
func WriteElement[T any](w *Writer, e stream.Element[T]) {
	WriteValue(w, e.Value)
	w.U64(e.Index)
	w.I64(e.TS)
}

// ReadElement decodes a stream.Element.
func ReadElement[T any](r *Reader) stream.Element[T] {
	var e stream.Element[T]
	e.Value = ReadValue[T](r)
	e.Index = r.U64()
	e.TS = r.I64()
	return e
}

// WriteStored encodes a *stream.Stored with a nil marker. The Aux field is
// NOT captured: it is scratch owned by the estimator layer, rebuilt on the
// next query (DESIGN.md §10 documents this).
func WriteStored[T any](w *Writer, st *stream.Stored[T]) {
	if st == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	WriteElement(w, st.Elem)
}

// ReadStored decodes a *stream.Stored (nil-aware; Aux restored as nil).
func ReadStored[T any](r *Reader) *stream.Stored[T] {
	if !r.Bool() {
		return nil
	}
	return &stream.Stored[T]{Elem: ReadElement[T](r)}
}

// WriteRand encodes the full xorshiro state of a generator.
func WriteRand(w *Writer, rng *xrand.Rand) {
	if rng == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	s0, s1, s2, s3 := rng.State()
	w.U64(s0)
	w.U64(s1)
	w.U64(s2)
	w.U64(s3)
}

// ReadRand decodes a generator (nil-aware).
func ReadRand(r *Reader) *xrand.Rand {
	if !r.Bool() {
		return nil
	}
	rng := xrand.New(0)
	rng.SetState(r.U64(), r.U64(), r.U64(), r.U64())
	if r.err != nil {
		return nil
	}
	return rng
}

// WriteRandValue encodes a by-value generator (the weighted skybands embed
// their Rand inline).
func WriteRandValue(w *Writer, rng *xrand.Rand) {
	s0, s1, s2, s3 := rng.State()
	w.U64(s0)
	w.U64(s1)
	w.U64(s2)
	w.U64(s3)
}

// ReadRandValue decodes a by-value generator.
func ReadRandValue(r *Reader) xrand.Rand {
	var rng xrand.Rand
	rng.SetState(r.U64(), r.U64(), r.U64(), r.U64())
	return rng
}
