package snap

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

func TestRoundTripPrimitives(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "test.Kind")
	w.U64(math.MaxUint64)
	w.I64(-42)
	w.Int(7)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.Bool(true)
	w.Bool(false)
	w.String("hello, snapshot")
	w.Bytes(nil)
	w.Len(3)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()), "test.Kind")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.U64(); got != math.MaxUint64 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 7 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if got := r.Bool(); !got {
		t.Error("Bool = false, want true")
	}
	if got := r.Bool(); got {
		t.Error("Bool = true, want false")
	}
	if got := r.String(); got != "hello, snapshot" {
		t.Errorf("String = %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("empty Bytes = %v", got)
	}
	if got := r.Len(10); got != 3 {
		t.Errorf("Len = %d", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripTaggedValues(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "test.Values")
	WriteElement(w, stream.Element[string]{Value: "e", Index: 9, TS: 4})
	WriteStored(w, &stream.Stored[uint64]{Elem: stream.Element[uint64]{Value: 77, Index: 1, TS: 2}})
	WriteStored[uint64](w, nil)
	rng := xrand.New(5)
	rng.Uint64()
	WriteRand(w, rng)
	WriteRand(w, nil)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()), "test.Values")
	if err != nil {
		t.Fatal(err)
	}
	if e := ReadElement[string](r); e.Value != "e" || e.Index != 9 || e.TS != 4 {
		t.Errorf("Element = %+v", e)
	}
	if st := ReadStored[uint64](r); st == nil || st.Elem.Value != 77 {
		t.Errorf("Stored = %+v", st)
	}
	if st := ReadStored[uint64](r); st != nil {
		t.Errorf("nil Stored = %+v", st)
	}
	got := ReadRand(r)
	if got == nil || got.Uint64() != rng.Uint64() {
		t.Error("restored rng diverged from original")
	}
	if nr := ReadRand(r); nr != nil {
		t.Error("nil rng round-trip produced a rng")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "test.A")
	w.U64(1)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(bytes.NewReader(buf.Bytes()), "test.B"); !errors.Is(err, ErrFormat) {
		t.Errorf("kind mismatch error = %v, want ErrFormat", err)
	}
	if kind, err := PeekKind(bytes.NewReader(buf.Bytes())); err != nil || kind != "test.A" {
		t.Errorf("PeekKind = %q, %v", kind, err)
	}
	bad := bytes.Clone(buf.Bytes())
	bad[0] = 'X'
	if _, err := NewReader(bytes.NewReader(bad), "test.A"); !errors.Is(err, ErrFormat) {
		t.Errorf("magic mismatch error = %v, want ErrFormat", err)
	}
	bad = bytes.Clone(buf.Bytes())
	bad[4], bad[5] = 0xFE, 0xCA
	if _, err := NewReader(bytes.NewReader(bad), "test.A"); !errors.Is(err, ErrFormat) {
		t.Errorf("version mismatch error = %v, want ErrFormat", err)
	}
}

func TestStickyError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "test.Sticky")
	w.U64(1)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), "test.Sticky")
	if err != nil {
		t.Fatal(err)
	}
	r.U64()
	r.U64() // past the end: latches an error
	first := r.Err()
	if first == nil {
		t.Fatal("read past end did not error")
	}
	if got := r.U64(); got != 0 {
		t.Errorf("read after latched error = %d, want 0", got)
	}
	if r.Err() != first {
		t.Errorf("latched error changed: %v -> %v", first, r.Err())
	}
}

func TestLimits(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "test.Limits")
	w.U64(uint64(MaxLen) + 1)
	w.U64(uint64(MaxString) + 1)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), "test.Limits")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Len(-1); got != 0 || !errors.Is(r.Err(), ErrFormat) {
		t.Errorf("oversized Len = %d, err %v", got, r.Err())
	}
	r2, err := NewReader(bytes.NewReader(buf.Bytes()), "test.Limits")
	if err != nil {
		t.Fatal(err)
	}
	r2.U64()
	if got := r2.Bytes(); got != nil || !errors.Is(r2.Err(), ErrFormat) {
		t.Errorf("oversized Bytes = %v, err %v", got, r2.Err())
	}
	// A bounded Len enforces the caller's tighter max too.
	var buf3 bytes.Buffer
	w3 := NewWriter(&buf3, "test.Limits")
	w3.Len(11)
	r3, err := NewReader(bytes.NewReader(buf3.Bytes()), "test.Limits")
	if err != nil {
		t.Fatal(err)
	}
	if got := r3.Len(10); got != 0 || !errors.Is(r3.Err(), ErrFormat) {
		t.Errorf("over-max Len = %d, err %v", got, r3.Err())
	}
}

func TestCapHint(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-5, 0}, {0, 0}, {17, 17}, {4096, 4096}, {4097, 4096}, {MaxLen, 4096},
	} {
		if got := CapHint(tc.in); got != tc.want {
			t.Errorf("CapHint(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestNestedSnapshots pins the property the sharded dispatchers rely on:
// a full self-headed snapshot embedded inside an enclosing stream reads
// back without consuming a byte past its own end.
func TestNestedSnapshots(t *testing.T) {
	var buf bytes.Buffer
	outer := NewWriter(&buf, "test.Outer")
	outer.U64(1)
	inner := NewWriter(&buf, "test.Inner")
	inner.String("inner body")
	outer.U64(2)
	if err := outer.Err(); err != nil {
		t.Fatal(err)
	}
	if err := inner.Err(); err != nil {
		t.Fatal(err)
	}

	src := bytes.NewReader(buf.Bytes())
	or, err := NewReader(src, "test.Outer")
	if err != nil {
		t.Fatal(err)
	}
	if got := or.U64(); got != 1 {
		t.Fatalf("outer pre-field = %d", got)
	}
	ir, err := NewReader(src, "test.Inner")
	if err != nil {
		t.Fatal(err)
	}
	if got := ir.String(); got != "inner body" {
		t.Fatalf("inner body = %q", got)
	}
	if got := or.U64(); got != 2 {
		t.Fatalf("outer post-field = %d", got)
	}
	if or.Err() != nil || ir.Err() != nil {
		t.Fatalf("nested round-trip errors: %v / %v", or.Err(), ir.Err())
	}
}

func TestErrorfWrapsFormat(t *testing.T) {
	err := Errorf("bad thing %d", 7)
	if !errors.Is(err, ErrFormat) {
		t.Errorf("Errorf does not wrap ErrFormat: %v", err)
	}
	if !strings.Contains(err.Error(), "bad thing 7") {
		t.Errorf("Errorf lost its message: %v", err)
	}
}
