package xrand

// Per-tenant seed derivation for the multi-tenant sampler fabric
// (internal/serve). A fabric holds ONE resolved base seed; every tenant's
// sampler is seeded from (base, tenant id) so that each tenant's transcript
// is byte-deterministic on its own, no matter how arrivals from other
// tenants interleave with it. The derivation must therefore be a pure
// function of its two inputs — no global state, no draw order.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// TenantSeed derives the deterministic seed for one tenant of a fabric with
// the given base seed. The tenant id is hashed with FNV-1a (64-bit) and the
// result is mixed with the base through two SplitMix64 finalizer rounds, the
// same scramble New uses to fill generator state, so structurally similar
// ids ("t1", "t2", ...) land on unrelated seeds.
//
// The result is never 0: seed 0 means "draw a fresh random seed" at the
// public WithSeed surface and in substrate.ResolveSeed, which would silently
// break the per-tenant determinism contract for the unlucky tenant whose
// hash cancelled the base.
func TenantSeed(base uint64, id string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= fnvPrime64
	}
	s := mix64(base + 0x9e3779b97f4a7c15)
	s = mix64(s ^ h)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return s
}

// mix64 is the SplitMix64 finalizer: a bijective scramble with full
// avalanche, so single-bit differences in (base, id) flip about half the
// output bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
