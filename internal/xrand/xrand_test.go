package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedReset(t *testing.T) {
	a := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = a.Uint64()
	}
	a.Seed(7)
	for i := range first {
		if got := a.Uint64(); got != first[i] {
			t.Fatalf("Seed did not reset stream: step %d got %d want %d", i, got, first[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds collide too often: %d/64", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 8, 1000, 1 << 40, math.MaxUint64} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) returned %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanics(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

// TestUint64nUniform checks exact uniformity statistically on a small range:
// each of n=10 cells should get close to trials/n hits.
func TestUint64nUniform(t *testing.T) {
	r := New(99)
	const n, trials = 10, 200000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("cell %d: count %d deviates from expectation %.0f by more than 5 sigma", i, c, want)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0, 10) {
			t.Fatal("Bernoulli(0, 10) returned true")
		}
		if !r.Bernoulli(10, 10) {
			t.Fatal("Bernoulli(10, 10) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(6)
	cases := []struct{ num, den uint64 }{{1, 2}, {1, 3}, {2, 7}, {99, 100}, {1, 1000}}
	const trials = 200000
	for _, c := range cases {
		hits := 0
		for i := 0; i < trials; i++ {
			if r.Bernoulli(c.num, c.den) {
				hits++
			}
		}
		p := float64(c.num) / float64(c.den)
		want := p * trials
		sigma := math.Sqrt(trials * p * (1 - p))
		if math.Abs(float64(hits)-want) > 5*sigma {
			t.Errorf("Bernoulli(%d/%d): %d hits, want about %.0f (5 sigma = %.0f)", c.num, c.den, hits, want, 5*sigma)
		}
	}
}

func TestBernoulliPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Bernoulli(1,0) did not panic")
			}
		}()
		New(1).Bernoulli(1, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Bernoulli(3,2) did not panic")
			}
		}()
		New(1).Bernoulli(3, 2)
	}()
}

func TestCoinRate(t *testing.T) {
	r := New(8)
	const trials = 100000
	heads := 0
	for i := 0; i < trials; i++ {
		if r.Coin() {
			heads++
		}
	}
	if math.Abs(float64(heads)-trials/2) > 5*math.Sqrt(trials/4) {
		t.Fatalf("Coin heads=%d of %d is outside 5 sigma", heads, trials)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestExpFloat64Positive(t *testing.T) {
	r := New(10)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := r.ExpFloat64()
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("ExpFloat64 produced %v", v)
		}
		sum += v
	}
	mean := sum / trials
	if mean < 0.97 || mean > 1.03 {
		t.Fatalf("ExpFloat64 mean %v, want about 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniform(t *testing.T) {
	// All 6 permutations of 3 elements should be about equally likely.
	r := New(12)
	counts := map[[3]int]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		p := r.Perm(3)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	want := float64(trials) / 6
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("perm %v: count %d deviates from %.0f", k, c, want)
		}
	}
}

func TestPickKProperties(t *testing.T) {
	r := New(13)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		pick := r.PickK(n, k)
		if len(pick) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range pick {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPickKUniformSubsets(t *testing.T) {
	// C(4,2)=6 subsets should be equally likely.
	r := New(14)
	counts := map[[2]int]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		p := r.PickK(4, 2)
		a, b := p[0], p[1]
		if a > b {
			a, b = b, a
		}
		counts[[2]int{a, b}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct 2-subsets of [0,4), want 6", len(counts))
	}
	want := float64(trials) / 6
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("subset %v: count %d deviates from %.0f", k, c, want)
		}
	}
}

func TestPickKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PickK(2,3) did not panic")
		}
	}()
	New(1).PickK(2, 3)
}

func TestShuffle(t *testing.T) {
	r := New(15)
	x := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(x), func(i, j int) { x[i], x[j] = x[j], x[i] })
	seen := make([]bool, len(x))
	for _, v := range x {
		if seen[v] {
			t.Fatalf("Shuffle lost elements: %v", x)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(16)
	a, b := r.Split(), r.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("Split streams collide too often: %d/64", same)
	}
}

func TestZeroStateGuard(t *testing.T) {
	// Directly exercise the all-zero-state guard in Seed: no seed produces
	// zero state through SplitMix64, but the guard must keep the generator
	// usable regardless. We just check a few seeds produce nonzero output.
	for seed := uint64(0); seed < 10; seed++ {
		r := New(seed)
		nonzero := false
		for i := 0; i < 8; i++ {
			if r.Uint64() != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			t.Fatalf("seed %d produced a stuck generator", seed)
		}
	}
}
