package xrand

import "testing"

func TestTenantSeedDeterministic(t *testing.T) {
	a := TenantSeed(42, "alice")
	b := TenantSeed(42, "alice")
	if a != b {
		t.Fatalf("TenantSeed not deterministic: %d vs %d", a, b)
	}
}

func TestTenantSeedDistinguishesInputs(t *testing.T) {
	base := uint64(42)
	if TenantSeed(base, "alice") == TenantSeed(base, "bob") {
		t.Fatalf("distinct ids collided under the same base")
	}
	if TenantSeed(base, "alice") == TenantSeed(base+1, "alice") {
		t.Fatalf("distinct bases collided for the same id")
	}
	// Structurally similar ids must not land on related seeds; a weak mix
	// (e.g. plain xor of hash and base) would make t1/t2 differ in one bit.
	d := TenantSeed(base, "t1") ^ TenantSeed(base, "t2")
	if n := popcount(d); n < 8 {
		t.Fatalf("t1/t2 seeds differ in only %d bits; mixing too weak", n)
	}
}

func TestTenantSeedNeverZero(t *testing.T) {
	// Seed 0 means "draw a random seed" downstream, so TenantSeed must not
	// emit it. The exact preimage of 0 is obscure; spot-check a spread of
	// inputs including the adversarial-ish base that cancels the offset.
	ids := []string{"", "a", "t0", "t1", "tenant-9999", "\x00\x00"}
	bases := []uint64{0, 1, ^uint64(0), 0x9e3779b97f4a7c15}
	for _, b := range bases {
		for _, id := range ids {
			if TenantSeed(b, id) == 0 {
				t.Fatalf("TenantSeed(%d, %q) == 0", b, id)
			}
		}
	}
}

func TestTenantSeedCollisionSweep(t *testing.T) {
	// 64-bit FNV over short ids plus SplitMix64 mixing should see zero
	// collisions over a 100k-tenant id space (birthday bound ~2.7e-10).
	const n = 100_000
	seen := make(map[uint64]int, n)
	buf := []byte("t")
	for i := 0; i < n; i++ {
		buf = appendInt(buf[:1], i)
		s := TenantSeed(7, string(buf))
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between tenants %d and %d", prev, i)
		}
		seen[s] = i
	}
}

func TestSplitValueMatchesSplit(t *testing.T) {
	a := New(123)
	b := New(123)
	sa := a.Split()
	sv := b.SplitValue()
	for i := 0; i < 64; i++ {
		if x, y := sa.Uint64(), sv.Uint64(); x != y {
			t.Fatalf("draw %d: Split %d vs SplitValue %d", i, x, y)
		}
	}
	// Parent streams must also stay in lockstep (both consumed one draw).
	if x, y := a.Uint64(), b.Uint64(); x != y {
		t.Fatalf("parent streams diverged: %d vs %d", x, y)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
