package xrand

import (
	"math"
	"testing"
)

func TestZipfRange(t *testing.T) {
	r := New(20)
	z := NewZipf(r, 1.1, 100)
	if z.N() != 100 {
		t.Fatalf("N() = %d, want 100", z.N())
	}
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v >= 100 {
			t.Fatalf("Zipf value %d out of range", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With s=1.5 over 1000 values, value 0 should be drawn far more often
	// than value 999, and the empirical head probability should match the
	// normalized 1/(v+1)^s weights.
	r := New(21)
	const n, trials = 1000, 200000
	z := NewZipf(r, 1.5, n)
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[z.Next()]++
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -1.5)
	}
	p0 := 1.0 / sum
	want := p0 * trials
	sigma := math.Sqrt(trials * p0 * (1 - p0))
	if math.Abs(float64(counts[0])-want) > 5*sigma {
		t.Fatalf("head count %d, want about %.0f", counts[0], want)
	}
	if counts[0] <= counts[n-1]*10 {
		t.Fatalf("distribution not skewed: head %d tail %d", counts[0], counts[n-1])
	}
}

func TestZipfUniformLimit(t *testing.T) {
	// A tiny exponent approaches uniform; sanity-check no cell starves.
	r := New(22)
	const n, trials = 10, 100000
	z := NewZipf(r, 0.01, n)
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < trials/(n*2) {
			t.Fatalf("cell %d starved with count %d", i, c)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		s float64
		n int
	}{{1, 0}, {1, -3}, {0, 10}, {-1, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewZipf(s=%v, n=%v) did not panic", tc.s, tc.n)
				}
			}()
			NewZipf(New(1), tc.s, tc.n)
		}()
	}
}

func TestZipfSingleton(t *testing.T) {
	z := NewZipf(New(23), 2, 1)
	for i := 0; i < 100; i++ {
		if z.Next() != 0 {
			t.Fatal("Zipf over singleton domain must always return 0")
		}
	}
}
