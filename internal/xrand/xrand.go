// Package xrand provides the deterministic pseudo-random substrate used by
// every sampler in this repository.
//
// The paper's algorithms make three kinds of random decisions:
//
//  1. uniform index selection ("replace the reservoir sample with probability
//     1/i"), which must be exact — a biased coin silently breaks the
//     uniformity theorems;
//  2. rational Bernoulli events with integer numerator and denominator
//     (Lemmas 3.6 and 3.7 generate events with probabilities such as
//     α/(β+i)); and
//  3. workload-generation draws (Zipf values, burst sizes) where exactness is
//     less critical.
//
// xrand therefore offers exact integer-based primitives (Uint64n, Bernoulli,
// Perm, Shuffle) built on an xoshiro256** core seeded by SplitMix64, plus
// convenience float helpers for workload generation. Everything is
// deterministic given the seed, so every experiment in this repository is
// reproducible bit for bit.
//
// Rand is NOT safe for concurrent use; give each goroutine its own instance
// (New is cheap).
package xrand

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random generator (xoshiro256** seeded via
// SplitMix64). The zero value is not usable; construct with New.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded from the given seed. Two generators built
// from the same seed produce identical streams. Distinct seeds produce
// (for all practical purposes) independent streams because the 256-bit state
// is filled through SplitMix64, which is a bijective scramble of the seed
// counter.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state as if it had been created by New(seed).
func (r *Rand) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// xoshiro enters a fixed point at the all-zero state; SplitMix64 cannot
	// emit four consecutive zeros, but guard anyway so Seed(x) is total.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s3 = 1
	}
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
//
// The implementation is Lemire's multiply-shift method with a rejection step,
// so the result is exactly uniform (no modulo bias). Exactness matters: the
// reservoir replacement probability 1/i and the bucket-weighted choices in
// Theorem 3.9 rely on it.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	if n&(n-1) == 0 { // power of two: mask is exact
		return r.Uint64() & (n - 1)
	}
	// Lemire: hi of x*n is uniform in [0,n) provided lo clears the bias zone.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n) as an int. It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Bernoulli returns true with probability exactly num/den.
// It panics if den == 0 or num > den.
//
// This is the primitive behind the paper's "generating implicit events":
// Lemma 3.6's H_i variables and Lemma 3.7's S variable are rational coins
// whose numerator and denominator are known integers (α, β, β+i, ...).
func (r *Rand) Bernoulli(num, den uint64) bool {
	if den == 0 {
		panic("xrand: Bernoulli with den == 0")
	}
	if num > den {
		panic("xrand: Bernoulli with num > den")
	}
	if num == den {
		return true
	}
	if num == 0 {
		return false
	}
	return r.Uint64n(den) < num
}

// Coin returns true with probability exactly 1/2. Used by the covering
// decomposition merge rule (Section 3.2: R_{a,d} = R_{a,c} w.p. 1/2).
func (r *Rand) Coin() bool {
	return r.Uint64()&1 == 1
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
// Float randomness is used only by baseline algorithms that are *defined*
// in terms of real-valued priorities (Babcock–Datar–Motwani priority
// sampling, Gemulla–Lehner bounded priority sampling) and by workload
// generators; the paper's own algorithms never touch floats.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with rate 1,
// via inversion. Used by bursty arrival processes.
func (r *Rand) ExpFloat64() float64 {
	// Avoid log(0): Float64 returns [0,1); use 1-u in (0,1].
	u := 1 - r.Float64()
	return -math.Log(u)
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly swaps elements using the provided swap function,
// visiting i = n-1 ... 1 (Fisher–Yates). It panics if n < 0.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("xrand: Shuffle called with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// PickK writes a uniformly random k-subset of [0, n) into dst and returns it.
// The subset is chosen without replacement via partial Fisher–Yates over a
// scratch index slice, so every k-subset has probability 1/C(n,k). The order
// of the returned indices is random as well. Panics unless 0 <= k <= n.
//
// Theorem 2.2's query step needs exactly this: "we can generate an i-sample
// of C using X_B only" — a uniform i-subset of a uniform k-sample is a
// uniform i-sample of the underlying set.
func (r *Rand) PickK(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("xrand: PickK called with invalid k or n")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// Split returns a new generator seeded from the current stream. Use it to
// derive independent sub-generators (one per sampler copy) from a single
// experiment seed.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// State returns the four 256-bit-state words of the generator, for
// checkpointing. Together with SetState it round-trips the generator
// exactly: a restored generator produces the identical future stream.
func (r *Rand) State() (s0, s1, s2, s3 uint64) {
	return r.s0, r.s1, r.s2, r.s3
}

// SetState overwrites the generator state with previously captured words.
// The all-zero state is a xoshiro fixed point and is patched the same way
// Seed patches it, so SetState is total even on corrupt input.
func (r *Rand) SetState(s0, s1, s2, s3 uint64) {
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s3 = 1
	}
}

// SplitValue is Split without the heap allocation: the derived generator is
// returned by value, for holders that embed their Rand inline. The sampler
// fabric packs millions of per-tenant samplers into one process, so the
// 32-byte state living inside the sampler struct instead of behind a
// pointer is both a footprint and a cache-locality win. Draws the same
// single Uint64 as Split, so the derived stream is identical.
func (r *Rand) SplitValue() Rand {
	var s Rand
	s.Seed(r.Uint64())
	return s
}
