package xrand

import (
	"math"
	"sort"
)

// Zipf draws values in [0, N) with P(v) ∝ 1/(v+1)^s, the classic Zipfian
// frequency law. It is used by the Section 5 application workloads
// (frequency moments and entropy are only interesting on skewed data).
//
// The implementation precomputes the normalized CDF once (O(N) space,
// O(log N) per draw via binary search). This is exact up to float64
// rounding, deterministic, and far simpler than rejection-inversion; the
// workloads in this repository use N ≤ ~1e6 where the table is cheap.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over the domain [0, n) with exponent s > 0.
// It panics if n <= 0 or s <= 0 (programmer error in workload setup).
func NewZipf(r *Rand, s float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	if s <= 0 {
		panic("xrand: NewZipf with s <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1.0 // guard against rounding leaving the last bin unreachable
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next Zipf-distributed value in [0, N).
func (z *Zipf) Next() uint64 {
	u := z.r.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	// SearchFloat64s returns the first index with cdf[i] >= u only when u is
	// present; it returns the insertion point otherwise, which is exactly the
	// bucket we want for inverse-CDF sampling.
	if z.cdf[i] < u { // can only happen through float rounding at the edge
		i = len(z.cdf) - 1
	}
	return uint64(i)
}

// N returns the domain size.
func (z *Zipf) N() int { return len(z.cdf) }
