package parallel

import (
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// raceSubstrates builds every sharded sampler behind the unified interface
// (queries need a Barrier first, which the cycle below always holds).
func raceSubstrates() map[string]func(r *xrand.Rand) stream.Sampler[uint64] {
	const (
		n   = 256
		t0  = 32
		g   = 4
		k   = 5
		eps = 0.05
	)
	weight := func(v uint64) float64 { return float64(v%9) + 1 }
	return map[string]func(r *xrand.Rand) stream.Sampler[uint64]{
		"ShardedSeqWR": func(r *xrand.Rand) stream.Sampler[uint64] {
			return NewShardedSeqWR[uint64](r, n, g, k)
		},
		"ShardedTSWR": func(r *xrand.Rand) stream.Sampler[uint64] {
			return NewShardedTSWR[uint64](r, t0, g, k, eps)
		},
		"ShardedTSWOR": func(r *xrand.Rand) stream.Sampler[uint64] {
			return NewShardedTSWOR[uint64](r, t0, g, k, eps)
		},
		// The weighted substrates exercise the weight-aware dispatch: the
		// weight halves of the double-buffered dealing generations cross
		// goroutines exactly like the element halves.
		"ShardedWeightedSeqWOR": func(r *xrand.Rand) stream.Sampler[uint64] {
			return NewShardedWeightedSeqWOR[uint64](r, n, g, k, eps, weight)
		},
		"ShardedWeightedSeqWR": func(r *xrand.Rand) stream.Sampler[uint64] {
			return NewShardedWeightedSeqWR[uint64](r, n, g, k, eps, weight)
		},
		"ShardedWeightedTSWOR": func(r *xrand.Rand) stream.Sampler[uint64] {
			return NewShardedWeightedTSWOR[uint64](r, t0, g, k, eps, weight)
		},
		"ShardedWeightedTSWR": func(r *xrand.Rand) stream.Sampler[uint64] {
			return NewShardedWeightedTSWR[uint64](r, t0, g, k, eps, weight)
		},
	}
}

// TestShardedIngestRace drives ObserveBatch + Observe + Barrier + Sample
// cycles through every sharded sampler. Its value is under `go test -race`
// (a CI step): the producer-side dealing, the worker goroutines, the
// barrier flush, and the double-buffered shard-batch slices all hand
// memory across goroutines, and this cycle makes every hand-off happen
// many times — including buffer reuse after a barrier marked a generation
// clean, the exact path a reuse bug would race on.
func TestShardedIngestRace(t *testing.T) {
	for name, mk := range raceSubstrates() {
		t.Run(name, func(t *testing.T) {
			s := mk(xrand.New(21))
			defer func() {
				if c, ok := s.(interface{ Close() }); ok {
					c.Close()
				}
			}()
			barrier := func() {
				if b, ok := s.(interface{ Barrier() }); ok {
					b.Barrier()
				}
			}
			// Irregular batch sizes, single-element dispatches mixed in, a
			// query (under a barrier) every cycle. Batches reuse one caller
			// buffer — the dispatcher must have copied what it needs by the
			// time ObserveBatch returns.
			sizes := []int{1, 7, 256, 3, 64, 512, 2}
			buf := make([]stream.Element[uint64], 0, 512)
			idx := 0
			for cycle := 0; cycle < 60; cycle++ {
				sz := sizes[cycle%len(sizes)]
				buf = buf[:0]
				for j := 0; j < sz; j++ {
					buf = append(buf, stream.Element[uint64]{Value: uint64(idx), TS: int64(idx / 3)})
					idx++
				}
				s.ObserveBatch(buf)
				s.Observe(uint64(idx), int64(idx/3))
				idx++
				barrier()
				if got, ok := s.Sample(); ok {
					for _, e := range got {
						if e.Value != e.Index {
							t.Fatalf("cycle %d: dealt element corrupted: value %d at index %d", cycle, e.Value, e.Index)
						}
					}
				} else if cycle > 0 {
					t.Fatalf("cycle %d: no sample from a non-empty window", cycle)
				}
			}
			if s.Count() != uint64(idx) {
				t.Fatalf("Count = %d, want %d", s.Count(), idx)
			}
		})
	}
}

// TestShardedBatchReuseEquivalence pins the recycle path to the dealing
// semantics: a sampler fed through many batches (forcing buffer reuse) must
// agree exactly with an identically seeded sampler fed per element.
func TestShardedBatchReuseEquivalence(t *testing.T) {
	for name, mk := range raceSubstrates() {
		t.Run(name, func(t *testing.T) {
			loop := mk(xrand.New(33))
			batch := mk(xrand.New(33))
			closeAll := func(s stream.Sampler[uint64]) {
				if c, ok := s.(interface{ Close() }); ok {
					c.Close()
				}
			}
			defer closeAll(loop)
			defer closeAll(batch)

			const m = 4000
			for i := 0; i < m; i++ {
				loop.Observe(uint64(i), int64(i/3))
			}
			buf := make([]stream.Element[uint64], 0, 128)
			for i := 0; i < m; {
				sz := 1 + (i*7)%127
				if i+sz > m {
					sz = m - i
				}
				buf = buf[:0]
				for j := 0; j < sz; j++ {
					buf = append(buf, stream.Element[uint64]{Value: uint64(i + j), TS: int64((i + j) / 3)})
				}
				batch.ObserveBatch(buf)
				i += sz
			}
			for _, s := range []stream.Sampler[uint64]{loop, batch} {
				if b, ok := s.(interface{ Barrier() }); ok {
					b.Barrier()
				}
			}
			if loop.Count() != batch.Count() {
				t.Fatalf("Count diverged: %d vs %d", loop.Count(), batch.Count())
			}
			la, lok := loop.Sample()
			ba, bok := batch.Sample()
			if lok != bok || len(la) != len(ba) {
				t.Fatalf("sample shape diverged: %v/%v len %d/%d", lok, bok, len(la), len(ba))
			}
			for i := range la {
				if la[i] != ba[i] {
					t.Fatalf("slot %d diverged: %+v vs %+v", i, la[i], ba[i])
				}
			}
		})
	}
}
