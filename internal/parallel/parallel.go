// Package parallel provides sharded, goroutine-parallel ingest wrappers
// around the window samplers for streams too fast for one core.
//
// Correctness rests on a small arithmetic fact: if elements are dealt
// round-robin to G shards, then the active window always splits across the
// shards into exactly each shard's MOST RECENT elements — so a shard-local
// sampler over its slice composes into a global sample by first picking a
// shard with probability proportional to its in-window count, then asking
// the shard.
//
//   - Sequence windows (window size n divisible by G): every window of the
//     last n elements holds exactly n/G elements per shard, and those are
//     the n/G most recent elements of that shard. Shard-local Theorem
//     2.1/2.2 samplers over n/G cover precisely their slices and the
//     weighted pick is EXACT (during warm-up shard windows differ by at
//     most one element and the weights remain exact).
//   - Timestamp windows (horizon t0): a shard's active elements are its
//     elements with timestamps in the window — again exactly its slice of
//     the global window. Shard-local Theorem 3.9/4.4 samplers with the same
//     horizon cover their slices exactly, but the per-shard ACTIVE COUNTS
//     cannot be tracked exactly in sublinear memory (the Datar–Gionis–
//     Indyk–Motwani lower bound the paper cites), so the dispatcher keeps
//     one exponential-histogram counter: the window is a contiguous global
//     index range [a, b], â = count - n̂ estimates a within (1±ε), and the
//     per-shard counts follow arithmetically. Within-shard sampling stays
//     exact; only the cross-shard allocation carries the ε error.
//
// Ingest runs one goroutine per shard fed by buffered channels, dealing
// either single elements or pre-split batches (ObserveBatch splits a batch
// round-robin and forwards each slice to its shard's batched hot path, so
// the per-element channel overhead is amortized too). Barrier() flushes all
// channels so queries observe a consistent prefix. This is a checkpointed
// model: queries between barriers would race with in-flight elements, so
// Sample panics unless the caller holds a barrier. The exported
// Barrier/Close hooks are what the layers above build their safety on —
// the public wrappers and the HTTP serving layer barrier automatically
// before every query, and shutdown drains a final barrier before Close
// stops the workers (DESIGN.md §7); note that ANY read of shard sampler
// state, including Words(), needs the same discipline.
package parallel

import (
	"sync"

	"slidingsample/internal/core"
	"slidingsample/internal/ehist"
	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// msg is one channel message. The weight fields cost unweighted
// dispatchers ~32 idle bytes per buffered slot — accepted so weighted and
// unweighted dispatch share one channel type and one worker loop. There
// is no "weighted single element" flag: on a weighted dispatcher EVERY
// bare element arrives through observeWeighted (wdispatch never uses the
// plain observe path), so wshards being set is the discriminator.
type msg[T any] struct {
	value   T
	ts      int64
	weight  float64             // weighted dispatch: the element's precomputed weight
	batch   []stream.Element[T] // non-nil: a pre-split shard batch
	weights []float64           // non-nil with batch: the batch's precomputed weights
	barrier *sync.WaitGroup     // non-nil: flush marker, not an element
}

// dispatcher is the shared round-robin ingest machinery: G worker
// goroutines, one buffered channel each, dealing, barriers and shutdown.
// The shards are held behind the unified stream.Sampler interface; the
// concrete sharded samplers keep their own typed views for querying.
//
// The same machinery carries WEIGHTED dispatch: when built over
// stream.WeightedSampler shards, elements and batches travel with
// precomputed weights (the weighted sharded samplers compute each weight
// once for their dispatcher-side per-shard weight oracles and forward it),
// dealt through the identical round-robin split and double-buffered
// recycling — the weight slices are just a parallel half of each buffer
// generation.
type dispatcher[T any] struct {
	g       int
	shards  []stream.Sampler[T]
	wshards []stream.WeightedSampler[T] // non-nil: weighted dispatch enabled
	chans   []chan msg[T]
	// bufs double-buffers the per-shard batch slices: two generations of G
	// buffers each. A generation is refilled ONLY when every slice cut from
	// it has been flushed by a Barrier — workers never see a reused slice
	// before the next Barrier, which is the whole safety argument (no
	// per-message handshake needed, so the hot path stays channel-free).
	// Between barriers the two clean generations cover two batches and
	// further ones fall back to fresh right-sized allocations; under the
	// checkpointed query cadence (Sample requires a Barrier) batched ingest
	// is allocation-free in steady state. wbufs is the weight half of each
	// generation (weighted dispatch only), recycled under the same
	// dirty/clean flags since element and weight slices are cut together.
	bufs   [2][][]stream.Element[T]
	wbufs  [2][][]float64
	dirty  [2]bool
	wg     sync.WaitGroup
	next   int
	count  uint64
	synced bool
	closed bool
}

func newDispatcher[T any](shards []stream.Sampler[T]) *dispatcher[T] {
	return startDispatcher(shards, nil)
}

// newWeightedDispatcher builds a dispatcher whose shards also accept
// precomputed weights; the unweighted paths keep working unchanged.
func newWeightedDispatcher[T any](wshards []stream.WeightedSampler[T]) *dispatcher[T] {
	shards := make([]stream.Sampler[T], len(wshards))
	for i, sh := range wshards {
		shards[i] = sh
	}
	return startDispatcher(shards, wshards)
}

// startDispatcher is the shared construction: buffer generations, channel
// sizing and worker spawning are identical for weighted and unweighted
// dispatch (wshards non-nil is the only difference).
func startDispatcher[T any](shards []stream.Sampler[T], wshards []stream.WeightedSampler[T]) *dispatcher[T] {
	d := &dispatcher[T]{
		g:       len(shards),
		shards:  shards,
		wshards: wshards,
		chans:   make([]chan msg[T], len(shards)),
		synced:  true,
	}
	for j := range d.bufs {
		d.bufs[j] = make([][]stream.Element[T], len(shards))
		if wshards != nil {
			d.wbufs[j] = make([][]float64, len(shards))
		}
	}
	for i := range shards {
		d.chans[i] = make(chan msg[T], 1024)
		d.wg.Add(1)
		go d.work(i)
	}
	return d
}

// work is shard i's ingest goroutine: it drains the shard's channel,
// applying each message through the matching ingest path.
func (d *dispatcher[T]) work(i int) {
	defer d.wg.Done()
	shard := d.shards[i]
	var wshard stream.WeightedSampler[T]
	if d.wshards != nil {
		wshard = d.wshards[i]
	}
	for m := range d.chans[i] {
		switch {
		case m.barrier != nil:
			m.barrier.Done()
		case m.weights != nil:
			wshard.ObserveWeightedBatch(m.batch, m.weights)
		case m.batch != nil:
			shard.ObserveBatch(m.batch)
		case wshard != nil:
			// Weighted dispatchers route every bare element through
			// observeWeighted, so this case IS the weighted single element.
			wshard.ObserveWeighted(m.value, m.weight, m.ts)
		default:
			shard.Observe(m.value, m.ts)
		}
	}
}

// requireOpen turns ingest-after-Close from a bare runtime "send on
// closed channel" crash into a named programmer error, BEFORE any state
// (dispatcher or caller-side oracles) is touched.
func (d *dispatcher[T]) requireOpen() {
	if d.closed {
		panic("parallel: Observe after Close")
	}
}

// observe routes the next element to its shard. Safe to call from ONE
// producer goroutine (the dispatch order defines the stream order).
func (d *dispatcher[T]) observe(value T, ts int64) {
	d.requireOpen()
	d.chans[d.next] <- msg[T]{value: value, ts: ts}
	d.next = (d.next + 1) % d.g
	d.count++
	d.synced = false
}

// observeWeighted routes the next element and its precomputed weight to its
// shard. Weighted dispatchers must use this for EVERY bare element — the
// worker loop relies on it (see msg).
func (d *dispatcher[T]) observeWeighted(value T, w float64, ts int64) {
	d.requireOpen()
	d.chans[d.next] <- msg[T]{value: value, ts: ts, weight: w}
	d.next = (d.next + 1) % d.g
	d.count++
	d.synced = false
}

// observeBatch deals a batch round-robin: element i goes to shard
// (next+i) mod G, preserving exactly the order single-element dispatch
// would use, but each shard receives one message carrying its whole slice.
// Shard slices come from a clean (barrier-flushed) buffer generation when
// one is available and are allocated right-sized otherwise, so ingest
// interleaved with queries reuses the same 2G buffers forever.
func (d *dispatcher[T]) observeBatch(batch []stream.Element[T]) {
	d.dealBatch(batch, nil)
}

// observeWeightedBatch deals a batch together with its precomputed
// weights; weights[i] belongs to batch[i] and travels to the same shard
// (weighted dispatchers only).
func (d *dispatcher[T]) observeWeightedBatch(batch []stream.Element[T], weights []float64) {
	d.dealBatch(batch, weights)
}

// dealBatch is the shared round-robin batch dealing. With weights non-nil
// the weight slices are split alongside the element slices, drawn from the
// same buffer generation — the element and weight halves of a generation
// are always cut and flushed together, so one set of dirty flags covers
// both.
func (d *dispatcher[T]) dealBatch(batch []stream.Element[T], weights []float64) {
	if len(batch) == 0 {
		return
	}
	d.requireOpen()
	per := len(batch)/d.g + 1
	gen := -1
	var split [][]stream.Element[T]
	var wsplit [][]float64
	switch {
	case !d.dirty[0]:
		gen = 0
	case !d.dirty[1]:
		gen = 1
	}
	if gen >= 0 {
		d.dirty[gen] = true
		split = d.bufs[gen]
		for i := range split {
			if cap(split[i]) == 0 {
				split[i] = make([]stream.Element[T], 0, per)
			} else {
				split[i] = split[i][:0]
			}
		}
		if weights != nil {
			wsplit = d.wbufs[gen]
			for i := range wsplit {
				if cap(wsplit[i]) == 0 {
					wsplit[i] = make([]float64, 0, per)
				} else {
					wsplit[i] = wsplit[i][:0]
				}
			}
		}
	} else {
		// Both generations have un-barriered batches in flight: fall back to
		// fresh one-off slices (never retained), exactly like unrecycled
		// dealing — reuse here could hand a worker a slice it is reading.
		split = make([][]stream.Element[T], d.g)
		for i := range split {
			split[i] = make([]stream.Element[T], 0, per)
		}
		if weights != nil {
			wsplit = make([][]float64, d.g)
			for i := range wsplit {
				wsplit[i] = make([]float64, 0, per)
			}
		}
	}
	shard := d.next
	if weights == nil {
		for _, e := range batch {
			split[shard] = append(split[shard], e)
			shard = (shard + 1) % d.g
		}
	} else {
		for i, e := range batch {
			split[shard] = append(split[shard], e)
			wsplit[shard] = append(wsplit[shard], weights[i])
			shard = (shard + 1) % d.g
		}
	}
	for i, sub := range split {
		if len(sub) > 0 {
			m := msg[T]{batch: sub}
			if weights != nil {
				m.weights = wsplit[i]
			}
			d.chans[i] <- m
		}
	}
	if gen >= 0 {
		// Keep the (possibly grown) headers for reuse after the next
		// barrier; the slices keep their dispatched length so the barrier
		// can clear exactly the elements the workers consumed. Oversized
		// backing arrays are dropped rather than pinned (the shared
		// stream.MaxRecycledCap discipline).
		for i := range split {
			if cap(split[i]) > stream.MaxRecycledCap {
				split[i] = nil
			}
		}
		d.bufs[gen] = split
		if weights != nil {
			for i := range wsplit {
				if cap(wsplit[i]) > stream.MaxRecycledCap {
					wsplit[i] = nil
				}
			}
			d.wbufs[gen] = wsplit
		}
	}
	d.next = shard
	d.count += uint64(len(batch))
	d.synced = false
}

// barrier flushes every shard channel; after it returns, all elements
// dispatched so far are reflected in the shard samplers and the dispatched
// batch buffers are safe to reuse (cleared here, off the hot path, so
// recycled buffers do not retain references to processed payloads). After
// close it is a no-op: the final flush already ran, and the public
// wrappers barrier on every query — a closed, fully-flushed sampler must
// stay queryable.
func (d *dispatcher[T]) barrier() {
	if d.closed {
		return
	}
	var wg sync.WaitGroup
	wg.Add(d.g)
	for _, ch := range d.chans {
		ch <- msg[T]{barrier: &wg}
	}
	wg.Wait()
	for j := range d.bufs {
		if !d.dirty[j] {
			continue
		}
		for i := range d.bufs[j] {
			clear(d.bufs[j][i])
		}
		// The weight halves (wbufs) hold no pointers, so they need no
		// clearing to release payloads; reuse truncates them to length 0.
		d.dirty[j] = false
	}
	d.synced = true
}

// close shuts the workers down (after a flush). Shards remain queryable;
// repeated close is a no-op.
func (d *dispatcher[T]) close() {
	if d.closed {
		return
	}
	d.barrier()
	d.closed = true
	for _, ch := range d.chans {
		close(ch)
	}
	d.wg.Wait()
}

func (d *dispatcher[T]) requireSynced() {
	if !d.synced {
		panic("parallel: Sample without Barrier after Observe")
	}
}

// shardWords sums a footprint accessor over the shards plus the dispatcher
// scalars (g, next, count — channel buffers are transport, not sampler
// state, and the checkpointed query model guarantees they are empty at
// every measurement point).
func (d *dispatcher[T]) shardWords(peak bool) int {
	w := 3
	for _, sh := range d.shards {
		if peak {
			w += sh.MaxWords()
		} else {
			w += sh.Words()
		}
	}
	return w
}

// ---------------------------------------------------------------------------
// Sequence-based windows
// ---------------------------------------------------------------------------

// ShardedSeqWR is a G-way parallel with-replacement sampler over a
// sequence-based window of n elements. The global sample law is EXACTLY the
// sequential Theorem 2.1 law.
type ShardedSeqWR[T any] struct {
	d   *dispatcher[T]
	g   int
	k   int
	per uint64 // n / g
	rng *xrand.Rand
	//swlint:allow wordsacct duplicate typed view of d.shards, counted via d.shardWords
	seq []*core.SeqWR[T]
}

// NewShardedSeqWR builds the sampler and starts its shard workers.
// n must be divisible by g; k is the number of independent samples.
func NewShardedSeqWR[T any](rng *xrand.Rand, n uint64, g, k int) *ShardedSeqWR[T] {
	if g <= 0 {
		panic("parallel: NewShardedSeqWR with g <= 0")
	}
	if n == 0 || n%uint64(g) != 0 {
		panic("parallel: window size must be a positive multiple of the shard count")
	}
	if k <= 0 {
		panic("parallel: NewShardedSeqWR with k <= 0")
	}
	s := &ShardedSeqWR[T]{
		g:   g,
		k:   k,
		per: n / uint64(g),
		rng: rng.Split(),
		seq: make([]*core.SeqWR[T], g),
	}
	shards := make([]stream.Sampler[T], g)
	for i := 0; i < g; i++ {
		s.seq[i] = core.NewSeqWR[T](rng.Split(), s.per, k)
		shards[i] = s.seq[i]
	}
	s.d = newDispatcher(shards)
	return s
}

// Observe routes the next element to its shard.
func (s *ShardedSeqWR[T]) Observe(value T, ts int64) { s.d.observe(value, ts) }

// ObserveBatch deals a batch across the shards, one channel message and one
// batched-ingest call per shard.
func (s *ShardedSeqWR[T]) ObserveBatch(batch []stream.Element[T]) { s.d.observeBatch(batch) }

// Barrier flushes every shard channel; after it returns, all elements
// observed so far are reflected in the shard samplers and Sample may be
// called.
func (s *ShardedSeqWR[T]) Barrier() { s.d.barrier() }

// Close shuts the workers down. The sampler remains queryable.
func (s *ShardedSeqWR[T]) Close() { s.d.close() }

// windowSizes returns each shard's in-window element count and the total.
func (s *ShardedSeqWR[T]) windowSizes() ([]uint64, uint64) {
	sizes := make([]uint64, s.g)
	var total uint64
	for i, sh := range s.seq {
		c := sh.Count()
		if c > s.per {
			c = s.per
		}
		sizes[i] = c
		total += c
	}
	return sizes, total
}

// Sample returns k elements, each uniform over the global window of the
// last min(count, n) elements. It panics if called without a Barrier since
// the last Observe (the shard states would be racy and possibly skewed).
//
// Every shard's slot vector is fetched exactly once, fanned across the
// forShards pool (SeqWR queries are read-only and draw-free, so the fetch
// order cannot matter); the slot picks then run sequentially on the
// dispatcher rng, global slot j reading entry j of its chosen shard's
// vector — entries are mutually independent, so the global law is
// unchanged.
//
//swlint:allow norandquery with-replacement sampling draws its k slot picks at query time by contract; every draw comes from this sampler's own split rng in a fixed sequential order after all shard prefetches, so output is deterministic given admission and query order
func (s *ShardedSeqWR[T]) Sample() ([]stream.Element[T], bool) {
	s.d.requireSynced()
	sizes, total := s.windowSizes()
	if total == 0 {
		return nil, false
	}
	vecs := make([][]stream.Element[T], s.g)
	forShards(s.g, func(shard int) {
		if es, ok := s.seq[shard].Sample(); ok {
			vecs[shard] = es
		}
	})
	out := make([]stream.Element[T], 0, s.k)
	for slot := 0; slot < s.k; slot++ {
		u := s.rng.Uint64n(total)
		shard := 0
		for u >= sizes[shard] {
			u -= sizes[shard]
			shard++
		}
		if vecs[shard] == nil {
			// Unreachable: sizes[shard] > 0 comes from the shard's exact
			// Count, which guarantees its Sample succeeds.
			return nil, false
		}
		out = append(out, recoverIndex(vecs[shard][slot], shard, s.g))
	}
	return out, true
}

// K returns the number of sample copies.
func (s *ShardedSeqWR[T]) K() int { return s.k }

// Count returns the number of elements dispatched.
func (s *ShardedSeqWR[T]) Count() uint64 { return s.d.count }

// Words implements stream.MemoryReporter.
func (s *ShardedSeqWR[T]) Words() int { return s.d.shardWords(false) }

// MaxWords implements stream.MemoryReporter.
func (s *ShardedSeqWR[T]) MaxWords() int { return s.d.shardWords(true) }

// ---------------------------------------------------------------------------
// Timestamp-based windows
// ---------------------------------------------------------------------------

// tsDispatch is the shared state of the timestamp-window sharded samplers:
// the dispatcher plus the exponential-histogram estimate of the global
// active count that drives the cross-shard weighting.
type tsDispatch[T any] struct {
	d     *dispatcher[T]
	g     int
	k     int
	t0    int64
	rng   *xrand.Rand
	est   *ehist.Counter
	now   int64
	begun bool
	// The cross-shard weight cache: between a (dispatch count, query time)
	// change, every SampleAt re-derived the same per-shard counts — a fresh
	// sizes allocation plus an EstimateAt bucket scan per query, pure waste
	// under the serving cadence of many queries per checkpoint. sizes is a
	// scratch slice reused across queries; the cache key is (count, now).
	// Unlike the recycled dealing buffers, this cache persists between
	// queries, so Words() counts its len(sizes) = G words (DESIGN.md §6).
	// BENCH_4.json has the before/after for the caching itself.
	sizes      []uint64
	cacheCount uint64
	cacheNow   int64
	cacheTotal uint64
	cacheOK    bool
}

func newTSDispatch[T any](rng *xrand.Rand, t0 int64, g, k int, eps float64, shards []stream.Sampler[T]) *tsDispatch[T] {
	return &tsDispatch[T]{
		d:   newDispatcher(shards),
		g:   g,
		k:   k,
		t0:  t0,
		rng: rng.Split(),
		est: ehist.NewEps(t0, eps),
	}
}

func validateTSShardParams(t0 int64, g, k int, eps float64) {
	if t0 <= 0 {
		panic("parallel: timestamp shard with t0 <= 0")
	}
	if g <= 0 {
		panic("parallel: timestamp shard with g <= 0")
	}
	if k <= 0 {
		panic("parallel: timestamp shard with k <= 0")
	}
	if eps <= 0 || eps >= 1 {
		panic("parallel: timestamp shard with eps outside (0,1)")
	}
}

// observe feeds the estimator (dispatcher-side, O(log n) amortized — tiny
// next to the per-shard work it parallelizes) and deals the element.
func (t *tsDispatch[T]) observe(value T, ts int64) {
	t.est.Observe(ts)
	t.now = ts
	t.begun = true
	t.d.observe(value, ts)
}

func (t *tsDispatch[T]) observeBatch(batch []stream.Element[T]) {
	for _, e := range batch {
		t.est.Observe(e.TS)
	}
	if len(batch) > 0 {
		t.now = batch[len(batch)-1].TS
		t.begun = true
	}
	t.d.observeBatch(batch)
}

// weights returns the estimated per-shard active counts at time now and
// their total. Exact up to the (1±ε) estimate of the window's oldest index:
// the active window is the contiguous global index range [â, count), and
// round-robin dealing puts ⌈·⌉/⌊·⌋ of it on each shard deterministically.
// The result is cached per (dispatch count, query time) in a reused scratch
// slice: repeated queries at one checkpoint — the serving cadence — skip
// both the allocation and the estimator scan. Callers must treat the slice
// as owned by the dispatch (mutate it only through dropShard).
func (t *tsDispatch[T]) weights(now int64) ([]uint64, uint64) {
	if t.cacheOK && t.cacheCount == t.d.count && t.cacheNow == now {
		return t.sizes, t.cacheTotal
	}
	nHat := t.est.EstimateAt(now)
	if nHat > t.d.count {
		nHat = t.d.count
	}
	if t.sizes == nil {
		t.sizes = make([]uint64, t.g)
	}
	aHat := t.d.count - nHat
	base := nHat / uint64(t.g)
	rem := nHat % uint64(t.g)
	for i := range t.sizes {
		t.sizes[i] = base
		// The rem extra elements land on shards â mod g, â+1 mod g, ...
		if (uint64(i)+uint64(t.g)-aHat%uint64(t.g))%uint64(t.g) < rem {
			t.sizes[i]++
		}
	}
	t.cacheCount, t.cacheNow, t.cacheTotal, t.cacheOK = t.d.count, now, nHat, true
	return t.sizes, nHat
}

// dropShard zeroes a shard's cached weight after a query discovered the
// shard empty at the cached (count, query time) — possible only within the
// estimate's eps error band — and returns the updated total. The
// refinement is written through to the cache, so repeated queries at the
// same checkpoint skip the rediscovery.
func (t *tsDispatch[T]) dropShard(shard int) uint64 {
	t.cacheTotal -= t.sizes[shard]
	t.sizes[shard] = 0
	return t.cacheTotal
}

// clockFor clamps a query time to the monotone dispatcher clock.
func (t *tsDispatch[T]) clockFor(now int64) int64 {
	if t.begun && now < t.now {
		return t.now
	}
	return now
}

func (t *tsDispatch[T]) words(peak bool) int {
	// Dispatcher + shards + the estimator + the clock scalar + the
	// persistent per-shard size cache (G words once warmed).
	w := t.d.shardWords(peak) + 1 + len(t.sizes)
	if peak {
		w += t.est.MaxWords()
	} else {
		w += t.est.Words()
	}
	return w
}

// ShardedTSWR is a G-way parallel with-replacement sampler over a
// timestamp-based window of horizon t0. Within-shard sampling is the exact
// Theorem 3.9 law; the cross-shard pick is weighted by a (1±eps) estimate
// of the shard active counts (exactness is impossible in sublinear space —
// the DGIM lower bound), so each active element is returned with
// probability (1±eps)/n.
type ShardedTSWR[T any] struct {
	ts     *tsDispatch[T]
	shards []*core.TSWR[T] //swlint:allow wordsacct duplicate typed view of ts.d.shards, counted via shardWords
}

// NewShardedTSWR builds the sampler and starts its shard workers. eps is
// the cross-shard weighting error (memory Θ(1/eps · log n) extra words in
// the dispatcher).
func NewShardedTSWR[T any](rng *xrand.Rand, t0 int64, g, k int, eps float64) *ShardedTSWR[T] {
	validateTSShardParams(t0, g, k, eps)
	s := &ShardedTSWR[T]{shards: make([]*core.TSWR[T], g)}
	shards := make([]stream.Sampler[T], g)
	for i := 0; i < g; i++ {
		s.shards[i] = core.NewTSWR[T](rng.Split(), t0, k)
		shards[i] = s.shards[i]
	}
	s.ts = newTSDispatch(rng, t0, g, k, eps, shards)
	return s
}

// Observe routes the next element to its shard (timestamps must be
// non-decreasing; the dispatch order defines the stream order).
func (s *ShardedTSWR[T]) Observe(value T, ts int64) { s.ts.observe(value, ts) }

// ObserveBatch deals a batch across the shards.
func (s *ShardedTSWR[T]) ObserveBatch(batch []stream.Element[T]) { s.ts.observeBatch(batch) }

// Barrier flushes the shard channels; required before sampling.
func (s *ShardedTSWR[T]) Barrier() { s.ts.d.barrier() }

// Close shuts the workers down. The sampler remains queryable.
func (s *ShardedTSWR[T]) Close() { s.ts.d.close() }

// SampleAt returns k elements, each active at time now and sampled with
// probability (1±eps)/n, mutually independent. Panics without a Barrier.
//
// Every shard is queried exactly once, fanned across the forShards pool: a
// shard's SampleAt yields a full k-vector of mutually independent slot
// samples, so global slot j reads entry j of its chosen shard's vector
// (one Θ(k log n) shard query serves every slot that picked the shard,
// keeping the whole query Θ(k log n) rather than Θ(k² log n)). The
// fetch-all schedule is also what keeps the query DETERMINISTIC: shard
// queries draw from their shard-local rngs, so the set of shards queried —
// not just the dispatcher's own draws — feeds future outputs; querying all
// of them makes that set independent of the estimate and of the fan-out.
// Shards whose elements all expired (possible only within the eps error
// band) have their weights dropped in shard order before any slot pick, so
// a non-empty window never fails.
//
//swlint:allow norandquery with-replacement sampling draws its k slot picks at query time by contract; every draw comes from this sampler's own split rng in a fixed sequential order after all shard prefetches, so output is deterministic given admission and query order
func (s *ShardedTSWR[T]) SampleAt(now int64) ([]stream.Element[T], bool) {
	s.ts.d.requireSynced()
	now = s.ts.clockFor(now)
	sizes, total := s.ts.weights(now)
	if total == 0 {
		return nil, false
	}
	vecs := make([][]stream.Element[T], s.ts.g)
	forShards(s.ts.g, func(shard int) {
		if es, ok := s.shards[shard].SampleAt(now); ok {
			vecs[shard] = es
		}
	})
	for shard := range vecs {
		if vecs[shard] == nil && sizes[shard] > 0 {
			total = s.ts.dropShard(shard)
		}
	}
	if total == 0 {
		// The estimate put all weight on expired shards; fall back to any
		// live one (its k-vector is a valid slot sample of the window).
		for shard := 0; shard < s.ts.g; shard++ {
			if es := vecs[shard]; es != nil {
				out := make([]stream.Element[T], 0, s.ts.k)
				for slot := 0; slot < s.ts.k; slot++ {
					out = append(out, recoverIndex(es[slot], shard, s.ts.g))
				}
				return out, true
			}
		}
		return nil, false
	}
	out := make([]stream.Element[T], 0, s.ts.k)
	for slot := 0; slot < s.ts.k; slot++ {
		u := s.ts.rng.Uint64n(total)
		shard := 0
		for u >= sizes[shard] {
			u -= sizes[shard]
			shard++
		}
		out = append(out, recoverIndex(vecs[shard][slot], shard, s.ts.g))
	}
	return out, true
}

// Sample queries at the latest dispatched timestamp.
//
//swlint:allow norandquery with-replacement sampling draws its k slot picks at query time by contract; every draw comes from this sampler's own split rng in a fixed sequential order after all shard prefetches, so output is deterministic given admission and query order
func (s *ShardedTSWR[T]) Sample() ([]stream.Element[T], bool) {
	if !s.ts.begun {
		return nil, false
	}
	return s.SampleAt(s.ts.now)
}

// K returns the number of sample copies; Horizon returns t0; Count the
// number of elements dispatched.
func (s *ShardedTSWR[T]) K() int         { return s.ts.k }
func (s *ShardedTSWR[T]) Horizon() int64 { return s.ts.t0 }
func (s *ShardedTSWR[T]) Count() uint64  { return s.ts.d.count }

// Words and MaxWords implement stream.MemoryReporter.
func (s *ShardedTSWR[T]) Words() int    { return s.ts.words(false) }
func (s *ShardedTSWR[T]) MaxWords() int { return s.ts.words(true) }

// ShardedTSWOR is a G-way parallel without-replacement sampler over a
// timestamp-based window of horizon t0: the cross-shard slot allocation is
// drawn without replacement from the estimated shard counts, and each shard
// contributes a uniform sub-sample of its exact Theorem 4.4 k-sample.
type ShardedTSWOR[T any] struct {
	ts     *tsDispatch[T]
	shards []*core.TSWOR[T] //swlint:allow wordsacct duplicate typed view of ts.d.shards, counted via shardWords
}

// NewShardedTSWOR builds the sampler and starts its shard workers.
func NewShardedTSWOR[T any](rng *xrand.Rand, t0 int64, g, k int, eps float64) *ShardedTSWOR[T] {
	validateTSShardParams(t0, g, k, eps)
	s := &ShardedTSWOR[T]{shards: make([]*core.TSWOR[T], g)}
	shards := make([]stream.Sampler[T], g)
	for i := 0; i < g; i++ {
		s.shards[i] = core.NewTSWOR[T](rng.Split(), t0, k)
		shards[i] = s.shards[i]
	}
	s.ts = newTSDispatch(rng, t0, g, k, eps, shards)
	return s
}

// Observe routes the next element to its shard.
func (s *ShardedTSWOR[T]) Observe(value T, ts int64) { s.ts.observe(value, ts) }

// ObserveBatch deals a batch across the shards.
func (s *ShardedTSWOR[T]) ObserveBatch(batch []stream.Element[T]) { s.ts.observeBatch(batch) }

// Barrier flushes the shard channels; required before sampling.
func (s *ShardedTSWOR[T]) Barrier() { s.ts.d.barrier() }

// Close shuts the workers down. The sampler remains queryable.
func (s *ShardedTSWOR[T]) Close() { s.ts.d.close() }

// SampleAt returns up to min(k, n) distinct active elements forming a
// without-replacement sample at time now (uniform up to the eps cross-shard
// weighting error). Panics without a Barrier.
//
// Every shard's WOR sample is fetched exactly once, fanned across the
// forShards pool; as with ShardedTSWR, the fetch-all schedule keeps the
// shard-local rng streams independent of the estimate and the fan-out.
// All dispatcher-side draws (the Floyd subset, the within-shard PickK
// sub-sampling) run sequentially on the calling goroutine.
//
//swlint:allow norandquery the cross-shard WOR merge draws its position picks at query time by contract; draws come from this sampler's own split rng in a fixed sequential order after all shard prefetches, so output is deterministic given admission and query order
func (s *ShardedTSWOR[T]) SampleAt(now int64) ([]stream.Element[T], bool) {
	s.ts.d.requireSynced()
	now = s.ts.clockFor(now)
	sizes, total := s.ts.weights(now)
	if total == 0 {
		return nil, false
	}
	cache := make([][]stream.Element[T], s.ts.g)
	forShards(s.ts.g, func(shard int) {
		if es, ok := s.shards[shard].SampleAt(now); ok {
			cache[shard] = es
		}
	})
	// Allocate the k slots across shards without replacement: draw m
	// distinct positions out of the (estimated) n active ones and count how
	// many land on each shard. total can be as large as the window, so the
	// subset is drawn sparsely in O(m) (Floyd) rather than by materializing
	// an O(n) permutation.
	m := s.ts.k
	if uint64(m) > total {
		m = int(total)
	}
	want := make([]int, s.ts.g)
	for pos := range pickPositions(s.ts.rng, total, m) {
		u := pos
		shard := 0
		for u >= sizes[shard] {
			u -= sizes[shard]
			shard++
		}
		want[shard]++
	}
	// Cap the wants at what is actually there (within the eps error band
	// the estimate can overshoot a shard whose elements all expired), and
	// redistribute the shortfall to shards with spare distinct elements —
	// so a non-empty window never comes up short when the elements exist.
	shortfall := 0
	for shard, w := range want {
		if w == 0 {
			continue
		}
		if avail := len(cache[shard]); w > avail {
			shortfall += w - avail
			want[shard] = avail
		}
	}
	for shard := 0; shard < s.ts.g && shortfall > 0; shard++ {
		if spare := len(cache[shard]) - want[shard]; spare > 0 {
			t := spare
			if t > shortfall {
				t = shortfall
			}
			want[shard] += t
			shortfall -= t
		}
	}
	out := make([]stream.Element[T], 0, m)
	for shard, w := range want {
		if w == 0 {
			continue
		}
		es := cache[shard]
		if w >= len(es) {
			for _, e := range es {
				out = append(out, recoverIndex(e, shard, s.ts.g))
			}
			continue
		}
		// A uniform w-subset of a uniform WOR sample is a uniform
		// w-sample without replacement.
		for _, j := range s.ts.rng.PickK(len(es), w) {
			out = append(out, recoverIndex(es[j], shard, s.ts.g))
		}
	}
	return out, len(out) > 0
}

// Sample queries at the latest dispatched timestamp.
//
//swlint:allow norandquery the cross-shard WOR merge draws its position picks at query time by contract; draws come from this sampler's own split rng in a fixed sequential order after all shard prefetches, so output is deterministic given admission and query order
func (s *ShardedTSWOR[T]) Sample() ([]stream.Element[T], bool) {
	if !s.ts.begun {
		return nil, false
	}
	return s.SampleAt(s.ts.now)
}

// K returns the target sample size; Horizon returns t0; Count the number of
// elements dispatched.
func (s *ShardedTSWOR[T]) K() int         { return s.ts.k }
func (s *ShardedTSWOR[T]) Horizon() int64 { return s.ts.t0 }
func (s *ShardedTSWOR[T]) Count() uint64  { return s.ts.d.count }

// Words and MaxWords implement stream.MemoryReporter.
func (s *ShardedTSWOR[T]) Words() int    { return s.ts.words(false) }
func (s *ShardedTSWOR[T]) MaxWords() int { return s.ts.words(true) }

// pickPositions draws m distinct positions uniformly from [0, total) in
// O(m) time and space (Floyd's subset-sampling algorithm): position total-m+i
// round draws j ~ U[0, total-m+i]; j joins the set unless already present,
// in which case total-m+i does. Only the resulting SET is used (counting
// positions per shard), so the map's iteration order is irrelevant.
func pickPositions(rng *xrand.Rand, total uint64, m int) map[uint64]struct{} {
	chosen := make(map[uint64]struct{}, m)
	for i := total - uint64(m); i < total; i++ {
		j := rng.Uint64n(i + 1)
		if _, dup := chosen[j]; dup {
			chosen[i] = struct{}{}
		} else {
			chosen[j] = struct{}{}
		}
	}
	return chosen
}

// recoverIndex maps a shard-local arrival index back to the global one:
// shard i's j-th element has global index j*g + i.
func recoverIndex[T any](e stream.Element[T], shard, g int) stream.Element[T] {
	e.Index = e.Index*uint64(g) + uint64(shard)
	return e
}

// Compile-time conformance: the sharded wrappers speak the same unified
// interface as the samplers they parallelize.
var (
	_ stream.Sampler[int]      = (*ShardedSeqWR[int])(nil)
	_ stream.TimedSampler[int] = (*ShardedTSWR[int])(nil)
	_ stream.TimedSampler[int] = (*ShardedTSWOR[int])(nil)
)
