// Package parallel provides a sharded, goroutine-parallel ingest wrapper
// around the sequence-based samplers for streams too fast for one core.
//
// Correctness rests on a small arithmetic fact: if elements are dealt
// round-robin to G shards and the window size n is divisible by G, then ANY
// window of the last n elements contains exactly n/G elements of every
// shard — and those are exactly the n/G most recent elements of that shard.
// A shard-local Theorem 2.1/2.2 sampler over a window of n/G therefore
// covers precisely its slice of the global window, and a uniform global
// sample is "pick a shard by its in-window count, then ask it". During
// warm-up (fewer than n arrivals) shard windows differ by at most one
// element and the weighted pick stays exact.
//
// Ingest runs one goroutine per shard fed by buffered channels; Barrier()
// flushes all channels so queries observe a consistent prefix. This is a
// checkpointed model: queries between barriers would race with in-flight
// elements, so Sample panics unless the caller holds a barrier.
package parallel

import (
	"sync"

	"slidingsample/internal/core"
	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

type msg[T any] struct {
	value   T
	ts      int64
	barrier *sync.WaitGroup // non-nil: flush marker, not an element
}

// ShardedSeqWR is a G-way parallel with-replacement sampler over a
// sequence-based window of n elements.
type ShardedSeqWR[T any] struct {
	g      int
	k      int
	per    uint64 // n / g
	rng    *xrand.Rand
	shards []*core.SeqWR[T]
	chans  []chan msg[T]
	wg     sync.WaitGroup
	next   int
	count  uint64
	synced bool
}

// NewShardedSeqWR builds the sampler and starts its shard workers.
// n must be divisible by g; k is the number of independent samples.
func NewShardedSeqWR[T any](rng *xrand.Rand, n uint64, g, k int) *ShardedSeqWR[T] {
	if g <= 0 {
		panic("parallel: NewShardedSeqWR with g <= 0")
	}
	if n == 0 || n%uint64(g) != 0 {
		panic("parallel: window size must be a positive multiple of the shard count")
	}
	if k <= 0 {
		panic("parallel: NewShardedSeqWR with k <= 0")
	}
	s := &ShardedSeqWR[T]{
		g:      g,
		k:      k,
		per:    n / uint64(g),
		rng:    rng.Split(),
		shards: make([]*core.SeqWR[T], g),
		chans:  make([]chan msg[T], g),
		synced: true,
	}
	for i := 0; i < g; i++ {
		s.shards[i] = core.NewSeqWR[T](rng.Split(), s.per, k)
		s.chans[i] = make(chan msg[T], 1024)
		shard := s.shards[i]
		ch := s.chans[i]
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for m := range ch {
				if m.barrier != nil {
					m.barrier.Done()
					continue
				}
				shard.Observe(m.value, m.ts)
			}
		}()
	}
	return s
}

// Observe routes the next element to its shard. Safe to call from ONE
// producer goroutine (the dispatch order defines the stream order).
func (s *ShardedSeqWR[T]) Observe(value T, ts int64) {
	s.chans[s.next] <- msg[T]{value: value, ts: ts}
	s.next = (s.next + 1) % s.g
	s.count++
	s.synced = false
}

// Barrier flushes every shard channel; after it returns, all elements
// observed so far are reflected in the shard samplers and Sample may be
// called.
func (s *ShardedSeqWR[T]) Barrier() {
	var wg sync.WaitGroup
	wg.Add(s.g)
	for _, ch := range s.chans {
		ch <- msg[T]{barrier: &wg}
	}
	wg.Wait()
	s.synced = true
}

// Close shuts the workers down. The sampler remains queryable.
func (s *ShardedSeqWR[T]) Close() {
	s.Barrier()
	for _, ch := range s.chans {
		close(ch)
	}
	s.wg.Wait()
}

// windowSizes returns each shard's in-window element count and the total.
func (s *ShardedSeqWR[T]) windowSizes() ([]uint64, uint64) {
	sizes := make([]uint64, s.g)
	var total uint64
	for i, sh := range s.shards {
		c := sh.Count()
		if c > s.per {
			c = s.per
		}
		sizes[i] = c
		total += c
	}
	return sizes, total
}

// Sample returns k elements, each uniform over the global window of the
// last min(count, n) elements. It panics if called without a Barrier since
// the last Observe (the shard states would be racy and possibly skewed).
func (s *ShardedSeqWR[T]) Sample() ([]stream.Element[T], bool) {
	if !s.synced {
		panic("parallel: Sample without Barrier after Observe")
	}
	sizes, total := s.windowSizes()
	if total == 0 {
		return nil, false
	}
	out := make([]stream.Element[T], 0, s.k)
	for slot := 0; slot < s.k; slot++ {
		u := s.rng.Uint64n(total)
		shard := 0
		for u >= sizes[shard] {
			u -= sizes[shard]
			shard++
		}
		es, ok := s.shards[shard].Sample()
		if !ok {
			return nil, false
		}
		e := es[slot]
		// Recover the global arrival index: shard i's j-th element has
		// global index j*g + i.
		e.Index = e.Index*uint64(s.g) + uint64(shard)
		out = append(out, e)
	}
	return out, true
}

// Count returns the number of elements dispatched.
func (s *ShardedSeqWR[T]) Count() uint64 { return s.count }

// Words implements stream.MemoryReporter (sum over shards + dispatcher
// scalars; channel buffers are transport, not sampler state, and are not
// counted — the checkpointed query model guarantees they are empty at
// every measurement point).
func (s *ShardedSeqWR[T]) Words() int {
	w := 3
	for _, sh := range s.shards {
		w += sh.Words()
	}
	return w
}

// MaxWords implements stream.MemoryReporter.
func (s *ShardedSeqWR[T]) MaxWords() int {
	w := 3
	for _, sh := range s.shards {
		w += sh.MaxWords()
	}
	return w
}
