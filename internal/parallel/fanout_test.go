package parallel

import (
	"fmt"
	"sync"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

// setFanout overrides the query fan-out for one test and restores the
// default afterwards. The package-global knob means these tests must not
// run in parallel with each other (none of them calls t.Parallel).
func setFanout(t *testing.T, n int) {
	t.Helper()
	SetQueryFanout(n)
	t.Cleanup(func() { SetQueryFanout(0) })
}

func TestForShardsCoversEveryShardOnce(t *testing.T) {
	for _, fan := range []int{1, 2, 3, 8, 64} {
		SetQueryFanout(fan)
		for _, g := range []int{1, 2, 7, 32} {
			hits := make([]int, g)
			var mu sync.Mutex
			forShards(g, func(shard int) {
				mu.Lock()
				hits[shard]++
				mu.Unlock()
			})
			for shard, h := range hits {
				if h != 1 {
					t.Fatalf("fanout %d, g %d: shard %d visited %d times", fan, g, shard, h)
				}
			}
		}
	}
	SetQueryFanout(0)
	if QueryFanout() < 1 {
		t.Fatalf("default fanout %d < 1", QueryFanout())
	}
	SetQueryFanout(-5)
	if QueryFanout() != 1 {
		t.Fatalf("negative fanout resolved to %d, want 1", QueryFanout())
	}
	SetQueryFanout(0)
}

// fanWorkload drives one sharded substrate through a fixed mixed workload
// — single observes, batches, barriers, queries at every checkpoint — and
// returns a printable transcript of every query result. Two runs with the
// same seed must produce byte-identical transcripts whatever the fan-out.
//
// weightOf must match what the test feeds ObserveWeighted so the oracle
// and sampler views agree.
func weightOf(v int) float64 { return float64(v%7) + 0.5 }

type fanSampler interface {
	ObserveBatch(batch []stream.Element[int])
	Barrier()
	Close()
}

func fanWorkload(s fanSampler, query func(now int64) string) string {
	var out string
	var idx uint64
	ts := int64(0)
	for round := 0; round < 12; round++ {
		batch := make([]stream.Element[int], 0, 41)
		for i := 0; i < 41; i++ {
			if i%5 != 4 {
				ts++ // runs of duplicate timestamps exercise the estimators
			}
			batch = append(batch, stream.Element[int]{Value: int(idx)*3 + 1, TS: ts, Index: idx})
			idx++
		}
		s.ObserveBatch(batch)
		s.Barrier()
		out += query(ts)
	}
	s.Close()
	out += query(ts) // closed samplers stay queryable
	return out
}

// fanTranscript builds every sharded substrate from one seed and returns
// the concatenated query transcripts.
func fanTranscript(t *testing.T, seed uint64) string {
	t.Helper()
	const (
		n   = 64
		t0  = 50
		g   = 8
		k   = 6
		eps = 0.1
	)
	var out string

	uSeq := NewShardedSeqWR[int](xrand.New(seed), n, g, k)
	out += "seqwr:" + fanWorkload(uSeq, func(int64) string {
		es, ok := uSeq.Sample()
		return fmt.Sprintf("%v %v;", es, ok)
	})

	uTSWR := NewShardedTSWR[int](xrand.New(seed), t0, g, k, eps)
	out += "tswr:" + fanWorkload(uTSWR, func(now int64) string {
		es, ok := uTSWR.SampleAt(now)
		return fmt.Sprintf("%v %v %d;", es, ok, uTSWR.Count())
	})

	uTSWOR := NewShardedTSWOR[int](xrand.New(seed), t0, g, k, eps)
	out += "tswor:" + fanWorkload(uTSWOR, func(now int64) string {
		es, ok := uTSWOR.SampleAt(now)
		return fmt.Sprintf("%v %v;", es, ok)
	})

	wTSWOR := NewShardedWeightedTSWOR[int](xrand.New(seed), t0, g, k, eps, weightOf)
	out += "wtswor:" + fanWorkload(wTSWOR, func(now int64) string {
		items, ok := wTSWOR.ItemsAt(now)
		return fmt.Sprintf("%+v %v %d %.17g;", items, ok, wTSWOR.SizeAt(now), wTSWOR.TotalWeightAt(now))
	})

	wTSWR := NewShardedWeightedTSWR[int](xrand.New(seed), t0, g, k, eps, weightOf)
	out += "wtswr:" + fanWorkload(wTSWR, func(now int64) string {
		items, ok := wTSWR.ItemsAt(now)
		return fmt.Sprintf("%+v %v %.17g;", items, ok, wTSWR.TotalWeightAt(now))
	})

	wSeqWOR := NewShardedWeightedSeqWOR[int](xrand.New(seed), n, g, k, eps, weightOf)
	out += "wseqwor:" + fanWorkload(wSeqWOR, func(int64) string {
		items, ok := wSeqWOR.Items()
		return fmt.Sprintf("%+v %v %.17g;", items, ok, wSeqWOR.TotalWeight())
	})

	wSeqWR := NewShardedWeightedSeqWR[int](xrand.New(seed), n, g, k, eps, weightOf)
	out += "wseqwr:" + fanWorkload(wSeqWR, func(int64) string {
		items, ok := wSeqWR.Items()
		return fmt.Sprintf("%+v %v %.17g;", items, ok, wSeqWR.TotalWeight())
	})

	return out
}

// TestFanoutDeterminism pins the core contract of the parallel read path:
// the same seed and ingest order produce byte-identical query transcripts
// whether sub-queries run inline (fanout 1) or across a worker pool, for
// every sharded substrate — the four sharded weighted ones and the three
// uniform ones.
func TestFanoutDeterminism(t *testing.T) {
	for _, seed := range []uint64{7, 0x5eed} {
		SetQueryFanout(1)
		sequential := fanTranscript(t, seed)
		for _, fan := range []int{3, 8} {
			SetQueryFanout(fan)
			if got := fanTranscript(t, seed); got != sequential {
				t.Fatalf("seed %d: fanout %d transcript diverges from sequential\nfanout %d: %.300s\nsequential: %.300s",
					seed, fan, fan, got, sequential)
			}
		}
	}
	SetQueryFanout(0)
}

// TestFanoutQueryRace hammers the parallel read path under the race
// detector: several substrates run their full ingest/barrier/query cycles
// concurrently, so forShards worker pools overlap with each other and with
// every substrate's shard ingest goroutines. Any missing happens-before
// edge between the barrier and the fanned sub-queries trips -race.
func TestFanoutQueryRace(t *testing.T) {
	setFanout(t, 8)
	var wg sync.WaitGroup
	for copyID := 0; copyID < 3; copyID++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			fanTranscript(t, seed)
		}(uint64(100 + copyID))
	}
	wg.Wait()
}
