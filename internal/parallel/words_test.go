package parallel

// words_test.go: pins the dispatcher-side word accounting (DESIGN.md §6).
// The per-shard query caches — tsDispatch.sizes and wdispatch.wcache —
// persist between queries, so they are sampler state, not transport: the
// first query after a checkpoint must grow Words() by exactly G words (the
// warmed cache) and later queries at the same checkpoint by nothing. These
// tests fail against a words() that forgets either cache.

import (
	"testing"

	"slidingsample/internal/xrand"
)

func TestWordsCountsSizesCache(t *testing.T) {
	const g, k, t0 = 4, 3, 50
	s := NewShardedTSWR[uint64](xrand.New(7), t0, g, k, 0.05)
	defer s.Close()

	// All arrivals on one tick: nothing can expire at query time, so the
	// only footprint change a query can cause is warming the size cache.
	for i := 0; i < 200; i++ {
		s.Observe(uint64(i), 0)
	}
	s.Barrier()

	if len(s.ts.sizes) != 0 {
		t.Fatalf("size cache warm before any query: len %d", len(s.ts.sizes))
	}
	before := s.Words()
	if _, ok := s.SampleAt(0); !ok {
		t.Fatal("no sample from non-empty window")
	}
	if len(s.ts.sizes) != g {
		t.Fatalf("size cache holds %d words after query, want G=%d", len(s.ts.sizes), g)
	}
	if got := s.Words(); got != before+g {
		t.Fatalf("Words = %d after warming the size cache, want %d+%d", got, before, g)
	}
	// Same checkpoint, cache already warm: the footprint must not creep.
	if _, ok := s.SampleAt(0); !ok {
		t.Fatal("no sample on repeat query")
	}
	if got := s.Words(); got != before+g {
		t.Fatalf("Words = %d after repeat query, want %d", got, before+g)
	}
}

func TestWordsCountsWeightCache(t *testing.T) {
	const g, k, t0 = 4, 3, 50
	weight := func(v uint64) float64 { return float64(v%5) + 1 }
	s := NewShardedWeightedTSWR[uint64](xrand.New(9), t0, g, k, 0.05, weight)
	defer s.Close()

	for i := 0; i < 200; i++ {
		s.Observe(uint64(i), 0)
	}
	s.Barrier()

	if len(s.w.wcache) != 0 {
		t.Fatalf("weight cache warm before any query: len %d", len(s.w.wcache))
	}
	before := s.Words()
	if _, ok := s.SampleAt(0); !ok {
		t.Fatal("no sample from non-empty window")
	}
	if len(s.w.wcache) != g {
		t.Fatalf("weight cache holds %d words after query, want G=%d", len(s.w.wcache), g)
	}
	if got := s.Words(); got != before+g {
		t.Fatalf("Words = %d after warming the weight cache, want %d+%d", got, before, g)
	}
	if _, ok := s.SampleAt(0); !ok {
		t.Fatal("no sample on repeat query")
	}
	if got := s.Words(); got != before+g {
		t.Fatalf("Words = %d after repeat query, want %d", got, before+g)
	}
}
