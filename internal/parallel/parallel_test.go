package parallel

import (
	"math"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/xrand"
)

func TestShardedIndexRecovery(t *testing.T) {
	// Values carry the global index; the recovered Index must match.
	s := NewShardedSeqWR[uint64](xrand.New(1), 64, 4, 3)
	defer s.Close()
	for i := uint64(0); i < 1000; i++ {
		s.Observe(i, int64(i))
	}
	s.Barrier()
	got, ok := s.Sample()
	if !ok || len(got) != 3 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	for _, e := range got {
		if e.Value != e.Index {
			t.Fatalf("index recovery broken: value %d, index %d", e.Value, e.Index)
		}
		if e.Index < 1000-64 {
			t.Fatalf("sample %d outside the global window", e.Index)
		}
	}
}

func TestShardedUniform(t *testing.T) {
	// The global sample must be uniform over the last n elements, at a
	// straddling offset, matching the sequential sampler's law.
	const n, g = 16, 4
	const m = 42 // not divisible by g: shards are mid-cycle
	const trials = 40000
	r := xrand.New(2)
	counts := make([]int, n)
	for tr := 0; tr < trials; tr++ {
		s := NewShardedSeqWR[uint64](r, n, g, 1)
		for i := uint64(0); i < m; i++ {
			s.Observe(i, int64(i))
		}
		s.Barrier()
		got, ok := s.Sample()
		if !ok {
			t.Fatal("no sample")
		}
		if got[0].Index < m-n || got[0].Index >= m {
			t.Fatalf("sample %d outside window [%d,%d)", got[0].Index, m-n, m)
		}
		counts[got[0].Index-(m-n)]++
		s.Close()
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("window pos %d: %d, want about %.0f", i, c, want)
		}
	}
}

func TestShardedWarmup(t *testing.T) {
	const n, g = 32, 4
	const trials = 30000
	r := xrand.New(3)
	// 10 arrivals (< n): window = everything; distribution uniform over 10.
	counts := make([]int, 10)
	for tr := 0; tr < trials; tr++ {
		s := NewShardedSeqWR[uint64](r, n, g, 1)
		for i := uint64(0); i < 10; i++ {
			s.Observe(i, int64(i))
		}
		s.Barrier()
		got, ok := s.Sample()
		if !ok {
			t.Fatal("no sample during warm-up")
		}
		counts[got[0].Index]++
		s.Close()
	}
	want := float64(trials) / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("warm-up pos %d: %d, want about %.0f", i, c, want)
		}
	}
}

func TestShardedEmptyAndBarrierDiscipline(t *testing.T) {
	s := NewShardedSeqWR[uint64](xrand.New(4), 8, 2, 1)
	defer s.Close()
	s.Barrier()
	if _, ok := s.Sample(); ok {
		t.Fatal("sample from empty sharded sampler")
	}
	s.Observe(1, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Sample without Barrier did not panic")
			}
		}()
		s.Sample()
	}()
	s.Barrier()
	if _, ok := s.Sample(); !ok {
		t.Fatal("no sample after barrier")
	}
}

func TestShardedConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewShardedSeqWR[uint64](xrand.New(1), 8, 0, 1) },
		func() { NewShardedSeqWR[uint64](xrand.New(1), 0, 2, 1) },
		func() { NewShardedSeqWR[uint64](xrand.New(1), 9, 2, 1) }, // 9 % 2 != 0
		func() { NewShardedSeqWR[uint64](xrand.New(1), 8, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad constructor args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestShardedRepeatedBarriers(t *testing.T) {
	// Observe/Barrier/Sample cycles must keep working (barriers are
	// checkpoints, not terminators).
	s := NewShardedSeqWR[uint64](xrand.New(5), 16, 4, 2)
	defer s.Close()
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			s.Observe(uint64(round*7+i), int64(round*7+i))
		}
		s.Barrier()
		got, ok := s.Sample()
		if !ok || len(got) != 2 {
			t.Fatalf("round %d: ok=%v len=%d", round, ok, len(got))
		}
		latest := uint64(round*7 + 6)
		lo := uint64(0)
		if latest >= 16 {
			lo = latest - 15
		}
		for _, e := range got {
			if e.Index < lo || e.Index > latest {
				t.Fatalf("round %d: sample %d outside [%d,%d]", round, e.Index, lo, latest)
			}
		}
	}
	if s.Count() != 350 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Words() <= 0 || s.MaxWords() < s.Words() {
		t.Fatal("words accounting broken")
	}
}

func TestShardedMemoryLinearInShards(t *testing.T) {
	// Total memory is G * Θ(k): still independent of n.
	for _, g := range []int{1, 4, 16} {
		s := NewShardedSeqWR[uint64](xrand.New(6), 1<<16, g, 2)
		for i := uint64(0); i < 1<<17; i++ {
			s.Observe(i, 0)
		}
		s.Close()
		bound := 3 + g*(3+2*(1+6)) // dispatcher + per shard: params + 2 copies * (counter + stored)
		if s.MaxWords() > bound {
			t.Fatalf("g=%d: MaxWords %d exceeds %d", g, s.MaxWords(), bound)
		}
	}
}

// ---------------------------------------------------------------------------
// Timestamp-window sharding
// ---------------------------------------------------------------------------

func TestShardedTSWRUniformYoungStream(t *testing.T) {
	// While the stream is younger than the window the exponential histogram
	// is exact, so the cross-shard weights are exact and the global law must
	// match the sequential Theorem 3.9 law: uniform over all arrivals.
	const t0, g, m = 100, 4, 40
	const trials = 40000
	r := xrand.New(21)
	counts := make([]int, m)
	for tr := 0; tr < trials; tr++ {
		s := NewShardedTSWR[uint64](r, t0, g, 1, 0.05)
		for i := uint64(0); i < m; i++ {
			s.Observe(i, int64(i))
		}
		s.Barrier()
		got, ok := s.SampleAt(m - 1)
		if !ok {
			t.Fatal("no sample")
		}
		if got[0].Value != got[0].Index {
			t.Fatalf("index recovery broken: value %d, index %d", got[0].Value, got[0].Index)
		}
		counts[got[0].Index]++
		s.Close()
	}
	want := float64(trials) / m
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("pos %d: %d, want about %.0f", i, c, want)
		}
	}
}

func TestShardedTSWRExpiryMembership(t *testing.T) {
	// After expiry the estimate may carry eps error, but every returned
	// element must still be active and index recovery must hold.
	const t0, g, k, m = 64, 4, 8, 500
	s := NewShardedTSWR[uint64](xrand.New(22), t0, g, k, 0.05)
	defer s.Close()
	for i := uint64(0); i < m; i++ {
		s.Observe(i, int64(i/2)) // two arrivals per tick
	}
	s.Barrier()
	now := int64((m - 1) / 2)
	for q := 0; q < 50; q++ {
		got, ok := s.SampleAt(now)
		if !ok || len(got) != k {
			t.Fatalf("ok=%v len=%d", ok, len(got))
		}
		for _, e := range got {
			if e.Value != e.Index {
				t.Fatalf("index recovery broken: value %d index %d", e.Value, e.Index)
			}
			if now-e.TS >= t0 {
				t.Fatalf("expired element sampled: ts %d at now %d", e.TS, now)
			}
		}
	}
}

func TestShardedTSWORDistinctAndWarmup(t *testing.T) {
	const t0, g, k = 50, 4, 6
	r := xrand.New(23)

	// Warm-up: fewer active elements than k returns the whole window.
	s := NewShardedTSWOR[uint64](r, t0, g, k, 0.05)
	for i := uint64(0); i < 3; i++ {
		s.Observe(i, int64(i))
	}
	s.Barrier()
	got, ok := s.SampleAt(2)
	if !ok || len(got) != 3 {
		t.Fatalf("warm-up: ok=%v len=%d, want 3", ok, len(got))
	}
	s.Close()

	// Steady state: k distinct active elements.
	s = NewShardedTSWOR[uint64](r, t0, g, k, 0.05)
	defer s.Close()
	for i := uint64(0); i < 400; i++ {
		s.Observe(i, int64(i/4))
	}
	s.Barrier()
	now := int64(399 / 4)
	for q := 0; q < 50; q++ {
		got, ok := s.SampleAt(now)
		if !ok {
			t.Fatal("no sample")
		}
		if len(got) > k {
			t.Fatalf("more than k elements: %d", len(got))
		}
		seen := map[uint64]bool{}
		for _, e := range got {
			if seen[e.Index] {
				t.Fatalf("duplicate index %d in WOR sample", e.Index)
			}
			seen[e.Index] = true
			if e.Value != e.Index {
				t.Fatalf("index recovery broken: value %d index %d", e.Value, e.Index)
			}
			if now-e.TS >= t0 {
				t.Fatalf("expired element sampled: ts %d at now %d", e.TS, now)
			}
		}
	}
}

func TestShardedTSWORUniformYoungStream(t *testing.T) {
	// Young stream, k=2 WOR: every pair of arrivals equally likely (the
	// estimate is exact, so the law matches sequential Theorem 4.4).
	const t0, g, m, k = 100, 3, 9, 2
	const trials = 30000
	r := xrand.New(24)
	counts := map[[2]uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewShardedTSWOR[uint64](r, t0, g, k, 0.05)
		for i := uint64(0); i < m; i++ {
			s.Observe(i, int64(i))
		}
		s.Barrier()
		got, ok := s.SampleAt(m - 1)
		if !ok || len(got) != k {
			t.Fatalf("ok=%v len=%d", ok, len(got))
		}
		a, b := got[0].Index, got[1].Index
		if a > b {
			a, b = b, a
		}
		counts[[2]uint64{a, b}]++
		s.Close()
	}
	cells := m * (m - 1) / 2
	want := float64(trials) / float64(cells)
	if len(counts) != cells {
		t.Fatalf("only %d of %d pairs ever sampled", len(counts), cells)
	}
	for pair, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("pair %v: %d, want about %.0f", pair, c, want)
		}
	}
}

func TestShardedBatchMatchesLoop(t *testing.T) {
	// Identically seeded sharded samplers, one fed per element and one in
	// irregular batches, must agree exactly (the E16 invariant, unit-sized).
	const n, g, k = 64, 4, 3
	mk := func(seed uint64) *ShardedSeqWR[uint64] {
		return NewShardedSeqWR[uint64](xrand.New(seed), n, g, k)
	}
	loop, batch := mk(31), mk(31)
	defer loop.Close()
	defer batch.Close()
	var buf []stream.Element[uint64]
	sizes := []int{1, 5, 17, 2, 64}
	i := uint64(0)
	for len(sizes) > 0 {
		sz := sizes[0]
		sizes = sizes[1:]
		buf = buf[:0]
		for j := 0; j < sz; j++ {
			loop.Observe(i, int64(i))
			buf = append(buf, stream.Element[uint64]{Value: i, TS: int64(i)})
			i++
		}
		batch.ObserveBatch(buf)
	}
	loop.Barrier()
	batch.Barrier()
	if loop.Count() != batch.Count() || loop.Words() != batch.Words() || loop.MaxWords() != batch.MaxWords() {
		t.Fatalf("state diverged: count %d/%d words %d/%d peak %d/%d",
			loop.Count(), batch.Count(), loop.Words(), batch.Words(), loop.MaxWords(), batch.MaxWords())
	}
	la, lok := loop.Sample()
	ba, bok := batch.Sample()
	if !lok || !bok || len(la) != len(ba) {
		t.Fatalf("sample shape diverged: %v %v", lok, bok)
	}
	for j := range la {
		if la[j] != ba[j] {
			t.Fatalf("slot %d diverged: %+v vs %+v", j, la[j], ba[j])
		}
	}
}
