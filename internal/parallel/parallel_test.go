package parallel

import (
	"math"
	"testing"

	"slidingsample/internal/xrand"
)

func TestShardedIndexRecovery(t *testing.T) {
	// Values carry the global index; the recovered Index must match.
	s := NewShardedSeqWR[uint64](xrand.New(1), 64, 4, 3)
	defer s.Close()
	for i := uint64(0); i < 1000; i++ {
		s.Observe(i, int64(i))
	}
	s.Barrier()
	got, ok := s.Sample()
	if !ok || len(got) != 3 {
		t.Fatalf("ok=%v len=%d", ok, len(got))
	}
	for _, e := range got {
		if e.Value != e.Index {
			t.Fatalf("index recovery broken: value %d, index %d", e.Value, e.Index)
		}
		if e.Index < 1000-64 {
			t.Fatalf("sample %d outside the global window", e.Index)
		}
	}
}

func TestShardedUniform(t *testing.T) {
	// The global sample must be uniform over the last n elements, at a
	// straddling offset, matching the sequential sampler's law.
	const n, g = 16, 4
	const m = 42 // not divisible by g: shards are mid-cycle
	const trials = 40000
	r := xrand.New(2)
	counts := make([]int, n)
	for tr := 0; tr < trials; tr++ {
		s := NewShardedSeqWR[uint64](r, n, g, 1)
		for i := uint64(0); i < m; i++ {
			s.Observe(i, int64(i))
		}
		s.Barrier()
		got, ok := s.Sample()
		if !ok {
			t.Fatal("no sample")
		}
		if got[0].Index < m-n || got[0].Index >= m {
			t.Fatalf("sample %d outside window [%d,%d)", got[0].Index, m-n, m)
		}
		counts[got[0].Index-(m-n)]++
		s.Close()
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("window pos %d: %d, want about %.0f", i, c, want)
		}
	}
}

func TestShardedWarmup(t *testing.T) {
	const n, g = 32, 4
	const trials = 30000
	r := xrand.New(3)
	// 10 arrivals (< n): window = everything; distribution uniform over 10.
	counts := make([]int, 10)
	for tr := 0; tr < trials; tr++ {
		s := NewShardedSeqWR[uint64](r, n, g, 1)
		for i := uint64(0); i < 10; i++ {
			s.Observe(i, int64(i))
		}
		s.Barrier()
		got, ok := s.Sample()
		if !ok {
			t.Fatal("no sample during warm-up")
		}
		counts[got[0].Index]++
		s.Close()
	}
	want := float64(trials) / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("warm-up pos %d: %d, want about %.0f", i, c, want)
		}
	}
}

func TestShardedEmptyAndBarrierDiscipline(t *testing.T) {
	s := NewShardedSeqWR[uint64](xrand.New(4), 8, 2, 1)
	defer s.Close()
	s.Barrier()
	if _, ok := s.Sample(); ok {
		t.Fatal("sample from empty sharded sampler")
	}
	s.Observe(1, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Sample without Barrier did not panic")
			}
		}()
		s.Sample()
	}()
	s.Barrier()
	if _, ok := s.Sample(); !ok {
		t.Fatal("no sample after barrier")
	}
}

func TestShardedConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewShardedSeqWR[uint64](xrand.New(1), 8, 0, 1) },
		func() { NewShardedSeqWR[uint64](xrand.New(1), 0, 2, 1) },
		func() { NewShardedSeqWR[uint64](xrand.New(1), 9, 2, 1) }, // 9 % 2 != 0
		func() { NewShardedSeqWR[uint64](xrand.New(1), 8, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad constructor args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestShardedRepeatedBarriers(t *testing.T) {
	// Observe/Barrier/Sample cycles must keep working (barriers are
	// checkpoints, not terminators).
	s := NewShardedSeqWR[uint64](xrand.New(5), 16, 4, 2)
	defer s.Close()
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			s.Observe(uint64(round*7+i), int64(round*7+i))
		}
		s.Barrier()
		got, ok := s.Sample()
		if !ok || len(got) != 2 {
			t.Fatalf("round %d: ok=%v len=%d", round, ok, len(got))
		}
		latest := uint64(round*7 + 6)
		lo := uint64(0)
		if latest >= 16 {
			lo = latest - 15
		}
		for _, e := range got {
			if e.Index < lo || e.Index > latest {
				t.Fatalf("round %d: sample %d outside [%d,%d]", round, e.Index, lo, latest)
			}
		}
	}
	if s.Count() != 350 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Words() <= 0 || s.MaxWords() < s.Words() {
		t.Fatal("words accounting broken")
	}
}

func TestShardedMemoryLinearInShards(t *testing.T) {
	// Total memory is G * Θ(k): still independent of n.
	for _, g := range []int{1, 4, 16} {
		s := NewShardedSeqWR[uint64](xrand.New(6), 1<<16, g, 2)
		for i := uint64(0); i < 1<<17; i++ {
			s.Observe(i, 0)
		}
		s.Close()
		bound := 3 + g*(3+2*(1+6)) // dispatcher + per shard: params + 2 copies * (counter + stored)
		if s.MaxWords() > bound {
			t.Fatalf("g=%d: MaxWords %d exceeds %d", g, s.MaxWords(), bound)
		}
	}
}
