// fanout.go: the bounded worker pool behind the parallel read path.
//
// Every sharded query decomposes into per-shard sub-queries that are
// independent until the final cross-shard step (PR 4's observation for the
// WOR merge; the same holds for the slot-vector fetches of the WR samplers
// and the per-shard weight oracles). forShards runs those sub-queries on a
// bounded pool instead of a sequential loop.
//
// Determinism survives because the fan-out is ORDER-BLIND by construction:
//
//   - each sub-query touches only shard-local state — shard i's sampler,
//     shard i's rng (every shard gets its own child generator via
//     rng.Split at construction), shard i's result slot — so the execution
//     order cannot change any draw;
//   - every draw from the dispatcher-side rng (slot picks, Floyd subsets,
//     PickK) stays on the calling goroutine, before or after the fan-out,
//     in a fixed sequential order;
//   - the cross-shard combine (top-k merge, weight totals, shortfall
//     redistribution) runs on the calling goroutine in shard order, so
//     float summation order and sort input order are fixed.
//
// Consequently a query fanned across G workers returns byte-identical
// results to the same query run with fan-out disabled — the property
// TestFanoutDeterminism pins for every sharded substrate.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// queryFanout is the bounded worker count for per-shard sub-queries.
// 0 means "unset": resolve to min(GOMAXPROCS, defaultMaxFanout) lazily, so
// tests and operators can override before or after the first query.
var queryFanout atomic.Int32

// defaultMaxFanout caps the per-query worker count when the operator has
// not chosen one: sub-queries are short (Θ(k log n) per shard), so past a
// handful of workers the spawn overhead dominates.
const defaultMaxFanout = 8

// SetQueryFanout sets the maximum number of worker goroutines a single
// sharded query fans its per-shard sub-queries across. n <= 1 disables
// parallelism (sub-queries run inline, in shard order); n > 1 bounds the
// pool at n. 0 restores the default, min(GOMAXPROCS, 8). Safe to call
// concurrently with queries; each query reads the setting once.
func SetQueryFanout(n int) {
	if n < 0 {
		n = 1
	}
	queryFanout.Store(int32(n))
}

// QueryFanout reports the resolved per-query worker bound.
func QueryFanout() int {
	n := int(queryFanout.Load())
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
		if n > defaultMaxFanout {
			n = defaultMaxFanout
		}
	}
	return n
}

// forShards runs f(shard) for every shard in [0, g), fanning across at
// most QueryFanout() workers. f must touch only shard-local state (its
// shard's sampler, rng and result slot); the combine step belongs on the
// caller, after forShards returns. With fan-out disabled — or when g is
// too small to be worth a spawn — the loop runs inline in shard order,
// which the determinism argument above makes indistinguishable from the
// parallel schedule.
func forShards(g int, f func(shard int)) {
	workers := QueryFanout()
	if workers > g {
		workers = g
	}
	if workers <= 1 || g < 2 {
		for i := 0; i < g; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= g {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
