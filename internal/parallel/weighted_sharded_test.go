package parallel

import (
	"math"
	"sort"
	"testing"

	"slidingsample/internal/stream"
	"slidingsample/internal/window"
	"slidingsample/internal/xrand"
)

// shardWeight is the deterministic weight law of the sharded weighted
// battery.
func shardWeight(v uint64) float64 { return float64(v%5) + 1 }

// wtsPattern is one timestamp-stream shape of the cross-shard battery:
// arrival timestamps, horizon, query time (possibly past the last arrival)
// and shard count. Warm-up remainder dealing — a stream length NOT
// divisible by g, so the shards are mid-cycle — is part of every pattern.
type wtsPattern struct {
	name string
	t0   int64
	g    int
	ts   []int64
	now  int64
}

func wtsPatterns() []wtsPattern {
	bursty := make([]int64, 30) // 30 % 4 = 2: mid-cycle dealing
	for i := range bursty {
		bursty[i] = int64(i / 3)
	}
	gapped := []int64{0, 0, 10, 10, 11, 13, 20, 21, 21, 22, 25} // 11 % 3 = 2
	warmup := []int64{0, 0, 1, 1, 2, 2, 3}                      // younger than the window, 7 % 4 = 3
	return []wtsPattern{
		{name: "bursty", t0: 3, g: 4, ts: bursty, now: 9},
		{name: "gapped", t0: 10, g: 3, ts: gapped, now: 28}, // 3 ticks past the last arrival
		{name: "warmup", t0: 100, g: 4, ts: warmup, now: 3},
	}
}

func wtsWindow(p wtsPattern) []stream.Element[uint64] {
	buf := window.NewTSBuffer[uint64](p.t0)
	for i, ts := range p.ts {
		buf.Observe(stream.Element[uint64]{Value: uint64(i), Index: uint64(i), TS: ts})
	}
	buf.AdvanceTo(p.now)
	return buf.Contents()
}

// logKey draws ln(U)/w, the brute-force Efraimidis–Spirakis key (the
// independent re-implementation the sharded sampler is checked against).
func logKey(rng *xrand.Rand, w float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return math.Log(u) / w
}

// TestShardedWeightedTSWORMatchesBruteForceLaw is the cross-shard
// distribution-correctness test the tentpole is admitted on: over each
// timestamp pattern — bursty, gapped with a query past the last arrival,
// and warm-up with remainder dealing — the merged ORDERED 2-sample must
// match, in total-variation distance, both brute-force Efraimidis–Spirakis
// over the exact window contents and the closed-form successive-sampling
// law. The composition claims to be EXACT (globally comparable log-keys),
// so the thresholds are the same as the unsharded battery's.
func TestShardedWeightedTSWORMatchesBruteForceLaw(t *testing.T) {
	const (
		k      = 2
		trials = 40000
	)
	for _, p := range wtsPatterns() {
		t.Run(p.name, func(t *testing.T) {
			win := wtsWindow(p)
			if len(win) < 4 {
				t.Fatalf("pattern too small: window has %d elements", len(win))
			}
			W := 0.0
			for _, e := range win {
				W += shardWeight(e.Value)
			}
			exact := map[[2]uint64]float64{}
			for _, a := range win {
				wa := shardWeight(a.Value)
				for _, b := range win {
					if a.Index == b.Index {
						continue
					}
					exact[[2]uint64{a.Index, b.Index}] = wa / W * shardWeight(b.Value) / (W - wa)
				}
			}

			// Empirical law of the sharded sampler, queried at p.now.
			sampler := map[[2]uint64]int{}
			for tr := 0; tr < trials; tr++ {
				s := NewShardedWeightedTSWOR[uint64](xrand.New(uint64(tr)+1), p.t0, p.g, k, 0.05, shardWeight)
				for i, ts := range p.ts {
					s.Observe(uint64(i), ts)
				}
				s.Barrier()
				got, ok := s.SampleAt(p.now)
				s.Close()
				if !ok || len(got) != k {
					t.Fatalf("trial %d: ok=%v len=%d", tr, ok, len(got))
				}
				for _, e := range got {
					if e.Value != e.Index {
						t.Fatalf("trial %d: index recovery broken: value %d index %d", tr, e.Value, e.Index)
					}
				}
				sampler[[2]uint64{got[0].Index, got[1].Index}]++
			}

			// Empirical law of brute-force ES over the same window.
			brute := map[[2]uint64]int{}
			br := xrand.New(192837465)
			keys := make([]float64, len(win))
			order := make([]int, len(win))
			for tr := 0; tr < trials; tr++ {
				for i, e := range win {
					keys[i] = logKey(br, shardWeight(e.Value))
					order[i] = i
				}
				sort.Slice(order, func(a, b int) bool { return keys[order[a]] > keys[order[b]] })
				brute[[2]uint64{win[order[0]].Index, win[order[1]].Index}]++
			}

			tv := func(emp map[[2]uint64]int) float64 {
				d := 0.0
				for pair, pr := range exact {
					d += math.Abs(pr - float64(emp[pair])/trials)
				}
				for pair := range emp {
					if _, known := exact[pair]; !known {
						t.Fatalf("sampled pair %v outside the window law support", pair)
					}
				}
				return d / 2
			}
			if d := tv(sampler); d > 0.05 {
				t.Errorf("sharded sampler vs closed-form law: TV = %.4f > 0.05", d)
			}
			if d := tv(brute); d > 0.05 {
				t.Errorf("brute force vs closed-form law: TV = %.4f > 0.05 (test harness broken)", d)
			}
			d := 0.0
			for pair := range exact {
				d += math.Abs(float64(sampler[pair])-float64(brute[pair])) / trials
			}
			if d /= 2; d > 0.06 {
				t.Errorf("sharded sampler vs brute force: TV = %.4f > 0.06", d)
			}
		})
	}
}

// TestShardedWeightedSeqWORMatchesBruteForceLaw: the sequence-window
// merged composition is exact too, checked mid-cycle (m not divisible by
// g, so warm-up remainder dealing left the shards staggered).
func TestShardedWeightedSeqWORMatchesBruteForceLaw(t *testing.T) {
	const (
		n      = 16
		g      = 4
		m      = 42 // mid-cycle: shards hold unequal arrival counts
		k      = 2
		trials = 40000
	)
	win := make([]stream.Element[uint64], 0, n)
	for i := m - n; i < m; i++ {
		win = append(win, stream.Element[uint64]{Value: uint64(i), Index: uint64(i)})
	}
	W := 0.0
	for _, e := range win {
		W += shardWeight(e.Value)
	}
	exact := map[[2]uint64]float64{}
	for _, a := range win {
		wa := shardWeight(a.Value)
		for _, b := range win {
			if a.Index == b.Index {
				continue
			}
			exact[[2]uint64{a.Index, b.Index}] = wa / W * shardWeight(b.Value) / (W - wa)
		}
	}
	sampler := map[[2]uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewShardedWeightedSeqWOR[uint64](xrand.New(uint64(tr)+1), n, g, k, 0.05, shardWeight)
		for i := 0; i < m; i++ {
			s.Observe(uint64(i), 0)
		}
		s.Barrier()
		got, ok := s.Sample()
		s.Close()
		if !ok || len(got) != k {
			t.Fatalf("trial %d: ok=%v len=%d", tr, ok, len(got))
		}
		sampler[[2]uint64{got[0].Index, got[1].Index}]++
	}
	d := 0.0
	for pair, pr := range exact {
		d += math.Abs(pr - float64(sampler[pair])/trials)
	}
	for pair := range sampler {
		if _, known := exact[pair]; !known {
			t.Fatalf("sampled pair %v outside the window", pair)
		}
	}
	if d /= 2; d > 0.05 {
		t.Errorf("sharded seq WOR vs closed-form law: TV = %.4f > 0.05", d)
	}
}

// TestShardedWeightedTSWRInclusionLaw checks the with-replacement law on
// the gapped pattern (including query-time expiry past the last arrival):
// each slot returns active element i with probability w_i/W up to the
// cross-shard eps, and never an expired element.
func TestShardedWeightedTSWRInclusionLaw(t *testing.T) {
	const (
		k      = 3
		trials = 30000
	)
	p := wtsPatterns()[1] // gapped
	win := wtsWindow(p)
	W := 0.0
	active := map[uint64]bool{}
	for _, e := range win {
		W += shardWeight(e.Value)
		active[e.Index] = true
	}
	counts := map[uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewShardedWeightedTSWR[uint64](xrand.New(uint64(tr)+1), p.t0, p.g, k, 0.05, shardWeight)
		for i, ts := range p.ts {
			s.Observe(uint64(i), ts)
		}
		s.Barrier()
		got, ok := s.SampleAt(p.now)
		s.Close()
		if !ok || len(got) != k {
			t.Fatalf("trial %d: ok=%v len=%d", tr, ok, len(got))
		}
		for _, e := range got {
			if !active[e.Index] {
				t.Fatalf("trial %d: sampled expired index %d", tr, e.Index)
			}
			if e.Value != e.Index {
				t.Fatalf("trial %d: index recovery broken: value %d index %d", tr, e.Value, e.Index)
			}
			counts[e.Index]++
		}
	}
	draws := float64(trials * k)
	for _, e := range win {
		pr := shardWeight(e.Value) / W
		got := float64(counts[e.Index]) / draws
		// 5 sigma on a binomial proportion plus the documented cross-shard
		// eps slack on the shard-pick weights.
		tol := 5*math.Sqrt(pr*(1-pr)/draws) + 0.05*pr
		if math.Abs(got-pr) > tol {
			t.Errorf("index %d: inclusion %.4f, want %.4f ± %.4f", e.Index, got, pr, tol)
		}
	}
}

// TestShardedWeightedSeqWRInclusionLaw: sequence-window slot draws follow
// w_i/W over the last n elements, mid-cycle.
func TestShardedWeightedSeqWRInclusionLaw(t *testing.T) {
	const (
		n      = 16
		g      = 4
		m      = 42
		k      = 2
		trials = 30000
	)
	W := 0.0
	for i := m - n; i < m; i++ {
		W += shardWeight(uint64(i))
	}
	counts := map[uint64]int{}
	for tr := 0; tr < trials; tr++ {
		s := NewShardedWeightedSeqWR[uint64](xrand.New(uint64(tr)+1), n, g, k, 0.05, shardWeight)
		for i := 0; i < m; i++ {
			s.Observe(uint64(i), 0)
		}
		s.Barrier()
		got, ok := s.Sample()
		s.Close()
		if !ok || len(got) != k {
			t.Fatalf("trial %d: ok=%v len=%d", tr, ok, len(got))
		}
		for _, e := range got {
			if e.Index < m-n || e.Index >= m {
				t.Fatalf("trial %d: sampled index %d outside window [%d,%d)", tr, e.Index, m-n, m)
			}
			counts[e.Index]++
		}
	}
	draws := float64(trials * k)
	for i := uint64(m - n); i < m; i++ {
		pr := shardWeight(i) / W
		got := float64(counts[i]) / draws
		tol := 5*math.Sqrt(pr*(1-pr)/draws) + 0.05*pr
		if math.Abs(got-pr) > tol {
			t.Errorf("index %d: inclusion %.4f, want %.4f ± %.4f", i, got, pr, tol)
		}
	}
}

// TestShardedWeightedOracleAccuracy pins the E19 acceptance claim at unit
// scale: each per-shard weight oracle — and their TotalWeightAt sum — is
// within (1±eps) of the ground-truth active weight of the shard's slice,
// under a heavy-tailed weight law and at query times past the last
// arrival.
func TestShardedWeightedOracleAccuracy(t *testing.T) {
	const (
		t0  = 128
		g   = 4
		k   = 4
		m   = 20000
		eps = 0.05
	)
	heavy := func(v uint64) float64 {
		w := float64(v%9) + 1
		if v%101 == 0 {
			w *= 1e4
		}
		return w
	}
	s := NewShardedWeightedTSWOR[uint64](xrand.New(11), t0, g, k, eps, heavy)
	defer s.Close()
	truth := window.NewTSBuffer[uint64](t0)
	rng := xrand.New(12)
	ts := int64(0)
	for i := 0; i < m; i++ {
		if rng.Uint64n(3) == 0 {
			ts += int64(rng.Uint64n(5))
		}
		s.Observe(uint64(i), ts)
		truth.Observe(stream.Element[uint64]{Value: uint64(i), Index: uint64(i), TS: ts})
		if i%97 != 0 {
			continue
		}
		probe := ts + int64(rng.Uint64n(t0/2))
		probeTruth := window.NewTSBuffer[uint64](t0)
		for _, e := range truth.Contents() {
			probeTruth.Observe(e)
		}
		probeTruth.AdvanceTo(probe)
		perShard := make([]float64, g)
		total := 0.0
		for _, e := range probeTruth.Contents() {
			w := heavy(e.Value)
			perShard[e.Index%g] += w
			total += w
		}
		s.Barrier()
		if total == 0 {
			continue
		}
		if got := s.TotalWeightAt(probe); math.Abs(got-total)/total > eps+1e-9 {
			t.Fatalf("step %d: TotalWeightAt=%g vs W(t)=%g (rel %.4f > %.2f)",
				i, got, total, math.Abs(got-total)/total, eps)
		}
		for shard, want := range perShard {
			got := s.w.wests[shard].SumAt(probe)
			if want == 0 {
				continue
			}
			if rel := math.Abs(got-want) / want; rel > eps+1e-9 {
				t.Fatalf("step %d shard %d: oracle %g vs ground truth %g (rel %.4f > %.2f)",
					i, shard, got, want, rel, eps)
			}
		}
	}
}

// TestShardedWeightedExhaustiveAndDrain: |sample| = min(k, n(t)) for the
// merged WOR as the window drains past the last arrival, tracking TSBuffer
// ground truth exactly, and ok=false once it empties.
func TestShardedWeightedDrain(t *testing.T) {
	const (
		t0 = 50
		g  = 4
		k  = 6
		m  = 200
	)
	s := NewShardedWeightedTSWOR[uint64](xrand.New(9), t0, g, k, 0.05, shardWeight)
	defer s.Close()
	truth := window.NewTSBuffer[uint64](t0)
	rng := xrand.New(10)
	ts := int64(0)
	for i := 0; i < m; i++ {
		if rng.Uint64n(3) == 0 {
			ts += int64(rng.Uint64n(4))
		}
		s.Observe(uint64(i), ts)
		truth.Observe(stream.Element[uint64]{Value: uint64(i), Index: uint64(i), TS: ts})
	}
	s.Barrier()
	for now := ts; now <= ts+t0+2; now++ {
		truth.AdvanceTo(now)
		active := map[uint64]bool{}
		for _, e := range truth.Contents() {
			active[e.Index] = true
		}
		n := len(active)
		got, ok := s.SampleAt(now)
		if ok != (n > 0) {
			t.Fatalf("now=%d: ok=%v with n(t)=%d", now, ok, n)
		}
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("now=%d: |sample|=%d, want min(k,n)=%d", now, len(got), wantLen)
		}
		seen := map[uint64]bool{}
		for _, e := range got {
			if !active[e.Index] {
				t.Fatalf("now=%d: sampled expired index %d", now, e.Index)
			}
			if seen[e.Index] {
				t.Fatalf("now=%d: duplicate index %d in WOR sample", now, e.Index)
			}
			seen[e.Index] = true
		}
	}
}

// TestShardedWeightedPrecomputedPathEquivalence: ObserveWeighted /
// ObserveWeightedBatch with weights[i] == weight(value_i) leave every
// sharded weighted sampler in the same state — identical samples under
// equal seeds — as the derived Observe / ObserveBatch path. This is the
// stream.WeightedSampler contract the serving layer's HTTP ingest relies
// on: the edge computes (or receives) each weight once and the dispatch
// never re-derives it.
func TestShardedWeightedPrecomputedPathEquivalence(t *testing.T) {
	const (
		m  = 500
		g  = 4
		k  = 5
		t0 = 40
		n  = 64
	)
	mkBatch := func(lo, hi int) ([]stream.Element[uint64], []float64) {
		var es []stream.Element[uint64]
		var ws []float64
		for i := lo; i < hi; i++ {
			es = append(es, stream.Element[uint64]{Value: uint64(i), TS: int64(i / 7)})
			ws = append(ws, shardWeight(uint64(i)))
		}
		return es, ws
	}
	type pair struct {
		name    string
		derived stream.WeightedSampler[uint64]
		pre     stream.WeightedSampler[uint64]
		closers []interface{ Close() }
		barrier func()
	}
	mk := func(name string, build func(seed uint64) stream.WeightedSampler[uint64]) pair {
		a, b := build(77), build(77)
		p := pair{name: name, derived: a, pre: b}
		for _, s := range []stream.WeightedSampler[uint64]{a, b} {
			if c, ok := s.(interface{ Close() }); ok {
				p.closers = append(p.closers, c)
			}
		}
		p.barrier = func() {
			for _, s := range []stream.WeightedSampler[uint64]{a, b} {
				if c, ok := s.(interface{ Barrier() }); ok {
					c.Barrier()
				}
			}
		}
		return p
	}
	pairs := []pair{
		mk("ts-wor", func(seed uint64) stream.WeightedSampler[uint64] {
			return NewShardedWeightedTSWOR[uint64](xrand.New(seed), t0, g, k, 0.05, shardWeight)
		}),
		mk("ts-wr", func(seed uint64) stream.WeightedSampler[uint64] {
			return NewShardedWeightedTSWR[uint64](xrand.New(seed), t0, g, k, 0.05, shardWeight)
		}),
		mk("seq-wor", func(seed uint64) stream.WeightedSampler[uint64] {
			return NewShardedWeightedSeqWOR[uint64](xrand.New(seed), n, g, k, 0.05, shardWeight)
		}),
		mk("seq-wr", func(seed uint64) stream.WeightedSampler[uint64] {
			return NewShardedWeightedSeqWR[uint64](xrand.New(seed), n, g, k, 0.05, shardWeight)
		}),
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			// First half element-wise, second half in batches, mixing both
			// ingest shapes on both sides.
			for i := 0; i < m/2; i++ {
				v := uint64(i)
				p.derived.Observe(v, int64(i/7))
				p.pre.ObserveWeighted(v, shardWeight(v), int64(i/7))
			}
			for lo := m / 2; lo < m; lo += 64 {
				hi := lo + 64
				if hi > m {
					hi = m
				}
				es, ws := mkBatch(lo, hi)
				p.derived.ObserveBatch(es)
				p.pre.ObserveWeightedBatch(es, ws)
			}
			p.barrier()
			ga, oka := p.derived.Sample()
			gb, okb := p.pre.Sample()
			if oka != okb || len(ga) != len(gb) {
				t.Fatalf("shape mismatch: ok %v/%v len %d/%d", oka, okb, len(ga), len(gb))
			}
			for i := range ga {
				if ga[i] != gb[i] {
					t.Fatalf("slot %d: derived %+v vs precomputed %+v", i, ga[i], gb[i])
				}
			}
			if p.derived.Count() != p.pre.Count() || p.derived.Words() != p.pre.Words() {
				t.Fatalf("count/words drifted: %d/%d words %d/%d",
					p.derived.Count(), p.pre.Count(), p.derived.Words(), p.pre.Words())
			}
			for _, c := range p.closers {
				c.Close()
			}
		})
	}
}
